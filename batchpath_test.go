package streamcover

// Cross-path equivalence suite for the batched hot path: Process (one
// edge at a time), ProcessBatch (whole stream and arbitrary splits),
// ProcessAll and ProcessAllParallel must produce bit-identical
// Estimate/Report results — same coverage, same feasibility, same
// reported set IDs, same retained space — on every seed, workload family
// and shuffled arrival order. This is the contract that lets kcoverd
// ingest batches while distributed merging and the sequential reference
// implementation stay exact mirrors.

import (
	"math/rand"
	"reflect"
	"testing"

	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// batchFamilies are the three workload families of the suite, chosen so
// each oracle subroutine's designed regime is exercised.
var batchFamilies = []struct {
	name string
	gen  func(rng *rand.Rand) *workload.Instance
}{
	{"planted", func(rng *rand.Rand) *workload.Instance {
		return workload.PlantedCover(1500, 300, 8, 0.8, 4, rng)
	}},
	{"commonheavy", func(rng *rand.Rand) *workload.Instance {
		return workload.CommonHeavy(1500, 300, 8, 40, 0.4, 2, rng)
	}},
	{"smallsets", func(rng *rand.Rand) *workload.Instance {
		return workload.PlantedSmallSets(1500, 500, 50, 0.8, rng)
	}},
}

// shuffledEdges linearizes an instance in shuffled arrival order as
// public-API edges.
func shuffledEdges(in *workload.Instance, seed int64) []Edge {
	raw := stream.Linearize(in.System, stream.Shuffled, rand.New(rand.NewSource(seed))).Edges()
	edges := make([]Edge, len(raw))
	for i, e := range raw {
		edges[i] = Edge{Set: e.Set, Elem: e.Elem}
	}
	return edges
}

func TestCrossPathEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, fam := range batchFamilies {
			rng := rand.New(rand.NewSource(seed * 101))
			in := fam.gen(rng)
			m, n, k := in.System.M(), in.System.N, in.K
			edges := shuffledEdges(in, seed*7+1)

			build := func() *Estimator {
				est, err := NewEstimator(m, n, k, 4, WithSeed(seed))
				if err != nil {
					t.Fatal(err)
				}
				return est
			}

			// Reference: strictly sequential per-edge processing.
			seq := build()
			for _, e := range edges {
				if err := seq.Process(e); err != nil {
					t.Fatal(err)
				}
			}

			// Batched, split at arbitrary boundaries (empty batches and
			// boundary-at-0/boundary-at-len included by construction).
			split := build()
			prev := 0
			for prev < len(edges) {
				cut := prev + rng.Intn(len(edges)-prev+1)
				if err := split.ProcessBatch(edges[prev:cut]); err != nil {
					t.Fatal(err)
				}
				prev = cut
			}

			variants := map[string]*Estimator{"split-batch": split}
			whole := build()
			if err := whole.ProcessBatch(edges); err != nil {
				t.Fatal(err)
			}
			variants["whole-batch"] = whole
			all := build()
			if err := all.ProcessAll(edges); err != nil {
				t.Fatal(err)
			}
			variants["process-all"] = all
			par := build()
			if err := par.ProcessAllParallel(edges, 4); err != nil {
				t.Fatal(err)
			}
			variants["parallel"] = par

			want := seq.Result()
			for name, est := range variants {
				if est.Edges() != seq.Edges() {
					t.Errorf("%s/%s seed %d: edges %d != %d", fam.name, name, seed, est.Edges(), seq.Edges())
				}
				if got := est.Result(); !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s seed %d: Result %+v != sequential %+v", fam.name, name, seed, got, want)
				}
			}
		}
	}
}

// TestProcessBatchRejectsAtomically checks the documented all-or-nothing
// validation: an invalid edge anywhere in the batch leaves the estimator
// untouched, unlike ProcessAll's valid-prefix semantics.
func TestProcessBatchRejectsAtomically(t *testing.T) {
	est, err := NewEstimator(10, 100, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Edge{{Set: 1, Elem: 5}, {Set: 99, Elem: 5}, {Set: 2, Elem: 6}}
	if err := est.ProcessBatch(bad); err == nil {
		t.Fatal("expected out-of-range set to be rejected")
	}
	if est.Edges() != 0 {
		t.Errorf("rejected batch still consumed %d edges", est.Edges())
	}
	ref, _ := NewEstimator(10, 100, 3, 2)
	if !reflect.DeepEqual(est.Result(), ref.Result()) {
		t.Error("rejected batch mutated estimator state")
	}

	// ProcessAll keeps its valid-prefix semantics.
	all, _ := NewEstimator(10, 100, 3, 2)
	if err := all.ProcessAll(bad); err == nil {
		t.Fatal("expected ProcessAll to report the invalid edge")
	}
	if all.Edges() != 1 {
		t.Errorf("ProcessAll consumed %d edges, want the valid prefix of 1", all.Edges())
	}
}
