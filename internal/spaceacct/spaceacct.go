// Package spaceacct defines the space-accounting contract shared by every
// sketch and streaming structure in this repository.
//
// The paper's results are space bounds (Θ̃(m/α²) words, etc.), so the
// experiment harness must report the number of machine words each structure
// actually retains — not Go heap size, which is dominated by allocator and
// header overheads. Every sketch implements Sized and reports the words of
// state that a careful C implementation would keep: counters, stored
// (set, element) pairs, hash-function coefficients and candidate tables.
package spaceacct

// Sized is implemented by any structure that can report its retained state
// in 64-bit machine words.
type Sized interface {
	// SpaceWords returns the number of 64-bit words of state retained by
	// the structure at the moment of the call.
	SpaceWords() int
}

// Total sums the space of several structures, skipping nils.
func Total(parts ...Sized) int {
	total := 0
	for _, p := range parts {
		if p != nil {
			total += p.SpaceWords()
		}
	}
	return total
}

// Bytes converts a word count to bytes.
func Bytes(words int) int { return words * 8 }
