package spaceacct

import "testing"

type fixed int

func (f fixed) SpaceWords() int { return int(f) }

func TestTotal(t *testing.T) {
	if got := Total(); got != 0 {
		t.Errorf("Total() = %d, want 0", got)
	}
	if got := Total(fixed(3), nil, fixed(4)); got != 7 {
		t.Errorf("Total(3, nil, 4) = %d, want 7", got)
	}
}

func TestBytes(t *testing.T) {
	if got := Bytes(10); got != 80 {
		t.Errorf("Bytes(10) = %d, want 80", got)
	}
	if got := Bytes(0); got != 0 {
		t.Errorf("Bytes(0) = %d, want 0", got)
	}
}
