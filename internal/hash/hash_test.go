package hash

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddModBounds(t *testing.T) {
	cases := [][3]uint64{
		{0, 0, 0},
		{Prime - 1, 1, 0},
		{Prime - 1, Prime - 1, Prime - 2},
		{1, 2, 3},
	}
	for _, c := range cases {
		if got := addMod(c[0], c[1]); got != c[2] {
			t.Errorf("addMod(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestMulModAgainstBigIntSemantics(t *testing.T) {
	// Verify mulMod against the definition using 128-bit arithmetic done by
	// repeated addition on small operands and random spot checks via
	// math/bits decomposition.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		a := uint64(rng.Int63n(int64(Prime)))
		b := uint64(rng.Int63n(int64(Prime)))
		got := mulMod(a, b)
		want := slowMulMod(a, b)
		if got != want {
			t.Fatalf("mulMod(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
	// Edge values.
	edges := []uint64{0, 1, 2, Prime - 1, Prime - 2, Prime / 2, Prime/2 + 1}
	for _, a := range edges {
		for _, b := range edges {
			if got, want := mulMod(a, b), slowMulMod(a, b); got != want {
				t.Fatalf("mulMod(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

// slowMulMod computes a*b mod Prime via double-and-add, avoiding overflow.
func slowMulMod(a, b uint64) uint64 {
	var acc uint64
	for b > 0 {
		if b&1 == 1 {
			acc = addMod(acc, a)
		}
		a = addMod(a, a)
		b >>= 1
	}
	return acc
}

func TestMulModProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= Prime
		b %= Prime
		return mulMod(a, b) == slowMulMod(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEvalDeterministic(t *testing.T) {
	p := NewPoly(6, rand.New(rand.NewSource(7)))
	q := NewPoly(6, rand.New(rand.NewSource(7)))
	for x := uint64(0); x < 1000; x++ {
		if p.Eval(x) != q.Eval(x) {
			t.Fatalf("same seed gave different hashes at x=%d", x)
		}
	}
	r := NewPoly(6, rand.New(rand.NewSource(8)))
	same := 0
	for x := uint64(0); x < 1000; x++ {
		if p.Eval(x) == r.Eval(x) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds collided on %d of 1000 inputs", same)
	}
}

func TestEvalInField(t *testing.T) {
	f := func(seed int64, x uint64, dRaw uint8) bool {
		d := int(dRaw%8) + 1
		p := NewPoly(d, rand.New(rand.NewSource(seed)))
		return p.Eval(x) < Prime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRangeBounds(t *testing.T) {
	p := NewPoly(4, rand.New(rand.NewSource(3)))
	for _, n := range []uint64{1, 2, 3, 17, 1 << 20} {
		for x := uint64(0); x < 2000; x++ {
			if v := p.Range(x, n); v >= n {
				t.Fatalf("Range(%d, %d) = %d out of range", x, n, v)
			}
		}
	}
}

func TestRangeUniformity(t *testing.T) {
	// Chi-squared style sanity check: hashing 1<<16 keys into 16 buckets
	// should put roughly 4096 in each.
	p := NewPoly(8, rand.New(rand.NewSource(11)))
	const keys = 1 << 16
	const buckets = 16
	var counts [buckets]int
	for x := uint64(0); x < keys; x++ {
		counts[p.Range(x, buckets)]++
	}
	expected := float64(keys) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Errorf("bucket %d has %d keys, expected ~%.0f", b, c, expected)
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, prob := range []float64{0.01, 0.1, 0.5, 0.9} {
		p := NewPoly(8, rng)
		const keys = 1 << 16
		hits := 0
		for x := uint64(0); x < keys; x++ {
			if p.Bernoulli(x, prob) {
				hits++
			}
		}
		got := float64(hits) / keys
		if math.Abs(got-prob) > 0.02 {
			t.Errorf("Bernoulli rate %.3f measured %.3f", prob, got)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	p := NewPoly(2, rand.New(rand.NewSource(9)))
	for x := uint64(0); x < 100; x++ {
		if p.Bernoulli(x, 0) {
			t.Fatal("Bernoulli(_, 0) returned true")
		}
		if !p.Bernoulli(x, 1) {
			t.Fatal("Bernoulli(_, 1) returned false")
		}
		if p.Bernoulli(x, -0.5) {
			t.Fatal("negative probability sampled")
		}
		if !p.Bernoulli(x, 1.5) {
			t.Fatal("probability > 1 rejected")
		}
	}
}

func TestSignBalance(t *testing.T) {
	p := New4Wise(rand.New(rand.NewSource(13)))
	sum := 0
	const keys = 1 << 16
	for x := uint64(0); x < keys; x++ {
		s := p.Sign(x)
		if s != 1 && s != -1 {
			t.Fatalf("Sign returned %d", s)
		}
		sum += s
	}
	if math.Abs(float64(sum)) > 6*math.Sqrt(keys) {
		t.Errorf("signs unbalanced: sum %d over %d keys", sum, keys)
	}
}

func TestSignPairwiseDecorrelation(t *testing.T) {
	// E[s(x)s(y)] should be ~0 for x != y under 4-wise independence.
	rng := rand.New(rand.NewSource(17))
	const trials = 4000
	sum := 0
	for i := 0; i < trials; i++ {
		p := New4Wise(rng)
		sum += p.Sign(1) * p.Sign(2)
	}
	if math.Abs(float64(sum)) > 6*math.Sqrt(trials) {
		t.Errorf("sign products correlated: sum %d over %d trials", sum, trials)
	}
}

func TestPairwiseIndependenceEmpirical(t *testing.T) {
	// For a pairwise family into 4 buckets, Pr[h(x)=a and h(y)=b] should be
	// ~1/16 for each (a,b) with x != y, over random draws of h.
	rng := rand.New(rand.NewSource(19))
	const trials = 8000
	var joint [4][4]int
	for i := 0; i < trials; i++ {
		p := NewPairwise(rng)
		joint[p.Range(100, 4)][p.Range(200, 4)]++
	}
	expected := float64(trials) / 16
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if math.Abs(float64(joint[a][b])-expected) > 6*math.Sqrt(expected) {
				t.Errorf("joint[%d][%d] = %d, expected ~%.0f", a, b, joint[a][b], expected)
			}
		}
	}
}

func TestLogDegree(t *testing.T) {
	cases := []struct {
		m, n, min int
	}{
		{1, 1, 4},
		{0, 0, 4},
		{1024, 1024, 22},
		{1 << 20, 1 << 20, 42},
	}
	for _, c := range cases {
		if d := LogDegree(c.m, c.n); d < c.min {
			t.Errorf("LogDegree(%d,%d) = %d, want >= %d", c.m, c.n, d, c.min)
		}
	}
	if LogDegree(8, 8) >= LogDegree(1<<30, 1<<30) {
		t.Error("LogDegree not increasing in universe size")
	}
}

func TestNewPolyPanicsOnBadDegree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPoly(0, _) did not panic")
		}
	}()
	NewPoly(0, rand.New(rand.NewSource(1)))
}

func TestRangePanicsOnZero(t *testing.T) {
	p := NewPairwise(rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("Range(_, 0) did not panic")
		}
	}()
	p.Range(1, 0)
}

func TestSpaceWords(t *testing.T) {
	for d := 1; d <= 32; d++ {
		p := NewPoly(d, rand.New(rand.NewSource(int64(d))))
		if p.SpaceWords() != d {
			t.Errorf("SpaceWords for degree %d = %d", d, p.SpaceWords())
		}
		if p.Degree() != d {
			t.Errorf("Degree() = %d, want %d", p.Degree(), d)
		}
	}
}

func TestEvalLargeKeys(t *testing.T) {
	// Keys at and beyond Prime must still evaluate in-field.
	p := NewPoly(4, rand.New(rand.NewSource(23)))
	for _, x := range []uint64{Prime - 1, Prime, Prime + 1, math.MaxUint64, math.MaxUint64 - 1} {
		if v := p.Eval(x); v >= Prime {
			t.Errorf("Eval(%d) = %d out of field", x, v)
		}
	}
	// Keys congruent mod Prime hash identically.
	if p.Eval(3) != p.Eval(3+Prime) {
		t.Error("keys congruent mod Prime hashed differently")
	}
}

func BenchmarkEvalDegree4(b *testing.B) {
	p := New4Wise(rand.New(rand.NewSource(1)))
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= p.Eval(uint64(i))
	}
	_ = sink
}

func BenchmarkEvalDegree32(b *testing.B) {
	p := NewPoly(32, rand.New(rand.NewSource(1)))
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= p.Eval(uint64(i))
	}
	_ = sink
}
