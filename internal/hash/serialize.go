package hash

import (
	"encoding/binary"
	"fmt"
)

// Equal reports whether two functions are the same member of the same
// family (identical coefficients). Mergeable sketches require their hash
// functions to be Equal.
func (p *Poly) Equal(q *Poly) bool {
	if q == nil || len(p.coef) != len(q.coef) {
		return false
	}
	for i, c := range p.coef {
		if q.coef[i] != c {
			return false
		}
	}
	return true
}

// MarshalBinary encodes the function as a length-prefixed coefficient
// list, little endian. The encoding realizes Lemma A.2's d·log(mn)-bit
// bound (8 bytes per coefficient plus a 4-byte header).
func (p *Poly) MarshalBinary() ([]byte, error) {
	out := make([]byte, 4+8*len(p.coef))
	binary.LittleEndian.PutUint32(out, uint32(len(p.coef)))
	for i, c := range p.coef {
		binary.LittleEndian.PutUint64(out[4+8*i:], c)
	}
	return out, nil
}

// UnmarshalBinary decodes a function written by MarshalBinary.
func (p *Poly) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("hash: truncated poly header (%d bytes)", len(data))
	}
	d := binary.LittleEndian.Uint32(data)
	if d < 1 || d > 1<<16 {
		return fmt.Errorf("hash: implausible degree %d", d)
	}
	if len(data) != int(4+8*d) {
		return fmt.Errorf("hash: poly payload %d bytes, want %d", len(data), 4+8*d)
	}
	coef := make([]uint64, d)
	for i := range coef {
		c := binary.LittleEndian.Uint64(data[4+8*i:])
		if c >= Prime {
			return fmt.Errorf("hash: coefficient %d out of field", i)
		}
		coef[i] = c
	}
	p.coef = coef
	return nil
}
