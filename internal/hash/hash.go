// Package hash provides k-wise independent hash families over the Mersenne
// prime field GF(2^61 - 1), plus helpers for range mapping, subset sampling
// and random signs.
//
// The paper (Indyk–Vakilian, PODS'19) uses hash functions drawn from
// families of bounded independence everywhere randomness is needed:
// 4-wise functions for the universe reduction (Lemma 3.5) and
// Θ(log(mn))-wise functions for set sampling (Section A.1), superset
// partitioning (Section 4.2) and substream sampling (Section 2.2).
// Lemma A.2 (Vadhan, Corollary 3.34) stores a d-wise independent function
// in d·log(mn) bits; the classic construction is a degree-(d-1) polynomial
// with uniform coefficients over a prime field, which is what we implement.
package hash

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Prime is the Mersenne prime 2^61 - 1 used as the field modulus. Every
// hash value produced by Poly.Eval lies in [0, Prime).
const Prime uint64 = 1<<61 - 1

// addMod returns a+b mod Prime for a, b < Prime.
func addMod(a, b uint64) uint64 {
	s := a + b // < 2^62, no overflow
	if s >= Prime {
		s -= Prime
	}
	return s
}

// mulMod returns a*b mod Prime for a, b < Prime, using the Mersenne fold:
// with p = 2^61-1, (hi·2^64 + lo) ≡ hi·8 + (lo >> 61)·1 + (lo & p).
func mulMod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo = hi*2^3*2^61 + lo ≡ hi*8 + lo (mod 2^61-1),
	// with lo itself folded as (lo >> 61) + (lo & Prime).
	r := (hi << 3) | (lo >> 61) // < 2^64 since hi < 2^58 for a,b < 2^61
	r += lo & Prime
	// r < 2^61 + 2^61 = 2^62, fold once more.
	r = (r >> 61) + (r & Prime)
	if r >= Prime {
		r -= Prime
	}
	return r
}

// Poly is a hash function drawn from a d-wise independent family,
// realised as a degree-(d-1) polynomial with coefficients uniform in
// GF(2^61-1). It is safe for concurrent use after construction.
type Poly struct {
	coef []uint64 // coef[i] multiplies x^i; len(coef) == degree of independence
}

// NewPoly draws a hash function from a d-wise independent family using rng.
// d must be at least 1. The leading coefficient is forced nonzero so the
// polynomial has full degree (this does not affect independence).
func NewPoly(d int, rng *rand.Rand) *Poly {
	if d < 1 {
		panic(fmt.Sprintf("hash: independence degree %d < 1", d))
	}
	coef := make([]uint64, d)
	for i := range coef {
		coef[i] = uint64(rng.Int63n(int64(Prime)))
	}
	if d > 1 && coef[d-1] == 0 {
		coef[d-1] = 1
	}
	return &Poly{coef: coef}
}

// Degree reports the independence degree d of the family the function was
// drawn from.
func (p *Poly) Degree() int { return len(p.coef) }

// Eval returns the hash of x, uniform in [0, Prime). Inputs are reduced
// modulo Prime first, so callers may pass arbitrary uint64 keys; keys that
// collide mod Prime hash identically (the paper's universes are far below
// 2^61, so this never matters in practice).
func (p *Poly) Eval(x uint64) uint64 {
	if x >= Prime {
		x -= Prime // x < 2^64 < 2*Prime+6; one conditional handles all but 7 values
		if x >= Prime {
			x -= Prime
		}
	}
	// Horner evaluation.
	acc := p.coef[len(p.coef)-1]
	for i := len(p.coef) - 2; i >= 0; i-- {
		acc = addMod(mulMod(acc, x), p.coef[i])
	}
	return acc
}

// Range maps the hash of x to [0, n) using the multiply-high trick, which
// preserves near-uniformity (bias O(n/Prime)). n must be positive.
func (p *Poly) Range(x, n uint64) uint64 {
	if n == 0 {
		panic("hash: Range with n == 0")
	}
	hi, _ := bits.Mul64(p.Eval(x)<<3, n) // <<3 scales [0,2^61) to fill [0,2^64)
	return hi
}

// Bernoulli reports whether x is sampled at rate prob ∈ [0, 1]. The decision
// is a deterministic function of x, so a fixed Poly yields a fixed sampled
// subset — exactly the "pick h from a family and keep {x : h(x)=1}" pattern
// the paper uses for set and element sampling.
func (p *Poly) Bernoulli(x uint64, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	threshold := uint64(prob * float64(Prime))
	return p.Eval(x) < threshold
}

// Sign returns +1 or -1 depending on one bit of the hash of x. Drawn from a
// 4-wise family this provides the random signs CountSketch requires.
func (p *Poly) Sign(x uint64) int {
	if p.Eval(x)&1 == 0 {
		return 1
	}
	return -1
}

// SpaceWords reports the number of 64-bit words retained by the function,
// matching Lemma A.2's d·log(mn)-bit bound (one word per coefficient).
func (p *Poly) SpaceWords() int { return len(p.coef) }

// LogDegree returns the Θ(log(mn)) independence degree the paper prescribes
// for universe sizes m and n: ⌈log2(m·n)⌉ + 2, minimum 4.
func LogDegree(m, n int) int {
	if m < 1 {
		m = 1
	}
	if n < 1 {
		n = 1
	}
	d := bits.Len(uint(m)) + bits.Len(uint(n)) + 2
	if d < 4 {
		d = 4
	}
	return d
}

// NewPairwise draws from a 2-wise independent family.
func NewPairwise(rng *rand.Rand) *Poly { return NewPoly(2, rng) }

// New4Wise draws from a 4-wise independent family (universe reduction,
// CountSketch signs).
func New4Wise(rng *rand.Rand) *Poly { return NewPoly(4, rng) }

// NewLogWise draws from a Θ(log(mn))-wise independent family, the degree
// used throughout Sections 2.2, 4.1, 4.2 and A.1.
func NewLogWise(m, n int, rng *rand.Rand) *Poly { return NewPoly(LogDegree(m, n), rng) }
