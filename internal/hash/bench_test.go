package hash

import (
	"math/rand"
	"testing"
)

// benchInputs builds a deterministic input column shaped like one ID
// column of an ingest batch: IDs drawn from a universe much smaller than
// the batch, so the interned/deduped case has something to win.
func benchInputs(n int, universe uint32) []uint64 {
	rng := rand.New(rand.NewSource(42))
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = uint64(rng.Uint32() % universe)
	}
	return xs
}

// BenchmarkPolyEval is the scalar baseline: one Eval call per input at
// the sampling degree used by Practical-parameter estimators.
func BenchmarkPolyEval(b *testing.B) {
	p := NewPoly(8, rand.New(rand.NewSource(1)))
	xs := benchInputs(1<<14, 1<<20)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			sink ^= p.Eval(x)
		}
	}
	_ = sink
	b.ReportMetric(float64(len(xs))*float64(b.N)/b.Elapsed().Seconds(), "evals/s")
}

// BenchmarkPolyEvalBatch evaluates the same column through EvalBatch
// (same field arithmetic, amortized call and bounds overhead).
func BenchmarkPolyEvalBatch(b *testing.B) {
	p := NewPoly(8, rand.New(rand.NewSource(1)))
	xs := benchInputs(1<<14, 1<<20)
	dst := make([]uint64, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = p.EvalBatch(xs, dst)
	}
	b.ReportMetric(float64(len(xs))*float64(b.N)/b.Elapsed().Seconds(), "evals/s")
}

// BenchmarkInterner measures the dedup cost the batch path pays before
// it can win: interning one 16k-edge column with ~2k distinct IDs.
func BenchmarkInterner(b *testing.B) {
	xs := benchInputs(1<<14, 2048)
	var it Interner
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Reset()
		for _, x := range xs {
			it.Add(uint32(x))
		}
	}
	b.ReportMetric(float64(len(xs))*float64(b.N)/b.Elapsed().Seconds(), "adds/s")
}
