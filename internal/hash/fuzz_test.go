package hash

import (
	"math/rand"
	"testing"
)

// FuzzEval checks the field-arithmetic invariants on arbitrary inputs:
// values stay in [0, Prime), keys congruent mod Prime collide, and Range
// respects its bound.
func FuzzEval(f *testing.F) {
	f.Add(int64(1), uint64(0), uint64(7))
	f.Add(int64(-5), uint64(Prime), uint64(1))
	f.Add(int64(99), ^uint64(0), uint64(1<<32))
	f.Fuzz(func(t *testing.T, seed int64, x uint64, n uint64) {
		p := NewPoly(4+int(x%5), rand.New(rand.NewSource(seed)))
		v := p.Eval(x)
		if v >= Prime {
			t.Fatalf("Eval(%d) = %d out of field", x, v)
		}
		if x < Prime {
			if p.Eval(x) != p.Eval(x+Prime) {
				t.Fatalf("congruent keys differ at %d", x)
			}
		}
		if n == 0 {
			n = 1
		}
		if r := p.Range(x, n); r >= n {
			t.Fatalf("Range(%d, %d) = %d", x, n, r)
		}
		// Bernoulli must be monotone in the rate.
		if p.Bernoulli(x, 0.2) && !p.Bernoulli(x, 0.9) {
			t.Fatalf("Bernoulli not monotone in rate at %d", x)
		}
	})
}

// FuzzMulMod cross-checks the Mersenne fold against double-and-add.
func FuzzMulMod(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(Prime-1, Prime-1)
	f.Add(uint64(1)<<60, uint64(3))
	f.Fuzz(func(t *testing.T, a, b uint64) {
		a %= Prime
		b %= Prime
		if got, want := mulMod(a, b), slowMulMod(a, b); got != want {
			t.Fatalf("mulMod(%d,%d) = %d, want %d", a, b, got, want)
		}
	})
}
