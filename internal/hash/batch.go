package hash

import "math/bits"

// Batched evaluation and ID interning for the hot ingest path.
//
// The estimator's per-edge cost is dominated by re-evaluating
// Θ(log(mn))-degree polynomials whose inputs are only the set ID or only
// the element ID of the arriving edge. Within one batch of edges those
// inputs repeat heavily (a batch touches far fewer distinct sets than
// edges, and small reduced universes collapse the element column), so the
// batch path dedups each ID column once with an Interner and evaluates
// every polynomial once per distinct input instead of once per edge.
//
// Every function here is bit-for-bit equivalent to calling the scalar
// counterpart (Eval, Range, Bernoulli) element-wise: same field
// reduction, same thresholds, same outputs. Callers rely on that to keep
// the batched estimator identical to the sequential one.

// EvalBatch evaluates the polynomial on every input, writing hashes into
// dst (grown as needed) and returning it. dst[i] == p.Eval(xs[i]) for all
// i; the two differ only in call overhead.
func (p *Poly) EvalBatch(xs []uint64, dst []uint64) []uint64 {
	dst = growU64(dst, len(xs))
	coef := p.coef
	top := len(coef) - 1
	for i, x := range xs {
		if x >= Prime {
			x -= Prime
			if x >= Prime {
				x -= Prime
			}
		}
		acc := coef[top]
		for c := top - 1; c >= 0; c-- {
			acc = addMod(mulMod(acc, x), coef[c])
		}
		dst[i] = acc
	}
	return dst
}

// RangeBatch maps every input's hash to [0, n) with the same multiply-high
// trick as Range. dst[i] == p.Range(xs[i], n). n must be positive.
func (p *Poly) RangeBatch(xs []uint64, n uint64, dst []uint64) []uint64 {
	if n == 0 {
		panic("hash: RangeBatch with n == 0")
	}
	dst = p.EvalBatch(xs, dst)
	for i, v := range dst {
		hi, _ := bits.Mul64(v<<3, n)
		dst[i] = hi
	}
	return dst
}

// BernoulliBatch writes each input's sampling decision at rate prob into
// dst (grown as needed). dst[i] == p.Bernoulli(xs[i], prob), including the
// prob ≤ 0 and prob ≥ 1 short-circuits that skip hashing entirely.
func (p *Poly) BernoulliBatch(xs []uint64, prob float64, dst []bool) []bool {
	dst = growBool(dst, len(xs))
	if prob <= 0 {
		for i := range dst {
			dst[i] = false
		}
		return dst
	}
	if prob >= 1 {
		for i := range dst {
			dst[i] = true
		}
		return dst
	}
	threshold := uint64(prob * float64(Prime))
	coef := p.coef
	top := len(coef) - 1
	for i, x := range xs {
		if x >= Prime {
			x -= Prime
			if x >= Prime {
				x -= Prime
			}
		}
		acc := coef[top]
		for c := top - 1; c >= 0; c-- {
			acc = addMod(mulMod(acc, x), coef[c])
		}
		dst[i] = acc < threshold
	}
	return dst
}

// Interner dedups one ID column of an edge batch: Add records each
// occurrence and returns a dense index in first-appearance order, so an
// ID-keyed hash decision can be computed once per distinct ID (over Keys)
// and looked up per occurrence (via Pos). The dedup table is open-addressed
// (linear probing over a power-of-two table storing index+1, so Reset is a
// single memclr) rather than a Go map — interning runs once per edge per
// chunk on the ingest hot path. It is reusable working memory — Reset keeps
// the allocations — and is NOT sketch state: it holds no information beyond
// the current batch, so it is excluded from every SpaceWords accounting
// (see internal/spaceacct).
type Interner struct {
	tab  []int32 // slot -> index into Keys + 1; 0 = empty
	mask uint64
	// Keys holds the distinct IDs in first-appearance order, widened to
	// uint64 so they can feed EvalBatch directly.
	Keys []uint64
	// Pos holds, for every Add in order, the index of that ID in Keys.
	Pos []int32
}

// Reset clears the interner for a new batch, retaining capacity.
func (it *Interner) Reset() {
	if it.tab == nil {
		it.tab = make([]int32, 1024)
		it.mask = 1023
	} else {
		clear(it.tab)
	}
	it.Keys = it.Keys[:0]
	it.Pos = it.Pos[:0]
}

// internMix spreads the 32-bit ID over the table (Fibonacci hashing on the
// upper bits of a 64-bit product).
func internMix(id uint32) uint64 {
	return (uint64(id) * 0x9e3779b97f4a7c15) >> 32
}

// Add records one occurrence of id and returns its dense index.
func (it *Interner) Add(id uint32) int32 {
	if uint64(len(it.Keys))*2 >= uint64(len(it.tab)) {
		it.grow()
	}
	i := internMix(id) & it.mask
	for {
		v := it.tab[i]
		if v == 0 {
			k := int32(len(it.Keys))
			it.tab[i] = k + 1
			it.Keys = append(it.Keys, uint64(id))
			it.Pos = append(it.Pos, k)
			return k
		}
		if uint32(it.Keys[v-1]) == id {
			it.Pos = append(it.Pos, v-1)
			return v - 1
		}
		i = (i + 1) & it.mask
	}
}

// grow doubles the table and reinserts the distinct keys; Keys order (and
// therefore every dense index already handed out) is unchanged.
func (it *Interner) grow() {
	size := uint64(len(it.tab)) * 2
	it.tab = make([]int32, size)
	it.mask = size - 1
	for k, key := range it.Keys {
		i := internMix(uint32(key)) & it.mask
		for it.tab[i] != 0 {
			i = (i + 1) & it.mask
		}
		it.tab[i] = int32(k) + 1
	}
}

// growU64 returns a slice of length n reusing dst's storage when possible.
func growU64(dst []uint64, n int) []uint64 {
	if cap(dst) < n {
		return make([]uint64, n)
	}
	return dst[:n]
}

// growBool returns a slice of length n reusing dst's storage when possible.
func growBool(dst []bool, n int) []bool {
	if cap(dst) < n {
		return make([]bool, n)
	}
	return dst[:n]
}
