package hash

import "math/bits"

// Batched evaluation and ID interning for the hot ingest path.
//
// The estimator's per-edge cost is dominated by re-evaluating
// Θ(log(mn))-degree polynomials whose inputs are only the set ID or only
// the element ID of the arriving edge. Within one batch of edges those
// inputs repeat heavily (a batch touches far fewer distinct sets than
// edges, and small reduced universes collapse the element column), so the
// batch path dedups each ID column once with an Interner and evaluates
// every polynomial once per distinct input instead of once per edge.
//
// Every function here is bit-for-bit equivalent to calling the scalar
// counterpart (Eval, Range, Bernoulli) element-wise: same field
// reduction, same thresholds, same outputs. Callers rely on that to keep
// the batched estimator identical to the sequential one.

// EvalBatch evaluates the polynomial on every input, writing hashes into
// dst (grown as needed) and returning it. dst[i] == p.Eval(xs[i]) for all
// i; the two differ only in call overhead.
func (p *Poly) EvalBatch(xs []uint64, dst []uint64) []uint64 {
	dst = growU64(dst, len(xs))
	coef := p.coef
	top := len(coef) - 1
	for i, x := range xs {
		if x >= Prime {
			x -= Prime
			if x >= Prime {
				x -= Prime
			}
		}
		acc := coef[top]
		for c := top - 1; c >= 0; c-- {
			acc = addMod(mulMod(acc, x), coef[c])
		}
		dst[i] = acc
	}
	return dst
}

// RangeBatch maps every input's hash to [0, n) with the same multiply-high
// trick as Range. dst[i] == p.Range(xs[i], n). n must be positive.
func (p *Poly) RangeBatch(xs []uint64, n uint64, dst []uint64) []uint64 {
	if n == 0 {
		panic("hash: RangeBatch with n == 0")
	}
	dst = p.EvalBatch(xs, dst)
	for i, v := range dst {
		hi, _ := bits.Mul64(v<<3, n)
		dst[i] = hi
	}
	return dst
}

// BernoulliBatch writes each input's sampling decision at rate prob into
// dst (grown as needed). dst[i] == p.Bernoulli(xs[i], prob), including the
// prob ≤ 0 and prob ≥ 1 short-circuits that skip hashing entirely.
func (p *Poly) BernoulliBatch(xs []uint64, prob float64, dst []bool) []bool {
	dst = growBool(dst, len(xs))
	if prob <= 0 {
		for i := range dst {
			dst[i] = false
		}
		return dst
	}
	if prob >= 1 {
		for i := range dst {
			dst[i] = true
		}
		return dst
	}
	threshold := uint64(prob * float64(Prime))
	coef := p.coef
	top := len(coef) - 1
	for i, x := range xs {
		if x >= Prime {
			x -= Prime
			if x >= Prime {
				x -= Prime
			}
		}
		acc := coef[top]
		for c := top - 1; c >= 0; c-- {
			acc = addMod(mulMod(acc, x), coef[c])
		}
		dst[i] = acc < threshold
	}
	return dst
}

// Interner dedups one ID column of an edge batch: Add records each
// occurrence and returns a dense index in first-appearance order, so an
// ID-keyed hash decision can be computed once per distinct ID (over Keys)
// and looked up per occurrence (via Pos). It is reusable working memory —
// Reset keeps the allocations — and is NOT sketch state: it holds no
// information beyond the current batch, so it is excluded from every
// SpaceWords accounting (see internal/spaceacct).
type Interner struct {
	idx map[uint32]int32
	// Keys holds the distinct IDs in first-appearance order, widened to
	// uint64 so they can feed EvalBatch directly.
	Keys []uint64
	// Pos holds, for every Add in order, the index of that ID in Keys.
	Pos []int32
}

// Reset clears the interner for a new batch, retaining capacity.
func (it *Interner) Reset() {
	if it.idx == nil {
		it.idx = make(map[uint32]int32)
	} else {
		clear(it.idx)
	}
	it.Keys = it.Keys[:0]
	it.Pos = it.Pos[:0]
}

// Add records one occurrence of id and returns its dense index.
func (it *Interner) Add(id uint32) int32 {
	i, ok := it.idx[id]
	if !ok {
		i = int32(len(it.Keys))
		it.idx[id] = i
		it.Keys = append(it.Keys, uint64(id))
	}
	it.Pos = append(it.Pos, i)
	return i
}

// growU64 returns a slice of length n reusing dst's storage when possible.
func growU64(dst []uint64, n int) []uint64 {
	if cap(dst) < n {
		return make([]uint64, n)
	}
	return dst[:n]
}

// growBool returns a slice of length n reusing dst's storage when possible.
func growBool(dst []bool, n int) []bool {
	if cap(dst) < n {
		return make([]bool, n)
	}
	return dst[:n]
}
