package hash

import "math/bits"

// Batched evaluation and ID interning for the hot ingest path.
//
// The estimator's per-edge cost is dominated by re-evaluating
// Θ(log(mn))-degree polynomials whose inputs are only the set ID or only
// the element ID of the arriving edge. Within one batch of edges those
// inputs repeat heavily (a batch touches far fewer distinct sets than
// edges, and small reduced universes collapse the element column), so the
// batch path dedups each ID column once with an Interner and evaluates
// every polynomial once per distinct input instead of once per edge.
//
// Every function here is bit-for-bit equivalent to calling the scalar
// counterpart (Eval, Range, Bernoulli) element-wise: same field
// reduction, same thresholds, same outputs. Callers rely on that to keep
// the batched estimator identical to the sequential one.

// eval8 evaluates the polynomial at eight points with independent
// accumulator lanes, writing the hashes into out. The outputs are
// bit-identical to eight Eval calls; the kernel differs from the scalar
// loop in two ways that change only speed:
//
//   - Eight lanes give the CPU eight independent multiply chains to
//     overlap. Horner evaluation is a serial dependency chain per input,
//     so the scalar loop stalls on multiply latency while the unrolled
//     form approaches multiply throughput.
//
//   - Accumulators are kept lazily reduced. mulModLazy returns a
//     representative in [0, 2^61+3] (skipping mulMod's canonicalizing
//     compare-subtract) and the Horner "+ coef[c]" is a plain add
//     (skipping addMod's), so each accumulator stays congruent to the
//     scalar value mod Prime while remaining below 2^62+2 — within
//     mulModLazy's input bound. One canonicalizing fold per lane at the
//     end lands on the unique representative in [0, Prime), which is the
//     exact value the always-canonical scalar recurrence carries.
//
// The array-pointer parameters make the eight loads and stores
// bounds-check free; callers convert their slices with (*[8]uint64)(s).
func eval8(coef []uint64, x, out *[8]uint64) {
	top := len(coef) - 1
	if top == 0 {
		// Degree-1 family: Eval returns coef[0] untouched; bypass the
		// canonicalization so we do exactly the same.
		for i := range out {
			out[i] = coef[0]
		}
		return
	}
	x0, x1, x2, x3 := reduceInput(x[0]), reduceInput(x[1]), reduceInput(x[2]), reduceInput(x[3])
	x4, x5, x6, x7 := reduceInput(x[4]), reduceInput(x[5]), reduceInput(x[6]), reduceInput(x[7])
	if (x0|x1|x2|x3|x4|x5|x6|x7)>>61 != 0 {
		// Keys around 2^62 and above survive Eval's partial input
		// reduction with bits ≥ 2^61 still set, outside mulModLazy's
		// input bound. The hot path never produces them (IDs are widened
		// uint32s), so blocks containing one just mirror the scalar ops.
		for i, v := range x {
			out[i] = evalOne(coef, v)
		}
		return
	}
	a0 := coef[top]
	a1, a2, a3 := a0, a0, a0
	a4, a5, a6, a7 := a0, a0, a0, a0
	for c := top - 1; c >= 0; c-- {
		k := coef[c]
		a0 = mulModLazy(a0, x0) + k
		a1 = mulModLazy(a1, x1) + k
		a2 = mulModLazy(a2, x2) + k
		a3 = mulModLazy(a3, x3) + k
		a4 = mulModLazy(a4, x4) + k
		a5 = mulModLazy(a5, x5) + k
		a6 = mulModLazy(a6, x6) + k
		a7 = mulModLazy(a7, x7) + k
	}
	out[0], out[1], out[2], out[3] = canon(a0), canon(a1), canon(a2), canon(a3)
	out[4], out[5], out[6], out[7] = canon(a4), canon(a5), canon(a6), canon(a7)
}

// mulModLazy returns a representative of a·b mod Prime in [0, 2^61+3],
// valid for a < 2^62+4 and b < 2^61. It is mulMod without the final
// compare-subtract; the wider input bound holds because hi < 2^59+1 keeps
// (hi<<3)|(lo>>61) + (lo&Prime) below 2^63, and one fold of that brings
// the result under 2^61+4.
func mulModLazy(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	r := (hi << 3) | (lo >> 61)
	r += lo & Prime
	return (r >> 61) + (r & Prime)
}

// canon folds a lazily-reduced accumulator (< 2^62+2) to the unique
// representative in [0, Prime).
func canon(a uint64) uint64 {
	r := (a >> 61) + (a & Prime)
	if r >= Prime {
		r -= Prime
	}
	return r
}

// reduceInput applies the same partial input reduction as the top of
// Eval: keys below ~3·Prime land in [0, Prime), larger ones keep their
// residue class but stay wide (eval8 detects and sidesteps those).
func reduceInput(x uint64) uint64 {
	if x >= Prime {
		x -= Prime
		if x >= Prime {
			x -= Prime
		}
	}
	return x
}

// evalOne is the scalar Horner recurrence, operation for operation the
// body of Eval; the 8-way batch tails and fallbacks route through it.
func evalOne(coef []uint64, x uint64) uint64 {
	x = reduceInput(x)
	acc := coef[len(coef)-1]
	for c := len(coef) - 2; c >= 0; c-- {
		acc = addMod(mulMod(acc, x), coef[c])
	}
	return acc
}

// EvalBatch evaluates the polynomial on every input, writing hashes into
// dst (grown as needed) and returning it. dst[i] == p.Eval(xs[i]) for all
// i; the two differ only in speed (full blocks of eight go through the
// unrolled eval8 kernel).
func (p *Poly) EvalBatch(xs []uint64, dst []uint64) []uint64 {
	dst = growU64(dst, len(xs))
	coef := p.coef
	i := 0
	for ; i+8 <= len(xs); i += 8 {
		eval8(coef, (*[8]uint64)(xs[i:]), (*[8]uint64)(dst[i:]))
	}
	for ; i < len(xs); i++ {
		dst[i] = evalOne(coef, xs[i])
	}
	return dst
}

// RangeBatch maps every input's hash to [0, n) with the same multiply-high
// trick as Range. dst[i] == p.Range(xs[i], n). n must be positive.
func (p *Poly) RangeBatch(xs []uint64, n uint64, dst []uint64) []uint64 {
	if n == 0 {
		panic("hash: RangeBatch with n == 0")
	}
	dst = p.EvalBatch(xs, dst)
	for i, v := range dst {
		hi, _ := bits.Mul64(v<<3, n)
		dst[i] = hi
	}
	return dst
}

// BernoulliBatch writes each input's sampling decision at rate prob into
// dst (grown as needed). dst[i] == p.Bernoulli(xs[i], prob), including the
// prob ≤ 0 and prob ≥ 1 short-circuits that skip hashing entirely.
func (p *Poly) BernoulliBatch(xs []uint64, prob float64, dst []bool) []bool {
	dst = growBool(dst, len(xs))
	if prob <= 0 {
		for i := range dst {
			dst[i] = false
		}
		return dst
	}
	if prob >= 1 {
		for i := range dst {
			dst[i] = true
		}
		return dst
	}
	threshold := uint64(prob * float64(Prime))
	coef := p.coef
	i := 0
	var hv [8]uint64
	for ; i+8 <= len(xs); i += 8 {
		eval8(coef, (*[8]uint64)(xs[i:]), &hv)
		d := (*[8]bool)(dst[i:])
		for j, v := range hv {
			d[j] = v < threshold
		}
	}
	for ; i < len(xs); i++ {
		dst[i] = evalOne(coef, xs[i]) < threshold
	}
	return dst
}

// Interner dedups one ID column of an edge batch: Add records each
// occurrence and returns a dense index in first-appearance order, so an
// ID-keyed hash decision can be computed once per distinct ID (over Keys)
// and looked up per occurrence (via Pos). The dedup table is open-addressed
// (linear probing over a power-of-two table storing index+1, so Reset is a
// single memclr) rather than a Go map — interning runs once per edge per
// chunk on the ingest hot path. It is reusable working memory — Reset keeps
// the allocations — and is NOT sketch state: it holds no information beyond
// the current batch, so it is excluded from every SpaceWords accounting
// (see internal/spaceacct).
type Interner struct {
	tab  []int32 // slot -> index into Keys + 1; 0 = empty
	mask uint64
	// Keys holds the distinct IDs in first-appearance order, widened to
	// uint64 so they can feed EvalBatch directly.
	Keys []uint64
	// Pos holds, for every Add in order, the index of that ID in Keys.
	Pos []int32
}

// Reset clears the interner for a new batch, retaining capacity.
func (it *Interner) Reset() {
	if it.tab == nil {
		it.tab = make([]int32, 1024)
		it.mask = 1023
	} else {
		clear(it.tab)
	}
	it.Keys = it.Keys[:0]
	it.Pos = it.Pos[:0]
}

// internMix spreads the 32-bit ID over the table (Fibonacci hashing on the
// upper bits of a 64-bit product).
func internMix(id uint32) uint64 {
	return (uint64(id) * 0x9e3779b97f4a7c15) >> 32
}

// Add records one occurrence of id and returns its dense index.
func (it *Interner) Add(id uint32) int32 {
	if uint64(len(it.Keys))*2 >= uint64(len(it.tab)) {
		it.grow()
	}
	i := internMix(id) & it.mask
	for {
		v := it.tab[i]
		if v == 0 {
			k := int32(len(it.Keys))
			it.tab[i] = k + 1
			it.Keys = append(it.Keys, uint64(id))
			it.Pos = append(it.Pos, k)
			return k
		}
		if uint32(it.Keys[v-1]) == id {
			it.Pos = append(it.Pos, v-1)
			return v - 1
		}
		i = (i + 1) & it.mask
	}
}

// grow doubles the table and reinserts the distinct keys; Keys order (and
// therefore every dense index already handed out) is unchanged.
func (it *Interner) grow() {
	size := uint64(len(it.tab)) * 2
	it.tab = make([]int32, size)
	it.mask = size - 1
	for k, key := range it.Keys {
		i := internMix(uint32(key)) & it.mask
		for it.tab[i] != 0 {
			i = (i + 1) & it.mask
		}
		it.tab[i] = int32(k) + 1
	}
}

// growU64 returns a slice of length n reusing dst's storage when possible.
func growU64(dst []uint64, n int) []uint64 {
	if cap(dst) < n {
		return make([]uint64, n)
	}
	return dst[:n]
}

// growBool returns a slice of length n reusing dst's storage when possible.
func growBool(dst []bool, n int) []bool {
	if cap(dst) < n {
		return make([]bool, n)
	}
	return dst[:n]
}
