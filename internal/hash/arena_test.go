package hash

import (
	"sync"
	"testing"
)

// Interning through an arena-leased block must produce exactly the same
// dense indices as a private interner: block adoption is invisible to
// results.
func TestArenaLeaseBitIdentical(t *testing.T) {
	ids := make([]uint32, 0, 4096)
	x := uint32(12345)
	for i := 0; i < 4096; i++ {
		x = x*1664525 + 1013904223
		ids = append(ids, x%257) // heavy duplication
	}

	var ref Interner
	ref.Reset()
	refPos := make([]int32, 0, len(ids))
	for _, id := range ids {
		refPos = append(refPos, ref.Add(id))
	}

	a := NewArena(4)
	// Warm the pool so the second lease adopts a used block.
	var warm Interner
	a.Lease(&warm)
	warm.Reset()
	for _, id := range ids {
		warm.Add(id)
	}
	a.Return(&warm)
	if warm.tab != nil {
		t.Fatalf("Return left storage attached")
	}

	var it Interner
	a.Lease(&it)
	it.Reset()
	for i, id := range ids {
		if got := it.Add(id); got != refPos[i] {
			t.Fatalf("Add(%d) at %d = %d, want %d", id, i, got, refPos[i])
		}
	}
	if len(it.Keys) != len(ref.Keys) {
		t.Fatalf("Keys len %d, want %d", len(it.Keys), len(ref.Keys))
	}
	for i := range it.Keys {
		if it.Keys[i] != ref.Keys[i] {
			t.Fatalf("Keys[%d] = %d, want %d", i, it.Keys[i], ref.Keys[i])
		}
	}

	st := a.Stats()
	if st.Leases != 2 || st.Hits != 1 || st.Returns != 1 {
		t.Fatalf("stats = %+v, want 2 leases / 1 hit / 1 return", st)
	}
}

// The free list must stay bounded at maxBlocks no matter how many blocks
// come back.
func TestArenaBoundedFreeList(t *testing.T) {
	a := NewArena(2)
	for i := 0; i < 8; i++ {
		var it Interner
		it.Reset()
		it.Add(uint32(i))
		a.Return(&it)
	}
	if st := a.Stats(); st.Retained != 2 || st.Returns != 8 {
		t.Fatalf("stats = %+v, want retained=2 returns=8", st)
	}
}

// Lease on an interner that already has storage is a no-op.
func TestArenaLeaseKeepsExistingStorage(t *testing.T) {
	a := NewArena(2)
	var it Interner
	it.Reset()
	tab := &it.tab[0]
	a.Lease(&it)
	if &it.tab[0] != tab {
		t.Fatalf("Lease replaced existing storage")
	}
	if st := a.Stats(); st.Leases != 0 {
		t.Fatalf("Lease on stocked interner counted: %+v", st)
	}
}

// Nil arena and nil interner are safe everywhere (sessions without a
// shared arena pass nil through the whole plumbing).
func TestArenaNilSafety(t *testing.T) {
	var a *Arena
	var it Interner
	a.Lease(&it)
	a.Return(&it)
	if got := a.Stats(); got != (ArenaStats{}) {
		t.Fatalf("nil arena stats = %+v", got)
	}
	na := NewArena(1)
	na.Lease(nil)
	na.Return(nil)
}

// Concurrent lease/return traffic from many goroutines must be safe and
// keep each goroutine's interning correct (run under -race).
func TestArenaConcurrent(t *testing.T) {
	a := NewArena(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				var it Interner
				a.Lease(&it)
				it.Reset()
				for i := 0; i < 100; i++ {
					id := uint32(g*1000 + i%17)
					idx := it.Add(id)
					if it.Keys[idx] != uint64(id) {
						t.Errorf("g%d: Keys[%d] = %d, want %d", g, idx, it.Keys[idx], id)
						return
					}
				}
				a.Return(&it)
			}
		}(g)
	}
	wg.Wait()
	st := a.Stats()
	if st.Retained > 4 {
		t.Fatalf("retained %d > maxBlocks 4", st.Retained)
	}
}
