package hash

import "sync"

// Arena is a shared pool of interner working memory for co-resident
// estimator sessions. Every hydrated session needs interner tables only
// while a batch is actually being indexed; between batches the tables are
// pure capacity. Without sharing, a node holding thousands of sessions
// pays that capacity thousands of times over. With an Arena, a session
// leases a block when a batch arrives and returns it when its queue goes
// idle, so steady-state interner memory scales with *concurrently active*
// sessions, not resident ones.
//
// A block is the backing storage of one Interner: the open-addressed
// table plus the Keys/Pos slices. Leasing adopts a block into an Interner
// whose storage is nil; returning strips the storage back out. The
// Interner's Reset clears the adopted table before every batch, so a
// block carries no information between sessions — bit-identity of results
// is unaffected by which block (or none) a session happens to hold.
//
// The free list is bounded: beyond maxBlocks, returned storage is dropped
// for the GC. All methods are safe for concurrent use.
type Arena struct {
	mu        sync.Mutex
	free      []internBlock
	maxBlocks int

	leases   uint64 // total Lease calls that adopted or created storage
	hits     uint64 // leases satisfied from the free list
	returns  uint64 // blocks handed back (kept or dropped)
	retained int    // blocks currently on the free list (== len(free))
}

type internBlock struct {
	tab  []int32
	keys []uint64
	pos  []int32
}

// NewArena returns an arena retaining at most maxBlocks returned blocks
// (maxBlocks <= 0 selects a default of 64).
func NewArena(maxBlocks int) *Arena {
	if maxBlocks <= 0 {
		maxBlocks = 64
	}
	return &Arena{maxBlocks: maxBlocks}
}

// Lease ensures it has backing storage, adopting a pooled block when one
// is available. An Interner that already holds storage is left alone, so
// calling Lease before every batch is cheap. The adopted table is cleared
// by the caller's subsequent Reset, not here.
func (a *Arena) Lease(it *Interner) {
	if a == nil || it == nil || it.tab != nil {
		return
	}
	a.mu.Lock()
	a.leases++
	if n := len(a.free); n > 0 {
		b := a.free[n-1]
		a.free[n-1] = internBlock{}
		a.free = a.free[:n-1]
		a.retained = len(a.free)
		a.hits++
		a.mu.Unlock()
		it.tab = b.tab
		it.mask = uint64(len(b.tab)) - 1
		it.Keys = b.keys[:0]
		it.Pos = b.pos[:0]
		return
	}
	a.mu.Unlock()
	// No pooled block: let the Interner's own Reset allocate fresh
	// storage at its default size on first use.
}

// Return strips it's backing storage into the pool and leaves it empty
// (as if freshly zero-valued). Safe to call on an Interner with no
// storage. The table is cleared on return so a pooled block never leaks
// one session's IDs into another's timing or debugging view.
func (a *Arena) Return(it *Interner) {
	if a == nil || it == nil || it.tab == nil {
		return
	}
	b := internBlock{tab: it.tab, keys: it.Keys, pos: it.Pos}
	it.tab, it.mask, it.Keys, it.Pos = nil, 0, nil, nil
	clear(b.tab)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.returns++
	if len(a.free) < a.maxBlocks {
		a.free = append(a.free, b)
		a.retained = len(a.free)
	}
}

// ArenaStats is a point-in-time snapshot of arena traffic.
type ArenaStats struct {
	Leases   uint64 // Lease calls on storage-less interners
	Hits     uint64 // of those, satisfied from the free list
	Returns  uint64 // blocks handed back
	Retained int    // blocks currently pooled
}

// Stats returns a snapshot of arena counters.
func (a *Arena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return ArenaStats{Leases: a.leases, Hits: a.hits, Returns: a.returns, Retained: a.retained}
}
