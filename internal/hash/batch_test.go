package hash

import (
	"math"
	"math/rand"
	"testing"
)

// batchCaseInputs builds an input column of length n mixing random keys
// with the reduction edge cases (values at and just around Prime and its
// multiples, plus the maximum uint64).
func batchCaseInputs(n int, rng *rand.Rand) []uint64 {
	edge := []uint64{
		0, 1, Prime - 1, Prime, Prime + 1,
		2 * Prime, 2*Prime + 1, 2*Prime + 5,
		math.MaxUint64, math.MaxUint64 - 1,
	}
	xs := make([]uint64, n)
	for i := range xs {
		if i%3 == 0 {
			xs[i] = edge[rng.Intn(len(edge))]
		} else {
			xs[i] = rng.Uint64()
		}
	}
	return xs
}

// TestEvalBatchMatchesScalar pins the batch kernels to the scalar
// functions bit for bit, across lengths straddling the 8-way unroll
// boundary (pure tail, exact blocks, block+tail) and across degrees
// including the degenerate constant polynomial.
func TestEvalBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lengths := []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 24, 31, 100, 1000}
	for _, d := range []int{1, 2, 4, 8, 21, 40} {
		p := NewPoly(d, rng)
		for _, n := range lengths {
			xs := batchCaseInputs(n, rng)
			dst := p.EvalBatch(xs, nil)
			if len(dst) != n {
				t.Fatalf("d=%d n=%d: EvalBatch returned %d results", d, n, len(dst))
			}
			for i, x := range xs {
				if want := p.Eval(x); dst[i] != want {
					t.Fatalf("d=%d n=%d: EvalBatch[%d]=%d, Eval(%d)=%d", d, n, i, dst[i], x, want)
				}
			}

			rdst := p.RangeBatch(xs, 12345, nil)
			for i, x := range xs {
				if want := p.Range(x, 12345); rdst[i] != want {
					t.Fatalf("d=%d n=%d: RangeBatch[%d]=%d, Range=%d", d, n, i, rdst[i], want)
				}
			}

			for _, prob := range []float64{-0.5, 0, 1e-9, 0.3, 0.999, 1, 2} {
				bdst := p.BernoulliBatch(xs, prob, nil)
				for i, x := range xs {
					if want := p.Bernoulli(x, prob); bdst[i] != want {
						t.Fatalf("d=%d n=%d prob=%g: BernoulliBatch[%d]=%v, Bernoulli=%v",
							d, n, prob, i, bdst[i], want)
					}
				}
			}
		}
	}
}
