package wire

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"streamcover/internal/stream"
)

func TestIngestColumnsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sets := make([]uint32, 777)
	elems := make([]uint32, 777)
	for i := range sets {
		sets[i] = uint32(rng.Intn(300))
		elems[i] = uint32(rng.Intn(5000))
	}

	payload := EncodeIngestColumns(nil, "sess", sets, elems, 300, 5000)
	var cols stream.Columns
	name, m, n, err := DecodeIngestInto(payload, &cols)
	if err != nil {
		t.Fatal(err)
	}
	if name != "sess" || m != 300 || n != 5000 || cols.Len() != len(sets) {
		t.Fatalf("got name=%q dims (%d,%d) len %d", name, m, n, cols.Len())
	}
	for i := range sets {
		if cols.Sets[i] != sets[i] || cols.Elems[i] != elems[i] {
			t.Fatalf("edge %d mismatch", i)
		}
	}

	// Encoding into a reused buffer must not allocate once grown.
	buf := payload
	allocs := testing.AllocsPerRun(20, func() {
		buf = EncodeIngestColumns(buf, "sess", sets, elems, 300, 5000)
	})
	if allocs != 0 {
		t.Fatalf("EncodeIngestColumns into sized buffer allocated %.0f times", allocs)
	}

	seq := EncodeIngestSeqColumns(nil, "sess", 99, 3, sets, elems, 300, 5000)
	name, source, sq, m, n, err := DecodeIngestSeqInto(seq, &cols)
	if err != nil {
		t.Fatal(err)
	}
	if name != "sess" || source != 99 || sq != 3 || m != 300 || n != 5000 || cols.Len() != len(sets) {
		t.Fatalf("seq decode: name=%q source=%d seq=%d dims (%d,%d) len %d", name, source, sq, m, n, cols.Len())
	}
}

// TestDecodeIngestIntoRowPayload verifies the fused decoder accepts the
// legacy row encoding and agrees with DecodeIngest on it, for both the
// plain and sequenced framings.
func TestDecodeIngestIntoRowPayload(t *testing.T) {
	edges := []stream.Edge{{Set: 4, Elem: 9}, {Set: 0, Elem: 1}, {Set: 4, Elem: 9}}
	payload := EncodeIngest(nil, "s", edges, 5, 10)

	wantName, wantEdges, wm, wn, err := DecodeIngest(payload)
	if err != nil {
		t.Fatal(err)
	}
	var cols stream.Columns
	name, m, n, err := DecodeIngestInto(payload, &cols)
	if err != nil {
		t.Fatal(err)
	}
	if name != wantName || m != wm || n != wn || cols.Len() != len(wantEdges) {
		t.Fatalf("row decode disagreement: %q (%d,%d) len %d", name, m, n, cols.Len())
	}
	for i, e := range wantEdges {
		if cols.Sets[i] != e.Set || cols.Elems[i] != e.Elem {
			t.Fatalf("edge %d: (%d,%d) vs (%d,%d)", i, cols.Sets[i], cols.Elems[i], e.Set, e.Elem)
		}
	}

	seqPayload := EncodeIngestSeq(nil, "s", 7, 2, edges, 5, 10)
	name, source, seq, m, n, err := DecodeIngestSeqInto(seqPayload, &cols)
	if err != nil {
		t.Fatal(err)
	}
	if name != "s" || source != 7 || seq != 2 || m != 5 || n != 10 || cols.Len() != len(edges) {
		t.Fatalf("seq row decode: name=%q source=%d seq=%d dims (%d,%d) len %d", name, source, seq, m, n, cols.Len())
	}
}

func TestDecodeIngestSeqIntoRejectsZeroIDs(t *testing.T) {
	var cols stream.Columns
	for _, c := range [][2]uint64{{0, 1}, {1, 0}, {0, 0}} {
		buf := appendName(nil, "s")
		buf = binary.AppendUvarint(buf, c[0])
		buf = binary.AppendUvarint(buf, c[1])
		buf = stream.AppendBinaryColumns(buf, nil, nil, 5, 5)
		if _, _, _, _, _, err := DecodeIngestSeqInto(buf, &cols); err == nil {
			t.Errorf("source=%d seq=%d accepted", c[0], c[1])
		}
	}
}
