package wire

import (
	"bytes"
	"strings"
	"testing"

	"streamcover/internal/stream"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {1}, bytes.Repeat([]byte{0xab}, 100000)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	scratch := make([]byte, 16)
	for i, want := range payloads {
		typ, got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if typ != byte(i+1) || !bytes.Equal(got, want) {
			t.Errorf("frame %d: type %d payload %d bytes, want type %d payload %d bytes",
				i, typ, len(got), i+1, len(want))
		}
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TIngest, make([]byte, MaxFrame+1)); err == nil {
		t.Error("oversized write frame accepted")
	}
	// Corrupt length prefix beyond the cap must be rejected before any
	// allocation.
	bad := []byte{TIngest, 0xff, 0xff, 0xff, 0xff}
	if _, _, err := ReadFrame(bytes.NewReader(bad), nil); err == nil {
		t.Error("oversized read frame accepted")
	}
	// Truncated payload.
	var tr bytes.Buffer
	WriteFrame(&tr, TOK, []byte("abcdef"))
	trunc := tr.Bytes()[:tr.Len()-2]
	if _, _, err := ReadFrame(bytes.NewReader(trunc), nil); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestCreateRoundTrip(t *testing.T) {
	want := Create{Name: "crawl-7", M: 2000, N: 20000, K: 40, Alpha: 4.5, Seed: -12345}
	got, err := DecodeCreate(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip %+v != %+v", got, want)
	}
	if _, err := DecodeCreate(want.Encode()[:5]); err == nil {
		t.Error("truncated create accepted")
	}
	long := Create{Name: strings.Repeat("x", MaxName+1)}
	if _, err := DecodeCreate(long.Encode()); err == nil {
		t.Error("oversized name accepted")
	}
}

func TestIngestRoundTrip(t *testing.T) {
	edges := []stream.Edge{{Set: 0, Elem: 5}, {Set: 3, Elem: 0}, {Set: 999, Elem: 4999}}
	payload := EncodeIngest(nil, "s1", edges, 1000, 5000)
	name, got, m, n, err := DecodeIngest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if name != "s1" || m != 1000 || n != 5000 {
		t.Errorf("header (%q,%d,%d)", name, m, n)
	}
	if len(got) != len(edges) {
		t.Fatalf("%d edges, want %d", len(got), len(edges))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Errorf("edge %d: %v != %v", i, got[i], edges[i])
		}
	}
	// Reuse must reset, not append.
	payload2 := EncodeIngest(payload, "s1", edges[:1], 1000, 5000)
	if _, got2, _, _, err := DecodeIngest(payload2); err != nil || len(got2) != 1 {
		t.Errorf("buffer reuse broken: %d edges, %v", len(got2), err)
	}
}

func TestIngestSeqRoundTrip(t *testing.T) {
	edges := []stream.Edge{{Set: 1, Elem: 2}, {Set: 7, Elem: 7}}
	payload := EncodeIngestSeq(nil, "s2", 0xdeadbeef, 42, edges, 100, 100)
	name, source, seq, got, m, n, err := DecodeIngestSeq(payload)
	if err != nil {
		t.Fatal(err)
	}
	if name != "s2" || source != 0xdeadbeef || seq != 42 || m != 100 || n != 100 {
		t.Errorf("header (%q,%d,%d,%d,%d)", name, source, seq, m, n)
	}
	if len(got) != len(edges) || got[0] != edges[0] || got[1] != edges[1] {
		t.Errorf("edges %v != %v", got, edges)
	}
	// Reuse must reset, not append.
	payload2 := EncodeIngestSeq(payload, "s2", 0xdeadbeef, 43, edges[:1], 100, 100)
	if _, _, seq2, got2, _, _, err := DecodeIngestSeq(payload2); err != nil || seq2 != 43 || len(got2) != 1 {
		t.Errorf("buffer reuse broken: seq %d, %d edges, %v", seq2, len(got2), err)
	}
}

func TestIngestSeqRejectsMalformed(t *testing.T) {
	edges := []stream.Edge{{Set: 1, Elem: 2}}
	good := EncodeIngestSeq(nil, "s", 7, 9, edges, 10, 10)
	for name, payload := range map[string][]byte{
		"zero source": EncodeIngestSeq(nil, "s", 0, 9, edges, 10, 10),
		"zero seq":    EncodeIngestSeq(nil, "s", 7, 0, edges, 10, 10),
		"empty":       nil,
		"name only":   good[:2],
		"truncated":   good[:len(good)-3],
	} {
		if _, _, _, _, _, _, err := DecodeIngestSeq(payload); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	for _, want := range []Result{
		{Coverage: 8123.5, Feasible: true, SpaceWords: 77, Edges: 123456, SetIDs: []uint32{4, 0, 99}},
		{Coverage: 0, Feasible: false, SetIDs: nil},
	} {
		got, err := DecodeResult(want.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if got.Coverage != want.Coverage || got.Feasible != want.Feasible ||
			got.SpaceWords != want.SpaceWords || got.Edges != want.Edges ||
			len(got.SetIDs) != len(want.SetIDs) {
			t.Errorf("round trip %+v != %+v", got, want)
		}
		for i := range want.SetIDs {
			if got.SetIDs[i] != want.SetIDs[i] {
				t.Errorf("set id %d: %d != %d", i, got.SetIDs[i], want.SetIDs[i])
			}
		}
	}
	if _, err := DecodeResult([]byte{1, 2, 3}); err == nil {
		t.Error("truncated result accepted")
	}
}

func TestRefRoundTrip(t *testing.T) {
	name, err := DecodeRef(EncodeRef("sess"))
	if err != nil || name != "sess" {
		t.Errorf("ref round trip: %q, %v", name, err)
	}
	if _, err := DecodeRef(append(EncodeRef("sess"), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}
