// Package wire defines the framed TCP protocol spoken between kcoverd and
// its clients. Every message is one frame:
//
//	1 byte  type
//	4 bytes little-endian payload length
//	payload
//
// Requests reference sessions by name, so connections are stateless and
// any number of clients may feed one session. Responses arrive in request
// order (the server handles each connection serially), which lets clients
// pipeline ingest batches and match acks by position.
//
// Payloads:
//
//	TCreate     uvarint len(name), name, uvarint m, uvarint n, uvarint k,
//	            8-byte LE float64 alpha, 8-byte LE int64 seed
//	TIngest     uvarint len(name), name, batch blob whose declared dims
//	            must equal the session's. The blob's magic selects its
//	            layout: row "MKC1" (stream.AppendBinary) or columnar
//	            "MKC2" (stream.AppendBinaryColumns)
//	TIngestSeq  uvarint len(name), name, uvarint source, uvarint seq,
//	            batch blob — a sequenced ingest: source is the client's
//	            random nonzero identity, seq its per-session batch counter
//	            starting at 1. The server logs the batch durably before
//	            acking and dedups on (source, seq), so a client that
//	            resends after a reconnect gets exactly-once application
//	            even across a server crash.
//	TQuery      uvarint len(name), name
//	TClose      uvarint len(name), name
//	TOK         empty
//	TErr        UTF-8 error message
//	TResult     8-byte LE float64 coverage, 1 byte feasible, uvarint space
//	            words, uvarint edges, uvarint count, count × uvarint set IDs
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"

	"streamcover/internal/stream"
)

// Frame types.
const (
	TCreate byte = 0x01
	TIngest byte = 0x02
	TQuery  byte = 0x03
	TClose  byte = 0x04
	// TPing (empty payload → TOK) is the pipeline barrier: because
	// responses are strictly ordered, a ping's ack proves every earlier
	// frame on the connection was handled.
	TPing byte = 0x05
	// TIngestSeq is TIngest with idempotence: the payload carries a
	// (source, sequence) pair the server dedups on, and the ack implies
	// the batch is durable in the session's WAL (when the server runs
	// with a data dir). TIngest remains for fire-and-forget feeds.
	TIngestSeq byte = 0x06

	TOK     byte = 0x80
	TErr    byte = 0x81
	TResult byte = 0x82
	// TErrRetry is a transient rejection: the server is degraded (a
	// durability fault is being repaired) or read-only (disk full) and the
	// request was NOT applied. Unlike TErr it is an invitation to retry
	// the same request later — a client must not treat it as fatal and
	// must not drop the batch it covers.
	TErrRetry byte = 0x83
)

// MaxFrame bounds a frame payload (64 MiB) so a corrupt length prefix
// cannot make a peer allocate unboundedly.
const MaxFrame = 1 << 26

// MaxName bounds session names.
const MaxName = 256

// WriteFrame writes one frame. The caller batches via a bufio.Writer and
// decides when to flush.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame payload %d exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, reusing scratch for the payload when it fits.
// The returned payload aliases scratch and is only valid until the next
// call with the same scratch.
func ReadFrame(r io.Reader, scratch []byte) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame payload %d exceeds limit %d", n, MaxFrame)
	}
	if int(n) <= len(scratch) {
		payload = scratch[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: truncated frame: %w", err)
	}
	return hdr[0], payload, nil
}

// ReadFrameInto reads one frame like ReadFrame, but grows *scratch in
// place (next power of two, capped at MaxFrame) when the payload doesn't
// fit, so the enlarged buffer survives into later calls and a connection
// carrying steady large batches allocates once instead of per frame. The
// returned payload aliases *scratch and is only valid until the next call.
func ReadFrameInto(r io.Reader, scratch *[]byte) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame payload %d exceeds limit %d", n, MaxFrame)
	}
	if int(n) > cap(*scratch) {
		grown := uint64(MaxFrame)
		if n < MaxFrame {
			grown = 1 << bits.Len64(uint64(n-1))
		}
		*scratch = make([]byte, grown)
	}
	payload = (*scratch)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: truncated frame: %w", err)
	}
	return hdr[0], payload, nil
}

func appendName(buf []byte, name string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	return append(buf, name...)
}

func decodeName(p []byte) (string, []byte, error) {
	l, w := binary.Uvarint(p)
	if w <= 0 || l > MaxName || uint64(len(p)-w) < l {
		return "", nil, fmt.Errorf("wire: bad session name")
	}
	return string(p[w : w+int(l)]), p[w+int(l):], nil
}

// Create is the payload of a TCreate frame.
type Create struct {
	Name    string
	M, N, K int
	Alpha   float64
	Seed    int64
}

// Encode serializes c.
func (c Create) Encode() []byte {
	buf := appendName(nil, c.Name)
	buf = binary.AppendUvarint(buf, uint64(c.M))
	buf = binary.AppendUvarint(buf, uint64(c.N))
	buf = binary.AppendUvarint(buf, uint64(c.K))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Alpha))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Seed))
	return buf
}

// DecodeCreate parses a TCreate payload.
func DecodeCreate(p []byte) (Create, error) {
	var c Create
	name, rest, err := decodeName(p)
	if err != nil {
		return c, err
	}
	c.Name = name
	for _, dst := range []*int{&c.M, &c.N, &c.K} {
		v, w := binary.Uvarint(rest)
		if w <= 0 || v > 1<<31 {
			return c, fmt.Errorf("wire: bad create dims")
		}
		*dst = int(v)
		rest = rest[w:]
	}
	if len(rest) != 16 {
		return c, fmt.Errorf("wire: bad create tail (%d bytes)", len(rest))
	}
	c.Alpha = math.Float64frombits(binary.LittleEndian.Uint64(rest))
	c.Seed = int64(binary.LittleEndian.Uint64(rest[8:]))
	return c, nil
}

// EncodeIngest frames a batch: session name followed by the edges as one
// MKC1 blob. buf is reused when capacity allows.
func EncodeIngest(buf []byte, name string, edges []stream.Edge, m, n int) []byte {
	buf = appendName(buf[:0], name)
	return stream.AppendBinary(buf, edges, m, n)
}

// DecodeIngest parses a TIngest payload. The edges are validated against
// the blob's own declared dims; the caller checks those against the
// session's.
func DecodeIngest(p []byte) (name string, edges []stream.Edge, m, n int, err error) {
	name, rest, err := decodeName(p)
	if err != nil {
		return "", nil, 0, 0, err
	}
	edges, m, n, err = stream.DecodeBinary(rest)
	return name, edges, m, n, err
}

// EncodeIngestSeq frames a sequenced batch: session name, client source
// identity, per-session sequence number, then the edges as one MKC1 blob.
// buf is reused when capacity allows.
func EncodeIngestSeq(buf []byte, name string, source, seq uint64, edges []stream.Edge, m, n int) []byte {
	buf = appendName(buf[:0], name)
	buf = binary.AppendUvarint(buf, source)
	buf = binary.AppendUvarint(buf, seq)
	return stream.AppendBinary(buf, edges, m, n)
}

// DecodeIngestSeq parses a TIngestSeq payload. Source and seq must both
// be nonzero (zero is the "unsequenced" sentinel server-side).
func DecodeIngestSeq(p []byte) (name string, source, seq uint64, edges []stream.Edge, m, n int, err error) {
	name, rest, err := decodeName(p)
	if err != nil {
		return "", 0, 0, nil, 0, 0, err
	}
	source, w := binary.Uvarint(rest)
	if w <= 0 {
		return "", 0, 0, nil, 0, 0, fmt.Errorf("wire: bad ingest source")
	}
	rest = rest[w:]
	seq, w = binary.Uvarint(rest)
	if w <= 0 {
		return "", 0, 0, nil, 0, 0, fmt.Errorf("wire: bad ingest sequence")
	}
	rest = rest[w:]
	if source == 0 || seq == 0 {
		return "", 0, 0, nil, 0, 0, fmt.Errorf("wire: zero ingest source or sequence")
	}
	edges, m, n, err = stream.DecodeBinary(rest)
	if err != nil {
		return "", 0, 0, nil, 0, 0, err
	}
	return name, source, seq, edges, m, n, nil
}

// EncodeRef frames a session reference (TQuery / TClose payload).
func EncodeRef(name string) []byte { return appendName(nil, name) }

// DecodeRef parses a TQuery / TClose payload.
func DecodeRef(p []byte) (string, error) {
	name, rest, err := decodeName(p)
	if err != nil {
		return "", err
	}
	if len(rest) != 0 {
		return "", fmt.Errorf("wire: %d trailing bytes after session name", len(rest))
	}
	return name, nil
}

// Result is the payload of a TResult frame — the estimator's answer plus
// the server-side edge count.
type Result struct {
	Coverage   float64
	Feasible   bool
	SpaceWords int
	Edges      int
	SetIDs     []uint32
}

// Encode serializes r.
func (r Result) Encode() []byte {
	buf := binary.LittleEndian.AppendUint64(nil, math.Float64bits(r.Coverage))
	if r.Feasible {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(r.SpaceWords))
	buf = binary.AppendUvarint(buf, uint64(r.Edges))
	buf = binary.AppendUvarint(buf, uint64(len(r.SetIDs)))
	for _, id := range r.SetIDs {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	return buf
}

// DecodeResult parses a TResult payload.
func DecodeResult(p []byte) (Result, error) {
	var r Result
	if len(p) < 9 {
		return r, fmt.Errorf("wire: truncated result")
	}
	r.Coverage = math.Float64frombits(binary.LittleEndian.Uint64(p))
	r.Feasible = p[8] != 0
	rest := p[9:]
	next := func(what string) (uint64, error) {
		v, w := binary.Uvarint(rest)
		if w <= 0 {
			return 0, fmt.Errorf("wire: bad result %s", what)
		}
		rest = rest[w:]
		return v, nil
	}
	sw, err := next("space")
	if err != nil {
		return r, err
	}
	ed, err := next("edges")
	if err != nil {
		return r, err
	}
	cnt, err := next("count")
	if err != nil {
		return r, err
	}
	if cnt > 1<<20 {
		return r, fmt.Errorf("wire: implausible result id count %d", cnt)
	}
	r.SpaceWords, r.Edges = int(sw), int(ed)
	r.SetIDs = make([]uint32, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		id, err := next("set id")
		if err != nil {
			return r, err
		}
		r.SetIDs = append(r.SetIDs, uint32(id))
	}
	if len(rest) != 0 {
		return r, fmt.Errorf("wire: %d trailing bytes after result", len(rest))
	}
	return r, nil
}
