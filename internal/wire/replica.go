// Replication and cluster frames. A follower replicates a session by
// sending TRepSubscribe on a dedicated connection; the leader answers
// with an optional TRepSnapshot (checkpoint bootstrap when the follower
// is behind the leader's truncation horizon), then a one-way stream of
// TRepEntry frames — each carrying one committed WAL record at its exact
// log position — interleaved with TRepHeartbeat frames advertising the
// leader's durable head. Because WAL replay is bit-identical at a fixed
// worker count, a follower that appends each entry to its own log at the
// same position and applies it through the same decode path converges to
// a byte-identical estimator; replication correctness is checkable by
// comparing snapshot encodings.
//
// Payloads:
//
//	TRepSubscribe uvarint len(name), name, 8-byte LE applied position
//	              (the follower's watermark; the stream resumes at +1)
//	TRepSnapshot  8-byte LE WAL position the checkpoint covers, then the
//	              opaque checkpoint blob
//	TRepEntry     8-byte LE WAL position, then the raw WAL record
//	TRepHeartbeat 8-byte LE leader durable head position
//	TQueryStale   uvarint len(name), name, 8-byte LE max staleness nanos —
//	              a follower answers from its replica only if its
//	              watermark age is within the bound, else TErrRetry
//	TRole         uvarint len(name), name
//	TRoleInfo     1 byte role, uvarint len(leaderAddr), leaderAddr,
//	              8-byte LE applied position, 8-byte LE staleness nanos
//	TErrNotLeader uvarint len(leaderAddr), leaderAddr — the receiver does
//	              not lead this session; retry against leaderAddr (empty
//	              when the receiver does not know the leader)
package wire

import (
	"encoding/binary"
	"fmt"
)

// Cluster frame types.
const (
	// TQueryStale is TQuery with a staleness bound, servable by followers.
	TQueryStale byte = 0x07
	// TRole asks a node for its role in a session and its watermark.
	TRole byte = 0x08
	// TRepSubscribe turns the connection into a replication stream.
	TRepSubscribe byte = 0x10

	// TErrNotLeader rejects leader-only work (ingest, create) sent to a
	// follower, naming the leader when known.
	TErrNotLeader byte = 0x84
	// TRoleInfo answers TRole.
	TRoleInfo byte = 0x85
	// TRepSnapshot bootstraps a subscriber from a checkpoint.
	TRepSnapshot byte = 0x90
	// TRepEntry ships one committed WAL record.
	TRepEntry byte = 0x91
	// TRepHeartbeat advertises the leader's durable head.
	TRepHeartbeat byte = 0x92
)

// Session roles.
const (
	RoleLeader   byte = 0
	RoleFollower byte = 1
)

// EncodeSubscribe frames a TRepSubscribe payload.
func EncodeSubscribe(name string, applied uint64) []byte {
	buf := appendName(nil, name)
	return binary.LittleEndian.AppendUint64(buf, applied)
}

// DecodeSubscribe parses a TRepSubscribe payload.
func DecodeSubscribe(p []byte) (name string, applied uint64, err error) {
	name, rest, err := decodeName(p)
	if err != nil {
		return "", 0, err
	}
	if len(rest) != 8 {
		return "", 0, fmt.Errorf("wire: bad subscribe tail (%d bytes)", len(rest))
	}
	return name, binary.LittleEndian.Uint64(rest), nil
}

// EncodeSnapshot frames a TRepSnapshot payload. buf is reused when
// capacity allows.
func EncodeSnapshot(buf []byte, walPos uint64, ckpt []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf[:0], walPos)
	return append(buf, ckpt...)
}

// DecodeSnapshot parses a TRepSnapshot payload. The blob aliases p.
func DecodeSnapshot(p []byte) (walPos uint64, ckpt []byte, err error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("wire: truncated snapshot frame")
	}
	return binary.LittleEndian.Uint64(p), p[8:], nil
}

// EncodeEntry frames a TRepEntry payload. buf is reused when capacity
// allows — the shipper calls this once per record.
func EncodeEntry(buf []byte, pos uint64, rec []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf[:0], pos)
	return append(buf, rec...)
}

// DecodeEntry parses a TRepEntry payload. The record aliases p.
func DecodeEntry(p []byte) (pos uint64, rec []byte, err error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("wire: truncated entry frame")
	}
	pos = binary.LittleEndian.Uint64(p)
	if pos == 0 {
		return 0, nil, fmt.Errorf("wire: zero entry position")
	}
	return pos, p[8:], nil
}

// EncodeHeartbeat frames a TRepHeartbeat payload.
func EncodeHeartbeat(head uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, head)
}

// DecodeHeartbeat parses a TRepHeartbeat payload.
func DecodeHeartbeat(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("wire: bad heartbeat payload (%d bytes)", len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// EncodeQueryStale frames a TQueryStale payload. maxStaleNanos bounds the
// age of the follower's watermark; 0 demands a fully caught-up replica.
func EncodeQueryStale(name string, maxStaleNanos int64) []byte {
	buf := appendName(nil, name)
	return binary.LittleEndian.AppendUint64(buf, uint64(maxStaleNanos))
}

// DecodeQueryStale parses a TQueryStale payload.
func DecodeQueryStale(p []byte) (name string, maxStaleNanos int64, err error) {
	name, rest, err := decodeName(p)
	if err != nil {
		return "", 0, err
	}
	if len(rest) != 8 {
		return "", 0, fmt.Errorf("wire: bad stale-query tail (%d bytes)", len(rest))
	}
	ns := int64(binary.LittleEndian.Uint64(rest))
	if ns < 0 {
		return "", 0, fmt.Errorf("wire: negative staleness bound")
	}
	return name, ns, nil
}

// EncodeNotLeader frames a TErrNotLeader payload.
func EncodeNotLeader(leaderAddr string) []byte {
	return appendName(nil, leaderAddr)
}

// DecodeNotLeader parses a TErrNotLeader payload.
func DecodeNotLeader(p []byte) (string, error) {
	addr, rest, err := decodeName(p)
	if err != nil {
		return "", fmt.Errorf("wire: bad not-leader payload")
	}
	if len(rest) != 0 {
		return "", fmt.Errorf("wire: %d trailing bytes after leader addr", len(rest))
	}
	return addr, nil
}

// RoleInfo is the payload of a TRoleInfo frame: a node's view of one
// session's placement and replication progress.
type RoleInfo struct {
	Role       byte   // RoleLeader or RoleFollower
	LeaderAddr string // where the node believes the leader lives
	Applied    uint64 // the node's applied WAL watermark
	// StalenessNanos is the watermark age: 0 when caught up, else the
	// time since the replica was last known caught up. Leaders report 0.
	StalenessNanos int64
}

// Encode serializes ri.
func (ri RoleInfo) Encode() []byte {
	buf := []byte{ri.Role}
	buf = appendName(buf, ri.LeaderAddr)
	buf = binary.LittleEndian.AppendUint64(buf, ri.Applied)
	return binary.LittleEndian.AppendUint64(buf, uint64(ri.StalenessNanos))
}

// DecodeRoleInfo parses a TRoleInfo payload.
func DecodeRoleInfo(p []byte) (RoleInfo, error) {
	var ri RoleInfo
	if len(p) < 1 {
		return ri, fmt.Errorf("wire: truncated role info")
	}
	ri.Role = p[0]
	if ri.Role != RoleLeader && ri.Role != RoleFollower {
		return ri, fmt.Errorf("wire: unknown role %d", ri.Role)
	}
	addr, rest, err := decodeName(p[1:])
	if err != nil {
		return ri, fmt.Errorf("wire: bad role leader addr")
	}
	ri.LeaderAddr = addr
	if len(rest) != 16 {
		return ri, fmt.Errorf("wire: bad role info tail (%d bytes)", len(rest))
	}
	ri.Applied = binary.LittleEndian.Uint64(rest)
	ri.StalenessNanos = int64(binary.LittleEndian.Uint64(rest[8:]))
	return ri, nil
}
