package wire

import (
	"bytes"
	"testing"
)

func TestSubscribeRoundTrip(t *testing.T) {
	p := EncodeSubscribe("sess", 42)
	name, applied, err := DecodeSubscribe(p)
	if err != nil {
		t.Fatal(err)
	}
	if name != "sess" || applied != 42 {
		t.Fatalf("got (%q, %d), want (sess, 42)", name, applied)
	}
	if _, _, err := DecodeSubscribe(p[:len(p)-1]); err == nil {
		t.Fatal("truncated subscribe decoded")
	}
}

func TestSnapshotEntryRoundTrip(t *testing.T) {
	blob := []byte("checkpoint-bytes")
	p := EncodeSnapshot(nil, 99, blob)
	pos, ckpt, err := DecodeSnapshot(p)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 99 || !bytes.Equal(ckpt, blob) {
		t.Fatalf("snapshot round trip mismatch: pos=%d", pos)
	}

	rec := []byte{1, 2, 3, 4}
	p = EncodeEntry(p, 7, rec) // reuse buf across frame kinds
	pos, got, err := DecodeEntry(p)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 7 || !bytes.Equal(got, rec) {
		t.Fatalf("entry round trip mismatch: pos=%d rec=%v", pos, got)
	}
	if _, _, err := DecodeEntry(EncodeEntry(nil, 0, rec)); err == nil {
		t.Fatal("zero entry position decoded")
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	head, err := DecodeHeartbeat(EncodeHeartbeat(1 << 40))
	if err != nil {
		t.Fatal(err)
	}
	if head != 1<<40 {
		t.Fatalf("heartbeat head %d", head)
	}
	if _, err := DecodeHeartbeat([]byte{1, 2}); err == nil {
		t.Fatal("short heartbeat decoded")
	}
}

func TestQueryStaleRoundTrip(t *testing.T) {
	p := EncodeQueryStale("s", 5_000_000_000)
	name, ns, err := DecodeQueryStale(p)
	if err != nil {
		t.Fatal(err)
	}
	if name != "s" || ns != 5_000_000_000 {
		t.Fatalf("got (%q, %d)", name, ns)
	}
	if _, _, err := DecodeQueryStale(EncodeQueryStale("s", -1)); err == nil {
		t.Fatal("negative staleness bound decoded")
	}
}

func TestNotLeaderRoundTrip(t *testing.T) {
	for _, addr := range []string{"", "10.0.0.7:4780"} {
		got, err := DecodeNotLeader(EncodeNotLeader(addr))
		if err != nil {
			t.Fatal(err)
		}
		if got != addr {
			t.Fatalf("got %q, want %q", got, addr)
		}
	}
}

func TestRoleInfoRoundTrip(t *testing.T) {
	ri := RoleInfo{
		Role:           RoleFollower,
		LeaderAddr:     "127.0.0.1:9999",
		Applied:        123456,
		StalenessNanos: 42_000,
	}
	got, err := DecodeRoleInfo(ri.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != ri {
		t.Fatalf("role info round trip: got %+v, want %+v", got, ri)
	}
	bad := ri
	bad.Role = 9
	if _, err := DecodeRoleInfo(bad.Encode()); err == nil {
		t.Fatal("unknown role decoded")
	}
}
