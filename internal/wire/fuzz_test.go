package wire

import (
	"bytes"
	"testing"

	"streamcover/internal/stream"
)

// FuzzReadFrame drives the frame reader with arbitrary byte streams: it
// must never panic or over-allocate, and any frame it accepts must
// re-encode to the same bytes. Accepted ingest-class payloads are pushed
// through their payload decoders too, so malformed length prefixes and
// truncated MKC1 blobs inside an intact frame are also exercised.
func FuzzReadFrame(f *testing.F) {
	frame := func(typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	edges := []stream.Edge{{Set: 1, Elem: 2}, {Set: 3, Elem: 4}}
	f.Add(frame(TPing, nil))
	f.Add(frame(TCreate, Create{Name: "s", M: 10, N: 10, K: 2, Alpha: 4, Seed: 1}.Encode()))
	f.Add(frame(TIngest, EncodeIngest(nil, "s", edges, 10, 10)))
	f.Add(frame(TIngestSeq, EncodeIngestSeq(nil, "s", 7, 1, edges, 10, 10)))
	f.Add(frame(TResult, Result{Coverage: 5, Feasible: true, SetIDs: []uint32{1}}.Encode()))
	f.Add([]byte{TIngest, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data), make([]byte, 64))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatal("re-encoded frame differs from input prefix")
		}
		// Payload decoders must be panic-free on arbitrary accepted frames.
		switch typ {
		case TCreate:
			_, _ = DecodeCreate(payload)
		case TIngest:
			_, _, _, _, _ = DecodeIngest(payload)
		case TIngestSeq:
			_, _, _, _, _, _, _ = DecodeIngestSeq(payload)
		case TQuery, TClose:
			_, _ = DecodeRef(payload)
		case TResult:
			_, _ = DecodeResult(payload)
		}
	})
}
