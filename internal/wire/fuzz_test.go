package wire

import (
	"bytes"
	"testing"

	"streamcover/internal/stream"
)

// FuzzReadFrame drives the frame reader with arbitrary byte streams: it
// must never panic or over-allocate, and any frame it accepts must
// re-encode to the same bytes. Accepted ingest-class payloads are pushed
// through their payload decoders too, so malformed length prefixes and
// truncated MKC1 blobs inside an intact frame are also exercised.
func FuzzReadFrame(f *testing.F) {
	frame := func(typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	edges := []stream.Edge{{Set: 1, Elem: 2}, {Set: 3, Elem: 4}}
	f.Add(frame(TPing, nil))
	f.Add(frame(TCreate, Create{Name: "s", M: 10, N: 10, K: 2, Alpha: 4, Seed: 1}.Encode()))
	f.Add(frame(TIngest, EncodeIngest(nil, "s", edges, 10, 10)))
	f.Add(frame(TIngestSeq, EncodeIngestSeq(nil, "s", 7, 1, edges, 10, 10)))
	f.Add(frame(TResult, Result{Coverage: 5, Feasible: true, SetIDs: []uint32{1}}.Encode()))
	f.Add([]byte{TIngest, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data), make([]byte, 64))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatal("re-encoded frame differs from input prefix")
		}
		// Payload decoders must be panic-free on arbitrary accepted frames.
		var cols stream.Columns
		switch typ {
		case TCreate:
			_, _ = DecodeCreate(payload)
		case TIngest:
			_, _, _, _, _ = DecodeIngest(payload)
			_, _, _, _ = DecodeIngestInto(payload, &cols)
		case TIngestSeq:
			_, _, _, _, _, _, _ = DecodeIngestSeq(payload)
			_, _, _, _, _, _ = DecodeIngestSeqInto(payload, &cols)
		case TQuery, TClose:
			_, _ = DecodeRef(payload)
		case TResult:
			_, _ = DecodeResult(payload)
		}
	})
}

// FuzzDecodeIngestColumns drives the fused ingest decoder with arbitrary
// payload bytes. It must never panic, and any payload it accepts must
// survive a re-encode/decode round trip with identical name, dims and
// columns (byte equality is not required — uvarint headers admit
// non-minimal encodings the fuzzer will find).
func FuzzDecodeIngestColumns(f *testing.F) {
	sets := []uint32{1, 2, 1}
	elems := []uint32{3, 0, 3}
	f.Add(EncodeIngestColumns(nil, "s", sets, elems, 10, 10))
	f.Add(EncodeIngest(nil, "s", []stream.Edge{{Set: 1, Elem: 2}}, 10, 10))
	f.Add(EncodeIngestColumns(nil, "s", nil, nil, 1, 1))
	trunc := EncodeIngestColumns(nil, "s", sets, elems, 10, 10)
	f.Add(trunc[:len(trunc)-3])
	f.Add(append(EncodeIngestColumns(nil, "s", sets, elems, 10, 10), 0xff))
	f.Fuzz(func(t *testing.T, payload []byte) {
		var cols stream.Columns
		name, m, n, err := DecodeIngestInto(payload, &cols)
		if err != nil {
			return
		}
		re := EncodeIngestColumns(nil, name, cols.Sets, cols.Elems, m, n)
		var cols2 stream.Columns
		name2, m2, n2, err := DecodeIngestInto(re, &cols2)
		if err != nil {
			t.Fatalf("re-encoded accepted payload rejected: %v", err)
		}
		if name2 != name || m2 != m || n2 != n || cols2.Len() != cols.Len() {
			t.Fatalf("round trip drift: %q (%d,%d) %d vs %q (%d,%d) %d",
				name, m, n, cols.Len(), name2, m2, n2, cols2.Len())
		}
		for i := range cols.Sets {
			if cols2.Sets[i] != cols.Sets[i] || cols2.Elems[i] != cols.Elems[i] {
				t.Fatalf("round trip edge %d drift", i)
			}
		}
	})
}

// FuzzIngestRowColumnarEquivalence is the differential fuzz for the two
// batch encodings: one logical batch encoded as rows and as columns must
// decode identically through every decoder pairing.
func FuzzIngestRowColumnarEquivalence(f *testing.F) {
	f.Add("s", uint32(10), uint32(10), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add("session", uint32(1), uint32(1), []byte{})
	f.Add("x", uint32(1<<20), uint32(1<<30), []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 9})
	f.Fuzz(func(t *testing.T, name string, m, n uint32, raw []byte) {
		if len(name) > MaxName {
			name = name[:MaxName]
		}
		m = m%(1<<20) + 1
		n = n%(1<<20) + 1
		count := len(raw) / 8
		edges := make([]stream.Edge, count)
		sets := make([]uint32, count)
		elems := make([]uint32, count)
		for i := 0; i < count; i++ {
			s := uint32(raw[8*i]) | uint32(raw[8*i+1])<<8 | uint32(raw[8*i+2])<<16 | uint32(raw[8*i+3])<<24
			e := uint32(raw[8*i+4]) | uint32(raw[8*i+5])<<8 | uint32(raw[8*i+6])<<16 | uint32(raw[8*i+7])<<24
			sets[i], elems[i] = s%m, e%n
			edges[i] = stream.Edge{Set: sets[i], Elem: elems[i]}
		}

		row := EncodeIngest(nil, name, edges, int(m), int(n))
		col := EncodeIngestColumns(nil, name, sets, elems, int(m), int(n))

		rName, rEdges, rm, rn, err := DecodeIngest(row)
		if err != nil {
			t.Fatalf("row decode: %v", err)
		}
		var rowCols, colCols stream.Columns
		riName, rim, rin, err := DecodeIngestInto(row, &rowCols)
		if err != nil {
			t.Fatalf("fused row decode: %v", err)
		}
		cName, cm, cn, err := DecodeIngestInto(col, &colCols)
		if err != nil {
			t.Fatalf("columnar decode: %v", err)
		}
		if rName != name || riName != name || cName != name {
			t.Fatalf("name drift: %q %q %q vs %q", rName, riName, cName, name)
		}
		if rm != int(m) || rn != int(n) || rim != int(m) || rin != int(n) || cm != int(m) || cn != int(n) {
			t.Fatal("dim drift across decoders")
		}
		if len(rEdges) != count || rowCols.Len() != count || colCols.Len() != count {
			t.Fatalf("count drift: %d %d %d vs %d", len(rEdges), rowCols.Len(), colCols.Len(), count)
		}
		for i := 0; i < count; i++ {
			if rEdges[i] != edges[i] ||
				rowCols.Sets[i] != sets[i] || rowCols.Elems[i] != elems[i] ||
				colCols.Sets[i] != sets[i] || colCols.Elems[i] != elems[i] {
				t.Fatalf("edge %d drift across decoders", i)
			}
		}
	})
}
