package wire

import (
	"encoding/binary"
	"fmt"

	"streamcover/internal/stream"
)

// Columnar ingest encoding. TIngest and TIngestSeq payloads carry one
// batch blob after the routing header; the blob's magic selects the
// layout — row "MKC1" (uvarint edge pairs, stream.AppendBinary) or
// columnar "MKC2" (two fixed-width ID columns, stream.AppendBinaryColumns).
// No new frame types are involved, so columnar batches ride the existing
// session, dedup and WAL machinery unchanged: a WAL record still stores
// the frame type byte plus the verbatim payload, and replay sniffs the
// same magic the live path does.
//
// The point of the columnar layout is zero-transform ingest: the client
// accumulates edges as two ID columns, the encoder writes those columns
// verbatim, and the server decodes them with a bulk copy straight into
// arenas the core prepass consumes — no per-edge structs anywhere between
// the client's Send call and the hash kernel.

// EncodeIngestColumns frames a columnar batch: session name followed by
// the edge columns as one MKC2 blob. buf is reused when capacity allows.
func EncodeIngestColumns(buf []byte, name string, sets, elems []uint32, m, n int) []byte {
	buf = appendName(buf[:0], name)
	return stream.AppendBinaryColumns(buf, sets, elems, m, n)
}

// EncodeIngestSeqColumns frames a sequenced columnar batch: session name,
// client source identity, per-session sequence number, then the edge
// columns as one MKC2 blob. buf is reused when capacity allows.
func EncodeIngestSeqColumns(buf []byte, name string, source, seq uint64, sets, elems []uint32, m, n int) []byte {
	buf = appendName(buf[:0], name)
	buf = binary.AppendUvarint(buf, source)
	buf = binary.AppendUvarint(buf, seq)
	return stream.AppendBinaryColumns(buf, sets, elems, m, n)
}

// DecodeIngestInto parses a TIngest payload of either batch encoding into
// cols, reusing its backing arrays. IDs are validated against the blob's
// own declared dims; the caller checks those against the session's.
func DecodeIngestInto(p []byte, cols *stream.Columns) (name string, m, n int, err error) {
	name, rest, err := decodeName(p)
	if err != nil {
		return "", 0, 0, err
	}
	m, n, err = stream.DecodeBinaryInto(rest, cols)
	return name, m, n, err
}

// DecodeIngestSeqInto parses a TIngestSeq payload of either batch
// encoding into cols. Source and seq must both be nonzero (zero is the
// "unsequenced" sentinel server-side).
func DecodeIngestSeqInto(p []byte, cols *stream.Columns) (name string, source, seq uint64, m, n int, err error) {
	name, rest, err := decodeName(p)
	if err != nil {
		return "", 0, 0, 0, 0, err
	}
	source, w := binary.Uvarint(rest)
	if w <= 0 {
		return "", 0, 0, 0, 0, fmt.Errorf("wire: bad ingest source")
	}
	rest = rest[w:]
	seq, w = binary.Uvarint(rest)
	if w <= 0 {
		return "", 0, 0, 0, 0, fmt.Errorf("wire: bad ingest sequence")
	}
	rest = rest[w:]
	if source == 0 || seq == 0 {
		return "", 0, 0, 0, 0, fmt.Errorf("wire: zero ingest source or sequence")
	}
	m, n, err = stream.DecodeBinaryInto(rest, cols)
	if err != nil {
		return "", 0, 0, 0, 0, err
	}
	return name, source, seq, m, n, nil
}
