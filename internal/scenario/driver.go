package scenario

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	streamcover "streamcover"
	"streamcover/internal/client"
	"streamcover/internal/phist"
	"streamcover/internal/workload"
)

// phaseAccum accumulates the client-observed view of one phase: every
// acked batch's edge count and first-write-to-ack latency land in the
// accumulator of whichever phase is current when the ack arrives.
type phaseAccum struct {
	hist    phist.Hist
	edges   atomic.Int64
	batches atomic.Int64
	seconds float64
}

// ingestSession is the slice of the client surface the drivers use — a
// single-node Session, or a ClusterSession that re-routes around leader
// changes. Both flavors keep the exactly-once resend guarantees.
type ingestSession interface {
	Send(edges []streamcover.Edge) error
	Flush() error
	Query() (client.Result, error)
}

// fleet drives the generated stream into the daemon over Connections
// parallel client connections, each with its own pacer (the phase's
// target rate split evenly) and its own round-robin slice of the stream.
// In cluster mode every connection is its own cluster-aware client (own
// source identity, own failover state) routed at the session leader.
//
// Accounting is client-side on purpose: server /metrics counters reset
// across a kill/restart, but the ack observer sees every successfully
// acknowledged batch regardless of how many reconnects and replays it
// took — so per-phase throughput and latency survive daemon lifecycles.
type fleet struct {
	spec     FleetSpec
	clients  []*client.Client
	clusters []*client.Cluster
	sess     [][]ingestSession        // [connection][tenant] session handles
	csess    []*client.ClusterSession // parallel to sess in cluster mode
	streams  [][]streamcover.Edge
	pacers   []*workload.Pacer
	pickers  []*workload.TenantPicker // per-connection tenant routing
	sent     []int64                  // edges handed to Send, per connection (owner-written)

	phaseIdx atomic.Int64
	phases   []*phaseAccum

	stop chan struct{}
	wg   sync.WaitGroup
	errs chan error
}

// newFleet dials the fleet and creates (or attaches to) the sessions. The
// first connection creates; the rest attach by issuing the same Create,
// which the server treats as idempotent for identical dimensions. nodes
// is nil for a single daemon; non-nil switches to cluster routing. With
// tenants > 1 every connection carries one handle per tenant session
// (sessionName) on the same wire, and a per-connection seeded picker
// routes each chunk — the whole tenant fan-out stays a pure function of
// the spec's seed.
func newFleet(spec *Spec, addr string, nodes []client.ClusterNode, edges []streamcover.Edge, m, n, k int) (*fleet, error) {
	conns := spec.Fleet.Connections
	f := &fleet{
		spec:    spec.Fleet,
		streams: make([][]streamcover.Edge, conns),
		pacers:  make([]*workload.Pacer, conns),
		pickers: make([]*workload.TenantPicker, conns),
		sent:    make([]int64, conns),
		phases:  make([]*phaseAccum, len(spec.Phases)),
		stop:    make(chan struct{}),
		errs:    make(chan error, conns),
	}
	for i := range f.phases {
		f.phases[i] = &phaseAccum{}
	}
	obs := func(edges int, d time.Duration) {
		acc := f.phases[f.phaseIdx.Load()]
		acc.hist.Observe(d.Nanoseconds())
		acc.edges.Add(int64(edges))
		acc.batches.Add(1)
	}
	// Round-robin edge partition: connection i gets edges i, i+conns, …
	// Together the slices are exactly the generated multiset, and the
	// bit-identity invariant makes the server's answer independent of the
	// partition, so the reference estimator can replay per-connection.
	for i := range f.streams {
		f.streams[i] = make([]streamcover.Edge, 0, len(edges)/conns+1)
	}
	for i, e := range edges {
		c := i % conns
		f.streams[c] = append(f.streams[c], e)
	}
	dialOpts := []client.Option{
		client.WithBatchSize(spec.Fleet.BatchEdges),
		client.WithMaxPending(spec.Fleet.MaxPending),
		client.WithBackoff(20*time.Millisecond, 500*time.Millisecond),
		client.WithDialTimeout(2 * time.Second),
		client.WithOpTimeout(5 * time.Second),
		// Paced phases trickle batches below the pipeline window;
		// without a flush cadence they would sit in the write buffer
		// and neither arrive nor ack until the next blast.
		client.WithFlushInterval(2 * time.Millisecond),
		client.WithAckObserver(obs),
	}
	if spec.Fleet.Wire == "row" {
		dialOpts = append(dialOpts, client.WithRowWire())
	}
	for i := 0; i < conns; i++ {
		f.pacers[i] = workload.NewPacer(0)
		f.pickers[i] = workload.NewTenantPicker(spec.Fleet.Tenants, spec.Fleet.Skew, spec.Seed+int64(i))
		if nodes != nil {
			// A finite reconnect budget is load-bearing here: exhausting
			// it against a dead leader is what surfaces the failoverable
			// error that makes the ClusterSession re-resolve placement.
			// The Cluster re-dials replaced clients, so the budget bounds
			// one outage's patience, not the run's.
			cl, err := client.DialCluster(nodes, spec.Cluster.Replicas,
				append(dialOpts, client.WithReconnect(8))...)
			if err != nil {
				f.closeAll()
				return nil, fmt.Errorf("fleet cluster dial %d: %w", i, err)
			}
			cl.FailoverWait = 30 * time.Second
			f.clusters = append(f.clusters, cl)
			cs, err := cl.Create(spec.Name, m, n, k, spec.Workload.Alpha, spec.Seed)
			if err != nil {
				f.closeAll()
				return nil, fmt.Errorf("fleet cluster create %d: %w", i, err)
			}
			f.sess = append(f.sess, []ingestSession{cs})
			f.csess = append(f.csess, cs)
			continue
		}
		cl, err := client.Dial(addr, append(dialOpts, client.WithReconnect(100000))...)
		if err != nil {
			f.closeAll()
			return nil, fmt.Errorf("fleet dial %d: %w", i, err)
		}
		f.clients = append(f.clients, cl)
		row := make([]ingestSession, 0, spec.Fleet.Tenants)
		for t := 0; t < spec.Fleet.Tenants; t++ {
			sess, err := cl.Create(sessionName(spec, t), m, n, k, spec.Workload.Alpha, spec.Seed)
			if err != nil {
				f.closeAll()
				return nil, fmt.Errorf("fleet create %d tenant %d: %w", i, t, err)
			}
			row = append(row, sess)
		}
		f.sess = append(f.sess, row)
	}
	return f, nil
}

// sessionName is tenant t's server-side session name. A single-tenant run
// keeps the bare spec name (every pre-existing spec is unchanged); a
// fan-out suffixes the tenant index so sessions stay addressable from
// /sessions and the query endpoints.
func sessionName(spec *Spec, t int) string {
	if spec.Fleet.Tenants <= 1 {
		return spec.Name
	}
	return fmt.Sprintf("%s-t%d", spec.Name, t)
}

// start launches one driver goroutine per connection.
func (f *fleet) start() {
	for i := range f.sess {
		f.wg.Add(1)
		go func(ci int) {
			defer f.wg.Done()
			if err := f.drive(ci); err != nil {
				select {
				case f.errs <- fmt.Errorf("conn %d: %w", ci, err):
				default:
				}
			}
		}(i)
	}
}

// drive pumps this connection's stream slice in batch-size chunks,
// cycling back to the start when the slice is exhausted — a timed phase
// must never run out of load, and re-sending the same edges is safe
// because max-coverage ingest is idempotent on the multiset level (the
// reference estimator replays the identical cycled sequence). Each chunk
// goes to the tenant session the connection's seeded picker chooses, so a
// skewed fan-out leaves cold tenants idle for long stretches — exactly
// the access pattern that exercises eviction and rehydration.
func (f *fleet) drive(ci int) error {
	row := f.sess[ci]
	edges := f.streams[ci]
	if len(edges) == 0 {
		return nil
	}
	pos := 0
	for {
		select {
		case <-f.stop:
			return nil
		default:
		}
		end := pos + f.spec.BatchEdges
		if end > len(edges) {
			end = len(edges)
		}
		chunk := edges[pos:end]
		f.pacers[ci].Take(len(chunk))
		// Re-check after a potentially long pace wait so a phase change
		// to stop doesn't strand us in one more blocking Send.
		select {
		case <-f.stop:
			return nil
		default:
		}
		if err := row[f.pickers[ci].Pick()].Send(chunk); err != nil {
			return err
		}
		f.sent[ci] += int64(len(chunk))
		pos = end
		if pos >= len(edges) {
			pos = 0
		}
	}
}

// setPhase switches ack accounting to phase pi and retargets every pacer
// to its per-connection share of the phase's total rate.
func (f *fleet) setPhase(pi int, totalRate float64) {
	f.phaseIdx.Store(int64(pi))
	per := totalRate / float64(len(f.pacers))
	for _, p := range f.pacers {
		p.SetRate(per)
	}
}

// halt stops the drivers and waits for them; pacers are opened up first
// so nobody is stuck in a token wait.
func (f *fleet) halt() error {
	close(f.stop)
	for _, p := range f.pacers {
		p.SetRate(0)
	}
	f.wg.Wait()
	select {
	case err := <-f.errs:
		return err
	default:
		return nil
	}
}

// flushAll barriers every connection: all buffered and in-flight batches
// acknowledged (replaying through restarts and busy windows as needed).
func (f *fleet) flushAll() error {
	for i, row := range f.sess {
		for t, s := range row {
			if err := s.Flush(); err != nil {
				return fmt.Errorf("conn %d tenant %d flush: %w", i, t, err)
			}
		}
	}
	return nil
}

// queryApplied reads the server-side truth after the final flush: the
// summed applied edge count across every tenant session (through conn 0's
// handles — all connections address the same server sessions) and tenant
// 0's full result for the report's coverage row. With one tenant this is
// exactly the old single-session query, so the exactly-once gate keeps
// its meaning: sum(per-tenant applied) == edges handed to Send.
func (f *fleet) queryApplied() (first client.Result, applied int64, err error) {
	for t, s := range f.sess[0] {
		r, qerr := s.Query()
		if qerr != nil {
			return client.Result{}, 0, fmt.Errorf("tenant %d query: %w", t, qerr)
		}
		if t == 0 {
			first = r
		}
		applied += int64(r.Edges)
	}
	return first, applied, nil
}

func (f *fleet) totalSent() int64 {
	var t int64
	for _, n := range f.sent {
		t += n
	}
	return t
}

func (f *fleet) closeAll() {
	for _, cl := range f.clients {
		cl.Close()
	}
	for _, cl := range f.clusters {
		cl.Close()
	}
}
