package scenario

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"
)

// Server-side latency scraping: /metrics exposes raw power-of-two latency
// buckets (histInfo: parallel upper-bound and count slices). The harness
// snapshots them at every phase boundary and diffs, which yields true
// per-phase server-side percentiles to sit next to the client-observed
// ones in the report — the gap between the two is the latency the server
// never sees (network, wire framing, client queuing, busy-park and
// reconnect windows).

// serverHists is one scrape, merged across nodes: histogram name ->
// bucket upper bound (nanos) -> count.
type serverHists map[string]map[int64]int64

var scrapeClient = &http.Client{Timeout: 2 * time.Second}

// scrapeHists reads /metrics latency_buckets from every address and merges
// the bucket counts. Unreachable nodes contribute nothing — the diff
// below clamps at zero, so a node restarting (histogram reset) or dying
// between snapshots degrades the phase's server percentiles instead of
// corrupting them.
func scrapeHists(addrs []string) serverHists {
	out := serverHists{}
	for _, addr := range addrs {
		resp, err := scrapeClient.Get("http://" + addr + "/metrics")
		if err != nil {
			continue
		}
		var body struct {
			Hists map[string]struct {
				Uppers []int64 `json:"uppers"`
				Counts []int64 `json:"counts"`
			} `json:"latency_buckets"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for name, h := range body.Hists {
			m := out[name]
			if m == nil {
				m = map[int64]int64{}
				out[name] = m
			}
			for i, up := range h.Uppers {
				if i < len(h.Counts) {
					m[up] += h.Counts[i]
				}
			}
		}
	}
	return out
}

// diff returns the per-bucket growth from prev to h, clamped at zero.
func (h serverHists) diff(prev serverHists) serverHists {
	out := serverHists{}
	for name, cur := range h {
		m := map[int64]int64{}
		for up, c := range cur {
			if p := prev[name][up]; c > p {
				m[up] = c - p
			}
		}
		if len(m) > 0 {
			out[name] = m
		}
	}
	return out
}

// histQuantile estimates the q-quantile (nanos) of one diffed histogram,
// interpolating linearly inside the landing bucket. Buckets are
// power-of-two: a bucket's lower bound is half its upper bound (0 for the
// first). Returns 0 for an empty histogram.
func histQuantile(h map[int64]int64, q float64) float64 {
	if len(h) == 0 {
		return 0
	}
	uppers := make([]int64, 0, len(h))
	var total int64
	for up, c := range h {
		uppers = append(uppers, up)
		total += c
	}
	if total == 0 {
		return 0
	}
	sort.Slice(uppers, func(i, j int) bool { return uppers[i] < uppers[j] })
	target := q * float64(total)
	var cum float64
	for _, up := range uppers {
		c := float64(h[up])
		if cum+c >= target {
			lower := float64(up) / 2
			if up == uppers[0] {
				lower = 0
			}
			frac := (target - cum) / c
			return lower + (float64(up)-lower)*frac
		}
		cum += c
	}
	return float64(uppers[len(uppers)-1])
}

// sumCounters scrapes /metrics counters from every address and sums them
// per key — in cluster mode the rep_* counters then describe the fleet,
// not one node. Returns nil if no node answered.
func sumCounters(addrs []string) map[string]int64 {
	var out map[string]int64
	for _, addr := range addrs {
		resp, err := scrapeClient.Get("http://" + addr + "/metrics")
		if err != nil {
			continue
		}
		var body struct {
			Counters map[string]int64 `json:"counters"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		if out == nil {
			out = map[string]int64{}
		}
		for k, v := range body.Counters {
			out[k] += v
		}
	}
	return out
}
