package scenario

import (
	"fmt"
	"testing"
)

// TestBuildWorkloadDeterministic is the harness-level determinism proof:
// the full spec→stream derivation (generator + arrival-order shuffle)
// must be a pure function of the seed, which is what makes a reported
// stream digest reproducible and two same-seed runs comparable.
func TestBuildWorkloadDeterministic(t *testing.T) {
	for _, family := range []string{"uniform", "zipf", "prefattach"} {
		for _, order := range []string{"set", "shuffled", "element", "roundrobin"} {
			spec, err := ParseSpec([]byte(fmt.Sprintf(`{
				"name": "det", "seed": 42,
				"workload": {"family": %q, "n": 500, "m": 60, "k": 5, "order": %q},
				"phases": [{"name": "p", "duration": "1s"}]
			}`, family, order)))
			if err != nil {
				t.Fatal(err)
			}
			e1, d1, m1, n1, k1, err := buildWorkload(spec)
			if err != nil {
				t.Fatal(err)
			}
			e2, d2, m2, n2, k2, err := buildWorkload(spec)
			if err != nil {
				t.Fatal(err)
			}
			if d1 != d2 || len(e1) != len(e2) || m1 != m2 || n1 != n2 || k1 != k2 {
				t.Fatalf("%s/%s: two builds differ: digest %016x vs %016x", family, order, d1, d2)
			}
			spec.Seed = 43
			_, d3, _, _, _, err := buildWorkload(spec)
			if err != nil {
				t.Fatal(err)
			}
			if d3 == d1 {
				t.Fatalf("%s/%s: different seeds produced the same digest", family, order)
			}
		}
	}
}

// TestRunSteadyMini drives a short two-phase closed/paced run end to end:
// all edges acked, percentiles populated, gates evaluated, exactly-once
// and reference-match both holding.
func TestRunSteadyMini(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end scenario run")
	}
	spec, err := ParseSpec([]byte(`{
		"name": "steady-mini", "seed": 7,
		"workload": {"family": "uniform", "n": 2000, "m": 200, "k": 10},
		"fleet": {"connections": 2, "batch_edges": 256},
		"phases": [
			{"name": "warm", "duration": "500ms", "rate": 4000},
			{"name": "sustain", "duration": "1s"}
		],
		"gates": {"min_edges_per_sec": 100, "require_exactly_once": true, "require_reference_match": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, Options{PollInterval: 50e6})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("steady mini failed: %+v error=%s", rep.Gates, rep.Error)
	}
	if rep.EdgesSent == 0 || rep.EdgesApplied != rep.EdgesSent {
		t.Fatalf("sent=%d applied=%d", rep.EdgesSent, rep.EdgesApplied)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("phases: %+v", rep.Phases)
	}
	for _, p := range rep.Phases {
		if p.EdgesAcked == 0 || p.P99Millis < p.P50Millis {
			t.Fatalf("phase %q accounting broken: %+v", p.Name, p)
		}
	}
	// The warm phase is paced at 4000 edges/s; allow wide CI tolerance but
	// catch a pacer that is off by an order of magnitude.
	warm := rep.Phases[0]
	if warm.EdgesPerSec > 12000 {
		t.Fatalf("paced phase ran at %.0f edges/s against a 4000 target", warm.EdgesPerSec)
	}
}

// TestRunDiskFullMini schedules an ENOSPC window against a durable daemon
// mid-run and asserts the run survives it: every edge eventually acked
// exactly once, and a recovery time was measured from the health
// timeline.
func TestRunDiskFullMini(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end scenario run")
	}
	spec, err := ParseSpec([]byte(`{
		"name": "diskfull-mini", "seed": 11,
		"workload": {"family": "uniform", "n": 2000, "m": 200, "k": 10},
		"fleet": {"connections": 2, "batch_edges": 256},
		"daemon": {"durable": true, "wal_nosync": true, "retry_min": "10ms", "retry_max": "100ms"},
		"phases": [{"name": "drive", "duration": "2500ms"}],
		"faults": [{"kind": "disk_full", "at": "600ms", "duration": "700ms", "budget": 4096}],
		"gates": {"require_exactly_once": true, "require_reference_match": true, "max_recovery_ms": 15000}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, Options{PollInterval: 50e6})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("disk-full mini failed: %+v error=%s", rep.Gates, rep.Error)
	}
	if len(rep.Faults) != 1 {
		t.Fatalf("faults: %+v", rep.Faults)
	}
	f := rep.Faults[0]
	if f.Kind != "disk_full" || f.RecoveryMillis < 0 {
		t.Fatalf("no measured recovery: %+v", f)
	}
	if f.EndSeconds <= f.StartSeconds {
		t.Fatalf("window not recorded: %+v", f)
	}
}

// TestRunKillRestartMini kills a durable daemon mid-drive and restarts it
// on the same address: the fleet must replay through the outage and the
// final state must still match the single-estimator reference bit for
// bit.
func TestRunKillRestartMini(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end scenario run")
	}
	spec, err := ParseSpec([]byte(`{
		"name": "killrestart-mini", "seed": 13,
		"workload": {"family": "zipf", "n": 2000, "m": 200, "k": 10},
		"fleet": {"connections": 2, "batch_edges": 256},
		"daemon": {"durable": true, "wal_nosync": true, "checkpoint_every": "300ms"},
		"phases": [{"name": "drive", "duration": "2500ms"}],
		"lifecycle": [{"at": "800ms", "action": "kill"}, {"at": "1300ms", "action": "restart"}],
		"gates": {"require_exactly_once": true, "require_reference_match": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, Options{PollInterval: 50e6})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("kill/restart mini failed: %+v error=%s", rep.Gates, rep.Error)
	}
	if len(rep.Lifecycle) != 2 {
		t.Fatalf("lifecycle: %+v", rep.Lifecycle)
	}
	restart := rep.Lifecycle[1]
	if restart.Action != "restart" || restart.RecoveryMillis < 0 {
		t.Fatalf("restart recovery not measured: %+v", restart)
	}
}

// TestRunTenantChurnMini fans a Zipf-skewed tenant workload across many
// sessions on a memory-budgeted durable daemon: the budget is far below
// the fleet's total footprint, so cold tenants must evict to their
// checkpoints and rehydrate on their next touch mid-drive. The exactly-
// once gate (summed across tenants) plus live eviction/rehydration
// counters are the harness-level proof that oversubscription loses
// nothing: every acked edge lands in exactly one tenant's estimator, no
// matter how many times that tenant was parked and revived.
func TestRunTenantChurnMini(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end scenario run")
	}
	spec, err := ParseSpec([]byte(`{
		"name": "tenant-churn-mini", "seed": 23,
		"workload": {"family": "uniform", "n": 500, "m": 60, "k": 5},
		"fleet": {"connections": 2, "batch_edges": 256, "tenants": 12, "skew": 1.1},
		"daemon": {"durable": true, "wal_nosync": true, "workers": 1, "checkpoint_every": "250ms", "mem_budget": 2000000},
		"phases": [{"name": "churn", "duration": "3s"}],
		"gates": {"require_exactly_once": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, Options{PollInterval: 50e6})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("tenant churn mini failed: %+v error=%s", rep.Gates, rep.Error)
	}
	if rep.Tenants != 12 {
		t.Fatalf("tenants not reported: %+v", rep)
	}
	if rep.EdgesSent == 0 || rep.EdgesApplied != rep.EdgesSent {
		t.Fatalf("sent=%d applied=%d", rep.EdgesSent, rep.EdgesApplied)
	}
	if rep.ServerCounters["evictions_total"] == 0 || rep.ServerCounters["rehydrations_total"] == 0 {
		t.Fatalf("budget never forced churn: evictions=%d rehydrations=%d",
			rep.ServerCounters["evictions_total"], rep.ServerCounters["rehydrations_total"])
	}
}

// TestRunClusterFailoverMini is the harness-level acceptance slice: a
// 3-node fleet ingests through overlapping replication partitions (every
// node's peer plane cut in turn, so the whole plane is severed whatever
// the placement chose) and an orderly leader failover, and must still end
// with every surviving replica byte-equal to the fault-free single-node
// reference, every edge applied exactly once, and a staleness-bounded
// follower read agreeing with the leader.
func TestRunClusterFailoverMini(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end cluster scenario run")
	}
	spec, err := ParseSpec([]byte(`{
		"name": "cluster-failover-mini", "seed": 17,
		"workload": {"family": "uniform", "n": 2000, "m": 200, "k": 10},
		"fleet": {"connections": 2, "batch_edges": 256},
		"daemon": {"durable": true, "wal_nosync": true, "proxy": true, "checkpoint_every": "500ms"},
		"cluster": {"nodes": 3, "heartbeat": "25ms", "max_stale": "5s"},
		"phases": [
			{"name": "warm", "duration": "1s", "rate": 3000},
			{"name": "chaos", "duration": "2s", "rate": 2000},
			{"name": "settle", "duration": "1500ms", "rate": 1000}
		],
		"faults": [
			{"kind": "peer_partition", "at": "1s", "duration": "600ms", "node": 0},
			{"kind": "peer_partition", "at": "1200ms", "duration": "600ms", "node": 1},
			{"kind": "peer_partition", "at": "1400ms", "duration": "600ms", "node": 2}
		],
		"lifecycle": [{"at": "3200ms", "action": "failover"}],
		"gates": {"require_exactly_once": true, "require_reference_match": true, "require_replica_convergence": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, Options{PollInterval: 50e6})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("cluster failover mini failed: %+v error=%s", rep.Gates, rep.Error)
	}
	if rep.EdgesSent == 0 || rep.EdgesApplied != rep.EdgesSent {
		t.Fatalf("sent=%d applied=%d", rep.EdgesSent, rep.EdgesApplied)
	}
	if len(rep.Lifecycle) != 1 || rep.Lifecycle[0].Action != "failover" || rep.Lifecycle[0].Leader == "" {
		t.Fatalf("failover not recorded with the promoted leader: %+v", rep.Lifecycle)
	}
	if rep.Leader != rep.Lifecycle[0].Leader {
		t.Fatalf("final leader %q != promoted %q", rep.Leader, rep.Lifecycle[0].Leader)
	}
	// One node died in the failover; the two survivors must both report,
	// byte-equal, with exactly one of them leading.
	if len(rep.Replicas) != 2 {
		t.Fatalf("replica snapshot: %+v", rep.Replicas)
	}
	leaders := 0
	for _, r := range rep.Replicas {
		if r.Role == "leader" {
			leaders++
		}
		if r.Digest != rep.Replicas[0].Digest {
			t.Fatalf("survivors diverged: %+v", rep.Replicas)
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders in the final snapshot: %+v", leaders, rep.Replicas)
	}
	if len(rep.Faults) != 3 {
		t.Fatalf("faults: %+v", rep.Faults)
	}
}
