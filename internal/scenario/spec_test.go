package scenario

import (
	"strings"
	"testing"
	"time"
)

// minimalSpec is a valid spec that each error-case test mutates.
const minimalSpec = `{
  "name": "t",
  "seed": 1,
  "workload": {"family": "uniform", "n": 100, "m": 20, "k": 3},
  "phases": [{"name": "p", "duration": "1s"}]
}`

func TestParseSpecMinimalDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(minimalSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Workload.Order != "shuffled" || s.Workload.Alpha != 4 {
		t.Fatalf("workload defaults not applied: %+v", s.Workload)
	}
	if s.Fleet.Connections != 2 || s.Fleet.BatchEdges != 2048 || s.Fleet.MaxPending != 32 {
		t.Fatalf("fleet defaults not applied: %+v", s.Fleet)
	}
	if s.Daemon.Workers != 2 || s.Daemon.RetryMin.Duration != 25*time.Millisecond {
		t.Fatalf("daemon defaults not applied: %+v", s.Daemon)
	}
	if s.TotalDuration() != time.Second {
		t.Fatalf("total duration = %v", s.TotalDuration())
	}
}

// TestParseSpecErrors is the satellite table: every malformed spec must be
// rejected with a message naming the problem — silent acceptance of a
// typo is how a "passing" load test stops testing anything.
func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{
			name: "unknown top-level field",
			json: `{"name":"t","seed":1,"workload":{"family":"uniform"},"phases":[{"name":"p","duration":"1s"}],"bogus":1}`,
			want: "unknown field",
		},
		{
			name: "unknown workload field",
			json: `{"name":"t","workload":{"family":"uniform","avgsize":9},"phases":[{"name":"p","duration":"1s"}]}`,
			want: "unknown field",
		},
		{
			name: "unknown gate field",
			json: `{"name":"t","workload":{"family":"uniform"},"phases":[{"name":"p","duration":"1s"}],"gates":{"min_edge_rate":5}}`,
			want: "unknown field",
		},
		{
			name: "trailing document",
			json: minimalSpec + `{"name":"second"}`,
			want: "trailing data",
		},
		{
			name: "missing name",
			json: `{"workload":{"family":"uniform"},"phases":[{"name":"p","duration":"1s"}]}`,
			want: "missing name",
		},
		{
			name: "unknown family",
			json: `{"name":"t","workload":{"family":"nope"},"phases":[{"name":"p","duration":"1s"}]}`,
			want: "unknown workload family",
		},
		{
			name: "unknown order",
			json: `{"name":"t","workload":{"family":"uniform","order":"sorted"},"phases":[{"name":"p","duration":"1s"}]}`,
			want: "unknown arrival order",
		},
		{
			name: "no phases",
			json: `{"name":"t","workload":{"family":"uniform"}}`,
			want: "no phases",
		},
		{
			name: "negative phase duration",
			json: `{"name":"t","workload":{"family":"uniform"},"phases":[{"name":"p","duration":"-2s"}]}`,
			want: "must be positive",
		},
		{
			name: "zero phase duration",
			json: `{"name":"t","workload":{"family":"uniform"},"phases":[{"name":"p","duration":"0s"}]}`,
			want: "must be positive",
		},
		{
			name: "duration not a string",
			json: `{"name":"t","workload":{"family":"uniform"},"phases":[{"name":"p","duration":1000}]}`,
			want: "durations are strings",
		},
		{
			name: "malformed duration",
			json: `{"name":"t","workload":{"family":"uniform"},"phases":[{"name":"p","duration":"fast"}]}`,
			want: "invalid duration",
		},
		{
			name: "negative rate",
			json: `{"name":"t","workload":{"family":"uniform"},"phases":[{"name":"p","duration":"1s","rate":-5}]}`,
			want: "negative rate",
		},
		{
			name: "negative fleet size",
			json: `{"name":"t","workload":{"family":"uniform"},"fleet":{"connections":-1},"phases":[{"name":"p","duration":"1s"}]}`,
			want: "fleet.connections is negative",
		},
		{
			name: "unknown fault kind",
			json: `{"name":"t","workload":{"family":"uniform"},"phases":[{"name":"p","duration":"1s"}],"faults":[{"kind":"meteor","at":"0s","duration":"1s"}]}`,
			want: "unknown kind",
		},
		{
			name: "fault window past run end",
			json: `{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true},"phases":[{"name":"p","duration":"1s"}],"faults":[{"kind":"io_latency","at":"500ms","duration":"1s","delay":"1ms"}]}`,
			want: "extends past the run end",
		},
		{
			name: "negative fault offset",
			json: `{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true},"phases":[{"name":"p","duration":"1s"}],"faults":[{"kind":"fail_syncs","at":"-1s","duration":"500ms"}]}`,
			want: "negative offset",
		},
		{
			name: "overlapping same-kind fault windows",
			json: `{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true},"phases":[{"name":"p","duration":"10s"}],"faults":[
				{"kind":"fail_syncs","at":"1s","duration":"3s"},
				{"kind":"fail_syncs","at":"2s","duration":"1s"}]}`,
			want: "windows overlap",
		},
		{
			name: "proxy fault without proxy",
			json: `{"name":"t","workload":{"family":"uniform"},"phases":[{"name":"p","duration":"2s"}],"faults":[{"kind":"partition","at":"0s","duration":"1s"}]}`,
			want: "needs daemon.proxy",
		},
		{
			name: "disk fault without durability",
			json: `{"name":"t","workload":{"family":"uniform"},"phases":[{"name":"p","duration":"2s"}],"faults":[{"kind":"disk_full","at":"0s","duration":"1s","budget":1024}]}`,
			want: "needs daemon.durable",
		},
		{
			name: "disk_full without budget",
			json: `{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true},"phases":[{"name":"p","duration":"2s"}],"faults":[{"kind":"disk_full","at":"0s","duration":"1s"}]}`,
			want: "budget",
		},
		{
			name: "drop_conns with a window",
			json: `{"name":"t","workload":{"family":"uniform"},"daemon":{"proxy":true},"phases":[{"name":"p","duration":"2s"}],"faults":[{"kind":"drop_conns","at":"0s","duration":"1s"}]}`,
			want: "instantaneous",
		},
		{
			name: "restart without kill",
			json: `{"name":"t","workload":{"family":"uniform"},"phases":[{"name":"p","duration":"2s"}],"lifecycle":[{"at":"1s","action":"restart"}]}`,
			want: "without a preceding kill",
		},
		{
			name: "kill never restarted",
			json: `{"name":"t","workload":{"family":"uniform"},"phases":[{"name":"p","duration":"2s"}],"lifecycle":[{"at":"1s","action":"kill"}]}`,
			want: "left dead",
		},
		{
			name: "double kill",
			json: `{"name":"t","workload":{"family":"uniform"},"phases":[{"name":"p","duration":"3s"}],"lifecycle":[{"at":"1s","action":"kill"},{"at":"2s","action":"kill"}]}`,
			want: "already down",
		},
		{
			name: "lifecycle after run end",
			json: `{"name":"t","workload":{"family":"uniform"},"phases":[{"name":"p","duration":"1s"}],"lifecycle":[{"at":"5s","action":"checkpoint"}]}`,
			want: "after the run ends",
		},
		{
			name: "unknown lifecycle action",
			json: `{"name":"t","workload":{"family":"uniform"},"phases":[{"name":"p","duration":"2s"}],"lifecycle":[{"at":"1s","action":"pause"}]}`,
			want: "unknown action",
		},
		{
			name: "kill with exactly-once but no durability",
			json: `{"name":"t","workload":{"family":"uniform"},"gates":{"require_exactly_once":true},"phases":[{"name":"p","duration":"3s"}],"lifecycle":[{"at":"1s","action":"kill"},{"at":"2s","action":"restart"}]}`,
			want: "needs daemon.durable",
		},
		{
			name: "negative gate",
			json: `{"name":"t","workload":{"family":"uniform"},"phases":[{"name":"p","duration":"1s"}],"gates":{"max_p99_ms":-1}}`,
			want: "gate max_p99_ms is negative",
		},
		{
			name: "cluster with one node",
			json: `{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true},"cluster":{"nodes":1},"phases":[{"name":"p","duration":"1s"}]}`,
			want: "cluster.nodes 1 out of range",
		},
		{
			name: "cluster with too many nodes",
			json: `{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true},"cluster":{"nodes":12},"phases":[{"name":"p","duration":"1s"}]}`,
			want: "cluster.nodes 12 out of range",
		},
		{
			name: "replicas wider than the fleet",
			json: `{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true},"cluster":{"nodes":3,"replicas":4},"phases":[{"name":"p","duration":"1s"}]}`,
			want: "cluster.replicas 4 out of range",
		},
		{
			name: "cluster without durability",
			json: `{"name":"t","workload":{"family":"uniform"},"cluster":{"nodes":3},"phases":[{"name":"p","duration":"1s"}]}`,
			want: "needs daemon.durable",
		},
		{
			name: "peer_partition without cluster",
			json: `{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true,"proxy":true},"phases":[{"name":"p","duration":"2s"}],"faults":[{"kind":"peer_partition","at":"0s","duration":"1s"}]}`,
			want: "needs a cluster block",
		},
		{
			name: "failover without cluster",
			json: `{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true},"phases":[{"name":"p","duration":"2s"}],"lifecycle":[{"at":"1s","action":"failover"}]}`,
			want: "needs a cluster block",
		},
		{
			name: "failover mixed with kill",
			json: `{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true,"proxy":true},"cluster":{"nodes":3},"phases":[{"name":"p","duration":"5s"}],"lifecycle":[
				{"at":"1s","action":"failover"},
				{"at":"2s","action":"kill","node":1},{"at":"3s","action":"restart","node":1}]}`,
			want: "cannot be mixed",
		},
		{
			name: "too many failovers for the placement",
			json: `{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true},"cluster":{"nodes":3,"replicas":2},"phases":[{"name":"p","duration":"5s"}],"lifecycle":[
				{"at":"1s","action":"failover"},{"at":"2s","action":"failover"}]}`,
			want: "exhaust the placement",
		},
		{
			name: "fault node out of range",
			json: `{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true,"proxy":true},"cluster":{"nodes":3},"phases":[{"name":"p","duration":"2s"}],"faults":[{"kind":"partition","at":"0s","duration":"1s","node":3}]}`,
			want: "node 3 out of range",
		},
		{
			name: "lifecycle node out of range",
			json: `{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true},"cluster":{"nodes":3},"phases":[{"name":"p","duration":"2s"}],"lifecycle":[{"at":"1s","action":"checkpoint","node":5}]}`,
			want: "node 5 out of range",
		},
		{
			name: "convergence gate without cluster",
			json: `{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true},"phases":[{"name":"p","duration":"1s"}],"gates":{"require_replica_convergence":true}}`,
			want: "needs a cluster block",
		},
		{
			name: "mem_budget without durability",
			json: `{"name":"t","workload":{"family":"uniform"},"daemon":{"mem_budget":1048576},"phases":[{"name":"p","duration":"1s"}]}`,
			want: "needs daemon.durable",
		},
		{
			name: "negative mem_budget",
			json: `{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true,"mem_budget":-1},"phases":[{"name":"p","duration":"1s"}]}`,
			want: "mem_budget is negative",
		},
		{
			name: "negative tenant skew",
			json: `{"name":"t","workload":{"family":"uniform"},"fleet":{"tenants":4,"skew":-1},"phases":[{"name":"p","duration":"1s"}]}`,
			want: "fleet.skew is negative",
		},
		{
			name: "tenants with reference match",
			json: `{"name":"t","workload":{"family":"uniform"},"fleet":{"tenants":4},"phases":[{"name":"p","duration":"1s"}],"gates":{"require_reference_match":true}}`,
			want: "cannot be combined with fleet.tenants",
		},
		{
			name: "tenants with cluster",
			json: `{"name":"t","workload":{"family":"uniform"},"fleet":{"tenants":4},"daemon":{"durable":true},"cluster":{"nodes":3},"phases":[{"name":"p","duration":"1s"}]}`,
			want: "cannot be combined with a cluster block",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.json))
			if err == nil {
				t.Fatalf("spec accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestParseSpecValidSchedules exercises accepted shapes near the
// validation edges: adjacent (non-overlapping) same-kind windows,
// different-kind overlap, and a full kill/restart cycle.
func TestParseSpecValidSchedules(t *testing.T) {
	good := []string{
		// Adjacent windows of the same kind touch but do not overlap.
		`{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true},"phases":[{"name":"p","duration":"10s"}],"faults":[
			{"kind":"fail_syncs","at":"1s","duration":"2s"},
			{"kind":"fail_syncs","at":"3s","duration":"2s"}]}`,
		// Different kinds may overlap freely.
		`{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true,"proxy":true},"phases":[{"name":"p","duration":"10s"}],"faults":[
			{"kind":"io_latency","at":"1s","duration":"5s","delay":"2ms"},
			{"kind":"net_delay","at":"2s","duration":"5s","delay":"1ms"}]}`,
		// Kill, restart, kill, restart.
		`{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true},"phases":[{"name":"p","duration":"10s"}],"lifecycle":[
			{"at":"1s","action":"kill"},{"at":"2s","action":"restart"},
			{"at":"4s","action":"kill"},{"at":"5s","action":"restart"}]}`,
		// Cluster: per-node same-kind windows may overlap across nodes, a
		// failover rides with peer partitions, and the cluster gates apply.
		`{"name":"t","workload":{"family":"uniform"},"daemon":{"durable":true,"proxy":true},"cluster":{"nodes":3},"phases":[{"name":"p","duration":"20s"}],"faults":[
			{"kind":"peer_partition","at":"1s","duration":"3s","node":0},
			{"kind":"peer_partition","at":"2s","duration":"3s","node":1},
			{"kind":"peer_partition","at":"3s","duration":"3s","node":2}],
			"lifecycle":[{"at":"10s","action":"failover"}],
			"gates":{"require_exactly_once":true,"require_replica_convergence":true}}`,
	}
	for i, j := range good {
		if _, err := ParseSpec([]byte(j)); err != nil {
			t.Fatalf("valid spec %d rejected: %v", i, err)
		}
	}
}

// TestParseSpecClusterDefaults pins the cluster block's derived defaults:
// placement width min(3, nodes), shipper heartbeat, and the follower-read
// staleness bound — and that they survive a marshal/parse round trip.
func TestParseSpecClusterDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{"name":"t","seed":7,"workload":{"family":"uniform"},"daemon":{"durable":true},
		"cluster":{"nodes":2},"phases":[{"name":"p","duration":"1s"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	c := s.Cluster
	if c.Replicas != 2 {
		t.Fatalf("replicas default = %d, want min(3, nodes)=2", c.Replicas)
	}
	if c.Heartbeat.Duration != 50*time.Millisecond || c.MaxStale.Duration != 2*time.Second {
		t.Fatalf("cluster timing defaults not applied: %+v", c)
	}
	if !s.clustered() || s.nodeCount() != 2 {
		t.Fatalf("clustered()=%v nodeCount()=%d", s.clustered(), s.nodeCount())
	}
	blob, err := marshalSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := ParseSpec(blob)
	if err != nil {
		t.Fatalf("round-tripped cluster spec rejected: %v\n%s", err, blob)
	}
	if *rt.Cluster != *c {
		t.Fatalf("cluster block changed across round trip: %+v != %+v", rt.Cluster, c)
	}
}

// FuzzParseSpec asserts the parser never panics and that anything it
// accepts re-validates after a marshal/parse round trip.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(minimalSpec))
	f.Add([]byte(`{"name":"x","workload":{"family":"zipf","order":"element"},"daemon":{"durable":true,"proxy":true},
		"phases":[{"name":"a","duration":"2s","rate":1000},{"name":"b","duration":"1s"}],
		"faults":[{"kind":"partition","at":"500ms","duration":"1s"}],
		"lifecycle":[{"at":"2100ms","action":"checkpoint"}],
		"gates":{"require_exactly_once":true,"max_recovery_ms":5000}}`))
	f.Add([]byte(`{"name":"c","workload":{"family":"uniform"},"daemon":{"durable":true,"proxy":true},
		"cluster":{"nodes":3,"replicas":2,"heartbeat":"25ms","max_stale":"1s"},
		"phases":[{"name":"p","duration":"5s"}],
		"faults":[{"kind":"peer_partition","at":"1s","duration":"1s","node":1}],
		"lifecycle":[{"at":"3s","action":"failover"}],
		"gates":{"require_replica_convergence":true}}`))
	f.Add([]byte(`{"name":""}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		// Whatever parses must survive a round trip.
		blob, err := marshalSpec(s)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		if _, err := ParseSpec(blob); err != nil {
			t.Fatalf("round-tripped spec rejected: %v\n%s", err, blob)
		}
	})
}
