package scenario

import (
	"encoding/json"
	"fmt"
	"os"
)

// Report is the top-level kcoverload output (BENCH_scenarios.json): one
// entry per scenario run, in run order.
type Report struct {
	GeneratedAt string            `json:"generated_at,omitempty"`
	Scenarios   []*ScenarioReport `json:"scenarios"`
}

// ScenarioReport captures one scenario run end to end.
type ScenarioReport struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Seed        int64  `json:"seed"`
	// StreamDigest is the order-sensitive FNV-1a digest of the generated
	// edge stream — two same-seed runs must report the same value.
	StreamDigest   string `json:"stream_digest"`
	EdgesGenerated int    `json:"edges_generated"`
	// Tenants is set when the fleet fanned the stream across multiple
	// sessions; EdgesApplied is then the sum over all of them.
	Tenants        int               `json:"tenants,omitempty"`
	EdgesSent      int64             `json:"edges_sent"`
	EdgesApplied   int64             `json:"edges_applied"`
	Coverage       float64           `json:"coverage"`
	ElapsedSeconds float64           `json:"elapsed_seconds"`
	Phases         []PhaseReport     `json:"phases"`
	Faults         []FaultReport     `json:"faults,omitempty"`
	Lifecycle      []LifecycleReport `json:"lifecycle,omitempty"`
	// Leader and Replicas are cluster-mode only: the session's final
	// leader and the end-of-run convergence snapshot of every live node.
	Leader         string           `json:"leader,omitempty"`
	Replicas       []ReplicaReport  `json:"replicas,omitempty"`
	ServerCounters map[string]int64 `json:"server_counters,omitempty"`
	Gates          []GateResult     `json:"gates"`
	Pass           bool             `json:"pass"`
	Error          string           `json:"error,omitempty"`
}

// PhaseReport is the per-phase view from both vantage points: edges acked
// during the phase and first-write-to-ack latency percentiles on the
// client side (which include busy-park and reconnect time — the latency a
// caller feels), and the server-side ingest-batch percentiles from the
// /metrics histogram diff across the phase boundary. P99GapMillis is the
// client p99 minus the server p99 — everything the server never sees:
// network, wire framing, client queuing and park/reconnect windows.
type PhaseReport struct {
	Name            string  `json:"name"`
	Seconds         float64 `json:"seconds"`
	TargetRate      float64 `json:"target_rate,omitempty"`
	EdgesAcked      int64   `json:"edges_acked"`
	Batches         int64   `json:"batches_acked"`
	EdgesPerSec     float64 `json:"edges_per_sec"`
	P50Millis       float64 `json:"p50_ms"`
	P95Millis       float64 `json:"p95_ms"`
	P99Millis       float64 `json:"p99_ms"`
	MeanMillis      float64 `json:"mean_ms"`
	ServerP50Millis float64 `json:"server_p50_ms,omitempty"`
	ServerP95Millis float64 `json:"server_p95_ms,omitempty"`
	ServerP99Millis float64 `json:"server_p99_ms,omitempty"`
	P99GapMillis    float64 `json:"p99_gap_ms,omitempty"`
}

// FaultReport records when a fault window actually ran and how long the
// daemon took to report "ok" on /healthz after the window cleared.
// RecoveryMillis is -1 when the daemon never recovered before shutdown.
type FaultReport struct {
	Kind           string  `json:"kind"`
	Node           int     `json:"node,omitempty"`
	StartSeconds   float64 `json:"start_seconds"`
	EndSeconds     float64 `json:"end_seconds"`
	RecoveryMillis float64 `json:"recovery_ms"`
}

// LifecycleReport records a lifecycle action; RecoveryMillis is set for
// restarts (time from restart to the first healthy scrape, -1 if never).
// Leader is set for failovers: the identity of the promoted node.
type LifecycleReport struct {
	Action         string  `json:"action"`
	Node           int     `json:"node,omitempty"`
	AtSeconds      float64 `json:"at_seconds"`
	RecoveryMillis float64 `json:"recovery_ms,omitempty"`
	Leader         string  `json:"leader,omitempty"`
}

// ReplicaReport is one live node's row in the cluster convergence
// snapshot: its role, applied watermark, and the SHA-256 digest of its
// per-worker estimator state — byte-equal digests across the fleet are
// the replication subsystem's correctness claim.
type ReplicaReport struct {
	Node             string  `json:"node"`
	Role             string  `json:"role"`
	Applied          uint64  `json:"applied"`
	Digest           string  `json:"digest"`
	StalenessSeconds float64 `json:"staleness_seconds,omitempty"`
}

// GateResult is one evaluated gate.
type GateResult struct {
	Name   string  `json:"name"`
	Limit  float64 `json:"limit,omitempty"`
	Actual float64 `json:"actual"`
	Pass   bool    `json:"pass"`
	Detail string  `json:"detail,omitempty"`
}

// Throughput is the scenario's overall acked edges/sec across all phases.
func (r *ScenarioReport) Throughput() float64 {
	var edges int64
	var secs float64
	for _, p := range r.Phases {
		edges += p.EdgesAcked
		secs += p.Seconds
	}
	if secs == 0 {
		return 0
	}
	return float64(edges) / secs
}

// WriteReport writes rep as indented JSON to path.
func WriteReport(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads a report written by WriteReport (the -baseline input).
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &rep, nil
}

// Scenario returns the named scenario's report, or nil.
func (r *Report) Scenario(name string) *ScenarioReport {
	if r == nil {
		return nil
	}
	for _, s := range r.Scenarios {
		if s.Name == name {
			return s
		}
	}
	return nil
}
