package scenario

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"slices"
	"sort"
	"sync"
	"time"

	streamcover "streamcover"
	"streamcover/internal/client"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// Options tune a Run without being part of the spec (the spec describes
// the scenario; Options describe the harness around it).
type Options struct {
	// Log receives progress lines; nil is silent.
	Log io.Writer
	// PollInterval is the /healthz scrape cadence (default 100ms). It is
	// also the resolution of every recovery-time measurement.
	PollInterval time.Duration
	// Baseline, when set, is the same scenario's report from a previous
	// run; the max_throughput_drop_pct gate compares against it.
	Baseline *ScenarioReport
	// DataDir overrides the durable daemon's data directory (default: a
	// fresh temp dir, removed afterwards).
	DataDir string
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// buildWorkload derives the full edge stream from the spec's single seed:
// instance generation and arrival-order linearization share one rng, so
// the stream — and its digest — is a pure function of the spec.
func buildWorkload(spec *Spec) (edges []streamcover.Edge, digest uint64, m, n, k int, err error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	w := spec.Workload
	inst, err := workload.FromFamily(w.Family, workload.FamilyParams{
		N: w.N, M: w.M, K: w.K,
		Frac: w.Frac, AvgSize: w.AvgSize, Exponent: w.Exponent, MaxSize: w.MaxSize,
		Large: w.Large, Commons: w.Commons, Privates: w.Privates,
		AvgDeg: w.AvgDeg, PerSet: w.PerSet, Rich: w.Rich,
	}, rng)
	if err != nil {
		return nil, 0, 0, 0, 0, err
	}
	var ord stream.Order
	switch w.Order {
	case "set":
		ord = stream.SetArrival
	case "shuffled":
		ord = stream.Shuffled
	case "element":
		ord = stream.ElementMajor
	case "roundrobin":
		ord = stream.RoundRobin
	}
	sl := stream.Linearize(inst.System, ord, rng)
	sedges := sl.Edges()
	edges = make([]streamcover.Edge, len(sedges))
	for i, e := range sedges {
		edges[i] = streamcover.Edge(e)
	}
	return edges, stream.Digest(sedges), len(inst.System.Sets), inst.System.N, inst.K, nil
}

// Run executes one scenario end to end and returns its report. The
// returned error is reserved for harness failures (bad spec, setup); a
// scenario that runs but fails its gates returns (report, nil) with
// report.Pass == false.
func Run(spec *Spec, opts Options) (*ScenarioReport, error) {
	if opts.PollInterval == 0 {
		opts.PollInterval = 100 * time.Millisecond
	}
	rep := &ScenarioReport{Name: spec.Name, Description: spec.Description, Seed: spec.Seed}

	edges, digest, m, n, k, err := buildWorkload(spec)
	if err != nil {
		return nil, err
	}
	rep.StreamDigest = fmt.Sprintf("%016x", digest)
	rep.EdgesGenerated = len(edges)
	if spec.Fleet.Tenants > 1 {
		rep.Tenants = spec.Fleet.Tenants
	}
	opts.logf("[%s] workload: %d edges over m=%d n=%d k=%d (digest %s)",
		spec.Name, len(edges), m, n, k, rep.StreamDigest)

	dataDir := opts.DataDir
	if spec.Daemon.Durable && dataDir == "" {
		dir, err := os.MkdirTemp("", "kcoverload-"+spec.Name+"-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		dataDir = dir
	}
	ns, err := newNodeSet(spec, dataDir)
	if err != nil {
		return nil, fmt.Errorf("node set: %w", err)
	}
	if err := ns.startAll(); err != nil {
		return nil, fmt.Errorf("daemon start: %w", err)
	}
	defer ns.shutdownAll(30 * time.Second)

	// One health collector per node, each at the proxied vantage point —
	// recovery time for a fault on node i is read from node i's timeline.
	colls := make([]*collector, len(ns.nodes))
	for i, d := range ns.nodes {
		colls[i] = newCollector(d.healthAddr(), opts.PollInterval)
	}
	haltColls := func() {
		for _, c := range colls {
			if c != nil {
				c.halt()
			}
		}
	}

	var fl *fleet
	if spec.clustered() {
		fl, err = newFleet(spec, "", ns.clientNodes(), edges, m, n, k)
	} else {
		fl, err = newFleet(spec, ns.nodes[0].clientAddr(), nil, edges, m, n, k)
	}
	if err != nil {
		haltColls()
		return nil, fmt.Errorf("fleet: %w", err)
	}
	defer fl.closeAll()

	// Server latency histograms are snapshotted at every phase boundary
	// so each phase gets its own server-side percentile diff. The first
	// snapshot lands before the fleet starts — the drivers run unpaced
	// until the first setPhase, so the scrape must not widen that window.
	snaps := make([]serverHists, 0, len(spec.Phases)+1)
	snaps = append(snaps, scrapeHists(ns.liveHTTPAddrs()))

	runStart := time.Now()
	sched := newScheduler(spec, ns, runStart, opts)
	sched.start()
	fl.start()

	// Drive the phases: ack accounting and pacing switch at each
	// boundary; the wall clock is authoritative for phase length.
	for pi, ph := range spec.Phases {
		if pi > 0 {
			snaps = append(snaps, scrapeHists(ns.liveHTTPAddrs()))
		}
		phStart := time.Now()
		fl.setPhase(pi, ph.Rate)
		opts.logf("[%s] phase %q: %v at %s", spec.Name, ph.Name, ph.Duration.Duration, rateStr(ph.Rate))
		time.Sleep(ph.Duration.Duration)
		fl.phases[pi].seconds = time.Since(phStart).Seconds()
	}

	driveErr := fl.halt()
	sched.wait()
	// Residual safety: no fault may outlive the run, whatever the
	// schedule did.
	ns.clearAllFaults()

	// The barrier: every sent edge acknowledged (replaying through any
	// remaining busy window), then every live daemon observed healthy —
	// which is also what closes out the recovery-time measurements.
	flushErr := fl.flushAll()
	// The last phase's server-side window closes after the flush so its
	// diff covers the batches the flush replayed.
	snaps = append(snaps, scrapeHists(ns.liveHTTPAddrs()))
	healthy := true
	for i, d := range ns.nodes {
		if _, ok := d.server(); ok && !colls[i].waitHealthy(30*time.Second) {
			healthy = false
		}
	}
	rep.ElapsedSeconds = time.Since(runStart).Seconds()

	// Per-phase accounting: the client-observed view from the ack
	// observer, and the server-side ingest percentiles from the
	// /metrics histogram diff across the phase boundary.
	for pi, ph := range spec.Phases {
		acc := fl.phases[pi]
		pr := PhaseReport{
			Name:       ph.Name,
			Seconds:    acc.seconds,
			TargetRate: ph.Rate,
			EdgesAcked: acc.edges.Load(),
			Batches:    acc.batches.Load(),
		}
		if pr.Seconds > 0 {
			pr.EdgesPerSec = float64(pr.EdgesAcked) / pr.Seconds
		}
		if acc.hist.Count() > 0 {
			pr.P50Millis = float64(acc.hist.Quantile(0.50)) / 1e6
			pr.P95Millis = float64(acc.hist.Quantile(0.95)) / 1e6
			pr.P99Millis = float64(acc.hist.Quantile(0.99)) / 1e6
			pr.MeanMillis = float64(acc.hist.Mean()) / 1e6
		}
		if sh := snaps[pi+1].diff(snaps[pi])["ingest_batch_nanos"]; len(sh) > 0 {
			pr.ServerP50Millis = histQuantile(sh, 0.50) / 1e6
			pr.ServerP95Millis = histQuantile(sh, 0.95) / 1e6
			pr.ServerP99Millis = histQuantile(sh, 0.99) / 1e6
			if pr.P99Millis > 0 {
				pr.P99GapMillis = pr.P99Millis - pr.ServerP99Millis
			}
		}
		rep.Phases = append(rep.Phases, pr)
	}

	// Fault and lifecycle outcomes, with recovery measured from the
	// target node's collector timeline.
	rep.Faults, rep.Lifecycle = sched.reports(colls, runStart)

	var gateErrs []string
	sched.mu.Lock()
	gateErrs = append(gateErrs, sched.errs...)
	sched.mu.Unlock()
	if driveErr != nil {
		gateErrs = append(gateErrs, fmt.Sprintf("driver: %v", driveErr))
	}
	if flushErr != nil {
		gateErrs = append(gateErrs, fmt.Sprintf("flush: %v", flushErr))
	}
	if !healthy {
		gateErrs = append(gateErrs, "a daemon never returned to healthy after the run")
	}

	// Server-side truth: the applied edge count and the estimate.
	var refMatch *bool
	var res client.Result
	queried := false
	if flushErr == nil && driveErr == nil {
		var qerr error
		var applied int64
		res, applied, qerr = fl.queryApplied()
		if qerr != nil {
			gateErrs = append(gateErrs, fmt.Sprintf("final query: %v", qerr))
		} else {
			queried = true
			rep.EdgesApplied = applied
			rep.EdgesSent = fl.totalSent()
			rep.Coverage = res.Coverage
			if spec.Gates.RequireReferenceMatch {
				ok, detail := referenceMatch(spec, fl, m, n, k, res)
				refMatch = &ok
				if !ok {
					opts.logf("[%s] reference mismatch: %s", spec.Name, detail)
				}
			}
		}
	} else {
		rep.EdgesSent = fl.totalSent()
	}

	// Cluster runs close with the convergence protocol: wait for every
	// follower to reach the leader's durable head with a byte-equal
	// digest, then prove a staleness-bounded follower read answers
	// exactly like the leader.
	var replicaConv *bool
	var replicaDetail string
	if spec.clustered() {
		rows, leader, cerr := ns.awaitConvergence(spec.Name, 30*time.Second)
		rep.Replicas, rep.Leader = rows, leader
		if queried {
			ok := cerr == nil
			if cerr != nil {
				replicaDetail = cerr.Error()
			} else if sres, serr := fl.csess[0].QueryStale(spec.Cluster.MaxStale.Duration); serr != nil {
				ok, replicaDetail = false, fmt.Sprintf("follower read: %v", serr)
			} else if sres.Coverage != res.Coverage || sres.Edges != res.Edges {
				ok, replicaDetail = false, fmt.Sprintf(
					"follower read {cov=%g edges=%d} != leader {cov=%g edges=%d}",
					sres.Coverage, sres.Edges, res.Coverage, res.Edges)
			}
			replicaConv = &ok
			if !ok {
				opts.logf("[%s] replica divergence: %s", spec.Name, replicaDetail)
			}
		}
	}
	rep.ServerCounters = sumCounters(ns.liveHTTPAddrs())

	haltColls()

	rep.Gates = evaluateGates(spec, rep, refMatch, replicaConv, replicaDetail, opts.Baseline)
	rep.Pass = len(gateErrs) == 0
	for _, g := range rep.Gates {
		if !g.Pass {
			rep.Pass = false
		}
	}
	if len(gateErrs) > 0 {
		rep.Error = gateErrs[0]
		for _, e := range gateErrs[1:] {
			rep.Error += "; " + e
		}
	}
	opts.logf("[%s] done: pass=%v throughput=%.0f edges/s applied=%d/%d",
		spec.Name, rep.Pass, rep.Throughput(), rep.EdgesApplied, rep.EdgesSent)
	return rep, nil
}

func rateStr(rate float64) string {
	if rate == 0 {
		return "closed-loop"
	}
	return fmt.Sprintf("%.0f edges/s", rate)
}

// referenceMatch replays the exact sent multiset (per-connection cycled
// slices) into a single same-seed in-process estimator and compares. The
// bit-identity invariant — the sharded, restarted, fault-ridden server
// must answer exactly like one estimator that saw the whole stream —
// is the strongest end-to-end assertion the harness has: it proves no
// edge was lost, duplicated into the sketch, or misapplied, across every
// kill, partition, and disk fault the schedule threw at the daemon.
func referenceMatch(spec *Spec, fl *fleet, m, n, k int, got client.Result) (bool, string) {
	ref, err := streamcover.NewEstimator(m, n, k, spec.Workload.Alpha, streamcover.WithSeed(spec.Seed))
	if err != nil {
		return false, err.Error()
	}
	defer ref.Close()
	buf := make([]streamcover.Edge, 0, 8192)
	for ci, edges := range fl.streams {
		if len(edges) == 0 {
			continue
		}
		// The driver walks its slice sequentially and wraps, so the sent
		// multiset is exactly the first sent[ci] edges of that cycle.
		for j := int64(0); j < fl.sent[ci]; j++ {
			buf = append(buf, edges[j%int64(len(edges))])
			if len(buf) == cap(buf) {
				if err := ref.ProcessBatch(buf); err != nil {
					return false, err.Error()
				}
				buf = buf[:0]
			}
		}
	}
	if len(buf) > 0 {
		if err := ref.ProcessBatch(buf); err != nil {
			return false, err.Error()
		}
	}
	res := ref.Result()
	if res.Coverage != got.Coverage || res.Feasible != got.Feasible ||
		ref.Edges() != got.Edges || !slices.Equal(res.SetIDs, got.SetIDs) {
		return false, fmt.Sprintf(
			"reference{cov=%g feasible=%v edges=%d sets=%v} != server{cov=%g feasible=%v edges=%d sets=%v}",
			res.Coverage, res.Feasible, ref.Edges(), res.SetIDs,
			got.Coverage, got.Feasible, got.Edges, got.SetIDs)
	}
	return true, ""
}

// scheduler fires the spec's fault windows and lifecycle events at their
// offsets from run start, on one goroutine, and records when each
// actually ran.
type scheduler struct {
	events []schedEvent
	opts   Options
	name   string
	start0 time.Time
	done   chan struct{}

	mu        sync.Mutex
	faultRecs []faultRec
	lifeRecs  []lifeRec
	errs      []string
}

type schedEvent struct {
	at   time.Duration
	desc string
	fire func(s *scheduler, now time.Time)
}

type faultRec struct {
	kind       string
	node       int
	start, end time.Time
}

type lifeRec struct {
	action string
	node   int
	leader string // failover: the promoted node
	at     time.Time
}

func newScheduler(spec *Spec, ns *nodeSet, runStart time.Time, opts Options) *scheduler {
	s := &scheduler{opts: opts, name: spec.Name, start0: runStart, done: make(chan struct{})}
	for _, f := range spec.Faults {
		f := f
		d := ns.nodes[f.Node]
		idx := -1 // resolved at start-fire time
		s.events = append(s.events, schedEvent{
			at:   f.At.Duration,
			desc: fmt.Sprintf("fault %s on (node %d)", f.Kind, f.Node),
			fire: func(s *scheduler, now time.Time) {
				s.mu.Lock()
				s.faultRecs = append(s.faultRecs, faultRec{kind: f.Kind, node: f.Node, start: now})
				idx = len(s.faultRecs) - 1
				s.mu.Unlock()
				d.applyFault(f, true)
				if f.Kind == "drop_conns" {
					// Instantaneous: the window closes as it opens.
					s.mu.Lock()
					s.faultRecs[idx].end = now
					s.mu.Unlock()
				}
			},
		})
		if f.Kind == "drop_conns" {
			continue
		}
		s.events = append(s.events, schedEvent{
			at:   f.At.Duration + f.Duration.Duration,
			desc: fmt.Sprintf("fault %s off (node %d)", f.Kind, f.Node),
			fire: func(s *scheduler, now time.Time) {
				d.applyFault(f, false)
				s.mu.Lock()
				if idx >= 0 {
					s.faultRecs[idx].end = now
				}
				s.mu.Unlock()
			},
		})
	}
	for _, e := range spec.Lifecycle {
		e := e
		s.events = append(s.events, schedEvent{
			at:   e.At.Duration,
			desc: "lifecycle " + e.Action,
			fire: func(s *scheduler, now time.Time) {
				var err error
				rec := lifeRec{action: e.Action, node: e.Node, at: now}
				switch e.Action {
				case "kill":
					ns.nodes[e.Node].kill()
				case "restart":
					err = ns.nodes[e.Node].start()
				case "checkpoint":
					err = ns.nodes[e.Node].checkpoint()
				case "failover":
					rec.leader, err = ns.failover(spec.Name)
					if err == nil {
						s.opts.logf("[%s] failover: promoted %s", s.name, rec.leader)
					}
				}
				s.mu.Lock()
				s.lifeRecs = append(s.lifeRecs, rec)
				if err != nil {
					s.errs = append(s.errs, fmt.Sprintf("%s: %v", e.Action, err))
				}
				s.mu.Unlock()
			},
		})
	}
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].at < s.events[j].at })
	return s
}

func (s *scheduler) start() {
	go func() {
		defer close(s.done)
		for _, ev := range s.events {
			time.Sleep(time.Until(s.start0.Add(ev.at)))
			now := time.Now()
			s.opts.logf("[%s] t=%.2fs %s", s.name, now.Sub(s.start0).Seconds(), ev.desc)
			ev.fire(s, now)
		}
	}()
}

func (s *scheduler) wait() { <-s.done }

// reports turns the recorded timeline into report rows, deriving each
// recovery time from the target node's collector samples.
func (s *scheduler) reports(colls []*collector, runStart time.Time) ([]FaultReport, []LifecycleReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var faults []FaultReport
	for _, r := range s.faultRecs {
		fr := FaultReport{
			Kind:         r.kind,
			Node:         r.node,
			StartSeconds: r.start.Sub(runStart).Seconds(),
			EndSeconds:   r.end.Sub(runStart).Seconds(),
		}
		if rec := colls[r.node].recoveryAfter(r.end); rec >= 0 {
			fr.RecoveryMillis = float64(rec) / 1e6
		} else {
			fr.RecoveryMillis = -1
		}
		faults = append(faults, fr)
	}
	var life []LifecycleReport
	for _, r := range s.lifeRecs {
		lr := LifecycleReport{Action: r.action, Node: r.node, AtSeconds: r.at.Sub(runStart).Seconds(), Leader: r.leader}
		if r.action == "restart" {
			if rec := colls[r.node].recoveryAfter(r.at); rec >= 0 {
				lr.RecoveryMillis = float64(rec) / 1e6
			} else {
				lr.RecoveryMillis = -1
			}
		}
		life = append(life, lr)
	}
	return faults, life
}
