package scenario

import (
	"fmt"
	"net"
	"path/filepath"
	"time"

	"streamcover/internal/client"
	"streamcover/internal/fault"
	"streamcover/internal/server"
	"streamcover/internal/wire"
)

// nodeSet is the managed daemon fleet behind one run: a single daemon in
// the classic mode, N cluster nodes otherwise. In cluster mode every
// node's identity (the address its peers dial) is fixed before any server
// starts — identities form each server's peer list and the placement
// ring, so they cannot depend on start order — by reserving concrete
// loopback ports up front and rebinding them on every (re)start.
type nodeSet struct {
	spec  *Spec
	nodes []*daemon
}

func newNodeSet(spec *Spec, dataDir string) (*nodeSet, error) {
	if !spec.clustered() {
		return &nodeSet{spec: spec, nodes: []*daemon{newDaemon(spec.Daemon, dataDir)}}, nil
	}
	n := spec.Cluster.Nodes
	ns := &nodeSet{spec: spec, nodes: make([]*daemon, n)}
	tcps, err := reservePorts(n)
	if err != nil {
		return nil, err
	}
	https, err := reservePorts(n)
	if err != nil {
		return nil, err
	}
	closeAll := func() {
		for _, d := range ns.nodes {
			if d == nil {
				continue
			}
			for _, p := range []*fault.Proxy{d.ingestProxy, d.httpProxy, d.peerProxy} {
				if p != nil {
					p.Close()
				}
			}
		}
	}
	for i := range ns.nodes {
		d := newDaemon(spec.Daemon, filepath.Join(dataDir, fmt.Sprintf("node-%d", i)))
		d.tcpAddr, d.httpAddr = tcps[i], https[i]
		ns.nodes[i] = d
		if !spec.Daemon.Proxy {
			continue
		}
		// Three independent proxy planes per node: client ingest, HTTP
		// (health/metrics as an external prober sees them), and the peer
		// plane the other nodes replicate through.
		if d.ingestProxy, err = fault.NewProxy(d.tcpAddr); err == nil {
			if d.httpProxy, err = fault.NewProxy(d.httpAddr); err == nil {
				d.peerProxy, err = fault.NewProxy(d.tcpAddr)
			}
		}
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("node %d proxies: %w", i, err)
		}
	}
	ids := make([]string, n)
	for i, d := range ns.nodes {
		ids[i] = d.tcpAddr
		if d.peerProxy != nil {
			ids[i] = d.peerProxy.Addr()
		}
	}
	for i, d := range ns.nodes {
		d.clu = &clusterWiring{
			nodeID:    ids[i],
			peers:     ids,
			replicas:  spec.Cluster.Replicas,
			heartbeat: spec.Cluster.Heartbeat.Duration,
		}
	}
	return ns, nil
}

// reservePorts binds n ephemeral loopback listeners, records their
// addresses and closes them; SO_REUSEADDR makes the later rebind safe.
func reservePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs, nil
}

func (ns *nodeSet) startAll() error {
	for i, d := range ns.nodes {
		if err := d.start(); err != nil {
			for j := 0; j < i; j++ {
				ns.nodes[j].shutdown(5 * time.Second)
			}
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	return nil
}

func (ns *nodeSet) shutdownAll(timeout time.Duration) error {
	var first error
	for _, d := range ns.nodes {
		if err := d.shutdown(timeout); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (ns *nodeSet) clearAllFaults() {
	for _, d := range ns.nodes {
		d.clearFaults()
	}
}

// clientNodes is the fleet as the cluster-aware client should see it:
// each node's ring identity plus the address client traffic dials (the
// ingest proxy under chaos — so replication and client partitions stay
// independent).
func (ns *nodeSet) clientNodes() []client.ClusterNode {
	out := make([]client.ClusterNode, len(ns.nodes))
	for i, d := range ns.nodes {
		out[i] = client.ClusterNode{ID: d.clu.nodeID, Addr: d.clientAddr()}
	}
	return out
}

// liveHTTPAddrs are the direct (unproxied) HTTP addresses of the live
// nodes — metrics scrapes must see through partitions, not be shaped by
// them.
func (ns *nodeSet) liveHTTPAddrs() []string {
	var out []string
	for _, d := range ns.nodes {
		if _, ok := d.server(); ok {
			out = append(out, d.httpAddr)
		}
	}
	return out
}

// failover is the control-plane action behind the "failover" lifecycle
// event, run as an orderly fence-drain-promote: find the session's live
// leader, fence it (new ingest rejected with the not-leader redirect;
// shipping keeps running against a frozen head), wait for a live replica
// to drain the remaining tail, kill the old leader (SIGKILL semantics, no
// checkpoint), promote that replica through the same crash-recovery path
// a restart uses, and point the other survivors' appliers at it. The
// fence is what makes the promotion lossless: acks outrun the
// asynchronous shipping, so killing an unfenced leader could strand the
// last acked batches on its dead disk. Returns the promoted node's
// identity.
func (ns *nodeSet) failover(session string) (string, error) {
	leaderIdx := -1
	var leaderSrv *server.Server
	for i, d := range ns.nodes {
		srv, ok := d.server()
		if !ok {
			continue
		}
		ri, err := srv.SessionRole(session)
		if err == nil && ri.Role == wire.RoleLeader {
			leaderIdx, leaderSrv = i, srv
			break
		}
	}
	if leaderIdx < 0 {
		return "", fmt.Errorf("failover: no live leader for session %q", session)
	}
	if err := leaderSrv.Fence(session); err != nil {
		return "", fmt.Errorf("failover: fence: %w", err)
	}
	best, err := ns.awaitDrain(session, leaderIdx, leaderSrv, 10*time.Second)
	if err != nil {
		return "", err
	}
	ns.nodes[leaderIdx].kill()
	bsrv, ok := ns.nodes[best].server()
	if !ok {
		return "", fmt.Errorf("failover: drained node %d died before promotion", best)
	}
	if err := bsrv.Promote(session); err != nil {
		return "", fmt.Errorf("failover: promote node %d: %w", best, err)
	}
	promoted := ns.nodes[best].clu.nodeID
	for i, d := range ns.nodes {
		if i == best || i == leaderIdx {
			continue
		}
		if srv, ok := d.server(); ok {
			srv.SetSessionLeader(session, promoted)
		}
	}
	return promoted, nil
}

// awaitDrain waits until some live replica's applied watermark reaches
// the fenced leader's durable head and returns that node's index. The
// head is re-read after the candidate qualifies: a batch that passed the
// fence check just before the flag flipped may still append, so the drain
// is only proven against a head observed unchanged around the comparison.
func (ns *nodeSet) awaitDrain(session string, leaderIdx int, leaderSrv *server.Server, timeout time.Duration) (int, error) {
	deadline := time.Now().Add(timeout)
	for {
		ri, err := leaderSrv.SessionRole(session)
		if err != nil {
			return -1, fmt.Errorf("failover: fenced leader role: %w", err)
		}
		head := ri.Applied
		best, bestApplied := -1, uint64(0)
		for i, d := range ns.nodes {
			if i == leaderIdx {
				continue
			}
			srv, ok := d.server()
			if !ok {
				continue
			}
			fi, err := srv.SessionRole(session)
			if err != nil {
				continue
			}
			if best < 0 || fi.Applied > bestApplied {
				best, bestApplied = i, fi.Applied
			}
		}
		if best >= 0 && bestApplied >= head {
			if ri2, err := leaderSrv.SessionRole(session); err == nil && ri2.Applied == head {
				return best, nil
			}
		}
		if time.Now().After(deadline) {
			if best < 0 {
				return -1, fmt.Errorf("failover: no live replica of session %q to promote", session)
			}
			return -1, fmt.Errorf("failover: replica %d drained to %d of the fenced head %d within %v",
				best, bestApplied, head, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// awaitConvergence polls the live replicas until exactly one leads the
// session, every follower's applied watermark has reached the leader's
// durable head, and all estimator digests are byte-equal — the
// replication subsystem's strongest invariant: deterministic WAL replay
// at a fixed worker count makes equality checkable byte for byte, not
// approximately. Returns the final per-node rows either way; the error
// carries what was still divergent at the deadline.
func (ns *nodeSet) awaitConvergence(session string, timeout time.Duration) ([]ReplicaReport, string, error) {
	deadline := time.Now().Add(timeout)
	var rows []ReplicaReport
	var leader string
	var lastErr error
	for {
		rows, leader, lastErr = ns.replicaRows(session)
		if lastErr == nil {
			return rows, leader, nil
		}
		if time.Now().After(deadline) {
			return rows, leader, fmt.Errorf("replicas did not converge within %v: %w", timeout, lastErr)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// replicaRows snapshots every live node's role, watermark and digest, and
// checks the convergence predicate over the snapshot.
func (ns *nodeSet) replicaRows(session string) ([]ReplicaReport, string, error) {
	var rows []ReplicaReport
	var leader string
	var head uint64
	leaders := 0
	for _, d := range ns.nodes {
		srv, ok := d.server()
		if !ok {
			continue
		}
		// A role/digest error means the node does not host the session
		// (placement narrower than the fleet) or is mid-promotion; skip it
		// and let the quorum check below decide whether that's fatal.
		ri, err := srv.SessionRole(session)
		if err != nil {
			continue
		}
		digest, err := srv.SessionDigest(session)
		if err != nil {
			continue
		}
		row := ReplicaReport{Node: d.clu.nodeID, Role: "follower", Applied: ri.Applied, Digest: digest}
		if ri.Role == wire.RoleLeader {
			row.Role = "leader"
			leader = d.clu.nodeID
			head = ri.Applied
			leaders++
		} else {
			row.StalenessSeconds = time.Duration(ri.StalenessNanos).Seconds()
		}
		rows = append(rows, row)
	}
	if leaders != 1 {
		return rows, leader, fmt.Errorf("%d live leaders", leaders)
	}
	if len(rows) < 2 {
		return rows, leader, fmt.Errorf("only %d replica reports the session", len(rows))
	}
	if head == 0 {
		return rows, leader, fmt.Errorf("leader has an empty log")
	}
	for _, r := range rows {
		if r.Applied != head {
			return rows, leader, fmt.Errorf("node %s applied %d, leader head %d", r.Node, r.Applied, head)
		}
		if r.Digest != rows[0].Digest {
			return rows, leader, fmt.Errorf("node %s digest %s != %s", r.Node, r.Digest, rows[0].Digest)
		}
	}
	return rows, leader, nil
}
