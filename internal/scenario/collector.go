package scenario

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// collector scrapes /healthz on a cadence and keeps the full timeline of
// status samples. It is the harness's only view of daemon health — it
// deliberately goes through the HTTP proxy when chaos is on, so a network
// partition reads as "down" exactly like an external prober would see it,
// and recovery time is measured at the same vantage point.
type collector struct {
	base     string // http://host:port
	interval time.Duration
	hc       *http.Client

	mu      sync.Mutex
	samples []healthSample

	stop chan struct{}
	done chan struct{}
}

type healthSample struct {
	at     time.Time
	status string // ok | degraded | read-only | down
}

func newCollector(healthAddr string, interval time.Duration) *collector {
	c := &collector{
		base:     "http://" + healthAddr,
		interval: interval,
		hc: &http.Client{
			// Short timeout: a black-holed proxy connection must read as
			// "down" within roughly one scrape interval, not hang.
			Timeout: 700 * time.Millisecond,
			// No keep-alives: each scrape dials fresh, so a partition or
			// daemon restart can't be masked by a pooled connection.
			Transport: &http.Transport{DisableKeepAlives: true},
		},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go c.run()
	return c
}

func (c *collector) run() {
	defer close(c.done)
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		c.record(c.scrape())
		select {
		case <-t.C:
		case <-c.stop:
			return
		}
	}
}

// scrape reads /healthz once. Any transport failure is "down"; a served
// response (including 503) is classified by its JSON status field.
func (c *collector) scrape() string {
	resp, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		return "down"
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Status == "" {
		return "down"
	}
	return body.Status
}

func (c *collector) record(status string) {
	c.mu.Lock()
	c.samples = append(c.samples, healthSample{at: time.Now(), status: status})
	c.mu.Unlock()
}

func (c *collector) halt() {
	close(c.stop)
	<-c.done
}

// recoveryAfter returns the time from t to the first "ok" sample at or
// after t, or -1 if the daemon was never seen healthy again. Resolution
// is the scrape interval.
func (c *collector) recoveryAfter(t time.Time) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.samples {
		if !s.at.Before(t) && s.status == "ok" {
			return s.at.Sub(t)
		}
	}
	return -1
}

// waitHealthy blocks until a fresh "ok" sample lands or the deadline
// passes, returning whether health was observed.
func (c *collector) waitHealthy(timeout time.Duration) bool {
	start := time.Now()
	deadline := start.Add(timeout)
	for time.Now().Before(deadline) {
		if c.recoveryAfter(start) >= 0 {
			return true
		}
		time.Sleep(c.interval / 2)
	}
	return c.recoveryAfter(start) >= 0
}
