// Package scenario is the declarative load/chaos harness behind
// cmd/kcoverload: a JSON spec describes a seeded workload, a client fleet
// shape, a managed kcoverd lifecycle, a time-windowed fault schedule and
// pass/fail gates; Run executes it against an in-process daemon (so the
// fault.Injector filesystem shim and fault.Proxy chaos layer apply),
// scrapes /metrics and /healthz on a cadence, and emits a report with
// per-phase throughput, client-observed latency percentiles,
// recovery-time-to-healthy after each fault window, and gate verdicts.
//
// Everything the workload side does derives from the spec's single seed:
// the same spec reproduces the exact same edge stream, byte for byte,
// which the report proves by recording the stream digest.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"streamcover/internal/workload"
)

// Duration is a time.Duration that unmarshals from a JSON string like
// "250ms" or "3s" — specs are written by humans.
type Duration struct{ time.Duration }

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf(`durations are strings like "250ms": %w`, err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	d.Duration = v
	return nil
}

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

// Spec is one complete scenario.
type Spec struct {
	Name        string       `json:"name"`
	Description string       `json:"description,omitempty"`
	Seed        int64        `json:"seed"`
	Workload    WorkloadSpec `json:"workload"`
	Fleet       FleetSpec    `json:"fleet"`
	Daemon      DaemonSpec   `json:"daemon"`
	Cluster     *ClusterSpec `json:"cluster,omitempty"`
	Phases      []PhaseSpec  `json:"phases"`
	Lifecycle   []LifeEvent  `json:"lifecycle,omitempty"`
	Faults      []FaultSpec  `json:"faults,omitempty"`
	Gates       GateSpec     `json:"gates"`
}

// ClusterSpec turns the managed daemon into an N-node replication fleet:
// every node runs the same DaemonSpec, sessions place onto Replicas of
// them by consistent hash (leader + followers, WAL shipping), and the
// fleet drives ingest through the cluster-aware client. Cluster mode
// requires daemon.durable (replication ships the WAL). With daemon.proxy
// each node gets independent proxy planes: client proxies for ingest and
// HTTP (the existing partition/net_delay/drop_conns kinds) and a peer
// proxy that the other nodes dial for replication, so the peer_partition
// fault severs WAL shipping without touching client traffic.
type ClusterSpec struct {
	Nodes    int `json:"nodes"`
	Replicas int `json:"replicas,omitempty"` // placement width (default min(3, nodes))
	// Heartbeat is the leader shipper's cadence while followers are caught
	// up — it bounds follower staleness resolution (default 50ms).
	Heartbeat Duration `json:"heartbeat,omitempty"`
	// MaxStale is the staleness bound the harness's end-of-run follower
	// read is issued with (default 2s).
	MaxStale Duration `json:"max_stale,omitempty"`
}

// clustered reports whether the spec runs a multi-node fleet.
func (s *Spec) clustered() bool { return s.Cluster != nil }

// nodeCount is the number of managed daemons the run starts.
func (s *Spec) nodeCount() int {
	if s.Cluster != nil {
		return s.Cluster.Nodes
	}
	return 1
}

// WorkloadSpec names a generator family (internal/workload.FromFamily) and
// its knobs, plus the arrival order and the estimator's approximation
// target. Zero-valued knobs take the family defaults.
type WorkloadSpec struct {
	Family   string  `json:"family"`
	N        int     `json:"n,omitempty"`
	M        int     `json:"m,omitempty"`
	K        int     `json:"k,omitempty"`
	Frac     float64 `json:"frac,omitempty"`
	AvgSize  int     `json:"avg_size,omitempty"`
	Exponent float64 `json:"exponent,omitempty"`
	MaxSize  int     `json:"max_size,omitempty"`
	Large    int     `json:"large,omitempty"`
	Commons  int     `json:"commons,omitempty"`
	Privates int     `json:"privates,omitempty"`
	AvgDeg   int     `json:"avg_deg,omitempty"`
	PerSet   int     `json:"per_set,omitempty"`
	Rich     float64 `json:"rich,omitempty"`
	Order    string  `json:"order,omitempty"` // set|shuffled|element|roundrobin (default shuffled)
	Alpha    float64 `json:"alpha,omitempty"` // estimator approximation target (default 4)
}

// FleetSpec shapes the client side: how many connections, how many edges
// per wire batch, how deep each connection pipelines, and which wire
// layout batches use. Tenants > 1 fans the same workload across that many
// server-side sessions (named <spec.Name>-t<i>): each connection keeps
// one handle per tenant and routes every chunk by a seeded
// workload.TenantPicker — Zipf-skewed when Skew > 0, uniform otherwise —
// which is the access pattern session oversubscription (daemon.mem_budget)
// is built for: a few hot tenants stay resident while the long tail
// evicts to checkpoints and rehydrates on touch.
type FleetSpec struct {
	Connections int     `json:"connections,omitempty"` // default 2
	BatchEdges  int     `json:"batch_edges,omitempty"` // default 2048
	MaxPending  int     `json:"max_pending,omitempty"` // default 32
	Wire        string  `json:"wire,omitempty"`        // columnar|row (default columnar)
	Tenants     int     `json:"tenants,omitempty"`     // sessions to spread load over (default 1)
	Skew        float64 `json:"skew,omitempty"`        // tenant-pick Zipf exponent (0 = uniform)
}

// DaemonSpec shapes the managed kcoverd instance. Proxy routes both the
// ingest TCP and the health/metrics HTTP traffic through a fault.Proxy so
// partition/delay/drop windows apply to everything the harness observes.
type DaemonSpec struct {
	Workers         int      `json:"workers,omitempty"`          // default 2
	EngineWorkers   int      `json:"engine_workers,omitempty"`   // default 1
	QueueDepth      int      `json:"queue_depth,omitempty"`      // default 64
	Durable         bool     `json:"durable,omitempty"`          // WAL + checkpoints in a temp data dir
	WALNoSync       bool     `json:"wal_nosync,omitempty"`       //
	CheckpointEvery Duration `json:"checkpoint_every,omitempty"` // default 2s (durable only)
	RetryMin        Duration `json:"retry_min,omitempty"`        // degraded-recovery backoff floor (default 25ms)
	RetryMax        Duration `json:"retry_max,omitempty"`        // degraded-recovery backoff ceiling (default 500ms)
	Proxy           bool     `json:"proxy,omitempty"`            // required by partition/net_delay/drop_conns faults
	// MemBudget oversubscribes sessions against a byte budget: cold ones
	// LRU-evict to their checkpoints and rehydrate on the next touch.
	// Requires durable (eviction parks a session at its checkpoint).
	MemBudget int64 `json:"mem_budget,omitempty"`
}

// PhaseSpec is one timed segment of the drive: a name, a duration, and a
// target arrival rate in edges/sec summed over the fleet. Rate 0 is
// closed-loop (each connection self-clocks on server backpressure); a
// positive rate is open-loop through a token bucket, which is how a
// flash-crowd overdrives the server.
type PhaseSpec struct {
	Name     string   `json:"name"`
	Duration Duration `json:"duration"`
	Rate     float64  `json:"rate,omitempty"`
}

// LifeEvent schedules a daemon lifecycle action at an offset from run
// start: "kill" (SIGKILL-style abort, no checkpoint), "restart" (start a
// fresh daemon on the same address and data dir — crash recovery),
// "checkpoint" (force a checkpoint of every session), or — cluster mode
// only — "failover" (kill the session's current leader, whichever node
// that is, and promote the most caught-up live replica; the killed node
// stays down for the rest of the run). Node selects which daemon a
// kill/restart/checkpoint targets in cluster mode (default 0); failover
// resolves its own target.
type LifeEvent struct {
	At     Duration `json:"at"`
	Action string   `json:"action"`
	Node   int      `json:"node,omitempty"`
}

// FaultSpec is one scheduled fault window. Windowed kinds apply at At and
// clear at At+Duration:
//
//	disk_full   — fault.Injector ENOSPC byte budget (Budget bytes remain)
//	fail_syncs  — next Count fsyncs fail (Count<=0: every fsync in window)
//	fail_writes — next Count writes fail (Count<=0: every write in window)
//	io_latency  — every write/fsync sleeps Delay first
//	partition   — proxy black-holes new connections and drops live ones
//	net_delay   — proxy delays each forwarded chunk by Delay
//
// Cluster-only (needs cluster + daemon.proxy):
//
//	peer_partition — black-holes the node's peer proxy: replication
//	                 streams served BY this node (followers fetching WAL
//	                 from it while it leads) are severed while client
//	                 ingest and queries keep flowing; target every node
//	                 in overlapping windows to cut the whole plane
//	                 whatever the placement chose
//
// drop_conns is instantaneous (Duration must be 0): sever every proxied
// connection once, a network blip.
//
// Node selects which daemon the fault applies to in cluster mode
// (default 0). Same-kind windows may overlap across different nodes, but
// not on one node.
type FaultSpec struct {
	Kind     string   `json:"kind"`
	At       Duration `json:"at"`
	Duration Duration `json:"duration,omitempty"`
	Node     int      `json:"node,omitempty"`
	Budget   int64    `json:"budget,omitempty"`
	Count    int      `json:"count,omitempty"`
	Delay    Duration `json:"delay,omitempty"`
}

// GateSpec turns measurements into a pass/fail verdict. Zero-valued
// limits are not checked.
type GateSpec struct {
	MinEdgesPerSec        float64 `json:"min_edges_per_sec,omitempty"`
	MaxP99Millis          float64 `json:"max_p99_ms,omitempty"`
	MaxRecoveryMillis     float64 `json:"max_recovery_ms,omitempty"`
	RequireExactlyOnce    bool    `json:"require_exactly_once,omitempty"`
	RequireReferenceMatch bool    `json:"require_reference_match,omitempty"`
	// RequireReplicaConvergence (cluster only) fails the run unless, after
	// the final flush, every live replica's applied watermark reaches the
	// leader's durable head, all estimator digests are byte-equal, and a
	// staleness-bounded follower read agrees with the leader's answer.
	RequireReplicaConvergence bool `json:"require_replica_convergence,omitempty"`
	// MaxThroughputDropPct fails the run when overall acked throughput
	// drops more than this percentage below the same scenario in the
	// baseline report (kcoverload -baseline).
	MaxThroughputDropPct float64 `json:"max_throughput_drop_pct,omitempty"`
}

var validOrders = map[string]bool{"set": true, "shuffled": true, "element": true, "roundrobin": true}

var proxyFaults = map[string]bool{"partition": true, "net_delay": true, "drop_conns": true, "peer_partition": true}
var durableFaults = map[string]bool{"disk_full": true, "fail_syncs": true, "fail_writes": true, "io_latency": true}

// ParseSpec strictly decodes and validates one scenario spec: unknown
// fields are rejected (a typoed knob must not silently no-op), durations
// must be non-negative, fault windows of the same kind must not overlap,
// and every scheduled event must land inside the run.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	// A second document in the same file is a mistake, not an extension.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after spec")
	}
	s.applyDefaults()
	if err := s.validate(); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return &s, nil
}

// marshalSpec serializes a spec back to JSON (tests round-trip with it).
func marshalSpec(s *Spec) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseSpecFile reads and parses one spec file.
func ParseSpecFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpec(data)
}

func (s *Spec) applyDefaults() {
	if s.Workload.Order == "" {
		s.Workload.Order = "shuffled"
	}
	if s.Workload.Alpha == 0 {
		s.Workload.Alpha = 4
	}
	if s.Fleet.Connections == 0 {
		s.Fleet.Connections = 2
	}
	if s.Fleet.BatchEdges == 0 {
		s.Fleet.BatchEdges = 2048
	}
	if s.Fleet.MaxPending == 0 {
		s.Fleet.MaxPending = 32
	}
	if s.Fleet.Wire == "" {
		s.Fleet.Wire = "columnar"
	}
	if s.Fleet.Tenants == 0 {
		s.Fleet.Tenants = 1
	}
	if s.Daemon.Workers == 0 {
		s.Daemon.Workers = 2
	}
	if s.Daemon.EngineWorkers == 0 {
		s.Daemon.EngineWorkers = 1
	}
	if s.Daemon.QueueDepth == 0 {
		s.Daemon.QueueDepth = 64
	}
	if s.Daemon.CheckpointEvery.Duration == 0 {
		s.Daemon.CheckpointEvery.Duration = 2 * time.Second
	}
	if s.Daemon.RetryMin.Duration == 0 {
		s.Daemon.RetryMin.Duration = 25 * time.Millisecond
	}
	if s.Daemon.RetryMax.Duration == 0 {
		s.Daemon.RetryMax.Duration = 500 * time.Millisecond
	}
	if c := s.Cluster; c != nil {
		if c.Replicas == 0 {
			if c.Replicas = 3; c.Nodes < 3 {
				c.Replicas = c.Nodes
			}
		}
		if c.Heartbeat.Duration == 0 {
			c.Heartbeat.Duration = 50 * time.Millisecond
		}
		if c.MaxStale.Duration == 0 {
			c.MaxStale.Duration = 2 * time.Second
		}
	}
}

// TotalDuration is the sum of the phase durations — the run's length.
func (s *Spec) TotalDuration() time.Duration {
	var t time.Duration
	for _, p := range s.Phases {
		t += p.Duration.Duration
	}
	return t
}

func (s *Spec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("missing name")
	}
	if !workload.ValidFamily(s.Workload.Family) {
		return fmt.Errorf("unknown workload family %q (have %v)", s.Workload.Family, workload.Families())
	}
	if !validOrders[s.Workload.Order] {
		return fmt.Errorf("unknown arrival order %q (set|shuffled|element|roundrobin)", s.Workload.Order)
	}
	for _, v := range []struct {
		name string
		val  int
	}{
		{"workload.n", s.Workload.N}, {"workload.m", s.Workload.M}, {"workload.k", s.Workload.K},
		{"fleet.connections", s.Fleet.Connections}, {"fleet.batch_edges", s.Fleet.BatchEdges},
		{"fleet.max_pending", s.Fleet.MaxPending}, {"daemon.workers", s.Daemon.Workers},
		{"daemon.engine_workers", s.Daemon.EngineWorkers}, {"daemon.queue_depth", s.Daemon.QueueDepth},
	} {
		if v.val < 0 {
			return fmt.Errorf("%s is negative", v.name)
		}
	}
	if s.Fleet.Wire != "columnar" && s.Fleet.Wire != "row" {
		return fmt.Errorf("unknown fleet wire %q (columnar|row)", s.Fleet.Wire)
	}
	if s.Fleet.Tenants < 0 {
		return fmt.Errorf("fleet.tenants is negative")
	}
	if s.Fleet.Skew < 0 {
		return fmt.Errorf("fleet.skew is negative")
	}
	if s.Fleet.Tenants > 1 {
		if s.clustered() {
			return fmt.Errorf("fleet.tenants > 1 cannot be combined with a cluster block (the convergence protocol tracks one session)")
		}
		if s.Gates.RequireReferenceMatch {
			// The reference replay reconstructs one session's multiset from
			// the per-connection cycles; a tenant fan-out splits the stream
			// across sessions, so the gate's single-estimator comparison no
			// longer applies (exactly-once still does: it sums per-tenant
			// applied counts).
			return fmt.Errorf("gate require_reference_match cannot be combined with fleet.tenants > 1")
		}
	}
	if s.Daemon.MemBudget < 0 {
		return fmt.Errorf("daemon.mem_budget is negative")
	}
	if s.Daemon.MemBudget > 0 && !s.Daemon.Durable {
		return fmt.Errorf("daemon.mem_budget needs daemon.durable (eviction parks sessions at their checkpoints)")
	}
	if c := s.Cluster; c != nil {
		if c.Nodes < 2 || c.Nodes > 9 {
			return fmt.Errorf("cluster.nodes %d out of range (2..9)", c.Nodes)
		}
		if c.Replicas < 2 || c.Replicas > c.Nodes {
			return fmt.Errorf("cluster.replicas %d out of range (2..nodes)", c.Replicas)
		}
		if c.Heartbeat.Duration <= 0 || c.MaxStale.Duration <= 0 {
			return fmt.Errorf("cluster heartbeat and max_stale must be positive")
		}
		if !s.Daemon.Durable {
			return fmt.Errorf("cluster mode needs daemon.durable (replication ships the WAL)")
		}
	}
	if s.Gates.RequireReplicaConvergence && !s.clustered() {
		return fmt.Errorf("gate require_replica_convergence needs a cluster block")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("no phases")
	}
	for i, p := range s.Phases {
		if p.Name == "" {
			return fmt.Errorf("phase %d: missing name", i)
		}
		if p.Duration.Duration <= 0 {
			return fmt.Errorf("phase %q: duration %v must be positive", p.Name, p.Duration.Duration)
		}
		if p.Rate < 0 {
			return fmt.Errorf("phase %q: negative rate", p.Name)
		}
	}
	total := s.TotalDuration()
	if err := s.validateLifecycle(total); err != nil {
		return err
	}
	if err := s.validateFaults(total); err != nil {
		return err
	}
	for _, g := range []struct {
		name string
		val  float64
	}{
		{"min_edges_per_sec", s.Gates.MinEdgesPerSec}, {"max_p99_ms", s.Gates.MaxP99Millis},
		{"max_recovery_ms", s.Gates.MaxRecoveryMillis}, {"max_throughput_drop_pct", s.Gates.MaxThroughputDropPct},
	} {
		if g.val < 0 {
			return fmt.Errorf("gate %s is negative", g.name)
		}
	}
	return nil
}

func (s *Spec) validateLifecycle(total time.Duration) error {
	evs := append([]LifeEvent(nil), s.Lifecycle...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At.Duration < evs[j].At.Duration })
	// Per-node liveness walk. A failover kills whichever node leads at
	// fire time — unknowable statically — so mixing it with node-targeted
	// kill/restart would make this walk meaningless; forbid the mix.
	alive := make([]bool, s.nodeCount())
	for i := range alive {
		alive[i] = true
	}
	failovers, killRestarts := 0, 0
	for _, e := range evs {
		if e.At.Duration < 0 {
			return fmt.Errorf("lifecycle %s: negative offset %v", e.Action, e.At.Duration)
		}
		if e.At.Duration >= total {
			return fmt.Errorf("lifecycle %s at %v lands after the run ends (%v)", e.Action, e.At.Duration, total)
		}
		if e.Node < 0 || e.Node >= s.nodeCount() {
			return fmt.Errorf("lifecycle %s: node %d out of range (cluster has %d)", e.Action, e.Node, s.nodeCount())
		}
		switch e.Action {
		case "kill":
			if !alive[e.Node] {
				return fmt.Errorf("lifecycle: kill at %v while the daemon is already down", e.At.Duration)
			}
			alive[e.Node] = false
			killRestarts++
		case "restart":
			if alive[e.Node] {
				return fmt.Errorf("lifecycle: restart at %v without a preceding kill", e.At.Duration)
			}
			alive[e.Node] = true
			killRestarts++
		case "checkpoint":
			if !alive[e.Node] {
				return fmt.Errorf("lifecycle: checkpoint at %v while the daemon is down", e.At.Duration)
			}
		case "failover":
			if !s.clustered() {
				return fmt.Errorf("lifecycle: failover needs a cluster block")
			}
			failovers++
		default:
			return fmt.Errorf("lifecycle: unknown action %q (kill|restart|checkpoint|failover)", e.Action)
		}
	}
	for i, a := range alive {
		if !a && !s.clustered() {
			return fmt.Errorf("lifecycle: the daemon is left dead (kill without restart)")
		} else if !a {
			return fmt.Errorf("lifecycle: node %d is left dead (kill without restart)", i)
		}
	}
	if failovers > 0 && killRestarts > 0 {
		return fmt.Errorf("lifecycle: failover cannot be mixed with kill/restart (the killed leader is resolved at run time)")
	}
	if s.Cluster != nil && failovers > s.Cluster.Replicas-1 {
		return fmt.Errorf("lifecycle: %d failovers would exhaust the placement (%d replicas)", failovers, s.Cluster.Replicas)
	}
	if !s.Daemon.Durable && s.Gates.RequireExactlyOnce {
		// A kill without durability silently loses applied edges; the
		// exactly-once gate would then be meaningless.
		for _, e := range s.Lifecycle {
			if e.Action == "kill" {
				return fmt.Errorf("lifecycle kill with require_exactly_once needs daemon.durable")
			}
		}
	}
	return nil
}

func (s *Spec) validateFaults(total time.Duration) error {
	byKind := map[string][]FaultSpec{}
	for i, f := range s.Faults {
		if !proxyFaults[f.Kind] && !durableFaults[f.Kind] {
			return fmt.Errorf("fault %d: unknown kind %q", i, f.Kind)
		}
		if f.At.Duration < 0 {
			return fmt.Errorf("fault %s: negative offset %v", f.Kind, f.At.Duration)
		}
		if f.Duration.Duration < 0 {
			return fmt.Errorf("fault %s: negative duration %v", f.Kind, f.Duration.Duration)
		}
		if f.Kind == "drop_conns" {
			if f.Duration.Duration != 0 {
				return fmt.Errorf("fault drop_conns is instantaneous; duration must be omitted")
			}
		} else if f.Duration.Duration == 0 {
			return fmt.Errorf("fault %s: a window needs a positive duration", f.Kind)
		}
		if end := f.At.Duration + f.Duration.Duration; end > total {
			return fmt.Errorf("fault %s window [%v,%v] extends past the run end (%v)", f.Kind, f.At.Duration, end, total)
		}
		if proxyFaults[f.Kind] && !s.Daemon.Proxy {
			return fmt.Errorf("fault %s needs daemon.proxy", f.Kind)
		}
		if durableFaults[f.Kind] && !s.Daemon.Durable {
			return fmt.Errorf("fault %s needs daemon.durable", f.Kind)
		}
		if f.Kind == "peer_partition" && !s.clustered() {
			return fmt.Errorf("fault peer_partition needs a cluster block")
		}
		if f.Node < 0 || f.Node >= s.nodeCount() {
			return fmt.Errorf("fault %s: node %d out of range (cluster has %d)", f.Kind, f.Node, s.nodeCount())
		}
		if f.Kind == "disk_full" && f.Budget <= 0 {
			return fmt.Errorf("fault disk_full: budget (bytes) must be positive")
		}
		if (f.Kind == "io_latency" || f.Kind == "net_delay") && f.Delay.Duration <= 0 {
			return fmt.Errorf("fault %s: delay must be positive", f.Kind)
		}
		byKind[fmt.Sprintf("%s@%d", f.Kind, f.Node)] = append(byKind[fmt.Sprintf("%s@%d", f.Kind, f.Node)], f)
	}
	for kind, fs := range byKind {
		sort.Slice(fs, func(i, j int) bool { return fs[i].At.Duration < fs[j].At.Duration })
		for i := 1; i < len(fs); i++ {
			prevEnd := fs[i-1].At.Duration + fs[i-1].Duration.Duration
			if fs[i].At.Duration < prevEnd {
				return fmt.Errorf("fault %s windows overlap: [%v,%v] and [%v,%v]",
					kind, fs[i-1].At.Duration, prevEnd,
					fs[i].At.Duration, fs[i].At.Duration+fs[i].Duration.Duration)
			}
		}
	}
	return nil
}
