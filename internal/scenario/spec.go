// Package scenario is the declarative load/chaos harness behind
// cmd/kcoverload: a JSON spec describes a seeded workload, a client fleet
// shape, a managed kcoverd lifecycle, a time-windowed fault schedule and
// pass/fail gates; Run executes it against an in-process daemon (so the
// fault.Injector filesystem shim and fault.Proxy chaos layer apply),
// scrapes /metrics and /healthz on a cadence, and emits a report with
// per-phase throughput, client-observed latency percentiles,
// recovery-time-to-healthy after each fault window, and gate verdicts.
//
// Everything the workload side does derives from the spec's single seed:
// the same spec reproduces the exact same edge stream, byte for byte,
// which the report proves by recording the stream digest.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"streamcover/internal/workload"
)

// Duration is a time.Duration that unmarshals from a JSON string like
// "250ms" or "3s" — specs are written by humans.
type Duration struct{ time.Duration }

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf(`durations are strings like "250ms": %w`, err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	d.Duration = v
	return nil
}

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

// Spec is one complete scenario.
type Spec struct {
	Name        string       `json:"name"`
	Description string       `json:"description,omitempty"`
	Seed        int64        `json:"seed"`
	Workload    WorkloadSpec `json:"workload"`
	Fleet       FleetSpec    `json:"fleet"`
	Daemon      DaemonSpec   `json:"daemon"`
	Phases      []PhaseSpec  `json:"phases"`
	Lifecycle   []LifeEvent  `json:"lifecycle,omitempty"`
	Faults      []FaultSpec  `json:"faults,omitempty"`
	Gates       GateSpec     `json:"gates"`
}

// WorkloadSpec names a generator family (internal/workload.FromFamily) and
// its knobs, plus the arrival order and the estimator's approximation
// target. Zero-valued knobs take the family defaults.
type WorkloadSpec struct {
	Family   string  `json:"family"`
	N        int     `json:"n,omitempty"`
	M        int     `json:"m,omitempty"`
	K        int     `json:"k,omitempty"`
	Frac     float64 `json:"frac,omitempty"`
	AvgSize  int     `json:"avg_size,omitempty"`
	Exponent float64 `json:"exponent,omitempty"`
	MaxSize  int     `json:"max_size,omitempty"`
	Large    int     `json:"large,omitempty"`
	Commons  int     `json:"commons,omitempty"`
	Privates int     `json:"privates,omitempty"`
	AvgDeg   int     `json:"avg_deg,omitempty"`
	PerSet   int     `json:"per_set,omitempty"`
	Rich     float64 `json:"rich,omitempty"`
	Order    string  `json:"order,omitempty"` // set|shuffled|element|roundrobin (default shuffled)
	Alpha    float64 `json:"alpha,omitempty"` // estimator approximation target (default 4)
}

// FleetSpec shapes the client side: how many connections, how many edges
// per wire batch, how deep each connection pipelines, and which wire
// layout batches use.
type FleetSpec struct {
	Connections int    `json:"connections,omitempty"` // default 2
	BatchEdges  int    `json:"batch_edges,omitempty"` // default 2048
	MaxPending  int    `json:"max_pending,omitempty"` // default 32
	Wire        string `json:"wire,omitempty"`        // columnar|row (default columnar)
}

// DaemonSpec shapes the managed kcoverd instance. Proxy routes both the
// ingest TCP and the health/metrics HTTP traffic through a fault.Proxy so
// partition/delay/drop windows apply to everything the harness observes.
type DaemonSpec struct {
	Workers         int      `json:"workers,omitempty"`          // default 2
	EngineWorkers   int      `json:"engine_workers,omitempty"`   // default 1
	QueueDepth      int      `json:"queue_depth,omitempty"`      // default 64
	Durable         bool     `json:"durable,omitempty"`          // WAL + checkpoints in a temp data dir
	WALNoSync       bool     `json:"wal_nosync,omitempty"`       //
	CheckpointEvery Duration `json:"checkpoint_every,omitempty"` // default 2s (durable only)
	RetryMin        Duration `json:"retry_min,omitempty"`        // degraded-recovery backoff floor (default 25ms)
	RetryMax        Duration `json:"retry_max,omitempty"`        // degraded-recovery backoff ceiling (default 500ms)
	Proxy           bool     `json:"proxy,omitempty"`            // required by partition/net_delay/drop_conns faults
}

// PhaseSpec is one timed segment of the drive: a name, a duration, and a
// target arrival rate in edges/sec summed over the fleet. Rate 0 is
// closed-loop (each connection self-clocks on server backpressure); a
// positive rate is open-loop through a token bucket, which is how a
// flash-crowd overdrives the server.
type PhaseSpec struct {
	Name     string   `json:"name"`
	Duration Duration `json:"duration"`
	Rate     float64  `json:"rate,omitempty"`
}

// LifeEvent schedules a daemon lifecycle action at an offset from run
// start: "kill" (SIGKILL-style abort, no checkpoint), "restart" (start a
// fresh daemon on the same address and data dir — crash recovery), or
// "checkpoint" (force a checkpoint of every session).
type LifeEvent struct {
	At     Duration `json:"at"`
	Action string   `json:"action"`
}

// FaultSpec is one scheduled fault window. Windowed kinds apply at At and
// clear at At+Duration:
//
//	disk_full   — fault.Injector ENOSPC byte budget (Budget bytes remain)
//	fail_syncs  — next Count fsyncs fail (Count<=0: every fsync in window)
//	fail_writes — next Count writes fail (Count<=0: every write in window)
//	io_latency  — every write/fsync sleeps Delay first
//	partition   — proxy black-holes new connections and drops live ones
//	net_delay   — proxy delays each forwarded chunk by Delay
//
// drop_conns is instantaneous (Duration must be 0): sever every proxied
// connection once, a network blip.
type FaultSpec struct {
	Kind     string   `json:"kind"`
	At       Duration `json:"at"`
	Duration Duration `json:"duration,omitempty"`
	Budget   int64    `json:"budget,omitempty"`
	Count    int      `json:"count,omitempty"`
	Delay    Duration `json:"delay,omitempty"`
}

// GateSpec turns measurements into a pass/fail verdict. Zero-valued
// limits are not checked.
type GateSpec struct {
	MinEdgesPerSec        float64 `json:"min_edges_per_sec,omitempty"`
	MaxP99Millis          float64 `json:"max_p99_ms,omitempty"`
	MaxRecoveryMillis     float64 `json:"max_recovery_ms,omitempty"`
	RequireExactlyOnce    bool    `json:"require_exactly_once,omitempty"`
	RequireReferenceMatch bool    `json:"require_reference_match,omitempty"`
	// MaxThroughputDropPct fails the run when overall acked throughput
	// drops more than this percentage below the same scenario in the
	// baseline report (kcoverload -baseline).
	MaxThroughputDropPct float64 `json:"max_throughput_drop_pct,omitempty"`
}

var validOrders = map[string]bool{"set": true, "shuffled": true, "element": true, "roundrobin": true}

var proxyFaults = map[string]bool{"partition": true, "net_delay": true, "drop_conns": true}
var durableFaults = map[string]bool{"disk_full": true, "fail_syncs": true, "fail_writes": true, "io_latency": true}

// ParseSpec strictly decodes and validates one scenario spec: unknown
// fields are rejected (a typoed knob must not silently no-op), durations
// must be non-negative, fault windows of the same kind must not overlap,
// and every scheduled event must land inside the run.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	// A second document in the same file is a mistake, not an extension.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after spec")
	}
	s.applyDefaults()
	if err := s.validate(); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return &s, nil
}

// marshalSpec serializes a spec back to JSON (tests round-trip with it).
func marshalSpec(s *Spec) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseSpecFile reads and parses one spec file.
func ParseSpecFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpec(data)
}

func (s *Spec) applyDefaults() {
	if s.Workload.Order == "" {
		s.Workload.Order = "shuffled"
	}
	if s.Workload.Alpha == 0 {
		s.Workload.Alpha = 4
	}
	if s.Fleet.Connections == 0 {
		s.Fleet.Connections = 2
	}
	if s.Fleet.BatchEdges == 0 {
		s.Fleet.BatchEdges = 2048
	}
	if s.Fleet.MaxPending == 0 {
		s.Fleet.MaxPending = 32
	}
	if s.Fleet.Wire == "" {
		s.Fleet.Wire = "columnar"
	}
	if s.Daemon.Workers == 0 {
		s.Daemon.Workers = 2
	}
	if s.Daemon.EngineWorkers == 0 {
		s.Daemon.EngineWorkers = 1
	}
	if s.Daemon.QueueDepth == 0 {
		s.Daemon.QueueDepth = 64
	}
	if s.Daemon.CheckpointEvery.Duration == 0 {
		s.Daemon.CheckpointEvery.Duration = 2 * time.Second
	}
	if s.Daemon.RetryMin.Duration == 0 {
		s.Daemon.RetryMin.Duration = 25 * time.Millisecond
	}
	if s.Daemon.RetryMax.Duration == 0 {
		s.Daemon.RetryMax.Duration = 500 * time.Millisecond
	}
}

// TotalDuration is the sum of the phase durations — the run's length.
func (s *Spec) TotalDuration() time.Duration {
	var t time.Duration
	for _, p := range s.Phases {
		t += p.Duration.Duration
	}
	return t
}

func (s *Spec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("missing name")
	}
	if !workload.ValidFamily(s.Workload.Family) {
		return fmt.Errorf("unknown workload family %q (have %v)", s.Workload.Family, workload.Families())
	}
	if !validOrders[s.Workload.Order] {
		return fmt.Errorf("unknown arrival order %q (set|shuffled|element|roundrobin)", s.Workload.Order)
	}
	for _, v := range []struct {
		name string
		val  int
	}{
		{"workload.n", s.Workload.N}, {"workload.m", s.Workload.M}, {"workload.k", s.Workload.K},
		{"fleet.connections", s.Fleet.Connections}, {"fleet.batch_edges", s.Fleet.BatchEdges},
		{"fleet.max_pending", s.Fleet.MaxPending}, {"daemon.workers", s.Daemon.Workers},
		{"daemon.engine_workers", s.Daemon.EngineWorkers}, {"daemon.queue_depth", s.Daemon.QueueDepth},
	} {
		if v.val < 0 {
			return fmt.Errorf("%s is negative", v.name)
		}
	}
	if s.Fleet.Wire != "columnar" && s.Fleet.Wire != "row" {
		return fmt.Errorf("unknown fleet wire %q (columnar|row)", s.Fleet.Wire)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("no phases")
	}
	for i, p := range s.Phases {
		if p.Name == "" {
			return fmt.Errorf("phase %d: missing name", i)
		}
		if p.Duration.Duration <= 0 {
			return fmt.Errorf("phase %q: duration %v must be positive", p.Name, p.Duration.Duration)
		}
		if p.Rate < 0 {
			return fmt.Errorf("phase %q: negative rate", p.Name)
		}
	}
	total := s.TotalDuration()
	if err := s.validateLifecycle(total); err != nil {
		return err
	}
	if err := s.validateFaults(total); err != nil {
		return err
	}
	for _, g := range []struct {
		name string
		val  float64
	}{
		{"min_edges_per_sec", s.Gates.MinEdgesPerSec}, {"max_p99_ms", s.Gates.MaxP99Millis},
		{"max_recovery_ms", s.Gates.MaxRecoveryMillis}, {"max_throughput_drop_pct", s.Gates.MaxThroughputDropPct},
	} {
		if g.val < 0 {
			return fmt.Errorf("gate %s is negative", g.name)
		}
	}
	return nil
}

func (s *Spec) validateLifecycle(total time.Duration) error {
	evs := append([]LifeEvent(nil), s.Lifecycle...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At.Duration < evs[j].At.Duration })
	alive := true
	for _, e := range evs {
		if e.At.Duration < 0 {
			return fmt.Errorf("lifecycle %s: negative offset %v", e.Action, e.At.Duration)
		}
		if e.At.Duration >= total {
			return fmt.Errorf("lifecycle %s at %v lands after the run ends (%v)", e.Action, e.At.Duration, total)
		}
		switch e.Action {
		case "kill":
			if !alive {
				return fmt.Errorf("lifecycle: kill at %v while the daemon is already down", e.At.Duration)
			}
			alive = false
		case "restart":
			if alive {
				return fmt.Errorf("lifecycle: restart at %v without a preceding kill", e.At.Duration)
			}
			alive = true
		case "checkpoint":
			if !alive {
				return fmt.Errorf("lifecycle: checkpoint at %v while the daemon is down", e.At.Duration)
			}
		default:
			return fmt.Errorf("lifecycle: unknown action %q (kill|restart|checkpoint)", e.Action)
		}
	}
	if !alive {
		return fmt.Errorf("lifecycle: the daemon is left dead (kill without restart)")
	}
	if !s.Daemon.Durable && s.Gates.RequireExactlyOnce {
		// A kill without durability silently loses applied edges; the
		// exactly-once gate would then be meaningless.
		for _, e := range s.Lifecycle {
			if e.Action == "kill" {
				return fmt.Errorf("lifecycle kill with require_exactly_once needs daemon.durable")
			}
		}
	}
	return nil
}

func (s *Spec) validateFaults(total time.Duration) error {
	byKind := map[string][]FaultSpec{}
	for i, f := range s.Faults {
		if !proxyFaults[f.Kind] && !durableFaults[f.Kind] {
			return fmt.Errorf("fault %d: unknown kind %q", i, f.Kind)
		}
		if f.At.Duration < 0 {
			return fmt.Errorf("fault %s: negative offset %v", f.Kind, f.At.Duration)
		}
		if f.Duration.Duration < 0 {
			return fmt.Errorf("fault %s: negative duration %v", f.Kind, f.Duration.Duration)
		}
		if f.Kind == "drop_conns" {
			if f.Duration.Duration != 0 {
				return fmt.Errorf("fault drop_conns is instantaneous; duration must be omitted")
			}
		} else if f.Duration.Duration == 0 {
			return fmt.Errorf("fault %s: a window needs a positive duration", f.Kind)
		}
		if end := f.At.Duration + f.Duration.Duration; end > total {
			return fmt.Errorf("fault %s window [%v,%v] extends past the run end (%v)", f.Kind, f.At.Duration, end, total)
		}
		if proxyFaults[f.Kind] && !s.Daemon.Proxy {
			return fmt.Errorf("fault %s needs daemon.proxy", f.Kind)
		}
		if durableFaults[f.Kind] && !s.Daemon.Durable {
			return fmt.Errorf("fault %s needs daemon.durable", f.Kind)
		}
		if f.Kind == "disk_full" && f.Budget <= 0 {
			return fmt.Errorf("fault disk_full: budget (bytes) must be positive")
		}
		if (f.Kind == "io_latency" || f.Kind == "net_delay") && f.Delay.Duration <= 0 {
			return fmt.Errorf("fault %s: delay must be positive", f.Kind)
		}
		byKind[f.Kind] = append(byKind[f.Kind], f)
	}
	for kind, fs := range byKind {
		sort.Slice(fs, func(i, j int) bool { return fs[i].At.Duration < fs[j].At.Duration })
		for i := 1; i < len(fs); i++ {
			prevEnd := fs[i-1].At.Duration + fs[i-1].Duration.Duration
			if fs[i].At.Duration < prevEnd {
				return fmt.Errorf("fault %s windows overlap: [%v,%v] and [%v,%v]",
					kind, fs[i-1].At.Duration, prevEnd,
					fs[i].At.Duration, fs[i].At.Duration+fs[i].Duration.Duration)
			}
		}
	}
	return nil
}
