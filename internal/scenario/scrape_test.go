package scenario

import (
	"math"
	"testing"
)

// TestHistQuantile pins the power-of-two bucket interpolation: the lower
// bound of a bucket is half its upper (0 for the first), and the quantile
// interpolates linearly inside the landing bucket.
func TestHistQuantile(t *testing.T) {
	if got := histQuantile(nil, 0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	if got := histQuantile(map[int64]int64{1024: 0}, 0.5); got != 0 {
		t.Fatalf("zero-count histogram quantile = %v, want 0", got)
	}

	// One bucket [0, 100]: the q-quantile is q*upper exactly.
	one := map[int64]int64{100: 10}
	for _, q := range []float64{0.1, 0.5, 0.99} {
		want := q * 100
		if got := histQuantile(one, q); math.Abs(got-want) > 1e-9 {
			t.Fatalf("single-bucket q=%v: got %v, want %v", q, got, want)
		}
	}

	// Two buckets: [0,128] holds 3 of 4 samples, (128,256] one. The median
	// lands in the first bucket at 2/3 of it; p99 lands in the second,
	// which spans 128..256.
	two := map[int64]int64{128: 3, 256: 1}
	if got, want := histQuantile(two, 0.5), 128.0*(2.0/3.0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("p50 = %v, want %v", got, want)
	}
	p99 := histQuantile(two, 0.99)
	if p99 <= 128 || p99 > 256 {
		t.Fatalf("p99 = %v, want inside (128, 256]", p99)
	}

	// Monotone in q.
	h := map[int64]int64{64: 5, 128: 20, 512: 4, 4096: 1}
	prev := -1.0
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95, 0.999} {
		v := histQuantile(h, q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%v gave %v after %v", q, v, prev)
		}
		prev = v
	}
	// q=1 must land in (or at the top of) the last bucket.
	if top := histQuantile(h, 1); top > 4096 || top <= 2048 {
		t.Fatalf("q=1 = %v, want inside (2048, 4096]", top)
	}
}

// TestServerHistsDiff pins the snapshot-diff semantics: per-bucket growth,
// clamped at zero so a node restart (histogram reset) degrades the phase
// instead of producing negative counts.
func TestServerHistsDiff(t *testing.T) {
	prev := serverHists{
		"ingest_batch_nanos": {128: 10, 256: 5},
		"query_merge_nanos":  {64: 2},
	}
	cur := serverHists{
		"ingest_batch_nanos": {128: 14, 256: 2, 512: 1}, // 256 reset below prev
		"query_merge_nanos":  {64: 2},                   // no growth
	}
	d := cur.diff(prev)
	ing := d["ingest_batch_nanos"]
	if ing[128] != 4 || ing[512] != 1 {
		t.Fatalf("diff growth wrong: %+v", ing)
	}
	if _, ok := ing[256]; ok {
		t.Fatalf("reset bucket not clamped at zero: %+v", ing)
	}
	if _, ok := d["query_merge_nanos"]; ok {
		t.Fatalf("histogram with no growth should be dropped: %+v", d)
	}
}
