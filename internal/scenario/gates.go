package scenario

import "fmt"

// evaluateGates turns the spec's GateSpec into pass/fail rows against the
// measured report. Zero-valued limits are skipped entirely — a scenario
// only answers for the gates it declares. replicaConv carries the cluster
// convergence verdict (nil when the check could not run), replicaDetail
// the divergence, if any.
func evaluateGates(spec *Spec, rep *ScenarioReport, refMatch *bool, replicaConv *bool, replicaDetail string, baseline *ScenarioReport) []GateResult {
	g := spec.Gates
	var out []GateResult

	if g.MinEdgesPerSec > 0 {
		actual := rep.Throughput()
		out = append(out, GateResult{
			Name: "min_edges_per_sec", Limit: g.MinEdgesPerSec, Actual: actual,
			Pass: actual >= g.MinEdgesPerSec,
		})
	}

	if g.MaxP99Millis > 0 {
		var worst float64
		for _, p := range rep.Phases {
			if p.Batches > 0 && p.P99Millis > worst {
				worst = p.P99Millis
			}
		}
		out = append(out, GateResult{
			Name: "max_p99_ms", Limit: g.MaxP99Millis, Actual: worst,
			Pass: worst <= g.MaxP99Millis,
		})
	}

	if g.MaxRecoveryMillis > 0 {
		var worst float64
		unrecovered := false
		for _, f := range rep.Faults {
			if f.RecoveryMillis < 0 {
				unrecovered = true
			} else if f.RecoveryMillis > worst {
				worst = f.RecoveryMillis
			}
		}
		for _, l := range rep.Lifecycle {
			if l.Action != "restart" {
				continue
			}
			if l.RecoveryMillis < 0 {
				unrecovered = true
			} else if l.RecoveryMillis > worst {
				worst = l.RecoveryMillis
			}
		}
		r := GateResult{Name: "max_recovery_ms", Limit: g.MaxRecoveryMillis, Actual: worst,
			Pass: !unrecovered && worst <= g.MaxRecoveryMillis}
		if unrecovered {
			r.Detail = "a fault window never recovered to healthy"
		}
		out = append(out, r)
	}

	if g.RequireExactlyOnce {
		diff := rep.EdgesApplied - rep.EdgesSent
		r := GateResult{Name: "require_exactly_once", Actual: float64(diff), Pass: diff == 0 && rep.EdgesSent > 0}
		if diff != 0 {
			r.Detail = fmt.Sprintf("server applied %d of %d sent edges", rep.EdgesApplied, rep.EdgesSent)
		} else if rep.EdgesSent == 0 {
			r.Detail = "no edges were sent"
		}
		out = append(out, r)
	}

	if g.RequireReferenceMatch {
		r := GateResult{Name: "require_reference_match"}
		if refMatch == nil {
			r.Detail = "reference replay did not run (earlier failure)"
		} else if *refMatch {
			r.Pass = true
			r.Actual = 1
		} else {
			r.Detail = "server result differs from the same-seed reference estimator"
		}
		out = append(out, r)
	}

	if g.RequireReplicaConvergence {
		r := GateResult{Name: "require_replica_convergence"}
		if replicaConv == nil {
			r.Detail = "convergence check did not run (earlier failure)"
		} else if *replicaConv {
			r.Pass = true
			r.Actual = float64(len(rep.Replicas))
		} else {
			r.Detail = replicaDetail
		}
		out = append(out, r)
	}

	if g.MaxThroughputDropPct > 0 {
		r := GateResult{Name: "max_throughput_drop_pct", Limit: g.MaxThroughputDropPct, Pass: true}
		if baseline == nil {
			r.Detail = "no baseline provided; gate skipped"
		} else if base := baseline.Throughput(); base <= 0 {
			r.Detail = "baseline throughput is zero; gate skipped"
		} else {
			drop := (base - rep.Throughput()) / base * 100
			r.Actual = drop
			r.Pass = drop <= g.MaxThroughputDropPct
			if !r.Pass {
				r.Detail = fmt.Sprintf("throughput fell from %.0f to %.0f edges/s", base, rep.Throughput())
			}
		}
		out = append(out, r)
	}

	return out
}
