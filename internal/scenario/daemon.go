package scenario

import (
	"context"
	"fmt"
	"sync"
	"time"

	"streamcover/internal/fault"
	"streamcover/internal/server"
)

// daemon is a managed in-process kcoverd instance: the harness owns its
// start/kill/restart lifecycle, its data directory, a fault.Injector
// wrapping every filesystem call, and (optionally) fault.Proxy layers in
// front of both the ingest TCP port and the HTTP sidecar so network
// faults apply to everything clients and the health scraper see.
//
// Running in-process rather than exec'ing cmd/kcoverd is what makes the
// declarative fault schedule possible at all — the injector and proxy are
// in-process APIs — and a kill maps to server.Abort(), which drops every
// connection and leaves the data dir exactly as a SIGKILL would.
type daemon struct {
	spec    DaemonSpec
	dataDir string // empty when not durable
	inj     *fault.Injector

	// Concrete addresses from the first start; restarts rebind them so
	// clients and proxies reconnect without re-resolution. Cluster nodes
	// have them pre-reserved instead (identities must exist before any
	// server's peer list can be built).
	tcpAddr, httpAddr string

	ingestProxy, httpProxy *fault.Proxy // nil unless spec.Proxy
	// peerProxy fronts the replication plane of a cluster node under
	// chaos: its address IS the node's cluster identity, so followers
	// fetch WAL (and bootstrap checkpoints) through it whenever this
	// node leads, and peer_partition severs replication without touching
	// the client planes above.
	peerProxy *fault.Proxy

	clu *clusterWiring // nil outside cluster mode

	mu    sync.Mutex
	srv   *server.Server
	alive bool
}

// clusterWiring is one node's slice of the fleet topology, fixed before
// any node starts: its identity, the full peer list, and the replication
// knobs shared by every node.
type clusterWiring struct {
	nodeID    string
	peers     []string
	replicas  int
	heartbeat time.Duration
}

func newDaemon(spec DaemonSpec, dataDir string) *daemon {
	d := &daemon{spec: spec}
	if spec.Durable {
		d.dataDir = dataDir
		d.inj = fault.NewInjector(nil) // nil inner = the real filesystem
	}
	return d
}

func (d *daemon) config() server.Config {
	cfg := server.Config{
		Workers:       d.spec.Workers,
		EngineWorkers: d.spec.EngineWorkers,
		QueueDepth:    d.spec.QueueDepth,
		RetryMin:      d.spec.RetryMin.Duration,
		RetryMax:      d.spec.RetryMax.Duration,
	}
	if d.spec.Durable {
		cfg.DataDir = d.dataDir
		cfg.CheckpointEvery = d.spec.CheckpointEvery.Duration
		cfg.WALNoSync = d.spec.WALNoSync
		cfg.FS = d.inj
		cfg.MemBudget = d.spec.MemBudget
	}
	if d.clu != nil {
		cfg.NodeID = d.clu.nodeID
		cfg.Peers = d.clu.peers
		cfg.Replicas = d.clu.replicas
		cfg.RepHeartbeat = d.clu.heartbeat
	}
	return cfg
}

// start boots the daemon. The first start binds ephemeral localhost ports
// and records them; every later start (a restart after kill) rebinds the
// same ports, which works because Go listeners set SO_REUSEADDR, so the
// proxies and reconnecting clients need no address updates.
func (d *daemon) start() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.alive {
		return fmt.Errorf("daemon already running")
	}
	srv := server.New(d.config())
	tcp, http := d.tcpAddr, d.httpAddr
	if tcp == "" {
		tcp, http = "127.0.0.1:0", "127.0.0.1:0"
	}
	if err := srv.Start(tcp, http); err != nil {
		return err
	}
	d.tcpAddr = srv.TCPAddr().String()
	d.httpAddr = srv.HTTPAddr().String()
	d.srv, d.alive = srv, true
	if d.spec.Proxy && d.ingestProxy == nil {
		ip, err := fault.NewProxy(d.tcpAddr)
		if err != nil {
			srv.Abort()
			return err
		}
		hp, err := fault.NewProxy(d.httpAddr)
		if err != nil {
			ip.Close()
			srv.Abort()
			return err
		}
		d.ingestProxy, d.httpProxy = ip, hp
	}
	return nil
}

// kill is the SIGKILL path: no checkpoint, no WAL flush, every connection
// dropped. Proxied client connections are severed too, so parked clients
// start their reconnect loop immediately instead of waiting out a read
// timeout against a half-open proxy pipe.
func (d *daemon) kill() {
	d.mu.Lock()
	srv, alive := d.srv, d.alive
	d.srv, d.alive = nil, false
	d.mu.Unlock()
	if !alive {
		return
	}
	srv.Abort()
	if d.ingestProxy != nil {
		d.ingestProxy.DropAll()
	}
	if d.peerProxy != nil {
		// Sever live replication streams too, so the followers' appliers
		// notice the dead leader immediately and start their redial loop.
		d.peerProxy.DropAll()
	}
}

// server returns the live server handle, if the daemon is up.
func (d *daemon) server() (*server.Server, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.srv, d.alive
}

// checkpoint forces a checkpoint of every session (the "checkpoint"
// lifecycle action).
func (d *daemon) checkpoint() error {
	d.mu.Lock()
	srv, alive := d.srv, d.alive
	d.mu.Unlock()
	if !alive {
		return fmt.Errorf("daemon not running")
	}
	return srv.CheckpointAll()
}

// shutdown drains gracefully and tears down the proxies.
func (d *daemon) shutdown(timeout time.Duration) error {
	d.mu.Lock()
	srv, alive := d.srv, d.alive
	d.srv, d.alive = nil, false
	d.mu.Unlock()
	var err error
	if alive {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		err = srv.Shutdown(ctx)
		cancel()
	}
	if d.ingestProxy != nil {
		d.ingestProxy.Close()
		d.httpProxy.Close()
	}
	if d.peerProxy != nil {
		d.peerProxy.Close()
	}
	return err
}

// applyFault turns one scheduled fault on (window start) or off (window
// end). Validation already guaranteed the needed layer exists: durable
// kinds have the injector, proxy kinds have the proxies.
func (d *daemon) applyFault(f FaultSpec, on bool) {
	switch f.Kind {
	case "disk_full":
		if on {
			d.inj.SetDiskBudget(f.Budget)
		} else {
			d.inj.SetDiskBudget(-1)
		}
	case "fail_syncs":
		d.inj.FailSyncs(windowCount(f, on), nil)
	case "fail_writes":
		d.inj.FailWrites(windowCount(f, on), nil)
	case "io_latency":
		if on {
			d.inj.SetLatency(f.Delay.Duration)
		} else {
			d.inj.SetLatency(0)
		}
	case "partition":
		// Black-hole both planes: new connections hang, and live ones are
		// dropped so clients feel the cut immediately rather than at the
		// next read timeout.
		d.ingestProxy.Partition(on)
		d.httpProxy.Partition(on)
		if on {
			d.ingestProxy.DropAll()
			d.httpProxy.DropAll()
		}
	case "net_delay":
		if on {
			d.ingestProxy.SetDelay(f.Delay.Duration)
		} else {
			d.ingestProxy.SetDelay(0)
		}
	case "peer_partition":
		// Replication plane only: followers replicating (or bootstrapping)
		// from this node lose their streams and their redials hang, while
		// client ingest and queries continue on the other proxies.
		d.peerProxy.Partition(on)
		if on {
			d.peerProxy.DropAll()
		}
	case "drop_conns":
		if on {
			d.ingestProxy.DropAll()
		}
	}
}

// windowCount maps a FaultSpec count to the injector's arming convention:
// window start arms Count failures (<=0: sticky for the whole window),
// window end always clears.
func windowCount(f FaultSpec, on bool) int {
	if !on {
		return 0
	}
	if f.Count <= 0 {
		return -1
	}
	return f.Count
}

// clearFaults force-clears every fault layer — the post-run safety net.
func (d *daemon) clearFaults() {
	if d.inj != nil {
		d.inj.Clear()
	}
	if d.ingestProxy != nil {
		d.ingestProxy.Partition(false)
		d.ingestProxy.SetDelay(0)
		d.httpProxy.Partition(false)
		d.httpProxy.SetDelay(0)
	}
	if d.peerProxy != nil {
		d.peerProxy.Partition(false)
		d.peerProxy.SetDelay(0)
	}
}

// clientAddr is where the fleet dials: the ingest proxy when chaos is
// enabled, the server itself otherwise.
func (d *daemon) clientAddr() string {
	if d.ingestProxy != nil {
		return d.ingestProxy.Addr()
	}
	return d.tcpAddr
}

// healthAddr is where the collector scrapes /healthz — proxied when chaos
// is enabled so a partition reads as "down", which is what recovery-time
// measurement needs.
func (d *daemon) healthAddr() string {
	if d.httpProxy != nil {
		return d.httpProxy.Addr()
	}
	return d.httpAddr
}
