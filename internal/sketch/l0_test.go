package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestL0ExactWhenSmall(t *testing.T) {
	s := NewL0(0.5, 1000, 1000, rand.New(rand.NewSource(1)))
	for x := uint64(0); x < 10; x++ {
		s.Add(x)
		s.Add(x) // duplicates must not count
	}
	if got := s.Estimate(); got != 10 {
		t.Errorf("Estimate() = %v, want exactly 10 below capacity", got)
	}
	if s.Adds() != 20 {
		t.Errorf("Adds() = %d, want 20", s.Adds())
	}
}

func TestL0Empty(t *testing.T) {
	s := NewL0(0.5, 10, 10, rand.New(rand.NewSource(2)))
	if got := s.Estimate(); got != 0 {
		t.Errorf("empty sketch Estimate() = %v, want 0", got)
	}
}

func TestL0AccuracyLarge(t *testing.T) {
	// Distinct count 50000 with eps=0.25: expect within 1±0.25 nearly always,
	// check a loose 30% envelope over several seeds.
	const distinct = 50000
	failures := 0
	for seed := int64(0); seed < 10; seed++ {
		s := NewL0(0.25, distinct, distinct, rand.New(rand.NewSource(seed)))
		for x := uint64(0); x < distinct; x++ {
			s.Add(x)
		}
		est := s.Estimate()
		if math.Abs(est-distinct)/distinct > 0.30 {
			failures++
		}
	}
	if failures > 1 {
		t.Errorf("%d/10 runs exceeded 30%% error", failures)
	}
}

func TestL0DuplicateHeavyStream(t *testing.T) {
	// A stream with massive duplication must still estimate the distinct
	// count, not the stream length.
	s := NewL0(0.25, 1000, 1000, rand.New(rand.NewSource(3)))
	for rep := 0; rep < 200; rep++ {
		for x := uint64(0); x < 300; x++ {
			s.Add(x)
		}
	}
	est := s.Estimate()
	if math.Abs(est-300)/300 > 0.35 {
		t.Errorf("Estimate() = %v, want ~300", est)
	}
}

func TestL0SpaceBounded(t *testing.T) {
	s := NewL0(0.5, 1<<20, 1<<20, rand.New(rand.NewSource(4)))
	for x := uint64(0); x < 1<<16; x++ {
		s.Add(x)
	}
	// k = 4/eps^2+1 = 17 values plus hash coefficients: well under 200 words.
	if w := s.SpaceWords(); w > 200 {
		t.Errorf("SpaceWords() = %d, want O(1/eps^2)", w)
	}
}

func TestL0MonotoneNondecreasing(t *testing.T) {
	// Estimates never decrease as more distinct keys arrive (bottom-k value
	// v_k only shrinks, estimate only grows), checked as a property.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewL0(0.4, 4096, 4096, rng)
		prev := 0.0
		for x := uint64(0); x < 4096; x++ {
			s.Add(x)
			est := s.Estimate()
			if est < prev-1e-9 {
				return false
			}
			prev = est
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestL0PanicsOnBadEps(t *testing.T) {
	for _, eps := range []float64{0, -1, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewL0(eps=%v) did not panic", eps)
				}
			}()
			NewL0(eps, 10, 10, rand.New(rand.NewSource(1)))
		}()
	}
}

func BenchmarkL0Add(b *testing.B) {
	s := NewL0(0.25, 1<<20, 1<<20, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i))
	}
}
