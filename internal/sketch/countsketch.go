package sketch

import (
	"fmt"
	"math/rand"
	"sort"

	"streamcover/internal/hash"
)

// CountSketch is the Charikar–Chen–Farach-Colton sketch: depth rows of
// width counters; each update x with weight Δ adds sign_r(x)·Δ to bucket
// bucket_r(x) in every row r. Point estimates take the median across rows,
// giving |est(x) − a[x]| ≤ √(F2(a)/width) per row with probability 2/3 and
// exponentially better after the median.
type CountSketch struct {
	depth, width int
	table        [][]int64
	bucket       []*hash.Poly // 2-wise bucket hash per row
	sign         []*hash.Poly // 4-wise sign hash per row
}

// NewCountSketch builds a sketch with the given depth (number of
// independent rows, odd is best for medians) and width (counters per row).
func NewCountSketch(depth, width int, rng *rand.Rand) *CountSketch {
	if depth < 1 || width < 1 {
		panic(fmt.Sprintf("sketch: CountSketch depth %d width %d", depth, width))
	}
	cs := &CountSketch{
		depth:  depth,
		width:  width,
		table:  make([][]int64, depth),
		bucket: make([]*hash.Poly, depth),
		sign:   make([]*hash.Poly, depth),
	}
	for r := 0; r < depth; r++ {
		cs.table[r] = make([]int64, width)
		cs.bucket[r] = hash.NewPairwise(rng)
		cs.sign[r] = hash.New4Wise(rng)
	}
	return cs
}

// Add applies update a[x] += delta.
func (cs *CountSketch) Add(x uint64, delta int64) {
	for r := 0; r < cs.depth; r++ {
		b := cs.bucket[r].Range(x, uint64(cs.width))
		cs.table[r][b] += int64(cs.sign[r].Sign(x)) * delta
	}
}

// Estimate returns the median-of-rows point estimate of a[x].
func (cs *CountSketch) Estimate(x uint64) int64 {
	ests := make([]int64, cs.depth)
	for r := 0; r < cs.depth; r++ {
		b := cs.bucket[r].Range(x, uint64(cs.width))
		ests[r] = int64(cs.sign[r].Sign(x)) * cs.table[r][b]
	}
	sort.Slice(ests, func(i, j int) bool { return ests[i] < ests[j] })
	return ests[cs.depth/2]
}

// F2Estimate estimates F2(a) as the median across rows of the row's sum of
// squared counters (each row is an AMS-style estimator when width ≥ 1; the
// sum of squared bucket totals is an unbiased F2 estimate under 4-wise
// signs).
func (cs *CountSketch) F2Estimate() float64 {
	sums := make([]float64, cs.depth)
	for r := 0; r < cs.depth; r++ {
		var s float64
		for _, c := range cs.table[r] {
			f := float64(c)
			s += f * f
		}
		sums[r] = s
	}
	sort.Float64s(sums)
	if cs.depth%2 == 1 {
		return sums[cs.depth/2]
	}
	return (sums[cs.depth/2-1] + sums[cs.depth/2]) / 2
}

// RowMaxAbs returns, for each row, the largest absolute counter value — a
// per-row proxy for L∞ of the sketched vector, used by the set-disjointness
// distinguisher (Section 5's L∞-via-L2 trick).
func (cs *CountSketch) RowMaxAbs() []int64 {
	out := make([]int64, cs.depth)
	for r := 0; r < cs.depth; r++ {
		var m int64
		for _, c := range cs.table[r] {
			if c < 0 {
				c = -c
			}
			if c > m {
				m = c
			}
		}
		out[r] = m
	}
	return out
}

// Depth and Width report the sketch dimensions.
func (cs *CountSketch) Depth() int { return cs.depth }
func (cs *CountSketch) Width() int { return cs.width }

// SpaceWords counts counters plus hash coefficients.
func (cs *CountSketch) SpaceWords() int {
	words := cs.depth*cs.width + 2
	for r := 0; r < cs.depth; r++ {
		words += cs.bucket[r].SpaceWords() + cs.sign[r].SpaceWords()
	}
	return words
}
