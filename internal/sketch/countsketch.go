package sketch

import (
	"fmt"
	"math/rand"
	"sort"

	"streamcover/internal/hash"
)

// CountSketch is the Charikar–Chen–Farach-Colton sketch: depth rows of
// width counters; each update x with weight Δ adds sign_r(x)·Δ to bucket
// bucket_r(x) in every row r. Point estimates take the median across rows,
// giving |est(x) − a[x]| ≤ √(F2(a)/width) per row with probability 2/3 and
// exponentially better after the median.
//
// The counter matrix is stored flat (row r occupies
// table[r*width : (r+1)*width]) so the batch memos can cache absolute
// cell offsets: a batched update or estimate is then a handful of direct
// loads with no per-row slice indirection.
type CountSketch struct {
	depth, width int
	table        []int64      // flat depth×width, row-major
	bucket       []*hash.Poly // 2-wise bucket hash per row
	sign         []*hash.Poly // 4-wise sign hash per row

	// Per-batch hash memos (see BeginBatch): absolute table offset
	// (r*width + bucket) and sign per (key, row), computed lazily on a
	// key's first batched update. Purely transient working memory —
	// excluded from SpaceWords, never serialized or merged.
	bKeys  []uint64
	bOff   []int32 // ki*depth + r -> flat table offset
	bSign  []int8  // ki*depth + r
	bReady []bool  // per key: memo row filled

	// Persistent dense-domain memo (see EnableDenseDomain): when the key
	// universe is a small dense range [0, domain), offsets and signs — pure
	// functions of the key — are computed once ever and reused across
	// batches AND scalar calls, instead of re-memoized per batch. A
	// reconstructible cache of hash evaluations: excluded from SpaceWords,
	// never serialized or merged. Keys ≥ domain fall back to hashing.
	// Depth-5 sketches (the estimator's only depth) use the packed dCell
	// layout; other depths use the parallel arrays.
	domain uint64
	dCell  []dense5 // depth == 5 only
	dOff   []int32  // x*depth + r -> flat table offset
	dSign  []int8   // x*depth + r
	dReady []bool   // per key x: memo row filled
}

// dense5 packs one in-domain key's memo — five cell offsets, five signs,
// and the ready flag — into a single 32-byte record (two per cache line),
// so a dense add or estimate touches one cache line instead of three
// parallel arrays, and the fixed-size arrays are indexed without bounds
// checks.
type dense5 struct {
	off [5]int32
	sg  [5]int8
	rdy uint8
	_   [6]byte
}

// NewCountSketch builds a sketch with the given depth (number of
// independent rows, odd is best for medians) and width (counters per row).
func NewCountSketch(depth, width int, rng *rand.Rand) *CountSketch {
	if depth < 1 || width < 1 || depth*width > 1<<30 {
		panic(fmt.Sprintf("sketch: CountSketch depth %d width %d", depth, width))
	}
	cs := &CountSketch{
		depth:  depth,
		width:  width,
		table:  make([]int64, depth*width),
		bucket: make([]*hash.Poly, depth),
		sign:   make([]*hash.Poly, depth),
	}
	for r := 0; r < depth; r++ {
		cs.bucket[r] = hash.NewPairwise(rng)
		cs.sign[r] = hash.New4Wise(rng)
	}
	return cs
}

// row exposes one row of the flat counter matrix.
func (cs *CountSketch) row(r int) []int64 {
	return cs.table[r*cs.width : (r+1)*cs.width]
}

// EnableDenseDomain declares that (almost) every key fed to this sketch
// lies in [0, n) and turns on the persistent hash memo for that range.
// Each key's cell offsets and signs are then computed once over the
// sketch's lifetime rather than once per batch (or per scalar call) —
// results are bit-identical because offsets and signs are pure functions
// of the key. Out-of-range keys still work via the hashing fallback.
func (cs *CountSketch) EnableDenseDomain(n int) {
	if n <= 0 || n*cs.depth > 1<<30 {
		return
	}
	cs.domain = uint64(n)
	if cs.depth == 5 {
		cs.dCell = make([]dense5, n)
		return
	}
	cs.dOff = make([]int32, n*cs.depth)
	cs.dSign = make([]int8, n*cs.depth)
	cs.dReady = make([]bool, n)
}

// fillDense5 computes in-domain key x's packed memo cell. Called at most
// once per key over the sketch's lifetime; kept out of the hot paths so
// their rdy fast path stays small.
func (cs *CountSketch) fillDense5(x uint64) *dense5 {
	c := &cs.dCell[x]
	off := 0
	for r := 0; r < 5; r++ {
		c.off[r] = int32(off + int(cs.bucket[r].Range(x, uint64(cs.width))))
		c.sg[r] = int8(cs.sign[r].Sign(x))
		off += cs.width
	}
	c.rdy = 1
	return c
}

// fillDense computes in-domain key x's memo row (base = x*depth). Called
// at most once per key over the sketch's lifetime; kept out of the hot
// paths so their dReady fast path stays small.
func (cs *CountSketch) fillDense(x uint64, base int) {
	off := 0
	for r := 0; r < cs.depth; r++ {
		cs.dOff[base+r] = int32(off + int(cs.bucket[r].Range(x, uint64(cs.width))))
		cs.dSign[base+r] = int8(cs.sign[r].Sign(x))
		off += cs.width
	}
	cs.dReady[x] = true
}

// addMemo applies a delta through one memoized (offset, sign) row of
// length depth.
func (cs *CountSketch) addMemo(off []int32, sg []int8, delta int64) {
	t := cs.table
	if cs.depth == 5 {
		t[off[0]] += int64(sg[0]) * delta
		t[off[1]] += int64(sg[1]) * delta
		t[off[2]] += int64(sg[2]) * delta
		t[off[3]] += int64(sg[3]) * delta
		t[off[4]] += int64(sg[4]) * delta
		return
	}
	for r := range off {
		t[off[r]] += int64(sg[r]) * delta
	}
}

// estMemo is the median-of-rows estimate through one memoized row.
func (cs *CountSketch) estMemo(off []int32, sg []int8) int64 {
	t := cs.table
	if cs.depth == 5 {
		return median5(
			int64(sg[0])*t[off[0]],
			int64(sg[1])*t[off[1]],
			int64(sg[2])*t[off[2]],
			int64(sg[3])*t[off[3]],
			int64(sg[4])*t[off[4]],
		)
	}
	var buf [15]int64
	ests := buf[:0]
	if cs.depth > len(buf) {
		ests = make([]int64, 0, cs.depth)
	}
	for r := range off {
		e := int64(sg[r]) * t[off[r]]
		i := len(ests)
		ests = append(ests, e)
		for ; i > 0 && ests[i-1] > e; i-- {
			ests[i] = ests[i-1]
		}
		ests[i] = e
	}
	return ests[cs.depth/2]
}

// Add applies update a[x] += delta.
func (cs *CountSketch) Add(x uint64, delta int64) {
	if x < cs.domain {
		if cs.depth == 5 {
			c := &cs.dCell[x]
			if c.rdy == 0 {
				c = cs.fillDense5(x)
			}
			t := cs.table
			t[c.off[0]] += int64(c.sg[0]) * delta
			t[c.off[1]] += int64(c.sg[1]) * delta
			t[c.off[2]] += int64(c.sg[2]) * delta
			t[c.off[3]] += int64(c.sg[3]) * delta
			t[c.off[4]] += int64(c.sg[4]) * delta
			return
		}
		b := int(x) * cs.depth
		if !cs.dReady[x] {
			cs.fillDense(x, b)
		}
		cs.addMemo(cs.dOff[b:b+cs.depth:b+cs.depth], cs.dSign[b:b+cs.depth:b+cs.depth], delta)
		return
	}
	base := 0
	for r := 0; r < cs.depth; r++ {
		b := cs.bucket[r].Range(x, uint64(cs.width))
		cs.table[base+int(b)] += int64(cs.sign[r].Sign(x)) * delta
		base += cs.width
	}
}

// median5 selects the median of five values with six comparisons — the
// classic selection network, replacing an insertion sort on the hot
// estimate path (depth is 5 throughout the estimator).
func median5(e0, e1, e2, e3, e4 int64) int64 {
	if e0 > e1 {
		e0, e1 = e1, e0
	}
	if e2 > e3 {
		e2, e3 = e3, e2
	}
	if e0 > e2 {
		e0, e1, e2, e3 = e2, e3, e0, e1
	}
	// e0 is the minimum of the first four, so it cannot be the median;
	// the median of all five is the second smallest of {e1, e2, e3, e4},
	// with e2 ≤ e3 known.
	if e4 < e1 {
		e1, e4 = e4, e1
	}
	// Pairs (e1 ≤ e4) and (e2 ≤ e3): second smallest overall.
	if e1 > e2 {
		if e1 < e3 {
			return e1
		}
		return e3
	}
	if e4 < e2 {
		return e4
	}
	return e2
}

// Estimate returns the median-of-rows point estimate of a[x]. It sits on
// the ingest hot path (every heavy-hitter admission and refresh calls it),
// so depth-5 sketches go through a branchless-ish selection network and
// other depths through a stack-buffer insertion sort — never sort.Slice's
// reflection or an allocation.
func (cs *CountSketch) Estimate(x uint64) int64 {
	if x < cs.domain {
		if cs.depth == 5 {
			c := &cs.dCell[x]
			if c.rdy == 0 {
				c = cs.fillDense5(x)
			}
			t := cs.table
			return median5(
				int64(c.sg[0])*t[c.off[0]],
				int64(c.sg[1])*t[c.off[1]],
				int64(c.sg[2])*t[c.off[2]],
				int64(c.sg[3])*t[c.off[3]],
				int64(c.sg[4])*t[c.off[4]],
			)
		}
		b := int(x) * cs.depth
		if !cs.dReady[x] {
			cs.fillDense(x, b)
		}
		return cs.estMemo(cs.dOff[b:b+cs.depth:b+cs.depth], cs.dSign[b:b+cs.depth:b+cs.depth])
	}
	if cs.depth == 5 {
		w := uint64(cs.width)
		wd := cs.width
		t := cs.table
		e0 := int64(cs.sign[0].Sign(x)) * t[cs.bucket[0].Range(x, w)]
		e1 := int64(cs.sign[1].Sign(x)) * t[wd+int(cs.bucket[1].Range(x, w))]
		e2 := int64(cs.sign[2].Sign(x)) * t[2*wd+int(cs.bucket[2].Range(x, w))]
		e3 := int64(cs.sign[3].Sign(x)) * t[3*wd+int(cs.bucket[3].Range(x, w))]
		e4 := int64(cs.sign[4].Sign(x)) * t[4*wd+int(cs.bucket[4].Range(x, w))]
		return median5(e0, e1, e2, e3, e4)
	}
	var buf [15]int64
	ests := buf[:0]
	if cs.depth > len(buf) {
		ests = make([]int64, 0, cs.depth)
	}
	base := 0
	for r := 0; r < cs.depth; r++ {
		b := cs.bucket[r].Range(x, uint64(cs.width))
		e := int64(cs.sign[r].Sign(x)) * cs.table[base+int(b)]
		base += cs.width
		i := len(ests)
		ests = append(ests, e)
		for ; i > 0 && ests[i-1] > e; i-- {
			ests[i] = ests[i-1]
		}
		ests[i] = e
	}
	return ests[cs.depth/2]
}

// BeginBatch enters batched mode for a set of distinct keys: cell offsets
// and signs — pure functions of (key, row) — are memoized per key on first
// use, so repeated updates and estimates of the same key within the batch
// hash it once. Results are bit-identical to the scalar calls. The keys
// slice is only read and must stay valid until EndBatch.
func (cs *CountSketch) BeginBatch(keys []uint64) {
	cs.bKeys = keys
	if cs.domain > 0 {
		// Dense-domain keys never touch the per-batch memo; size it lazily
		// on the first out-of-domain key instead (usually never).
		cs.bReady = cs.bReady[:0]
		return
	}
	cs.sizeBatchMemo()
}

// sizeBatchMemo (re)sizes and clears the per-batch memo for bKeys.
func (cs *CountSketch) sizeBatchMemo() {
	n := len(cs.bKeys) * cs.depth
	if cap(cs.bOff) < n {
		cs.bOff = make([]int32, n)
		cs.bSign = make([]int8, n)
	}
	cs.bOff, cs.bSign = cs.bOff[:n], cs.bSign[:n]
	if cap(cs.bReady) < len(cs.bKeys) {
		cs.bReady = make([]bool, len(cs.bKeys))
	}
	cs.bReady = cs.bReady[:len(cs.bKeys)]
	for i := range cs.bReady {
		cs.bReady[i] = false
	}
}

// memo fills key ki's memo row on first use.
func (cs *CountSketch) memo(ki int32) {
	if len(cs.bReady) != len(cs.bKeys) {
		cs.sizeBatchMemo()
	}
	if cs.bReady[ki] {
		return
	}
	x := cs.bKeys[ki]
	base := int(ki) * cs.depth
	off := 0
	for r := 0; r < cs.depth; r++ {
		cs.bOff[base+r] = int32(off + int(cs.bucket[r].Range(x, uint64(cs.width))))
		cs.bSign[base+r] = int8(cs.sign[r].Sign(x))
		off += cs.width
	}
	cs.bReady[ki] = true
}

// AddBatched applies a[keys[ki]] += delta via the memos; identical to
// Add(keys[ki], delta). Dense-domain keys go through the persistent memo
// (no per-batch rehash); the rest use the per-batch memo.
func (cs *CountSketch) AddBatched(ki int32, delta int64) {
	if x := cs.bKeys[ki]; x < cs.domain {
		if cs.depth == 5 {
			c := &cs.dCell[x]
			if c.rdy == 0 {
				c = cs.fillDense5(x)
			}
			t := cs.table
			t[c.off[0]] += int64(c.sg[0]) * delta
			t[c.off[1]] += int64(c.sg[1]) * delta
			t[c.off[2]] += int64(c.sg[2]) * delta
			t[c.off[3]] += int64(c.sg[3]) * delta
			t[c.off[4]] += int64(c.sg[4]) * delta
			return
		}
		b := int(x) * cs.depth
		if !cs.dReady[x] {
			cs.fillDense(x, b)
		}
		cs.addMemo(cs.dOff[b:b+cs.depth:b+cs.depth], cs.dSign[b:b+cs.depth:b+cs.depth], delta)
		return
	}
	cs.memo(ki)
	base := int(ki) * cs.depth
	cs.addMemo(cs.bOff[base:base+cs.depth:base+cs.depth], cs.bSign[base:base+cs.depth:base+cs.depth], delta)
}

// EstimateBatched is Estimate(keys[ki]) via the memos.
func (cs *CountSketch) EstimateBatched(ki int32) int64 {
	if x := cs.bKeys[ki]; x < cs.domain {
		if cs.depth == 5 {
			c := &cs.dCell[x]
			if c.rdy == 0 {
				c = cs.fillDense5(x)
			}
			t := cs.table
			return median5(
				int64(c.sg[0])*t[c.off[0]],
				int64(c.sg[1])*t[c.off[1]],
				int64(c.sg[2])*t[c.off[2]],
				int64(c.sg[3])*t[c.off[3]],
				int64(c.sg[4])*t[c.off[4]],
			)
		}
		b := int(x) * cs.depth
		if !cs.dReady[x] {
			cs.fillDense(x, b)
		}
		return cs.estMemo(cs.dOff[b:b+cs.depth:b+cs.depth], cs.dSign[b:b+cs.depth:b+cs.depth])
	}
	cs.memo(ki)
	base := int(ki) * cs.depth
	return cs.estMemo(cs.bOff[base:base+cs.depth:base+cs.depth], cs.bSign[base:base+cs.depth:base+cs.depth])
}

// EndBatch leaves batched mode.
func (cs *CountSketch) EndBatch() { cs.bKeys = nil }

// F2Estimate estimates F2(a) as the median across rows of the row's sum of
// squared counters (each row is an AMS-style estimator when width ≥ 1; the
// sum of squared bucket totals is an unbiased F2 estimate under 4-wise
// signs).
func (cs *CountSketch) F2Estimate() float64 {
	sums := make([]float64, cs.depth)
	for r := 0; r < cs.depth; r++ {
		var s float64
		for _, c := range cs.row(r) {
			f := float64(c)
			s += f * f
		}
		sums[r] = s
	}
	sort.Float64s(sums)
	if cs.depth%2 == 1 {
		return sums[cs.depth/2]
	}
	return (sums[cs.depth/2-1] + sums[cs.depth/2]) / 2
}

// RowMaxAbs returns, for each row, the largest absolute counter value — a
// per-row proxy for L∞ of the sketched vector, used by the set-disjointness
// distinguisher (Section 5's L∞-via-L2 trick).
func (cs *CountSketch) RowMaxAbs() []int64 {
	out := make([]int64, cs.depth)
	for r := 0; r < cs.depth; r++ {
		var m int64
		for _, c := range cs.row(r) {
			if c < 0 {
				c = -c
			}
			if c > m {
				m = c
			}
		}
		out[r] = m
	}
	return out
}

// Depth and Width report the sketch dimensions.
func (cs *CountSketch) Depth() int { return cs.depth }
func (cs *CountSketch) Width() int { return cs.width }

// SpaceWords counts counters plus hash coefficients.
func (cs *CountSketch) SpaceWords() int {
	words := cs.depth*cs.width + 2
	for r := 0; r < cs.depth; r++ {
		words += cs.bucket[r].SpaceWords() + cs.sign[r].SpaceWords()
	}
	return words
}
