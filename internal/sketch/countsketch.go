package sketch

import (
	"fmt"
	"math/rand"
	"sort"

	"streamcover/internal/hash"
)

// CountSketch is the Charikar–Chen–Farach-Colton sketch: depth rows of
// width counters; each update x with weight Δ adds sign_r(x)·Δ to bucket
// bucket_r(x) in every row r. Point estimates take the median across rows,
// giving |est(x) − a[x]| ≤ √(F2(a)/width) per row with probability 2/3 and
// exponentially better after the median.
type CountSketch struct {
	depth, width int
	table        [][]int64
	bucket       []*hash.Poly // 2-wise bucket hash per row
	sign         []*hash.Poly // 4-wise sign hash per row

	// Per-batch hash memos (see BeginBatch): bucket index and sign per
	// (key, row), computed lazily on a key's first batched update. Purely
	// transient working memory — excluded from SpaceWords, never
	// serialized or merged.
	bKeys   []uint64
	bBucket []int32 // ki*depth + r
	bSign   []int8  // ki*depth + r
	bReady  []bool  // per key: memo row filled
}

// NewCountSketch builds a sketch with the given depth (number of
// independent rows, odd is best for medians) and width (counters per row).
func NewCountSketch(depth, width int, rng *rand.Rand) *CountSketch {
	if depth < 1 || width < 1 {
		panic(fmt.Sprintf("sketch: CountSketch depth %d width %d", depth, width))
	}
	cs := &CountSketch{
		depth:  depth,
		width:  width,
		table:  make([][]int64, depth),
		bucket: make([]*hash.Poly, depth),
		sign:   make([]*hash.Poly, depth),
	}
	for r := 0; r < depth; r++ {
		cs.table[r] = make([]int64, width)
		cs.bucket[r] = hash.NewPairwise(rng)
		cs.sign[r] = hash.New4Wise(rng)
	}
	return cs
}

// Add applies update a[x] += delta.
func (cs *CountSketch) Add(x uint64, delta int64) {
	for r := 0; r < cs.depth; r++ {
		b := cs.bucket[r].Range(x, uint64(cs.width))
		cs.table[r][b] += int64(cs.sign[r].Sign(x)) * delta
	}
}

// Estimate returns the median-of-rows point estimate of a[x]. It sits on
// the ingest hot path (every heavy-hitter admission and refresh calls it),
// so the median runs over a stack buffer with inline insertion sort
// rather than an allocated slice and sort.Slice's reflection.
func (cs *CountSketch) Estimate(x uint64) int64 {
	var buf [15]int64
	ests := buf[:0]
	if cs.depth > len(buf) {
		ests = make([]int64, 0, cs.depth)
	}
	for r := 0; r < cs.depth; r++ {
		b := cs.bucket[r].Range(x, uint64(cs.width))
		e := int64(cs.sign[r].Sign(x)) * cs.table[r][b]
		i := len(ests)
		ests = append(ests, e)
		for ; i > 0 && ests[i-1] > e; i-- {
			ests[i] = ests[i-1]
		}
		ests[i] = e
	}
	return ests[cs.depth/2]
}

// BeginBatch enters batched mode for a set of distinct keys: bucket
// indices and signs — pure functions of (key, row) — are memoized per key
// on first use, so repeated updates and estimates of the same key within
// the batch hash it once. Results are bit-identical to the scalar calls.
// The keys slice is only read and must stay valid until EndBatch.
func (cs *CountSketch) BeginBatch(keys []uint64) {
	cs.bKeys = keys
	n := len(keys) * cs.depth
	if cap(cs.bBucket) < n {
		cs.bBucket = make([]int32, n)
		cs.bSign = make([]int8, n)
	}
	cs.bBucket, cs.bSign = cs.bBucket[:n], cs.bSign[:n]
	if cap(cs.bReady) < len(keys) {
		cs.bReady = make([]bool, len(keys))
	}
	cs.bReady = cs.bReady[:len(keys)]
	for i := range cs.bReady {
		cs.bReady[i] = false
	}
}

// memo fills key ki's memo row on first use.
func (cs *CountSketch) memo(ki int32) {
	if cs.bReady[ki] {
		return
	}
	x := cs.bKeys[ki]
	base := int(ki) * cs.depth
	for r := 0; r < cs.depth; r++ {
		cs.bBucket[base+r] = int32(cs.bucket[r].Range(x, uint64(cs.width)))
		cs.bSign[base+r] = int8(cs.sign[r].Sign(x))
	}
	cs.bReady[ki] = true
}

// AddBatched applies a[keys[ki]] += delta via the batch memos; identical
// to Add(keys[ki], delta).
func (cs *CountSketch) AddBatched(ki int32, delta int64) {
	cs.memo(ki)
	base := int(ki) * cs.depth
	for r := 0; r < cs.depth; r++ {
		cs.table[r][cs.bBucket[base+r]] += int64(cs.bSign[base+r]) * delta
	}
}

// EstimateBatched is Estimate(keys[ki]) via the batch memos.
func (cs *CountSketch) EstimateBatched(ki int32) int64 {
	cs.memo(ki)
	var buf [15]int64
	ests := buf[:0]
	if cs.depth > len(buf) {
		ests = make([]int64, 0, cs.depth)
	}
	base := int(ki) * cs.depth
	for r := 0; r < cs.depth; r++ {
		e := int64(cs.bSign[base+r]) * cs.table[r][cs.bBucket[base+r]]
		i := len(ests)
		ests = append(ests, e)
		for ; i > 0 && ests[i-1] > e; i-- {
			ests[i] = ests[i-1]
		}
		ests[i] = e
	}
	return ests[cs.depth/2]
}

// EndBatch leaves batched mode.
func (cs *CountSketch) EndBatch() { cs.bKeys = nil }

// F2Estimate estimates F2(a) as the median across rows of the row's sum of
// squared counters (each row is an AMS-style estimator when width ≥ 1; the
// sum of squared bucket totals is an unbiased F2 estimate under 4-wise
// signs).
func (cs *CountSketch) F2Estimate() float64 {
	sums := make([]float64, cs.depth)
	for r := 0; r < cs.depth; r++ {
		var s float64
		for _, c := range cs.table[r] {
			f := float64(c)
			s += f * f
		}
		sums[r] = s
	}
	sort.Float64s(sums)
	if cs.depth%2 == 1 {
		return sums[cs.depth/2]
	}
	return (sums[cs.depth/2-1] + sums[cs.depth/2]) / 2
}

// RowMaxAbs returns, for each row, the largest absolute counter value — a
// per-row proxy for L∞ of the sketched vector, used by the set-disjointness
// distinguisher (Section 5's L∞-via-L2 trick).
func (cs *CountSketch) RowMaxAbs() []int64 {
	out := make([]int64, cs.depth)
	for r := 0; r < cs.depth; r++ {
		var m int64
		for _, c := range cs.table[r] {
			if c < 0 {
				c = -c
			}
			if c > m {
				m = c
			}
		}
		out[r] = m
	}
	return out
}

// Depth and Width report the sketch dimensions.
func (cs *CountSketch) Depth() int { return cs.depth }
func (cs *CountSketch) Width() int { return cs.width }

// SpaceWords counts counters plus hash coefficients.
func (cs *CountSketch) SpaceWords() int {
	words := cs.depth*cs.width + 2
	for r := 0; r < cs.depth; r++ {
		words += cs.bucket[r].SpaceWords() + cs.sign[r].SpaceWords()
	}
	return words
}
