// Package sketch implements the vector-sketching substrate the paper's
// algorithm is built on:
//
//   - L0 / distinct-element estimation (Theorem 2.12), as a bottom-k (KMV)
//     sketch — used by LargeCommon to measure the coverage of sampled set
//     collections and by LargeSetComplete to measure superset coverage.
//   - AMS F2 estimation (Alon–Matias–Szegedy), the second frequency moment,
//     used internally by the heavy-hitter machinery.
//   - F2 heavy hitters (Theorem 2.10): CountSketch plus an on-arrival
//     candidate dictionary, returning every φ-heavy coordinate with a
//     (1 ± 1/2)-approximate frequency.
//   - F2-contributing classes (Theorem 2.11, Indyk–Woodruff style): a
//     battery of subsampled heavy-hitter instances, one per guessed class
//     size 2^i, that surfaces a representative coordinate from every
//     γ-contributing class R_t = {j : 2^(t-1) < a[j] ≤ 2^t} with
//     |R_t|·2^(2t) ≥ γ·F2(a).
//
// All sketches are single-pass, insertion-only (CountSketch also accepts
// deletions), deterministic given their *rand.Rand, and report retained
// state via SpaceWords (see internal/spaceacct).
package sketch
