package sketch

import (
	"fmt"
	"math/rand"

	"streamcover/internal/hash"
)

// L0 is a bottom-k (KMV) distinct-elements sketch. It retains the k
// smallest distinct hash values seen; when fewer than k distinct keys have
// arrived the count is exact, otherwise the estimate is (k-1)·P/v_k where
// v_k is the k-th smallest hash value in [0, P).
//
// With k = Θ(1/ε²) the estimate is within (1±ε) with constant probability,
// which instantiates the (1 ± 1/2)-approximation L0-estimation primitive of
// Theorem 2.12 in Õ(1) space.
type L0 struct {
	h    *hash.Poly
	k    int
	vals maxHeap             // k smallest hash values, max at root
	seen map[uint64]struct{} // members of vals, for dedup
	adds uint64              // total updates fed (diagnostics only)
}

// NewL0 builds an L0 sketch with relative error target eps using a
// Θ(log(mn))-wise hash family for universe sizes m, n.
func NewL0(eps float64, m, n int, rng *rand.Rand) *L0 {
	return NewL0Deg(eps, hash.LogDegree(m, n), rng)
}

// NewL0Deg builds an L0 sketch whose hash is drawn from a deg-wise
// independent family (for callers that trade independence for speed).
func NewL0Deg(eps float64, deg int, rng *rand.Rand) *L0 {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("sketch: L0 eps %v out of (0,1)", eps))
	}
	k := int(4.0/(eps*eps)) + 1
	return &L0{
		h:    hash.NewPoly(deg, rng),
		k:    k,
		vals: make(maxHeap, 0, k),
		seen: make(map[uint64]struct{}, k),
	}
}

// Add feeds one key occurrence. Duplicate keys do not change the estimate.
func (s *L0) Add(x uint64) {
	s.adds++
	s.insertValue(s.h.Eval(x))
}

// Estimate returns the current distinct-count estimate.
func (s *L0) Estimate() float64 {
	if len(s.vals) < s.k {
		return float64(len(s.vals))
	}
	return float64(s.k-1) * float64(hash.Prime) / float64(s.vals[0])
}

// Adds reports how many updates have been fed (for tests/diagnostics).
func (s *L0) Adds() uint64 { return s.adds }

// SpaceWords reports retained state: hash coefficients plus one word per
// stored hash value (the dedup map mirrors the heap, counted once — a tight
// implementation stores the values once in a treap).
func (s *L0) SpaceWords() int { return s.h.SpaceWords() + len(s.vals) + 2 }

// maxHeap is a max-heap of uint64 for container/heap.
type maxHeap []uint64

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i] > h[j] }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
