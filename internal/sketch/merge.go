package sketch

import (
	"container/heap"
	"fmt"
)

// Mergeability: all three sketches are linear (CountSketch) or
// lattice-style (L0 bottom-k, HLL max-registers) summaries, so two
// sketches built with the SAME hash functions over disjoint (or even
// overlapping) substreams merge into the sketch of the combined stream.
// This is what lets the Section 5 one-way protocol forward state between
// players, and what makes the sketches usable for partitioned/distributed
// streams. Merging sketches with different hash functions is an error.

// Merge folds other into cs. Both must have identical dimensions and hash
// functions (i.e. be copies created from the same seed, or decoded from
// the same serialized ancestor).
func (cs *CountSketch) Merge(other *CountSketch) error {
	if other == nil || cs.depth != other.depth || cs.width != other.width {
		return fmt.Errorf("sketch: CountSketch dimension mismatch")
	}
	for r := 0; r < cs.depth; r++ {
		if !cs.bucket[r].Equal(other.bucket[r]) || !cs.sign[r].Equal(other.sign[r]) {
			return fmt.Errorf("sketch: CountSketch hash mismatch in row %d", r)
		}
	}
	for i, c := range other.table {
		cs.table[i] += c
	}
	return nil
}

// Merge folds other into s: the union's bottom-k is the bottom-k of the
// merged value sets. Both sketches must share the hash function and
// capacity.
func (s *L0) Merge(other *L0) error {
	if other == nil || s.k != other.k {
		return fmt.Errorf("sketch: L0 capacity mismatch")
	}
	if !s.h.Equal(other.h) {
		return fmt.Errorf("sketch: L0 hash mismatch")
	}
	for _, v := range other.vals {
		s.insertValue(v)
	}
	s.adds += other.adds
	return nil
}

// insertValue inserts a pre-hashed value into the bottom-k structure.
func (s *L0) insertValue(v uint64) {
	if _, ok := s.seen[v]; ok {
		return
	}
	if len(s.vals) < s.k {
		s.seen[v] = struct{}{}
		heap.Push(&s.vals, v)
		return
	}
	if v >= s.vals[0] {
		return
	}
	delete(s.seen, s.vals[0])
	s.seen[v] = struct{}{}
	s.vals[0] = v
	heap.Fix(&s.vals, 0)
}

// MergeDistinct folds b into a when both are the same distinct-counter
// implementation built from the same hash function.
func MergeDistinct(a, b DistinctCounter) error {
	switch x := a.(type) {
	case *L0:
		y, ok := b.(*L0)
		if !ok {
			return fmt.Errorf("sketch: cannot merge %T into *L0", b)
		}
		return x.Merge(y)
	case *HLL:
		y, ok := b.(*HLL)
		if !ok {
			return fmt.Errorf("sketch: cannot merge %T into *HLL", b)
		}
		return x.Merge(y)
	default:
		return fmt.Errorf("sketch: unmergeable distinct counter %T", a)
	}
}

// Merge folds other into hh: the CountSketches add, the totals add, and
// the candidate dictionaries union (trimmed back to capacity by post-merge
// estimates, so coordinates that are heavy in the combined stream keep
// their slots). The result matches a single sketch over the concatenated
// streams up to candidate-eviction timing; Report re-estimates weights
// from the merged CountSketch, so reported values are unaffected.
func (hh *HeavyHitters) Merge(other *HeavyHitters) error {
	if other == nil || hh.phi != other.phi || hh.cap != other.cap {
		return fmt.Errorf("sketch: HeavyHitters parameter mismatch")
	}
	if err := hh.cs.Merge(other.cs); err != nil {
		return err
	}
	hh.total += other.total
	// The table is sized strictly above 2·cap, so the union (≤ 2·cap
	// entries) fits before the trim below restores the invariant.
	for i, u := range other.used {
		if !u {
			continue
		}
		id := other.ids[i]
		if slot, ok := hh.findSlot(id); !ok {
			hh.insert(slot, id, hh.cs.Estimate(id))
		}
	}
	if hh.n > hh.cap {
		all := make([]hhKV, 0, hh.n)
		for i, u := range hh.used {
			if !u {
				continue
			}
			all = append(all, hhKV{id: hh.ids[i], est: hh.cs.Estimate(hh.ids[i])})
		}
		selectTopKV(all, hh.cap)
		clear(hh.used)
		hh.live = hh.live[:0]
		hh.n = 0
		for _, p := range all[:hh.cap] {
			slot, _ := hh.findSlot(p.id)
			hh.insert(slot, p.id, p.est)
		}
	}
	return nil
}

// Merge folds other into c level by level. Both batteries must have been
// built with the same parameters and seed (equal samplers).
func (c *Contributing) Merge(other *Contributing) error {
	if other == nil || c.gamma != other.gamma || len(c.levels) != len(other.levels) {
		return fmt.Errorf("sketch: Contributing parameter mismatch")
	}
	for i := range c.levels {
		if c.levels[i].rate != other.levels[i].rate ||
			!c.levels[i].sampler.Equal(other.levels[i].sampler) {
			return fmt.Errorf("sketch: Contributing level %d mismatch", i)
		}
	}
	for i := range c.levels {
		if err := c.levels[i].hh.Merge(other.levels[i].hh); err != nil {
			return fmt.Errorf("sketch: Contributing level %d: %w", i, err)
		}
	}
	return nil
}

// Merge folds other into s by register-wise maximum. Both sketches must
// share precision and hash function.
func (s *HLL) Merge(other *HLL) error {
	if other == nil || s.p != other.p {
		return fmt.Errorf("sketch: HLL precision mismatch")
	}
	if !s.h.Equal(other.h) {
		return fmt.Errorf("sketch: HLL hash mismatch")
	}
	for i, r := range other.regs {
		if r > s.regs[i] {
			s.regs[i] = r
		}
	}
	s.adds += other.adds
	return nil
}
