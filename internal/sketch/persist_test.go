package sketch

import (
	"bytes"
	"math/rand"
	"testing"
)

// loadedHH builds a heavy-hitter sketch from seed and feeds it a skewed
// stream so both the CountSketch tables and the candidate set are busy.
func loadedHH(seed int64, n int) *HeavyHitters {
	rng := rand.New(rand.NewSource(seed))
	hh := NewF2HeavyHitters(0.05, rng)
	feed := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < n; i++ {
		hh.Add(uint64(feed.Intn(40)) * 7)
	}
	return hh
}

func sameReport(t *testing.T, a, b []WeightedItem) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("report lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("report[%d] differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestHeavyHittersSnapshotRoundTrip(t *testing.T) {
	orig := loadedHH(7, 5000)
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dec := new(HeavyHitters)
	if err := dec.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	// Restore into a fresh same-seed (hence same-hash) construction.
	fresh := NewF2HeavyHitters(0.05, rand.New(rand.NewSource(7)))
	if err := fresh.Restore(dec); err != nil {
		t.Fatal(err)
	}
	// Re-encoding must be byte-identical: restore is exact, and the
	// candidate order is canonicalized.
	blob2, err := fresh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("restored sketch re-encodes differently")
	}
	// Future behavior must match the original exactly.
	feed := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		x := uint64(feed.Intn(60)) * 3
		orig.Add(x)
		fresh.Add(x)
	}
	sameReport(t, orig.Report(), fresh.Report())
	if orig.Total() != fresh.Total() || orig.F2Estimate() != fresh.F2Estimate() {
		t.Fatal("totals diverged after restore")
	}
}

func TestHeavyHittersRestoreRejectsOtherSeed(t *testing.T) {
	orig := loadedHH(7, 1000)
	blob, _ := orig.MarshalBinary()
	dec := new(HeavyHitters)
	if err := dec.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	other := NewF2HeavyHitters(0.05, rand.New(rand.NewSource(8)))
	if err := other.Restore(dec); err == nil {
		t.Fatal("restore into different-seed construction must fail")
	}
}

func TestHeavyHittersMarshalMidBatchFails(t *testing.T) {
	hh := loadedHH(3, 100)
	hh.BeginBatch([]uint64{1, 2, 3})
	if _, err := hh.MarshalBinary(); err == nil {
		t.Fatal("mid-batch marshal must fail")
	}
	hh.AddBatched(0)
	hh.EndBatch()
	if _, err := hh.MarshalBinary(); err != nil {
		t.Fatalf("post-batch marshal: %v", err)
	}
}

func TestHeavyHittersUnmarshalMalformed(t *testing.T) {
	blob, _ := loadedHH(5, 800).MarshalBinary()
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", blob[:10]},
		{"truncated body", blob[:len(blob)-5]},
		{"trailing garbage", append(append([]byte{}, blob...), 1, 2, 3)},
	} {
		dec := new(HeavyHitters)
		if err := dec.UnmarshalBinary(tc.data); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

func loadedContrib(seed int64, n int) *Contributing {
	rng := rand.New(rand.NewSource(seed))
	c := NewF2Contributing(0.1, 64, 1<<12, DefaultContribConfig(), rng)
	feed := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < n; i++ {
		c.Add(uint64(feed.Intn(200)))
	}
	return c
}

func TestContributingSnapshotRoundTrip(t *testing.T) {
	orig := loadedContrib(11, 4000)
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dec := new(Contributing)
	if err := dec.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	fresh := NewF2Contributing(0.1, 64, 1<<12, DefaultContribConfig(), rand.New(rand.NewSource(11)))
	if err := fresh.Restore(dec); err != nil {
		t.Fatal(err)
	}
	blob2, err := fresh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("restored battery re-encodes differently")
	}
	feed := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		x := uint64(feed.Intn(300))
		orig.Add(x)
		fresh.Add(x)
	}
	sameReport(t, orig.Report(), fresh.Report())
	if orig.SpaceWords() != fresh.SpaceWords() {
		t.Fatal("space accounting diverged after restore")
	}
}

func TestContributingRestoreRejectsOtherSeed(t *testing.T) {
	blob, _ := loadedContrib(11, 500).MarshalBinary()
	dec := new(Contributing)
	if err := dec.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	other := NewF2Contributing(0.1, 64, 1<<12, DefaultContribConfig(), rand.New(rand.NewSource(12)))
	if err := other.Restore(dec); err == nil {
		t.Fatal("restore into different-seed construction must fail")
	}
}

func TestContributingUnmarshalMalformed(t *testing.T) {
	blob, _ := loadedContrib(13, 600).MarshalBinary()
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", blob[:8]},
		{"truncated level", blob[:len(blob)/2]},
		{"trailing garbage", append(append([]byte{}, blob...), 0xff)},
	} {
		dec := new(Contributing)
		if err := dec.UnmarshalBinary(tc.data); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}
