package sketch

import (
	"math"
	"math/rand"
	"testing"
)

func TestHLLAccuracyAcrossCardinalities(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, distinct := range []int{100, 5000, 200000} {
		s := NewHLL(12, rng) // 4096 registers: ~1.6% std error
		for rep := 0; rep < 3; rep++ {
			for x := 0; x < distinct; x++ {
				s.Add(uint64(x))
			}
		}
		est := s.Estimate()
		if math.Abs(est-float64(distinct))/float64(distinct) > 0.10 {
			t.Errorf("distinct=%d: estimate %.0f off by more than 10%%", distinct, est)
		}
	}
}

func TestHLLEmpty(t *testing.T) {
	s := NewHLL(8, rand.New(rand.NewSource(2)))
	if est := s.Estimate(); est != 0 {
		t.Errorf("empty HLL estimate %v, want 0", est)
	}
}

func TestHLLSmallRangeCorrection(t *testing.T) {
	// Cardinalities far below the register count must be near-exact via
	// linear counting.
	s := NewHLL(12, rand.New(rand.NewSource(3)))
	for x := 0; x < 50; x++ {
		s.Add(uint64(x))
	}
	est := s.Estimate()
	if math.Abs(est-50) > 10 {
		t.Errorf("small-range estimate %.1f, want ~50", est)
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	s := NewHLL(10, rand.New(rand.NewSource(4)))
	for rep := 0; rep < 1000; rep++ {
		s.Add(7)
		s.Add(8)
	}
	if est := s.Estimate(); est > 10 {
		t.Errorf("2 distinct keys estimated as %.1f", est)
	}
	if s.Adds() != 2000 {
		t.Errorf("Adds() = %d", s.Adds())
	}
}

func TestHLLSpaceSmallerThanL0AtScale(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	hll := NewHLL(10, rng)               // 1024 regs packed -> ~130 words
	l0 := NewL0(0.05, 1<<20, 1<<20, rng) // bottom-k with k = 1601 words once full
	for x := 0; x < 100000; x++ {
		hll.Add(uint64(x))
		l0.Add(uint64(x))
	}
	if hll.SpaceWords() >= l0.SpaceWords() {
		t.Errorf("HLL %d words >= L0 %d words at comparable accuracy",
			hll.SpaceWords(), l0.SpaceWords())
	}
}

func TestHLLPanicsOnBadPrecision(t *testing.T) {
	for _, p := range []uint8{0, 3, 19} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHLL(%d) did not panic", p)
				}
			}()
			NewHLL(p, rand.New(rand.NewSource(1)))
		}()
	}
}

func TestDistinctCounterInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	counters := []DistinctCounter{NewHLL(10, rng), NewL0(0.25, 1000, 1000, rng)}
	for _, c := range counters {
		for x := 0; x < 1000; x++ {
			c.Add(uint64(x))
		}
		est := c.Estimate()
		if math.Abs(est-1000)/1000 > 0.3 {
			t.Errorf("%T estimate %.0f for 1000 distinct", c, est)
		}
		if c.SpaceWords() <= 0 {
			t.Errorf("%T space not positive", c)
		}
	}
}

func BenchmarkHLLAdd(b *testing.B) {
	s := NewHLL(12, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i))
	}
}
