package sketch

import (
	"math"
	"math/rand"
	"testing"
)

func TestF2Accuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewF2(0.2, 5, rng)
	var want float64
	for x := uint64(0); x < 2000; x++ {
		w := int64(1 + x%7)
		f.Add(x, w)
		want += float64(w) * float64(w)
	}
	est := f.Estimate()
	if math.Abs(est-want)/want > 0.25 {
		t.Errorf("Estimate() = %.0f, want %.0f within 25%%", est, want)
	}
}

func TestF2SingleHeavyCoordinate(t *testing.T) {
	// F2 of a 1-sparse vector is recovered exactly in expectation; with
	// signs s(x)^2 = 1 each counter is ±f so every Z^2 = f^2 exactly.
	f := NewF2(0.5, 3, rand.New(rand.NewSource(2)))
	f.Add(99, 1234)
	if est := f.Estimate(); est != 1234*1234 {
		t.Errorf("1-sparse Estimate() = %v, want %d", est, 1234*1234)
	}
}

func TestF2Deletions(t *testing.T) {
	f := NewF2(0.3, 5, rand.New(rand.NewSource(3)))
	f.Add(1, 100)
	f.Add(1, -100)
	if est := f.Estimate(); est != 0 {
		t.Errorf("cancelled vector Estimate() = %v, want 0", est)
	}
}

func TestF2EmptyIsZero(t *testing.T) {
	f := NewF2(0.3, 4, rand.New(rand.NewSource(4)))
	if est := f.Estimate(); est != 0 {
		t.Errorf("empty Estimate() = %v, want 0", est)
	}
}

func TestF2GroupsFloor(t *testing.T) {
	f := NewF2(0.5, 0, rand.New(rand.NewSource(5)))
	f.Add(1, 3)
	if est := f.Estimate(); est != 9 {
		t.Errorf("groups-floored Estimate() = %v, want 9", est)
	}
}

func TestF2PanicsOnBadEps(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewF2(eps=%v) did not panic", eps)
				}
			}()
			NewF2(eps, 3, rand.New(rand.NewSource(1)))
		}()
	}
}

func TestF2SpaceScalesWithEps(t *testing.T) {
	small := NewF2(0.5, 3, rand.New(rand.NewSource(6)))
	large := NewF2(0.1, 3, rand.New(rand.NewSource(7)))
	if small.SpaceWords() >= large.SpaceWords() {
		t.Errorf("space did not grow as eps shrank: %d vs %d",
			small.SpaceWords(), large.SpaceWords())
	}
}
