package sketch

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"streamcover/internal/hash"
)

// HLL is a HyperLogLog distinct-elements sketch: 2^p registers, each
// holding the maximum leading-zero rank seen among keys routed to it.
// The paper's Theorem 2.12 cites several L0 algorithms [5, 11, 13, 30,
// 31]; the repository ships two implementations with different
// space/accuracy profiles — the bottom-k L0 (exact under capacity,
// 1/√k error above) and this one (≈1.04/√(2^p) error, 2^p registers
// packed at one word per 8). Experiment E20 compares them; the core
// algorithm can run on either via the DistinctCounter interface.
type HLL struct {
	p    uint8 // precision: 2^p registers
	regs []uint8
	h    *hash.Poly
	adds uint64
}

// DistinctCounter is the streaming distinct-count contract both L0
// implementations satisfy.
type DistinctCounter interface {
	Add(x uint64)
	Estimate() float64
	SpaceWords() int
}

var (
	_ DistinctCounter = (*L0)(nil)
	_ DistinctCounter = (*HLL)(nil)
)

// NewHLL builds a HyperLogLog with precision p ∈ [4, 18].
func NewHLL(p uint8, rng *rand.Rand) *HLL {
	if p < 4 || p > 18 {
		panic(fmt.Sprintf("sketch: HLL precision %d out of [4,18]", p))
	}
	return &HLL{
		p:    p,
		regs: make([]uint8, 1<<p),
		h:    hash.NewLogWise(1<<20, 1<<20, rng),
	}
}

// Add feeds one key occurrence; duplicates do not change the estimate.
func (s *HLL) Add(x uint64) {
	s.adds++
	// Spread the 61-bit field value to 64 bits by multiplying into the
	// high bits, then split register index / rank.
	hv := s.h.Eval(x) << 3
	idx := hv >> (64 - s.p)
	rest := hv << s.p
	rank := uint8(bits.LeadingZeros64(rest|1)) + 1
	if rank > s.regs[idx] {
		s.regs[idx] = rank
	}
}

// Estimate returns the distinct-count estimate with the standard
// small-range (linear counting) correction.
func (s *HLL) Estimate() float64 {
	m := float64(int(1) << s.p)
	var sum float64
	zeros := 0
	for _, r := range s.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros)) // linear counting
	}
	return est
}

// Adds reports how many updates were fed (diagnostics).
func (s *HLL) Adds() uint64 { return s.adds }

// SpaceWords packs eight 8-bit registers per 64-bit word, plus the hash.
func (s *HLL) SpaceWords() int {
	return (len(s.regs)+7)/8 + s.h.SpaceWords() + 1
}
