package sketch

import (
	"math/rand"
	"reflect"
	"testing"
)

// batchStream builds a skewed occurrence stream over a small key space —
// the shape the LargeSet subroutine feeds these sketches (superset IDs
// with heavy repetition) — returning the distinct keys and the occurrence
// sequence as indices into them.
func batchStream(nOcc int, universe int, rng *rand.Rand) (keys []uint64, occ []int32, raw []uint64) {
	idx := make(map[uint64]int32)
	for i := 0; i < nOcc; i++ {
		var x uint64
		if rng.Intn(4) == 0 {
			x = uint64(rng.Intn(universe)) // light tail
		} else {
			x = uint64(rng.Intn(universe / 8)) // heavy head
		}
		ki, ok := idx[x]
		if !ok {
			ki = int32(len(keys))
			idx[x] = ki
			keys = append(keys, x)
		}
		occ = append(occ, ki)
		raw = append(raw, x)
	}
	return
}

// TestHeavyHittersBatchEquivalence drives identically-seeded sketches
// through the scalar and batched paths (batches split at random
// boundaries) and requires identical internal state: counters, candidate
// table with priorities, totals, and reports.
func TestHeavyHittersBatchEquivalence(t *testing.T) {
	for _, phi := range []float64{0.5, 0.05, 0.005} {
		rng := rand.New(rand.NewSource(11))
		keys, occ, raw := batchStream(20000, 400, rng)

		seq := NewF2HeavyHitters(phi, rand.New(rand.NewSource(5)))
		bat := NewF2HeavyHitters(phi, rand.New(rand.NewSource(5)))
		for _, x := range raw {
			seq.Add(x)
		}
		for start := 0; start < len(occ); {
			end := start + rng.Intn(len(occ)-start+1)
			bat.BeginBatch(keys)
			for _, ki := range occ[start:end] {
				bat.AddBatched(ki)
			}
			bat.EndBatch()
			start = end
		}

		if seq.total != bat.total {
			t.Errorf("phi=%v: total %d != %d", phi, seq.total, bat.total)
		}
		if !reflect.DeepEqual(seq.cs.table, bat.cs.table) {
			t.Errorf("phi=%v: CountSketch counters diverged", phi)
		}
		if !reflect.DeepEqual(seq.candMap(), bat.candMap()) {
			t.Errorf("phi=%v: candidate tables diverged:\n seq %v\n bat %v", phi, seq.candMap(), bat.candMap())
		}
		if !reflect.DeepEqual(seq.Report(), bat.Report()) {
			t.Errorf("phi=%v: reports diverged", phi)
		}
	}
}

// TestCountSketchBatchEquivalence checks the memoized batch entry points
// against their scalar counterparts on shared state.
func TestCountSketchBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys, occ, _ := batchStream(5000, 300, rng)
	seq := NewCountSketch(5, 64, rand.New(rand.NewSource(9)))
	bat := NewCountSketch(5, 64, rand.New(rand.NewSource(9)))

	bat.BeginBatch(keys)
	for _, ki := range occ {
		seq.Add(keys[ki], int64(ki%7)-3)
		bat.AddBatched(ki, int64(ki%7)-3)
	}
	for _, ki := range occ[:500] {
		if a, b := seq.Estimate(keys[ki]), bat.EstimateBatched(ki); a != b {
			t.Fatalf("estimate for key %d: scalar %d batch %d", keys[ki], a, b)
		}
	}
	bat.EndBatch()
	if !reflect.DeepEqual(seq.table, bat.table) {
		t.Error("counters diverged")
	}
}

// TestContributingBatchEquivalence covers the full battery: levels with
// rate ≥ 1 and subsampled levels, across random batch splits.
func TestContributingBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	keys, occ, raw := batchStream(30000, 600, rng)

	cfg := DefaultContribConfig()
	seq := NewF2Contributing(0.05, 64, 600, cfg, rand.New(rand.NewSource(23)))
	bat := NewF2Contributing(0.05, 64, 600, cfg, rand.New(rand.NewSource(23)))
	for _, x := range raw {
		seq.Add(x)
	}
	for start := 0; start < len(occ); {
		end := start + rng.Intn(len(occ)-start+1)
		bat.AddBatch(keys, occ[start:end])
		start = end
	}

	for i := range seq.levels {
		a, b := seq.levels[i].hh, bat.levels[i].hh
		if a.total != b.total {
			t.Errorf("level %d: total %d != %d", i, a.total, b.total)
		}
		if !reflect.DeepEqual(a.cs.table, b.cs.table) {
			t.Errorf("level %d: counters diverged", i)
		}
		if !reflect.DeepEqual(a.candMap(), b.candMap()) {
			t.Errorf("level %d: candidate tables diverged", i)
		}
	}
	if !reflect.DeepEqual(seq.Report(), bat.Report()) {
		t.Error("reports diverged")
	}
}
