package sketch

import (
	"math/rand"
	"sort"
	"testing"
)

// TestMedian5Exhaustive cross-checks the selection network against a full
// sort over every 5-tuple from a small value alphabet (duplicates
// included), which covers all relative orderings.
func TestMedian5Exhaustive(t *testing.T) {
	vals := []int64{-2, -1, 0, 1, 2}
	var tup [5]int64
	var rec func(d int)
	rec = func(d int) {
		if d == 5 {
			sorted := append([]int64(nil), tup[:]...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			want := sorted[2]
			if got := median5(tup[0], tup[1], tup[2], tup[3], tup[4]); got != want {
				t.Fatalf("median5(%v) = %d, want %d", tup, got, want)
			}
			return
		}
		for _, v := range vals {
			tup[d] = v
			rec(d + 1)
		}
	}
	rec(0)
}

// TestSelectTopKV checks that quickselect places exactly the top-k set
// (under the estimate-desc/id-asc total order) in the prefix, against a
// full sort, across sizes spanning the insertion-sort cutoff, duplicate
// estimates, and every k.
func TestSelectTopKV(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{1, 2, 5, 15, 16, 17, 33, 84, 257, 1000} {
		for trial := 0; trial < 8; trial++ {
			base := make([]hhKV, n)
			for i := range base {
				base[i] = hhKV{id: uint64(i), est: int64(rng.Intn(n/4 + 2))}
			}
			rng.Shuffle(n, func(i, j int) { base[i], base[j] = base[j], base[i] })
			sorted := append([]hhKV(nil), base...)
			sort.Sort(hhKVs(sorted))
			for _, k := range []int{0, 1, n / 3, n / 2, n - 1, n} {
				got := append([]hhKV(nil), base...)
				selectTopKV(got, k)
				want := map[uint64]bool{}
				for _, kv := range sorted[:k] {
					want[kv.id] = true
				}
				for _, kv := range got[:k] {
					if !want[kv.id] {
						t.Fatalf("n=%d k=%d: id %d (est %d) in prefix but not in top-k",
							n, k, kv.id, kv.est)
					}
					delete(want, kv.id)
				}
				if len(want) != 0 {
					t.Fatalf("n=%d k=%d: %d top-k ids missing from prefix", n, k, len(want))
				}
			}
		}
	}
}
