package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// WeightedItem is a reported coordinate together with its approximate
// frequency.
type WeightedItem struct {
	ID     uint64
	Weight float64 // (1 ± 1/2)-approximate frequency a[ID]
}

// HeavyHitters finds the φ-heavy hitters of F2: coordinates j with
// a[j]² ≥ φ·F2(a). It instantiates Theorem 2.10 for insertion-only
// streams: a CountSketch provides (1±1/2)-accurate point estimates, and a
// candidate dictionary of capacity O(1/φ) is maintained on arrival — every
// update re-estimates its own coordinate and competes for a slot, so any
// coordinate that is heavy at the end of the stream occupies a slot (its
// last occurrence finds its estimate already above every light candidate).
type HeavyHitters struct {
	phi   float64
	cs    *CountSketch
	cand  map[uint64]int64 // candidate id -> eviction priority (see Add)
	cap   int
	total int64 // number of updates (weight 1 each)
}

// NewF2HeavyHitters builds a heavy-hitter sketch with threshold phi for a
// stream of unit-weight updates over an arbitrary uint64 key space.
func NewF2HeavyHitters(phi float64, rng *rand.Rand) *HeavyHitters {
	if phi <= 0 || phi > 1 {
		panic(fmt.Sprintf("sketch: HeavyHitters phi %v out of (0,1]", phi))
	}
	// Per-row error is √(F2/width); we need genuinely heavy coordinates
	// (a[j] ≥ √(φF2) = √(φ·width)·σ) to clear the extreme-value noise
	// ceiling σ·√(2·ln width) that Report gates on, which needs
	// φ·width ≳ 2·ln width with slack. width = 24/φ gives √(φ·width) ≈ 4.9
	// against a gate of ~√(2·ln width) ≈ 3.3–4.5 at practical widths.
	width := int(24.0/phi) + 1
	depth := 5
	capacity := int(4.0/phi) + 4
	return &HeavyHitters{
		phi:  phi,
		cs:   NewCountSketch(depth, width, rng),
		cand: make(map[uint64]int64, capacity),
		cap:  capacity,
	}
}

// Add feeds one unit-weight occurrence of key x. Resident candidates take
// a cheap path (their priority is bumped by one, tracking frequency
// accrued while resident); sketch point estimates are computed only when
// a new key competes for a full table, and authoritative weights are
// re-estimated from the sketch at Report time.
func (hh *HeavyHitters) Add(x uint64) {
	hh.total++
	hh.cs.Add(x, 1)
	if p, ok := hh.cand[x]; ok {
		hh.cand[x] = p + 1
		return
	}
	if len(hh.cand) < hh.cap {
		hh.cand[x] = hh.cs.Estimate(x)
		return
	}
	// Table full: refresh every candidate's priority from the sketch and
	// evict the weaker half in one batch, then admit x. The O(cap·log cap)
	// scan runs once per cap/2 admissions, so admission cost is amortized
	// O(log cap); heavy coordinates always survive the batch because their
	// refreshed estimates rank in the top half.
	type kv struct {
		id  uint64
		est int64
	}
	all := make([]kv, 0, len(hh.cand))
	for id := range hh.cand {
		all = append(all, kv{id, hh.cs.Estimate(id)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].est > all[j].est })
	hh.cand = make(map[uint64]int64, hh.cap)
	for _, p := range all[:hh.cap/2] {
		hh.cand[p.id] = p.est
	}
	hh.cand[x] = hh.cs.Estimate(x)
}

// Total reports the number of updates fed.
func (hh *HeavyHitters) Total() int64 { return hh.total }

// F2Estimate exposes the underlying sketch's F2 estimate.
func (hh *HeavyHitters) F2Estimate() float64 { return hh.cs.F2Estimate() }

// Report returns every candidate whose estimated frequency squared clears
// the φ threshold against the estimated F2 AND whose estimate exceeds the
// sketch's extreme-value noise ceiling σ·√(2·ln width) (σ = per-bucket
// noise √(F2/width)). Without the ceiling, streams with many
// unit-frequency keys elect the largest noise fluctuation as a phantom
// heavy hitter — exactly the failure the set-disjointness hard instances
// provoke. Reported frequencies are (1 ± 1/2)-approximate as Theorem 2.10
// promises.
func (hh *HeavyHitters) Report() []WeightedItem {
	f2 := hh.cs.F2Estimate()
	thresh := hh.phi * f2
	noise := hh.NoiseCeiling()
	var out []WeightedItem
	for id := range hh.cand {
		est := float64(hh.cs.Estimate(id))
		if est > 0 && est*est >= thresh/4 && est >= noise {
			// /4 slack on the φ test: estimates may be off by 1/2 relative.
			out = append(out, WeightedItem{ID: id, Weight: est})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Estimate exposes the point estimate for a specific key.
func (hh *HeavyHitters) Estimate(x uint64) int64 { return hh.cs.Estimate(x) }

// NoiseCeiling is the expected magnitude of the largest pure-noise point
// estimate: per-bucket standard deviation √(F2/width) inflated by the
// extreme-value factor √(2·ln width).
func (hh *HeavyHitters) NoiseCeiling() float64 {
	w := float64(hh.cs.Width())
	if w < 2 {
		w = 2
	}
	f2 := hh.cs.F2Estimate()
	if f2 < 1 {
		f2 = 1
	}
	return math.Sqrt(f2/w) * math.Sqrt(2*math.Log(w))
}

// SpaceWords counts the CountSketch plus two words per candidate slot.
func (hh *HeavyHitters) SpaceWords() int {
	return hh.cs.SpaceWords() + 2*hh.cap + 2
}
