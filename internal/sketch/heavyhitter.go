package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// WeightedItem is a reported coordinate together with its approximate
// frequency.
type WeightedItem struct {
	ID     uint64
	Weight float64 // (1 ± 1/2)-approximate frequency a[ID]
}

// HeavyHitters finds the φ-heavy hitters of F2: coordinates j with
// a[j]² ≥ φ·F2(a). It instantiates Theorem 2.10 for insertion-only
// streams: a CountSketch provides (1±1/2)-accurate point estimates, and a
// candidate dictionary of capacity O(1/φ) is maintained on arrival — every
// update re-estimates its own coordinate and competes for a slot, so any
// coordinate that is heavy at the end of the stream occupies a slot (its
// last occurrence finds its estimate already above every light candidate).
//
// The candidate dictionary is an open-addressed linear-probing table
// rather than a Go map: the per-update lookup is the single hottest
// operation in the whole estimator, candidates are only ever deleted
// wholesale (refreshEvict rebuilds the table), and every consumer of the
// candidate SET orders it deterministically before acting — so slot
// layout is never observable and no tombstones are needed.
type HeavyHitters struct {
	phi   float64
	cs    *CountSketch
	cap   int
	total int64 // number of updates (weight 1 each)

	// Open-addressed candidate table, power-of-two size > 2·cap (a merge
	// may briefly hold up to 2·cap entries before trimming). used/ids/pri
	// are the table proper; ki/kiEp attach a batch key index to a slot,
	// valid only while kiEp matches the current batch epoch, so refreshes
	// during a batch can estimate through the CountSketch memos without a
	// per-batch key→index map.
	ids  []uint64
	pri  []int64
	used []bool
	ki   []int32
	kiEp []uint32
	mask uint64
	n    int     // live candidates
	live []int32 // occupied slots, insertion order — refreshes iterate this
	// instead of scanning the whole table; rebuilt on every refresh/trim.
	// Iteration order feeds the refresh quickselect, whose survivor SET is
	// order-independent (the order is strict), so only the unobservable
	// slot layout depends on it.

	// Transient batch/refresh working memory (see BeginBatch). None of it
	// survives a batch or refresh, so it is excluded from SpaceWords, never
	// serialized, and never merged.
	epoch       uint32 // monotone batch counter; slot tags from older batches never match
	refresh     []hhKV
	batchKeys   []uint64
	pending     []int64 // deferred CountSketch deltas, indexed like batchKeys
	touched     []int32 // indices with pending[i] != 0
	bump        []int64 // deferred priority bumps for resident keys
	bumpTouched []int32 // indices with bump[i] != 0

	// Residency cache: key ki is known resident iff residentEp[ki] == resEp.
	// Bumping resEp invalidates every entry in O(1) — batch starts and
	// refreshes would otherwise clear O(keys) flags each. resEp is uint64 so
	// it never wraps; fresh (zeroed) entries never match because resEp ≥ 1
	// from the first batch on.
	resEp      uint64
	residentEp []uint64 // per key: resEp value at which residency was recorded
	slot       []int32  // per key: candidate slot, valid while resident
}

type hhKV struct {
	id  uint64
	est int64
	ki  int32 // carried through refreshes so memoized estimates survive
	ep  uint32
}

// kvLess is the deterministic total order of refresh/eviction: estimate
// descending, id ascending (ids are unique, so this is strict).
func kvLess(a, b hhKV) bool {
	if a.est != b.est {
		return a.est > b.est
	}
	return a.id < b.id
}

// hhKVs sorts by kvLess (concrete type: this sort runs on the ingest hot
// path and sort.Slice's reflection-based swaps were measurable).
type hhKVs []hhKV

func (s hhKVs) Len() int           { return len(s) }
func (s hhKVs) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s hhKVs) Less(i, j int) bool { return kvLess(s[i], s[j]) }

// NewF2HeavyHitters builds a heavy-hitter sketch with threshold phi for a
// stream of unit-weight updates over an arbitrary uint64 key space.
func NewF2HeavyHitters(phi float64, rng *rand.Rand) *HeavyHitters {
	if phi <= 0 || phi > 1 {
		panic(fmt.Sprintf("sketch: HeavyHitters phi %v out of (0,1]", phi))
	}
	// Per-row error is √(F2/width); we need genuinely heavy coordinates
	// (a[j] ≥ √(φF2) = √(φ·width)·σ) to clear the extreme-value noise
	// ceiling σ·√(2·ln width) that Report gates on, which needs
	// φ·width ≳ 2·ln width with slack. width = 24/φ gives √(φ·width) ≈ 4.9
	// against a gate of ~√(2·ln width) ≈ 3.3–4.5 at practical widths.
	width := int(24.0/phi) + 1
	depth := 5
	capacity := int(4.0/phi) + 4
	hh := &HeavyHitters{
		phi: phi,
		cs:  NewCountSketch(depth, width, rng),
		cap: capacity,
	}
	hh.initTable()
	return hh
}

// EnableDenseDomain declares that (almost) every key fed to this sketch
// lies in [0, n); the underlying CountSketch then memoizes each key's hash
// row once over the sketch's lifetime. Bit-identical; see
// CountSketch.EnableDenseDomain.
func (hh *HeavyHitters) EnableDenseDomain(n int) { hh.cs.EnableDenseDomain(n) }

// initTable (re)allocates the candidate table for hh.cap.
func (hh *HeavyHitters) initTable() {
	size := 8
	for size <= 2*hh.cap {
		size *= 2
	}
	hh.ids = make([]uint64, size)
	hh.pri = make([]int64, size)
	hh.used = make([]bool, size)
	hh.ki = make([]int32, size)
	hh.kiEp = make([]uint32, size)
	hh.live = make([]int32, 0, size)
	hh.mask = uint64(size - 1)
	hh.n = 0
}

// hhMix is the slot hash (Murmur3 finalizer-style avalanche).
func hhMix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// findSlot probes for id, returning its slot if present or the empty slot
// where it would be inserted.
func (hh *HeavyHitters) findSlot(id uint64) (int, bool) {
	i := hhMix(id) & hh.mask
	for hh.used[i] {
		if hh.ids[i] == id {
			return int(i), true
		}
		i = (i + 1) & hh.mask
	}
	return int(i), false
}

// insert fills an empty slot (from findSlot) with a new candidate. The
// slot's batch-index tag is invalidated; callers that know the batch index
// overwrite it.
func (hh *HeavyHitters) insert(slot int, id uint64, pri int64) {
	hh.used[slot] = true
	hh.ids[slot] = id
	hh.pri[slot] = pri
	hh.kiEp[slot] = 0
	hh.live = append(hh.live, int32(slot))
	hh.n++
}

// candMap materializes the candidate set as id → priority (tests and
// non-hot consumers; slot layout is representation, this is the state).
func (hh *HeavyHitters) candMap() map[uint64]int64 {
	out := make(map[uint64]int64, hh.n)
	for i, u := range hh.used {
		if u {
			out[hh.ids[i]] = hh.pri[i]
		}
	}
	return out
}

// Add feeds one unit-weight occurrence of key x. Resident candidates take
// a cheap path (their priority is bumped by one, tracking frequency
// accrued while resident); sketch point estimates are computed only when
// a new key competes for a full table, and authoritative weights are
// re-estimated from the sketch at Report time.
func (hh *HeavyHitters) Add(x uint64) {
	hh.total++
	hh.cs.Add(x, 1)
	if i, ok := hh.findSlot(x); ok {
		hh.pri[i]++
		return
	}
	hh.admit(x)
}

// admit inserts non-resident x into the candidate table. When the table is
// full it refreshes every candidate's priority from the sketch and evicts
// the weaker half in one batch first. The O(cap) selection runs once per
// cap/2 admissions, so admission cost is amortized O(1); heavy coordinates
// always survive the batch because their refreshed estimates rank in the
// top half. Ties break on id so the surviving half is deterministic.
func (hh *HeavyHitters) admit(x uint64) {
	if hh.n >= hh.cap {
		hh.refreshEvict()
	}
	slot, _ := hh.findSlot(x)
	hh.insert(slot, x, hh.cs.Estimate(x))
}

// refreshEvict re-estimates every candidate from the sketch and keeps the
// stronger half — the SET of survivors under the (estimate desc, id asc)
// total order, found by quickselect rather than a full sort; since the
// table is unordered the survivor set is all that matters. It also
// invalidates the batch path's residency cache: evictions change who is
// resident. During a batch, candidates touched this batch carry their
// batch key index and estimate through the CountSketch memos; the rest
// fall back to the scalar path — same values either way.
func (hh *HeavyHitters) refreshEvict() {
	all := hh.refresh[:0]
	if hh.cs.domain > 0 {
		// Dense-domain mode: the batch-tagged and scalar estimate routes
		// converge on the same persistent per-key memo, so the tag
		// bookkeeping selects between identical values — skip it. Slot tags
		// left stale by the rebuild are never read in this mode.
		for _, si := range hh.live {
			id := hh.ids[si]
			all = append(all, hhKV{id: id, est: hh.cs.Estimate(id)})
		}
		keep := hh.cap / 2
		selectTopKV(all, keep)
		hh.refresh = all
		clear(hh.used)
		hh.live = hh.live[:0]
		hh.n = 0
		for _, p := range all[:keep] {
			slot, _ := hh.findSlot(p.id)
			hh.insert(slot, p.id, p.est)
		}
		hh.resEp++ // invalidate the residency cache: evictions changed who is resident
		return
	}
	inBatch := hh.batchKeys != nil
	ep := hh.epoch
	for _, si := range hh.live {
		id := hh.ids[si]
		var est int64
		// The key equality re-check makes a stale tag (epoch wraparound)
		// harmless: a wrong ki can never alias another key's memo.
		if k := hh.ki[si]; inBatch && hh.kiEp[si] == ep &&
			int(k) < len(hh.batchKeys) && hh.batchKeys[k] == id {
			est = hh.cs.EstimateBatched(k)
		} else {
			est = hh.cs.Estimate(id)
		}
		all = append(all, hhKV{id: id, est: est, ki: hh.ki[si], ep: hh.kiEp[si]})
	}
	keep := hh.cap / 2
	selectTopKV(all, keep)
	hh.refresh = all
	clear(hh.used)
	hh.live = hh.live[:0]
	hh.n = 0
	for _, p := range all[:keep] {
		slot, _ := hh.findSlot(p.id)
		hh.insert(slot, p.id, p.est)
		hh.ki[slot], hh.kiEp[slot] = p.ki, p.ep
	}
	hh.resEp++ // invalidate the residency cache: evictions changed who is resident
}

// selectTopKV partially orders a so that a[:k] holds the k strongest
// entries under kvLess (in unspecified internal order): a median-of-three
// Hoare quickselect with an insertion-sort tail. The order is strict (ids
// are unique), so the selected set is deterministic.
func selectTopKV(a []hhKV, k int) {
	if k <= 0 || k >= len(a) {
		return
	}
	lo, hi := 0, len(a)-1
	kk := k - 1 // last index that must land in the strong half
	for {
		if hi-lo < 16 {
			for i := lo + 1; i <= hi; i++ {
				kv := a[i]
				j := i
				for ; j > lo && kvLess(kv, a[j-1]); j-- {
					a[j] = a[j-1]
				}
				a[j] = kv
			}
			return
		}
		mid := lo + (hi-lo)/2
		if kvLess(a[mid], a[lo]) {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if kvLess(a[hi], a[lo]) {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if kvLess(a[hi], a[mid]) {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for kvLess(a[i], pivot) {
				i++
			}
			for kvLess(pivot, a[j]) {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		// a[lo..j] are strong, a[i..hi] weak, anything between equals the
		// pivot (a single element under a strict order).
		if kk <= j {
			hi = j
		} else if kk >= i {
			lo = i
		} else {
			return
		}
	}
}

// BeginBatch enters deferred-update mode for a batch whose occurrences are
// indices into keys (one entry per distinct key). While a batch is open:
//
//   - CountSketch deltas accumulate per distinct key (the counters are
//     plain sums, so flushing the total in one update per key is
//     bit-identical) and the sketch memoizes each key's bucket/sign row
//     on first use, so a key is hashed once per batch, not per update.
//   - Priority bumps for keys known to be resident accumulate per key and
//     are flushed before any event that could read or evict them.
//
// Deferred deltas are flushed before every point estimate (admissions and
// refreshes), so every estimate observes exactly the counters the
// per-occurrence path would have; deferred bumps are flushed before every
// refresh, and a refresh resets the residency cache, so the candidate
// table evolves identically to the per-occurrence path. The keys slice is
// only read; it must stay valid until EndBatch.
func (hh *HeavyHitters) BeginBatch(keys []uint64) {
	hh.batchKeys = keys
	hh.epoch++
	if hh.epoch == 0 {
		hh.epoch = 1
	}
	hh.cs.BeginBatch(keys)
	if cap(hh.pending) < len(keys) {
		hh.pending = make([]int64, len(keys))
		hh.bump = make([]int64, len(keys))
	}
	// Invariant: every entry of the backing arrays is zero between batches
	// (the flushes re-zero what they visit), so no clearing needed.
	hh.pending = hh.pending[:len(keys)]
	hh.bump = hh.bump[:len(keys)]
	hh.touched = hh.touched[:0]
	hh.bumpTouched = hh.bumpTouched[:0]
	if cap(hh.residentEp) < len(keys) {
		hh.residentEp = make([]uint64, len(keys))
		hh.slot = make([]int32, len(keys))
	}
	hh.residentEp = hh.residentEp[:len(keys)]
	hh.slot = hh.slot[:len(keys)]
	hh.resEp++ // invalidate residency carried over from the previous batch
}

// AddBatched feeds one occurrence of batchKeys[ki]; identical to
// Add(batchKeys[ki]) given the flush discipline above.
func (hh *HeavyHitters) AddBatched(ki int32) {
	hh.total++
	if hh.pending[ki] == 0 {
		hh.touched = append(hh.touched, ki)
	}
	hh.pending[ki]++
	if hh.residentEp[ki] == hh.resEp {
		if hh.bump[ki] == 0 {
			hh.bumpTouched = append(hh.bumpTouched, ki)
		}
		hh.bump[ki]++
		return
	}
	x := hh.batchKeys[ki]
	slot, ok := hh.findSlot(x)
	if ok {
		hh.pri[slot]++
		hh.ki[slot], hh.kiEp[slot] = ki, hh.epoch
		hh.residentEp[ki] = hh.resEp
		hh.slot[ki] = int32(slot)
		return
	}
	hh.flushPending()
	hh.flushBumps()
	if hh.n >= hh.cap {
		hh.refreshEvict()
		slot, _ = hh.findSlot(x)
	}
	// The flushes touch only counters and priorities, so slot stays the
	// insertion point unless the refresh rebuilt the table.
	hh.insert(slot, x, hh.cs.EstimateBatched(ki))
	hh.ki[slot], hh.kiEp[slot] = ki, hh.epoch
	hh.residentEp[ki] = hh.resEp
	hh.slot[ki] = int32(slot)
}

func (hh *HeavyHitters) flushPending() {
	for _, ki := range hh.touched {
		hh.cs.AddBatched(ki, hh.pending[ki])
		hh.pending[ki] = 0
	}
	hh.touched = hh.touched[:0]
}

// flushBumps applies deferred priority bumps. Every bumped key is still
// resident (bumps only accrue while resident, and residency changes only
// at refreshes, which flush first), so its recorded slot is still valid.
func (hh *HeavyHitters) flushBumps() {
	for _, ki := range hh.bumpTouched {
		hh.pri[hh.slot[ki]] += hh.bump[ki]
		hh.bump[ki] = 0
	}
	hh.bumpTouched = hh.bumpTouched[:0]
}

// EndBatch flushes remaining deferred state and leaves batch mode.
func (hh *HeavyHitters) EndBatch() {
	hh.flushPending()
	hh.flushBumps()
	hh.cs.EndBatch()
	hh.batchKeys = nil
}

// Total reports the number of updates fed.
func (hh *HeavyHitters) Total() int64 { return hh.total }

// F2Estimate exposes the underlying sketch's F2 estimate.
func (hh *HeavyHitters) F2Estimate() float64 { return hh.cs.F2Estimate() }

// Report returns every candidate whose estimated frequency squared clears
// the φ threshold against the estimated F2 AND whose estimate exceeds the
// sketch's extreme-value noise ceiling σ·√(2·ln width) (σ = per-bucket
// noise √(F2/width)). Without the ceiling, streams with many
// unit-frequency keys elect the largest noise fluctuation as a phantom
// heavy hitter — exactly the failure the set-disjointness hard instances
// provoke. Reported frequencies are (1 ± 1/2)-approximate as Theorem 2.10
// promises.
func (hh *HeavyHitters) Report() []WeightedItem {
	f2 := hh.cs.F2Estimate()
	thresh := hh.phi * f2
	noise := hh.NoiseCeiling()
	var out []WeightedItem
	for i, u := range hh.used {
		if !u {
			continue
		}
		id := hh.ids[i]
		est := float64(hh.cs.Estimate(id))
		if est > 0 && est*est >= thresh/4 && est >= noise {
			// /4 slack on the φ test: estimates may be off by 1/2 relative.
			out = append(out, WeightedItem{ID: id, Weight: est})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Estimate exposes the point estimate for a specific key.
func (hh *HeavyHitters) Estimate(x uint64) int64 { return hh.cs.Estimate(x) }

// NoiseCeiling is the expected magnitude of the largest pure-noise point
// estimate: per-bucket standard deviation √(F2/width) inflated by the
// extreme-value factor √(2·ln width).
func (hh *HeavyHitters) NoiseCeiling() float64 {
	w := float64(hh.cs.Width())
	if w < 2 {
		w = 2
	}
	f2 := hh.cs.F2Estimate()
	if f2 < 1 {
		f2 = 1
	}
	return math.Sqrt(f2/w) * math.Sqrt(2*math.Log(w))
}

// SpaceWords counts the CountSketch plus two words per candidate slot.
func (hh *HeavyHitters) SpaceWords() int {
	return hh.cs.SpaceWords() + 2*hh.cap + 2
}
