package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// WeightedItem is a reported coordinate together with its approximate
// frequency.
type WeightedItem struct {
	ID     uint64
	Weight float64 // (1 ± 1/2)-approximate frequency a[ID]
}

// HeavyHitters finds the φ-heavy hitters of F2: coordinates j with
// a[j]² ≥ φ·F2(a). It instantiates Theorem 2.10 for insertion-only
// streams: a CountSketch provides (1±1/2)-accurate point estimates, and a
// candidate dictionary of capacity O(1/φ) is maintained on arrival — every
// update re-estimates its own coordinate and competes for a slot, so any
// coordinate that is heavy at the end of the stream occupies a slot (its
// last occurrence finds its estimate already above every light candidate).
type HeavyHitters struct {
	phi   float64
	cs    *CountSketch
	cand  map[uint64]int64 // candidate id -> eviction priority (see Add)
	cap   int
	total int64 // number of updates (weight 1 each)

	// Transient batch/refresh working memory (see BeginBatch). None of it
	// survives a batch or refresh, so it is excluded from SpaceWords, never
	// serialized, and never merged.
	refresh     []hhKV
	batchKeys   []uint64
	pending     []int64 // deferred CountSketch deltas, indexed like batchKeys
	touched     []int32 // indices with pending[i] != 0
	bump        []int64 // deferred priority bumps for resident keys
	bumpTouched []int32 // indices with bump[i] != 0
	resident    []bool  // per key: known resident since the last refresh

	// keyIdx maps batch key -> index, built lazily on the first refresh of
	// a batch so refresh estimates can reuse the CountSketch memos. Empty
	// outside batches and on churn-free batches.
	keyIdx      map[uint64]int32
	keyIdxBuilt bool
}

// hhKVs sorts by estimate descending, id ascending — a deterministic
// total order (concrete type: this sort runs on the ingest hot path and
// sort.Slice's reflection-based swaps were measurable).
type hhKVs []hhKV

func (s hhKVs) Len() int      { return len(s) }
func (s hhKVs) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s hhKVs) Less(i, j int) bool {
	if s[i].est != s[j].est {
		return s[i].est > s[j].est
	}
	return s[i].id < s[j].id
}

type hhKV struct {
	id  uint64
	est int64
}

// NewF2HeavyHitters builds a heavy-hitter sketch with threshold phi for a
// stream of unit-weight updates over an arbitrary uint64 key space.
func NewF2HeavyHitters(phi float64, rng *rand.Rand) *HeavyHitters {
	if phi <= 0 || phi > 1 {
		panic(fmt.Sprintf("sketch: HeavyHitters phi %v out of (0,1]", phi))
	}
	// Per-row error is √(F2/width); we need genuinely heavy coordinates
	// (a[j] ≥ √(φF2) = √(φ·width)·σ) to clear the extreme-value noise
	// ceiling σ·√(2·ln width) that Report gates on, which needs
	// φ·width ≳ 2·ln width with slack. width = 24/φ gives √(φ·width) ≈ 4.9
	// against a gate of ~√(2·ln width) ≈ 3.3–4.5 at practical widths.
	width := int(24.0/phi) + 1
	depth := 5
	capacity := int(4.0/phi) + 4
	return &HeavyHitters{
		phi:  phi,
		cs:   NewCountSketch(depth, width, rng),
		cand: make(map[uint64]int64, capacity),
		cap:  capacity,
	}
}

// Add feeds one unit-weight occurrence of key x. Resident candidates take
// a cheap path (their priority is bumped by one, tracking frequency
// accrued while resident); sketch point estimates are computed only when
// a new key competes for a full table, and authoritative weights are
// re-estimated from the sketch at Report time.
func (hh *HeavyHitters) Add(x uint64) {
	hh.total++
	hh.cs.Add(x, 1)
	if p, ok := hh.cand[x]; ok {
		hh.cand[x] = p + 1
		return
	}
	hh.admit(x)
}

// admit inserts non-resident x into the candidate table. When the table is
// full it refreshes every candidate's priority from the sketch and evicts
// the weaker half in one batch first. The O(cap·log cap) scan runs once
// per cap/2 admissions, so admission cost is amortized O(log cap); heavy
// coordinates always survive the batch because their refreshed estimates
// rank in the top half. Ties break on id so the surviving half does not
// depend on map iteration order.
func (hh *HeavyHitters) admit(x uint64) {
	if len(hh.cand) < hh.cap {
		hh.cand[x] = hh.cs.Estimate(x)
		return
	}
	hh.refreshEvict()
	hh.cand[x] = hh.cs.Estimate(x)
}

// refreshEvict re-estimates every candidate from the sketch and keeps the
// stronger half. It also invalidates the batch path's residency cache:
// evictions change who is resident. During a batch, candidates that are
// batch keys estimate through the CountSketch memos (found via keyIdx,
// built on the batch's first refresh); the handful admitted before the
// batch fall back to the scalar path — same values either way.
func (hh *HeavyHitters) refreshEvict() {
	if hh.batchKeys != nil && !hh.keyIdxBuilt {
		if hh.keyIdx == nil {
			hh.keyIdx = make(map[uint64]int32, len(hh.batchKeys))
		}
		for i, x := range hh.batchKeys {
			hh.keyIdx[x] = int32(i)
		}
		hh.keyIdxBuilt = true
	}
	all := hh.refresh[:0]
	for id := range hh.cand {
		var est int64
		if ki, ok := hh.keyIdx[id]; ok {
			est = hh.cs.EstimateBatched(ki)
		} else {
			est = hh.cs.Estimate(id)
		}
		all = append(all, hhKV{id, est})
	}
	if len(all) <= 32 {
		for i := 1; i < len(all); i++ {
			kv := all[i]
			j := i
			for ; j > 0 && (kv.est > all[j-1].est || (kv.est == all[j-1].est && kv.id < all[j-1].id)); j-- {
				all[j] = all[j-1]
			}
			all[j] = kv
		}
	} else {
		sort.Sort(hhKVs(all))
	}
	hh.refresh = all
	clear(hh.cand)
	for _, p := range all[:hh.cap/2] {
		hh.cand[p.id] = p.est
	}
	for i := range hh.resident {
		hh.resident[i] = false
	}
}

// BeginBatch enters deferred-update mode for a batch whose occurrences are
// indices into keys (one entry per distinct key). While a batch is open:
//
//   - CountSketch deltas accumulate per distinct key (the counters are
//     plain sums, so flushing the total in one update per key is
//     bit-identical) and the sketch memoizes each key's bucket/sign row
//     on first use, so a key is hashed once per batch, not per update.
//   - Priority bumps for keys known to be resident accumulate per key and
//     are flushed before any event that could read or evict them.
//
// Deferred deltas are flushed before every point estimate (admissions and
// refreshes), so every estimate observes exactly the counters the
// per-occurrence path would have; deferred bumps are flushed before every
// refresh, and a refresh resets the residency cache, so the candidate
// table evolves identically to the per-occurrence path. The keys slice is
// only read; it must stay valid until EndBatch.
func (hh *HeavyHitters) BeginBatch(keys []uint64) {
	hh.batchKeys = keys
	hh.cs.BeginBatch(keys)
	if cap(hh.pending) < len(keys) {
		hh.pending = make([]int64, len(keys))
		hh.bump = make([]int64, len(keys))
	}
	// Invariant: every entry of the backing arrays is zero between batches
	// (the flushes re-zero what they visit), so no clearing needed.
	hh.pending = hh.pending[:len(keys)]
	hh.bump = hh.bump[:len(keys)]
	hh.touched = hh.touched[:0]
	hh.bumpTouched = hh.bumpTouched[:0]
	if cap(hh.resident) < len(keys) {
		hh.resident = make([]bool, len(keys))
	}
	hh.resident = hh.resident[:len(keys)]
	for i := range hh.resident {
		hh.resident[i] = false
	}
}

// AddBatched feeds one occurrence of batchKeys[ki]; identical to
// Add(batchKeys[ki]) given the flush discipline above.
func (hh *HeavyHitters) AddBatched(ki int32) {
	hh.total++
	if hh.pending[ki] == 0 {
		hh.touched = append(hh.touched, ki)
	}
	hh.pending[ki]++
	if hh.resident[ki] {
		if hh.bump[ki] == 0 {
			hh.bumpTouched = append(hh.bumpTouched, ki)
		}
		hh.bump[ki]++
		return
	}
	x := hh.batchKeys[ki]
	if p, ok := hh.cand[x]; ok {
		hh.cand[x] = p + 1
		hh.resident[ki] = true
		return
	}
	hh.flushPending()
	hh.flushBumps()
	if len(hh.cand) >= hh.cap {
		hh.refreshEvict()
	}
	hh.cand[x] = hh.cs.EstimateBatched(ki)
	hh.resident[ki] = true
}

func (hh *HeavyHitters) flushPending() {
	for _, ki := range hh.touched {
		hh.cs.AddBatched(ki, hh.pending[ki])
		hh.pending[ki] = 0
	}
	hh.touched = hh.touched[:0]
}

// flushBumps applies deferred priority bumps. Every bumped key is still
// resident (bumps only accrue while resident, and residency changes only
// at refreshes, which flush first), so these are plain updates.
func (hh *HeavyHitters) flushBumps() {
	for _, ki := range hh.bumpTouched {
		hh.cand[hh.batchKeys[ki]] += hh.bump[ki]
		hh.bump[ki] = 0
	}
	hh.bumpTouched = hh.bumpTouched[:0]
}

// EndBatch flushes remaining deferred state and leaves batch mode.
func (hh *HeavyHitters) EndBatch() {
	hh.flushPending()
	hh.flushBumps()
	hh.cs.EndBatch()
	hh.batchKeys = nil
	if hh.keyIdxBuilt {
		clear(hh.keyIdx)
		hh.keyIdxBuilt = false
	}
}

// Total reports the number of updates fed.
func (hh *HeavyHitters) Total() int64 { return hh.total }

// F2Estimate exposes the underlying sketch's F2 estimate.
func (hh *HeavyHitters) F2Estimate() float64 { return hh.cs.F2Estimate() }

// Report returns every candidate whose estimated frequency squared clears
// the φ threshold against the estimated F2 AND whose estimate exceeds the
// sketch's extreme-value noise ceiling σ·√(2·ln width) (σ = per-bucket
// noise √(F2/width)). Without the ceiling, streams with many
// unit-frequency keys elect the largest noise fluctuation as a phantom
// heavy hitter — exactly the failure the set-disjointness hard instances
// provoke. Reported frequencies are (1 ± 1/2)-approximate as Theorem 2.10
// promises.
func (hh *HeavyHitters) Report() []WeightedItem {
	f2 := hh.cs.F2Estimate()
	thresh := hh.phi * f2
	noise := hh.NoiseCeiling()
	var out []WeightedItem
	for id := range hh.cand {
		est := float64(hh.cs.Estimate(id))
		if est > 0 && est*est >= thresh/4 && est >= noise {
			// /4 slack on the φ test: estimates may be off by 1/2 relative.
			out = append(out, WeightedItem{ID: id, Weight: est})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Estimate exposes the point estimate for a specific key.
func (hh *HeavyHitters) Estimate(x uint64) int64 { return hh.cs.Estimate(x) }

// NoiseCeiling is the expected magnitude of the largest pure-noise point
// estimate: per-bucket standard deviation √(F2/width) inflated by the
// extreme-value factor √(2·ln width).
func (hh *HeavyHitters) NoiseCeiling() float64 {
	w := float64(hh.cs.Width())
	if w < 2 {
		w = 2
	}
	f2 := hh.cs.F2Estimate()
	if f2 < 1 {
		f2 = 1
	}
	return math.Sqrt(f2/w) * math.Sqrt(2*math.Log(w))
}

// SpaceWords counts the CountSketch plus two words per candidate slot.
func (hh *HeavyHitters) SpaceWords() int {
	return hh.cs.SpaceWords() + 2*hh.cap + 2
}
