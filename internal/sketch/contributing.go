package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"streamcover/internal/hash"
)

// Contributing implements the F2-Contributing(γ, r) algorithm of
// Section 2.2 (Theorem 2.11): it returns at least one coordinate from every
// γ-contributing class R_t = {j : 2^(t-1) < a[j] ≤ 2^t} with
// |R_t|·2^(2t) ≥ γ·F2(a), together with a (1 ± 1/2)-approximate frequency.
//
// The construction runs one heavy-hitter instance per guessed class size
// n_t ∈ {2^0, 2^1, …, r}. The level for guess 2^i samples coordinates (not
// updates) at rate ~c·log(m)/2^i via a Θ(log(mn))-wise hash, so roughly
// polylog coordinates of a size-2^i class survive; by Lemma 2.9 each
// survivor of a contributing class is an Ω̃(γ)-heavy hitter of the sampled
// substream and is caught by that level's F2-HeavyHitter. A surviving
// coordinate keeps all of its updates, so its reported frequency needs no
// rescaling.
type Contributing struct {
	gamma  float64
	m      uint64 // key-universe size; keys are (almost) always in [0, m)
	levels []contribLevel
}

type contribLevel struct {
	rate    float64
	sampler *hash.Poly
	hh      *HeavyHitters
	bits    []bool // batch scratch: sampling bit per distinct key

	// Persistent sampling-bit memo for the dense key universe [0, m): the
	// Bernoulli decision is a pure function of (key, rate), so it is
	// evaluated once ever per key instead of once per batch. 0 = unknown,
	// 1 = not sampled, 2 = sampled. A reconstructible cache of hash
	// evaluations — excluded from SpaceWords, never serialized.
	dBits []uint8
}

// ContribConfig tunes the practical constants of the construction. The
// paper's literal constants (φ = γ/(432·log n·log^(c+1) m), rate
// 12·log(m)/2^i) are proof artifacts; the defaults below preserve the
// structure — per-level subsampling plus a heavy-hitter battery — at
// feasible scale. See DESIGN.md §3.
type ContribConfig struct {
	// SampleBoost multiplies the per-level sampling rate c·log2(m)/2^i.
	SampleBoost float64
	// PhiFraction sets each level's heavy-hitter threshold to
	// PhiFraction·γ.
	PhiFraction float64
	// Independence overrides the level samplers' hash independence degree
	// (0 = the paper's Θ(log(mn)) via hash.LogDegree).
	Independence int
}

// DefaultContribConfig returns practical constants.
func DefaultContribConfig() ContribConfig {
	return ContribConfig{SampleBoost: 4, PhiFraction: 0.25}
}

// NewF2Contributing builds the battery for contributing threshold gamma,
// maximum class size r, and key-universe size m (used only to size the
// hash-family independence and sampling rates).
func NewF2Contributing(gamma float64, r int, m int, cfg ContribConfig, rng *rand.Rand) *Contributing {
	if gamma <= 0 || gamma > 1 {
		panic(fmt.Sprintf("sketch: Contributing gamma %v out of (0,1]", gamma))
	}
	if r < 1 {
		r = 1
	}
	if cfg.SampleBoost <= 0 || cfg.PhiFraction <= 0 {
		cfg = DefaultContribConfig()
	}
	numLevels := 1
	for sz := 1; sz < r; sz *= 2 {
		numLevels++
	}
	logM := math.Log2(float64(m) + 2)
	phi := cfg.PhiFraction * gamma
	if phi > 1 {
		phi = 1
	}
	c := &Contributing{gamma: gamma, m: uint64(m)}
	newSampler := func() *hash.Poly {
		if cfg.Independence > 0 {
			return hash.NewPoly(cfg.Independence, rng)
		}
		return hash.NewLogWise(m, m, rng)
	}
	for i := 0; i < numLevels; i++ {
		rate := cfg.SampleBoost * logM / float64(uint64(1)<<uint(i))
		if rate > 1 {
			rate = 1
		}
		hh := NewF2HeavyHitters(phi, rng)
		// The caller's keys live in [0, m) (coordinate/superset IDs), so
		// every level's hash evaluations — CountSketch rows and sampling
		// bits — are memoized once per key for the sketch's lifetime.
		hh.EnableDenseDomain(m)
		c.levels = append(c.levels, contribLevel{
			rate:    rate,
			sampler: newSampler(),
			hh:      hh,
		})
	}
	return c
}

// sampled reports lv.sampler.Bernoulli(x, lv.rate) through the persistent
// per-key memo (in-domain keys only hash once ever).
func (lv *contribLevel) sampled(x uint64, m uint64) bool {
	if x < m {
		if lv.dBits == nil {
			lv.dBits = make([]uint8, m)
		}
		st := lv.dBits[x]
		if st == 0 {
			st = 1
			if lv.sampler.Bernoulli(x, lv.rate) {
				st = 2
			}
			lv.dBits[x] = st
		}
		return st == 2
	}
	return lv.sampler.Bernoulli(x, lv.rate)
}

// sampleBatch is sampler.BernoulliBatch through the persistent memo —
// identical output, but each in-domain key is hashed at most once over the
// sketch's lifetime.
func (lv *contribLevel) sampleBatch(keys []uint64, m uint64, dst []bool) []bool {
	if cap(dst) < len(keys) {
		dst = make([]bool, len(keys))
	}
	dst = dst[:len(keys)]
	for i, x := range keys {
		dst[i] = lv.sampled(x, m)
	}
	return dst
}

// Add feeds one unit-weight occurrence of key x to every level whose
// coordinate sample retains x.
func (c *Contributing) Add(x uint64) {
	for i := range c.levels {
		lv := &c.levels[i]
		if lv.rate >= 1 || lv.sampled(x, c.m) {
			lv.hh.Add(x)
		}
	}
}

// AddBatch feeds the occurrence sequence occ — each entry an index into
// keys, in arrival order — to every level. It is bit-for-bit equivalent to
// calling Add per occurrence: the coordinate-sampling bit is a pure
// function of the key, so it is computed once per distinct key instead of
// once per occurrence, and CountSketch updates are deferred per distinct
// key through the HeavyHitters batch API. Levels are independent, so
// running them level-major instead of occurrence-major changes no state.
func (c *Contributing) AddBatch(keys []uint64, occ []int32) {
	for i := range c.levels {
		lv := &c.levels[i]
		lv.hh.BeginBatch(keys)
		if lv.rate >= 1 {
			for _, ki := range occ {
				lv.hh.AddBatched(ki)
			}
		} else {
			lv.bits = lv.sampleBatch(keys, c.m, lv.bits)
			for _, ki := range occ {
				if lv.bits[ki] {
					lv.hh.AddBatched(ki)
				}
			}
		}
		lv.hh.EndBatch()
	}
}

// Report returns the union of all levels' heavy hitters, deduplicated by
// coordinate (keeping the maximum weight estimate), sorted by descending
// weight. Theorem 2.11 guarantees it contains a representative of every
// γ-contributing class with the stated probability.
func (c *Contributing) Report() []WeightedItem {
	best := make(map[uint64]float64)
	for i := range c.levels {
		for _, it := range c.levels[i].hh.Report() {
			if it.Weight > best[it.ID] {
				best[it.ID] = it.Weight
			}
		}
	}
	out := make([]WeightedItem, 0, len(best))
	for id, w := range best {
		out = append(out, WeightedItem{ID: id, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Levels reports the number of parallel class-size guesses.
func (c *Contributing) Levels() int { return len(c.levels) }

// SpaceWords sums all levels.
func (c *Contributing) SpaceWords() int {
	words := 2
	for i := range c.levels {
		words += c.levels[i].sampler.SpaceWords() + c.levels[i].hh.SpaceWords() + 1
	}
	return words
}
