package sketch

import (
	"math"
	"math/rand"
	"testing"
)

func TestCountSketchRoundTripAndMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewCountSketch(5, 128, rng)
	for x := uint64(0); x < 500; x++ {
		a.Add(x, int64(1+x%5))
	}
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Decode twice: one copy continues the stream, one stays at the split.
	var b, c CountSketch
	if err := b.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if err := c.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 500; x++ {
		if a.Estimate(x) != b.Estimate(x) {
			t.Fatalf("decoded sketch diverges at %d", x)
		}
	}
	// b absorbs a second half; merging the halves must equal the whole.
	for x := uint64(500); x < 1000; x++ {
		b.Add(x, 2)
		a.Add(x, 2)
	}
	var secondHalf CountSketch
	if err := secondHalf.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	// secondHalf currently equals the first half; subtract it from b to
	// isolate the delta... simpler: fresh empty clone via zeroing c and
	// merging: build the delta by merging c (first half) into nothing.
	if err := c.Merge(&secondHalf); err != nil {
		t.Fatal(err)
	}
	// c is now 2x the first half; sanity: estimates double.
	if c.Estimate(3) != 2*secondHalf.Estimate(3) {
		t.Errorf("merge arithmetic wrong: %d vs %d", c.Estimate(3), secondHalf.Estimate(3))
	}
	// Full-stream equivalence: b (decoded + second half) matches a.
	for _, x := range []uint64{0, 250, 750, 999} {
		if a.Estimate(x) != b.Estimate(x) {
			t.Errorf("continued sketch diverges at %d: %d vs %d", x, a.Estimate(x), b.Estimate(x))
		}
	}
}

func TestCountSketchMergeRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewCountSketch(5, 128, rng)
	b := NewCountSketch(5, 128, rng) // different hashes (same rng stream)
	if err := a.Merge(b); err == nil {
		t.Error("merge with different hashes accepted")
	}
	c := NewCountSketch(3, 128, rng)
	if err := a.Merge(c); err == nil {
		t.Error("merge with different depth accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("merge with nil accepted")
	}
}

func TestL0RoundTripAndMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	whole := NewL0(0.25, 10000, 10000, rng)
	blob0, err := whole.MarshalBinary() // empty sketch snapshot
	if err != nil {
		t.Fatal(err)
	}
	var left, right L0
	if err := left.UnmarshalBinary(blob0); err != nil {
		t.Fatal(err)
	}
	if err := right.UnmarshalBinary(blob0); err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 4000; x++ {
		whole.Add(x)
		if x%2 == 0 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	if err := left.Merge(&right); err != nil {
		t.Fatal(err)
	}
	if left.Estimate() != whole.Estimate() {
		t.Errorf("merged halves %v != whole %v", left.Estimate(), whole.Estimate())
	}
	if left.Adds() != whole.Adds() {
		t.Errorf("adds %d != %d", left.Adds(), whole.Adds())
	}
	// Round trip a filled sketch.
	blob, err := whole.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back L0
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != whole.Estimate() {
		t.Errorf("decoded estimate %v != %v", back.Estimate(), whole.Estimate())
	}
}

func TestL0MergeRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewL0(0.25, 100, 100, rng)
	b := NewL0(0.25, 100, 100, rng)
	if err := a.Merge(b); err == nil {
		t.Error("merge with different hash accepted")
	}
	c := NewL0(0.5, 100, 100, rng)
	if err := a.Merge(c); err == nil {
		t.Error("merge with different capacity accepted")
	}
}

func TestHLLRoundTripAndMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	whole := NewHLL(11, rng)
	blob0, _ := whole.MarshalBinary()
	var left, right HLL
	if err := left.UnmarshalBinary(blob0); err != nil {
		t.Fatal(err)
	}
	if err := right.UnmarshalBinary(blob0); err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 30000; x++ {
		whole.Add(x)
		if x < 20000 {
			left.Add(x)
		}
		if x >= 10000 { // overlapping halves: union still correct
			right.Add(x)
		}
	}
	if err := left.Merge(&right); err != nil {
		t.Fatal(err)
	}
	if math.Abs(left.Estimate()-whole.Estimate()) > 1e-9 {
		t.Errorf("merged overlapping halves %v != whole %v", left.Estimate(), whole.Estimate())
	}
}

func TestHLLMergeRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewHLL(10, rng)
	b := NewHLL(10, rng)
	if err := a.Merge(b); err == nil {
		t.Error("different hash accepted")
	}
	c := NewHLL(11, rng)
	if err := a.Merge(c); err == nil {
		t.Error("different precision accepted")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	garbage := [][]byte{nil, {1}, {255, 255, 255, 255}, make([]byte, 64)}
	for _, g := range garbage {
		if err := new(CountSketch).UnmarshalBinary(g); err == nil {
			t.Errorf("CountSketch accepted %v", g)
		}
		if err := new(L0).UnmarshalBinary(g); err == nil {
			t.Errorf("L0 accepted %v", g)
		}
		if err := new(HLL).UnmarshalBinary(g); err == nil {
			t.Errorf("HLL accepted %v", g)
		}
	}
}

func TestPolyEqualAndRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewF2HeavyHitters(0.1, rng) // exercise an unrelated constructor path
	_ = p
	a := NewL0(0.5, 10, 10, rand.New(rand.NewSource(8)))
	b := NewL0(0.5, 10, 10, rand.New(rand.NewSource(8)))
	// Same seed => equal hash => mergeable.
	if err := a.Merge(b); err != nil {
		t.Errorf("same-seed sketches failed to merge: %v", err)
	}
}
