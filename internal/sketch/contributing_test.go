package sketch

import (
	"math/rand"
	"testing"
)

// plantClass builds a frequency vector with one planted class: `classSize`
// coordinates (ids base..base+classSize-1) each of frequency `freq`, over a
// light tail, and streams it in shuffled order.
func plantClass(c *Contributing, classSize int, freq int, tailKeys, tailFreq int, rng *rand.Rand) float64 {
	var ids []uint64
	for j := 0; j < classSize; j++ {
		for i := 0; i < freq; i++ {
			ids = append(ids, uint64(500000+j))
		}
	}
	for k := 0; k < tailKeys; k++ {
		for i := 0; i < tailFreq; i++ {
			ids = append(ids, uint64(k))
		}
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids {
		c.Add(id)
	}
	return float64(classSize)*float64(freq)*float64(freq) +
		float64(tailKeys)*float64(tailFreq)*float64(tailFreq)
}

func classMemberReported(rep []WeightedItem, classSize int) (bool, float64) {
	for _, it := range rep {
		if it.ID >= 500000 && it.ID < uint64(500000+classSize) {
			return true, it.Weight
		}
	}
	return false, 0
}

func TestContributingDetectsSingletonClass(t *testing.T) {
	// One coordinate carrying most of F2 is a contributing class of size 1.
	rng := rand.New(rand.NewSource(1))
	c := NewF2Contributing(0.3, 64, 1<<16, DefaultContribConfig(), rng)
	plantClass(c, 1, 2000, 3000, 10, rng)
	found, w := classMemberReported(c.Report(), 1)
	if !found {
		t.Fatal("singleton contributing class not detected")
	}
	if w < 1000 || w > 3000 {
		t.Errorf("reported weight %v, want 2000 within factor 1±1/2", w)
	}
}

func TestContributingDetectsWideClass(t *testing.T) {
	// 64 coordinates of frequency 200 carry |R|*f^2 = 64*40000 = 2.56e6
	// against a tail of 3000*100 = 3e5: strongly contributing, but no single
	// coordinate is heavy in the raw stream — level sampling is what finds it.
	rng := rand.New(rand.NewSource(2))
	c := NewF2Contributing(0.3, 256, 1<<16, DefaultContribConfig(), rng)
	f2 := plantClass(c, 64, 200, 3000, 10, rng)
	share := 64.0 * 200 * 200 / f2
	if share < 0.5 {
		t.Fatalf("workload mis-specified: class share %.2f", share)
	}
	found, w := classMemberReported(c.Report(), 64)
	if !found {
		t.Fatal("wide contributing class not detected")
	}
	// At practical sketch widths two surviving class members occasionally
	// share a bucket, so allow a small constant factor rather than the
	// asymptotic 1±1/2.
	if w < 80 || w > 500 {
		t.Errorf("reported weight %v, want 200 within a small constant factor", w)
	}
}

func TestContributingAcrossClassSizes(t *testing.T) {
	// Detection must hold for class sizes spanning several levels.
	for _, classSize := range []int{1, 4, 16, 128} {
		classSize := classSize
		freq := 3200 / classSize // keep |R|*f^2 comparable across sizes
		rng := rand.New(rand.NewSource(int64(100 + classSize)))
		c := NewF2Contributing(0.25, 512, 1<<16, DefaultContribConfig(), rng)
		plantClass(c, classSize, freq, 1000, 3, rng)
		if found, _ := classMemberReported(c.Report(), classSize); !found {
			t.Errorf("class of size %d (freq %d) not detected", classSize, freq)
		}
	}
}

func TestContributingLevelsCoverRange(t *testing.T) {
	c := NewF2Contributing(0.2, 1024, 1<<12, DefaultContribConfig(), rand.New(rand.NewSource(3)))
	if c.Levels() != 11 { // sizes 1,2,...,1024
		t.Errorf("Levels() = %d, want 11", c.Levels())
	}
	c1 := NewF2Contributing(0.2, 1, 1<<12, DefaultContribConfig(), rand.New(rand.NewSource(4)))
	if c1.Levels() != 1 {
		t.Errorf("Levels() for r=1 = %d, want 1", c1.Levels())
	}
}

func TestContributingEmptyReport(t *testing.T) {
	c := NewF2Contributing(0.5, 16, 1024, DefaultContribConfig(), rand.New(rand.NewSource(5)))
	if rep := c.Report(); len(rep) != 0 {
		t.Errorf("empty stream reported %d items", len(rep))
	}
}

func TestContributingBadConfigFallsBack(t *testing.T) {
	c := NewF2Contributing(0.2, 16, 1024, ContribConfig{}, rand.New(rand.NewSource(6)))
	rng := rand.New(rand.NewSource(7))
	plantClass(c, 1, 500, 100, 2, rng)
	if found, _ := classMemberReported(c.Report(), 1); !found {
		t.Error("zero-valued config did not fall back to defaults")
	}
}

func TestContributingPanicsOnBadGamma(t *testing.T) {
	for _, g := range []float64{0, -1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewF2Contributing(gamma=%v) did not panic", g)
				}
			}()
			NewF2Contributing(g, 16, 1024, DefaultContribConfig(), rand.New(rand.NewSource(1)))
		}()
	}
}

func TestContributingSpaceGrowsWithLevels(t *testing.T) {
	small := NewF2Contributing(0.2, 2, 1024, DefaultContribConfig(), rand.New(rand.NewSource(8)))
	big := NewF2Contributing(0.2, 1024, 1024, DefaultContribConfig(), rand.New(rand.NewSource(9)))
	if big.SpaceWords() <= small.SpaceWords() {
		t.Errorf("space did not grow with levels: %d vs %d", big.SpaceWords(), small.SpaceWords())
	}
}

func BenchmarkContributingAdd(b *testing.B) {
	c := NewF2Contributing(0.2, 256, 1<<16, DefaultContribConfig(), rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(uint64(i % 4096))
	}
}
