package sketch

import (
	"math"
	"math/rand"
	"testing"
)

func TestCountSketchPointEstimates(t *testing.T) {
	// Frequencies: key i has frequency freq[i]; heavy keys should be
	// recovered accurately by a sketch of adequate width.
	rng := rand.New(rand.NewSource(1))
	cs := NewCountSketch(5, 1024, rng)
	freq := map[uint64]int64{1: 1000, 2: 500, 3: 250}
	for x := uint64(100); x < 2100; x++ {
		freq[x] = 5 // light tail
	}
	for x, f := range freq {
		for i := int64(0); i < f; i++ {
			cs.Add(x, 1)
		}
	}
	var f2 float64
	for _, f := range freq {
		f2 += float64(f) * float64(f)
	}
	tol := 4 * math.Sqrt(f2/1024)
	for _, x := range []uint64{1, 2, 3} {
		est := cs.Estimate(x)
		if math.Abs(float64(est-freq[x])) > tol {
			t.Errorf("Estimate(%d) = %d, want %d ± %.0f", x, est, freq[x], tol)
		}
	}
}

func TestCountSketchWeightedAndNegativeUpdates(t *testing.T) {
	cs := NewCountSketch(5, 256, rand.New(rand.NewSource(2)))
	cs.Add(42, 1000)
	cs.Add(42, -400)
	est := cs.Estimate(42)
	if est != 600 {
		// With only one key in the sketch there are no collisions at all.
		t.Errorf("Estimate(42) = %d, want exactly 600", est)
	}
}

func TestCountSketchUnseenKeyNearZero(t *testing.T) {
	cs := NewCountSketch(5, 512, rand.New(rand.NewSource(3)))
	for x := uint64(0); x < 1000; x++ {
		cs.Add(x, 3)
	}
	f2 := 1000 * 9.0
	tol := 4 * math.Sqrt(f2/512)
	if est := cs.Estimate(999999); math.Abs(float64(est)) > tol {
		t.Errorf("Estimate(unseen) = %d, want ~0 ± %.1f", est, tol)
	}
}

func TestCountSketchF2Estimate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cs := NewCountSketch(7, 2048, rng)
	var f2 float64
	for x := uint64(0); x < 5000; x++ {
		f := int64(1 + x%10)
		cs.Add(x, f)
		f2 += float64(f) * float64(f)
	}
	est := cs.F2Estimate()
	if math.Abs(est-f2)/f2 > 0.25 {
		t.Errorf("F2Estimate() = %.0f, want %.0f within 25%%", est, f2)
	}
}

func TestCountSketchEvenDepthMedian(t *testing.T) {
	cs := NewCountSketch(4, 256, rand.New(rand.NewSource(5)))
	cs.Add(7, 100)
	if est := cs.Estimate(7); est != 100 {
		t.Errorf("single-key even-depth Estimate = %d, want 100", est)
	}
	_ = cs.F2Estimate() // must not panic with even depth
}

func TestCountSketchDims(t *testing.T) {
	cs := NewCountSketch(3, 64, rand.New(rand.NewSource(6)))
	if cs.Depth() != 3 || cs.Width() != 64 {
		t.Errorf("dims = (%d,%d), want (3,64)", cs.Depth(), cs.Width())
	}
	if w := cs.SpaceWords(); w < 3*64 {
		t.Errorf("SpaceWords() = %d, want >= table size %d", w, 3*64)
	}
}

func TestCountSketchPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 10}, {10, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCountSketch(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewCountSketch(dims[0], dims[1], rand.New(rand.NewSource(1)))
		}()
	}
}

func BenchmarkCountSketchAdd(b *testing.B) {
	cs := NewCountSketch(5, 1024, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Add(uint64(i%10000), 1)
	}
}
