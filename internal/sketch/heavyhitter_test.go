package sketch

import (
	"math"
	"math/rand"
	"testing"
)

// feedZipfWithHeavy streams a planted-heavy workload: key 7 gets `heavy`
// occurrences amid `tail` keys of frequency `light`.
func feedZipfWithHeavy(hh *HeavyHitters, heavy int, tail int, light int, rng *rand.Rand) (trueF2 float64) {
	type upd struct{ id uint64 }
	var updates []upd
	for i := 0; i < heavy; i++ {
		updates = append(updates, upd{7})
	}
	for k := 0; k < tail; k++ {
		for i := 0; i < light; i++ {
			updates = append(updates, upd{uint64(1000 + k)})
		}
	}
	rng.Shuffle(len(updates), func(i, j int) { updates[i], updates[j] = updates[j], updates[i] })
	for _, u := range updates {
		hh.Add(u.id)
	}
	trueF2 = float64(heavy)*float64(heavy) + float64(tail)*float64(light)*float64(light)
	return trueF2
}

func TestHeavyHittersRecallPlanted(t *testing.T) {
	// Key 7 carries ~50% of F2; with phi=0.1 it must be reported.
	rng := rand.New(rand.NewSource(1))
	hh := NewF2HeavyHitters(0.1, rng)
	f2 := feedZipfWithHeavy(hh, 1000, 2000, 10, rng)
	heavyShare := 1000.0 * 1000.0 / f2
	if heavyShare < 0.5 {
		t.Fatalf("test workload mis-specified: heavy share %.2f", heavyShare)
	}
	rep := hh.Report()
	found := false
	for _, it := range rep {
		if it.ID == 7 {
			found = true
			if math.Abs(it.Weight-1000)/1000 > 0.5 {
				t.Errorf("reported weight %v for planted key, want 1000 within 50%%", it.Weight)
			}
		}
	}
	if !found {
		t.Error("planted heavy hitter not reported")
	}
}

func TestHeavyHittersFrequencyAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	hh := NewF2HeavyHitters(0.05, rng)
	// Three planted keys at different magnitudes over a light tail.
	planted := map[uint64]int{11: 2000, 12: 1200, 13: 800}
	for id, f := range planted {
		for i := 0; i < f; i++ {
			hh.Add(id)
		}
	}
	for k := 0; k < 3000; k++ {
		hh.Add(uint64(10000 + k))
	}
	for id, f := range planted {
		est := float64(hh.Estimate(id))
		if math.Abs(est-float64(f))/float64(f) > 0.5 {
			t.Errorf("Estimate(%d) = %.0f, want %d within factor 1±1/2", id, est, f)
		}
	}
}

func TestHeavyHittersNoFalseGiants(t *testing.T) {
	// Uniform stream: no coordinate is phi-heavy for phi=0.2, so nothing
	// reported should claim a weight anywhere near sqrt(phi*F2)·2.
	rng := rand.New(rand.NewSource(3))
	hh := NewF2HeavyHitters(0.2, rng)
	for k := 0; k < 5000; k++ {
		hh.Add(uint64(k))
		hh.Add(uint64(k))
	}
	f2 := 5000.0 * 4.0
	for _, it := range hh.Report() {
		if it.Weight*it.Weight > 4*0.2*f2 {
			t.Errorf("uniform stream reported giant %v with weight %v", it.ID, it.Weight)
		}
	}
}

func TestHeavyHittersTotalAndSpace(t *testing.T) {
	hh := NewF2HeavyHitters(0.1, rand.New(rand.NewSource(4)))
	for i := 0; i < 123; i++ {
		hh.Add(uint64(i % 7))
	}
	if hh.Total() != 123 {
		t.Errorf("Total() = %d, want 123", hh.Total())
	}
	if hh.SpaceWords() <= 0 {
		t.Error("SpaceWords() not positive")
	}
	// Space must grow as phi shrinks (O(1/phi) law).
	big := NewF2HeavyHitters(0.01, rand.New(rand.NewSource(5)))
	if big.SpaceWords() <= hh.SpaceWords() {
		t.Errorf("space did not grow: phi=0.01 %d vs phi=0.1 %d",
			big.SpaceWords(), hh.SpaceWords())
	}
}

func TestHeavyHittersReportSortedDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	hh := NewF2HeavyHitters(0.05, rng)
	for i := 0; i < 900; i++ {
		hh.Add(1)
	}
	for i := 0; i < 600; i++ {
		hh.Add(2)
	}
	for i := 0; i < 300; i++ {
		hh.Add(3)
	}
	rep := hh.Report()
	for i := 1; i < len(rep); i++ {
		if rep[i].Weight > rep[i-1].Weight {
			t.Fatal("Report not sorted by descending weight")
		}
	}
	if len(rep) == 0 || rep[0].ID != 1 {
		t.Errorf("heaviest key should lead the report, got %+v", rep)
	}
}

func TestHeavyHittersPanicsOnBadPhi(t *testing.T) {
	for _, phi := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewF2HeavyHitters(phi=%v) did not panic", phi)
				}
			}()
			NewF2HeavyHitters(phi, rand.New(rand.NewSource(1)))
		}()
	}
}

func BenchmarkHeavyHittersAdd(b *testing.B) {
	hh := NewF2HeavyHitters(0.05, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hh.Add(uint64(i % 4096))
	}
}
