package sketch

import (
	"fmt"
	"math/rand"
	"sort"

	"streamcover/internal/hash"
)

// F2 is the Alon–Matias–Szegedy second-frequency-moment estimator:
// groups × reps independent counters Z = Σ_x sign(x)·a[x]; the estimate is
// the median over groups of the mean over reps of Z². With reps = O(1/ε²)
// and groups = O(log 1/δ) the estimate is within (1±ε) with probability
// 1−δ. The paper's lower-bound discussion (Section 1) uses exactly this
// L2-norm sketch to distinguish the set-disjointness hard instances in
// O(m/α²) space.
type F2 struct {
	groups, reps int
	z            []int64      // groups*reps counters, row-major by group
	sign         []*hash.Poly // one 4-wise sign function per counter
}

// NewF2 builds an AMS estimator with relative error target eps and failure
// probability roughly 2^-groups.
func NewF2(eps float64, groups int, rng *rand.Rand) *F2 {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("sketch: F2 eps %v out of (0,1)", eps))
	}
	if groups < 1 {
		groups = 1
	}
	reps := int(6.0/(eps*eps)) + 1
	f := &F2{
		groups: groups,
		reps:   reps,
		z:      make([]int64, groups*reps),
		sign:   make([]*hash.Poly, groups*reps),
	}
	for i := range f.sign {
		f.sign[i] = hash.New4Wise(rng)
	}
	return f
}

// Add applies update a[x] += delta.
func (f *F2) Add(x uint64, delta int64) {
	for i, s := range f.sign {
		f.z[i] += int64(s.Sign(x)) * delta
	}
}

// Estimate returns the current F2 estimate.
func (f *F2) Estimate() float64 {
	means := make([]float64, f.groups)
	for g := 0; g < f.groups; g++ {
		var sum float64
		for r := 0; r < f.reps; r++ {
			v := float64(f.z[g*f.reps+r])
			sum += v * v
		}
		means[g] = sum / float64(f.reps)
	}
	sort.Float64s(means)
	if f.groups%2 == 1 {
		return means[f.groups/2]
	}
	return (means[f.groups/2-1] + means[f.groups/2]) / 2
}

// SpaceWords counts counters plus hash coefficients.
func (f *F2) SpaceWords() int {
	words := len(f.z) + 2
	for _, s := range f.sign {
		words += s.SpaceWords()
	}
	return words
}
