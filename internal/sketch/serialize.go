package sketch

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"streamcover/internal/hash"
)

// Serialization: every sketch implements encoding.BinaryMarshaler /
// BinaryUnmarshaler. The encodings carry the hash functions, so a decoded
// sketch keeps absorbing updates and merging with siblings — this is the
// message format of the Section 5 one-way communication protocol, whose
// per-hop cost the experiments measure in real serialized bytes.

func writeBlob(buf *bytes.Buffer, b []byte) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	buf.Write(hdr[:])
	buf.Write(b)
}

func readBlob(data []byte) (blob, rest []byte, err error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("sketch: truncated blob header")
	}
	n := int64(binary.LittleEndian.Uint32(data))
	if int64(len(data))-4 < n {
		return nil, nil, fmt.Errorf("sketch: truncated blob body (%d of %d bytes)", len(data)-4, n)
	}
	return data[4 : 4+n], data[4+n:], nil
}

func writePoly(buf *bytes.Buffer, p *hash.Poly) error {
	b, err := p.MarshalBinary()
	if err != nil {
		return err
	}
	writeBlob(buf, b)
	return nil
}

func readPoly(data []byte) (*hash.Poly, []byte, error) {
	blob, rest, err := readBlob(data)
	if err != nil {
		return nil, nil, err
	}
	var p hash.Poly
	if err := p.UnmarshalBinary(blob); err != nil {
		return nil, nil, err
	}
	return &p, rest, nil
}

// MarshalBinary encodes dimensions, hash functions and counters.
func (cs *CountSketch) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(cs.depth))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(cs.width))
	buf.Write(hdr[:])
	for r := 0; r < cs.depth; r++ {
		if err := writePoly(&buf, cs.bucket[r]); err != nil {
			return nil, err
		}
		if err := writePoly(&buf, cs.sign[r]); err != nil {
			return nil, err
		}
		var cell [8]byte
		for _, c := range cs.row(r) {
			binary.LittleEndian.PutUint64(cell[:], uint64(c))
			buf.Write(cell[:])
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a sketch written by MarshalBinary.
func (cs *CountSketch) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("sketch: truncated CountSketch header")
	}
	depth := int(binary.LittleEndian.Uint32(data[:4]))
	width := int(binary.LittleEndian.Uint32(data[4:8]))
	if depth < 1 || depth > 64 || width < 1 || width > 1<<28 || depth*width > 1<<30 {
		return fmt.Errorf("sketch: implausible CountSketch dims %dx%d", depth, width)
	}
	rest := data[8:]
	out := CountSketch{
		depth:  depth,
		width:  width,
		table:  make([]int64, depth*width),
		bucket: make([]*hash.Poly, depth),
		sign:   make([]*hash.Poly, depth),
	}
	var err error
	for r := 0; r < depth; r++ {
		if out.bucket[r], rest, err = readPoly(rest); err != nil {
			return err
		}
		if out.sign[r], rest, err = readPoly(rest); err != nil {
			return err
		}
		if len(rest) < 8*width {
			return fmt.Errorf("sketch: truncated CountSketch row %d", r)
		}
		row := out.row(r)
		for b := 0; b < width; b++ {
			row[b] = int64(binary.LittleEndian.Uint64(rest[8*b:]))
		}
		rest = rest[8*width:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("sketch: %d trailing bytes after CountSketch", len(rest))
	}
	*cs = out
	return nil
}

// MarshalBinary encodes the hash, capacity and retained values. The
// retained values are written in sorted order, not heap-array order: the
// heap layout depends on insertion history (stream order vs merge order)
// while the retained SET is what defines behavior, so sorting makes
// behaviorally equal sketches encode identically.
func (s *L0) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := writePoly(&buf, s.h); err != nil {
		return nil, err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(s.k))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(s.vals)))
	binary.LittleEndian.PutUint64(hdr[8:], s.adds)
	buf.Write(hdr[:])
	vals := append([]uint64(nil), s.vals...)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	var cell [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(cell[:], v)
		buf.Write(cell[:])
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a sketch written by MarshalBinary.
func (s *L0) UnmarshalBinary(data []byte) error {
	h, rest, err := readPoly(data)
	if err != nil {
		return err
	}
	if len(rest) < 16 {
		return fmt.Errorf("sketch: truncated L0 header")
	}
	k := int(binary.LittleEndian.Uint32(rest[:4]))
	n := int(binary.LittleEndian.Uint32(rest[4:8]))
	adds := binary.LittleEndian.Uint64(rest[8:16])
	if k < 1 || n > k {
		return fmt.Errorf("sketch: implausible L0 sizes k=%d n=%d", k, n)
	}
	rest = rest[16:]
	if len(rest) != 8*n {
		return fmt.Errorf("sketch: L0 payload %d bytes, want %d", len(rest), 8*n)
	}
	out := L0{h: h, k: k, adds: adds, vals: make(maxHeap, 0, k), seen: make(map[uint64]struct{}, k)}
	for i := 0; i < n; i++ {
		out.insertValue(binary.LittleEndian.Uint64(rest[8*i:]))
	}
	out.adds = adds // insertValue does not touch adds
	*s = out
	return nil
}

// MarshalBinary encodes precision, hash and registers.
func (s *HLL) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := writePoly(&buf, s.h); err != nil {
		return nil, err
	}
	var hdr [9]byte
	hdr[0] = s.p
	binary.LittleEndian.PutUint64(hdr[1:], s.adds)
	buf.Write(hdr[:])
	buf.Write(s.regs)
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a sketch written by MarshalBinary.
func (s *HLL) UnmarshalBinary(data []byte) error {
	h, rest, err := readPoly(data)
	if err != nil {
		return err
	}
	if len(rest) < 9 {
		return fmt.Errorf("sketch: truncated HLL header")
	}
	p := rest[0]
	adds := binary.LittleEndian.Uint64(rest[1:9])
	if p < 4 || p > 18 {
		return fmt.Errorf("sketch: implausible HLL precision %d", p)
	}
	rest = rest[9:]
	if len(rest) != 1<<p {
		return fmt.Errorf("sketch: HLL registers %d bytes, want %d", len(rest), 1<<p)
	}
	*s = HLL{p: p, h: h, adds: adds, regs: append([]uint8(nil), rest...)}
	return nil
}
