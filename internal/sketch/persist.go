package sketch

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Snapshot codecs for the composite sketches. serialize.go covers the
// primitive summaries (CountSketch, L0, HLL); the encodings here extend
// the same length-prefixed-blob format upward to HeavyHitters and
// Contributing so a whole oracle's state can be captured for the
// kcoverd durability layer (internal/snapshot). Like the primitives,
// a decoded sketch keeps absorbing updates and merges with equal-seed
// siblings.
//
// Transient batch working memory (the deferred-delta buffers behind
// BeginBatch, Contributing's per-level sampling-bit scratch) is never
// encoded: it holds nothing that survives a batch, mirroring the
// SpaceWords contract. Encoding is only legal between batches.

// MarshalBinary encodes threshold, totals, the CountSketch and the
// candidate dictionary. The encoding is canonical: candidates are sorted
// by id, and each candidate's priority is re-estimated from the
// CountSketch rather than copied. Stored priorities are write-only —
// refreshEvict and Report both re-estimate from the sketch, so they never
// influence future outputs — but they drift between behaviorally equal
// sketches (arrival order accrues increments, Merge re-estimates), and
// encoding the canonical value makes "behaviorally equal" and "encodes
// equally" the same thing. It must not be called while a batch is open.
func (hh *HeavyHitters) MarshalBinary() ([]byte, error) {
	if hh.batchKeys != nil {
		return nil, fmt.Errorf("sketch: cannot marshal HeavyHitters mid-batch")
	}
	var buf bytes.Buffer
	var hdr [20]byte
	binary.LittleEndian.PutUint64(hdr[:8], math.Float64bits(hh.phi))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(hh.cap))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(hh.total))
	buf.Write(hdr[:])
	csb, err := hh.cs.MarshalBinary()
	if err != nil {
		return nil, err
	}
	writeBlob(&buf, csb)
	ids := make([]uint64, 0, hh.n)
	for i, u := range hh.used {
		if u {
			ids = append(ids, hh.ids[i])
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(ids)))
	buf.Write(cnt[:])
	var cell [16]byte
	for _, id := range ids {
		binary.LittleEndian.PutUint64(cell[:8], id)
		binary.LittleEndian.PutUint64(cell[8:], uint64(hh.cs.Estimate(id)))
		buf.Write(cell[:])
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a sketch written by MarshalBinary.
func (hh *HeavyHitters) UnmarshalBinary(data []byte) error {
	if len(data) < 20 {
		return fmt.Errorf("sketch: truncated HeavyHitters header")
	}
	phi := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
	capacity := int(binary.LittleEndian.Uint32(data[8:12]))
	total := int64(binary.LittleEndian.Uint64(data[12:20]))
	if !(phi > 0 && phi <= 1) || capacity < 1 || capacity > 1<<24 {
		return fmt.Errorf("sketch: implausible HeavyHitters params phi=%v cap=%d", phi, capacity)
	}
	csb, rest, err := readBlob(data[20:])
	if err != nil {
		return err
	}
	var cs CountSketch
	if err := cs.UnmarshalBinary(csb); err != nil {
		return err
	}
	if len(rest) < 4 {
		return fmt.Errorf("sketch: truncated HeavyHitters candidate count")
	}
	n := int(binary.LittleEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if n > capacity {
		return fmt.Errorf("sketch: HeavyHitters candidates %d exceed capacity %d", n, capacity)
	}
	if len(rest) != 16*n {
		return fmt.Errorf("sketch: HeavyHitters candidate payload %d bytes, want %d", len(rest), 16*n)
	}
	out := HeavyHitters{phi: phi, cs: &cs, cap: capacity, total: total}
	out.initTable()
	for i := 0; i < n; i++ {
		id := binary.LittleEndian.Uint64(rest[16*i:])
		slot, dup := out.findSlot(id)
		if dup {
			return fmt.Errorf("sketch: HeavyHitters duplicate candidate %d", id)
		}
		out.insert(slot, id, int64(binary.LittleEndian.Uint64(rest[16*i+8:])))
	}
	*hh = out
	return nil
}

// Restore adopts the state of a decoded snapshot into a freshly built
// empty sketch with the same parameters, verifying that the snapshot's
// hash functions are identical to the construction's (same seed). Unlike
// Merge it preserves candidate priorities exactly, so a restored sketch
// is bit-identical to the one that was encoded.
func (hh *HeavyHitters) Restore(dec *HeavyHitters) error {
	if dec == nil || hh.phi != dec.phi || hh.cap != dec.cap {
		return fmt.Errorf("sketch: HeavyHitters snapshot parameter mismatch")
	}
	// The construction's sketch is all-zero, so merging the snapshot in
	// yields its exact counters while verifying dimensions and hashes.
	if err := hh.cs.Merge(dec.cs); err != nil {
		return err
	}
	hh.total = dec.total
	hh.ids, hh.pri, hh.used = dec.ids, dec.pri, dec.used
	hh.ki, hh.kiEp, hh.live = dec.ki, dec.kiEp, dec.live
	hh.mask, hh.n = dec.mask, dec.n
	return nil
}

// Restore adopts a decoded snapshot into a freshly built empty battery,
// verifying level structure and sampler identity.
func (c *Contributing) Restore(dec *Contributing) error {
	if dec == nil || c.gamma != dec.gamma || len(c.levels) != len(dec.levels) {
		return fmt.Errorf("sketch: Contributing snapshot parameter mismatch")
	}
	for i := range c.levels {
		if c.levels[i].rate != dec.levels[i].rate ||
			!c.levels[i].sampler.Equal(dec.levels[i].sampler) {
			return fmt.Errorf("sketch: Contributing level %d snapshot mismatch", i)
		}
	}
	for i := range c.levels {
		if err := c.levels[i].hh.Restore(dec.levels[i].hh); err != nil {
			return fmt.Errorf("sketch: Contributing level %d: %w", i, err)
		}
	}
	return nil
}

// MarshalBinary encodes the battery level by level: sampling rate,
// sampler hash and heavy-hitter state. Illegal mid-batch (AddBatch
// completes each level's batch before returning, so this only guards
// against marshaling from inside the sketch's own machinery).
func (c *Contributing) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[:8], math.Float64bits(c.gamma))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(c.levels)))
	buf.Write(hdr[:])
	for i := range c.levels {
		lv := &c.levels[i]
		var rate [8]byte
		binary.LittleEndian.PutUint64(rate[:], math.Float64bits(lv.rate))
		buf.Write(rate[:])
		if err := writePoly(&buf, lv.sampler); err != nil {
			return nil, err
		}
		hb, err := lv.hh.MarshalBinary()
		if err != nil {
			return nil, err
		}
		writeBlob(&buf, hb)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a battery written by MarshalBinary.
func (c *Contributing) UnmarshalBinary(data []byte) error {
	if len(data) < 12 {
		return fmt.Errorf("sketch: truncated Contributing header")
	}
	gamma := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
	n := int(binary.LittleEndian.Uint32(data[8:12]))
	if !(gamma > 0 && gamma <= 1) || n < 1 || n > 64 {
		return fmt.Errorf("sketch: implausible Contributing params gamma=%v levels=%d", gamma, n)
	}
	rest := data[12:]
	out := Contributing{gamma: gamma, levels: make([]contribLevel, n)}
	for i := 0; i < n; i++ {
		if len(rest) < 8 {
			return fmt.Errorf("sketch: truncated Contributing level %d rate", i)
		}
		out.levels[i].rate = math.Float64frombits(binary.LittleEndian.Uint64(rest[:8]))
		rest = rest[8:]
		var err error
		if out.levels[i].sampler, rest, err = readPoly(rest); err != nil {
			return err
		}
		hb, r2, err := readBlob(rest)
		if err != nil {
			return err
		}
		rest = r2
		hh := new(HeavyHitters)
		if err := hh.UnmarshalBinary(hb); err != nil {
			return fmt.Errorf("sketch: Contributing level %d: %w", i, err)
		}
		out.levels[i].hh = hh
	}
	if len(rest) != 0 {
		return fmt.Errorf("sketch: %d trailing bytes after Contributing", len(rest))
	}
	*c = out
	return nil
}
