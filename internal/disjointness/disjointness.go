// Package disjointness implements the lower-bound apparatus of Section 5:
// the r-player Set Disjointness problem with the unique-intersection
// promise, its reduction to Max 1-Cover on edge-arrival streams
// (Claims 5.3 and 5.4), a one-way communication protocol built on an
// L2 sketch that distinguishes the two cases in O(m/α²) space (the
// "inspiration" sketch of the paper's introduction), and the machinery
// the experiment suite uses to exhibit the Ω(m/α²) trade-off shape:
// the distinguisher's success probability collapses to chance once its
// width falls well below m/α².
//
// Theorem 3.3 itself is information-theoretic and cannot be "measured";
// what is reproducible is its operational content — the hard instances,
// their α-gap, and the space at which sketches stop resolving them. See
// DESIGN.md §3.
package disjointness

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"streamcover/internal/sketch"
	"streamcover/internal/stream"
)

// Instance is an r-player Set Disjointness instance under the promise:
// either the players' sets are pairwise disjoint (Yes) or there is exactly
// one item common to all players and the sets are otherwise disjoint (No).
type Instance struct {
	R    int  // players (the α of the reduction)
	M    int  // item universe [0, M)
	No   bool // true: unique common item exists
	Sets [][]uint32
	// Common is the planted common item when No (undefined otherwise).
	Common uint32
}

// Generate builds a promise instance: items [1, M) are partitioned into r
// contiguous blocks and each player draws `load` fraction of its block;
// in the No case item 0 is added to every player. r ≥ 2, M > r required.
func Generate(r, m int, no bool, load float64, rng *rand.Rand) (*Instance, error) {
	if r < 2 {
		return nil, fmt.Errorf("disjointness: r=%d < 2", r)
	}
	if m <= r {
		return nil, fmt.Errorf("disjointness: m=%d must exceed r=%d", m, r)
	}
	if load <= 0 || load > 1 {
		return nil, fmt.Errorf("disjointness: load %v out of (0,1]", load)
	}
	ins := &Instance{R: r, M: m, No: no, Sets: make([][]uint32, r)}
	pool := m - 1 // items 1..m-1 split across players
	for i := 0; i < r; i++ {
		lo := 1 + i*pool/r
		hi := 1 + (i+1)*pool/r
		for j := lo; j < hi; j++ {
			if rng.Float64() < load {
				ins.Sets[i] = append(ins.Sets[i], uint32(j))
			}
		}
		if no {
			ins.Sets[i] = append(ins.Sets[i], 0)
		}
	}
	ins.Common = 0
	return ins, nil
}

// CheckPromise verifies the unique-intersection promise, for tests.
func (ins *Instance) CheckPromise() error {
	count := make(map[uint32]int)
	for _, s := range ins.Sets {
		for _, j := range s {
			count[j]++
		}
	}
	var shared []uint32
	for j, c := range count {
		if c > 1 {
			if c != ins.R {
				return fmt.Errorf("item %d in %d players (neither 1 nor r)", j, c)
			}
			shared = append(shared, j)
		}
	}
	if ins.No && len(shared) != 1 {
		return fmt.Errorf("No instance has %d common items, want 1", len(shared))
	}
	if !ins.No && len(shared) != 0 {
		return fmt.Errorf("Yes instance has %d common items, want 0", len(shared))
	}
	return nil
}

// ToCoverStream applies the reduction of Section 5 to a Max 1-Cover
// instance: one element e_i per player, one set S_j per item, and an edge
// (S_j, e_i) whenever j ∈ T_i. In the No case the common item's set covers
// all r elements (Claim 5.3, OPT = r); in the Yes case every set is a
// singleton (Claim 5.4, OPT = 1) — an α = r gap.
func (ins *Instance) ToCoverStream() []stream.Edge {
	var edges []stream.Edge
	for i, s := range ins.Sets {
		for _, j := range s {
			edges = append(edges, stream.Edge{Set: j, Elem: uint32(i)})
		}
	}
	return edges
}

// CoverOPT computes the exact Max 1-Cover optimum of the reduced instance
// (the size of the largest set S_j).
func (ins *Instance) CoverOPT() int {
	count := make(map[uint32]int)
	for _, s := range ins.Sets {
		for _, j := range s {
			count[j]++
		}
	}
	best := 0
	for _, c := range count {
		if c > best {
			best = c
		}
	}
	return best
}

// Items returns the total number of (player, item) pairs — the stream
// length of the protocol.
func (ins *Instance) Items() int {
	t := 0
	for _, s := range ins.Sets {
		t += len(s)
	}
	return t
}

// Distinguisher resolves Yes vs No instances from the item stream using an
// L2 (CountSketch) sketch of the item-frequency vector v (v[j] = number of
// players whose set contains j): in the No case one coordinate has
// frequency r while everything else is 0/1, so with width Θ(m/r²) the
// per-bucket noise √(F2_rest/width) = Θ(r) sits below the signal for a
// suitable constant — an α-approximation to L∞(v) in O(m/α²) space,
// exactly the sketch the paper credits as the upper bound's inspiration.
type Distinguisher struct {
	cs    *sketch.CountSketch
	width int
	total int64
}

// NewDistinguisher builds the sketch with the given width (the experiment
// sweeps width to exhibit the Θ̃(m/α²) threshold).
func NewDistinguisher(width int, rng *rand.Rand) *Distinguisher {
	if width < 1 {
		width = 1
	}
	return &Distinguisher{cs: sketch.NewCountSketch(5, width, rng), width: width}
}

// Process feeds one (player, item) occurrence: an increment of v[item].
func (d *Distinguisher) Process(item uint32) {
	d.total++
	d.cs.Add(uint64(item), 1)
}

// MaxBucket returns the median across rows of each row's largest absolute
// counter — a proxy for L∞(v) up to bucket noise.
func (d *Distinguisher) MaxBucket() float64 {
	maxes := d.cs.RowMaxAbs()
	sort.Slice(maxes, func(i, j int) bool { return maxes[i] < maxes[j] })
	return float64(maxes[len(maxes)/2])
}

// NoiseFloor is the expected magnitude of the largest pure-noise bucket:
// per-bucket standard deviation √(T/W) (T unit updates signed into W
// buckets) inflated by the extreme-value factor √(2·ln W). A real common
// item of frequency r is detectable only when r clears this floor — which
// forces W = Ω̃(m/r²), the paper's trade-off.
func (d *Distinguisher) NoiseFloor() float64 {
	w := float64(d.width)
	if w < 2 {
		w = 2
	}
	sigma := math.Sqrt(float64(d.total) / w)
	return 1.3 * sigma * math.Sqrt(2*math.Log(w))
}

// DecideNo reports whether the sketch believes a common item of frequency
// ~r exists: the median row-max must clear both a constant fraction of the
// signal and the noise floor. When the width is far below m/r² the floor
// exceeds r and No instances become undetectable — the lower bound's
// operational content.
func (d *Distinguisher) DecideNo(r int) bool {
	thr := 0.7 * float64(r)
	if nf := d.NoiseFloor(); nf > thr {
		thr = nf
	}
	return d.MaxBucket() >= thr
}

// SpaceWords reports retained sketch state.
func (d *Distinguisher) SpaceWords() int { return d.cs.SpaceWords() }

// Protocol runs the one-way r-player communication protocol faithfully:
// player i adds its set to the sketch, SERIALIZES it, and hands the bytes
// to player i+1, who deserializes and continues; the last player decides.
// Returns the decision and the total bits actually transmitted across the
// r-1 hops — the quantity Theorem 5.1 lower-bounds by Ω(m/r). The update
// counter travels alongside (one extra word) so the final player can
// compute the noise floor.
func Protocol(ins *Instance, width int, rng *rand.Rand) (decidesNo bool, bitsCommunicated int, err error) {
	d := NewDistinguisher(width, rng)
	bits := 0
	for i, s := range ins.Sets {
		for _, j := range s {
			d.Process(j)
		}
		if i == ins.R-1 {
			break
		}
		blob, err := d.cs.MarshalBinary()
		if err != nil {
			return false, 0, err
		}
		bits += (len(blob) + 8) * 8 // sketch bytes + the update counter
		next := &Distinguisher{cs: new(sketch.CountSketch), width: d.width, total: d.total}
		if err := next.cs.UnmarshalBinary(blob); err != nil {
			return false, 0, err
		}
		d = next
	}
	return d.DecideNo(ins.R), bits, nil
}
