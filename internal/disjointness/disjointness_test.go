package disjointness

import (
	"math/rand"
	"testing"

	"streamcover/internal/stream"
)

func TestGenerateKeepsPromise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, no := range []bool{true, false} {
		for _, r := range []int{2, 8, 32} {
			ins, err := Generate(r, 4096, no, 0.5, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := ins.CheckPromise(); err != nil {
				t.Errorf("r=%d no=%v: %v", r, no, err)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := Generate(1, 100, true, 0.5, rng); err == nil {
		t.Error("r=1 accepted")
	}
	if _, err := Generate(8, 8, true, 0.5, rng); err == nil {
		t.Error("m<=r accepted")
	}
	if _, err := Generate(8, 100, true, 0, rng); err == nil {
		t.Error("load=0 accepted")
	}
	if _, err := Generate(8, 100, true, 1.5, rng); err == nil {
		t.Error("load>1 accepted")
	}
}

func TestReductionGap(t *testing.T) {
	// Claims 5.3 / 5.4: OPT of the reduced Max 1-Cover instance is r in
	// the No case and 1 in the Yes case — an r-factor gap.
	rng := rand.New(rand.NewSource(3))
	for _, r := range []int{4, 16} {
		no, _ := Generate(r, 2048, true, 0.5, rng)
		if got := no.CoverOPT(); got != r {
			t.Errorf("No instance OPT = %d, want r = %d", got, r)
		}
		yes, _ := Generate(r, 2048, false, 0.5, rng)
		if got := yes.CoverOPT(); got != 1 {
			t.Errorf("Yes instance OPT = %d, want 1", got)
		}
	}
}

func TestToCoverStreamShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ins, _ := Generate(4, 256, true, 0.5, rng)
	edges := ins.ToCoverStream()
	if len(edges) != ins.Items() {
		t.Errorf("stream has %d edges, want %d", len(edges), ins.Items())
	}
	// Element IDs are player indices; the common item's set covers all.
	players := make(map[uint32]bool)
	commonCover := make(map[uint32]bool)
	for _, e := range edges {
		if int(e.Elem) >= ins.R {
			t.Fatalf("element %d out of player range", e.Elem)
		}
		players[e.Elem] = true
		if e.Set == ins.Common {
			commonCover[e.Elem] = true
		}
	}
	if len(players) != ins.R || len(commonCover) != ins.R {
		t.Errorf("common set covers %d players of %d", len(commonCover), ins.R)
	}
	var _ stream.Iterator = stream.FromEdges(edges)
}

func TestDistinguisherAtAdequateWidth(t *testing.T) {
	// Width c·m/r² resolves Yes vs No with high success (E4's left side).
	const m = 8192
	rng := rand.New(rand.NewSource(5))
	for _, r := range []int{16, 32} {
		width := 32 * m / (r * r)
		correct := 0
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			no := trial%2 == 0
			ins, _ := Generate(r, m, no, 0.9, rng)
			d := NewDistinguisher(width, rng)
			for _, s := range ins.Sets {
				for _, j := range s {
					d.Process(j)
				}
			}
			if d.DecideNo(r) == no {
				correct++
			}
		}
		if correct < trials*3/4 {
			t.Errorf("r=%d width=%d: only %d/%d correct", r, width, correct, trials)
		}
	}
}

func TestDistinguisherCollapsesBelowThresholdWidth(t *testing.T) {
	// With width ≪ m/r² the noise floor √(T/width)·√(2·ln width) exceeds
	// the signal r, so No instances become undetectable (missed) — the
	// empirical face of the Ω(m/α²) lower bound (E4's right side).
	const m = 8192
	const r = 16
	rng := rand.New(rand.NewSource(6))
	tiny := m / (r * r * 2) // 1/64 of the width that works
	if tiny < 2 {
		tiny = 2
	}
	missed := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		ins, _ := Generate(r, m, true, 0.9, rng) // No instances
		d := NewDistinguisher(tiny, rng)
		for _, s := range ins.Sets {
			for _, j := range s {
				d.Process(j)
			}
		}
		if !d.DecideNo(r) {
			missed++
		}
	}
	if missed < trials*3/4 {
		t.Errorf("undersized sketch still detects the common item (%d/%d missed, expected near-total misses)",
			missed, trials)
	}
}

func TestProtocolBitsScale(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ins, _ := Generate(16, 4096, true, 0.9, rng)
	decision, bits, err := Protocol(ins, 32*4096/(16*16), rng)
	if err != nil {
		t.Fatal(err)
	}
	if !decision {
		t.Error("protocol failed to detect the common item")
	}
	if bits <= 0 {
		t.Error("no bits communicated")
	}
	// More players at the same width communicate more total bits, because
	// each of the r-1 hops serializes the same-width sketch.
	ins2, _ := Generate(32, 4096, true, 0.9, rng)
	_, bits2, err := Protocol(ins2, 32*4096/(16*16), rng)
	if err != nil {
		t.Fatal(err)
	}
	if bits2 <= bits {
		t.Errorf("bits did not grow with players: %d vs %d", bits, bits2)
	}
}

func TestProtocolMatchesMonolithicDistinguisher(t *testing.T) {
	// Serializing between players must not change the decision relative to
	// one player doing everything (same rng draw for the sketch).
	for _, no := range []bool{true, false} {
		rngA := rand.New(rand.NewSource(42))
		rngB := rand.New(rand.NewSource(42))
		insA, _ := Generate(16, 8192, no, 0.9, rngA)
		insB, _ := Generate(16, 8192, no, 0.9, rngB)
		width := 32 * 8192 / (16 * 16)
		mono := NewDistinguisher(width, rngA)
		for _, s := range insA.Sets {
			for _, j := range s {
				mono.Process(j)
			}
		}
		got, _, err := Protocol(insB, width, rngB)
		if err != nil {
			t.Fatal(err)
		}
		if got != mono.DecideNo(16) {
			t.Errorf("no=%v: protocol decision %v != monolithic %v", no, got, mono.DecideNo(16))
		}
	}
}

func TestDistinguisherWidthFloor(t *testing.T) {
	d := NewDistinguisher(0, rand.New(rand.NewSource(8)))
	d.Process(3)
	if d.SpaceWords() <= 0 {
		t.Error("degenerate width broke space accounting")
	}
}
