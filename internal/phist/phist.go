// Package phist provides a tiny lock-free power-of-two-bucketed histogram
// for latency samples. Bucket b counts samples v with 2^(b-1) <= v < 2^b
// (bucket 0 holds v <= 1), so the whole distribution fits in 64 atomic
// counters regardless of range — cheap enough for a per-batch hot path —
// and quantiles come out with at most one-bucket (2×) resolution, refined
// by linear interpolation inside the winning bucket.
//
// All methods are safe for concurrent use; Observe is a single atomic add.
package phist

import (
	"math/bits"
	"sync/atomic"
)

// Hist is a histogram of non-negative int64 samples (typically
// nanoseconds). The zero value is ready to use and must not be copied
// after first use.
type Hist struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

func bucketOf(v int64) int {
	b := bits.Len64(uint64(v))
	if b > 63 {
		b = 63
	}
	return b
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.count.Load() }

// Sum returns the sum of all recorded samples.
func (h *Hist) Sum() int64 { return h.sum.Load() }

// Mean returns the mean sample, 0 when empty.
func (h *Hist) Mean() int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Load() / n
}

// Quantile returns an estimate of the q-th quantile (0 < q <= 1): the
// sample value below which a q fraction of observations fall, linearly
// interpolated inside the power-of-two bucket that contains it. Returns 0
// when the histogram is empty. Concurrent Observe calls make the answer a
// snapshot, not an exact cut.
func (h *Hist) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := range h.buckets {
		n := h.buckets[b].Load()
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo, hi := bucketBounds(b)
			frac := float64(target-cum) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += n
	}
	// Races between count and bucket loads can leave target unreached;
	// answer with the top populated bucket's upper bound.
	for b := len(h.buckets) - 1; b >= 0; b-- {
		if h.buckets[b].Load() > 0 {
			_, hi := bucketBounds(b)
			return hi
		}
	}
	return 0
}

// bucketBounds returns the half-open sample range [lo, hi) counted by
// bucket b.
func bucketBounds(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 1
	}
	if b >= 63 {
		return 1 << 62, 1<<63 - 1
	}
	return 1 << (b - 1), 1 << b
}

// Buckets returns the non-empty buckets as parallel (upper-bound, count)
// slices, smallest bucket first — the compact wire form for a /metrics
// scrape.
func (h *Hist) Buckets() (uppers, counts []int64) {
	for b := range h.buckets {
		if n := h.buckets[b].Load(); n > 0 {
			_, hi := bucketBounds(b)
			uppers = append(uppers, hi)
			counts = append(counts, n)
		}
	}
	return uppers, counts
}
