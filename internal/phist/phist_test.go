package phist

import (
	"math/rand"
	"sync"
	"testing"
)

func TestBucketBoundsCoverInt64(t *testing.T) {
	for b := 0; b < 64; b++ {
		lo, hi := bucketBounds(b)
		if lo > hi {
			t.Fatalf("bucket %d: lo %d > hi %d", b, lo, hi)
		}
	}
	// Every sample lands in a bucket whose range contains it.
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, 1 << 40, 1<<62 + 5} {
		b := bucketOf(v)
		lo, hi := bucketBounds(b)
		if v < lo || (v >= hi && b < 63) {
			t.Errorf("sample %d binned to [%d,%d)", v, lo, hi)
		}
	}
}

func TestQuantileOrdering(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report 0")
	}
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000) // 1µs .. 1ms in ns
	}
	p50, p95, p99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%d p95=%d p99=%d", p50, p95, p99)
	}
	// Power-of-two buckets: answers are within 2x of the exact order
	// statistic.
	if p50 < 250_000 || p50 > 1_000_000 {
		t.Errorf("p50 = %d, want within 2x of 500000", p50)
	}
	if p99 < 495_000 || p99 > 1_980_000 {
		t.Errorf("p99 = %d, want within 2x of 990000", p99)
	}
	if h.Count() != 1000 {
		t.Errorf("count = %d, want 1000", h.Count())
	}
	if h.Mean() == 0 {
		t.Error("mean should be nonzero")
	}
}

func TestBucketsCompact(t *testing.T) {
	var h Hist
	h.Observe(3)
	h.Observe(3)
	h.Observe(1 << 20)
	uppers, counts := h.Buckets()
	if len(uppers) != 2 || len(counts) != 2 {
		t.Fatalf("want 2 populated buckets, got %v %v", uppers, counts)
	}
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("counts = %v, want [2 1]", counts)
	}
	if uppers[0] != 4 {
		t.Errorf("first upper = %d, want 4", uppers[0])
	}
}

func TestConcurrentObserve(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 1000; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if q := h.Quantile(0.99); q <= 0 {
		t.Fatalf("p99 = %d, want > 0", q)
	}
}
