package core

import (
	"math/rand"

	"streamcover/internal/stream"
)

// OracleResult is what an (α, δ, η)-oracle reports after its single pass.
type OracleResult struct {
	// Value is the coverage estimate. Per Definition 3.4 it is (w.h.p.)
	// never above the optimal coverage, and whenever OPT covers at least
	// a 1/η fraction of the universe it is at least OPT/Õ(α).
	Value float64
	// Feasible is false when every subroutine declined (the paper's
	// "infeasible" return).
	Feasible bool
	// SetIDs are up to k set IDs backing the estimate, for the reporting
	// variant (Theorem 3.2). May be nil when only estimation ran.
	SetIDs []uint32
}

// CoverageOracle is the streaming contract of Definition 3.4: a
// single-pass structure whose post-pass Result must (1) never overestimate
// the optimal coverage w.h.p. and (2) reach OPT/α whenever OPT ≥ |U|/η.
// EstimateMaxCover (Theorem 3.6) is generic over this interface.
type CoverageOracle interface {
	Process(e stream.Edge)
	Result() OracleResult
	SpaceWords() int
}

// OracleFactory builds a fresh oracle instance for the (possibly
// universe-reduced) dimensions in d.
type OracleFactory func(d Derived, rng *rand.Rand) CoverageOracle

// Oracle is the paper's (Õ(α), δ, η)-oracle (Figure 2, Theorem 4.1): it
// runs LargeCommon, LargeSet and SmallSet in parallel on the same pass and
// returns their maximum. The case analysis of Section 4 guarantees that on
// any instance with OPT ≥ |U|/η at least one subroutine accepts:
//
//	case I   — many β-common elements            → LargeCommon
//	case II  — |C(OPTlarge)| ≥ |C(OPT)|/2        → LargeSet
//	case III — |C(OPTlarge)| < |C(OPT)|/2        → SmallSet
//
// (Figure 2 skips SmallSet when sα ≥ 2k, where Claim 4.3 forces case II;
// with w = min(k, α) and practical constants sα < 2k always holds, and an
// extra subroutine can only raise the max, so all three always run.)
type Oracle struct {
	d   Derived
	lc  *LargeCommon
	ls  *LargeSet
	ss  *SmallSet
	rng *rand.Rand
}

// NewOracle builds the three-subroutine oracle.
func NewOracle(d Derived, rng *rand.Rand) *Oracle {
	return &Oracle{
		d:   d,
		lc:  NewLargeCommon(d, rng),
		ls:  NewLargeSet(d, rng),
		ss:  NewSmallSet(d, rng),
		rng: rng,
	}
}

// NewOracleFactory adapts NewOracle to the OracleFactory signature.
func NewOracleFactory() OracleFactory {
	return func(d Derived, rng *rand.Rand) CoverageOracle {
		return NewOracle(d, rng)
	}
}

// Process fans the edge out to all three subroutines.
func (o *Oracle) Process(e stream.Edge) {
	o.lc.Process(e)
	o.ls.Process(e)
	o.ss.Process(e)
}

// Result returns the maximum of the subroutines' estimates, with the
// winner's candidate sets attached.
func (o *Oracle) Result() OracleResult {
	res := OracleResult{}
	if v, _, ok := o.lc.Estimate(); ok && v > res.Value {
		res = OracleResult{Value: v, Feasible: true, SetIDs: o.lc.CandidateSets(o.rng)}
	}
	if lsr := o.ls.Estimate(); lsr.Feasible && lsr.Value > res.Value {
		res = OracleResult{Value: lsr.Value, Feasible: true, SetIDs: o.ls.CandidateSets()}
	}
	if ssr := o.ss.Estimate(); ssr.Feasible && ssr.Value > res.Value {
		res = OracleResult{Value: ssr.Value, Feasible: true, SetIDs: ssr.SetIDs}
	}
	return res
}

// SpaceWords sums the three subroutines.
func (o *Oracle) SpaceWords() int {
	return o.lc.SpaceWords() + o.ls.SpaceWords() + o.ss.SpaceWords()
}

// SpaceBreakdown reports each subroutine's retained words, for the space
// composition experiment.
func (o *Oracle) SpaceBreakdown() map[string]int {
	return map[string]int{
		"largecommon": o.lc.SpaceWords(),
		"largeset":    o.ls.SpaceWords(),
		"smallset":    o.ss.SpaceWords(),
	}
}

// LargeCommonEstimate exposes the case-I subroutine's verdict, for the
// dispatch experiment (E15) and diagnostics.
func (o *Oracle) LargeCommonEstimate() (val, beta float64, ok bool) {
	return o.lc.Estimate()
}

// LargeSetEstimate exposes the case-II subroutine's verdict.
func (o *Oracle) LargeSetEstimate() LargeSetResult { return o.ls.Estimate() }

// SmallSetEstimate exposes the case-III subroutine's verdict.
func (o *Oracle) SmallSetEstimate() SmallSetResult { return o.ss.Estimate() }
