package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// TestEstimatorNeverCrashesOnRandomTinyInstances is a robustness property:
// arbitrary tiny dimensions and random edges must never panic and must
// never report a value above the universe size.
func TestEstimatorNeverCrashesOnRandomTinyInstances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(40)
		n := 1 + rng.Intn(60)
		k := 1 + rng.Intn(m)
		alpha := 1 + 4*rng.Float64()
		est, err := NewEstimator(m, n, k, alpha, Practical(), NewOracleFactory(), rng)
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			est.Process(stream.Edge{
				Set:  uint32(rng.Intn(m)),
				Elem: uint32(rng.Intn(n)),
			})
		}
		r := est.Result()
		return r.Value <= float64(n)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestGreedyOnPairsMatchesSetSystem is a property of SmallSet's offline
// stage: greedyOnPairs on a stored map must compute the same coverage as
// the setsystem greedy on the equivalent instance.
func TestGreedyOnPairsMatchesSetSystem(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := workload.Uniform(30, 10, 3, 6, rng)
		pairs := make(map[uint32][]uint32)
		for i, s := range in.System.Sets {
			if len(s) > 0 {
				pairs[uint32(i)] = s
			}
		}
		_, got := greedyOnPairs(pairs, in.K)
		_, want := in.System.LazyGreedy(in.K)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRateThresholdMonotone: rate thresholds preserve order, the
// foundation of the nested-sampling layers.
func TestRateThresholdMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		if a > 1 {
			a = 1 / a
		}
		if b > 1 {
			b = 1 / b
		}
		ta, tb := rateThreshold(a), rateThreshold(b)
		if a <= b {
			return ta <= tb
		}
		return ta >= tb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if rateThreshold(0) != 0 {
		t.Error("rateThreshold(0) != 0")
	}
}

// TestPaperConstantsAreConservative runs the estimator end-to-end with the
// literal Table 2 constants on a laptop-scale instance: the subroutines'
// acceptance thresholds (σ ~ 10^-5, f ~ 10^2) are so demanding that the
// oracle returns only tiny certified values — never an overestimate. This
// documents DESIGN.md §3's claim that the paper preset is for formula
// fidelity, not for running.
func TestPaperConstantsAreConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := workload.PlantedCover(4000, 800, 20, 0.8, 5, rng)
	p := Paper(in.System.M(), in.System.N)
	est, err := NewEstimator(in.System.M(), in.System.N, in.K, 4, p, NewOracleFactory(), rng)
	if err != nil {
		t.Fatal(err)
	}
	it := stream.Linearize(in.System, stream.Shuffled, rng)
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		est.Process(e)
	}
	r := est.Result()
	if r.Feasible && r.Value > float64(in.PlantedCoverage) {
		t.Errorf("paper constants overestimated: %v > OPT %d", r.Value, in.PlantedCoverage)
	}
	prac, err := NewEstimator(in.System.M(), in.System.N, in.K, 4, Practical(), NewOracleFactory(), rng)
	if err != nil {
		t.Fatal(err)
	}
	it.Reset()
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		prac.Process(e)
	}
	pr := prac.Result()
	if !pr.Feasible {
		t.Fatal("practical preset infeasible on the planted instance")
	}
	if r.Feasible && r.Value > pr.Value {
		t.Errorf("paper constants (%v) beat practical (%v)? calibration claim inverted", r.Value, pr.Value)
	}
}

// TestHLLBackendEndToEnd: the estimator stays inside the guarantee window
// with the HyperLogLog distinct-count backend.
func TestHLLBackendEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := workload.PlantedCover(6000, 800, 20, 0.8, 5, rng)
	p := Practical()
	p.UseHLL = true
	est, err := NewEstimator(in.System.M(), in.System.N, in.K, 4, p, NewOracleFactory(), rng)
	if err != nil {
		t.Fatal(err)
	}
	it := stream.Linearize(in.System, stream.Shuffled, rng)
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		est.Process(e)
	}
	r := est.Result()
	opt := float64(in.PlantedCoverage)
	if !r.Feasible {
		t.Fatal("HLL backend infeasible")
	}
	if r.Value > 1.4*opt || r.Value < opt/(1.5*4) {
		t.Errorf("HLL backend estimate %v outside [OPT/6, 1.4·OPT], OPT=%v", r.Value, opt)
	}
}

// TestParallelProcessingDeterministic at the core layer (the facade test
// covers the public path).
func TestParallelProcessingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := workload.PlantedCover(5000, 500, 10, 0.8, 3, rng)
	edges := stream.Linearize(in.System, stream.Shuffled, rng).Edges()
	build := func() *Estimator {
		e, err := NewEstimator(in.System.M(), in.System.N, in.K, 4, Practical(),
			NewOracleFactory(), rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	seq := build()
	for _, e := range edges {
		seq.Process(e)
	}
	for _, workers := range []int{1, 3, 16} {
		par := build()
		par.ProcessAllParallel(edges, workers)
		if par.Result().Value != seq.Result().Value {
			t.Errorf("workers=%d diverged: %v vs %v", workers, par.Result().Value, seq.Result().Value)
		}
	}
}
