package core

import (
	"math"
	"math/rand"

	"streamcover/internal/hash"
	"streamcover/internal/sketch"
	"streamcover/internal/stream"
)

// SupersetPartition is the random partition of F into |Q| supersets via a
// Θ(log(mn))-wise hash (Section 4.2): set S belongs to superset h(S).
// With |Q| = Θ(m·log m/w), no superset holds more than w sets (Claim 4.9)
// and no non-w-common element repeats more than f = Õ(1) times inside one
// superset (Claim 4.10), so a superset's total size is an f-accurate proxy
// for its coverage.
type SupersetPartition struct {
	h *hash.Poly
	q int
}

// NewSupersetPartition builds a partition with |Q| = QFactor·m·log2(m)/w
// buckets (minimum 2).
func NewSupersetPartition(d Derived, rng *rand.Rand) *SupersetPartition {
	q := int(math.Ceil(d.P.QFactor * float64(d.M) * math.Log2(float64(d.M)+2) / d.W))
	if q < 2 {
		q = 2
	}
	return &SupersetPartition{h: d.newHash(rng), q: q}
}

// Superset maps a set id to its superset id in [0, Q).
func (sp *SupersetPartition) Superset(set uint32) uint64 {
	return sp.h.Range(uint64(set), uint64(sp.q))
}

// Q reports the number of supersets.
func (sp *SupersetPartition) Q() int { return sp.q }

// Members enumerates the sets of one superset (post-pass recovery for
// solution reporting), up to the cap.
func (sp *SupersetPartition) Members(m int, superset uint64, cap int) []uint32 {
	var out []uint32
	for i := 0; i < m; i++ {
		if sp.Superset(uint32(i)) == superset {
			out = append(out, uint32(i))
			if len(out) == cap {
				break
			}
		}
	}
	return out
}

// SpaceWords counts the retained hash function.
func (sp *SupersetPartition) SpaceWords() int { return sp.h.SpaceWords() + 1 }

// LargeSet is the heavy-hitter subroutine of Section 4.2 / Appendix B
// (Figures 4, 6 and 7). It handles oracle case II: an optimal solution
// whose coverage is dominated by OPTlarge, the ≤ sα sets contributing at
// least z/(sα) each. Each of LSReps repetitions:
//
//  1. samples elements L ⊆ U at rate ρ = Θ̃(α/n) (step 1 of Appendix B,
//     so that w.h.p. some repetition avoids all w-common elements),
//  2. partitions sets into supersets and feeds superset IDs of sampled
//     edges to two F2-Contributing batteries — Cntr_small for classes of
//     size ≤ r1 = 3sα (Case 1, φ1 = Ω̃(α²/m)) and Cntr_large for classes
//     of size ≤ r2 (Case 2, φ2 = Ω̃(1)),
//  3. tracks a uniform sample of supersets with L0 sketches — the
//     fallback for contributing classes larger than r2 (Figure 6's last
//     block).
//
// A repetition reports a superset whose frequency (total size on L)
// clears thr1 = |L|/Θ(ηsα) or thr2 = |L|/Θ(ηα); dividing by f bounds its
// coverage from below, and rescaling by 1/ρ returns to universe scale.
type LargeSet struct {
	d    Derived
	reps []lsRep
	rho  float64
}

type lsRep struct {
	elemSamp   *hash.Poly
	part       *SupersetPartition
	cntrSmall  *sketch.Contributing
	cntrLarge  *sketch.Contributing
	sampled    map[uint64]sketch.DistinctCounter // fallback: sampled superset -> coverage sketch
	sampledIDs []uint64
}

// NewLargeSet builds the subroutine for the dimensions in d.
func NewLargeSet(d Derived, rng *rand.Rand) *LargeSet {
	rho := d.P.ElemSampleTarget * d.Alpha / float64(d.N)
	if rho > 1 {
		rho = 1
	}
	phi1 := d.P.Phi1Const * d.Alpha * d.Alpha / float64(d.M)
	if phi1 > 1 {
		phi1 = 1
	}
	if phi1 < 1e-6 {
		phi1 = 1e-6
	}
	phi2 := d.P.Phi2
	ls := &LargeSet{d: d, rho: rho}
	for r := 0; r < d.P.LSReps; r++ {
		part := NewSupersetPartition(d, rng)
		r1 := int(math.Ceil(3 * d.SAlpha))
		if r1 < 1 {
			r1 = 1
		}
		r2 := int(math.Ceil(d.P.R2Frac * float64(part.Q())))
		if r2 < 1 {
			r2 = 1
		}
		rep := lsRep{
			elemSamp:  d.newHash(rng),
			part:      part,
			cntrSmall: sketch.NewF2Contributing(phi1, r1, part.Q(), d.P.ContribCfg, rng),
			cntrLarge: sketch.NewF2Contributing(phi2, r2, part.Q(), d.P.ContribCfg, rng),
			sampled:   make(map[uint64]sketch.DistinctCounter),
		}
		// Fallback sample of supersets, tracked exactly by L0 sketches.
		sample := d.P.SupersetSampleSize
		if sample > part.Q() {
			sample = part.Q()
		}
		for _, id := range rng.Perm(part.Q())[:sample] {
			rep.sampled[uint64(id)] = d.newL0(rng)
			rep.sampledIDs = append(rep.sampledIDs, uint64(id))
		}
		ls.reps = append(ls.reps, rep)
	}
	return ls
}

// Rho reports the element-sampling rate.
func (ls *LargeSet) Rho() float64 { return ls.rho }

// Process feeds one edge to every repetition whose element sample keeps it.
func (ls *LargeSet) Process(e stream.Edge) {
	for i := range ls.reps {
		rep := &ls.reps[i]
		if !rep.elemSamp.Bernoulli(uint64(e.Elem), ls.rho) {
			continue
		}
		ss := rep.part.Superset(e.Set)
		rep.cntrSmall.Add(ss)
		rep.cntrLarge.Add(ss)
		if de, ok := rep.sampled[ss]; ok {
			de.Add(uint64(e.Elem))
		}
	}
}

// LargeSetResult is a repetition's winning superset and estimate.
type LargeSetResult struct {
	Value    float64 // universe-scale coverage lower bound
	Superset uint64
	Rep      int
	Feasible bool
}

// Estimate returns the best result across repetitions. A repetition
// accepts a superset when its measured frequency on L clears half the
// paper's threshold (thr1 for Case-1 classes, thr2 for Case-2 and the
// fallback); the estimate is (2ṽ/3f)/ρ — frequency corrected down by the
// multiplicity allowance f, rescaled to universe scale, capped at n.
func (ls *LargeSet) Estimate() LargeSetResult {
	expL := ls.rho * float64(ls.d.N)
	thr1 := expL / (6 * ls.d.P.Eta * ls.d.SAlpha)
	thr2 := expL / (3 * ls.d.P.Eta * ls.d.Alpha)
	best := LargeSetResult{}
	consider := func(rep int, superset uint64, freq float64, thr float64, dedup bool) {
		if freq < thr/2 {
			return
		}
		val := 2 * freq / 3
		if !dedup {
			val /= ls.d.P.FMult // total size -> coverage (Claim 4.10)
		}
		val /= ls.rho // back to universe scale
		if val > float64(ls.d.N) {
			val = float64(ls.d.N)
		}
		if val > best.Value {
			best = LargeSetResult{Value: val, Superset: superset, Rep: rep, Feasible: true}
		}
	}
	for i := range ls.reps {
		rep := &ls.reps[i]
		for _, it := range rep.cntrSmall.Report() {
			consider(i, it.ID, it.Weight, thr1, false)
		}
		for _, it := range rep.cntrLarge.Report() {
			consider(i, it.ID, it.Weight, thr2, false)
		}
		for _, id := range rep.sampledIDs {
			consider(i, id, rep.sampled[id].Estimate(), thr2, true)
		}
	}
	return best
}

// CandidateSets recovers the winning superset's member sets (≤ k of them;
// supersets hold at most w ≤ k sets w.h.p. per Claim 4.9). Returns nil if
// infeasible.
func (ls *LargeSet) CandidateSets() []uint32 {
	res := ls.Estimate()
	if !res.Feasible {
		return nil
	}
	return ls.reps[res.Rep].part.Members(ls.d.M, res.Superset, ls.d.K)
}

// SpaceWords sums all repetitions.
func (ls *LargeSet) SpaceWords() int {
	w := 2
	for i := range ls.reps {
		rep := &ls.reps[i]
		w += rep.elemSamp.SpaceWords() + rep.part.SpaceWords()
		w += rep.cntrSmall.SpaceWords() + rep.cntrLarge.SpaceWords()
		for _, de := range rep.sampled {
			w += de.SpaceWords() + 1
		}
	}
	return w
}
