package core

import (
	"encoding/binary"
	"fmt"

	"streamcover/internal/hash"
	"streamcover/internal/sketch"
)

// Snapshot codec for the full estimation pipeline. The top-level contract
// (used by the root facade's Estimator.Encode and the kcoverd checkpoint
// files) is asymmetric by design:
//
//   - AppendState serializes everything the stream changed — counters,
//     retained hash VALUES, stored pairs, dead flags — plus the structural
//     hash FUNCTIONS, so the blob is self-checking.
//   - RestoreState folds a blob into a FRESHLY CONSTRUCTED estimator with
//     the same dimensions, parameters and seed. Construction regenerates
//     every hash function deterministically; restore verifies the blob's
//     hashes against the construction's (catching snapshots from a
//     different seed or an incompatible code version) and adopts the data
//     state. A restored estimator is equivalent to the encoded one: same
//     future outputs under any further Process/Merge/Result sequence,
//     same SpaceWords.
//
// Transient working memory — the BatchScratch and the sketches' deferred
// batch buffers — is deliberately excluded, mirroring the SpaceWords
// contract: it holds nothing that survives a batch and is rebuilt lazily
// by the first ProcessBatch after restore.

// stateReader walks a state blob with bounds-checked reads.
type stateReader struct {
	data []byte
}

func (r *stateReader) uvarint(what string) (uint64, error) {
	v, w := binary.Uvarint(r.data)
	if w <= 0 {
		return 0, fmt.Errorf("core: snapshot: bad %s", what)
	}
	r.data = r.data[w:]
	return v, nil
}

// count reads a uvarint that must match an expected structural count.
func (r *stateReader) count(what string, want int) error {
	v, err := r.uvarint(what)
	if err != nil {
		return err
	}
	if v != uint64(want) {
		return fmt.Errorf("core: snapshot: %s = %d, construction has %d", what, v, want)
	}
	return nil
}

func (r *stateReader) byte(what string) (byte, error) {
	if len(r.data) < 1 {
		return 0, fmt.Errorf("core: snapshot: truncated %s", what)
	}
	b := r.data[0]
	r.data = r.data[1:]
	return b, nil
}

func (r *stateReader) blob(what string) ([]byte, error) {
	n, err := r.uvarint(what)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)) {
		return nil, fmt.Errorf("core: snapshot: truncated %s (%d of %d bytes)", what, len(r.data), n)
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b, nil
}

func appendBlob(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendPolyState(buf []byte, p *hash.Poly) ([]byte, error) {
	b, err := p.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return appendBlob(buf, b), nil
}

// verifyPoly decodes a poly blob and checks it is the same function the
// construction drew — the snapshot's integrity anchor at every level.
func (r *stateReader) verifyPoly(what string, want *hash.Poly) error {
	b, err := r.blob(what)
	if err != nil {
		return err
	}
	var p hash.Poly
	if err := p.UnmarshalBinary(b); err != nil {
		return fmt.Errorf("core: snapshot: %s: %w", what, err)
	}
	if !p.Equal(want) {
		return fmt.Errorf("core: snapshot: %s differs from construction (different seed or version?)", what)
	}
	return nil
}

// Distinct-counter tags.
const (
	ctrL0  byte = 0
	ctrHLL byte = 1
)

func appendCounter(buf []byte, de sketch.DistinctCounter) ([]byte, error) {
	switch c := de.(type) {
	case *sketch.L0:
		b, err := c.MarshalBinary()
		if err != nil {
			return nil, err
		}
		return appendBlob(append(buf, ctrL0), b), nil
	case *sketch.HLL:
		b, err := c.MarshalBinary()
		if err != nil {
			return nil, err
		}
		return appendBlob(append(buf, ctrHLL), b), nil
	default:
		return nil, fmt.Errorf("core: snapshot: unencodable distinct counter %T", de)
	}
}

// restoreCounter decodes a tagged counter blob and folds it into the
// freshly constructed (empty) counter via MergeDistinct, which verifies
// implementation and hash identity and, on an empty target, reproduces the
// decoded state exactly.
func (r *stateReader) restoreCounter(what string, into sketch.DistinctCounter) error {
	tag, err := r.byte(what + " tag")
	if err != nil {
		return err
	}
	b, err := r.blob(what)
	if err != nil {
		return err
	}
	var dec sketch.DistinctCounter
	switch tag {
	case ctrL0:
		s := new(sketch.L0)
		if err := s.UnmarshalBinary(b); err != nil {
			return fmt.Errorf("core: snapshot: %s: %w", what, err)
		}
		dec = s
	case ctrHLL:
		s := new(sketch.HLL)
		if err := s.UnmarshalBinary(b); err != nil {
			return fmt.Errorf("core: snapshot: %s: %w", what, err)
		}
		dec = s
	default:
		return fmt.Errorf("core: snapshot: unknown counter tag %d in %s", tag, what)
	}
	if err := sketch.MergeDistinct(into, dec); err != nil {
		return fmt.Errorf("core: snapshot: %s: %w", what, err)
	}
	return nil
}

// appendState serializes the case-I subroutine.
func (lc *LargeCommon) appendState(buf []byte) ([]byte, error) {
	buf, err := appendPolyState(buf, lc.h)
	if err != nil {
		return nil, err
	}
	buf = binary.AppendUvarint(buf, uint64(len(lc.layers)))
	for i := range lc.layers {
		if buf, err = appendCounter(buf, lc.layers[i].de); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func (lc *LargeCommon) restoreState(r *stateReader) error {
	if err := r.verifyPoly("LargeCommon hash", lc.h); err != nil {
		return err
	}
	if err := r.count("LargeCommon layers", len(lc.layers)); err != nil {
		return err
	}
	for i := range lc.layers {
		if err := r.restoreCounter(fmt.Sprintf("LargeCommon layer %d", i), lc.layers[i].de); err != nil {
			return err
		}
	}
	return nil
}

// appendState serializes the case-II subroutine.
func (ls *LargeSet) appendState(buf []byte) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(ls.reps)))
	var err error
	for i := range ls.reps {
		rep := &ls.reps[i]
		if buf, err = appendPolyState(buf, rep.elemSamp); err != nil {
			return nil, err
		}
		if buf, err = appendPolyState(buf, rep.part.h); err != nil {
			return nil, err
		}
		buf = binary.AppendUvarint(buf, uint64(rep.part.q))
		for _, cntr := range []*sketch.Contributing{rep.cntrSmall, rep.cntrLarge} {
			b, err := cntr.MarshalBinary()
			if err != nil {
				return nil, err
			}
			buf = appendBlob(buf, b)
		}
		buf = binary.AppendUvarint(buf, uint64(len(rep.sampledIDs)))
		for _, id := range rep.sampledIDs {
			buf = binary.AppendUvarint(buf, id)
			if buf, err = appendCounter(buf, rep.sampled[id]); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

func (ls *LargeSet) restoreState(r *stateReader) error {
	if err := r.count("LargeSet reps", len(ls.reps)); err != nil {
		return err
	}
	for i := range ls.reps {
		rep := &ls.reps[i]
		if err := r.verifyPoly("LargeSet element sampler", rep.elemSamp); err != nil {
			return err
		}
		if err := r.verifyPoly("LargeSet partition hash", rep.part.h); err != nil {
			return err
		}
		if err := r.count("LargeSet superset count", rep.part.q); err != nil {
			return err
		}
		for bi, cntr := range []*sketch.Contributing{rep.cntrSmall, rep.cntrLarge} {
			b, err := r.blob("LargeSet contributing battery")
			if err != nil {
				return err
			}
			dec := new(sketch.Contributing)
			if err := dec.UnmarshalBinary(b); err != nil {
				return fmt.Errorf("core: snapshot: LargeSet rep %d battery %d: %w", i, bi, err)
			}
			if err := cntr.Restore(dec); err != nil {
				return fmt.Errorf("core: snapshot: LargeSet rep %d battery %d: %w", i, bi, err)
			}
		}
		if err := r.count("LargeSet fallback sample", len(rep.sampledIDs)); err != nil {
			return err
		}
		for _, want := range rep.sampledIDs {
			id, err := r.uvarint("LargeSet sampled superset id")
			if err != nil {
				return err
			}
			if id != want {
				return fmt.Errorf("core: snapshot: LargeSet sampled superset %d, construction has %d", id, want)
			}
			if err := r.restoreCounter(fmt.Sprintf("LargeSet superset %d", id), rep.sampled[id]); err != nil {
				return err
			}
		}
	}
	return nil
}

// appendPairs serializes a (set -> sampled elements) store sorted by set
// id, preserving per-set element order (greedy tie-breaking depends on it).
func appendPairs(buf []byte, pairs map[uint32][]uint32) []byte {
	ids := make([]uint32, 0, len(pairs))
	for id := range pairs {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // insertion sort: stores are small
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
		elems := pairs[id]
		buf = binary.AppendUvarint(buf, uint64(len(elems)))
		for _, e := range elems {
			buf = binary.AppendUvarint(buf, uint64(e))
		}
	}
	return buf
}

func (r *stateReader) readPairs(what string) (map[uint32][]uint32, error) {
	n, err := r.uvarint(what + " size")
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data))+1 {
		return nil, fmt.Errorf("core: snapshot: implausible %s size %d", what, n)
	}
	pairs := make(map[uint32][]uint32, n)
	for i := uint64(0); i < n; i++ {
		id, err := r.uvarint(what + " set id")
		if err != nil {
			return nil, err
		}
		cnt, err := r.uvarint(what + " element count")
		if err != nil {
			return nil, err
		}
		if id > 1<<31 || cnt > uint64(len(r.data))+1 {
			return nil, fmt.Errorf("core: snapshot: implausible %s entry", what)
		}
		if _, dup := pairs[uint32(id)]; dup {
			return nil, fmt.Errorf("core: snapshot: duplicate %s set %d", what, id)
		}
		elems := make([]uint32, cnt)
		for j := range elems {
			e, err := r.uvarint(what + " element")
			if err != nil {
				return nil, err
			}
			if e > 1<<31 {
				return nil, fmt.Errorf("core: snapshot: implausible %s element %d", what, e)
			}
			elems[j] = uint32(e)
		}
		pairs[uint32(id)] = elems
	}
	return pairs, nil
}

// appendState serializes the case-III subroutine.
func (ss *SmallSet) appendState(buf []byte) ([]byte, error) {
	var err error
	for _, p := range []*hash.Poly{ss.setSamp, ss.pickSamp, ss.estSamp} {
		if buf, err = appendPolyState(buf, p); err != nil {
			return nil, err
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(ss.layers)))
	for i := range ss.layers {
		l := &ss.layers[i]
		if l.dead {
			buf = append(buf, 1)
			buf = binary.AppendUvarint(buf, uint64(l.count)) // zero; kept for format uniformity
			continue
		}
		buf = append(buf, 0)
		buf = binary.AppendUvarint(buf, uint64(l.count))
		buf = appendPairs(buf, l.pick)
		buf = appendPairs(buf, l.est)
	}
	return buf, nil
}

func (ss *SmallSet) restoreState(r *stateReader) error {
	for _, p := range []*hash.Poly{ss.setSamp, ss.pickSamp, ss.estSamp} {
		if err := r.verifyPoly("SmallSet sampler", p); err != nil {
			return err
		}
	}
	if err := r.count("SmallSet layers", len(ss.layers)); err != nil {
		return err
	}
	for i := range ss.layers {
		l := &ss.layers[i]
		dead, err := r.byte("SmallSet layer flag")
		if err != nil {
			return err
		}
		count, err := r.uvarint("SmallSet layer count")
		if err != nil {
			return err
		}
		if dead != 0 {
			if !l.dead {
				ss.kill(l)
			}
			l.count = int(count)
			continue
		}
		pick, err := r.readPairs("SmallSet pick store")
		if err != nil {
			return err
		}
		est, err := r.readPairs("SmallSet est store")
		if err != nil {
			return err
		}
		l.pick, l.est, l.count = pick, est, int(count)
	}
	return nil
}

// PersistentOracle is implemented by oracles whose full state can be
// snapshotted and restored (the built-in three-subroutine Oracle is one).
type PersistentOracle interface {
	CoverageOracle
	AppendState(buf []byte) ([]byte, error)
	RestoreState(r *stateReader) error
}

// AppendState serializes the three subroutines.
func (o *Oracle) AppendState(buf []byte) ([]byte, error) {
	for _, part := range []func([]byte) ([]byte, error){o.lc.appendState, o.ls.appendState, o.ss.appendState} {
		var err error
		if buf, err = part(buf); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// RestoreState folds a snapshot into a freshly constructed oracle.
func (o *Oracle) RestoreState(r *stateReader) error {
	if err := o.lc.restoreState(r); err != nil {
		return err
	}
	if err := o.ls.restoreState(r); err != nil {
		return err
	}
	return o.ss.restoreState(r)
}

// AppendState appends the estimator's full mutable state to buf. The
// caller (the root facade, the kcoverd checkpoint writer) wraps it in a
// versioned envelope together with the construction parameters needed to
// rebuild the estimator before RestoreState.
func (est *Estimator) AppendState(buf []byte) ([]byte, error) {
	if est.trivial {
		return append(buf, 1), nil
	}
	buf = append(buf, 0)
	buf = binary.AppendUvarint(buf, uint64(len(est.guesses)))
	var err error
	for gi := range est.guesses {
		g := &est.guesses[gi]
		buf = binary.AppendUvarint(buf, uint64(g.z))
		buf = binary.AppendUvarint(buf, uint64(len(g.reps)))
		for ri := range g.reps {
			rep := &g.reps[ri]
			if buf, err = appendPolyState(buf, rep.h); err != nil {
				return nil, err
			}
			po, ok := rep.oracle.(PersistentOracle)
			if !ok {
				return nil, fmt.Errorf("core: snapshot: oracle %T is not persistent", rep.oracle)
			}
			if buf, err = po.AppendState(buf); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

// RestoreState folds a state blob written by AppendState into est, which
// must be freshly constructed with the same dimensions, parameters and
// seed. The whole blob must be consumed; structural or hash mismatches
// abort with an error and leave est in an undefined state (callers build
// a new estimator per attempt).
func (est *Estimator) RestoreState(data []byte) error {
	r := &stateReader{data: data}
	trivial, err := r.byte("estimator header")
	if err != nil {
		return err
	}
	if (trivial != 0) != est.trivial {
		return fmt.Errorf("core: snapshot: trivial-case mismatch")
	}
	if !est.trivial {
		if err := r.count("estimator guesses", len(est.guesses)); err != nil {
			return err
		}
		for gi := range est.guesses {
			g := &est.guesses[gi]
			if err := r.count("guess z", g.z); err != nil {
				return err
			}
			if err := r.count("guess reps", len(g.reps)); err != nil {
				return err
			}
			for ri := range g.reps {
				rep := &g.reps[ri]
				if err := r.verifyPoly("universe-reduction hash", rep.h); err != nil {
					return err
				}
				po, ok := rep.oracle.(PersistentOracle)
				if !ok {
					return fmt.Errorf("core: snapshot: oracle %T is not persistent", rep.oracle)
				}
				if err := po.RestoreState(r); err != nil {
					return fmt.Errorf("core: snapshot: guess %d rep %d: %w", gi, ri, err)
				}
			}
		}
	}
	if len(r.data) != 0 {
		return fmt.Errorf("core: snapshot: %d trailing bytes", len(r.data))
	}
	return nil
}
