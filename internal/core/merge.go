package core

import (
	"fmt"

	"streamcover/internal/sketch"
)

// Distributed merging: two estimators built with the SAME dimensions,
// parameters and seed draw identical hash functions, so each is a valid
// summary of whatever edge shard it consumed and the pair merges into a
// summary of the union — the edge stream may be partitioned arbitrarily
// across workers (sharding by edge, by set, or by time all work, and
// duplicate edges across shards are harmless for the dedup-based parts).
//
// Exactness notes: the L0/bitonic parts merge exactly; CountSketch-based
// parts merge exactly at the counter level with candidate dictionaries
// unioned and re-trimmed (heavy coordinates keep their slots); SmallSet's
// stored pairs are a deterministic function of the hashes, so the merged
// store equals the whole-stream store unless a shard tripped its storage
// cap earlier than the whole stream would have (a shard marked dead stays
// dead, which only ever makes the oracle more conservative).

// Merge folds other into lc. Both must come from equal-seed constructions.
func (lc *LargeCommon) Merge(other *LargeCommon) error {
	if other == nil || len(lc.layers) != len(other.layers) || !lc.h.Equal(other.h) {
		return fmt.Errorf("core: LargeCommon mismatch")
	}
	for i := range lc.layers {
		if lc.layers[i].thresh != other.layers[i].thresh {
			return fmt.Errorf("core: LargeCommon layer %d mismatch", i)
		}
	}
	for i := range lc.layers {
		if err := sketch.MergeDistinct(lc.layers[i].de, other.layers[i].de); err != nil {
			return fmt.Errorf("core: LargeCommon layer %d: %w", i, err)
		}
	}
	return nil
}

// Merge folds other into ls. Both must come from equal-seed constructions.
func (ls *LargeSet) Merge(other *LargeSet) error {
	if other == nil || len(ls.reps) != len(other.reps) || ls.rho != other.rho {
		return fmt.Errorf("core: LargeSet mismatch")
	}
	for i := range ls.reps {
		a, b := &ls.reps[i], &other.reps[i]
		if !a.elemSamp.Equal(b.elemSamp) || !a.part.h.Equal(b.part.h) {
			return fmt.Errorf("core: LargeSet rep %d hash mismatch", i)
		}
		if len(a.sampledIDs) != len(b.sampledIDs) {
			return fmt.Errorf("core: LargeSet rep %d fallback sample mismatch", i)
		}
	}
	for i := range ls.reps {
		a, b := &ls.reps[i], &other.reps[i]
		if err := a.cntrSmall.Merge(b.cntrSmall); err != nil {
			return fmt.Errorf("core: LargeSet rep %d small battery: %w", i, err)
		}
		if err := a.cntrLarge.Merge(b.cntrLarge); err != nil {
			return fmt.Errorf("core: LargeSet rep %d large battery: %w", i, err)
		}
		for _, id := range a.sampledIDs {
			bd, ok := b.sampled[id]
			if !ok {
				return fmt.Errorf("core: LargeSet rep %d fallback superset %d missing", i, id)
			}
			if err := sketch.MergeDistinct(a.sampled[id], bd); err != nil {
				return fmt.Errorf("core: LargeSet rep %d superset %d: %w", i, id, err)
			}
		}
	}
	return nil
}

// Merge folds other into ss. A layer dead in either input stays dead.
func (ss *SmallSet) Merge(other *SmallSet) error {
	if other == nil || len(ss.layers) != len(other.layers) ||
		ss.kPrime != other.kPrime || ss.mRate != other.mRate {
		return fmt.Errorf("core: SmallSet mismatch")
	}
	if !ss.setSamp.Equal(other.setSamp) || !ss.pickSamp.Equal(other.pickSamp) ||
		!ss.estSamp.Equal(other.estSamp) {
		return fmt.Errorf("core: SmallSet hash mismatch")
	}
	for i := range ss.layers {
		a, b := &ss.layers[i], &other.layers[i]
		if a.thresh != b.thresh {
			return fmt.Errorf("core: SmallSet layer %d mismatch", i)
		}
		if b.dead {
			if !a.dead {
				ss.kill(a)
			}
			continue
		}
		if a.dead {
			continue
		}
		for id, elems := range b.pick {
			a.pick[id] = append(a.pick[id], elems...)
		}
		for id, elems := range b.est {
			a.est[id] = append(a.est[id], elems...)
		}
		a.count += b.count
		if a.count > 2*a.cap {
			ss.kill(a)
		}
	}
	return nil
}

// Merge folds another oracle of the same construction into o.
func (o *Oracle) Merge(other CoverageOracle) error {
	ot, ok := other.(*Oracle)
	if !ok {
		return fmt.Errorf("core: cannot merge %T into *Oracle", other)
	}
	if err := o.lc.Merge(ot.lc); err != nil {
		return err
	}
	if err := o.ls.Merge(ot.ls); err != nil {
		return err
	}
	return o.ss.Merge(ot.ss)
}

// MergeableOracle is implemented by oracles that support distributed
// merging (the built-in Oracle does).
type MergeableOracle interface {
	CoverageOracle
	Merge(other CoverageOracle) error
}

// Merge folds another estimator — same dimensions, parameters and seed,
// fed a different shard of the same edge stream — into est. After the
// merge, est.Result() summarizes the union of both shards.
func (est *Estimator) Merge(other *Estimator) error {
	if other == nil || est.M != other.M || est.N != other.N || est.K != other.K ||
		est.Alpha != other.Alpha || est.trivial != other.trivial ||
		len(est.guesses) != len(other.guesses) {
		return fmt.Errorf("core: estimator shape mismatch")
	}
	if est.trivial {
		return nil
	}
	for gi := range est.guesses {
		a, b := &est.guesses[gi], &other.guesses[gi]
		if a.z != b.z || len(a.reps) != len(b.reps) {
			return fmt.Errorf("core: guess %d shape mismatch", gi)
		}
		for ri := range a.reps {
			if !a.reps[ri].h.Equal(b.reps[ri].h) {
				return fmt.Errorf("core: guess %d rep %d reduction hash mismatch (different seeds?)", gi, ri)
			}
		}
	}
	for gi := range est.guesses {
		a, b := &est.guesses[gi], &other.guesses[gi]
		for ri := range a.reps {
			ma, ok := a.reps[ri].oracle.(MergeableOracle)
			if !ok {
				return fmt.Errorf("core: oracle %T is not mergeable", a.reps[ri].oracle)
			}
			if err := ma.Merge(b.reps[ri].oracle); err != nil {
				return fmt.Errorf("core: guess %d rep %d: %w", gi, ri, err)
			}
		}
	}
	return nil
}
