package core

import (
	"streamcover/internal/hash"
	"streamcover/internal/stream"
)

// Batched ingest: the per-edge cost of the estimator is dominated by
// polynomial hashes whose input is ONLY the edge's set ID or ONLY its
// element ID (LargeCommon's layer routing, LargeSet's element sampling
// and superset partition, SmallSet's three samplers, and the universe
// reduction itself). Within one batch those inputs repeat — a batch
// touches far fewer distinct sets than edges, and a small reduced
// universe [z] collapses the element column to at most z values — so the
// batch path computes every ID-keyed hash decision once per distinct ID
// per batch and replays the edges in arrival order against the memoized
// values.
//
// The batch path is bit-for-bit identical to feeding every edge through
// Process sequentially: the memo tables cache pure functions of the IDs
// (identical field reductions, identical thresholds), every stateful
// structure (distinct counters, contributing batteries, stored pairs)
// still receives exactly the same updates in exactly the same order, and
// subroutines are mutually independent so running them batch-at-a-time
// instead of edge-interleaved leaves their post-pass state unchanged.
//
// Space accounting: BatchScratch is transient working memory, not sketch
// state. It holds no information that survives the current batch (every
// table is rebuilt from the batch's own edges), so it is deliberately
// EXCLUDED from every SpaceWords() sum — the paper's Õ(m/α² + k) bound
// governs what the algorithm retains across the stream, and counting
// per-batch scratch would conflate the streaming space with the caller's
// choice of batch size. See internal/spaceacct for the contract.

// maxBatchChunk bounds the number of edges indexed at once, which bounds
// the scratch tables to O(chunk) memory regardless of caller batch size.
const maxBatchChunk = 1 << 15

// Prepass is the chunk-wide shared prepass: the deduped set and element
// ID columns of the chunk being processed. It is computed once per chunk
// (Index) and then only READ — every (guess, repetition) oracle unit
// consumes the same columns, which is what lets the parallel batch engine
// hand one Prepass to every worker while each worker keeps its own
// mutable BatchScratch.
type Prepass struct {
	sets  hash.Interner // distinct set IDs + per-edge positions
	elems hash.Interner // distinct element IDs + per-edge positions

	// arena, when set, is the shared pool the interner tables are leased
	// from at the top of Index/IndexColumns and returned to by release().
	// Reset clears a leased table before use, so pooling cannot change
	// interning results.
	arena *hash.Arena

	// setIDs is the chunk's raw set-ID column in arrival order — the
	// per-edge view processChunkUnit replays when rebuilding each unit's
	// reduced edges. IndexColumns aliases the caller's column directly
	// (for wire batches that's the decoded arena: zero transform);
	// Index materializes it from the edge structs once per chunk.
	setIDs []uint32
	setBuf []uint32 // backing storage for Index's materialized column
}

// Index dedups both ID columns of the chunk. After Index returns the
// Prepass is immutable until the next Index call; concurrent readers are
// safe provided they synchronize with the indexing goroutine (the engine
// publishes the Prepass through a channel send).
func (p *Prepass) Index(edges []stream.Edge) {
	p.arena.Lease(&p.sets)
	p.arena.Lease(&p.elems)
	p.sets.Reset()
	p.elems.Reset()
	if cap(p.setBuf) < len(edges) {
		p.setBuf = make([]uint32, len(edges))
	}
	col := p.setBuf[:len(edges)]
	for i, e := range edges {
		p.sets.Add(e.Set)
		p.elems.Add(e.Elem)
		col[i] = e.Set
	}
	p.setIDs = col
}

// IndexColumns is Index for a chunk already in struct-of-arrays form: the
// interners consume the columns directly and the set column is aliased,
// not copied. The caller must keep both columns unmodified until the next
// Index/IndexColumns call. Interning per column instead of per edge visits
// each column contiguously; the resulting prepass is identical to Index
// over the corresponding edge structs.
func (p *Prepass) IndexColumns(sets, elems []uint32) {
	p.arena.Lease(&p.sets)
	p.arena.Lease(&p.elems)
	p.sets.Reset()
	p.elems.Reset()
	for _, s := range sets {
		p.sets.Add(s)
	}
	for _, e := range elems {
		p.elems.Add(e)
	}
	p.setIDs = sets
}

// release returns both interners' storage to the arena (no-op without
// one). The prepass must not be indexed concurrently.
func (p *Prepass) release() {
	p.arena.Return(&p.sets)
	p.arena.Return(&p.elems)
}

// BatchScratch is the reusable per-batch working memory of the batched
// ingest path: a reference to the chunk's (possibly shared) prepass plus
// value buffers for memoized hash decisions. A scratch may be reused
// across batches (Index resets it) but never shared between concurrent
// goroutines; only the Prepass it points at may be shared, read-only.
type BatchScratch struct {
	pre *Prepass // chunk prepass: owned by the sequential path, shared under the engine

	// Element view consumed by Oracle.ProcessBatch: elemKeys holds the
	// distinct hash-input keys for the element column of the edges being
	// processed (the raw element IDs, or the deduped reduced
	// pseudo-elements when the estimator drives the batch), and
	// elemRef[j] indexes edge j's key within it. Both may alias the
	// interner's Keys/Pos; Oracle.ProcessBatch only reads them.
	elemKeys []uint64
	elemRef  []int32

	// Estimator-owned buffers for the universe-reduction step.
	rawVals  []uint64      // per distinct raw element: reduced pseudo-element
	redKeys  []uint64      // deduped reduced pseudo-elements
	redPos   []int32       // per distinct raw element: index into redKeys
	dense    []int32       // size-z dense dedup table (index or -1)
	redEdges []stream.Edge // reduced-edge replay buffer
	refBuf   []int32       // estimator-side elemRef storage

	// Subroutine value buffers (memoized hash decisions per distinct key).
	hv   []uint64
	hv2  []uint64
	bits []bool

	// LargeSet superset-dedup buffers: distinct superset IDs of the
	// chunk's distinct sets plus the sampled-edge occurrence sequence,
	// feeding the contributing batteries' batch path.
	ssDense []int32  // size-q dense dedup table (index or -1)
	ssKeys  []uint64 // distinct superset IDs, first-appearance order
	ssPos   []int32  // per distinct set: index into ssKeys
	occ     []int32  // per sampled edge, in order: index into ssKeys
}

// NewBatchScratch returns an empty scratch owning its prepass; buffers
// grow on first use.
func NewBatchScratch() *BatchScratch { return &BatchScratch{pre: new(Prepass)} }

// Index dedups both ID columns of the batch into the scratch's own
// prepass and exposes the identity element view (elemKeys = the distinct
// raw element IDs), which is what Oracle.ProcessBatch expects when it is
// driven directly rather than through the estimator's universe reduction.
func (sc *BatchScratch) Index(edges []stream.Edge) {
	sc.pre.Index(edges)
	sc.elemKeys = sc.pre.elems.Keys
	sc.elemRef = sc.pre.elems.Pos
}

// IndexColumns is Index for a batch in columnar form.
func (sc *BatchScratch) IndexColumns(sets, elems []uint32) {
	sc.pre.IndexColumns(sets, elems)
	sc.elemKeys = sc.pre.elems.Keys
	sc.elemRef = sc.pre.elems.Pos
}

// BatchOracle is a CoverageOracle with a batched ingest path.
// ProcessBatch(edges, sc) must leave the oracle in exactly the state a
// Process call per edge (in order) would, with sc indexed over edges
// (sc.Index, or the estimator's reduced view).
type BatchOracle interface {
	CoverageOracle
	ProcessBatch(edges []stream.Edge, sc *BatchScratch)
}

// The paper's three-subroutine oracle implements the batched path; the
// engine's fast path depends on it.
var _ BatchOracle = (*Oracle)(nil)

// ProcessBatch fans the batch out to all three subroutines. Each
// subroutine consumes the whole batch before the next starts; because the
// subroutines share no state, this is indistinguishable from the
// edge-interleaved sequential fan-out.
func (o *Oracle) ProcessBatch(edges []stream.Edge, sc *BatchScratch) {
	o.lc.processBatch(edges, sc)
	o.ls.processBatch(edges, sc)
	o.ss.processBatch(edges, sc)
}

// processBatch evaluates the shared set hash once per distinct set and
// replays the edges against the layer thresholds in arrival order.
func (lc *LargeCommon) processBatch(edges []stream.Edge, sc *BatchScratch) {
	sc.hv = lc.h.EvalBatch(sc.pre.sets.Keys, sc.hv)
	setPos := sc.pre.sets.Pos
	for j := range edges {
		v := sc.hv[setPos[j]]
		for i := range lc.layers {
			if v < lc.layers[i].thresh {
				lc.layers[i].de.Add(uint64(edges[j].Elem))
			}
		}
	}
}

// processBatch memoizes, per repetition, the element-sampling bit per
// distinct element and the superset per distinct set, then replays the
// edges in arrival order. The sequential path computes a superset only
// for sampled edges while the batch path computes one per distinct set;
// the values are pure functions of the set ID, so the replayed updates
// are identical. The supersets of the sampled edges are deduped once more
// (they live in [0, q), far fewer values than sets) and handed to the
// contributing batteries as a distinct-key occurrence sequence, so the
// batteries' per-occurrence hashing collapses to one evaluation per
// distinct superset per chunk. The batteries and the sampled-superset
// fallback are independent structures, so updating them battery-major
// instead of edge-major changes no state.
func (ls *LargeSet) processBatch(edges []stream.Edge, sc *BatchScratch) {
	setPos, elemRef := sc.pre.sets.Pos, sc.elemRef
	for i := range ls.reps {
		rep := &ls.reps[i]
		sc.bits = rep.elemSamp.BernoulliBatch(sc.elemKeys, ls.rho, sc.bits)
		sc.hv = rep.part.h.RangeBatch(sc.pre.sets.Keys, uint64(rep.part.q), sc.hv)
		ssPos := sc.dedupSupersets(rep.part.q)
		occ := sc.occ[:0]
		for j := range edges {
			if sc.bits[elemRef[j]] {
				occ = append(occ, ssPos[setPos[j]])
			}
		}
		sc.occ = occ
		rep.cntrSmall.AddBatch(sc.ssKeys, occ)
		rep.cntrLarge.AddBatch(sc.ssKeys, occ)
		if len(rep.sampled) > 0 {
			for j := range edges {
				if !sc.bits[elemRef[j]] {
					continue
				}
				if de, ok := rep.sampled[sc.hv[setPos[j]]]; ok {
					de.Add(uint64(edges[j].Elem))
				}
			}
		}
	}
}

// dedupSupersets collapses sc.hv (superset IDs in [0, q), one per distinct
// set) to its distinct values via a dense table, filling sc.ssKeys with
// the distinct IDs in first-appearance order and returning the
// per-distinct-set position array.
func (sc *BatchScratch) dedupSupersets(q int) []int32 {
	if cap(sc.ssDense) < q {
		sc.ssDense = make([]int32, q)
	}
	dense := sc.ssDense[:q]
	for i := range dense {
		dense[i] = -1
	}
	if cap(sc.ssPos) < len(sc.hv) {
		sc.ssPos = make([]int32, len(sc.hv))
	}
	sc.ssKeys = sc.ssKeys[:0]
	pos := sc.ssPos[:len(sc.hv)]
	for i, v := range sc.hv {
		d := dense[v]
		if d < 0 {
			d = int32(len(sc.ssKeys))
			dense[v] = d
			sc.ssKeys = append(sc.ssKeys, v)
		}
		pos[i] = d
	}
	return pos
}

// processBatch memoizes the set-membership bit per distinct set and the
// two element-sample hashes per distinct element, then replays the edges
// in arrival order through the same layer logic as Process. Dead layers
// can only accumulate (a layer may die mid-batch), so the replay
// re-checks liveness exactly like the sequential path does.
func (ss *SmallSet) processBatch(edges []stream.Edge, sc *BatchScratch) {
	if ss.live == 0 {
		return
	}
	sc.bits = ss.setSamp.BernoulliBatch(sc.pre.sets.Keys, ss.mRate, sc.bits)
	sc.hv = ss.pickSamp.EvalBatch(sc.elemKeys, sc.hv)
	sc.hv2 = ss.estSamp.EvalBatch(sc.elemKeys, sc.hv2)
	setPos, elemRef := sc.pre.sets.Pos, sc.elemRef
	for j := range edges {
		if !sc.bits[setPos[j]] {
			continue
		}
		ss.store(edges[j], sc.hv[elemRef[j]], sc.hv2[elemRef[j]])
		if ss.live == 0 {
			return
		}
	}
}

// ProcessBatch consumes a batch of edges through the batched hot path,
// chunking internally so scratch memory stays O(maxBatchChunk) regardless
// of batch size. It is bit-for-bit identical to calling Process on every
// edge in order and, like Process, not safe for concurrent use.
func (est *Estimator) ProcessBatch(edges []stream.Edge) {
	if est.trivial || len(edges) == 0 {
		return
	}
	if est.scratch == nil {
		est.scratch = NewBatchScratch()
		est.scratch.pre.arena = est.arena
	}
	for start := 0; start < len(edges); start += maxBatchChunk {
		end := start + maxBatchChunk
		if end > len(edges) {
			end = len(edges)
		}
		est.scratch.Index(edges[start:end])
		est.processIndexedChunk(end-start, est.scratch)
	}
}

// ProcessColumns is ProcessBatch for a batch in struct-of-arrays form:
// sets[i] and elems[i] are edge i's endpoint IDs. It is the
// zero-transform ingest entry point — the columns a wire decoder filled
// feed the prepass interners directly, with no edge structs in between —
// and is bit-for-bit identical to ProcessBatch over the corresponding
// edges (the prepass built from a column pair is identical to one built
// from edge structs, and everything downstream reads only the prepass).
// Both slices must stay unmodified for the duration of the call.
func (est *Estimator) ProcessColumns(sets, elems []uint32) {
	if len(sets) != len(elems) {
		panic("core: ProcessColumns with mismatched column lengths")
	}
	if est.trivial || len(sets) == 0 {
		return
	}
	if est.scratch == nil {
		est.scratch = NewBatchScratch()
		est.scratch.pre.arena = est.arena
	}
	for start := 0; start < len(sets); start += maxBatchChunk {
		end := start + maxBatchChunk
		if end > len(sets) {
			end = len(sets)
		}
		est.scratch.IndexColumns(sets[start:end], elems[start:end])
		est.processIndexedChunk(end-start, est.scratch)
	}
}

// processIndexedChunk feeds one indexed chunk (sc holds the shared
// prepass, computed exactly once) of count edges to every (guess, rep)
// unit — sequentially, or fanned across the persistent engine when
// parallelism is enabled and the grid has more than one unit.
func (est *Estimator) processIndexedChunk(count int, sc *BatchScratch) {
	units := est.units()
	if est.par > 1 && len(units) > 1 {
		if est.eng == nil {
			helpers := est.par
			if helpers > len(units) {
				helpers = len(units)
			}
			est.eng = newEngine(helpers - 1) // caller is always a worker
		}
		est.eng.run(est, count, sc)
		return
	}
	for _, u := range units {
		est.processChunkUnit(count, sc, u.g, u.rep)
	}
}

// processChunkUnit applies one repetition's universe reduction to the
// indexed chunk of count edges — one Range per distinct element instead
// of one per edge — and hands the reduced edges to the oracle's batch
// path. The raw edges are never touched: the prepass position arrays and
// its set-ID column carry everything needed to rebuild each reduced edge,
// which is what lets row and columnar ingest share this path bit for bit.
// When z is smaller than the chunk's distinct-element count the reduced
// values are deduped again (dense table over [z]), so downstream
// element-keyed hashes run once per distinct PSEUDO-element: the small
// guesses at the bottom of the ladder collapse to at most z evaluations
// per hash per chunk.
func (est *Estimator) processChunkUnit(count int, sc *BatchScratch, g *zGuess, rep *zRep) {
	z := uint64(g.z)
	sc.rawVals = rep.h.RangeBatch(sc.pre.elems.Keys, z, sc.rawVals)

	keys, pos := sc.rawVals, []int32(nil) // identity: key i is distinct raw elem i
	if g.z < len(sc.pre.elems.Keys) {
		keys, pos = sc.dedupReduced(g.z)
	}

	if cap(sc.redEdges) < count {
		sc.redEdges = make([]stream.Edge, count)
		sc.refBuf = make([]int32, count)
	}
	red, ref := sc.redEdges[:count], sc.refBuf[:count]
	setIDs := sc.pre.setIDs
	for j := range red {
		oi := sc.pre.elems.Pos[j]
		red[j] = stream.Edge{Set: setIDs[j], Elem: uint32(sc.rawVals[oi])}
		if pos != nil {
			ref[j] = pos[oi]
		} else {
			ref[j] = oi
		}
	}
	sc.elemKeys, sc.elemRef = keys, ref

	if bo, ok := rep.oracle.(BatchOracle); ok {
		bo.ProcessBatch(red, sc)
	} else {
		for _, e := range red {
			rep.oracle.Process(e)
		}
	}
}

// dedupReduced collapses rawVals (reduced pseudo-elements in [0, z)) to
// their distinct values via a dense table, returning the distinct keys in
// first-appearance order and the per-raw-element position array.
func (sc *BatchScratch) dedupReduced(z int) ([]uint64, []int32) {
	if cap(sc.dense) < z {
		sc.dense = make([]int32, z)
	}
	dense := sc.dense[:z]
	for i := range dense {
		dense[i] = -1
	}
	if cap(sc.redPos) < len(sc.rawVals) {
		sc.redPos = make([]int32, len(sc.rawVals))
	}
	sc.redKeys = sc.redKeys[:0]
	pos := sc.redPos[:len(sc.rawVals)]
	for i, v := range sc.rawVals {
		d := dense[v]
		if d < 0 {
			d = int32(len(sc.redKeys))
			dense[v] = d
			sc.redKeys = append(sc.redKeys, v)
		}
		pos[i] = d
	}
	return sc.redKeys, pos
}
