package core

import (
	"math/rand"
	"runtime"

	"streamcover/internal/hash"
	"streamcover/internal/stream"
)

// Estimator is EstimateMaxCover (Figure 1, Theorems 3.1 and 3.6): the
// universe-reduction wrapper that turns an (α, δ, η)-oracle into an
// Õ(α)-approximation of the optimal coverage size with no coverage
// promise. For every guess z of the optimal coverage (a geometric ladder
// up to n) and every boosting repetition it draws a 4-wise hash
// h: U → [z] — by Lemma 3.5 a set of ≥ z elements keeps ≥ z/4 distinct
// pseudo-elements with probability ≥ 3/4 — and feeds the reduced edge
// (S, h(e)) to a fresh oracle whose universe is [z]. A guess qualifies
// when its best repetition reaches z/(4α); the largest qualifying
// estimate wins. Estimates live in reduced-universe scale, which never
// exceeds true coverage, so the result inherits the oracle's
// no-overestimate guarantee.
type Estimator struct {
	M, N, K int
	Alpha   float64
	params  Params

	trivial    bool    // kα ≥ m: n/α is already an α-approximation
	trivialVal float64 // n/α

	guesses []zGuess

	// scratch is the batched ingest path's transient working memory,
	// lazily allocated by ProcessBatch. It is not sketch state: it holds
	// nothing beyond the current batch and is excluded from SpaceWords
	// (see internal/core/batch.go).
	scratch *BatchScratch

	// arena, when set, pools the scratch's interner tables across
	// co-resident estimators (see hash.Arena); ReleaseScratch hands the
	// storage back when the owner goes idle.
	arena *hash.Arena

	// Parallel batch engine state (see internal/core/engine.go). par is
	// the target worker count for ProcessBatch (≤1 means sequential; the
	// default). unitList flattens the (guess, repetition) grid once;
	// eng holds the lazily started helper pool, sized min(par, units)-1
	// because the calling goroutine is always a worker too.
	par      int
	unitList []oracleUnit
	eng      *engine
}

// oracleUnit is one independently processable cell of the estimator's
// (guess, repetition) grid: the guess supplies z, the repetition its
// reduction hash and oracle. Units share no mutable state, which is what
// makes the grid safe to fan across workers.
type oracleUnit struct {
	g   *zGuess
	rep *zRep
}

type zGuess struct {
	z    int
	reps []zRep
}

type zRep struct {
	h      *hash.Poly // 4-wise U → [z] (Lemma 3.5)
	oracle CoverageOracle
}

// NewEstimator builds the full estimation pipeline for an m-set,
// n-element instance with budget k and approximation target alpha, using
// factory to instantiate the oracle per guess and repetition.
func NewEstimator(m, n, k int, alpha float64, p Params, factory OracleFactory, rng *rand.Rand) (*Estimator, error) {
	if _, err := Derive(m, n, k, alpha, p); err != nil {
		return nil, err
	}
	est := &Estimator{M: m, N: n, K: k, Alpha: alpha, params: p}
	if float64(k)*alpha >= float64(m) {
		// Figure 1's first line: with kα ≥ m, picking the best of m/k ≤ α
		// disjoint groups of k sets covers ≥ C(F)·k/m ≥ n/α when every
		// element occurs, so n/α is a valid α-approximate answer.
		est.trivial = true
		est.trivialVal = float64(n) / alpha
		return est, nil
	}
	reps := p.Reps
	if reps < 1 {
		reps = 1
	}
	base := p.ZBase
	if base < 1.5 {
		base = 2
	}
	for z := 4; ; z = scaleGuess(z, base) {
		if z > n {
			z = n
		}
		g := zGuess{z: z}
		for r := 0; r < reps; r++ {
			d, err := Derive(m, z, k, alpha, p)
			if err != nil {
				return nil, err
			}
			g.reps = append(g.reps, zRep{
				h:      hash.New4Wise(rng),
				oracle: factory(d, rng),
			})
		}
		est.guesses = append(est.guesses, g)
		if z == n {
			break
		}
	}
	return est, nil
}

func scaleGuess(z int, base float64) int {
	next := int(float64(z) * base)
	if next <= z {
		next = z + 1
	}
	return next
}

// Process feeds one edge: each guess's repetitions receive the edge with
// the element replaced by its pseudo-element h(e) ∈ [z].
func (est *Estimator) Process(e stream.Edge) {
	if est.trivial {
		return
	}
	for gi := range est.guesses {
		g := &est.guesses[gi]
		for ri := range g.reps {
			rep := &g.reps[ri]
			reduced := stream.Edge{
				Set:  e.Set,
				Elem: uint32(rep.h.Range(uint64(e.Elem), uint64(g.z))),
			}
			rep.oracle.Process(reduced)
		}
	}
}

// units flattens the (guess, repetition) grid into the engine's
// work-stealing list, lazily and once: the grid is fixed at construction
// (Merge mutates oracles in place, never the guesses slice), so the
// pointers stay valid for the estimator's lifetime.
func (est *Estimator) units() []oracleUnit {
	if est.unitList == nil {
		for gi := range est.guesses {
			g := &est.guesses[gi]
			for ri := range g.reps {
				est.unitList = append(est.unitList, oracleUnit{g, &g.reps[ri]})
			}
		}
	}
	return est.unitList
}

// SetParallelism sets the worker count ProcessBatch fans oracle units
// across. p ≤ 0 selects GOMAXPROCS; 1 is the default (fully sequential,
// no helper goroutines exist). The setting persists until changed: every
// subsequent ProcessBatch uses it. Parallelism is an execution knob, not
// sketch state — it never affects results (bit-identical for every p) or
// the encoded form. Not safe to call concurrently with ProcessBatch.
func (est *Estimator) SetParallelism(p int) {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p == est.par {
		return
	}
	est.par = p
	// Helper count depends on par; drop the pool and let processChunk
	// restart it at the right size on the next batch.
	if est.eng != nil {
		est.eng.close()
		est.eng = nil
	}
}

// Close stops the parallel engine's helper goroutines, if any. The
// estimator remains fully usable afterwards (ProcessBatch restarts the
// pool lazily); Close exists so long-lived owners (the server's sessions)
// can release goroutines when a session ends.
func (est *Estimator) Close() {
	if est.scratch != nil {
		// Hand the interner tables back to the shared arena (no-op without
		// one) so an evicted session's scratch immediately re-seeds the
		// next rehydration instead of dying with the estimator.
		est.scratch.pre.release()
		est.scratch = nil
	}
	if est.eng != nil {
		est.eng.close()
		est.eng = nil
	}
}

// SetInternArena points the estimator's batch scratch at a shared
// interner-table pool. Pooling is invisible to results (leased tables are
// cleared before every batch); it only changes where the scratch's dedup
// tables come from and go back to. Call before ingest, or between batches
// — an already-allocated scratch adopts the arena on its next release/
// lease cycle only if set before the scratch exists, so owners set it
// right after construction.
func (est *Estimator) SetInternArena(a *hash.Arena) {
	est.arena = a
	if est.scratch != nil {
		est.scratch.pre.arena = a
	}
}

// ReleaseScratch drops the batched ingest path's transient working
// memory: interner tables return to the arena (when one is set) and the
// scratch itself is released for the GC. The estimator remains fully
// usable — the next ProcessBatch reallocates lazily. Owners with many
// idle estimators (the server's evictable sessions) call this when an
// estimator's queue drains so steady-state memory is sketch state only.
// Not safe concurrently with ProcessBatch/ProcessColumns.
func (est *Estimator) ReleaseScratch() {
	if est.scratch == nil {
		return
	}
	est.scratch.pre.release()
	est.scratch = nil
}

// ProcessAllParallel consumes an entire in-memory edge stream using up to
// `workers` goroutines (≤ 0 selects GOMAXPROCS). It is
// SetParallelism(workers) followed by ProcessBatch: the fan-out runs on
// the estimator's persistent engine, and the parallelism setting remains
// in effect for subsequent batches. Results are bit-for-bit identical to
// feeding every edge through Process sequentially; only wall-clock time
// changes. The slice must not be mutated during the call.
func (est *Estimator) ProcessAllParallel(edges []stream.Edge, workers int) {
	est.SetParallelism(workers)
	est.ProcessBatch(edges)
}

// Estimate is the final answer of the estimation pipeline.
type Estimate struct {
	// Value approximates the optimal coverage size: w.h.p.
	// OPT/Õ(α) ≤ Value ≤ OPT. Zero with Feasible=false means no guess
	// qualified (OPT is below the smallest detectable scale).
	Value    float64
	Feasible bool
	// Z is the winning coverage guess.
	Z int
	// SetIDs backs the estimate for the reporting variant (may be nil).
	SetIDs []uint32
}

// Result inspects all guesses after the pass (Figure 1's final max).
func (est *Estimator) Result() Estimate {
	if est.trivial {
		return Estimate{Value: est.trivialVal, Feasible: true}
	}
	best := Estimate{}
	for gi := range est.guesses {
		g := &est.guesses[gi]
		var estz float64
		var ids []uint32
		for ri := range g.reps {
			r := g.reps[ri].oracle.Result()
			if r.Feasible && r.Value > estz {
				estz = r.Value
				ids = r.SetIDs
			}
		}
		if estz >= float64(g.z)/(4*est.Alpha) && estz > best.Value {
			best = Estimate{Value: estz, Feasible: true, Z: g.z, SetIDs: ids}
		}
	}
	return best
}

// SpaceWords sums every repetition's oracle and reduction hash.
func (est *Estimator) SpaceWords() int {
	w := 4
	for gi := range est.guesses {
		for ri := range est.guesses[gi].reps {
			rep := &est.guesses[gi].reps[ri]
			w += rep.h.SpaceWords() + rep.oracle.SpaceWords()
		}
	}
	return w
}

// Guesses reports the number of coverage guesses (for tests/diagnostics).
func (est *Estimator) Guesses() int { return len(est.guesses) }

// SpaceBreakdown aggregates per-component retained words across all
// guesses and repetitions. Oracles that expose their own breakdown (the
// paper's three-subroutine oracle does) are split by subroutine; others
// are lumped under "oracle". The reduction hashes appear under
// "reduction".
func (est *Estimator) SpaceBreakdown() map[string]int {
	type breakable interface{ SpaceBreakdown() map[string]int }
	out := map[string]int{}
	for gi := range est.guesses {
		for ri := range est.guesses[gi].reps {
			rep := &est.guesses[gi].reps[ri]
			out["reduction"] += rep.h.SpaceWords()
			if br, ok := rep.oracle.(breakable); ok {
				for part, w := range br.SpaceBreakdown() {
					out[part] += w
				}
			} else {
				out["oracle"] += rep.oracle.SpaceWords()
			}
		}
	}
	return out
}
