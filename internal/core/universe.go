package core

import (
	"sync"

	"math/rand"

	"streamcover/internal/hash"
	"streamcover/internal/stream"
)

// Estimator is EstimateMaxCover (Figure 1, Theorems 3.1 and 3.6): the
// universe-reduction wrapper that turns an (α, δ, η)-oracle into an
// Õ(α)-approximation of the optimal coverage size with no coverage
// promise. For every guess z of the optimal coverage (a geometric ladder
// up to n) and every boosting repetition it draws a 4-wise hash
// h: U → [z] — by Lemma 3.5 a set of ≥ z elements keeps ≥ z/4 distinct
// pseudo-elements with probability ≥ 3/4 — and feeds the reduced edge
// (S, h(e)) to a fresh oracle whose universe is [z]. A guess qualifies
// when its best repetition reaches z/(4α); the largest qualifying
// estimate wins. Estimates live in reduced-universe scale, which never
// exceeds true coverage, so the result inherits the oracle's
// no-overestimate guarantee.
type Estimator struct {
	M, N, K int
	Alpha   float64
	params  Params

	trivial    bool    // kα ≥ m: n/α is already an α-approximation
	trivialVal float64 // n/α

	guesses []zGuess

	// scratch is the batched ingest path's transient working memory,
	// lazily allocated by ProcessBatch. It is not sketch state: it holds
	// nothing beyond the current batch and is excluded from SpaceWords
	// (see internal/core/batch.go).
	scratch *BatchScratch
}

type zGuess struct {
	z    int
	reps []zRep
}

type zRep struct {
	h      *hash.Poly // 4-wise U → [z] (Lemma 3.5)
	oracle CoverageOracle
}

// NewEstimator builds the full estimation pipeline for an m-set,
// n-element instance with budget k and approximation target alpha, using
// factory to instantiate the oracle per guess and repetition.
func NewEstimator(m, n, k int, alpha float64, p Params, factory OracleFactory, rng *rand.Rand) (*Estimator, error) {
	if _, err := Derive(m, n, k, alpha, p); err != nil {
		return nil, err
	}
	est := &Estimator{M: m, N: n, K: k, Alpha: alpha, params: p}
	if float64(k)*alpha >= float64(m) {
		// Figure 1's first line: with kα ≥ m, picking the best of m/k ≤ α
		// disjoint groups of k sets covers ≥ C(F)·k/m ≥ n/α when every
		// element occurs, so n/α is a valid α-approximate answer.
		est.trivial = true
		est.trivialVal = float64(n) / alpha
		return est, nil
	}
	reps := p.Reps
	if reps < 1 {
		reps = 1
	}
	base := p.ZBase
	if base < 1.5 {
		base = 2
	}
	for z := 4; ; z = scaleGuess(z, base) {
		if z > n {
			z = n
		}
		g := zGuess{z: z}
		for r := 0; r < reps; r++ {
			d, err := Derive(m, z, k, alpha, p)
			if err != nil {
				return nil, err
			}
			g.reps = append(g.reps, zRep{
				h:      hash.New4Wise(rng),
				oracle: factory(d, rng),
			})
		}
		est.guesses = append(est.guesses, g)
		if z == n {
			break
		}
	}
	return est, nil
}

func scaleGuess(z int, base float64) int {
	next := int(float64(z) * base)
	if next <= z {
		next = z + 1
	}
	return next
}

// Process feeds one edge: each guess's repetitions receive the edge with
// the element replaced by its pseudo-element h(e) ∈ [z].
func (est *Estimator) Process(e stream.Edge) {
	if est.trivial {
		return
	}
	for gi := range est.guesses {
		g := &est.guesses[gi]
		for ri := range g.reps {
			rep := &g.reps[ri]
			reduced := stream.Edge{
				Set:  e.Set,
				Elem: uint32(rep.h.Range(uint64(e.Elem), uint64(g.z))),
			}
			rep.oracle.Process(reduced)
		}
	}
}

// ProcessAllParallel consumes an entire in-memory edge stream using up to
// `workers` goroutines. Each (guess, repetition) oracle is an independent
// single-pass structure, so the ladder is embarrassingly parallel: every
// worker owns a disjoint subset of oracles and scans the slice on its
// own, through the batched hot path with a private BatchScratch (scratch
// is per-worker transient memory, so the parallel path composes with
// batching without sharing mutable state). The result is bit-for-bit
// identical to feeding every edge through Process sequentially (each
// oracle still sees the same edges in the same order); only wall-clock
// time changes. The slice must not be mutated during the call.
func (est *Estimator) ProcessAllParallel(edges []stream.Edge, workers int) {
	if est.trivial || len(edges) == 0 {
		return
	}
	type unit struct {
		g   *zGuess
		rep *zRep
	}
	var units []unit
	for gi := range est.guesses {
		g := &est.guesses[gi]
		for ri := range g.reps {
			units = append(units, unit{g, &g.reps[ri]})
		}
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(units) {
		workers = len(units)
	}
	if workers == 1 {
		est.ProcessBatch(edges)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		var mine []unit
		for u := w; u < len(units); u += workers {
			mine = append(mine, units[u])
		}
		wg.Add(1)
		go func(mine []unit) {
			defer wg.Done()
			sc := NewBatchScratch()
			for start := 0; start < len(edges); start += maxBatchChunk {
				end := start + maxBatchChunk
				if end > len(edges) {
					end = len(edges)
				}
				chunk := edges[start:end]
				sc.Index(chunk)
				for _, u := range mine {
					est.processChunkUnit(chunk, sc, u.g, u.rep)
				}
			}
		}(mine)
	}
	wg.Wait()
}

// Estimate is the final answer of the estimation pipeline.
type Estimate struct {
	// Value approximates the optimal coverage size: w.h.p.
	// OPT/Õ(α) ≤ Value ≤ OPT. Zero with Feasible=false means no guess
	// qualified (OPT is below the smallest detectable scale).
	Value    float64
	Feasible bool
	// Z is the winning coverage guess.
	Z int
	// SetIDs backs the estimate for the reporting variant (may be nil).
	SetIDs []uint32
}

// Result inspects all guesses after the pass (Figure 1's final max).
func (est *Estimator) Result() Estimate {
	if est.trivial {
		return Estimate{Value: est.trivialVal, Feasible: true}
	}
	best := Estimate{}
	for gi := range est.guesses {
		g := &est.guesses[gi]
		var estz float64
		var ids []uint32
		for ri := range g.reps {
			r := g.reps[ri].oracle.Result()
			if r.Feasible && r.Value > estz {
				estz = r.Value
				ids = r.SetIDs
			}
		}
		if estz >= float64(g.z)/(4*est.Alpha) && estz > best.Value {
			best = Estimate{Value: estz, Feasible: true, Z: g.z, SetIDs: ids}
		}
	}
	return best
}

// SpaceWords sums every repetition's oracle and reduction hash.
func (est *Estimator) SpaceWords() int {
	w := 4
	for gi := range est.guesses {
		for ri := range est.guesses[gi].reps {
			rep := &est.guesses[gi].reps[ri]
			w += rep.h.SpaceWords() + rep.oracle.SpaceWords()
		}
	}
	return w
}

// Guesses reports the number of coverage guesses (for tests/diagnostics).
func (est *Estimator) Guesses() int { return len(est.guesses) }

// SpaceBreakdown aggregates per-component retained words across all
// guesses and repetitions. Oracles that expose their own breakdown (the
// paper's three-subroutine oracle does) are split by subroutine; others
// are lumped under "oracle". The reduction hashes appear under
// "reduction".
func (est *Estimator) SpaceBreakdown() map[string]int {
	type breakable interface{ SpaceBreakdown() map[string]int }
	out := map[string]int{}
	for gi := range est.guesses {
		for ri := range est.guesses[gi].reps {
			rep := &est.guesses[gi].reps[ri]
			out["reduction"] += rep.h.SpaceWords()
			if br, ok := rep.oracle.(breakable); ok {
				for part, w := range br.SpaceBreakdown() {
					out[part] += w
				}
			} else {
				out["oracle"] += rep.oracle.SpaceWords()
			}
		}
	}
	return out
}
