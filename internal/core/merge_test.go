package core

import (
	"math/rand"
	"testing"

	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// buildPair constructs two identically-seeded estimators.
func buildPair(t *testing.T, in *workload.Instance, alpha float64, seed int64) (*Estimator, *Estimator) {
	t.Helper()
	mk := func() *Estimator {
		e, err := NewEstimator(in.System.M(), in.System.N, in.K, alpha, Practical(),
			NewOracleFactory(), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	return mk(), mk()
}

func TestMergedShardsMatchWholeStream(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := workload.PlantedCover(8000, 800, 20, 0.8, 5, rng)
	edges := stream.Linearize(in.System, stream.Shuffled, rng).Edges()

	whole, err := NewEstimator(in.System.M(), in.System.N, in.K, 4, Practical(),
		NewOracleFactory(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		whole.Process(e)
	}
	left, right := buildPair(t, in, 4, 5)
	for i, e := range edges {
		if i%2 == 0 {
			left.Process(e)
		} else {
			right.Process(e)
		}
	}
	if err := left.Merge(right); err != nil {
		t.Fatal(err)
	}
	wr, mr := whole.Result(), left.Result()
	if !mr.Feasible {
		t.Fatal("merged estimator infeasible")
	}
	// The dedup-based parts merge exactly; candidate-dictionary timing can
	// shift CountSketch-derived values slightly. Require 15% agreement and
	// the same guarantee window.
	if mr.Value < 0.85*wr.Value || mr.Value > 1.15*wr.Value {
		t.Errorf("merged %v vs whole %v beyond 15%%", mr.Value, wr.Value)
	}
	opt := float64(in.PlantedCoverage)
	if mr.Value > 1.4*opt || mr.Value < opt/(1.5*4) {
		t.Errorf("merged estimate %v outside guarantee window (OPT %v)", mr.Value, opt)
	}
}

func TestMergeManyShards(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := workload.PlantedSmallSets(6000, 900, 90, 0.8, rng)
	edges := stream.Linearize(in.System, stream.Shuffled, rng).Edges()
	const shards = 5
	parts := make([]*Estimator, shards)
	for i := range parts {
		e, err := NewEstimator(in.System.M(), in.System.N, in.K, 4, Practical(),
			NewOracleFactory(), rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = e
	}
	for i, e := range edges {
		parts[i%shards].Process(e)
	}
	for i := 1; i < shards; i++ {
		if err := parts[0].Merge(parts[i]); err != nil {
			t.Fatal(err)
		}
	}
	r := parts[0].Result()
	if !r.Feasible {
		t.Fatal("5-way merged estimator infeasible")
	}
	opt := float64(in.PlantedCoverage)
	if r.Value > 1.4*opt || r.Value < opt/(1.5*4) {
		t.Errorf("5-way merged estimate %v outside window (OPT %v)", r.Value, opt)
	}
}

func TestMergeRejectsDifferentSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := workload.PlantedCover(2000, 300, 10, 0.8, 5, rng)
	a, err := NewEstimator(in.System.M(), in.System.N, in.K, 4, Practical(),
		NewOracleFactory(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEstimator(in.System.M(), in.System.N, in.K, 4, Practical(),
		NewOracleFactory(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Error("merge of differently-seeded estimators accepted")
	}
}

func TestMergeRejectsDifferentShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := workload.PlantedCover(2000, 300, 10, 0.8, 5, rng)
	a, _ := NewEstimator(in.System.M(), in.System.N, in.K, 4, Practical(),
		NewOracleFactory(), rand.New(rand.NewSource(1)))
	b, _ := NewEstimator(in.System.M(), in.System.N, in.K, 8, Practical(),
		NewOracleFactory(), rand.New(rand.NewSource(1)))
	if err := a.Merge(b); err == nil {
		t.Error("merge across alphas accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("merge with nil accepted")
	}
}

func TestMergeTrivialEstimators(t *testing.T) {
	a, _ := NewEstimator(10, 100, 5, 4, Practical(), NewOracleFactory(), rand.New(rand.NewSource(1)))
	b, _ := NewEstimator(10, 100, 5, 4, Practical(), NewOracleFactory(), rand.New(rand.NewSource(1)))
	if err := a.Merge(b); err != nil {
		t.Fatalf("trivial merge failed: %v", err)
	}
	if r := a.Result(); !r.Feasible || r.Value != 25 {
		t.Errorf("trivial merged result %+v", r)
	}
}

func TestSubroutineMergeExactForDedupParts(t *testing.T) {
	// LargeCommon is purely L0-based: merged shards must EXACTLY match the
	// whole stream.
	rng := rand.New(rand.NewSource(6))
	in := workload.CommonHeavy(4000, 1000, 10, 200, 0.4, 2, rng)
	d := mustDerive(t, in, 4)
	mk := func() *LargeCommon { return NewLargeCommon(d, rand.New(rand.NewSource(8))) }
	whole, left, right := mk(), mk(), mk()
	edges := stream.Linearize(in.System, stream.Shuffled, rng).Edges()
	for i, e := range edges {
		whole.Process(e)
		if i%2 == 0 {
			left.Process(e)
		} else {
			right.Process(e)
		}
	}
	if err := left.Merge(right); err != nil {
		t.Fatal(err)
	}
	wv, wb, wok := whole.Estimate()
	mv, mb, mok := left.Estimate()
	if wv != mv || wb != mb || wok != mok {
		t.Errorf("LargeCommon merge not exact: whole (%v,%v,%v) merged (%v,%v,%v)",
			wv, wb, wok, mv, mb, mok)
	}
}
