package core

import (
	"math"
	"testing"
)

func TestDeriveValidation(t *testing.T) {
	p := Practical()
	bad := []struct {
		m, n, k int
		alpha   float64
	}{
		{0, 10, 1, 2},
		{10, 0, 1, 2},
		{10, 10, 0, 2},
		{10, 10, 1, 0.5},
	}
	for _, c := range bad {
		if _, err := Derive(c.m, c.n, c.k, c.alpha, p); err == nil {
			t.Errorf("Derive(%+v) accepted", c)
		}
	}
	d, err := Derive(100, 1000, 10, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	if d.W != 4 {
		t.Errorf("w = min(k, alpha) = %v, want 4", d.W)
	}
	if d.SAlpha != d.S*d.Alpha {
		t.Errorf("SAlpha inconsistent: %v vs %v", d.SAlpha, d.S*d.Alpha)
	}
}

func TestDeriveWBranches(t *testing.T) {
	p := Practical()
	// alpha < k: w = alpha.
	d, _ := Derive(100, 1000, 50, 8, p)
	if d.W != 8 {
		t.Errorf("w = %v, want 8", d.W)
	}
	// alpha > k: w = k.
	d, _ = Derive(100, 1000, 3, 8, p)
	if d.W != 3 {
		t.Errorf("w = %v, want 3", d.W)
	}
}

func TestPaperConstantsShape(t *testing.T) {
	// Table 2's formulas: σ shrinks with log²(mn), f grows with log(mn),
	// s = Θ̃(w/α) is tiny.
	small := Paper(1<<10, 1<<10)
	big := Paper(1<<20, 1<<20)
	if small.SigmaFrac <= big.SigmaFrac {
		t.Errorf("paper σ should shrink with instance size: %v vs %v",
			small.SigmaFrac, big.SigmaFrac)
	}
	if small.FMult >= big.FMult {
		t.Errorf("paper f should grow with instance size: %v vs %v",
			small.FMult, big.FMult)
	}
	if big.FMult != 7*math.Log2(float64(1<<20)*float64(1<<20)+2) {
		t.Errorf("paper f formula wrong: %v", big.FMult)
	}
	if small.SLargeFrac >= Practical().SLargeFrac {
		t.Error("paper s constant should be far below the practical one")
	}
	if small.Eta != 4 {
		t.Errorf("paper η = %v, want 4", small.Eta)
	}
}

func TestPracticalDefaultsSane(t *testing.T) {
	p := Practical()
	if p.Eta < 1 || p.Reps < 1 || p.ZBase <= 1 {
		t.Errorf("bad structural defaults: %+v", p)
	}
	if p.L0Eps <= 0 || p.L0Eps >= 1 {
		t.Errorf("bad L0Eps %v", p.L0Eps)
	}
	if p.SLargeFrac <= 0 || p.FMult < 1 || p.SigmaFrac <= 0 {
		t.Errorf("bad subroutine constants: %+v", p)
	}
}
