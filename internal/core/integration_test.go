package core

import (
	"math/rand"
	"testing"

	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// TestEstimatorOnEmbeddedDSJ drives the estimator over an instance with
// the Section 5 adversarial structure embedded in routine mass: the
// estimate must stay in the guarantee window — neither hallucinating
// coverage from the singleton fringe nor missing the planted mass.
func TestEstimatorOnEmbeddedDSJ(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := workload.EmbeddedDSJ(10000, 1200, 20, 200, 0.7, rng)
	res, _ := runEstimator(t, in, 4, Practical(), 2)
	if !res.Feasible {
		t.Fatal("infeasible on embedded-DSJ instance")
	}
	opt := float64(in.PlantedCoverage)
	if res.Value > 1.4*opt {
		t.Errorf("estimate %v exceeds 1.4·OPT %v on adversarial instance", res.Value, opt)
	}
	if res.Value < opt/(1.5*4) {
		t.Errorf("estimate %v below OPT/6 on adversarial instance", res.Value)
	}
}

// TestOracleArrivalOrderExactness: the oracle's L0- and store-based parts
// are order-insensitive by construction; with a fixed seed, the full
// oracle estimate on the SAME edge multiset must agree across arrival
// orders (candidate dictionaries can differ only when eviction pressure
// occurs, which these dimensions avoid).
func TestOracleArrivalOrderExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := workload.PlantedCover(5000, 600, 15, 0.8, 4, rng)
	d := mustDerive(t, in, 4)
	var values []float64
	for _, order := range []stream.Order{stream.SetArrival, stream.Shuffled, stream.ElementMajor, stream.RoundRobin} {
		o := NewOracle(d, rand.New(rand.NewSource(11)))
		it := stream.Linearize(in.System, order, rng)
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			o.Process(e)
		}
		r := o.Result()
		if !r.Feasible {
			t.Fatalf("order %d: infeasible", order)
		}
		values = append(values, r.Value)
	}
	for i := 1; i < len(values); i++ {
		if values[i] != values[0] {
			t.Errorf("oracle value varies with arrival order: %v", values)
		}
	}
}

// TestEstimatorPreferentialAttachment: the heavy-tailed frequency profile
// (Lemma 4.20's regime) must not break the guarantee window.
func TestEstimatorPreferentialAttachment(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := workload.PreferentialAttachment(8000, 1000, 20, 15, 0.5, rng)
	res, _ := runEstimator(t, in, 4, Practical(), 6)
	up := optUpper(in)
	if res.Feasible && res.Value > 1.4*up {
		t.Errorf("estimate %v exceeds 1.4·OPTupper %v on preferential-attachment instance", res.Value, up)
	}
	if res.Feasible && res.Value < float64(in.OptLowerBound())/(3*4) {
		t.Errorf("estimate %v below OPT/(3α) on preferential-attachment instance", res.Value)
	}
}

// TestEstimatorLargeScale exercises a bigger configuration end to end
// (skipped with -short).
func TestEstimatorLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale run takes ~10s")
	}
	rng := rand.New(rand.NewSource(7))
	in := workload.PlantedCover(50000, 8000, 100, 0.8, 4, rng)
	alpha := 16.0
	res, est := runEstimator(t, in, alpha, Practical(), 8)
	if !res.Feasible {
		t.Fatal("infeasible at scale")
	}
	opt := float64(in.PlantedCoverage)
	if res.Value > 1.4*opt || res.Value < opt/(2*alpha) {
		t.Errorf("estimate %v outside window at scale (OPT %v, alpha %v)", res.Value, opt, alpha)
	}
	// Space sanity: far below storing the input.
	if est.SpaceWords() > 40*in.System.Edges() {
		t.Logf("note: space %d words vs %d edges (constants dominate at this m/alpha)",
			est.SpaceWords(), in.System.Edges())
	}
}

// TestEstimatorAllElementsUncovered: a stream whose sets never repeat an
// element (every set disjoint) — OPT = k·setsize exactly; the estimate
// must respect the window.
func TestEstimatorDisjointSets(t *testing.T) {
	const m, setSize = 400, 12
	n := m * setSize
	sets := make([][]uint32, m)
	for i := 0; i < m; i++ {
		for j := 0; j < setSize; j++ {
			sets[i] = append(sets[i], uint32(i*setSize+j))
		}
	}
	in := &workload.Instance{
		Name:            "disjoint",
		System:          setsystem.MustNew(n, sets),
		K:               10,
		PlantedIDs:      []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		PlantedCoverage: 10 * setSize,
	}
	res, _ := runEstimator(t, in, 4, Practical(), 9)
	opt := float64(in.PlantedCoverage)
	if res.Feasible && res.Value > 1.4*opt {
		t.Errorf("estimate %v exceeds 1.4·OPT %v on disjoint sets", res.Value, opt)
	}
}
