package core

import (
	"math/rand"
	"testing"

	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// feed streams an instance (shuffled edge arrival) into any Process-able.
func feed(t *testing.T, in *workload.Instance, seed int64, proc func(stream.Edge)) {
	t.Helper()
	it := stream.Linearize(in.System, stream.Shuffled, rand.New(rand.NewSource(seed)))
	for {
		e, ok := it.Next()
		if !ok {
			return
		}
		proc(e)
	}
}

func mustDerive(t *testing.T, in *workload.Instance, alpha float64) Derived {
	t.Helper()
	d, err := Derive(in.System.M(), in.System.N, in.K, alpha, Practical())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// optUpper bounds the true optimum from above: the planted coverage is
// exact for planted instances; otherwise greedy/(1-1/e).
func optUpper(in *workload.Instance) float64 {
	if in.PlantedIDs != nil {
		return float64(in.PlantedCoverage)
	}
	_, g := in.System.Greedy(in.K)
	return float64(g) / (1 - 1/2.718281828)
}

// --- Set sampling (Lemma 2.3, A.5, A.6; experiment E9) ---

func TestSetSamplerSizeBound(t *testing.T) {
	// Lemma A.5 analogue: |F^rnd| concentrates near rate·m.
	rng := rand.New(rand.NewSource(1))
	d, _ := Derive(4000, 1000, 10, 4, Practical())
	fails := 0
	for trial := 0; trial < 20; trial++ {
		s := NewSetSampler(d, 100, rng) // expect ~100 sampled
		got := len(s.Enumerate(4000))
		if got > 200 || got < 50 {
			fails++
		}
	}
	if fails > 2 {
		t.Errorf("%d/20 trials outside [50, 200] sampled sets (expect ~100)", fails)
	}
}

func TestSetSamplerCoversCommonElements(t *testing.T) {
	// Lemma A.6 analogue: sampling ~λ sets covers elements appearing in
	// ≥ c·m/λ sets. Plant an element in 10% of m=2000 sets and sample
	// λ = 200 sets: expected 20 containing sets hit.
	rng := rand.New(rand.NewSource(2))
	in := workload.CommonHeavy(1000, 2000, 5, 10, 0.1, 2, rng)
	d := mustDerive(t, in, 4)
	misses := 0
	for trial := 0; trial < 10; trial++ {
		s := NewSetSampler(d, 200, rng)
		covered := make(map[uint32]bool)
		for _, id := range s.Enumerate(in.System.M()) {
			for _, e := range in.System.Sets[id] {
				covered[e] = true
			}
		}
		for e := uint32(0); e < 10; e++ {
			if !covered[e] {
				misses++
			}
		}
	}
	if misses > 2 {
		t.Errorf("common elements missed %d/100 times by set sampling", misses)
	}
}

func TestSetSamplerDeterministicAndEnumerable(t *testing.T) {
	d, _ := Derive(500, 100, 5, 2, Practical())
	s := NewSetSampler(d, 50, rand.New(rand.NewSource(3)))
	ids := s.Enumerate(500)
	for _, id := range ids {
		if !s.Sampled(id) {
			t.Fatalf("Enumerate returned unsampled id %d", id)
		}
	}
	count := 0
	for i := 0; i < 500; i++ {
		if s.Sampled(uint32(i)) {
			count++
		}
	}
	if count != len(ids) {
		t.Errorf("Enumerate found %d, membership scan found %d", len(ids), count)
	}
	if s.SpaceWords() <= 0 {
		t.Error("SpaceWords not positive")
	}
}

func TestSetSamplerRateClamps(t *testing.T) {
	d, _ := Derive(10, 10, 5, 2, Practical())
	s := NewSetSampler(d, 1e9, rand.New(rand.NewSource(4)))
	if s.Rate() != 1 {
		t.Errorf("rate %v, want clamp to 1", s.Rate())
	}
	if len(s.Enumerate(10)) != 10 {
		t.Error("rate-1 sampler must keep everything")
	}
	s2 := NewSetSampler(d, -5, rand.New(rand.NewSource(5)))
	if len(s2.Enumerate(10)) != 0 {
		t.Error("rate-0 sampler must keep nothing")
	}
}

// --- Superset partition (Claims 4.9, 4.10; experiment E7) ---

func TestSupersetPartitionBalance(t *testing.T) {
	// Claim 4.9 analogue: no superset receives more than ~w sets. With
	// |Q| = QFactor·m·log m/w the average load is w/(QFactor·log m) < 1;
	// assert max load ≤ 3w.
	rng := rand.New(rand.NewSource(6))
	d, _ := Derive(4000, 1000, 16, 8, Practical()) // w = 8
	sp := NewSupersetPartition(d, rng)
	load := make(map[uint64]int)
	for i := 0; i < 4000; i++ {
		load[sp.Superset(uint32(i))]++
	}
	maxLoad := 0
	for _, l := range load {
		if l > maxLoad {
			maxLoad = l
		}
	}
	if maxLoad > 3*8 {
		t.Errorf("max superset load %d > 3w = 24", maxLoad)
	}
}

func TestSupersetPartitionMultiplicity(t *testing.T) {
	// Claim 4.10 analogue: a non-common element (here: frequency 20 over
	// m = 4000 sets) lands few times in any single superset.
	rng := rand.New(rand.NewSource(7))
	d, _ := Derive(4000, 1000, 16, 8, Practical())
	sp := NewSupersetPartition(d, rng)
	owners := rand.New(rand.NewSource(8)).Perm(4000)[:20]
	mult := make(map[uint64]int)
	for _, s := range owners {
		mult[sp.Superset(uint32(s))]++
	}
	for ss, c := range mult {
		if c > 4 { // f = Õ(1); practical FMult = 2, allow slack
			t.Errorf("element multiplicity %d in superset %d", c, ss)
		}
	}
}

func TestSupersetMembersRoundTrip(t *testing.T) {
	d, _ := Derive(300, 100, 4, 2, Practical())
	sp := NewSupersetPartition(d, rand.New(rand.NewSource(9)))
	target := sp.Superset(42)
	members := sp.Members(300, target, 300)
	found := false
	for _, id := range members {
		if sp.Superset(id) != target {
			t.Fatalf("member %d not in superset %d", id, target)
		}
		if id == 42 {
			found = true
		}
	}
	if !found {
		t.Error("Members missed the probe set")
	}
	if capped := sp.Members(300, target, 1); len(capped) > 1 {
		t.Error("Members ignored the cap")
	}
}

// --- LargeCommon (Theorem 4.4; experiment E6) ---

func TestLargeCommonAcceptsCommonHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	in := workload.CommonHeavy(5000, 1000, 10, 200, 0.4, 2, rng)
	d := mustDerive(t, in, 4)
	lc := NewLargeCommon(d, rng)
	feed(t, in, 11, lc.Process)
	val, beta, ok := lc.Estimate()
	if !ok {
		t.Fatal("LargeCommon rejected a common-heavy instance")
	}
	if beta < 1 {
		t.Errorf("winning beta %v", beta)
	}
	// Never (grossly) overestimate: val ≤ 1.3·OPT (L0 noise slack).
	if up := optUpper(in); val > 1.3*up {
		t.Errorf("LargeCommon estimate %v exceeds 1.3·OPTupper %v", val, 1.3*up)
	}
	// And it must be a useful fraction of OPT for the oracle case-I bound.
	if val < float64(in.OptLowerBound())/(3*4) {
		t.Errorf("LargeCommon estimate %v below OPT/(3α)", val)
	}
}

func TestLargeCommonRejectsSparse(t *testing.T) {
	// An instance with no common elements and tiny total coverage must not
	// be accepted at a high estimate: all layers' distinct counts stay far
	// below thresholds scaled for n.
	rng := rand.New(rand.NewSource(12))
	in := workload.PlantedCover(50000, 1000, 5, 0.01, 1, rng) // OPT = 500 of 50000
	d := mustDerive(t, in, 4)
	lc := NewLargeCommon(d, rng)
	feed(t, in, 13, lc.Process)
	if val, _, ok := lc.Estimate(); ok {
		if val > 1.3*optUpper(in) {
			t.Errorf("accepted sparse instance at %v > OPT %v", val, optUpper(in))
		}
	}
}

func TestLargeCommonCandidateSets(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	in := workload.CommonHeavy(5000, 1000, 10, 200, 0.4, 2, rng)
	d := mustDerive(t, in, 4)
	lc := NewLargeCommon(d, rng)
	feed(t, in, 15, lc.Process)
	ids := lc.CandidateSets(rng)
	if ids == nil {
		t.Fatal("no candidates from accepting LargeCommon")
	}
	if len(ids) > in.K {
		t.Fatalf("%d candidates > k=%d", len(ids), in.K)
	}
	cov := coverageOf(in.System, ids)
	if cov < in.OptLowerBound()/(6*4) {
		t.Errorf("candidate coverage %d below OPT/(6α) = %d", cov, in.OptLowerBound()/24)
	}
}

func coverageOf(ss *setsystem.SetSystem, ids []uint32) int {
	ints := make([]int, len(ids))
	for i, id := range ids {
		ints[i] = int(id)
	}
	return ss.Coverage(ints)
}

// --- LargeSet (Theorem 4.8; experiment E7) ---

func TestLargeSetDetectsLargeSets(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	in := workload.PlantedLargeSets(8000, 1000, 20, 2, 0.8, rng)
	d := mustDerive(t, in, 4)
	ls := NewLargeSet(d, rng)
	feed(t, in, 17, ls.Process)
	res := ls.Estimate()
	if !res.Feasible {
		t.Fatal("LargeSet infeasible on a planted large-set instance")
	}
	n := float64(in.System.N)
	if res.Value < n/(12*4) { // Ω̃(n/α) with practical constant slack
		t.Errorf("LargeSet value %v below n/(12α) = %v", res.Value, n/48)
	}
	if res.Value > 1.5*optUpper(in) {
		t.Errorf("LargeSet value %v exceeds 1.5·OPT %v", res.Value, optUpper(in))
	}
}

func TestLargeSetCandidateSetsCover(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	in := workload.PlantedLargeSets(8000, 1000, 20, 2, 0.8, rng)
	d := mustDerive(t, in, 4)
	ls := NewLargeSet(d, rng)
	feed(t, in, 19, ls.Process)
	ids := ls.CandidateSets()
	if ids == nil {
		t.Fatal("no candidates")
	}
	if len(ids) > in.K {
		t.Fatalf("%d candidates > k", len(ids))
	}
	cov := coverageOf(in.System, ids)
	if cov < in.System.N/(12*4) {
		t.Errorf("candidate coverage %d below n/(12α)", cov)
	}
}

func TestLargeSetQuietOnTinyCoverage(t *testing.T) {
	// OPT covers 1% of the universe: LargeSet may accept only at a value
	// consistent with no-overestimation.
	rng := rand.New(rand.NewSource(20))
	in := workload.PlantedCover(50000, 1000, 5, 0.01, 1, rng)
	d := mustDerive(t, in, 4)
	ls := NewLargeSet(d, rng)
	feed(t, in, 21, ls.Process)
	if res := ls.Estimate(); res.Feasible && res.Value > 1.5*optUpper(in) {
		t.Errorf("LargeSet value %v on 1%%-coverage instance (OPT %v)", res.Value, optUpper(in))
	}
}

// --- SmallSet (Theorem 4.22; experiment E8) ---

func TestSmallSetDetectsManySmallSets(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	in := workload.PlantedSmallSets(8000, 2000, 200, 0.8, rng)
	d := mustDerive(t, in, 4)
	ss := NewSmallSet(d, rng)
	feed(t, in, 23, ss.Process)
	res := ss.Estimate()
	if !res.Feasible {
		t.Fatal("SmallSet infeasible on a planted small-set instance")
	}
	if res.Value < float64(in.PlantedCoverage)/(8*4) {
		t.Errorf("SmallSet value %v below OPT/(8α)", res.Value)
	}
	if res.Value > 1.5*float64(in.PlantedCoverage) {
		t.Errorf("SmallSet value %v exceeds 1.5·OPT %v", res.Value, in.PlantedCoverage)
	}
	if len(res.SetIDs) > ss.KPrime() {
		t.Errorf("%d candidate sets > k' = %d", len(res.SetIDs), ss.KPrime())
	}
	// The candidates' true coverage must back a Θ(1/α) fraction of OPT.
	if cov := coverageOf(in.System, res.SetIDs); cov < in.PlantedCoverage/(10*4) {
		t.Errorf("candidate coverage %d below OPT/(10α)", cov)
	}
}

func TestSmallSetKPrimeScaling(t *testing.T) {
	p := Practical()
	d4, _ := Derive(1000, 1000, 100, 4, p)
	d16, _ := Derive(1000, 1000, 100, 16, p)
	s4 := NewSmallSet(d4, rand.New(rand.NewSource(24)))
	s16 := NewSmallSet(d16, rand.New(rand.NewSource(25)))
	if s4.KPrime() <= s16.KPrime() {
		t.Errorf("k' should shrink with alpha: %d vs %d", s4.KPrime(), s16.KPrime())
	}
	if s4.MRate() <= s16.MRate() {
		t.Errorf("M rate should shrink with alpha: %v vs %v", s4.MRate(), s16.MRate())
	}
	if s16.KPrime() < 1 {
		t.Error("k' must be at least 1")
	}
}

func TestSmallSetStorageCap(t *testing.T) {
	// A dense instance with a tiny cap must kill layers, not blow memory.
	rng := rand.New(rand.NewSource(26))
	p := Practical()
	p.StoreCapFactor = 0.01
	in := workload.Uniform(500, 500, 10, 50, rng)
	d, _ := Derive(in.System.M(), in.System.N, in.K, 2, p)
	ss := NewSmallSet(d, rng)
	feed(t, in, 27, ss.Process)
	if w := ss.SpaceWords(); w > 10000 {
		t.Errorf("capped SmallSet retains %d words", w)
	}
}
