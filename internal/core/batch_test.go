package core

import (
	"math/rand"
	"reflect"
	"testing"

	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// collectShuffled materializes an instance's edges in shuffled arrival
// order.
func collectShuffled(in *workload.Instance, seed int64) []stream.Edge {
	return stream.Linearize(in.System, stream.Shuffled, rand.New(rand.NewSource(seed))).Edges()
}

// splitAt partitions edges into batches at the given sorted boundaries.
func splitAt(edges []stream.Edge, cuts []int) [][]stream.Edge {
	var out [][]stream.Edge
	prev := 0
	for _, c := range cuts {
		out = append(out, edges[prev:c])
		prev = c
	}
	return append(out, edges[prev:])
}

// randomCuts draws sorted split points in [0, n], deliberately allowing
// duplicates (empty batches) and 0/n boundaries.
func randomCuts(n, count int, rng *rand.Rand) []int {
	cuts := make([]int, count)
	for i := range cuts {
		cuts[i] = rng.Intn(n + 1)
	}
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	return cuts
}

// TestOracleBatchEquivalence drives a standalone Oracle through the
// sequential and batched paths and requires bit-identical post-pass
// state: same subroutine verdicts, same space, same Result.
func TestOracleBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := workload.PlantedCover(3000, 600, 12, 0.8, 4, rng)
	d := mustDerive(t, in, 4)
	edges := collectShuffled(in, 7)

	seq := NewOracle(d, rand.New(rand.NewSource(11)))
	bat := NewOracle(d, rand.New(rand.NewSource(11)))
	for _, e := range edges {
		seq.Process(e)
	}
	sc := NewBatchScratch()
	for _, batch := range splitAt(edges, randomCuts(len(edges), 5, rng)) {
		sc.Index(batch)
		bat.ProcessBatch(batch, sc)
	}

	if a, b := seq.SpaceWords(), bat.SpaceWords(); a != b {
		t.Errorf("SpaceWords: sequential %d != batch %d", a, b)
	}
	av, ab, aok := seq.LargeCommonEstimate()
	bv, bb, bok := bat.LargeCommonEstimate()
	if av != bv || ab != bb || aok != bok {
		t.Errorf("LargeCommon: (%v,%v,%v) != (%v,%v,%v)", av, ab, aok, bv, bb, bok)
	}
	if a, b := seq.LargeSetEstimate(), bat.LargeSetEstimate(); a != b {
		t.Errorf("LargeSet: %+v != %+v", a, b)
	}
	if a, b := seq.SmallSetEstimate(), bat.SmallSetEstimate(); !reflect.DeepEqual(a, b) {
		t.Errorf("SmallSet: %+v != %+v", a, b)
	}
	if a, b := seq.Result(), bat.Result(); !reflect.DeepEqual(a, b) {
		t.Errorf("Result: %+v != %+v", a, b)
	}
}

// TestEstimatorBatchEquivalence checks the full ladder: Process,
// ProcessBatch (whole slice and random splits) and ProcessAllParallel
// must agree bit-for-bit on Estimate/Report output and retained space.
func TestEstimatorBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := workload.PlantedCover(2000, 400, 10, 0.8, 3, rng)
	m, n, k := in.System.M(), in.System.N, in.K
	edges := collectShuffled(in, 3)

	build := func() *Estimator {
		est, err := NewEstimator(m, n, k, 4, Practical(), NewOracleFactory(), rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		return est
	}

	seq := build()
	for _, e := range edges {
		seq.Process(e)
	}
	whole := build()
	whole.ProcessBatch(edges)
	split := build()
	for _, batch := range splitAt(edges, randomCuts(len(edges), 7, rng)) {
		split.ProcessBatch(batch)
	}
	par := build()
	par.ProcessAllParallel(edges, 4)

	want := seq.Result()
	for name, est := range map[string]*Estimator{"batch": whole, "split": split, "parallel": par} {
		if got := est.Result(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s Result %+v != sequential %+v", name, got, want)
		}
		if got, w := est.SpaceWords(), seq.SpaceWords(); got != w {
			t.Errorf("%s SpaceWords %d != sequential %d", name, got, w)
		}
	}
}

// TestSmallSetDeadShortCircuit forces every layer to trip its storage cap
// and checks (a) the all-dead short-circuit leaves state untouched and
// (b) the batched path agrees with the sequential one through and past
// the die-off.
func TestSmallSetDeadShortCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := workload.PlantedSmallSets(2000, 500, 50, 0.8, rng)
	p := Practical()
	p.StoreCapFactor = 0.01 // tiny caps: layers die almost immediately
	d, err := Derive(in.System.M(), in.System.N, in.K, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	edges := collectShuffled(in, 5)

	seq := NewSmallSet(d, rand.New(rand.NewSource(21)))
	bat := NewSmallSet(d, rand.New(rand.NewSource(21)))
	for _, e := range edges {
		seq.Process(e)
	}
	sc := NewBatchScratch()
	for _, batch := range splitAt(edges, randomCuts(len(edges), 4, rng)) {
		sc.Index(batch)
		bat.processBatch(batch, sc)
	}
	if seq.live != 0 {
		t.Fatalf("expected all layers dead, %d live (caps too large for the test?)", seq.live)
	}
	if bat.live != 0 {
		t.Fatalf("batch path: expected all layers dead, %d live", bat.live)
	}
	if a, b := seq.SpaceWords(), bat.SpaceWords(); a != b {
		t.Errorf("SpaceWords: sequential %d != batch %d", a, b)
	}
	if a, b := seq.Estimate(), bat.Estimate(); !reflect.DeepEqual(a, b) {
		t.Errorf("Estimate: %+v != %+v", a, b)
	}
	// With everything dead, further edges must be no-ops on both paths.
	before := seq.SpaceWords()
	for _, e := range edges[:100] {
		seq.Process(e)
	}
	sc.Index(edges[:100])
	bat.processBatch(edges[:100], sc)
	if seq.SpaceWords() != before || bat.SpaceWords() != before {
		t.Errorf("dead SmallSet grew: seq %d bat %d want %d", seq.SpaceWords(), bat.SpaceWords(), before)
	}
}

// TestSmallSetLiveCountMerge checks the live counter survives merging in
// dead layers (merge-safety of the short-circuit).
func TestSmallSetLiveCountMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := workload.PlantedSmallSets(2000, 500, 50, 0.8, rng)
	p := Practical()
	p.StoreCapFactor = 0.01
	d, err := Derive(in.System.M(), in.System.N, in.K, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	edges := collectShuffled(in, 6)

	a := NewSmallSet(d, rand.New(rand.NewSource(31)))
	b := NewSmallSet(d, rand.New(rand.NewSource(31)))
	for _, e := range edges {
		b.Process(e)
	}
	if b.live != 0 {
		t.Fatalf("shard b should be fully dead, %d live", b.live)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.live != 0 {
		t.Errorf("merged live count %d, want 0", a.live)
	}
	// Short-circuit must now hold on the merged structure too.
	before := a.SpaceWords()
	for _, e := range edges[:50] {
		a.Process(e)
	}
	if a.SpaceWords() != before {
		t.Errorf("merged-dead SmallSet grew from %d to %d", before, a.SpaceWords())
	}
}
