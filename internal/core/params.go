// Package core implements the paper's contribution: the single-pass
// Õ(m/α²)-space α-approximation for Max k-Cover on edge-arrival streams
// (Indyk–Vakilian, PODS'19, Theorems 3.1 and 3.2).
//
// The structure mirrors the paper exactly:
//
//   - EstimateMaxCover (Figure 1) guesses the optimal coverage z over a
//     geometric ladder, applies the universe reduction of Section 3.1
//     (a 4-wise hash U → [z], Lemma 3.5), and feeds each reduced stream to
//     an (α, δ, η)-oracle (Definition 3.4, Theorem 3.6).
//   - Oracle (Figure 2) runs three subroutines in parallel and returns
//     their maximum: LargeCommon (Section 4.1, multi-layered set
//     sampling), LargeSet (Section 4.2 and Appendix B, supersets + F2
//     heavy hitters/contributing classes) and SmallSet (Section 4.3,
//     set subsampling + element sampling).
//
// Every subroutine is a single-pass structure with Process(edge) and a
// post-pass estimate; the top level fans each arriving edge out to all
// parallel instances, so the whole algorithm performs exactly one pass.
package core

import (
	"fmt"
	"math"

	"streamcover/internal/sketch"
)

// Params carries the tunable constants of the algorithm. The paper fixes
// them (Table 2) at values that make the w.h.p. proofs go through but are
// astronomically conservative at feasible scale; Practical() keeps every
// structural choice (which samplers exist, what is compared to what) and
// recalibrates only the constants. Paper() instantiates Table 2 literally
// for documentation and formula tests.
type Params struct {
	// Eta is η, the oracle's promised-coverage parameter: the oracle must
	// answer when OPT covers at least 1/η of the (reduced) universe.
	// Paper: 4.
	Eta float64
	// Reps is the number of independent repetitions per coverage guess in
	// EstimateMaxCover (the paper's log(1/δ) boosting loop).
	Reps int
	// ZBase is the ratio of the coverage-guess ladder (paper: 2).
	ZBase float64
	// Independence overrides the Θ(log(mn)) hash independence degree;
	// 0 means use hash.LogDegree (the paper's choice).
	Independence int
	// L0Eps is the relative error target of every L0 sketch (paper: 1/2).
	L0Eps float64
	// UseHLL switches the distinct-count backend from the bottom-k L0 to
	// HyperLogLog (smaller at equal error on large universes; the paper's
	// Theorem 2.12 is agnostic to the implementation).
	UseHLL bool

	// LargeCommon (Section 4.1, Figure 3).

	// SetSampleBoost multiplies the per-layer set-sampling rate β·k/m
	// (paper: c·log m, the set-sampling oversampling factor of Lemma A.6).
	SetSampleBoost float64
	// SigmaFrac is the acceptance threshold: layer β's L0 value must reach
	// SigmaFrac·β·z/α to report (paper: σ/4 with σ = 1/(2500·log²(mn))).
	SigmaFrac float64

	// LargeSet (Section 4.2 / Appendix B, Figures 4, 6, 7).

	// LSReps is the number of parallel element-sample repetitions
	// (paper: O(log n)).
	LSReps int
	// SLargeFrac sets s = SLargeFrac·w/α, the "large set" contribution
	// cutoff: OPTlarge is the sets contributing at least z/(sα)
	// (paper: s = (9/5000)·w/(α·√(2η·log(sα))·log(mn)), i.e. Θ̃(w/α)).
	SLargeFrac float64
	// FMult is f, the allowed multiplicity of a non-common element inside
	// one superset, which divides superset total size to bound coverage
	// (paper: 7·log(mn), Claim 4.10).
	FMult float64
	// ElemSampleTarget sets the element-sampling rate ρ = Target·α/n
	// (paper: ρ = t·s·α·η/|U| with t = 5000·log²(mn)/s).
	ElemSampleTarget float64
	// Phi1Const scales φ1 = Phi1Const·α²/m, the contributing threshold for
	// the small-superset case (paper Eq. 6: Θ̃(α²/m)).
	Phi1Const float64
	// Phi2 is φ2, the contributing threshold for the large-superset case
	// (paper: 1/(2·log α)).
	Phi2 float64
	// QFactor scales the number of supersets: |Q| = QFactor·m·log2(m)/w
	// (paper: c·m·log m/w).
	QFactor float64
	// R2Frac sets r2 = R2Frac·|Q|, the largest contributing-class size the
	// heavy-hitter battery handles before the sampled-superset fallback
	// takes over (paper: γ-scaled |Q|, Eq. 8).
	R2Frac float64
	// SupersetSampleSize is how many supersets the fallback samples and
	// tracks with L0 sketches (paper: 12·|Q|·log m/r2).
	SupersetSampleSize int
	// ContribCfg tunes the F2-contributing batteries.
	ContribCfg sketch.ContribConfig

	// SmallSet (Section 4.3, Figure 5).

	// SSGuesses is the number of coverage-fraction guesses γg (powers of
	// 1/2 starting at 1; paper: log α).
	SSGuesses int
	// MRateConst sets the set-subsampling rate min(1, MRateConst/α)
	// (paper: 18/(sα), Corollary 4.19 with c = 18).
	MRateConst float64
	// KPrimeConst sets the reduced budget k' = max(1, KPrimeConst·k/α)
	// (paper: 36·k/(sα)).
	KPrimeConst float64
	// ElemPerSet sets the element-sample size |L| ≈ ElemPerSet·k'/γg
	// (paper: Θ̃(η'k') per Lemma 2.5).
	ElemPerSet float64
	// StoreCapFactor caps the stored sub-instance at
	// StoreCapFactor·(m/α² + k) pairs; exceeding it aborts the layer as
	// the paper's "terminate" branch does (Lemma 4.21's Õ(m/α²) bound).
	StoreCapFactor float64
	// AcceptFrac accepts a layer when the greedy k'-cover of the stored
	// instance covers at least AcceptFrac·γg·|L| sampled elements
	// (paper: solγg = Ω̃(k/α)).
	AcceptFrac float64
}

// Practical returns constants calibrated for laptop-scale instances
// (n, m up to a few hundred thousand). See DESIGN.md §3 for the
// substitution rationale.
func Practical() Params {
	contrib := sketch.DefaultContribConfig()
	contrib.Independence = 8
	return Params{
		Eta:          4,
		Reps:         1,
		ZBase:        4,
		Independence: 8,
		L0Eps:        0.4,

		SetSampleBoost: 1,
		SigmaFrac:      0.1,

		LSReps:             2,
		SLargeFrac:         0.5,
		FMult:              2,
		ElemSampleTarget:   40,
		Phi1Const:          0.5,
		Phi2:               0.2,
		QFactor:            0.5,
		R2Frac:             0.25,
		SupersetSampleSize: 32,
		ContribCfg:         contrib,

		SSGuesses:      5,
		MRateConst:     8,
		KPrimeConst:    4,
		ElemPerSet:     12,
		StoreCapFactor: 32,
		AcceptFrac:     0.25,
	}
}

// Paper returns the literal Table 2 constants for given instance
// dimensions, for documentation and formula-level tests. Running the
// algorithm with these constants requires astronomically large instances
// before any subroutine accepts, exactly as the theory intends.
func Paper(m, n int) Params {
	logmn := math.Log2(float64(m)*float64(n) + 2)
	p := Practical()
	p.Eta = 4
	p.ZBase = 2
	p.L0Eps = 0.5
	p.SetSampleBoost = math.Log2(float64(m) + 2)
	p.SigmaFrac = 1.0 / (4 * 2500 * logmn * logmn) // σ/4
	p.FMult = 7 * logmn                            // f = 7·log(mn)
	p.SLargeFrac = (9.0 / 5000) / math.Sqrt(2*4*logmn*logmn)
	p.QFactor = math.Log2(float64(m) + 2)
	return p
}

// Derived carries the per-instance derived quantities of Table 2.
type Derived struct {
	M, N, K int
	Alpha   float64
	W       float64 // w = min(k, α)
	S       float64 // s: OPTlarge cutoff scale, s·α = max |OPTlarge|
	SAlpha  float64 // s·α
	P       Params
}

// Derive validates dimensions and computes the Table 2 quantities.
func Derive(m, n, k int, alpha float64, p Params) (Derived, error) {
	if m < 1 || n < 1 || k < 1 {
		return Derived{}, fmt.Errorf("core: bad dimensions m=%d n=%d k=%d", m, n, k)
	}
	if alpha < 1 {
		return Derived{}, fmt.Errorf("core: alpha %v < 1", alpha)
	}
	w := math.Min(float64(k), alpha)
	s := p.SLargeFrac * w / alpha
	if s <= 0 {
		return Derived{}, fmt.Errorf("core: derived s = %v not positive", s)
	}
	return Derived{
		M: m, N: n, K: k,
		Alpha:  alpha,
		W:      w,
		S:      s,
		SAlpha: s * alpha,
		P:      p,
	}, nil
}

// independence returns the hash independence degree to use.
func (d Derived) independence() int {
	if d.P.Independence > 0 {
		return d.P.Independence
	}
	return 0 // sentinel: callers fall back to hash.LogDegree
}
