package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"streamcover/internal/stream"
)

func persistEstimator(t *testing.T, seed int64) *Estimator {
	t.Helper()
	est, err := NewEstimator(60, 400, 4, 4, Practical(), NewOracleFactory(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func persistStream(seed int64, n int) []stream.Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]stream.Edge, n)
	for i := range edges {
		edges[i] = stream.Edge{Set: uint32(rng.Intn(60)), Elem: uint32(rng.Intn(400))}
	}
	return edges
}

// TestEstimatorStateRoundTrip is the core round-trip guarantee: a blob
// restored into a fresh same-seed construction yields an estimator with
// the same future outputs and the same space accounting, and re-encodes
// byte-identically even after further (mixed scalar/batch) processing.
func TestEstimatorStateRoundTrip(t *testing.T) {
	orig := persistEstimator(t, 21)
	for _, e := range persistStream(5, 4000) {
		orig.Process(e)
	}
	blob, err := orig.AppendState(nil)
	if err != nil {
		t.Fatal(err)
	}

	restored := persistEstimator(t, 21)
	if err := restored.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if orig.SpaceWords() != restored.SpaceWords() {
		t.Fatalf("SpaceWords diverged: %d vs %d", orig.SpaceWords(), restored.SpaceWords())
	}

	// Continue both on the same suffix, deliberately down different code
	// paths: the original scalar, the restored batched. The batch scratch
	// is rebuilt lazily and must not affect state.
	suffix := persistStream(6, 3000)
	for _, e := range suffix {
		orig.Process(e)
	}
	for off := 0; off < len(suffix); off += 512 {
		end := off + 512
		if end > len(suffix) {
			end = len(suffix)
		}
		restored.ProcessBatch(suffix[off:end])
	}

	b1, err := orig.AppendState(nil)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := restored.AppendState(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("states diverged after restore + further processing")
	}

	r1, r2 := orig.Result(), restored.Result()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("results diverged: %+v vs %+v", r1, r2)
	}
}

func TestEstimatorRestoreRejectsOtherSeed(t *testing.T) {
	orig := persistEstimator(t, 21)
	for _, e := range persistStream(5, 1000) {
		orig.Process(e)
	}
	blob, err := orig.AppendState(nil)
	if err != nil {
		t.Fatal(err)
	}
	other := persistEstimator(t, 22)
	if err := other.RestoreState(blob); err == nil {
		t.Fatal("restore under a different seed must fail")
	}
}

func TestEstimatorRestoreMalformed(t *testing.T) {
	orig := persistEstimator(t, 33)
	for _, e := range persistStream(7, 1500) {
		orig.Process(e)
	}
	blob, err := orig.AppendState(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"header only", blob[:1]},
		{"truncated", blob[:len(blob)/3]},
		{"trailing garbage", append(append([]byte{}, blob...), 7)},
	} {
		dst := persistEstimator(t, 33)
		if err := dst.RestoreState(tc.data); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

func TestEstimatorStateTrivialCase(t *testing.T) {
	mk := func() *Estimator {
		est, err := NewEstimator(8, 100, 4, 4, Practical(), NewOracleFactory(), rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		if !est.trivial {
			t.Fatal("expected trivial-case estimator")
		}
		return est
	}
	blob, err := mk().AppendState(nil)
	if err != nil {
		t.Fatal(err)
	}
	restored := mk()
	if err := restored.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	full := persistEstimator(t, 1)
	if err := full.RestoreState(blob); err == nil {
		t.Fatal("trivial blob into non-trivial construction must fail")
	}
}

// TestSmallSetDeadLayerRoundTrip drives a tiny SmallSet past its storage
// cap so some layers die, then checks the dead flags survive a round trip.
func TestSmallSetDeadLayerRoundTrip(t *testing.T) {
	orig := persistEstimator(t, 44)
	// A long skewed stream overflows the per-layer caps at small scale.
	for _, e := range persistStream(9, 20000) {
		orig.Process(e)
	}
	blob, err := orig.AppendState(nil)
	if err != nil {
		t.Fatal(err)
	}
	restored := persistEstimator(t, 44)
	if err := restored.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	b2, err := restored.AppendState(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, b2) {
		t.Fatal("dead-layer state did not survive the round trip")
	}
	if r1, r2 := orig.Result(), restored.Result(); !reflect.DeepEqual(r1, r2) {
		t.Fatalf("results diverged: %+v vs %+v", r1, r2)
	}
}
