package core

import (
	"math/rand"

	"streamcover/internal/hash"
	"streamcover/internal/sketch"
	"streamcover/internal/stream"
)

// LargeCommon is the multi-layered set-sampling subroutine of Section 4.1
// (Figure 3). It handles oracle case I: some β ≤ α has many (βk)-common
// elements (|U^cmn_{βk}| ≥ σβ|U|/α). For every guess β_g in a geometric
// ladder it samples ~β_g·k sets and measures their coverage with an L0
// sketch; by Lemma 2.3 the sampled sets cover all (β_g·k)-common elements,
// and by Observation 2.4 the best k sets among them retain a 1/β_g
// fraction of that coverage, so 2·VAL/(3β_g) is a certified lower bound on
// OPT whenever the layer's L0 value clears its threshold.
//
// The layers are nested: one retained hash value per set, compared against
// the ladder of rate thresholds, so F^rnd(β) ⊆ F^rnd(2β) and one edge
// costs one hash evaluation regardless of the number of layers. Marginal
// sampling rates match the paper's; nesting only correlates layers with
// each other, which none of the per-layer guarantees rely on.
type LargeCommon struct {
	d      Derived
	h      *hash.Poly
	layers []lcLayer
}

type lcLayer struct {
	beta   float64
	thresh uint64 // sampled iff h(set) < thresh
	rate   float64
	de     sketch.DistinctCounter
}

// NewLargeCommon builds the ladder β_g ∈ {1, 2, 4, …} up to α. (The paper
// starts at β_g = 2; the β_g = 1 layer is free and doubles as the
// candidate pool for solution reporting.)
func NewLargeCommon(d Derived, rng *rand.Rand) *LargeCommon {
	lc := &LargeCommon{d: d, h: d.newHash(rng)}
	for beta := 1.0; beta <= d.Alpha; beta *= 2 {
		rate := d.P.SetSampleBoost * beta * float64(d.K) / float64(d.M)
		if rate > 1 {
			rate = 1
		}
		lc.layers = append(lc.layers, lcLayer{
			beta:   beta,
			rate:   rate,
			thresh: rateThreshold(rate),
			de:     d.newL0(rng),
		})
	}
	return lc
}

// rateThreshold converts a sampling rate to a field-value threshold.
func rateThreshold(rate float64) uint64 {
	if rate >= 1 {
		return hash.Prime
	}
	if rate <= 0 {
		return 0
	}
	return uint64(rate * float64(hash.Prime))
}

// Process feeds one edge: each layer whose (nested) sample keeps the
// edge's set adds the element to that layer's distinct counter.
func (lc *LargeCommon) Process(e stream.Edge) {
	v := lc.h.Eval(uint64(e.Set))
	for i := range lc.layers {
		if v < lc.layers[i].thresh {
			lc.layers[i].de.Add(uint64(e.Elem))
		}
	}
}

// Estimate returns the best accepted layer's estimate (Figure 3's
// 2·VAL/(3β_g)), the winning β_g, and whether any layer accepted. A layer
// accepts when its L0 value reaches SigmaFrac·β_g·n/α — the practical form
// of the paper's σβ|U|/(4α) threshold.
func (lc *LargeCommon) Estimate() (val, beta float64, ok bool) {
	for i := range lc.layers {
		l := &lc.layers[i]
		v := l.de.Estimate()
		thresh := lc.d.P.SigmaFrac * l.beta * float64(lc.d.N) / lc.d.Alpha
		if v >= thresh {
			if est := 2 * v / (3 * l.beta); est > val {
				val, beta, ok = est, l.beta, true
			}
		}
	}
	return val, beta, ok
}

// CandidateSets returns up to k set IDs backing the winning layer's
// estimate: a uniformly random k-subset of the layer's sampled sets
// (a random group of the implicit β-way partition retains a 1/β fraction
// of the sampled coverage in expectation, per Observation 2.4). Returns
// nil if no layer accepted.
func (lc *LargeCommon) CandidateSets(rng *rand.Rand) []uint32 {
	_, beta, ok := lc.Estimate()
	if !ok {
		return nil
	}
	for i := range lc.layers {
		if lc.layers[i].beta != beta {
			continue
		}
		var ids []uint32
		for s := 0; s < lc.d.M; s++ {
			if lc.h.Eval(uint64(s)) < lc.layers[i].thresh {
				ids = append(ids, uint32(s))
			}
		}
		if len(ids) > lc.d.K {
			rng.Shuffle(len(ids), func(a, b int) { ids[a], ids[b] = ids[b], ids[a] })
			ids = ids[:lc.d.K]
		}
		return ids
	}
	return nil
}

// SpaceWords sums the shared hash and the layers' distinct counters.
func (lc *LargeCommon) SpaceWords() int {
	w := lc.h.SpaceWords() + 1
	for i := range lc.layers {
		w += lc.layers[i].de.SpaceWords() + 2
	}
	return w
}
