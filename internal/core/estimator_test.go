package core

import (
	"math/rand"
	"testing"

	"streamcover/internal/hash"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// runEstimator builds an estimator, feeds the instance once (shuffled
// order, pass-counted) and returns the result.
func runEstimator(t *testing.T, in *workload.Instance, alpha float64, p Params, seed int64) (Estimate, *Estimator) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	est, err := NewEstimator(in.System.M(), in.System.N, in.K, alpha, p, NewOracleFactory(), rng)
	if err != nil {
		t.Fatal(err)
	}
	it := stream.NewCounting(stream.Linearize(in.System, stream.Shuffled, rng))
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		est.Process(e)
	}
	if it.Passes != 1 {
		t.Fatalf("estimator consumed %d passes, want exactly 1", it.Passes)
	}
	return est.Result(), est
}

// --- Lemma 3.5: the universe-reduction hash preserves large sets ---

func TestUniverseReductionLemma35(t *testing.T) {
	// For a set S with |S| ≥ z, Pr[|h(S)| ≥ z/4] ≥ 3/4 under a 4-wise h.
	rng := rand.New(rand.NewSource(1))
	for _, z := range []uint64{32, 128, 1024} {
		good := 0
		const trials = 200
		for trial := 0; trial < trials; trial++ {
			h := hash.New4Wise(rng)
			distinct := make(map[uint64]struct{})
			for e := uint64(0); e < z; e++ { // |S| = z exactly
				distinct[h.Range(e, z)] = struct{}{}
			}
			if uint64(len(distinct)) >= z/4 {
				good++
			}
		}
		if good < trials*3/4 {
			t.Errorf("z=%d: |h(S)| >= z/4 in only %d/%d trials, want >= 150", z, good, trials)
		}
	}
}

// --- Theorem 3.6 with a mock oracle: the wrapper is generic ---

// exactOracle computes the exact greedy coverage of the reduced instance —
// a perfect (1, 0, ·)-oracle. With it, EstimateMaxCover's output must land
// in [OPT/(8·ZBase), OPT].
type exactOracle struct {
	d    Derived
	sets map[uint32]map[uint32]struct{}
}

func newExactOracle(d Derived, _ *rand.Rand) CoverageOracle {
	return &exactOracle{d: d, sets: make(map[uint32]map[uint32]struct{})}
}

func (o *exactOracle) Process(e stream.Edge) {
	s, ok := o.sets[e.Set]
	if !ok {
		s = make(map[uint32]struct{})
		o.sets[e.Set] = s
	}
	s[e.Elem] = struct{}{}
}

func (o *exactOracle) Result() OracleResult {
	pairs := make(map[uint32][]uint32, len(o.sets))
	for id, elems := range o.sets {
		for e := range elems {
			pairs[id] = append(pairs[id], e)
		}
	}
	ids, covered := greedyOnPairs(pairs, o.d.K)
	return OracleResult{Value: float64(covered), Feasible: covered > 0, SetIDs: ids}
}

func (o *exactOracle) SpaceWords() int {
	w := 0
	for _, s := range o.sets {
		w += len(s)
	}
	return w
}

func TestEstimateMaxCoverWithExactOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := workload.PlantedCover(4000, 300, 10, 0.7, 3, rng)
	p := Practical()
	alpha := 4.0
	est, err := NewEstimator(in.System.M(), in.System.N, in.K, alpha, p, newExactOracle, rng)
	if err != nil {
		t.Fatal(err)
	}
	it := stream.Linearize(in.System, stream.Shuffled, rng)
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		est.Process(e)
	}
	res := est.Result()
	if !res.Feasible {
		t.Fatal("infeasible with an exact oracle")
	}
	opt := float64(in.PlantedCoverage)
	// Reduced-universe coverage of OPT at the winning guess z ≤ OPT is at
	// least z/4 (Lemma 3.5) and the exact oracle is lossless beyond that.
	if res.Value > opt {
		t.Errorf("exact-oracle estimate %v exceeds OPT %v", res.Value, opt)
	}
	if res.Value < opt/(8*p.ZBase) {
		t.Errorf("exact-oracle estimate %v below OPT/(8·base) = %v", res.Value, opt/(8*p.ZBase))
	}
}

// --- End-to-end: Theorem 3.1 behaviour on the three oracle case families ---

func TestEstimatorOnPlantedFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end estimator is seconds-long")
	}
	alpha := 4.0
	cases := []struct {
		name string
		in   *workload.Instance
	}{
		{"planted", workload.PlantedCover(10000, 1000, 20, 0.8, 5, rand.New(rand.NewSource(3)))},
		{"largesets", workload.PlantedLargeSets(10000, 1000, 20, 2, 0.8, rand.New(rand.NewSource(4)))},
		{"smallsets", workload.PlantedSmallSets(10000, 1000, 100, 0.8, rand.New(rand.NewSource(5)))},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, _ := runEstimator(t, c.in, alpha, Practical(), 6)
			if !res.Feasible {
				t.Fatal("estimator infeasible")
			}
			opt := float64(c.in.PlantedCoverage)
			if res.Value > 1.4*opt {
				t.Errorf("estimate %v exceeds 1.4·OPT = %v (no-overestimate)", res.Value, 1.4*opt)
			}
			if res.Value < opt/(1.5*alpha) {
				t.Errorf("estimate %v below OPT/(1.5α) = %v", res.Value, opt/(1.5*alpha))
			}
		})
	}
}

func TestEstimatorNeverGrosslyOverestimates(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end estimator is seconds-long")
	}
	// Instances with small optima: the estimate must stay ≤ 1.4·OPTupper.
	rng := rand.New(rand.NewSource(7))
	cases := []*workload.Instance{
		workload.PlantedCover(20000, 500, 5, 0.02, 1, rng), // OPT = 400
		workload.Uniform(20000, 500, 10, 10, rng),
	}
	for _, in := range cases {
		res, _ := runEstimator(t, in, 4, Practical(), 8)
		up := optUpper(in)
		if res.Feasible && res.Value > 1.4*up {
			t.Errorf("%s: estimate %v > 1.4·OPTupper %v", in.Name, res.Value, up)
		}
	}
}

func TestEstimatorReportingCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end estimator is seconds-long")
	}
	// Theorem 3.2 behaviour: the reported sets' true coverage must be an
	// Ω(1/α) fraction of OPT and at most k sets may be reported.
	alpha := 4.0
	for seed, in := range []*workload.Instance{
		workload.PlantedCover(10000, 1000, 20, 0.8, 5, rand.New(rand.NewSource(9))),
		workload.PlantedLargeSets(10000, 1000, 20, 2, 0.8, rand.New(rand.NewSource(10))),
		workload.PlantedSmallSets(10000, 1000, 100, 0.8, rand.New(rand.NewSource(11))),
	} {
		res, _ := runEstimator(t, in, alpha, Practical(), int64(12+seed))
		if !res.Feasible {
			t.Fatalf("%s: infeasible", in.Name)
		}
		if res.SetIDs == nil {
			t.Fatalf("%s: no reported sets", in.Name)
		}
		if len(res.SetIDs) > in.K {
			t.Fatalf("%s: %d sets reported > k=%d", in.Name, len(res.SetIDs), in.K)
		}
		cov := coverageOf(in.System, res.SetIDs)
		if float64(cov) < float64(in.PlantedCoverage)/(3*alpha) {
			t.Errorf("%s: reported cover %d below OPT/(3α) = %v",
				in.Name, cov, float64(in.PlantedCoverage)/(3*alpha))
		}
	}
}

func TestEstimatorTrivialBranch(t *testing.T) {
	// kα ≥ m: Figure 1 answers n/α without reading the stream.
	rng := rand.New(rand.NewSource(13))
	est, err := NewEstimator(100, 5000, 50, 4, Practical(), NewOracleFactory(), rng)
	if err != nil {
		t.Fatal(err)
	}
	est.Process(stream.Edge{Set: 0, Elem: 0}) // must be a no-op
	res := est.Result()
	if !res.Feasible || res.Value != 5000.0/4 {
		t.Errorf("trivial branch returned %+v, want n/α = 1250", res)
	}
	if est.Guesses() != 0 {
		t.Errorf("trivial estimator built %d guesses", est.Guesses())
	}
}

func TestEstimatorGuessLadder(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p := Practical()
	est, err := NewEstimator(5000, 4096, 4, 8, p, newExactOracle, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Ladder 4, 16, 64, ..., 4096 with ZBase=4: 6 guesses, last = n.
	if est.Guesses() != 6 {
		t.Errorf("Guesses() = %d, want 6 for n=4096 base=4", est.Guesses())
	}
}

func TestEstimatorRejectsBadDims(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	if _, err := NewEstimator(0, 10, 1, 2, Practical(), NewOracleFactory(), rng); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewEstimator(10, 10, 1, 0.5, Practical(), NewOracleFactory(), rng); err == nil {
		t.Error("alpha<1 accepted")
	}
}

func TestEstimatorSpaceShrinksWithAlpha(t *testing.T) {
	// Theorem 3.1's Õ(m/α²): at fixed m, construction-time space must
	// drop substantially as α grows.
	rng := rand.New(rand.NewSource(16))
	p := Practical()
	build := func(alpha float64) int {
		est, err := NewEstimator(4000, 4000, 64, alpha, p, NewOracleFactory(), rng)
		if err != nil {
			t.Fatal(err)
		}
		return est.SpaceWords()
	}
	s4, s16 := build(4), build(16)
	if float64(s16) > 0.5*float64(s4) {
		t.Errorf("space did not shrink with alpha: α=4 %d words, α=16 %d words", s4, s16)
	}
}

func TestOracleDispatchAcrossFamilies(t *testing.T) {
	// Experiment E15: each planted family must be caught by its designed
	// subroutine when the oracle runs standalone on the unreduced stream.
	rng := rand.New(rand.NewSource(17))
	type probe struct {
		name   string
		in     *workload.Instance
		expect string
	}
	probes := []probe{
		{"commonheavy", workload.CommonHeavy(5000, 1000, 10, 200, 0.4, 2, rng), "largecommon"},
		{"largesets", workload.PlantedLargeSets(8000, 1000, 20, 2, 0.8, rng), "largeset"},
		{"smallsets", workload.PlantedSmallSets(8000, 2000, 200, 0.8, rng), "smallset"},
	}
	for _, pr := range probes {
		pr := pr
		t.Run(pr.name, func(t *testing.T) {
			d := mustDerive(t, pr.in, 4)
			o := NewOracle(d, rng)
			feed(t, pr.in, 18, o.Process)
			res := o.Result()
			if !res.Feasible {
				t.Fatal("oracle infeasible on its designed case")
			}
			won := ""
			if v, _, ok := o.lc.Estimate(); ok && v == res.Value {
				won = "largecommon"
			} else if lsr := o.ls.Estimate(); lsr.Feasible && lsr.Value == res.Value {
				won = "largeset"
			} else if ssr := o.ss.Estimate(); ssr.Feasible && ssr.Value == res.Value {
				won = "smallset"
			}
			t.Logf("winner: %s (value %.1f)", won, res.Value)
			// The designed subroutine must at least have accepted, even if
			// another one legally won the max.
			switch pr.expect {
			case "largecommon":
				if _, _, ok := o.lc.Estimate(); !ok {
					t.Error("LargeCommon did not accept its designed case")
				}
			case "largeset":
				if !o.ls.Estimate().Feasible {
					t.Error("LargeSet did not accept its designed case")
				}
			case "smallset":
				if !o.ss.Estimate().Feasible {
					t.Error("SmallSet did not accept its designed case")
				}
			}
		})
	}
}
