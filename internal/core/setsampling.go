package core

import (
	"math/rand"

	"streamcover/internal/hash"
	"streamcover/internal/sketch"
)

// newHash draws a hash function at the independence degree the params
// prescribe (Θ(log(mn))-wise by default, per Section A.1).
func (d Derived) newHash(rng *rand.Rand) *hash.Poly {
	if deg := d.independence(); deg > 0 {
		return hash.NewPoly(deg, rng)
	}
	return hash.NewLogWise(d.M, d.N, rng)
}

// newL0 draws a distinct-count sketch for the configured backend: the
// bottom-k L0 by default (exact below capacity — valuable for the small
// universes the guess ladder produces), or HyperLogLog when
// Params.UseHLL is set (smaller at equal error on large universes;
// experiment E20 compares them).
func (d Derived) newL0(rng *rand.Rand) sketch.DistinctCounter {
	if d.P.UseHLL {
		return sketch.NewHLL(10, rng)
	}
	if deg := d.independence(); deg > 0 {
		return sketch.NewL0Deg(d.P.L0Eps, deg, rng)
	}
	return sketch.NewL0(d.P.L0Eps, d.M, d.N, rng)
}

// SetSampler realizes the set-sampling method of Lemma 2.3 with the
// limited-independence implementation of Section A.1: each set survives
// with probability min(1, boost·λ/m), decided by a single retained hash
// function, so the sampled collection F^rnd is a deterministic function of
// Θ(log(mn)) random bits and can be re-enumerated after the pass. With
// high probability F^rnd covers every λ-common element (Lemma A.6) and has
// size Õ(λ) (Lemma A.5).
type SetSampler struct {
	h    *hash.Poly
	rate float64
}

// NewSetSampler builds a sampler at rate min(1, boost·λ/m) for the
// instance dimensions in d.
func NewSetSampler(d Derived, lambda float64, rng *rand.Rand) *SetSampler {
	rate := d.P.SetSampleBoost * lambda / float64(d.M)
	if rate > 1 {
		rate = 1
	}
	if rate < 0 {
		rate = 0
	}
	return &SetSampler{h: d.newHash(rng), rate: rate}
}

// Sampled reports whether set id is in F^rnd.
func (s *SetSampler) Sampled(set uint32) bool {
	return s.h.Bernoulli(uint64(set), s.rate)
}

// Rate reports the sampling rate.
func (s *SetSampler) Rate() float64 { return s.rate }

// Enumerate lists every sampled set id in [0, m) — the post-pass recovery
// that limited-independence sampling makes possible.
func (s *SetSampler) Enumerate(m int) []uint32 {
	var out []uint32
	for i := 0; i < m; i++ {
		if s.Sampled(uint32(i)) {
			out = append(out, uint32(i))
		}
	}
	return out
}

// SpaceWords counts the retained hash function.
func (s *SetSampler) SpaceWords() int { return s.h.SpaceWords() + 1 }
