package core

import (
	"sync"
	"sync/atomic"
)

// The persistent parallel batch engine.
//
// The estimator's (guess, repetition) oracle grid is embarrassingly
// parallel: every unit owns all of its mutable state (its reduction hash
// is read-only during processing, its oracle is private), so a chunk can
// be fanned across workers with no locking as long as each unit is
// processed by exactly one worker per chunk. The engine keeps a fixed set
// of helper goroutines alive for the estimator's lifetime — spawning
// goroutines per ProcessBatch call (the old ProcessAllParallel) costs a
// scheduler round-trip per batch and loses the helpers' warmed-up
// BatchScratch buffers.
//
// Work distribution is work-stealing over an atomic unit-index cursor:
// units differ wildly in cost (a guess at the bottom of the ladder
// collapses the element column to a handful of pseudo-elements; the top
// guess sketches the full chunk), so static unit partitions leave workers
// idle. Every participant — the helpers AND the goroutine that called
// ProcessBatch — claims the next unclaimed unit until the cursor runs off
// the end.
//
// Bit-identity: a unit's edges are processed in arrival order by a single
// goroutine per chunk, chunks are separated by a full barrier (run
// returns only after every unit of the chunk settles), and units share no
// mutable state — so every oracle observes exactly the update sequence
// the sequential path would produce, and the resulting estimator state is
// bit-for-bit identical for every worker count. The chunk's Prepass is
// computed once by the caller and shared read-only: the channel send
// publishing the run happens-after indexing, and the caller's
// done.Wait() happens-after every helper's writes.
type engine struct {
	chans []chan *engineRun // one per helper, so a run reaches every helper
	wg    sync.WaitGroup
}

// engineRun is one chunk's fan-out: the shared read-only prepass (which
// carries everything a unit reads, including the chunk's set-ID column)
// plus the work-stealing cursor over the estimator's unit list.
type engineRun struct {
	est   *Estimator
	count int // edges in the chunk
	pre   *Prepass
	next  atomic.Int32   // next unclaimed unit index
	done  sync.WaitGroup // one count per unit
}

// newEngine starts `helpers` persistent worker goroutines (the calling
// goroutine is the +1-th worker of every run).
func newEngine(helpers int) *engine {
	e := &engine{chans: make([]chan *engineRun, helpers)}
	for i := range e.chans {
		ch := make(chan *engineRun, 1)
		e.chans[i] = ch
		e.wg.Add(1)
		go e.helper(ch)
	}
	return e
}

// helper is one persistent worker: it owns a private BatchScratch for its
// units' mutable working memory and borrows each run's shared prepass.
func (e *engine) helper(ch chan *engineRun) {
	defer e.wg.Done()
	sc := &BatchScratch{}
	for r := range ch {
		sc.pre = r.pre
		e.work(r, sc)
		sc.pre = nil // don't retain the caller's prepass between runs
	}
}

// work claims and processes units until the run's cursor is exhausted.
func (e *engine) work(r *engineRun, sc *BatchScratch) {
	units := r.est.unitList
	for {
		i := int(r.next.Add(1)) - 1
		if i >= len(units) {
			return
		}
		u := units[i]
		r.est.processChunkUnit(r.count, sc, u.g, u.rep)
		r.done.Done()
	}
}

// run fans one indexed chunk of count edges across the helpers plus the
// calling goroutine and returns once every unit has been processed.
// callerSc must already hold the chunk's prepass (sc.Index or
// sc.IndexColumns ran).
func (e *engine) run(est *Estimator, count int, callerSc *BatchScratch) {
	r := &engineRun{est: est, count: count, pre: callerSc.pre}
	r.done.Add(len(est.unitList))
	for _, ch := range e.chans {
		ch <- r
	}
	e.work(r, callerSc)
	r.done.Wait()
}

// close stops the helpers and waits for them to exit. Any in-flight run
// has already completed (run returns only after the barrier), so this
// never abandons work.
func (e *engine) close() {
	for _, ch := range e.chans {
		close(ch)
	}
	e.wg.Wait()
}
