package core

import (
	"math"
	"math/rand"
	"sort"

	"streamcover/internal/hash"
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

// minAcceptCovered is the minimum number of held-out sampled elements a
// layer's cover must hit before its scaled estimate is trusted; it guards
// the unbiased c/ρ rescaling against small-sample variance.
const minAcceptCovered = 8

// SmallSet is the element-sampling subroutine of Section 4.3 (Figure 5).
// It handles oracle case III: an optimal solution dominated by OPTsmall,
// many sets each contributing less than z/(sα). Per Lemma 4.16 /
// Corollary 4.19, subsampling sets at rate Θ(1/(sα)) preserves a
// (k/α)-cover with a Θ̃(1/α) fraction of OPT's coverage; element sampling
// (Lemma 2.5) at rate matched to a guessed coverage fraction γ_g then
// shrinks the stored sub-instance (L, M) to Õ(m/α²) words (Lemmas 4.20
// and 4.21). After the pass, an offline greedy k'-cover of the stored
// instance is rescaled to universe scale.
//
// Two implementation notes relative to the paper:
//
//   - The set sample M is drawn once and shared by all guesses (every
//     guess uses the same distribution), and the element samples are
//     nested — one retained hash compared against per-guess thresholds —
//     so an edge costs at most three hash evaluations.
//   - Each layer stores TWO independent element samples: greedy selects
//     the cover on the pick-sample, and the estimate is the cover's
//     coverage of the held-out estimation-sample, rescaled. The paper
//     suppresses the selection bias of estimate-on-the-training-sample
//     with polylog-factor sample sizes; at practical sizes the held-out
//     split is what keeps the oracle's no-overestimate property
//     (Lemma 4.23).
type SmallSet struct {
	d        Derived
	kPrime   int
	mRate    float64
	setSamp  *hash.Poly
	pickSamp *hash.Poly
	estSamp  *hash.Poly
	layers   []ssLayer
	live     int // layers not yet dead; 0 short-circuits Process entirely
}

type ssLayer struct {
	frac   float64 // γ_g: guessed coverage fraction of the best k'-cover of M
	rate   float64 // element-sampling rate of each of the two samples
	thresh uint64
	pick   map[uint32][]uint32 // set -> pick-sampled elements (greedy input)
	est    map[uint32][]uint32 // set -> held-out sampled elements (estimation)
	count  int
	cap    int
	dead   bool // storage cap exceeded; the paper's "terminate" branch
}

// NewSmallSet builds the guess ladder γ_g ∈ {1, 1/2, 1/4, …}
// (SSGuesses layers). k' = Θ(k/α) is the reduced budget of
// Max (36k/(sα))-Cover; mRate = Θ(1/α) is the set-subsampling rate.
func NewSmallSet(d Derived, rng *rand.Rand) *SmallSet {
	kPrime := int(math.Round(d.P.KPrimeConst * float64(d.K) / d.Alpha))
	if kPrime < 1 {
		kPrime = 1
	}
	if kPrime > d.K {
		kPrime = d.K
	}
	mRate := d.P.MRateConst / d.Alpha
	if mRate > 1 {
		mRate = 1
	}
	ss := &SmallSet{
		d:        d,
		kPrime:   kPrime,
		mRate:    mRate,
		setSamp:  d.newHash(rng),
		pickSamp: d.newHash(rng),
		estSamp:  d.newHash(rng),
	}
	capPairs := int(d.P.StoreCapFactor * (float64(d.M)/(d.Alpha*d.Alpha) + float64(kPrime) + 8))
	frac := 1.0
	for g := 0; g < d.P.SSGuesses; g++ {
		targetL := d.P.ElemPerSet * float64(kPrime) / frac
		rate := targetL / float64(d.N)
		if rate > 1 {
			rate = 1
		}
		ss.layers = append(ss.layers, ssLayer{
			frac:   frac,
			rate:   rate,
			thresh: rateThreshold(rate),
			pick:   make(map[uint32][]uint32),
			est:    make(map[uint32][]uint32),
			cap:    capPairs,
		})
		frac /= 2
	}
	ss.live = len(ss.layers)
	return ss
}

// KPrime reports the reduced cover budget k'.
func (ss *SmallSet) KPrime() int { return ss.kPrime }

// MRate reports the set-subsampling rate.
func (ss *SmallSet) MRate() float64 { return ss.mRate }

// Process stores the edge in every live layer whose element samples keep
// it, provided the set is in M. A layer that exceeds its Õ(m/α²) storage
// cap is abandoned, as Figure 5's terminate branch prescribes. Once every
// layer is dead no edge can change any state, so processing returns
// before evaluating any of the three hashes.
func (ss *SmallSet) Process(e stream.Edge) {
	if ss.live == 0 {
		return
	}
	if !ss.setSamp.Bernoulli(uint64(e.Set), ss.mRate) {
		return
	}
	ss.store(e, ss.pickSamp.Eval(uint64(e.Elem)), ss.estSamp.Eval(uint64(e.Elem)))
}

// store applies one sampled edge's pick/est hash values to every live
// layer — the per-edge logic shared by the sequential and batch paths.
func (ss *SmallSet) store(e stream.Edge, pv, ev uint64) {
	for i := range ss.layers {
		l := &ss.layers[i]
		if l.dead {
			continue
		}
		if pv < l.thresh {
			l.pick[e.Set] = append(l.pick[e.Set], e.Elem)
			l.count++
		}
		if ev < l.thresh {
			l.est[e.Set] = append(l.est[e.Set], e.Elem)
			l.count++
		}
		if l.count > 2*l.cap {
			ss.kill(l)
		}
	}
}

// kill abandons a layer (Figure 5's terminate branch) and maintains the
// live-layer count backing the all-dead short-circuit. The pair count is
// zeroed along with the stores: a dead layer retains nothing, so charging
// its terminal count in SpaceWords would count freed memory — and would
// make the count depend on whether the layer died in-stream or during a
// merge, breaking the snapshot codec's rule that behaviorally equal
// states encode equally.
func (ss *SmallSet) kill(l *ssLayer) {
	l.dead = true
	l.pick, l.est = nil, nil
	l.count = 0
	ss.live--
}

// SmallSetResult is the subroutine's estimate with its backing cover.
type SmallSetResult struct {
	Value    float64  // universe-scale coverage estimate of the k'-cover
	SetIDs   []uint32 // the k' (≤ k) sets realizing it
	Feasible bool
}

// Estimate greedily covers each live layer's pick-sample with k' sets,
// measures the chosen cover on the held-out sample, and rescales by
// 1/rate. A layer accepts when the held-out coverage reaches
// AcceptFrac·γ_g·E[|L|] (the paper's sol_γg = Ω̃(k/α) test); the best
// accepted layer wins. The held-out estimate is unbiased for the chosen
// ≤ k-set cover's true coverage, so w.h.p. the output never exceeds OPT
// (Lemma 4.23).
func (ss *SmallSet) Estimate() SmallSetResult {
	best := SmallSetResult{}
	for i := range ss.layers {
		l := &ss.layers[i]
		if l.dead || len(l.pick) == 0 {
			continue
		}
		ids, _ := greedyOnPairs(l.pick, ss.kPrime)
		covered := distinctUnion(l.est, ids)
		expL := l.rate * float64(ss.d.N)
		if float64(covered) < ss.d.P.AcceptFrac*l.frac*expL || covered < minAcceptCovered {
			continue
		}
		val := float64(covered) / l.rate
		if val > float64(ss.d.N) {
			val = float64(ss.d.N)
		}
		if val > best.Value {
			best = SmallSetResult{Value: val, SetIDs: ids, Feasible: true}
		}
	}
	return best
}

// EstimateNaive is the ablation variant of Estimate that rescales the
// PICK-sample coverage of the greedily chosen cover — i.e. it evaluates
// the cover on the same sample that selected it. Because greedy picks
// whatever covers the sample best, this estimate is biased upward
// (selection bias / sample overfitting) and violates Definition 3.4's
// no-overestimate property on noisy instances at practical sample sizes.
// Experiment E18 quantifies the inflation; production paths never call
// this.
func (ss *SmallSet) EstimateNaive() SmallSetResult {
	best := SmallSetResult{}
	for i := range ss.layers {
		l := &ss.layers[i]
		if l.dead || len(l.pick) == 0 {
			continue
		}
		ids, covered := greedyOnPairs(l.pick, ss.kPrime)
		expL := l.rate * float64(ss.d.N)
		if float64(covered) < ss.d.P.AcceptFrac*l.frac*expL || covered < minAcceptCovered {
			continue
		}
		val := float64(covered) / l.rate
		if val > float64(ss.d.N) {
			val = float64(ss.d.N)
		}
		if val > best.Value {
			best = SmallSetResult{Value: val, SetIDs: ids, Feasible: true}
		}
	}
	return best
}

// distinctUnion counts the distinct elements that the chosen sets cover in
// the held-out sample.
func distinctUnion(est map[uint32][]uint32, ids []uint32) int {
	seen := make(map[uint32]struct{})
	for _, id := range ids {
		for _, e := range est[id] {
			seen[e] = struct{}{}
		}
	}
	return len(seen)
}

// greedyOnPairs materializes a stored (set -> sampled elements) map as a
// compact set system and runs the offline greedy, returning global set IDs
// and the number of covered sampled elements.
func greedyOnPairs(pairs map[uint32][]uint32, k int) ([]uint32, int) {
	setIDs := make([]uint32, 0, len(pairs))
	for id := range pairs {
		setIDs = append(setIDs, id)
	}
	sort.Slice(setIDs, func(a, b int) bool { return setIDs[a] < setIDs[b] })
	elemIdx := make(map[uint32]uint32)
	sets := make([][]uint32, len(setIDs))
	for i, id := range setIDs {
		for _, e := range pairs[id] {
			idx, ok := elemIdx[e]
			if !ok {
				idx = uint32(len(elemIdx))
				elemIdx[e] = idx
			}
			sets[i] = append(sets[i], idx)
		}
	}
	sub := setsystem.MustNew(len(elemIdx), sets)
	local, covered := sub.LazyGreedy(k)
	out := make([]uint32, len(local))
	for i, li := range local {
		out[i] = setIDs[li]
	}
	return out, covered
}

// SpaceWords counts stored pairs, samplers and bookkeeping.
func (ss *SmallSet) SpaceWords() int {
	w := ss.setSamp.SpaceWords() + ss.pickSamp.SpaceWords() + ss.estSamp.SpaceWords() + 3
	for i := range ss.layers {
		w += ss.layers[i].count + 4 // one word per stored (set, elem) pair
	}
	return w
}
