package expt

import (
	"math/rand"

	"streamcover/internal/baseline"
	"streamcover/internal/core"
	"streamcover/internal/disjointness"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// SpaceComposition is experiment E16: where the Õ(m/α²) words actually
// live, per subroutine, across α. The LargeSet heavy-hitter batteries
// (the true m/α² term) should dominate at small α and fade as α grows,
// while the α-independent floors (LargeCommon's L0 ladder, the reduction
// hashes) remain.
func SpaceComposition(seed int64) (*Table, error) {
	t := &Table{
		ID:     "E16",
		Title:  "Space composition across alpha (ablation)",
		Note:   "m=2000, n=10000, k=32; words per component after one pass",
		Header: []string{"alpha", "largecommon", "largeset", "smallset", "reduction", "total"},
	}
	rng := rand.New(rand.NewSource(seed))
	in := workload.PlantedCover(10000, 2000, 32, 0.8, 5, rng)
	for _, alpha := range []float64{2, 4, 8, 16} {
		est, err := core.NewEstimator(in.System.M(), in.System.N, in.K, alpha,
			core.Practical(), core.NewOracleFactory(), rand.New(rand.NewSource(seed+int64(alpha))))
		if err != nil {
			return nil, err
		}
		it := stream.Linearize(in.System, stream.Shuffled, rng)
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			est.Process(e)
		}
		br := est.SpaceBreakdown()
		t.AddRow(alpha, br["largecommon"], br["largeset"], br["smallset"],
			br["reduction"], est.SpaceWords())
	}
	return t, nil
}

// ArrivalOrderInvariance is experiment E17: the edge-arrival algorithm's
// estimate must be essentially unaffected by arrival order — including the
// element-major order that breaks set-arrival algorithms (footnote 2).
// The set-arrival baseline's collapse is reproduced alongside for
// contrast.
func ArrivalOrderInvariance(seed int64) (*Table, error) {
	t := &Table{
		ID:     "E17",
		Title:  "Arrival-order invariance (ablation; paper footnote 2)",
		Note:   "same instance, four arrival orders; ours vs set-arrival threshold greedy",
		Header: []string{"order", "ours estimate", "ours ratio", "threshold-greedy coverage", "tg ratio"},
	}
	rng := rand.New(rand.NewSource(seed))
	in := workload.PlantedCover(10000, 1000, 20, 0.8, 5, rng)
	opt := in.PlantedCoverage
	orders := []struct {
		name string
		ord  stream.Order
	}{
		{"set-arrival", stream.SetArrival},
		{"shuffled", stream.Shuffled},
		{"element-major", stream.ElementMajor},
		{"round-robin", stream.RoundRobin},
	}
	for _, o := range orders {
		est, err := core.NewEstimator(in.System.M(), in.System.N, in.K, 4,
			core.Practical(), core.NewOracleFactory(), rand.New(rand.NewSource(seed)))
		if err != nil {
			return nil, err
		}
		tg := baseline.NewThresholdGreedy(in.System.N, in.K, 0.2)
		it := stream.Linearize(in.System, o.ord, rng)
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			est.Process(e)
			tg.Process(e)
		}
		r := est.Result()
		_, tgCov := tg.Result()
		t.AddRow(o.name, r.Value, ratio(opt, r.Value), tgCov, ratio(opt, float64(tgCov)))
	}
	return t, nil
}

// HoldoutAblation is experiment E18: SmallSet's held-out estimation vs
// the naive estimate-on-the-picking-sample variant. The naive variant
// inflates the estimate above OPT on noisy uniform instances (selection
// bias); the held-out split is what preserves Definition 3.4's
// no-overestimate property at practical sample sizes (DESIGN.md §3).
func HoldoutAblation(seed int64) (*Table, error) {
	t := &Table{
		ID:     "E18",
		Title:  "SmallSet held-out estimation vs naive (ablation)",
		Note:   "uniform instance: max k-cover is noisy; naive rescaling overfits the sample",
		Header: []string{"variant", "OPT upper bound", "estimate", "estimate/OPTub"},
	}
	rng := rand.New(rand.NewSource(seed))
	in := workload.Uniform(20000, 2000, 40, 30, rng)
	_, g := in.System.Greedy(in.K)
	optUB := float64(g) / (1 - 1/2.718281828)
	d, err := core.Derive(in.System.M(), in.System.N, in.K, 4, core.Practical())
	if err != nil {
		return nil, err
	}
	ss := core.NewSmallSet(d, rand.New(rand.NewSource(seed+1)))
	it := stream.Linearize(in.System, stream.Shuffled, rng)
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		ss.Process(e)
	}
	held := ss.Estimate()
	naive := ss.EstimateNaive()
	t.AddRow("held-out (ours)", optUB, held.Value, held.Value/optUB)
	t.AddRow("naive (pick==estimate)", optUB, naive.Value, naive.Value/optUB)
	return t, nil
}

// DistinctBackendAblation is experiment E20: the estimator end-to-end
// with the bottom-k L0 backend (default; exact below capacity) vs the
// HyperLogLog backend (Theorem 2.12 is implementation-agnostic — the
// paper cites five different L0 algorithms). Both must land in the
// guarantee window; space shifts where the L0 ladder matters.
func DistinctBackendAblation(seed int64) (*Table, error) {
	t := &Table{
		ID:     "E20",
		Title:  "Distinct-count backend: bottom-k L0 vs HyperLogLog (ablation)",
		Note:   "planted m=2000 n=10000 k=32 alpha=4; Theorem 2.12 allows either",
		Header: []string{"backend", "estimate", "ratio", "largecommon words", "total words"},
	}
	rng := rand.New(rand.NewSource(seed))
	in := workload.PlantedCover(10000, 2000, 32, 0.8, 5, rng)
	for _, hll := range []bool{false, true} {
		p := core.Practical()
		p.UseHLL = hll
		est, err := core.NewEstimator(in.System.M(), in.System.N, in.K, 4, p,
			core.NewOracleFactory(), rand.New(rand.NewSource(seed+7)))
		if err != nil {
			return nil, err
		}
		it := stream.Linearize(in.System, stream.Shuffled, rng)
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			est.Process(e)
		}
		r := est.Result()
		name := "bottom-k L0 (default)"
		if hll {
			name = "HyperLogLog"
		}
		t.AddRow(name, r.Value, ratio(in.PlantedCoverage, r.Value),
			est.SpaceBreakdown()["largecommon"], est.SpaceWords())
	}
	return t, nil
}

// NoiseGateAblation is experiment E19: the heavy-hitter noise gate on vs
// off, measured as the estimator's Yes-instance inflation on the
// set-disjointness hard inputs. Without the extreme-value gate, phantom
// heavy hitters make the Yes estimate approach the No estimate and the
// α-gap closes.
func NoiseGateAblation(seed int64) (*Table, error) {
	t := &Table{
		ID:     "E19",
		Title:  "Heavy-hitter noise gate (ablation; DSJ Yes-instance inflation)",
		Note:   "r=16, m=8192; oracle LargeSet value on Yes (OPT=1) and No (OPT=16) instances",
		Header: []string{"instance", "OPT", "LargeSet estimate", "inflation vs OPT"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, no := range []bool{false, true} {
		ins, err := disjointness.Generate(16, 8192, no, 0.9, rng)
		if err != nil {
			return nil, err
		}
		d, err := core.Derive(8192, 16, 1, 8, core.Practical())
		if err != nil {
			return nil, err
		}
		ls := core.NewLargeSet(d, rng)
		for _, e := range ins.ToCoverStream() {
			ls.Process(e)
		}
		res := ls.Estimate()
		val := res.Value
		if !res.Feasible {
			val = 0
		}
		name := "Yes (disjoint)"
		if no {
			name = "No (unique common)"
		}
		opt := ins.CoverOPT()
		t.AddRow(name, opt, val, val/float64(opt))
	}
	return t, nil
}
