package expt

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func renderOK(t *testing.T, tab *Table, wantRows int) string {
	t.Helper()
	if len(tab.Rows) < wantRows {
		t.Fatalf("%s: %d rows, want >= %d", tab.ID, len(tab.Rows), wantRows)
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("%s row %d has %d cells, header has %d", tab.ID, i, len(row), len(tab.Header))
		}
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, tab.ID) || !strings.Contains(out, tab.Header[0]) {
		t.Fatalf("%s render missing id/header:\n%s", tab.ID, out)
	}
	return out
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Note: "n", Header: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("wide-cell", 0.125)
	out := renderOK(t, tab, 2)
	if !strings.Contains(out, "wide-cell") || !strings.Contains(out, "2.50") || !strings.Contains(out, "0.1250") {
		t.Errorf("render formatting wrong:\n%s", out)
	}
}

func TestFitSlope(t *testing.T) {
	if s := fitSlope([]float64{0, 1, 2}, []float64{5, 3, 1}); s != -2 {
		t.Errorf("fitSlope = %v, want -2", s)
	}
	if s := fitSlope([]float64{1}, []float64{1}); s != 0 {
		t.Errorf("degenerate fitSlope = %v, want 0", s)
	}
	if s := fitSlope([]float64{2, 2}, []float64{1, 5}); s != 0 {
		t.Errorf("vertical fitSlope = %v, want 0", s)
	}
}

func TestRatioGuards(t *testing.T) {
	if r := ratio(10, 0); r != 0 {
		t.Errorf("ratio with zero value = %v", r)
	}
	if r := ratio(10, 5); r != 2 {
		t.Errorf("ratio = %v, want 2", r)
	}
}

func smallTradeoff() TradeoffConfig {
	return TradeoffConfig{N: 4000, M: 600, K: 20, Alphas: []float64{2, 4}, Seed: 5}
}

func TestTable1Small(t *testing.T) {
	tab, err := Table1(Table1Config{N: 4000, M: 600, K: 20, Alphas: []float64{4}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := renderOK(t, tab, 5)
	if !strings.Contains(out, "THIS PAPER") || !strings.Contains(out, "greedy (offline)") {
		t.Errorf("Table1 missing expected rows:\n%s", out)
	}
	// The offline greedy row must have ratio 1 on the planted instance.
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "greedy (offline)") && row[4] != "1" {
			t.Errorf("offline greedy ratio %s, want 1", row[4])
		}
	}
}

func TestTradeoffSweepSmall(t *testing.T) {
	tab, err := TradeoffSweep(smallTradeoff())
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab, 2)
	// Space must decrease as alpha grows (column 3).
	s2, _ := strconv.Atoi(tab.Rows[0][3])
	s4, _ := strconv.Atoi(tab.Rows[1][3])
	if s4 >= s2 {
		t.Errorf("space did not shrink with alpha: %d -> %d", s2, s4)
	}
	if !strings.Contains(tab.Note, "slope") {
		t.Error("trade-off note missing fitted slope")
	}
}

func TestReportingSmall(t *testing.T) {
	cfg := smallTradeoff()
	cfg.Alphas = []float64{4}
	tab, err := Reporting(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab, 3)
}

func TestSpaceVsMSmall(t *testing.T) {
	tab, err := SpaceVsM(10, 4, []int{300, 600}, 5)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab, 2)
}

func TestLowerBoundSmall(t *testing.T) {
	tab, err := LowerBound(LowerBoundConfig{M: 2048, R: 8, Trials: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := renderOK(t, tab, 5)
	if !strings.Contains(out, "EstimateMaxCover on reduction") {
		t.Error("missing estimator-on-reduction row")
	}
}

func TestLemmaTables(t *testing.T) {
	renderOK(t, UniverseReduction(50, 5), 4)
	setTab, err := SetSampling(5)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, setTab, 3)
	renderOK(t, ElementSampling(5), 3)
	params, err := ParamsTable()
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, params, 4)
}

func TestSketchTables(t *testing.T) {
	renderOK(t, HeavyHittersAccuracy(5), 3)
	renderOK(t, ContributingAccuracy(5), 4)
	renderOK(t, L0Accuracy(5), 6)
}

func TestDispatchTable(t *testing.T) {
	tab, err := OracleDispatch(5)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab, 3)
}

func TestAllSpecsHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		if seen[s.ID] {
			t.Errorf("duplicate experiment id %s", s.ID)
		}
		seen[s.ID] = true
		if s.Run == nil || s.Name == "" {
			t.Errorf("spec %s incomplete", s.ID)
		}
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E9", "E10", "E11", "E12", "E13", "E14", "E15"} {
		if !seen[id] {
			t.Errorf("experiment %s missing from All()", id)
		}
	}
}

func TestSpaceCompositionTable(t *testing.T) {
	tab, err := SpaceComposition(5)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab, 4)
	// LargeSet (the m/alpha^2 term) must shrink as alpha grows.
	first, _ := strconv.Atoi(tab.Rows[0][2])
	last, _ := strconv.Atoi(tab.Rows[len(tab.Rows)-1][2])
	if last >= first {
		t.Errorf("largeset words did not shrink with alpha: %d -> %d", first, last)
	}
}

func TestArrivalOrderInvarianceTable(t *testing.T) {
	tab, err := ArrivalOrderInvariance(5)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab, 4)
	// Ours must be identical across orders (deterministic seed, orders
	// only permute a multiset the sketches are order-insensitive to up to
	// candidate-eviction timing; require equality as measured).
	base := tab.Rows[0][1]
	for _, row := range tab.Rows[1:] {
		if row[1] != base {
			t.Errorf("estimate varies with order: %s vs %s", base, row[1])
		}
	}
}

func TestHoldoutAblationTable(t *testing.T) {
	tab, err := HoldoutAblation(5)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab, 2)
	held, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	naive, _ := strconv.ParseFloat(tab.Rows[1][2], 64)
	if naive <= held {
		t.Errorf("naive estimate %v not above held-out %v — ablation lost its point", naive, held)
	}
}

func TestNoiseGateAblationTable(t *testing.T) {
	tab, err := NoiseGateAblation(5)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab, 2)
	yes, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	no, _ := strconv.ParseFloat(tab.Rows[1][2], 64)
	if yes >= no {
		t.Errorf("DSJ gap closed: yes=%v no=%v", yes, no)
	}
	if yes > 3 { // OPT(yes) = 1; small inflation tolerated
		t.Errorf("Yes-instance inflation %v too high", yes)
	}
}

func TestRenderCSVAndMarkdown(t *testing.T) {
	tab := &Table{ID: "X", Title: "title", Note: "note", Header: []string{"a", "b"}}
	tab.AddRow(1, "x,y") // comma must be quoted in CSV
	var csvBuf, mdBuf bytes.Buffer
	if err := tab.RenderCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	out := csvBuf.String()
	if !strings.Contains(out, "# X: title — note") || !strings.Contains(out, `"x,y"`) {
		t.Errorf("CSV output wrong:\n%s", out)
	}
	if err := tab.RenderMarkdown(&mdBuf); err != nil {
		t.Fatal(err)
	}
	md := mdBuf.String()
	if !strings.Contains(md, "### X: title") || !strings.Contains(md, "| a | b |") ||
		!strings.Contains(md, "|---|---|") {
		t.Errorf("markdown output wrong:\n%s", md)
	}
}

func TestRepetitionBoostingTable(t *testing.T) {
	if testing.Short() {
		t.Skip("boosting experiment runs many estimators")
	}
	tab, err := RepetitionBoosting(5)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab, 2)
	// Space must grow with repetitions.
	s1, _ := strconv.Atoi(tab.Rows[0][4])
	s3, _ := strconv.Atoi(tab.Rows[1][4])
	if s3 <= s1 {
		t.Errorf("space did not grow with repetitions: %d vs %d", s1, s3)
	}
}

func TestDistinctBackendTable(t *testing.T) {
	tab, err := DistinctBackendAblation(5)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab, 2)
	for _, row := range tab.Rows {
		r, _ := strconv.ParseFloat(row[2], 64)
		if r > 4*1.2 || r <= 0 {
			t.Errorf("backend %s ratio %v outside guarantee", row[0], r)
		}
	}
}
