package expt

import (
	"fmt"
	"io"
)

// Spec names one experiment and how to produce it.
type Spec struct {
	ID   string
	Name string
	Run  func(seed int64) (*Table, error)
}

// All lists every experiment in DESIGN.md §4 order. Seeds are offset per
// experiment so tables are independent yet reproducible.
func All() []Spec {
	return []Spec{
		{"E1", "table1", func(seed int64) (*Table, error) {
			cfg := DefaultTable1Config()
			cfg.Seed = seed
			return Table1(cfg)
		}},
		{"E2", "tradeoff", func(seed int64) (*Table, error) {
			cfg := DefaultTradeoffConfig()
			cfg.Seed = seed
			return TradeoffSweep(cfg)
		}},
		{"E2b", "space-vs-m", func(seed int64) (*Table, error) {
			return SpaceVsM(32, 8, []int{1000, 2000, 4000, 8000}, seed)
		}},
		{"E3", "reporting", func(seed int64) (*Table, error) {
			cfg := DefaultTradeoffConfig()
			cfg.Alphas = []float64{4, 8}
			cfg.Seed = seed
			return Reporting(cfg)
		}},
		{"E4", "lowerbound", func(seed int64) (*Table, error) {
			cfg := DefaultLowerBoundConfig()
			cfg.Seed = seed
			return LowerBound(cfg)
		}},
		{"E5", "universe-reduction", func(seed int64) (*Table, error) {
			return UniverseReduction(400, seed), nil
		}},
		{"E9", "set-sampling", func(seed int64) (*Table, error) {
			return SetSampling(seed)
		}},
		{"E10", "element-sampling", func(seed int64) (*Table, error) {
			return ElementSampling(seed), nil
		}},
		{"E11", "heavy-hitters", func(seed int64) (*Table, error) {
			return HeavyHittersAccuracy(seed), nil
		}},
		{"E12", "contributing", func(seed int64) (*Table, error) {
			return ContributingAccuracy(seed), nil
		}},
		{"E13", "l0", func(seed int64) (*Table, error) {
			return L0Accuracy(seed), nil
		}},
		{"E14", "params", func(seed int64) (*Table, error) {
			return ParamsTable()
		}},
		{"E15", "dispatch", func(seed int64) (*Table, error) {
			return OracleDispatch(seed)
		}},
		{"E16", "space-composition", func(seed int64) (*Table, error) {
			return SpaceComposition(seed)
		}},
		{"E17", "arrival-orders", func(seed int64) (*Table, error) {
			return ArrivalOrderInvariance(seed)
		}},
		{"E18", "holdout-ablation", func(seed int64) (*Table, error) {
			return HoldoutAblation(seed)
		}},
		{"E19", "noise-gate-ablation", func(seed int64) (*Table, error) {
			return NoiseGateAblation(seed)
		}},
		{"E20", "distinct-backend", func(seed int64) (*Table, error) {
			return DistinctBackendAblation(seed)
		}},
		{"E21", "boosting", func(seed int64) (*Table, error) {
			return RepetitionBoosting(seed)
		}},
		{"E22", "distributed", func(seed int64) (*Table, error) {
			return DistributedMerge(seed)
		}},
		{"E23", "wire-ingest", func(seed int64) (*Table, error) {
			return WireIngest(seed, wireLayout)
		}},
	}
}

// wireLayout is the -wire selector E23 runs under: "columnar", "row", or
// "both" (the default). kcoverbench sets it before running experiments.
var wireLayout = "both"

// SetWireLayout selects which wire encoding(s) the end-to-end experiments
// drive: "columnar", "row", or "both".
func SetWireLayout(sel string) error {
	if _, err := wireLayouts(sel); err != nil {
		return err
	}
	if sel == "" {
		sel = "both"
	}
	wireLayout = sel
	return nil
}

// RunAll executes every experiment and renders to w, stopping at the
// first error.
func RunAll(w io.Writer, seed int64) error {
	for _, s := range All() {
		t, err := s.Run(seed)
		if err != nil {
			return fmt.Errorf("expt %s (%s): %w", s.ID, s.Name, err)
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}
