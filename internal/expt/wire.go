package expt

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"streamcover"
	"streamcover/internal/client"
	"streamcover/internal/server"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// wireLayouts resolves the -wire selector to the layouts E23 runs.
func wireLayouts(sel string) ([]string, error) {
	switch sel {
	case "", "both":
		return []string{"columnar", "row"}, nil
	case "columnar", "row":
		return []string{sel}, nil
	}
	return nil, fmt.Errorf("unknown wire layout %q (columnar|row|both)", sel)
}

// WireIngest (E23) runs the default planted instance end-to-end through a
// loopback kcoverd — client batch encode, framed TCP, server decode,
// shard, estimate — once per selected wire layout, and reports throughput
// next to the answer. The estimate must be bit-identical across layouts
// and equal to the in-process reference: the wire encoding buys speed,
// never accuracy. Throughput here includes loopback TCP and ack latency,
// so it is a floor, not a pure codec benchmark (see BENCH_hotpath.json).
func WireIngest(seed int64, layout string) (*Table, error) {
	layouts, err := wireLayouts(layout)
	if err != nil {
		return nil, err
	}
	const (
		n, m, k = 20000, 2000, 40
		frac    = 0.8
		decoy   = 5
		alpha   = 4.0
	)
	rng := rand.New(rand.NewSource(seed))
	in := workload.PlantedCover(n, m, k, frac, decoy, rng)
	raw := stream.Linearize(in.System, stream.Shuffled, rng).Edges()
	edges := make([]streamcover.Edge, len(raw))
	for i, e := range raw {
		edges[i] = streamcover.Edge{Set: e.Set, Elem: e.Elem}
	}

	ref, err := streamcover.NewEstimator(in.System.M(), in.System.N, in.K, alpha, streamcover.WithSeed(seed))
	if err != nil {
		return nil, err
	}
	if err := ref.ProcessBatch(edges); err != nil {
		return nil, err
	}
	refRes := ref.Result()

	t := &Table{
		ID:     "E23",
		Title:  "wire-ingest: row vs columnar end-to-end",
		Note:   fmt.Sprintf("planted n=%d m=%d k=%d, %d edges over loopback TCP; estimates must match the in-process reference bit-for-bit", n, m, k, len(edges)),
		Header: []string{"wire", "edges/s", "coverage", "feasible", "matches-ref"},
	}
	for _, lay := range layouts {
		eps, res, err := wireIngestOnce(lay, in.System.M(), in.System.N, in.K, alpha, seed, edges)
		if err != nil {
			return nil, fmt.Errorf("wire %s: %w", lay, err)
		}
		match := res.Coverage == refRes.Coverage && res.Feasible == refRes.Feasible
		t.AddRow(lay, float64(int64(eps)), res.Coverage, res.Feasible, match)
		if !match {
			return nil, fmt.Errorf("wire %s: estimate (%v, %v) diverged from in-process reference (%v, %v)",
				lay, res.Coverage, res.Feasible, refRes.Coverage, refRes.Feasible)
		}
	}
	return t, nil
}

func wireIngestOnce(layout string, m, n, k int, alpha float64, seed int64, edges []streamcover.Edge) (float64, client.Result, error) {
	s := server.New(server.Config{})
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		return 0, client.Result{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	opts := []client.Option{client.WithBatchSize(8192)}
	if layout == "row" {
		opts = append(opts, client.WithRowWire())
	}
	c, err := client.Dial(s.TCPAddr().String(), opts...)
	if err != nil {
		return 0, client.Result{}, err
	}
	defer c.Close()
	sess, err := c.Create("e23", m, n, k, alpha, seed)
	if err != nil {
		return 0, client.Result{}, err
	}
	start := time.Now()
	if err := sess.Send(edges); err != nil {
		return 0, client.Result{}, err
	}
	if err := sess.Flush(); err != nil {
		return 0, client.Result{}, err
	}
	eps := float64(len(edges)) / time.Since(start).Seconds()
	res, err := sess.Query()
	return eps, res, err
}
