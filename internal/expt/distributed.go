package expt

import (
	"math/rand"

	"streamcover/internal/core"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// DistributedMerge is experiment E22: the estimator over a stream
// partitioned across w workers and merged, compared with one estimator
// over the whole stream. Agreement stays near 100% across shard counts —
// the mergeability the composable-sketch design buys.
func DistributedMerge(seed int64) (*Table, error) {
	t := &Table{
		ID:     "E22",
		Title:  "Distributed shard-and-merge (extension)",
		Note:   "planted m=1000 n=10000 k=20 alpha=4; round-robin edge sharding",
		Header: []string{"shards", "whole-stream estimate", "merged estimate", "agreement", "reported cover (merged)"},
	}
	rng := rand.New(rand.NewSource(seed))
	in := workload.PlantedCover(10000, 1000, 20, 0.8, 5, rng)
	edges := stream.Linearize(in.System, stream.Shuffled, rng).Edges()
	build := func() (*core.Estimator, error) {
		return core.NewEstimator(in.System.M(), in.System.N, in.K, 4, core.Practical(),
			core.NewOracleFactory(), rand.New(rand.NewSource(seed+11)))
	}
	whole, err := build()
	if err != nil {
		return nil, err
	}
	for _, e := range edges {
		whole.Process(e)
	}
	wv := whole.Result().Value
	for _, shards := range []int{2, 4, 8} {
		parts := make([]*core.Estimator, shards)
		for i := range parts {
			if parts[i], err = build(); err != nil {
				return nil, err
			}
		}
		for i, e := range edges {
			parts[i%shards].Process(e)
		}
		for i := 1; i < shards; i++ {
			if err := parts[0].Merge(parts[i]); err != nil {
				return nil, err
			}
		}
		r := parts[0].Result()
		agree := 0.0
		if wv > 0 && r.Value > 0 {
			agree = r.Value / wv
			if agree > 1 {
				agree = wv / r.Value
			}
		}
		cover := 0
		if len(r.SetIDs) > 0 {
			ids := make([]int, len(r.SetIDs))
			for i, id := range r.SetIDs {
				ids[i] = int(id)
			}
			cover = in.System.Coverage(ids)
		}
		t.AddRow(shards, wv, r.Value, agree, cover)
	}
	return t, nil
}
