// Package expt is the experiment harness: every table and theorem-level
// claim of the paper maps to a function here that generates workloads,
// runs the algorithms, and renders an aligned text table. The
// cmd/kcoverbench binary and the repository-root benchmarks call these
// functions; EXPERIMENTS.md records representative output against the
// paper's claims. See DESIGN.md §4 for the experiment index (E1–E15).
package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string // experiment id, e.g. "E1"
	Title  string
	Note   string // one-line interpretation aid
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells (stringified with %v).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "   %s\n", t.Note)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as RFC-4180-ish CSV (header row first; the
// ID/title/note travel as a leading comment line).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if _, err := fmt.Fprintf(w, "# %s: %s — %s\n", t.ID, t.Title, t.Note); err != nil {
		return err
	}
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n\n", t.Note)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}
