package expt

import (
	"math"
	"math/rand"

	"streamcover/internal/sketch"
)

// HeavyHittersAccuracy is experiment E11 (Theorem 2.10): recall and
// frequency accuracy of the F2 heavy-hitter sketch on planted-heavy
// streams across φ.
func HeavyHittersAccuracy(seed int64) *Table {
	t := &Table{
		ID:     "E11",
		Title:  "F2 heavy hitters (Theorem 2.10)",
		Note:   "one key at sqrt(share*F2), light tail; (1±1/2)-accurate frequencies expected",
		Header: []string{"phi", "heavy share", "recalled", "freq rel err", "space (words)"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, phi := range []float64{0.2, 0.05, 0.01} {
		heavy := 2000
		tail := 3000
		hh := sketch.NewF2HeavyHitters(phi, rng)
		var updates []uint64
		for i := 0; i < heavy; i++ {
			updates = append(updates, 7)
		}
		for k := 0; k < tail; k++ {
			for i := 0; i < 3; i++ {
				updates = append(updates, uint64(100+k))
			}
		}
		rng.Shuffle(len(updates), func(i, j int) { updates[i], updates[j] = updates[j], updates[i] })
		for _, u := range updates {
			hh.Add(u)
		}
		f2 := float64(heavy)*float64(heavy) + float64(tail)*9
		share := float64(heavy) * float64(heavy) / f2
		recalled := false
		var relErr float64
		for _, it := range hh.Report() {
			if it.ID == 7 {
				recalled = true
				relErr = math.Abs(it.Weight-float64(heavy)) / float64(heavy)
			}
		}
		t.AddRow(phi, share, recalled, relErr, hh.SpaceWords())
	}
	return t
}

// ContributingAccuracy is experiment E12 (Theorem 2.11): detection of a
// planted γ-contributing class across class sizes.
func ContributingAccuracy(seed int64) *Table {
	t := &Table{
		ID:     "E12",
		Title:  "F2-contributing classes (Theorem 2.11)",
		Note:   "planted class carries >~60% of F2; one representative must be reported",
		Header: []string{"class size", "freq", "detected", "reported freq", "space (words)"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, classSize := range []int{1, 8, 64, 256} {
		freq := 6400 / classSize
		c := sketch.NewF2Contributing(0.25, 1024, 1<<16, sketch.DefaultContribConfig(), rng)
		var updates []uint64
		for j := 0; j < classSize; j++ {
			for i := 0; i < freq; i++ {
				updates = append(updates, uint64(500000+j))
			}
		}
		for k := 0; k < 2000; k++ {
			for i := 0; i < 3; i++ {
				updates = append(updates, uint64(k))
			}
		}
		rng.Shuffle(len(updates), func(i, j int) { updates[i], updates[j] = updates[j], updates[i] })
		for _, u := range updates {
			c.Add(u)
		}
		detected := false
		var reported float64
		for _, it := range c.Report() {
			if it.ID >= 500000 && it.ID < uint64(500000+classSize) {
				detected = true
				reported = it.Weight
				break
			}
		}
		t.AddRow(classSize, freq, detected, reported, c.SpaceWords())
	}
	return t
}

// L0Accuracy is experiment E13 (Theorem 2.12): relative error of the
// bottom-k distinct-elements sketch across cardinalities, with heavy
// duplication.
func L0Accuracy(seed int64) *Table {
	t := &Table{
		ID:     "E13",
		Title:  "L0 / distinct elements (Theorem 2.12)",
		Note:   "every key repeated 5x; (1±1/2) accuracy expected at eps=0.5",
		Header: []string{"distinct", "eps", "estimate", "rel err", "space (words)"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, distinct := range []int{100, 10000, 200000} {
		for _, eps := range []float64{0.5, 0.25} {
			s := sketch.NewL0(eps, distinct, distinct, rng)
			for rep := 0; rep < 5; rep++ {
				for x := 0; x < distinct; x++ {
					s.Add(uint64(x))
				}
			}
			est := s.Estimate()
			t.AddRow(distinct, eps, est,
				math.Abs(est-float64(distinct))/float64(distinct), s.SpaceWords())
		}
	}
	return t
}
