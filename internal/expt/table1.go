package expt

import (
	"math/rand"

	"streamcover/internal/baseline"
	"streamcover/internal/core"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// Table1Config sizes the E1 workload.
type Table1Config struct {
	N, M, K int
	Alphas  []float64
	Seed    int64
}

// DefaultTable1Config is laptop-scale but large enough for the space
// separations to be visible.
func DefaultTable1Config() Table1Config {
	return Table1Config{N: 20000, M: 2000, K: 40, Alphas: []float64{2, 4, 8}, Seed: 1}
}

// Table1 reproduces the implementable rows of the paper's Table 1 on a
// planted instance with known optimum: for each algorithm it reports the
// arrival model it supports, the paper's stated approximation and space
// bounds, and the measured approximation ratio and retained words.
// The lower-bound rows of Table 1 are reproduced separately by E4
// (LowerBound), since impossibility cannot be benchmarked directly.
func Table1(cfg Table1Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := workload.PlantedCover(cfg.N, cfg.M, cfg.K, 0.8, 5, rng)
	opt := in.PlantedCoverage
	edges := in.System.Edges()

	t := &Table{
		ID:    "E1",
		Title: "Table 1 reproduction (measured rows)",
		Note:  in.Name + ", OPT=" + trimFloat(float64(opt)) + ", edges=" + trimFloat(float64(edges)),
		Header: []string{
			"algorithm", "arrival", "paper approx", "paper space",
			"measured ratio", "space (words)",
		},
	}

	feed := func(order stream.Order, proc func(stream.Edge)) {
		it := stream.Linearize(in.System, order, rng)
		for {
			e, ok := it.Next()
			if !ok {
				return
			}
			proc(e)
		}
	}

	// Offline greedy [35]: the 1-1/e yardstick, Θ(input) space.
	og := baseline.NewOfflineGreedy(in.System.M(), in.System.N, in.K)
	feed(stream.Shuffled, og.Process)
	_, ogCov := og.Result()
	t.AddRow("greedy (offline) [35]", "any (stores all)", "1/(1-1/e)", "Θ(input)",
		ratio(opt, float64(ogCov)), og.SpaceWords())

	// Threshold greedy [34]-style on its home turf (set arrival)...
	tgSet := baseline.NewThresholdGreedy(in.System.N, in.K, 0.2)
	feed(stream.SetArrival, tgSet.Process)
	_, tgSetCov := tgSet.Result()
	t.AddRow("threshold greedy [34]", "set arrival", "2+eps", "O~(k/eps^3)",
		ratio(opt, float64(tgSetCov)), tgSet.SpaceWords())

	// ...and fed an edge-arrival stream, where it breaks (footnote 2).
	tgEdge := baseline.NewThresholdGreedy(in.System.N, in.K, 0.2)
	feed(stream.Shuffled, tgEdge.Process)
	_, tgEdgeCov := tgEdge.Result()
	t.AddRow("threshold greedy [34]", "EDGE arrival (unsupported)", "—", "—",
		ratio(opt, float64(tgEdgeCov)), tgEdge.SpaceWords())

	// Swap greedy [37]-style, the set-arrival Õ(n) row.
	swap := baseline.NewSwapGreedy(in.System.N, in.K)
	feed(stream.SetArrival, swap.Process)
	_, swapCov := swap.Result()
	t.AddRow("swap greedy [37]", "set arrival", "4", "O~(n)",
		ratio(opt, float64(swapCov)), swap.SpaceWords())

	// Per-set-sketch greedy [12]/[34]-style: constant factor, Θ(m) space.
	sg := baseline.NewSketchGreedy(in.System.M(), in.System.N, in.K, 0.3, rng)
	feed(stream.Shuffled, sg.Process)
	sgIDs, _ := sg.Result()
	sgInts := make([]int, len(sgIDs))
	for i, id := range sgIDs {
		sgInts[i] = int(id)
	}
	sgCov := in.System.Coverage(sgInts)
	t.AddRow("sketch greedy [12,34]", "edge arrival", "1/(1-1/e-eps)", "O~(m/eps^2)",
		ratio(opt, float64(sgCov)), sg.SpaceWords())

	// Ours (Theorems 3.1/3.2) across the α sweep.
	for _, alpha := range cfg.Alphas {
		res, err := runOurs(in, alpha, core.Practical(), cfg.Seed+int64(alpha))
		if err != nil {
			return nil, err
		}
		t.AddRow("THIS PAPER (estimate+report)", "edge arrival",
			"alpha="+trimFloat(alpha), "O~(m/alpha^2+k)",
			ratio(opt, res.Estimate), res.SpaceWords)
	}
	return t, nil
}
