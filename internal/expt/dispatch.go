package expt

import (
	"math/rand"

	"streamcover/internal/core"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// subroutineRun feeds an instance (shuffled) to a standalone oracle and
// reports which subroutines accepted and at what values.
type subroutineRun struct {
	lcVal, lsVal, ssVal float64
	lcOK, lsOK, ssOK    bool
	winner              string
	value               float64
}

func runOracle(in *workload.Instance, alpha float64, seed int64) (subroutineRun, error) {
	rng := rand.New(rand.NewSource(seed))
	d, err := core.Derive(in.System.M(), in.System.N, in.K, alpha, core.Practical())
	if err != nil {
		return subroutineRun{}, err
	}
	o := core.NewOracle(d, rng)
	it := stream.Linearize(in.System, stream.Shuffled, rng)
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		o.Process(e)
	}
	var run subroutineRun
	run.lcVal, _, run.lcOK = o.LargeCommonEstimate()
	lsr := o.LargeSetEstimate()
	run.lsVal, run.lsOK = lsr.Value, lsr.Feasible
	ssr := o.SmallSetEstimate()
	run.ssVal, run.ssOK = ssr.Value, ssr.Feasible
	res := o.Result()
	run.value = res.Value
	switch {
	case run.lcOK && run.lcVal == res.Value:
		run.winner = "LargeCommon"
	case run.lsOK && run.lsVal == res.Value:
		run.winner = "LargeSet"
	case run.ssOK && run.ssVal == res.Value:
		run.winner = "SmallSet"
	default:
		run.winner = "none"
	}
	return run, nil
}

// OracleDispatch is experiment E15 (Figure 2 / Theorem 4.1) and folds in
// E6–E8: the three planted case families each exercise their designed
// subroutine; the table shows every subroutine's verdict per family.
func OracleDispatch(seed int64) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "Oracle case dispatch (Figure 2; covers E6 LargeCommon, E7 LargeSet, E8 SmallSet)",
		Note:  "alpha=4; values are coverage estimates, OPT column is the planted/greedy bound",
		Header: []string{
			"family (designed case)", "OPT", "LargeCommon", "LargeSet", "SmallSet", "winner", "ratio",
		},
	}
	rng := rand.New(rand.NewSource(seed))
	families := []struct {
		name string
		in   *workload.Instance
	}{
		{"commonheavy (I)", workload.CommonHeavy(5000, 2000, 20, 600, 0.4, 2, rng)},
		{"largesets (II)", workload.PlantedLargeSets(20000, 2000, 40, 2, 0.8, rng)},
		{"smallsets (III)", workload.PlantedSmallSets(20000, 2000, 200, 0.8, rng)},
	}
	fmtVal := func(v float64, ok bool) string {
		if !ok {
			return "infeasible"
		}
		return trimFloat(v)
	}
	for _, f := range families {
		run, err := runOracle(f.in, 4, seed+1)
		if err != nil {
			return nil, err
		}
		opt := f.in.OptLowerBound()
		t.AddRow(f.name, opt,
			fmtVal(run.lcVal, run.lcOK),
			fmtVal(run.lsVal, run.lsOK),
			fmtVal(run.ssVal, run.ssOK),
			run.winner, ratio(opt, run.value))
	}
	return t, nil
}
