package expt

import (
	"math/rand"

	"streamcover/internal/core"
	"streamcover/internal/hash"
	"streamcover/internal/setsystem"
	"streamcover/internal/workload"
)

// UniverseReduction is experiment E5 (Lemma 3.5): empirical probability
// that a 4-wise hash U → [z] keeps |h(S)| ≥ z/4 for |S| = z, across z.
// The lemma promises ≥ 3/4 for z ≥ 32.
func UniverseReduction(trials int, seed int64) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "Universe reduction (Lemma 3.5)",
		Note:   "Pr[|h(S)| >= z/4] for |S| = z, 4-wise h: U -> [z]; paper bound 3/4",
		Header: []string{"z", "Pr[|h(S)| >= z/4]", "mean |h(S)|/z"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, z := range []uint64{32, 128, 512, 4096} {
		good := 0
		var meanFrac float64
		for trial := 0; trial < trials; trial++ {
			h := hash.New4Wise(rng)
			distinct := make(map[uint64]struct{}, z)
			for e := uint64(0); e < z; e++ {
				distinct[h.Range(e, z)] = struct{}{}
			}
			if uint64(len(distinct)) >= z/4 {
				good++
			}
			meanFrac += float64(len(distinct)) / float64(z)
		}
		t.AddRow(z, float64(good)/float64(trials), meanFrac/float64(trials))
	}
	return t
}

// SetSampling is experiment E9 (Lemma 2.3 / Section A.1): sampling sets at
// rate λ/m covers the λ-common elements; |F^rnd| stays near λ.
func SetSampling(seed int64) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "Set sampling covers common elements (Lemma 2.3, A.5, A.6)",
		Note:   "m=2000 sets; planted commons appear in 10% of sets",
		Header: []string{"lambda", "E|F_rnd|", "measured |F_rnd|", "commons covered", "commons total"},
	}
	rng := rand.New(rand.NewSource(seed))
	in := workload.CommonHeavy(2000, 2000, 5, 50, 0.10, 2, rng)
	d, err := core.Derive(in.System.M(), in.System.N, in.K, 4, core.Practical())
	if err != nil {
		return nil, err
	}
	for _, lambda := range []float64{50, 200, 800} {
		s := core.NewSetSampler(d, lambda, rng)
		ids := s.Enumerate(in.System.M())
		covered := make(map[uint32]bool)
		for _, id := range ids {
			for _, e := range in.System.Sets[id] {
				covered[e] = true
			}
		}
		hit := 0
		for e := uint32(0); e < 50; e++ {
			if covered[e] {
				hit++
			}
		}
		t.AddRow(lambda, lambda, len(ids), hit, 50)
	}
	return t, nil
}

// ElementSampling is experiment E10 (Lemma 2.5): a constant-factor cover
// computed on a uniform element sample is a constant-factor cover of the
// full instance. We compare greedy-on-sample vs greedy-on-full coverage.
func ElementSampling(seed int64) *Table {
	t := &Table{
		ID:     "E10",
		Title:  "Element sampling preserves approximation (Lemma 2.5)",
		Note:   "greedy on sampled elements, evaluated on the full universe",
		Header: []string{"sample size", "full-greedy coverage", "sample-greedy true coverage", "retention"},
	}
	rng := rand.New(rand.NewSource(seed))
	in := workload.PlantedCover(20000, 800, 20, 0.5, 8, rng)
	_, full := in.System.Greedy(in.K)
	for _, sampleSize := range []int{100, 400, 1600} {
		// Sample elements, restrict the system, greedy, evaluate fully.
		keep := make(map[uint32]bool, sampleSize)
		for len(keep) < sampleSize {
			keep[uint32(rng.Intn(in.System.N))] = true
		}
		restricted := make([][]uint32, in.System.M())
		for i, s := range in.System.Sets {
			for _, e := range s {
				if keep[e] {
					restricted[i] = append(restricted[i], e)
				}
			}
		}
		sub := setsystem.MustNew(in.System.N, restricted)
		ids, _ := sub.LazyGreedy(in.K)
		trueCov := in.System.Coverage(ids)
		t.AddRow(sampleSize, full, trueCov, float64(trueCov)/float64(full))
	}
	return t
}

// ParamsTable is experiment E14 (Table 2): the derived parameter values at
// representative dimensions, under both the paper's literal constants and
// the practical preset.
func ParamsTable() (*Table, error) {
	t := &Table{
		ID:     "E14",
		Title:  "Derived parameters (Table 2)",
		Note:   "w = min(k, alpha); s scales the OPTlarge cutoff z/(s*alpha)",
		Header: []string{"preset", "m", "n", "k", "alpha", "w", "s", "s*alpha", "f", "sigma-frac", "eta"},
	}
	dims := []struct {
		m, n, k int
		alpha   float64
	}{
		{1 << 12, 1 << 14, 64, 4},
		{1 << 16, 1 << 18, 256, 16},
	}
	for _, dm := range dims {
		for _, preset := range []string{"practical", "paper"} {
			var p core.Params
			if preset == "paper" {
				p = core.Paper(dm.m, dm.n)
			} else {
				p = core.Practical()
			}
			d, err := core.Derive(dm.m, dm.n, dm.k, dm.alpha, p)
			if err != nil {
				return nil, err
			}
			t.AddRow(preset, dm.m, dm.n, dm.k, dm.alpha, d.W, d.S, d.SAlpha,
				p.FMult, p.SigmaFrac, p.Eta)
		}
	}
	return t, nil
}
