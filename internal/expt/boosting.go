package expt

import (
	"math/rand"

	"streamcover/internal/core"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// RepetitionBoosting is experiment E21 (Theorem 3.6's log(1/δ) loop):
// success rate of the estimator across independent seeds with 1 vs 3
// repetitions per coverage guess. "Success" means the estimate lands in
// [OPT/(1.5α), 1.4·OPT]. More repetitions trade space for reliability,
// exactly as the failure-probability analysis prescribes.
func RepetitionBoosting(seed int64) (*Table, error) {
	t := &Table{
		ID:     "E21",
		Title:  "Failure-probability boosting (Theorem 3.6)",
		Note:   "planted m=400 n=2500 k=16 alpha=4; success = estimate in [OPT/6, 1.4*OPT]; 12 seeds",
		Header: []string{"repetitions", "successes", "trials", "success rate", "space (words)"},
	}
	const trials = 12
	rng := rand.New(rand.NewSource(seed))
	in := workload.PlantedCover(2500, 400, 16, 0.8, 5, rng)
	opt := float64(in.PlantedCoverage)
	for _, reps := range []int{1, 3} {
		p := core.Practical()
		p.Reps = reps
		success := 0
		space := 0
		for trial := 0; trial < trials; trial++ {
			est, err := core.NewEstimator(in.System.M(), in.System.N, in.K, 4, p,
				core.NewOracleFactory(), rand.New(rand.NewSource(seed+int64(trial)*37)))
			if err != nil {
				return nil, err
			}
			it := stream.Linearize(in.System, stream.Shuffled, rng)
			for {
				e, ok := it.Next()
				if !ok {
					break
				}
				est.Process(e)
			}
			r := est.Result()
			if r.Feasible && r.Value >= opt/(1.5*4) && r.Value <= 1.4*opt {
				success++
			}
			space = est.SpaceWords()
		}
		t.AddRow(reps, success, trials, float64(success)/trials, space)
	}
	return t, nil
}
