package expt

import (
	"math/rand"

	"streamcover/internal/core"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// ours runs the paper's estimator on an instance and reports what the
// experiments need.
type oursResult struct {
	Estimate   float64
	Feasible   bool
	SpaceWords int
	// ReportedCoverage is the true coverage of the reported set IDs
	// (the Theorem 3.2 reporting quality), 0 if nothing was reported.
	ReportedCoverage int
	ReportedSets     int
}

func runOurs(in *workload.Instance, alpha float64, p core.Params, seed int64) (oursResult, error) {
	rng := rand.New(rand.NewSource(seed))
	est, err := core.NewEstimator(in.System.M(), in.System.N, in.K, alpha, p, core.NewOracleFactory(), rng)
	if err != nil {
		return oursResult{}, err
	}
	it := stream.Linearize(in.System, stream.Shuffled, rng)
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		est.Process(e)
	}
	r := est.Result()
	out := oursResult{
		Estimate:   r.Value,
		Feasible:   r.Feasible,
		SpaceWords: est.SpaceWords(),
	}
	if len(r.SetIDs) > 0 {
		ids := make([]int, len(r.SetIDs))
		for i, id := range r.SetIDs {
			ids[i] = int(id)
		}
		out.ReportedCoverage = in.System.Coverage(ids)
		out.ReportedSets = len(r.SetIDs)
	}
	return out, nil
}

// ratio returns opt/value, the approximation factor in the paper's
// "factor ≥ 1" convention (+Inf guarded as 0-value → ratio 0 means n/a).
func ratio(opt int, value float64) float64 {
	if value <= 0 {
		return 0
	}
	return float64(opt) / value
}
