package expt

import (
	"math"
	"math/rand"

	"streamcover/internal/core"
	"streamcover/internal/workload"
)

// TradeoffConfig sizes the E2/E3 sweeps.
type TradeoffConfig struct {
	N, M, K int
	Alphas  []float64
	Seed    int64
}

// DefaultTradeoffConfig spans a factor-8 α range so the α² law is visible.
func DefaultTradeoffConfig() TradeoffConfig {
	return TradeoffConfig{N: 20000, M: 4000, K: 64, Alphas: []float64{2, 4, 8, 16}, Seed: 2}
}

// TradeoffSweep is experiment E2 (Theorem 3.1): at fixed (m, n, k) it
// sweeps α and reports measured ratio and space. The last column gives
// space·α²/m — flat-ish when the Õ(m/α²) law holds (the Õ's log factors
// and the +k term keep it from being exactly constant).
func TradeoffSweep(cfg TradeoffConfig) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := workload.PlantedCover(cfg.N, cfg.M, cfg.K, 0.8, 5, rng)
	opt := in.PlantedCoverage
	t := &Table{
		ID:    "E2",
		Title: "Space/approximation trade-off (Theorem 3.1)",
		Note:  in.Name + ", OPT=" + trimFloat(float64(opt)),
		Header: []string{
			"alpha", "measured ratio", "ratio/alpha", "space (words)", "space*alpha^2/m",
		},
	}
	var logA, logS []float64
	for _, alpha := range cfg.Alphas {
		res, err := runOurs(in, alpha, core.Practical(), cfg.Seed+int64(alpha*10))
		if err != nil {
			return nil, err
		}
		r := ratio(opt, res.Estimate)
		t.AddRow(alpha, r, r/alpha, res.SpaceWords,
			float64(res.SpaceWords)*alpha*alpha/float64(cfg.M))
		logA = append(logA, math.Log(alpha))
		logS = append(logS, math.Log(float64(res.SpaceWords)))
	}
	slope := fitSlope(logA, logS)
	t.Note += ", log-log space-vs-alpha slope = " + trimFloat(slope) +
		" (theory: -2 for the sketch term)"
	return t, nil
}

// fitSlope computes the least-squares slope of y on x.
func fitSlope(x, y []float64) float64 {
	n := float64(len(x))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// SpaceVsM is the companion sweep: at fixed α it doubles m and reports
// space, exhibiting the linear-in-m factor of Õ(m/α²).
func SpaceVsM(k int, alpha float64, ms []int, seed int64) (*Table, error) {
	t := &Table{
		ID:     "E2b",
		Title:  "Space vs m at fixed alpha (Theorem 3.1)",
		Note:   "alpha=" + trimFloat(alpha),
		Header: []string{"m", "space (words)", "space/m"},
	}
	for _, m := range ms {
		rng := rand.New(rand.NewSource(seed + int64(m)))
		in := workload.PlantedCover(5*m, m, k, 0.8, 5, rng)
		res, err := runOurs(in, alpha, core.Practical(), seed+int64(m))
		if err != nil {
			return nil, err
		}
		t.AddRow(m, res.SpaceWords, float64(res.SpaceWords)/float64(m))
	}
	return t, nil
}

// Reporting is experiment E3 (Theorem 3.2): the reported k-cover's true
// coverage ratio across α and workload families, plus the space including
// the +k reporting term.
func Reporting(cfg TradeoffConfig) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Reporting variant quality (Theorem 3.2)",
		Note:  "reported = true coverage of the returned <=k sets",
		Header: []string{
			"workload", "alpha", "OPT", "reported coverage", "true ratio", "#sets", "space (words)",
		},
	}
	for _, alpha := range cfg.Alphas {
		rng := rand.New(rand.NewSource(cfg.Seed))
		families := []*workload.Instance{
			workload.PlantedCover(cfg.N, cfg.M, cfg.K, 0.8, 5, rng),
			workload.PlantedLargeSets(cfg.N, cfg.M, cfg.K, 2, 0.8, rng),
			workload.PlantedSmallSets(cfg.N, cfg.M, 4*cfg.K, 0.8, rng),
		}
		for _, in := range families {
			res, err := runOurs(in, alpha, core.Practical(), cfg.Seed+int64(alpha))
			if err != nil {
				return nil, err
			}
			t.AddRow(in.Name, alpha, in.PlantedCoverage, res.ReportedCoverage,
				ratio(in.PlantedCoverage, float64(res.ReportedCoverage)),
				res.ReportedSets, res.SpaceWords)
		}
	}
	return t, nil
}
