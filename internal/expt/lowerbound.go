package expt

import (
	"math/rand"

	"streamcover/internal/core"
	"streamcover/internal/disjointness"
	"streamcover/internal/stream"
)

// LowerBoundConfig sizes the E4 sweep.
type LowerBoundConfig struct {
	M      int // item universe of the DSJ instances (= sets of Max 1-Cover)
	R      int // players (= the α of the reduction)
	Trials int
	Seed   int64
}

// DefaultLowerBoundConfig keeps trials fast but statistically legible.
func DefaultLowerBoundConfig() LowerBoundConfig {
	return LowerBoundConfig{M: 8192, R: 16, Trials: 20, Seed: 3}
}

// LowerBound is experiment E4 (Theorem 3.3 / Section 5): it sweeps the
// L∞-via-L2 distinguisher's width across multiples of m/α² and reports
// Yes/No classification accuracy on promise instances. Accuracy is high
// at width Ω̃(m/α²) and collapses to chance (all-Yes answers) well below
// it — the operational content of the Ω(m/α²) bound. The final rows feed
// the reduced Max 1-Cover streams to the paper's own estimator, verifying
// it separates the α-gap instances (Claims 5.3/5.4).
func LowerBound(cfg LowerBoundConfig) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Lower-bound hard instances (Theorem 3.3, Claims 5.3/5.4)",
		Note:  "DSJ(m=" + trimFloat(float64(cfg.M)) + ", r=" + trimFloat(float64(cfg.R)) + "); base width m/r^2",
		Header: []string{
			"distinguisher", "width multiplier", "space (words)", "yes acc", "no acc",
		},
	}
	base := cfg.M / (cfg.R * cfg.R)
	if base < 1 {
		base = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, mult := range []float64{0.25, 1, 4, 32} {
		width := int(float64(base) * mult)
		if width < 2 {
			width = 2
		}
		var yesOK, noOK, space int
		for trial := 0; trial < cfg.Trials; trial++ {
			for _, no := range []bool{false, true} {
				ins, err := disjointness.Generate(cfg.R, cfg.M, no, 0.9, rng)
				if err != nil {
					return nil, err
				}
				d := disjointness.NewDistinguisher(width, rng)
				for _, s := range ins.Sets {
					for _, j := range s {
						d.Process(j)
					}
				}
				space = d.SpaceWords()
				if got := d.DecideNo(cfg.R); got == no {
					if no {
						noOK++
					} else {
						yesOK++
					}
				}
			}
		}
		t.AddRow("L2 sketch (L_inf proxy)", mult, space,
			float64(yesOK)/float64(cfg.Trials), float64(noOK)/float64(cfg.Trials))
	}

	// The paper's estimator on the reduced Max 1-Cover instances: the
	// estimate must separate OPT=r (No) from OPT=1 (Yes).
	p := core.Practical()
	var yesEst, noEst float64
	for _, no := range []bool{false, true} {
		ins, err := disjointness.Generate(cfg.R, cfg.M, no, 0.9, rng)
		if err != nil {
			return nil, err
		}
		est, err := core.NewEstimator(cfg.M, cfg.R, 1, float64(cfg.R)/2, p,
			core.NewOracleFactory(), rng)
		if err != nil {
			return nil, err
		}
		for _, e := range ins.ToCoverStream() {
			est.Process(stream.Edge{Set: e.Set, Elem: e.Elem})
		}
		r := est.Result()
		if no {
			noEst = r.Value
		} else {
			yesEst = r.Value
		}
	}
	t.AddRow("EstimateMaxCover on reduction", "—", "—",
		"est(Yes)="+trimFloat(yesEst), "est(No)="+trimFloat(noEst))
	return t, nil
}
