package baseline

import (
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

// SwapGreedy is a set-arrival streaming algorithm in the spirit of
// Saha–Getoor '09 (Table 1's "4 [37]" row): it maintains at most k
// candidate sets with their elements. A newly arrived set is admitted
// while there is room; once full, it replaces the member with the
// smallest current contribution whenever the newcomer's marginal gain is
// at least twice that contribution. Space is Õ(k·s̄ + n) words (the kept
// sets plus a coverage bitset) — the Õ(n) regime of the set-arrival line
// of work. Like every set-arrival algorithm it assumes contiguous sets
// and degrades arbitrarily on general edge-arrival streams.
type SwapGreedy struct {
	n, k int

	members  []swapMember
	covered  setsystem.Bitset
	curSet   uint32
	curElems []uint32
	started  bool
	edges    int
}

type swapMember struct {
	id    uint32
	elems []uint32
}

// NewSwapGreedy builds the baseline for an n-element universe and budget k.
func NewSwapGreedy(n, k int) *SwapGreedy {
	return &SwapGreedy{n: n, k: k, covered: setsystem.NewBitset(n)}
}

// Process consumes one edge, flushing the buffered set when the set ID
// changes (set-arrival assumption).
func (sg *SwapGreedy) Process(e stream.Edge) {
	sg.edges++
	if sg.started && e.Set != sg.curSet {
		sg.flush()
	}
	sg.started = true
	sg.curSet = e.Set
	sg.curElems = append(sg.curElems, e.Elem)
}

func (sg *SwapGreedy) flush() {
	elems := append([]uint32(nil), sg.curElems...)
	sg.curElems = sg.curElems[:0]
	id := sg.curSet
	if len(sg.members) < sg.k {
		sg.members = append(sg.members, swapMember{id: id, elems: elems})
		sg.recompute()
		return
	}
	gain := 0
	for _, e := range elems {
		if !sg.covered.Get(e) {
			gain++
		}
	}
	// Find the weakest member by current contribution (elements covered by
	// that member alone), with the multiplicity map built once per flush.
	counts := make(map[uint32]int)
	for _, m := range sg.members {
		seen := make(map[uint32]bool, len(m.elems))
		for _, e := range m.elems {
			if !seen[e] {
				seen[e] = true
				counts[e]++
			}
		}
	}
	weakest, weakestContrib := -1, 1<<62
	for i := range sg.members {
		c := 0
		seen := make(map[uint32]bool, len(sg.members[i].elems))
		for _, e := range sg.members[i].elems {
			if !seen[e] && counts[e] == 1 {
				c++
			}
			seen[e] = true
		}
		if c < weakestContrib {
			weakest, weakestContrib = i, c
		}
	}
	if weakest >= 0 && gain >= 2*weakestContrib && gain > 0 {
		sg.members[weakest] = swapMember{id: id, elems: elems}
		sg.recompute()
	}
}

// recompute rebuilds the coverage bitset after membership changes.
func (sg *SwapGreedy) recompute() {
	sg.covered.Clear()
	for _, m := range sg.members {
		for _, e := range m.elems {
			sg.covered.Set(e)
		}
	}
}

// Result flushes the trailing set and returns the kept set IDs and their
// exact coverage.
func (sg *SwapGreedy) Result() ([]uint32, int) {
	if sg.started && len(sg.curElems) > 0 {
		sg.flush()
	}
	ids := make([]uint32, len(sg.members))
	for i, m := range sg.members {
		ids[i] = m.id
	}
	return ids, sg.covered.Count()
}

// SpaceWords counts kept elements, the coverage bitset and the buffer.
func (sg *SwapGreedy) SpaceWords() int {
	w := len(sg.covered) + len(sg.curElems) + 6
	for _, m := range sg.members {
		w += len(m.elems) + 1
	}
	return w
}
