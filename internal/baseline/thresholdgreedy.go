package baseline

import (
	"math"

	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

// ThresholdGreedy is the set-arrival streaming (2+ε)-approximation in the
// McGregor–Vu / Badanidiyuru style (Table 1's Õ(k/ε³) row): it runs one
// threshold instance per geometric guess v of OPT; an instance accepts a
// set when the set's marginal gain over the instance's current coverage is
// at least v/(2k), and each instance keeps at most k sets plus a coverage
// bitset. The final answer is the best instance.
//
// It REQUIRES set-arrival order: a set's elements must arrive
// contiguously. Fed a general edge-arrival stream it treats each maximal
// run of equal set IDs as a (fragment of a) set and silently degrades —
// the experiment harness uses exactly this failure mode to demonstrate why
// the edge-arrival model needs different techniques (paper footnote 2).
type ThresholdGreedy struct {
	n, k int
	eps  float64

	instances []*thresholdInstance

	curSet   uint32
	curElems []uint32
	started  bool
	edges    int
}

type thresholdInstance struct {
	v       float64
	covered setsystem.Bitset
	count   int // covered bits, cached
	ids     []uint32
	k       int
}

// NewThresholdGreedy builds the baseline with guesses spanning [1, n].
func NewThresholdGreedy(n, k int, eps float64) *ThresholdGreedy {
	if eps <= 0 {
		eps = 0.1
	}
	tg := &ThresholdGreedy{n: n, k: k, eps: eps}
	base := 1 + eps
	for v := 1.0; v < float64(n)*base; v *= base {
		tg.instances = append(tg.instances, &thresholdInstance{
			v:       v,
			covered: setsystem.NewBitset(n),
			k:       k,
		})
	}
	return tg
}

// Process consumes one edge, flushing the buffered set whenever the set ID
// changes (set-arrival assumption).
func (tg *ThresholdGreedy) Process(e stream.Edge) {
	tg.edges++
	if tg.started && e.Set != tg.curSet {
		tg.flush()
	}
	tg.started = true
	tg.curSet = e.Set
	tg.curElems = append(tg.curElems, e.Elem)
}

func (tg *ThresholdGreedy) flush() {
	for _, inst := range tg.instances {
		inst.offer(tg.curSet, tg.curElems)
	}
	tg.curElems = tg.curElems[:0]
}

func (inst *thresholdInstance) offer(id uint32, elems []uint32) {
	if len(inst.ids) >= inst.k {
		return
	}
	gain := 0
	for _, e := range elems {
		if !inst.covered.Get(e) {
			gain++
		}
	}
	if float64(gain) < inst.v/(2*float64(inst.k)) {
		return
	}
	for _, e := range elems {
		inst.covered.Set(e)
	}
	inst.count += gain
	inst.ids = append(inst.ids, id)
}

// Result flushes the trailing set and returns the best instance's set IDs
// and exact coverage (of the fragments it saw).
func (tg *ThresholdGreedy) Result() ([]uint32, int) {
	if tg.started && len(tg.curElems) > 0 {
		tg.flush()
	}
	best := 0
	var ids []uint32
	for _, inst := range tg.instances {
		if inst.count > best {
			best = inst.count
			ids = inst.ids
		}
	}
	return ids, best
}

// SpaceWords counts each instance's bitset, kept IDs and the set buffer.
// The bitsets make this Õ(k/ε + n·log(n)/ε)-ish in words; the classic
// analysis counts Õ(k) sets retained — we report what this implementation
// actually holds, which is what the experiments compare.
func (tg *ThresholdGreedy) SpaceWords() int {
	w := len(tg.curElems) + 6
	for _, inst := range tg.instances {
		w += len(inst.covered) + len(inst.ids) + 3
	}
	return w
}

// Guesses reports the number of parallel threshold instances:
// Θ(log(n)/ε).
func (tg *ThresholdGreedy) Guesses() int {
	return int(math.Ceil(math.Log(float64(tg.n)) / math.Log1p(tg.eps)))
}
