package baseline

import (
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

// OfflineGreedy stores the entire stream and runs the classic greedy after
// the pass. It is the accuracy yardstick (approximation factor 1-1/e, i.e.
// ~1.58 in the paper's "factor ≥ 1" convention) and the space ceiling
// (Θ(input) words).
type OfflineGreedy struct {
	m, n, k int
	sets    map[uint32][]uint32
	edges   int
}

// NewOfflineGreedy builds the baseline for an m×n instance with budget k.
func NewOfflineGreedy(m, n, k int) *OfflineGreedy {
	return &OfflineGreedy{m: m, n: n, k: k, sets: make(map[uint32][]uint32)}
}

// Process stores one edge.
func (g *OfflineGreedy) Process(e stream.Edge) {
	g.sets[e.Set] = append(g.sets[e.Set], e.Elem)
	g.edges++
}

// Result runs greedy on the stored input, returning chosen set IDs and
// their exact coverage.
func (g *OfflineGreedy) Result() ([]uint32, int) {
	sets := make([][]uint32, g.m)
	for id, elems := range g.sets {
		sets[id] = elems
	}
	ss := setsystem.MustNew(g.n, sets)
	ids, cov := ss.LazyGreedy(g.k)
	out := make([]uint32, len(ids))
	for i, id := range ids {
		out[i] = uint32(id)
	}
	return out, cov
}

// SpaceWords counts one word per stored edge plus per-set bookkeeping.
func (g *OfflineGreedy) SpaceWords() int { return g.edges + len(g.sets) + 4 }
