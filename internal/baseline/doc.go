// Package baseline implements the comparison algorithms from Table 1 of
// the paper that admit an implementation (the table's remaining rows are
// lower bounds, reproduced in internal/disjointness):
//
//   - OfflineGreedy — the classic 1-1/e greedy [35], run on a fully stored
//     input; the accuracy yardstick every streaming algorithm is measured
//     against.
//   - ThresholdGreedy — the set-arrival streaming (2+ε)-approximation in
//     Õ(k/ε³) space in the spirit of McGregor–Vu '17 [34] and
//     Badanidiyuru et al. '14 [9]: parallel guesses of OPT, each keeping a
//     set when its marginal gain clears OPT·guess/(2k). Correct only on
//     set-arrival streams, which is exactly the limitation (footnote 2)
//     that motivates the paper.
//   - SketchGreedy — an edge-arrival constant-factor algorithm in Õ(m)
//     space in the spirit of Bateni–Esfandiari–Mirrokni '17 [12] and the
//     Õ(m/ε²) variant of [34]: one distinct-element (bottom-k) sketch per
//     set, merged greedily for k rounds. Works in arbitrary arrival order
//     but retains Θ(m) sketches — the baseline whose space the paper's
//     Õ(m/α²) algorithm beats when α is super-constant.
//
// All three report retained words via SpaceWords, so experiments can put
// them on the same space-accuracy axes as the paper's algorithm.
package baseline
