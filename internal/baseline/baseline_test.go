package baseline

import (
	"math"
	"math/rand"
	"testing"

	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

func feedAll(it stream.Iterator, proc func(stream.Edge)) {
	for {
		e, ok := it.Next()
		if !ok {
			return
		}
		proc(e)
	}
}

func TestOfflineGreedyMatchesSetSystemGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := workload.Uniform(2000, 300, 10, 20, rng)
	g := NewOfflineGreedy(in.System.M(), in.System.N, in.K)
	feedAll(stream.Linearize(in.System, stream.Shuffled, rng), g.Process)
	_, cov := g.Result()
	_, want := in.System.LazyGreedy(in.K)
	if cov != want {
		t.Errorf("streamed offline greedy %d != direct greedy %d", cov, want)
	}
	if g.SpaceWords() < in.System.Edges() {
		t.Errorf("offline greedy claims %d words for %d edges", g.SpaceWords(), in.System.Edges())
	}
}

func TestOfflineGreedyArrivalOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := workload.PlantedCover(1000, 100, 5, 0.6, 3, rng)
	covs := map[stream.Order]int{}
	for _, order := range []stream.Order{stream.SetArrival, stream.Shuffled, stream.ElementMajor} {
		g := NewOfflineGreedy(in.System.M(), in.System.N, in.K)
		feedAll(stream.Linearize(in.System, order, rng), g.Process)
		_, cov := g.Result()
		covs[order] = cov
	}
	if covs[stream.SetArrival] != covs[stream.Shuffled] || covs[stream.Shuffled] != covs[stream.ElementMajor] {
		t.Errorf("offline greedy depends on arrival order: %v", covs)
	}
}

func TestThresholdGreedyOnSetArrival(t *testing.T) {
	// On set-arrival streams the threshold greedy is a (2+ε)-approximation.
	rng := rand.New(rand.NewSource(3))
	in := workload.PlantedCover(4000, 400, 10, 0.8, 4, rng)
	tg := NewThresholdGreedy(in.System.N, in.K, 0.2)
	feedAll(stream.Linearize(in.System, stream.SetArrival, nil), tg.Process)
	ids, cov := tg.Result()
	opt := in.PlantedCoverage
	if float64(cov) < float64(opt)/(2.2+0.2) {
		t.Errorf("threshold greedy coverage %d below OPT/(2+ε)-ish (OPT=%d)", cov, opt)
	}
	if len(ids) > in.K {
		t.Errorf("kept %d sets > k", len(ids))
	}
	if cov > opt {
		t.Errorf("coverage %d exceeds OPT %d", cov, opt)
	}
}

func TestThresholdGreedyDegradesOnEdgeArrival(t *testing.T) {
	// The same instance in shuffled edge order fragments every set; the
	// set-arrival algorithm must lose badly — this is the paper's
	// motivation for edge-arrival algorithms (footnote 2).
	rng := rand.New(rand.NewSource(4))
	in := workload.PlantedCover(4000, 400, 10, 0.8, 4, rng)
	setArr := NewThresholdGreedy(in.System.N, in.K, 0.2)
	feedAll(stream.Linearize(in.System, stream.SetArrival, nil), setArr.Process)
	_, covSet := setArr.Result()

	edgeArr := NewThresholdGreedy(in.System.N, in.K, 0.2)
	feedAll(stream.Linearize(in.System, stream.Shuffled, rng), edgeArr.Process)
	_, covEdge := edgeArr.Result()

	if float64(covEdge) > 0.5*float64(covSet) {
		t.Errorf("threshold greedy did not degrade on edge arrival: set=%d edge=%d", covSet, covEdge)
	}
}

func TestThresholdGreedyGuessesAndSpace(t *testing.T) {
	tg := NewThresholdGreedy(1<<16, 10, 0.1)
	if g := tg.Guesses(); g < 50 {
		t.Errorf("Guesses() = %d, want Θ(log n/ε)", g)
	}
	if tg.SpaceWords() <= 0 {
		t.Error("SpaceWords not positive")
	}
	// Zero/negative eps falls back rather than dividing by zero.
	tg2 := NewThresholdGreedy(100, 5, 0)
	if tg2.Guesses() <= 0 {
		t.Error("fallback eps broken")
	}
}

func TestSketchGreedyOnEdgeArrival(t *testing.T) {
	// The per-set-sketch baseline is order-invariant: shuffled edge
	// arrival must be as good as set arrival, and within a constant factor
	// of OPT.
	rng := rand.New(rand.NewSource(5))
	in := workload.PlantedCover(4000, 400, 10, 0.8, 4, rng)
	opt := float64(in.PlantedCoverage)
	for _, order := range []stream.Order{stream.SetArrival, stream.Shuffled} {
		sg := NewSketchGreedy(in.System.M(), in.System.N, in.K, 0.3, rand.New(rand.NewSource(6)))
		feedAll(stream.Linearize(in.System, order, rng), sg.Process)
		ids, est := sg.Result()
		if est < opt/2.5 {
			t.Errorf("order %d: sketch greedy estimate %.0f below OPT/2.5 (OPT=%.0f)", order, est, opt)
		}
		if est > 1.5*opt {
			t.Errorf("order %d: estimate %.0f wildly above OPT %.0f", order, est, opt)
		}
		// True coverage of chosen sets must also be near-optimal here: the
		// planted sets are the only good choices.
		ints := make([]int, len(ids))
		for i, id := range ids {
			ints[i] = int(id)
		}
		if cov := in.System.Coverage(ints); float64(cov) < opt/2.5 {
			t.Errorf("order %d: chosen sets cover %d, below OPT/2.5", order, cov)
		}
	}
}

func TestSketchGreedySpaceLinearInM(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	build := func(m int) int {
		in := workload.Uniform(2000, m, 5, 20, rng)
		sg := NewSketchGreedy(in.System.M(), in.System.N, in.K, 0.5, rng)
		feedAll(stream.Linearize(in.System, stream.Shuffled, rng), sg.Process)
		return sg.SpaceWords()
	}
	s200, s800 := build(200), build(800)
	ratio := float64(s800) / float64(s200)
	if math.Abs(ratio-4) > 1.5 {
		t.Errorf("sketch greedy space not ~linear in m: %d vs %d (ratio %.2f)", s200, s800, ratio)
	}
}

func TestSketchGreedyIgnoresOutOfRangeSets(t *testing.T) {
	sg := NewSketchGreedy(4, 10, 2, 0.5, rand.New(rand.NewSource(8)))
	sg.Process(stream.Edge{Set: 99, Elem: 0}) // must not panic
	sg.Process(stream.Edge{Set: 0, Elem: 1})
	ids, est := sg.Result()
	if len(ids) != 1 || est != 1 {
		t.Errorf("got ids=%v est=%v, want the single valid set", ids, est)
	}
}

func TestSketchGreedyBadEpsFallsBack(t *testing.T) {
	sg := NewSketchGreedy(4, 10, 2, -1, rand.New(rand.NewSource(9)))
	sg.Process(stream.Edge{Set: 0, Elem: 1})
	if _, est := sg.Result(); est != 1 {
		t.Errorf("fallback eps result %v", est)
	}
}

func TestSketchGreedyExactOnSmallSets(t *testing.T) {
	// When every set is smaller than the sketch size, estimates are exact
	// distinct counts and greedy matches the offline answer.
	rng := rand.New(rand.NewSource(10))
	in := workload.Uniform(500, 50, 5, 5, rng)
	sg := NewSketchGreedy(in.System.M(), in.System.N, in.K, 0.3, rng)
	feedAll(stream.Linearize(in.System, stream.Shuffled, rng), sg.Process)
	_, est := sg.Result()
	_, want := in.System.LazyGreedy(in.K)
	if est != float64(want) {
		t.Errorf("small-set sketch greedy %v != offline greedy %d", est, want)
	}
}

func TestSwapGreedyOnSetArrival(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := workload.PlantedCover(4000, 400, 10, 0.8, 4, rng)
	sg := NewSwapGreedy(in.System.N, in.K)
	feedAll(stream.Linearize(in.System, stream.SetArrival, nil), sg.Process)
	ids, cov := sg.Result()
	opt := in.PlantedCoverage
	if float64(cov) < float64(opt)/5 {
		t.Errorf("swap greedy coverage %d below OPT/5 (OPT=%d)", cov, opt)
	}
	if cov > opt {
		t.Errorf("coverage %d exceeds OPT %d", cov, opt)
	}
	if len(ids) > in.K {
		t.Errorf("kept %d sets > k", len(ids))
	}
}

func TestSwapGreedySwapsIn(t *testing.T) {
	// k=1: a strictly better set arriving later must displace the first
	// when its gain doubles the incumbent's contribution.
	sg := NewSwapGreedy(10, 1)
	for _, e := range []stream.Edge{{Set: 0, Elem: 0}, {Set: 1, Elem: 1}, {Set: 1, Elem: 2}, {Set: 1, Elem: 3}} {
		sg.Process(e)
	}
	ids, cov := sg.Result()
	if len(ids) != 1 || ids[0] != 1 || cov != 3 {
		t.Errorf("swap failed: ids=%v cov=%d, want set 1 covering 3", ids, cov)
	}
}

func TestSwapGreedyKeepsIncumbentAgainstWeakUpstart(t *testing.T) {
	sg := NewSwapGreedy(10, 1)
	for _, e := range []stream.Edge{{Set: 0, Elem: 0}, {Set: 0, Elem: 1}, {Set: 1, Elem: 2}} {
		sg.Process(e)
	}
	ids, cov := sg.Result()
	if len(ids) != 1 || ids[0] != 0 || cov != 2 {
		t.Errorf("incumbent lost to weak upstart: ids=%v cov=%d", ids, cov)
	}
}

func TestSwapGreedyDegradesOnEdgeArrival(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	in := workload.PlantedCover(4000, 400, 10, 0.8, 4, rng)
	set := NewSwapGreedy(in.System.N, in.K)
	feedAll(stream.Linearize(in.System, stream.SetArrival, nil), set.Process)
	_, covSet := set.Result()
	edge := NewSwapGreedy(in.System.N, in.K)
	feedAll(stream.Linearize(in.System, stream.Shuffled, rng), edge.Process)
	_, covEdge := edge.Result()
	if float64(covEdge) > 0.5*float64(covSet) {
		t.Errorf("swap greedy did not degrade on edge arrival: %d vs %d", covSet, covEdge)
	}
}
