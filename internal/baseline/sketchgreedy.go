package baseline

import (
	"container/heap"
	"math/rand"
	"sort"

	"streamcover/internal/hash"
	"streamcover/internal/stream"
)

// SketchGreedy is the edge-arrival constant-factor baseline in the
// Bateni–Esfandiari–Mirrokni '17 / McGregor–Vu '17 style (Table 1's
// Õ(m/ε²) row): it keeps one bottom-t distinct-element sketch per set —
// immune to arrival order and duplicates — and after the pass runs greedy
// for k rounds directly on the sketches: the union of bottom-t sketches is
// the bottom-t sketch of the union, so marginal coverage gains can be
// estimated without the original sets. Space is Θ(m·t) words: linear in m,
// the regime the paper's Õ(m/α²) algorithm improves on for α ≫ 1.
type SketchGreedy struct {
	m, n, k int
	t       int
	h       *hash.Poly
	sets    []bottomT
	edges   int
}

// bottomT keeps the t smallest distinct hash values of a set's elements,
// paired with the element IDs (needed to merge unions exactly).
type bottomT struct {
	vals maxPairHeap
	seen map[uint64]struct{}
}

type hashedElem struct {
	hv   uint64
	elem uint32
}

// NewSketchGreedy builds the baseline; eps sets the per-set sketch size
// t = O(1/eps²).
func NewSketchGreedy(m, n, k int, eps float64, rng *rand.Rand) *SketchGreedy {
	if eps <= 0 || eps >= 1 {
		eps = 0.5
	}
	t := int(4.0/(eps*eps)) + 1
	sg := &SketchGreedy{
		m: m, n: n, k: k, t: t,
		h:    hash.NewLogWise(m, n, rng),
		sets: make([]bottomT, m),
	}
	return sg
}

// Process feeds one edge into its set's sketch.
func (sg *SketchGreedy) Process(e stream.Edge) {
	sg.edges++
	if int(e.Set) >= sg.m {
		return
	}
	b := &sg.sets[e.Set]
	hv := sg.h.Eval(uint64(e.Elem))
	if b.seen == nil {
		b.seen = make(map[uint64]struct{}, sg.t)
	}
	if _, ok := b.seen[hv]; ok {
		return
	}
	if len(b.vals) < sg.t {
		b.seen[hv] = struct{}{}
		heap.Push(&b.vals, hashedElem{hv: hv, elem: e.Elem})
		return
	}
	if hv >= b.vals[0].hv {
		return
	}
	delete(b.seen, b.vals[0].hv)
	b.seen[hv] = struct{}{}
	b.vals[0] = hashedElem{hv: hv, elem: e.Elem}
	heap.Fix(&b.vals, 0)
}

// Result runs greedy over the per-set sketches: each round merges every
// candidate sketch into the current union sketch and picks the largest
// estimated union. Returns chosen set IDs and the estimated coverage.
func (sg *SketchGreedy) Result() ([]uint32, float64) {
	type sortedSketch struct {
		pairs []hashedElem // ascending by hash value
	}
	sorted := make([]sortedSketch, sg.m)
	for i := range sg.sets {
		p := append([]hashedElem(nil), sg.sets[i].vals...)
		sort.Slice(p, func(a, b int) bool { return p[a].hv < p[b].hv })
		sorted[i] = sortedSketch{pairs: p}
	}
	union := []hashedElem{} // bottom-t of the union, ascending
	estimate := func(merged []hashedElem) float64 {
		if len(merged) < sg.t {
			return float64(len(merged))
		}
		kth := merged[sg.t-1].hv
		return float64(sg.t-1) * float64(hash.Prime) / float64(kth)
	}
	merge := func(a, b []hashedElem) []hashedElem {
		out := make([]hashedElem, 0, sg.t)
		i, j := 0, 0
		var last uint64 = ^uint64(0)
		for len(out) < sg.t && (i < len(a) || j < len(b)) {
			var next hashedElem
			switch {
			case i == len(a):
				next = b[j]
				j++
			case j == len(b):
				next = a[i]
				i++
			case a[i].hv <= b[j].hv:
				next = a[i]
				i++
			default:
				next = b[j]
				j++
			}
			if len(out) > 0 && next.hv == last {
				continue
			}
			out = append(out, next)
			last = next.hv
		}
		return out
	}
	taken := make([]bool, sg.m)
	var ids []uint32
	cur := 0.0
	for round := 0; round < sg.k; round++ {
		best, bestVal := -1, cur
		var bestUnion []hashedElem
		for i := 0; i < sg.m; i++ {
			if taken[i] || len(sorted[i].pairs) == 0 {
				continue
			}
			mg := merge(union, sorted[i].pairs)
			if v := estimate(mg); v > bestVal {
				best, bestVal, bestUnion = i, v, mg
			}
		}
		if best < 0 {
			break
		}
		taken[best] = true
		ids = append(ids, uint32(best))
		union = bestUnion
		cur = bestVal
	}
	return ids, cur
}

// SpaceWords counts two words per retained (hash, element) pair plus the
// shared hash function: Θ(m·t) total.
func (sg *SketchGreedy) SpaceWords() int {
	w := sg.h.SpaceWords() + 5
	for i := range sg.sets {
		w += 2 * len(sg.sets[i].vals)
	}
	return w
}

// maxPairHeap is a max-heap of hashedElem by hash value.
type maxPairHeap []hashedElem

func (h maxPairHeap) Len() int            { return len(h) }
func (h maxPairHeap) Less(i, j int) bool  { return h[i].hv > h[j].hv }
func (h maxPairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxPairHeap) Push(x interface{}) { *h = append(*h, x.(hashedElem)) }
func (h *maxPairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
