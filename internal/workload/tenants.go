package workload

import "math/rand"

// TenantPicker selects which of N tenants (sessions) the next batch goes
// to — the access-pattern half of a multi-tenant workload, decoupled from
// the instance generators above, which decide what the batch contains.
// With a positive skew the draw is Zipf (a few hot tenants take most of
// the traffic; the long tail goes cold — the regime session
// oversubscription exploits); with skew <= 0 it is uniform. Seeded and
// deterministic: the same (tenants, skew, seed) triple yields the same
// pick sequence, so load runs replay exactly.
type TenantPicker struct {
	n    int
	rng  *rand.Rand
	zipf *rand.Zipf // nil: uniform
}

// NewTenantPicker builds a picker over tenants ∈ [0, tenants). skew is
// the Zipf exponent (clamped up to 1.01, matching the element generators
// above); skew <= 0 selects the uniform distribution.
func NewTenantPicker(tenants int, skew float64, seed int64) *TenantPicker {
	if tenants < 1 {
		tenants = 1
	}
	p := &TenantPicker{n: tenants, rng: rand.New(rand.NewSource(seed))}
	if skew > 0 && tenants > 1 {
		if skew < 1.01 {
			skew = 1.01
		}
		p.zipf = rand.NewZipf(p.rng, skew, 1, uint64(tenants-1))
	}
	return p
}

// Pick returns the next tenant index in [0, Tenants()).
func (p *TenantPicker) Pick() int {
	if p.zipf != nil {
		return int(p.zipf.Uint64())
	}
	if p.n == 1 {
		return 0
	}
	return p.rng.Intn(p.n)
}

// Tenants reports the tenant count.
func (p *TenantPicker) Tenants() int { return p.n }
