package workload

import (
	"math/rand"
	"testing"
)

func TestUniformShape(t *testing.T) {
	in := Uniform(100, 50, 5, 10, rand.New(rand.NewSource(1)))
	if in.System.M() != 50 || in.System.N != 100 || in.K != 5 {
		t.Fatalf("dims wrong: m=%d n=%d k=%d", in.System.M(), in.System.N, in.K)
	}
	for i, s := range in.System.Sets {
		if len(s) < 1 || len(s) >= 20 {
			t.Errorf("set %d size %d outside [1, 20)", i, len(s))
		}
	}
	if in.PlantedIDs != nil {
		t.Error("uniform should not plant a solution")
	}
	if in.OptLowerBound() <= 0 {
		t.Error("OptLowerBound (greedy fallback) not positive")
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(100, 30, 3, 8, rand.New(rand.NewSource(9)))
	b := Uniform(100, 30, 3, 8, rand.New(rand.NewSource(9)))
	if a.System.Edges() != b.System.Edges() {
		t.Error("same seed, different instance")
	}
}

func TestZipfSkew(t *testing.T) {
	in := Zipf(1000, 300, 10, 1.5, 200, rand.New(rand.NewSource(2)))
	freq := in.System.ElementFrequencies()
	// Element popularity must be skewed: the most popular element should
	// appear in far more sets than the median element.
	max, nonzero := 0, 0
	for _, f := range freq {
		if f > max {
			max = f
		}
		if f > 0 {
			nonzero++
		}
	}
	if max < 10 {
		t.Errorf("zipf max frequency %d too flat", max)
	}
	if nonzero == 0 {
		t.Fatal("zipf produced empty system")
	}
}

func TestPlantedCoverKnownOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := PlantedCover(500, 100, 10, 0.8, 3, rng)
	if len(in.PlantedIDs) != 10 {
		t.Fatalf("planted %d ids, want 10", len(in.PlantedIDs))
	}
	cov := in.System.Coverage(in.PlantedIDs)
	if cov != in.PlantedCoverage {
		t.Errorf("planted coverage %d, recorded %d", cov, in.PlantedCoverage)
	}
	if cov != 400 {
		t.Errorf("planted coverage %d, want 0.8*500 = 400", cov)
	}
	// Decoys live inside the planted footprint, so planted is optimal:
	// greedy cannot beat it.
	_, g := in.System.Greedy(in.K)
	if g > cov {
		t.Errorf("greedy %d beat planted %d — construction broken", g, cov)
	}
}

func TestPlantedCoverDisjointPlants(t *testing.T) {
	in := PlantedCover(200, 20, 5, 1.0, 2, rand.New(rand.NewSource(4)))
	total := 0
	for _, id := range in.PlantedIDs {
		total += len(in.System.Sets[id])
	}
	if total != in.PlantedCoverage {
		t.Errorf("planted sets overlap: sizes sum %d, coverage %d", total, in.PlantedCoverage)
	}
}

func TestPlantedLargeSetsShape(t *testing.T) {
	in := PlantedLargeSets(1000, 200, 50, 2, 0.6, rand.New(rand.NewSource(5)))
	big := 0
	for _, s := range in.System.Sets {
		if len(s) > 100 {
			big++
		}
	}
	if big != 2 {
		t.Errorf("%d large sets, want exactly 2", big)
	}
	if got := in.System.Coverage(in.PlantedIDs); got < in.PlantedCoverage {
		t.Errorf("planted ids cover %d < recorded %d", got, in.PlantedCoverage)
	}
	if len(in.PlantedIDs) > in.K {
		t.Errorf("planted %d ids > k=%d", len(in.PlantedIDs), in.K)
	}
}

func TestPlantedSmallSetsContributions(t *testing.T) {
	in := PlantedSmallSets(1000, 300, 100, 0.5, rand.New(rand.NewSource(6)))
	// Every planted set must be small: coverage/k each.
	for _, id := range in.PlantedIDs {
		if sz := len(in.System.Sets[id]); sz > 2*in.PlantedCoverage/in.K+1 {
			t.Errorf("planted set %d size %d too large for small-sets regime", id, sz)
		}
	}
}

func TestCommonHeavyFrequencies(t *testing.T) {
	in := CommonHeavy(500, 400, 10, 20, 0.5, 2, rand.New(rand.NewSource(7)))
	freq := in.System.ElementFrequencies()
	for e := 0; e < 20; e++ {
		if freq[e] < 100 { // expect ~200 of 400 sets
			t.Errorf("common element %d frequency %d, want ~200", e, freq[e])
		}
	}
	for e := 20; e < 500; e++ {
		if freq[e] > 50 {
			t.Errorf("private element %d frequency %d unexpectedly common", e, freq[e])
		}
	}
}

func TestGraphNeighborhoods(t *testing.T) {
	in := GraphNeighborhoods(300, 5, 10, rand.New(rand.NewSource(8)))
	if in.System.M() != 300 || in.System.N != 300 {
		t.Fatalf("graph dims m=%d n=%d", in.System.M(), in.System.N)
	}
	edges := in.System.Edges()
	if edges < 1500 || edges > 6000 { // expect ~3000
		t.Errorf("graph has %d edges, want ~3000", edges)
	}
	// No self loops.
	for u, s := range in.System.Sets {
		for _, v := range s {
			if int(v) == u {
				t.Fatalf("self loop at %d", u)
			}
		}
	}
}

func TestValidatePanics(t *testing.T) {
	cases := []func(){
		func() { Uniform(0, 5, 1, 2, rand.New(rand.NewSource(1))) },
		func() { Uniform(5, 0, 1, 2, rand.New(rand.NewSource(1))) },
		func() { Uniform(5, 5, 0, 2, rand.New(rand.NewSource(1))) },
		func() { PlantedCover(10, 5, 2, 0, 1, rand.New(rand.NewSource(1))) },
		func() { PlantedCover(10, 5, 2, 1.5, 1, rand.New(rand.NewSource(1))) },
		func() { PlantedLargeSets(10, 5, 2, 3, 0.5, rand.New(rand.NewSource(1))) },
		func() { CommonHeavy(10, 5, 2, 11, 0.5, 1, rand.New(rand.NewSource(1))) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestRandomSubsetFullUniverse(t *testing.T) {
	s := randomSubset(5, 10, rand.New(rand.NewSource(1)))
	if len(s) != 5 {
		t.Errorf("sz >= n should return the whole universe, got %d", len(s))
	}
}

// TestFamiliesDeterministic is the seed-reproducibility audit: every named
// family must produce byte-identical set systems (contents AND order) from
// equal seeds, or a scenario's stream digest could never match across
// runs. Uniform and Zipf used to fail this by emitting set elements in map
// iteration order.
func TestFamiliesDeterministic(t *testing.T) {
	p := FamilyParams{N: 500, M: 120, K: 8}
	for _, fam := range Families() {
		a, err := FromFamily(fam, p, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := FromFamily(fam, p, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		if len(a.System.Sets) != len(b.System.Sets) {
			t.Fatalf("%s: set counts differ", fam)
		}
		for i := range a.System.Sets {
			sa, sb := a.System.Sets[i], b.System.Sets[i]
			if len(sa) != len(sb) {
				t.Fatalf("%s: set %d sizes differ (%d vs %d)", fam, i, len(sa), len(sb))
			}
			for j := range sa {
				if sa[j] != sb[j] {
					t.Fatalf("%s: set %d element %d differs (%d vs %d): nondeterministic order", fam, i, j, sa[j], sb[j])
				}
			}
		}
	}
	if _, err := FromFamily("nope", p, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("unknown family should error")
	}
}
