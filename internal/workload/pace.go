package workload

import (
	"sync"
	"time"
)

// Pacer is a token-bucket arrival pacer for open-loop load generation:
// a driver calls Take(n) before offering n edges and is delayed just long
// enough to hold the offered rate at the target, independent of how fast
// the server acknowledges. Rate 0 means unpaced (closed loop: the driver
// self-clocks on server backpressure instead). SetRate may be called
// concurrently with Take — scenario phases retarget the rate mid-run.
type Pacer struct {
	mu     sync.Mutex
	rate   float64 // edges per second; 0 = unlimited
	tokens float64
	burst  float64 // token cap; bounds the catch-up burst after a stall
	last   time.Time
}

// NewPacer builds a pacer targeting rate edges/sec (0 = unlimited).
func NewPacer(rate float64) *Pacer {
	p := &Pacer{last: time.Now()}
	p.SetRate(rate)
	return p
}

// SetRate retargets the pacer. The bucket refills at the new rate from the
// next Take on; accumulated tokens are kept but capped at the new burst.
func (p *Pacer) SetRate(rate float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refill(time.Now())
	if rate < 0 {
		rate = 0
	}
	p.rate = rate
	// A 50ms burst allowance smooths scheduler jitter without letting a
	// long stall turn into an arrival flood.
	p.burst = rate * 0.05
	if p.tokens > p.burst {
		p.tokens = p.burst
	}
}

// refill credits tokens for the time since the last refill. Caller holds mu.
func (p *Pacer) refill(now time.Time) {
	if p.rate > 0 {
		p.tokens += now.Sub(p.last).Seconds() * p.rate
		if p.tokens > p.burst && p.burst > 0 {
			p.tokens = p.burst
		}
	}
	p.last = now
}

// Take blocks until n tokens are available, then consumes them. With rate
// 0 it returns immediately. n larger than the burst is allowed: the bucket
// is let to go negative, which spaces the following Takes out — the long
// batch pays its debt forward.
func (p *Pacer) Take(n int) {
	if n <= 0 {
		return
	}
	for {
		p.mu.Lock()
		if p.rate == 0 {
			p.mu.Unlock()
			return
		}
		p.refill(time.Now())
		if p.tokens >= 0 {
			// Spend even if it drives the balance negative (debt): one
			// oversized batch must not deadlock against the burst cap.
			p.tokens -= float64(n)
			p.mu.Unlock()
			return
		}
		// In debt: wait for the deficit to refill, in short slices so a
		// concurrent SetRate (or rate-0 switch) is honored promptly.
		wait := time.Duration(-p.tokens / p.rate * float64(time.Second))
		p.mu.Unlock()
		if wait > 20*time.Millisecond {
			wait = 20 * time.Millisecond
		}
		if wait <= 0 {
			wait = time.Millisecond
		}
		time.Sleep(wait)
	}
}
