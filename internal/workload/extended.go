package workload

import (
	"fmt"
	"math/rand"

	"streamcover/internal/setsystem"
)

// PreferentialAttachment builds a bipartite set system by cumulative
// advantage: each of m sets draws `perSet` elements, each chosen as an
// existing popular element with probability `rich` (proportional to
// current frequency) or a fresh uniform element otherwise. The result has
// the heavy-tailed element-frequency profile of real incidence data
// (authors–papers, users–items), the regime where frequency-partitioned
// arguments (Lemma 4.20's W_i classes) actually bite.
func PreferentialAttachment(n, m, k, perSet int, rich float64, rng *rand.Rand) *Instance {
	validate(n, m, k)
	if perSet < 1 {
		perSet = 1
	}
	if rich < 0 {
		rich = 0
	}
	if rich > 1 {
		rich = 1
	}
	var history []uint32 // one entry per incidence: sampling uniformly from it is frequency-proportional sampling
	sets := make([][]uint32, m)
	for i := range sets {
		for j := 0; j < perSet; j++ {
			var e uint32
			if len(history) > 0 && rng.Float64() < rich {
				e = history[rng.Intn(len(history))]
			} else {
				e = uint32(rng.Intn(n))
			}
			sets[i] = append(sets[i], e)
			history = append(history, e)
		}
	}
	return &Instance{
		Name:   fmt.Sprintf("prefattach(n=%d,m=%d,k=%d,rich=%.2f)", n, m, k, rich),
		System: setsystem.MustNew(n, sets),
		K:      k,
	}
}

// EmbeddedDSJ plants the Section 5 hard structure inside a benign
// instance: `gapSize` elements are each covered by a single "needle" set
// (the unique-intersection pattern), while the rest of the universe is
// routine planted-cover mass. A correct α-estimator must neither miss the
// planted mass nor hallucinate coverage from the adversarial singleton
// fringe. Returns the instance; the needle set's ID is k (the first
// decoy slot).
func EmbeddedDSJ(n, m, k, gapSize int, coverFrac float64, rng *rand.Rand) *Instance {
	validate(n, m, k)
	if gapSize < 1 || gapSize >= n/2 {
		panic(fmt.Sprintf("workload: gapSize %d out of [1, n/2)", gapSize))
	}
	base := PlantedCover(n-gapSize, m-1-gapSize, k, coverFrac, 3, rng)
	sets := make([][]uint32, 0, m)
	sets = append(sets, base.System.Sets...)
	// The needle: one set covering all gap elements (the No-case common
	// item's set in the reduction).
	needle := make([]uint32, 0, gapSize)
	for g := 0; g < gapSize; g++ {
		needle = append(needle, uint32(n-gapSize+g))
	}
	sets = append(sets, needle)
	// The fringe: per gap element, one singleton set (the Yes-case shape).
	for g := 0; g < gapSize; g++ {
		sets = append(sets, []uint32{uint32(n - gapSize + g)})
	}
	in := &Instance{
		Name:   fmt.Sprintf("embeddeddsj(n=%d,m=%d,k=%d,gap=%d)", n, m, k, gapSize),
		System: setsystem.MustNew(n, sets),
		K:      k,
	}
	// Best known cover: either the planted base sets, or the base sets
	// minus one plus the needle — whichever truly covers more.
	in.PlantedIDs = append([]int(nil), base.PlantedIDs...)
	in.PlantedCoverage = base.PlantedCoverage
	if k > 1 && len(base.PlantedIDs) == k {
		swapped := append([]int(nil), base.PlantedIDs...)
		swapped[len(swapped)-1] = len(base.System.Sets) // the needle's ID
		if cov := in.System.Coverage(swapped); cov > in.PlantedCoverage {
			in.PlantedIDs = swapped
			in.PlantedCoverage = cov
		}
	}
	return in
}
