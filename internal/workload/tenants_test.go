package workload

import "testing"

// Same (tenants, skew, seed) must replay the same pick sequence.
func TestTenantPickerDeterministic(t *testing.T) {
	a := NewTenantPicker(64, 1.2, 7)
	b := NewTenantPicker(64, 1.2, 7)
	for i := 0; i < 10_000; i++ {
		if x, y := a.Pick(), b.Pick(); x != y {
			t.Fatalf("pick %d diverged: %d vs %d", i, x, y)
		}
	}
}

// A skewed picker must concentrate traffic: tenant 0 hotter than the
// median tenant, and a hot minority carrying the majority of picks.
func TestTenantPickerSkewConcentrates(t *testing.T) {
	const tenants, picks = 100, 50_000
	p := NewTenantPicker(tenants, 1.1, 1)
	counts := make([]int, tenants)
	for i := 0; i < picks; i++ {
		idx := p.Pick()
		if idx < 0 || idx >= tenants {
			t.Fatalf("pick %d out of range", idx)
		}
		counts[idx]++
	}
	if counts[0] <= counts[tenants/2] {
		t.Fatalf("tenant 0 (%d picks) not hotter than median tenant (%d picks)", counts[0], counts[tenants/2])
	}
	hot := 0
	for i := 0; i < tenants/10; i++ {
		hot += counts[i]
	}
	if hot*2 < picks {
		t.Fatalf("hottest 10%% of tenants took %d/%d picks, want a majority", hot, picks)
	}
}

// skew <= 0 is uniform: every tenant sees traffic, no tenant dominates.
func TestTenantPickerUniform(t *testing.T) {
	const tenants, picks = 16, 32_000
	p := NewTenantPicker(tenants, 0, 3)
	counts := make([]int, tenants)
	for i := 0; i < picks; i++ {
		counts[p.Pick()]++
	}
	want := picks / tenants
	for i, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("tenant %d got %d picks, want roughly %d", i, c, want)
		}
	}
}

// Degenerate configurations stay safe.
func TestTenantPickerDegenerate(t *testing.T) {
	if got := NewTenantPicker(1, 2.0, 9).Pick(); got != 0 {
		t.Fatalf("single tenant pick = %d, want 0", got)
	}
	if got := NewTenantPicker(0, 0, 9).Tenants(); got != 1 {
		t.Fatalf("tenants clamped to %d, want 1", got)
	}
}
