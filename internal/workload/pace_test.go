package workload

import (
	"testing"
	"time"
)

func TestPacerUnlimitedNeverBlocks(t *testing.T) {
	p := NewPacer(0)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			p.Take(1 << 20)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("rate-0 pacer blocked")
	}
}

// TestPacerHoldsRate asserts only a loose lower bound on elapsed time —
// CI schedulers make upper bounds flaky — plus that the first Take (a full
// bucket) is immediate.
func TestPacerHoldsRate(t *testing.T) {
	p := NewPacer(10000) // 10k edges/sec
	start := time.Now()
	p.Take(100) // burst allowance: immediate
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("first take should ride the burst, took %v", d)
	}
	for i := 0; i < 20; i++ {
		p.Take(100) // 2000 more edges at 10k/s >= ~150ms after burst credit
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("2100 edges at 10k/s finished in %v, pacing not applied", d)
	}
}

func TestPacerSetRateUnblocks(t *testing.T) {
	p := NewPacer(1) // 1 edge/sec: a 100-edge take would wait ~100s
	done := make(chan struct{})
	go func() {
		p.Take(5)
		p.Take(100)
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	p.SetRate(0)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("SetRate(0) did not unblock a waiting Take")
	}
}
