package workload

import (
	"math/rand"
	"sort"
	"testing"
)

func TestPreferentialAttachmentSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := PreferentialAttachment(5000, 1000, 10, 10, 0.6, rng)
	if in.System.M() != 1000 || in.System.N != 5000 {
		t.Fatalf("dims m=%d n=%d", in.System.M(), in.System.N)
	}
	freq := in.System.ElementFrequencies()
	sort.Sort(sort.Reverse(sort.IntSlice(freq)))
	// Cumulative advantage: the top element should be far above the
	// median nonzero frequency.
	nonzero := 0
	for _, f := range freq {
		if f > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("no elements at all")
	}
	median := freq[nonzero/2]
	if freq[0] < 5*median+5 {
		t.Errorf("frequency profile too flat: max %d, median %d", freq[0], median)
	}
}

func TestPreferentialAttachmentRichClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// rich outside [0,1] must clamp, not panic.
	in := PreferentialAttachment(100, 20, 3, 0, -1, rng)
	if in.System.M() != 20 {
		t.Fatal("clamped instance broken")
	}
	in2 := PreferentialAttachment(100, 20, 3, 2, 2, rng)
	if in2.System.Edges() < 20 {
		t.Fatal("rich=1 instance broken")
	}
}

func TestEmbeddedDSJStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := EmbeddedDSJ(5000, 600, 10, 100, 0.7, rng)
	if in.System.M() != 600 {
		t.Fatalf("m = %d, want 600", in.System.M())
	}
	// The needle set covers all gap elements.
	needleID := in.System.M() - 1 - 100 // base sets, then needle, then fringe
	needle := in.System.Sets[needleID]
	if len(needle) != 100 {
		t.Fatalf("needle has %d elements, want 100 (id %d)", len(needle), needleID)
	}
	// Fringe sets are singletons over the gap.
	for i := needleID + 1; i < in.System.M(); i++ {
		if len(in.System.Sets[i]) != 1 {
			t.Errorf("fringe set %d has %d elements", i, len(in.System.Sets[i]))
		}
	}
	// The recorded planted cover must be genuinely achievable.
	if cov := in.System.Coverage(in.PlantedIDs); cov < in.PlantedCoverage {
		t.Errorf("planted ids cover %d < recorded %d", cov, in.PlantedCoverage)
	}
	if len(in.PlantedIDs) > in.K {
		t.Errorf("planted %d ids > k", len(in.PlantedIDs))
	}
}

func TestEmbeddedDSJPanicsOnBadGap(t *testing.T) {
	for _, gap := range []int{0, 2500, 5000} {
		gap := gap
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("gapSize=%d accepted", gap)
				}
			}()
			EmbeddedDSJ(5000, 600, 10, gap, 0.7, rand.New(rand.NewSource(1)))
		}()
	}
}
