// Package workload generates the synthetic Max k-Cover instances used by
// tests, examples and the experiment harness. Every generator is seeded and
// deterministic, and — where the construction plants a known solution —
// records that solution so experiments can report true approximation
// ratios without exponential-time search.
//
// The planted families mirror the case analysis of the paper's oracle
// (Section 4): CommonHeavy exercises case I (many β-common elements,
// LargeCommon wins), PlantedLargeSets exercises case II (most of OPT's
// coverage from few large sets, LargeSet wins), and PlantedSmallSets
// exercises case III (many small sets, SmallSet wins). GraphNeighborhoods
// realizes the paper's footnote-2 motivation: sets are vertex
// neighborhoods of a directed graph, which arrive non-contiguously in any
// single edge orientation.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"streamcover/internal/setsystem"
)

// Instance is a generated Max k-Cover instance with provenance.
type Instance struct {
	Name   string
	System *setsystem.SetSystem
	K      int
	// PlantedIDs is a known good k-cover (nil if none was planted);
	// PlantedCoverage is its coverage. OPT >= PlantedCoverage always.
	PlantedIDs      []int
	PlantedCoverage int
}

// OptLowerBound returns the best known coverage: the planted solution if
// recorded, otherwise the greedy value (a (1-1/e)-approximation, so
// OPT <= OptLowerBound/(1-1/e)).
func (in *Instance) OptLowerBound() int {
	if in.PlantedIDs != nil {
		return in.PlantedCoverage
	}
	_, g := in.System.Greedy(in.K)
	return g
}

// Uniform draws m sets, each of size drawn uniformly in [1, 2·avgSize),
// with elements uniform over [0, n).
func Uniform(n, m, k, avgSize int, rng *rand.Rand) *Instance {
	validate(n, m, k)
	if avgSize < 1 {
		avgSize = 1
	}
	sets := make([][]uint32, m)
	for i := range sets {
		sz := 1 + rng.Intn(2*avgSize-1)
		sets[i] = randomSubset(n, sz, rng)
	}
	return &Instance{
		Name:   fmt.Sprintf("uniform(n=%d,m=%d,k=%d,avg=%d)", n, m, k, avgSize),
		System: setsystem.MustNew(n, sets),
		K:      k,
	}
}

// Zipf draws m sets whose sizes follow a power law with the given exponent
// (capped at maxSize) and whose elements are Zipf-popular, so a few
// elements appear in many sets — the skewed regime common in real set
// systems (information retrieval, blog-watch).
func Zipf(n, m, k int, exponent float64, maxSize int, rng *rand.Rand) *Instance {
	validate(n, m, k)
	if maxSize < 1 {
		maxSize = 1
	}
	if exponent < 1.01 {
		exponent = 1.01
	}
	elemZipf := rand.NewZipf(rng, exponent, 1, uint64(n-1))
	sets := make([][]uint32, m)
	for i := range sets {
		// Power-law set size via inverse transform on a Pareto tail.
		sz := int(math.Ceil(1.0 / math.Pow(1-rng.Float64(), 1/exponent)))
		if sz > maxSize {
			sz = maxSize
		}
		// Distinct draws kept in insertion order: ranging over the dedup
		// map would emit elements in Go's randomized map order, making the
		// stream differ between runs of the same seed.
		seen := make(map[uint32]struct{}, sz)
		for len(sets[i]) < sz {
			e := uint32(elemZipf.Uint64())
			if _, dup := seen[e]; dup {
				continue
			}
			seen[e] = struct{}{}
			sets[i] = append(sets[i], e)
		}
	}
	return &Instance{
		Name:   fmt.Sprintf("zipf(n=%d,m=%d,k=%d,s=%.2f)", n, m, k, exponent),
		System: setsystem.MustNew(n, sets),
		K:      k,
	}
}

// PlantedCover builds an instance whose optimum is known by construction:
// k disjoint planted sets jointly cover coverFrac·n elements; the other
// m-k sets are decoys of size decoySize drawn only from the planted sets'
// footprint (so they can never beat the planted cover; any k of them cover
// at most k·decoySize elements).
func PlantedCover(n, m, k int, coverFrac float64, decoySize int, rng *rand.Rand) *Instance {
	validate(n, m, k)
	if coverFrac <= 0 || coverFrac > 1 {
		panic(fmt.Sprintf("workload: coverFrac %v out of (0,1]", coverFrac))
	}
	covered := int(coverFrac * float64(n))
	if covered < k {
		covered = k
	}
	if covered > n {
		covered = n
	}
	perm := rng.Perm(n)
	sets := make([][]uint32, m)
	ids := make([]int, 0, k)
	// Planted sets partition the first `covered` permuted elements.
	for i := 0; i < k; i++ {
		lo, hi := i*covered/k, (i+1)*covered/k
		for _, e := range perm[lo:hi] {
			sets[i] = append(sets[i], uint32(e))
		}
		ids = append(ids, i)
	}
	if decoySize < 1 {
		decoySize = 1
	}
	if decoySize > covered {
		decoySize = covered
	}
	for i := k; i < m; i++ {
		for j := 0; j < decoySize; j++ {
			sets[i] = append(sets[i], uint32(perm[rng.Intn(covered)]))
		}
	}
	return &Instance{
		Name:            fmt.Sprintf("planted(n=%d,m=%d,k=%d,frac=%.2f)", n, m, k, coverFrac),
		System:          setsystem.MustNew(n, sets),
		K:               k,
		PlantedIDs:      ids,
		PlantedCoverage: covered,
	}
}

// PlantedLargeSets builds a case-II instance: `large` planted sets (large
// ≤ k) each covering covered/large elements dominate the optimal coverage,
// the remaining m-large sets are tiny decoys. Most of OPT's coverage comes
// from few, large sets — the regime where the heavy-hitter subroutine
// (LargeSet) must win.
func PlantedLargeSets(n, m, k, large int, coverFrac float64, rng *rand.Rand) *Instance {
	validate(n, m, k)
	if large < 1 || large > k {
		panic(fmt.Sprintf("workload: large=%d out of [1,k=%d]", large, k))
	}
	covered := int(coverFrac * float64(n))
	if covered < large {
		covered = large
	}
	if covered > n {
		covered = n
	}
	perm := rng.Perm(n)
	sets := make([][]uint32, m)
	ids := make([]int, 0, k)
	for i := 0; i < large; i++ {
		lo, hi := i*covered/large, (i+1)*covered/large
		for _, e := range perm[lo:hi] {
			sets[i] = append(sets[i], uint32(e))
		}
		ids = append(ids, i)
	}
	// Tiny decoys: singletons inside the planted footprint.
	for i := large; i < m; i++ {
		sets[i] = []uint32{uint32(perm[rng.Intn(covered)])}
		if len(ids) < k {
			ids = append(ids, i)
		}
	}
	return &Instance{
		Name:            fmt.Sprintf("largesets(n=%d,m=%d,k=%d,large=%d)", n, m, k, large),
		System:          setsystem.MustNew(n, sets),
		K:               k,
		PlantedIDs:      ids,
		PlantedCoverage: covered,
	}
}

// PlantedSmallSets builds a case-III instance: the optimal k-cover is k
// equal small sets, each contributing covered/k ≪ covered/(sα); no single
// set is large. Decoys duplicate planted sets' elements.
func PlantedSmallSets(n, m, k int, coverFrac float64, rng *rand.Rand) *Instance {
	// Same construction as PlantedCover, whose planted sets all have equal
	// contribution covered/k; with k large each contribution is small.
	in := PlantedCover(n, m, k, coverFrac, 1, rng)
	in.Name = fmt.Sprintf("smallsets(n=%d,m=%d,k=%d,frac=%.2f)", n, m, k, coverFrac)
	return in
}

// CommonHeavy builds a case-I instance: a pool of `commons` elements each
// appearing in a constant fraction of all m sets (β-common for small β),
// plus per-set private elements. Set sampling alone covers the commons.
func CommonHeavy(n, m, k, commons int, commonFrac float64, privates int, rng *rand.Rand) *Instance {
	validate(n, m, k)
	if commons < 0 || commons > n {
		panic(fmt.Sprintf("workload: commons=%d out of [0,n=%d]", commons, n))
	}
	sets := make([][]uint32, m)
	for i := range sets {
		for e := 0; e < commons; e++ {
			if rng.Float64() < commonFrac {
				sets[i] = append(sets[i], uint32(e))
			}
		}
		for j := 0; j < privates; j++ {
			sets[i] = append(sets[i], uint32(commons+rng.Intn(n-commons)))
		}
	}
	return &Instance{
		Name:   fmt.Sprintf("commonheavy(n=%d,m=%d,k=%d,commons=%d)", n, m, k, commons),
		System: setsystem.MustNew(n, sets),
		K:      k,
	}
}

// GraphNeighborhoods builds sets as out-neighborhoods of a random directed
// graph on `nodes` vertices with expected out-degree avgDeg: set i is
// N⁺(i) ⊆ U = vertex set. Max k-Cover here is the k most covering
// "influencer" selection; in an edge stream keyed by in-edges each set
// arrives scattered (footnote 2 of the paper).
func GraphNeighborhoods(nodes, k, avgDeg int, rng *rand.Rand) *Instance {
	validate(nodes, nodes, k)
	p := float64(avgDeg) / float64(nodes)
	if p > 1 {
		p = 1
	}
	sets := make([][]uint32, nodes)
	for u := 0; u < nodes; u++ {
		for v := 0; v < nodes; v++ {
			if u != v && rng.Float64() < p {
				sets[u] = append(sets[u], uint32(v))
			}
		}
	}
	return &Instance{
		Name:   fmt.Sprintf("graph(nodes=%d,k=%d,deg=%d)", nodes, k, avgDeg),
		System: setsystem.MustNew(nodes, sets),
		K:      k,
	}
}

func validate(n, m, k int) {
	if n < 1 || m < 1 || k < 1 {
		panic(fmt.Sprintf("workload: bad dims n=%d m=%d k=%d", n, m, k))
	}
}

// randomSubset draws sz distinct elements of [0, n) (or all n if sz >= n),
// in draw order. Insertion order is kept explicitly — collecting from the
// dedup map would order the subset by Go's randomized map iteration, and a
// same-seed rerun would then linearize a different stream.
func randomSubset(n, sz int, rng *rand.Rand) []uint32 {
	if sz >= n {
		out := make([]uint32, n)
		for i := range out {
			out[i] = uint32(i)
		}
		return out
	}
	seen := make(map[uint32]struct{}, sz)
	out := make([]uint32, 0, sz)
	for len(out) < sz {
		e := uint32(rng.Intn(n))
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	return out
}
