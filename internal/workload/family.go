package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// FamilyParams are the knobs shared across the named generator families.
// Zero values pick the same defaults cmd/kcovergen uses, so a scenario
// spec only states what it cares about.
type FamilyParams struct {
	N int // universe size
	M int // number of sets
	K int // cover budget

	Frac     float64 // planted coverage fraction (planted/largesets/smallsets)
	AvgSize  int     // uniform: mean set size
	Exponent float64 // zipf: power-law exponent
	MaxSize  int     // zipf: set size cap
	Large    int     // largesets: number of planted large sets
	Commons  int     // commonheavy: size of the common-element pool
	Privates int     // commonheavy: private elements per set
	AvgDeg   int     // graph: expected out-degree
	PerSet   int     // prefattach: elements per set
	Rich     float64 // prefattach: popularity-proportional probability
}

func (p FamilyParams) withDefaults() FamilyParams {
	if p.N == 0 {
		p.N = 20000
	}
	if p.M == 0 {
		p.M = 2000
	}
	if p.K == 0 {
		p.K = 40
	}
	if p.Frac == 0 {
		p.Frac = 0.8
	}
	if p.AvgSize == 0 {
		p.AvgSize = 20
	}
	if p.Exponent == 0 {
		p.Exponent = 1.5
	}
	if p.MaxSize == 0 {
		p.MaxSize = p.N / 10
	}
	if p.Large == 0 {
		p.Large = 2
	}
	if p.Commons == 0 {
		p.Commons = p.N / 50
	}
	if p.Privates == 0 {
		p.Privates = 3
	}
	if p.AvgDeg == 0 {
		p.AvgDeg = 10
	}
	if p.PerSet == 0 {
		p.PerSet = 15
	}
	if p.Rich == 0 {
		p.Rich = 0.6
	}
	return p
}

// Families lists the valid FromFamily names, sorted.
func Families() []string {
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

var families = map[string]func(FamilyParams, *rand.Rand) *Instance{
	"uniform": func(p FamilyParams, rng *rand.Rand) *Instance { return Uniform(p.N, p.M, p.K, p.AvgSize, rng) },
	"zipf":    func(p FamilyParams, rng *rand.Rand) *Instance { return Zipf(p.N, p.M, p.K, p.Exponent, p.MaxSize, rng) },
	"planted": func(p FamilyParams, rng *rand.Rand) *Instance { return PlantedCover(p.N, p.M, p.K, p.Frac, 5, rng) },
	"largesets": func(p FamilyParams, rng *rand.Rand) *Instance {
		return PlantedLargeSets(p.N, p.M, p.K, p.Large, p.Frac, rng)
	},
	"smallsets": func(p FamilyParams, rng *rand.Rand) *Instance { return PlantedSmallSets(p.N, p.M, p.K, p.Frac, rng) },
	"commonheavy": func(p FamilyParams, rng *rand.Rand) *Instance {
		return CommonHeavy(p.N, p.M, p.K, p.Commons, 0.3, p.Privates, rng)
	},
	"graph": func(p FamilyParams, rng *rand.Rand) *Instance { return GraphNeighborhoods(p.N, p.K, p.AvgDeg, rng) },
	"prefattach": func(p FamilyParams, rng *rand.Rand) *Instance {
		return PreferentialAttachment(p.N, p.M, p.K, p.PerSet, p.Rich, rng)
	},
}

// ValidFamily reports whether name is a known generator family.
func ValidFamily(name string) bool {
	_, ok := families[name]
	return ok
}

// FromFamily builds an instance of the named generator family. Every
// family draws only from rng, and every generator emits sets in a
// deterministic order, so the same (name, params, seed) triple reproduces
// the exact same instance — the contract the scenario harness's stream
// digest depends on.
func FromFamily(name string, p FamilyParams, rng *rand.Rand) (*Instance, error) {
	build, ok := families[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown family %q (have %v)", name, Families())
	}
	return build(p.withDefaults(), rng), nil
}
