package server

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streamcover"
	"streamcover/internal/fault"
	"streamcover/internal/snapshot"
	"streamcover/internal/stream"
	"streamcover/internal/wal"
	"streamcover/internal/wire"
)

// durability is one session's crash-safety state: a checkpoint snapshot
// of every worker estimator plus a WAL of the batches acknowledged since.
//
// The invariant tying the two together: an ingest holds pmu.RLock across
// its dedup update, WAL append and worker dispatch, and a checkpoint
// holds pmu.Lock while it reads the WAL position, copies the dedup map
// and enqueues clone requests on every worker queue. Everything logged at
// or below the recorded position is therefore already in the queues ahead
// of the clone requests, so the snapshot contains exactly the WAL prefix
// it claims to — recovery restores the snapshot and replays only the tail.
type durability struct {
	dir string
	wal *wal.Log
	fs  fault.FS // filesystem checkpoints write through (faults injectable)

	pmu    sync.RWMutex // ingest RLock / checkpoint Lock
	ckptMu sync.Mutex   // serializes whole checkpoints (ticker, HTTP, shutdown)

	// appendFn, when non-nil, replaces wal.Append on the overlapped ingest
	// path. Tests inject stalls (to prove the ack waits for durability) and
	// failures (to prove a failed append poisons the session).
	appendFn func(rec []byte) (uint64, error)

	lastCkptNanos atomic.Int64  // wall clock of the last completed checkpoint
	ckptPos       atomic.Uint64 // last WAL position folded into the snapshot
}

const checkpointFile = "checkpoint.scsn"

// sessionDirName maps a session name to a filesystem-safe directory name.
// Unsafe bytes are masked and an FNV-64a of the full name keeps distinct
// sessions distinct; the authoritative name lives inside the checkpoint.
func sessionDirName(name string) string {
	h := fnv.New64a()
	h.Write([]byte(name))
	safe := make([]byte, 0, 64)
	for i := 0; i < len(name) && len(safe) < 64; i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_':
			safe = append(safe, c)
		default:
			safe = append(safe, '_')
		}
	}
	return fmt.Sprintf("s-%s-%016x", safe, h.Sum64())
}

// openDurability prepares (or reopens) a session's data directory,
// sweeping any checkpoint temp files a crashed writer left behind.
func openDurability(dataDir, name string, segBytes int64, noSync bool, fsys fault.FS) (*durability, error) {
	if fsys == nil {
		fsys = fault.OS()
	}
	dir := filepath.Join(dataDir, sessionDirName(name))
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := snapshot.SweepTemps(fsys, dir, checkpointFile); err != nil {
		return nil, err
	}
	log, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{SegmentBytes: segBytes, NoSync: noSync, FS: fsys})
	if err != nil {
		return nil, err
	}
	return &durability{dir: dir, wal: log, fs: fsys}, nil
}

func (d *durability) close() {
	if d == nil {
		return
	}
	d.wal.Close()
}

// destroy closes the WAL and removes the session's data directory (the
// session was deleted; recovery must not resurrect it).
func (d *durability) destroy() {
	if d == nil {
		return
	}
	d.wal.Close()
	os.RemoveAll(d.dir)
}

// checkpointState is the decoded form of a checkpoint.scsn payload.
type checkpointState struct {
	name    string
	m, n, k int
	alpha   float64
	seed    int64
	walPos  uint64
	dedup   map[uint64]uint64
	parts   [][]byte // one sealed Estimator.Encode blob per worker
}

// encodeCheckpoint serializes a checkpoint payload (the caller seals it).
// Dedup entries are sorted by source so equal states encode equally.
func encodeCheckpoint(st checkpointState) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(st.name)))
	buf = append(buf, st.name...)
	buf = binary.AppendUvarint(buf, uint64(st.m))
	buf = binary.AppendUvarint(buf, uint64(st.n))
	buf = binary.AppendUvarint(buf, uint64(st.k))
	buf = binary.AppendUvarint(buf, math.Float64bits(st.alpha))
	buf = binary.AppendVarint(buf, st.seed)
	buf = binary.AppendUvarint(buf, st.walPos)
	sources := make([]uint64, 0, len(st.dedup))
	for src := range st.dedup {
		sources = append(sources, src)
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })
	buf = binary.AppendUvarint(buf, uint64(len(sources)))
	for _, src := range sources {
		buf = binary.AppendUvarint(buf, src)
		buf = binary.AppendUvarint(buf, st.dedup[src])
	}
	buf = binary.AppendUvarint(buf, uint64(len(st.parts)))
	for _, p := range st.parts {
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

// decodeCheckpoint parses a checkpoint payload.
func decodeCheckpoint(data []byte) (checkpointState, error) {
	var st checkpointState
	bad := func(what string) (checkpointState, error) {
		return st, fmt.Errorf("server: corrupt checkpoint: bad %s", what)
	}
	next := func() (uint64, bool) {
		v, w := binary.Uvarint(data)
		if w <= 0 {
			return 0, false
		}
		data = data[w:]
		return v, true
	}
	nameLen, ok := next()
	if !ok || nameLen > wire.MaxName || uint64(len(data)) < nameLen {
		return bad("name")
	}
	st.name = string(data[:nameLen])
	data = data[nameLen:]
	for _, dst := range []*int{&st.m, &st.n, &st.k} {
		v, ok := next()
		if !ok || v > 1<<31 {
			return bad("dims")
		}
		*dst = int(v)
	}
	alphaBits, ok := next()
	if !ok {
		return bad("alpha")
	}
	st.alpha = math.Float64frombits(alphaBits)
	seed, w := binary.Varint(data)
	if w <= 0 {
		return bad("seed")
	}
	data = data[w:]
	st.seed = seed
	if st.walPos, ok = next(); !ok {
		return bad("wal position")
	}
	nDedup, ok := next()
	if !ok || nDedup > uint64(len(data)) {
		return bad("dedup count")
	}
	st.dedup = make(map[uint64]uint64, nDedup)
	for i := uint64(0); i < nDedup; i++ {
		src, ok := next()
		if !ok {
			return bad("dedup source")
		}
		seq, ok := next()
		if !ok {
			return bad("dedup sequence")
		}
		if _, dup := st.dedup[src]; dup {
			return bad("duplicate dedup source")
		}
		st.dedup[src] = seq
	}
	nParts, ok := next()
	if !ok || nParts == 0 || nParts > 1<<16 {
		return bad("worker count")
	}
	st.parts = make([][]byte, 0, nParts)
	for i := uint64(0); i < nParts; i++ {
		l, ok := next()
		if !ok || uint64(len(data)) < l {
			return bad("estimator blob")
		}
		st.parts = append(st.parts, data[:l])
		data = data[l:]
	}
	if len(data) != 0 {
		return bad("trailing bytes")
	}
	return st, nil
}

// checkpoint snapshots the session atomically: freeze ingest, record the
// WAL position and dedup map, enqueue a clone request behind every queued
// batch, unfreeze, then encode and write the snapshot off the ingest path
// and drop WAL segments the snapshot has subsumed.
//
// An evicted session needs no checkpoint — the checkpoint file on disk IS
// its entire state (eviction wrote it before stopping the workers), so the
// cadence ticker and CheckpointAll skip it rather than rehydrate it.
func (s *session) checkpoint(metrics *Metrics) error {
	s.resMu.RLock()
	defer s.resMu.RUnlock()
	if s.evicted {
		return nil
	}
	return s.checkpointLocked(metrics)
}

// checkpointLocked is checkpoint's body, for callers that already hold a
// side of resMu and know the session is hydrated (eviction holds the write
// side and checkpoints as its first step).
func (s *session) checkpointLocked(metrics *Metrics) error {
	d := s.dur
	if d == nil {
		return nil
	}
	if err := s.begin(); err != nil {
		return err
	}
	defer s.ops.Done()
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	start := time.Now()

	d.pmu.Lock()
	pos := d.wal.LastPos()
	s.dmu.Lock()
	dedup := make(map[uint64]uint64, len(s.dedup))
	for src, e := range s.dedup {
		// Under pmu.Lock no ingest is mid-flight, so every entry is
		// settled; only the sequence horizon goes into the snapshot.
		dedup[src] = e.seq
	}
	s.dmu.Unlock()
	replies := make([]chan cloneReply, len(s.workers))
	for i, ch := range s.workers {
		r := make(chan cloneReply, 1)
		replies[i] = r
		ch <- workerMsg{clone: r}
	}
	d.pmu.Unlock()

	parts := make([][]byte, len(replies))
	for i, r := range replies {
		rep := <-r
		if rep.err != nil {
			return rep.err
		}
		blob, err := rep.est.Encode()
		if err != nil {
			return err
		}
		parts[i] = blob
	}
	var encoded int64
	for _, p := range parts {
		encoded += int64(len(p))
	}
	payload := encodeCheckpoint(checkpointState{
		name: s.name, m: s.m, n: s.n, k: s.k, alpha: s.alpha, seed: s.seed,
		walPos: pos, dedup: dedup, parts: parts,
	})
	if err := snapshot.WriteFileFS(d.fs, filepath.Join(d.dir, checkpointFile), payload); err != nil {
		return err
	}
	if err := d.wal.TruncateBefore(pos + 1); err != nil {
		return err
	}
	d.ckptPos.Store(pos)
	d.lastCkptNanos.Store(time.Now().UnixNano())
	// The summed estimator blobs are the session's real serialized size —
	// the budget the overseer charges it against while hydrated.
	s.setResidentBytes(encoded)
	if metrics != nil {
		metrics.Checkpoints.Add(1)
		metrics.CheckpointNanos.Add(time.Since(start).Nanoseconds())
	}
	return nil
}

// recoverSession rebuilds one session from its data directory: decode the
// checkpoint into per-worker estimators, then replay the WAL tail through
// the same shard-and-batch path the live server uses. Returns nil (no
// error) for directories without a checkpoint — a crash between directory
// creation and the initial checkpoint left nothing acknowledged to lose.
// Checkpoint temp files orphaned by a crash mid-write are swept first.
func recoverSession(dir string, cfg Config, metrics *Metrics) (*session, error) {
	fsys := cfg.FS
	if fsys == nil {
		fsys = fault.OS()
	}
	if _, err := snapshot.SweepTemps(fsys, dir, checkpointFile); err != nil {
		return nil, fmt.Errorf("server: %s: %w", dir, err)
	}
	st, ok, err := loadCheckpoint(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("server: %s: %w", dir, err)
	}
	if !ok {
		return nil, nil
	}
	ests, err := estimatorsFromCheckpoint(st, cfg)
	if err != nil {
		return nil, fmt.Errorf("server: %s: %w", dir, err)
	}
	log, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{SegmentBytes: cfg.WALSegmentBytes, NoSync: cfg.WALNoSync, FS: fsys})
	if err != nil {
		return nil, fmt.Errorf("server: %s: %w", dir, err)
	}
	if err := replayTail(log, &st, ests, metrics); err != nil {
		log.Close()
		return nil, fmt.Errorf("server: %s: wal replay: %w", dir, err)
	}
	d := &durability{dir: dir, wal: log, fs: fsys}
	d.ckptPos.Store(st.walPos)
	d.lastCkptNanos.Store(time.Now().UnixNano())
	sess := newSessionWith(st.name, st.m, st.n, st.k, st.alpha, st.seed, cfg.QueueDepth, metrics, ests)
	sess.dur = d
	if cfg.RetryMin > 0 {
		sess.retryMin = cfg.RetryMin
	}
	if cfg.RetryMax > 0 {
		sess.retryMax = cfg.RetryMax
	}
	sess.dedup = make(map[uint64]dedupEntry, len(st.dedup))
	for src, seq := range st.dedup {
		sess.dedup[src] = dedupEntry{seq: seq}
	}
	var total int64
	for _, est := range ests {
		total += int64(est.Edges())
	}
	sess.edges.Store(total)
	// Seed the resident footprint from the snapshot we just restored; the
	// caller attaches the overseer (none exists yet here) and folds this
	// into the budget total.
	var encoded int64
	for _, p := range st.parts {
		encoded += int64(len(p))
	}
	sess.residentBytes.Store(encoded)
	return sess, nil
}

// loadCheckpoint reads and decodes a session directory's checkpoint.
// ok=false (no error) means the directory has none — a crash between
// directory creation and the initial checkpoint.
func loadCheckpoint(fsys fault.FS, dir string) (checkpointState, bool, error) {
	payload, err := snapshot.ReadFileFS(fsys, filepath.Join(dir, checkpointFile))
	if os.IsNotExist(err) {
		return checkpointState{}, false, nil
	}
	if err != nil {
		return checkpointState{}, false, err
	}
	st, err := decodeCheckpoint(payload)
	if err != nil {
		return checkpointState{}, false, err
	}
	return st, true, nil
}

// replayTail replays the WAL tail past st.walPos into ests through the
// same shard-and-batch path the live server uses, advancing st.dedup to
// the replayed horizon. Shared by crash recovery and rehydration: an
// evicted session's parked WAL replays through the identical code, so a
// rehydrated estimator is bit-identical to one that was never evicted.
func replayTail(log *wal.Log, st *checkpointState, ests []*streamcover.Estimator, metrics *Metrics) error {
	start := time.Now()
	var batches, edgesReplayed int64
	var cols stream.Columns // reused decode arena across the whole tail
	err := log.Replay(st.walPos+1, func(pos uint64, rec []byte) error {
		source, seq, err := decodeWALRecord(rec, st.name, st.m, st.n, &cols)
		if err != nil {
			return fmt.Errorf("record %d: %w", pos, err)
		}
		if source != 0 {
			if seq <= st.dedup[source] {
				return nil // duplicate was logged and skipped live, skip again
			}
			st.dedup[source] = seq
		}
		replayBatch(ests, cols.Sets, cols.Elems)
		batches++
		edgesReplayed += int64(cols.Len())
		return nil
	})
	if err != nil {
		return err
	}
	if metrics != nil {
		metrics.ReplayBatches.Add(batches)
		metrics.ReplayEdges.Add(edgesReplayed)
		metrics.ReplayNanos.Add(time.Since(start).Nanoseconds())
	}
	return nil
}

// estimatorsFromCheckpoint decodes a checkpoint's per-worker estimator
// parts into this server's worker layout. The snapshot is per-worker:
// with the same worker count the restored state is bit-identical to the
// uninterrupted one; with a different count, everything merges into one
// worker and fresh same-seed estimators absorb the future shards (still
// a correct summary — the query path merges all workers anyway).
// Parallelism is an execution knob the snapshot deliberately omits; this
// server's setting is applied to every decoded part.
func estimatorsFromCheckpoint(st checkpointState, cfg Config) ([]*streamcover.Estimator, error) {
	ests := make([]*streamcover.Estimator, 0, len(st.parts))
	for i, part := range st.parts {
		est, err := streamcover.DecodeEstimator(part)
		if err != nil {
			return nil, fmt.Errorf("worker %d: %w", i, err)
		}
		est.SetParallelism(cfg.EngineWorkers)
		est.SetInternArena(cfg.arena)
		ests = append(ests, est)
	}
	if cfg.Workers != len(ests) {
		merged := ests[0]
		for _, est := range ests[1:] {
			if err := merged.Merge(est); err != nil {
				return nil, fmt.Errorf("merging snapshot parts: %w", err)
			}
		}
		ests = make([]*streamcover.Estimator, cfg.Workers)
		ests[0] = merged
		for i := 1; i < cfg.Workers; i++ {
			est, err := streamcover.NewEstimator(st.m, st.n, st.k, st.alpha,
				streamcover.WithSeed(st.seed), streamcover.WithParallelism(cfg.EngineWorkers))
			if err != nil {
				return nil, err
			}
			est.SetInternArena(cfg.arena)
			ests[i] = est
		}
	}
	return ests, nil
}

// decodeWALRecord parses one logged batch into cols: a frame-type byte
// followed by the original wire payload, whose blob may carry either the
// row or the columnar layout (the fused decoder sniffs the magic; a WAL
// may mix both, since it stores payloads verbatim). source is 0 for
// unsequenced batches.
func decodeWALRecord(rec []byte, wantName string, wantM, wantN int, cols *stream.Columns) (source, seq uint64, err error) {
	if len(rec) == 0 {
		return 0, 0, fmt.Errorf("empty record")
	}
	var name string
	var m, n int
	switch rec[0] {
	case wire.TIngest:
		name, m, n, err = wire.DecodeIngestInto(rec[1:], cols)
	case wire.TIngestSeq:
		name, source, seq, m, n, err = wire.DecodeIngestSeqInto(rec[1:], cols)
	default:
		return 0, 0, fmt.Errorf("unknown record type 0x%02x", rec[0])
	}
	if err != nil {
		return 0, 0, err
	}
	if name != wantName || m != wantM || n != wantN {
		return 0, 0, fmt.Errorf("record for session %q dims (%d,%d), want %q (%d,%d)",
			name, m, n, wantName, wantM, wantN)
	}
	return source, seq, nil
}

// replayBatch applies one batch synchronously with exactly the sharding
// the live dispatch path uses, so a recovered worker sees the same edge
// sequence it would have seen without the crash.
func replayBatch(ests []*streamcover.Estimator, sets, elems []uint32) {
	w := len(ests)
	shards := make([]colShard, w)
	for j, set := range sets {
		i := int(splitmix64(uint64(set)<<32|uint64(elems[j])) % uint64(w))
		shards[i].sets = append(shards[i].sets, set)
		shards[i].elems = append(shards[i].elems, elems[j])
	}
	for i := range shards {
		if len(shards[i].sets) > 0 {
			ests[i].ProcessColumns(shards[i].sets, shards[i].elems)
		}
	}
}
