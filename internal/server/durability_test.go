package server_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"streamcover"
	"streamcover/internal/client"
	"streamcover/internal/server"
)

const (
	durM     = 200
	durN     = 2000
	durK     = 5
	durAlpha = 4.0
	durSeed  = int64(7)
)

func durEdges(seed int64, count int) []streamcover.Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]streamcover.Edge, count)
	for i := range edges {
		// Zipf-ish skew so some sets are much larger than others.
		set := uint32(rng.Intn(durM))
		if rng.Intn(3) == 0 {
			set = uint32(rng.Intn(durM / 10))
		}
		edges[i] = streamcover.Edge{Set: set, Elem: uint32(rng.Intn(durN))}
	}
	return edges
}

func startDurServer(t *testing.T, cfg server.Config, addr string) *server.Server {
	t.Helper()
	s := server.New(cfg)
	if err := s.Start(addr, ""); err != nil {
		t.Fatal(err)
	}
	return s
}

func dialDur(t *testing.T, addr string, opts ...client.Option) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func createDur(t *testing.T, c *client.Client, name string) *client.Session {
	t.Helper()
	sess, err := c.Create(name, durM, durN, durK, durAlpha, durSeed)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func sendAll(t *testing.T, sess *client.Session, edges []streamcover.Edge) {
	t.Helper()
	if err := sess.Send(edges); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
}

// referenceResult runs the same stream against an uninterrupted in-memory
// server with the same worker count and returns its final answer.
func referenceResult(t *testing.T, workers int, edges []streamcover.Edge) client.Result {
	t.Helper()
	s := startDurServer(t, server.Config{Workers: workers, QueueDepth: 8}, "127.0.0.1:0")
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	c := dialDur(t, s.TCPAddr().String(), client.WithBatchSize(512))
	sess := createDur(t, c, "ref")
	sendAll(t, sess, edges)
	res, err := sess.Query()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func requireSameResult(t *testing.T, got, want client.Result, what string) {
	t.Helper()
	if got.Edges != want.Edges {
		t.Fatalf("%s: %d edges, want %d", what, got.Edges, want.Edges)
	}
	if got.Coverage != want.Coverage {
		t.Fatalf("%s: coverage %v, want bit-identical %v", what, got.Coverage, want.Coverage)
	}
	if got.Feasible != want.Feasible || !reflect.DeepEqual(got.SetIDs, want.SetIDs) {
		t.Fatalf("%s: (%v, %v), want (%v, %v)", what, got.Feasible, got.SetIDs, want.Feasible, want.SetIDs)
	}
	if got.SpaceWords != want.SpaceWords {
		t.Fatalf("%s: %d space words, want %d", what, got.SpaceWords, want.SpaceWords)
	}
}

// TestCrashRecoveryBitIdentical is the core durability contract: SIGKILL
// semantics (Abort: no checkpoint, no drain) after a checkpoint plus a
// WAL tail must recover to a state whose future outputs are bit-identical
// to a daemon that never crashed. WALNoSync is safe here because an
// in-process crash loses no page cache.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{
		Workers: 3, QueueDepth: 8,
		DataDir: dir, CheckpointEvery: -1, WALNoSync: true,
	}
	edges := durEdges(1, 20000)

	s1 := startDurServer(t, cfg, "127.0.0.1:0")
	c1 := dialDur(t, s1.TCPAddr().String(), client.WithBatchSize(512))
	sess1 := createDur(t, c1, "crash")
	sendAll(t, sess1, edges[:8000])
	if err := s1.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	// These batches live only in the WAL tail past the checkpoint.
	sendAll(t, sess1, edges[8000:14000])
	c1.Close()
	s1.Abort()

	s2 := startDurServer(t, cfg, "127.0.0.1:0")
	defer s2.Abort()
	if got := s2.Metrics().ReplayBatches.Load(); got == 0 {
		t.Fatal("recovery replayed no WAL batches")
	}
	c2 := dialDur(t, s2.TCPAddr().String(), client.WithBatchSize(512))
	sess2 := createDur(t, c2, "crash") // idempotent against the recovered session
	sendAll(t, sess2, edges[14000:])
	got, err := sess2.Query()
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, referenceResult(t, cfg.Workers, edges), "recovered estimate")
}

// TestShutdownCheckpointRecovery: a graceful shutdown checkpoints, so a
// restart recovers from the snapshot alone — zero WAL replay — and still
// answers bit-identically.
func TestShutdownCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{
		Workers: 2, QueueDepth: 8,
		DataDir: dir, CheckpointEvery: -1, WALNoSync: true,
	}
	edges := durEdges(2, 12000)

	s1 := startDurServer(t, cfg, "127.0.0.1:0")
	c1 := dialDur(t, s1.TCPAddr().String(), client.WithBatchSize(1024))
	sess1 := createDur(t, c1, "graceful")
	sendAll(t, sess1, edges[:9000])
	c1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	s2 := startDurServer(t, cfg, "127.0.0.1:0")
	defer s2.Abort()
	if got := s2.Metrics().ReplayBatches.Load(); got != 0 {
		t.Fatalf("replayed %d batches after a graceful shutdown, want 0", got)
	}
	c2 := dialDur(t, s2.TCPAddr().String(), client.WithBatchSize(1024))
	sess2 := createDur(t, c2, "graceful")
	sendAll(t, sess2, edges[9000:])
	got, err := sess2.Query()
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, referenceResult(t, cfg.Workers, edges), "post-shutdown estimate")
}

// TestCrashRestartWithReconnectingClient drives the full loop one level
// up: the daemon dies mid-conversation and a WithReconnect client rides
// through the restart on the same address, resending what was never
// acknowledged. The final count and estimate must match an uninterrupted
// run exactly (exactly-once ingestion).
func TestCrashRestartWithReconnectingClient(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{
		Workers: 2, QueueDepth: 8,
		DataDir: dir, CheckpointEvery: -1, WALNoSync: true,
	}
	edges := durEdges(3, 16000)

	s1 := startDurServer(t, cfg, "127.0.0.1:0")
	addr := s1.TCPAddr().String()
	c := dialDur(t, addr,
		client.WithBatchSize(256), client.WithMaxPending(4),
		client.WithReconnect(40), client.WithBackoff(5*time.Millisecond, 50*time.Millisecond))
	sess := createDur(t, c, "ride")
	sendAll(t, sess, edges[:6000])
	s1.Abort()
	// Restart on the same port while the client is mid-stream; its
	// redial loop outlives the gap.
	s2 := startDurServer(t, cfg, addr)
	defer s2.Abort()
	sendAll(t, sess, edges[6000:])
	got, err := sess.Query()
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, referenceResult(t, cfg.Workers, edges), "post-restart estimate")
}

// TestSequencedDedupInMemory: replay protection works without a data dir
// too — a duplicated (source, seq) batch is acknowledged but not applied.
func TestSequencedDedupInMemory(t *testing.T) {
	s := startDurServer(t, server.Config{Workers: 2, QueueDepth: 4}, "127.0.0.1:0")
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	edges := durEdges(4, 3000)
	// Two clients with distinct sources feeding one session: each client's
	// sequences dedup independently.
	cA := dialDur(t, s.TCPAddr().String(), client.WithBatchSize(500))
	cB := dialDur(t, s.TCPAddr().String(), client.WithBatchSize(500))
	sessA := createDur(t, cA, "dedup")
	sessB := createDur(t, cB, "dedup")
	sendAll(t, sessA, edges[:1500])
	sendAll(t, sessB, edges[1500:])
	if got := s.Metrics().EdgesIngested.Load(); got != int64(len(edges)) {
		t.Fatalf("server ingested %d edges, want %d", got, len(edges))
	}
	res, err := sessA.Query()
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != len(edges) {
		t.Fatalf("query saw %d edges, want %d", res.Edges, len(edges))
	}
}
