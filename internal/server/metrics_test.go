package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"streamcover"
	"streamcover/internal/client"
	"streamcover/internal/server"
)

// TestMetricsLatencyPercentiles drives a few batches and a query through a
// live server and asserts that /metrics carries the derived server-side
// p50/p95/p99 for both the ingest and query histograms, plus the raw
// power-of-two buckets the kcoverload collector scrapes.
func TestMetricsLatencyPercentiles(t *testing.T) {
	s := server.New(server.Config{Workers: 2, QueueDepth: 8})
	if err := s.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Abort()

	c, err := client.Dial(s.TCPAddr().String(), client.WithBatchSize(64))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create("hist", 64, 512, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]streamcover.Edge, 512)
	for i := range edges {
		edges[i] = streamcover.Edge{Set: uint32(i % 64), Elem: uint32(i % 512)}
	}
	if err := sess.Send(edges); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", s.HTTPAddr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Counters       map[string]int64 `json:"counters"`
		LatencyBuckets map[string]struct {
			Uppers []int64 `json:"uppers"`
			Counts []int64 `json:"counts"`
		} `json:"latency_buckets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"ingest_batch_p50_nanos", "ingest_batch_p95_nanos", "ingest_batch_p99_nanos",
		"query_merge_p50_nanos", "query_merge_p95_nanos", "query_merge_p99_nanos",
	} {
		if out.Counters[key] <= 0 {
			t.Errorf("counter %s = %d, want > 0", key, out.Counters[key])
		}
	}
	if out.Counters["ingest_batch_p50_nanos"] > out.Counters["ingest_batch_p99_nanos"] {
		t.Error("ingest p50 > p99")
	}
	for _, name := range []string{"ingest_batch_nanos", "query_merge_nanos"} {
		h, ok := out.LatencyBuckets[name]
		if !ok || len(h.Uppers) == 0 || len(h.Uppers) != len(h.Counts) {
			t.Errorf("latency_buckets[%s] missing or malformed: %+v", name, h)
		}
	}
}
