package server

import (
	"sync/atomic"
	"time"

	"streamcover/internal/phist"
)

// Metrics are plain expvar-style counters updated with atomics on the hot
// path and snapshotted by the /metrics HTTP handler, plus two
// power-of-two-bucketed latency histograms (per-worker batch processing
// and query merge+finalize) whose derived p50/p95/p99 let operators — and
// the kcoverload collector — read percentile latency server-side instead
// of inferring it from averages. The snapshot derives ingest edges/sec
// from the edge counter and the server's uptime.
type Metrics struct {
	EdgesIngested  atomic.Int64
	Batches        atomic.Int64
	Queries        atomic.Int64
	Conns          atomic.Int64 // currently open TCP connections
	ConnsTotal     atomic.Int64
	Frames         atomic.Int64 // frames handled (all types)
	Errors         atomic.Int64 // error responses sent
	MergeNanos     atomic.Int64 // cumulative query merge+finalize time
	LastMergeNanos atomic.Int64

	// Batched-ingest latency, measured around each worker's ProcessBatch
	// call (post-shard, so one wire batch contributes one sample per
	// worker that received a shard of it).
	BatchesProcessed atomic.Int64
	BatchNanos       atomic.Int64 // cumulative worker batch-processing time
	LastBatchNanos   atomic.Int64

	// Durability counters. DupBatches counts sequenced batches dropped by
	// (source, seq) dedup — a reconnecting client resending unacked work.
	// The replay counters cover WAL tail replay during crash recovery.
	DupBatches      atomic.Int64
	Checkpoints     atomic.Int64
	CheckpointNanos atomic.Int64
	ReplayBatches   atomic.Int64
	ReplayEdges     atomic.Int64
	ReplayNanos     atomic.Int64

	// Failure handling. WALAppendFailures and CheckpointFailures count
	// durability faults; DegradedSessions and DiskFullSessions are live
	// gauges (any DiskFullSessions > 0 puts the whole server in read-only
	// mode); DurabilityRecoveries counts degraded sessions brought back to
	// healthy in place. BusyRejects counts transient (retryable) ingest
	// rejections sent while degraded or read-only, and DeadlineReaps
	// counts connections closed by the server's read/write deadlines.
	WALAppendFailures    atomic.Int64
	CheckpointFailures   atomic.Int64
	DurabilityRecoveries atomic.Int64
	DegradedSessions     atomic.Int64
	DiskFullSessions     atomic.Int64
	BusyRejects          atomic.Int64
	DeadlineReaps        atomic.Int64

	// Cluster replication. RepStreams is a live gauge of open shipping
	// streams (leader side); the applied counters cover the follower side;
	// StaleRejects counts follower reads bounced for exceeding the
	// client's staleness bound.
	RepStreams        atomic.Int64
	RepEntriesApplied atomic.Int64
	RepEdgesApplied   atomic.Int64
	RepBootstraps     atomic.Int64
	RepPromotions     atomic.Int64
	StaleRejects      atomic.Int64

	// Oversubscription (see oversub.go). EvictionsTotal counts sessions
	// parked at their checkpoints; RehydrationsTotal counts them brought
	// back (RehydrationNanos is the cumulative wall time). RehydrateRejects
	// counts wakers bounced by the admission gate, QuotaRejects ingests
	// bounced by the per-session quota, OrphansSwept checkpoint-less
	// session directories reclaimed at startup.
	EvictionsTotal    atomic.Int64
	RehydrationsTotal atomic.Int64
	RehydrationNanos  atomic.Int64
	RehydrateRejects  atomic.Int64
	QuotaRejects      atomic.Int64
	OrphansSwept      atomic.Int64

	// Latency histograms. IngestHist records each worker's per-shard
	// ProcessBatch time; QueryHist records each query's merge+finalize
	// time; RehydrateHist each checkpoint-restore + tail-replay. All in
	// nanoseconds.
	IngestHist    phist.Hist
	QueryHist     phist.Hist
	RehydrateHist phist.Hist

	start time.Time // set by Server.New; anchors the edges/sec rate
}

// snapshot flattens the counters for JSON encoding, adding the derived
// ingest rate and mean per-batch latency.
func (m *Metrics) snapshot() map[string]int64 {
	s := map[string]int64{
		"edges_ingested":    m.EdgesIngested.Load(),
		"batches":           m.Batches.Load(),
		"queries":           m.Queries.Load(),
		"conns_open":        m.Conns.Load(),
		"conns_total":       m.ConnsTotal.Load(),
		"frames":            m.Frames.Load(),
		"errors":            m.Errors.Load(),
		"merge_nanos":       m.MergeNanos.Load(),
		"last_merge_nanos":  m.LastMergeNanos.Load(),
		"batches_processed": m.BatchesProcessed.Load(),
		"batch_nanos":       m.BatchNanos.Load(),
		"last_batch_nanos":  m.LastBatchNanos.Load(),
		"dup_batches":       m.DupBatches.Load(),
		"checkpoints":       m.Checkpoints.Load(),
		"checkpoint_nanos":  m.CheckpointNanos.Load(),
		"replay_batches":    m.ReplayBatches.Load(),
		"replay_edges":      m.ReplayEdges.Load(),
		"replay_nanos":      m.ReplayNanos.Load(),

		"wal_append_failures":   m.WALAppendFailures.Load(),
		"checkpoint_failures":   m.CheckpointFailures.Load(),
		"durability_recoveries": m.DurabilityRecoveries.Load(),
		"degraded_sessions":     m.DegradedSessions.Load(),
		"disk_full_sessions":    m.DiskFullSessions.Load(),
		"busy_rejects":          m.BusyRejects.Load(),
		"deadline_reaps":        m.DeadlineReaps.Load(),

		"rep_streams":         m.RepStreams.Load(),
		"rep_entries_applied": m.RepEntriesApplied.Load(),
		"rep_edges_applied":   m.RepEdgesApplied.Load(),
		"rep_bootstraps":      m.RepBootstraps.Load(),
		"rep_promotions":      m.RepPromotions.Load(),
		"stale_rejects":       m.StaleRejects.Load(),

		"evictions_total":    m.EvictionsTotal.Load(),
		"rehydrations_total": m.RehydrationsTotal.Load(),
		"rehydration_nanos":  m.RehydrationNanos.Load(),
		"rehydrate_rejects":  m.RehydrateRejects.Load(),
		"quota_rejects":      m.QuotaRejects.Load(),
		"orphans_swept":      m.OrphansSwept.Load(),
	}
	if n := m.ReplayNanos.Load(); n > 0 {
		s["replay_edges_per_sec"] = int64(float64(m.ReplayEdges.Load()) / (float64(n) / 1e9))
	}
	if n := m.BatchesProcessed.Load(); n > 0 {
		s["avg_batch_nanos"] = m.BatchNanos.Load() / n
	} else {
		s["avg_batch_nanos"] = 0
	}
	if m.IngestHist.Count() > 0 {
		s["ingest_batch_p50_nanos"] = m.IngestHist.Quantile(0.50)
		s["ingest_batch_p95_nanos"] = m.IngestHist.Quantile(0.95)
		s["ingest_batch_p99_nanos"] = m.IngestHist.Quantile(0.99)
	}
	if m.QueryHist.Count() > 0 {
		s["query_merge_p50_nanos"] = m.QueryHist.Quantile(0.50)
		s["query_merge_p95_nanos"] = m.QueryHist.Quantile(0.95)
		s["query_merge_p99_nanos"] = m.QueryHist.Quantile(0.99)
	}
	if m.RehydrateHist.Count() > 0 {
		s["rehydration_p50_nanos"] = m.RehydrateHist.Quantile(0.50)
		s["rehydration_p95_nanos"] = m.RehydrateHist.Quantile(0.95)
		s["rehydration_p99_nanos"] = m.RehydrateHist.Quantile(0.99)
	}
	if !m.start.IsZero() {
		up := time.Since(m.start)
		s["uptime_seconds"] = int64(up.Seconds())
		if up > 0 {
			s["ingest_edges_per_sec"] = int64(float64(m.EdgesIngested.Load()) / up.Seconds())
		}
	}
	return s
}
