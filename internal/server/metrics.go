package server

import "sync/atomic"

// Metrics are plain expvar-style counters updated with atomics on the hot
// path and snapshotted by the /metrics HTTP handler. No histogram
// machinery: edges, batches, queries, connection counts, and merge
// latency (total + last) cover the questions a dashboard asks of an
// ingest daemon.
type Metrics struct {
	EdgesIngested  atomic.Int64
	Batches        atomic.Int64
	Queries        atomic.Int64
	Conns          atomic.Int64 // currently open TCP connections
	ConnsTotal     atomic.Int64
	Frames         atomic.Int64 // frames handled (all types)
	Errors         atomic.Int64 // error responses sent
	MergeNanos     atomic.Int64 // cumulative query merge+finalize time
	LastMergeNanos atomic.Int64
}

// snapshot flattens the counters for JSON encoding.
func (m *Metrics) snapshot() map[string]int64 {
	return map[string]int64{
		"edges_ingested":   m.EdgesIngested.Load(),
		"batches":          m.Batches.Load(),
		"queries":          m.Queries.Load(),
		"conns_open":       m.Conns.Load(),
		"conns_total":      m.ConnsTotal.Load(),
		"frames":           m.Frames.Load(),
		"errors":           m.Errors.Load(),
		"merge_nanos":      m.MergeNanos.Load(),
		"last_merge_nanos": m.LastMergeNanos.Load(),
	}
}
