package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"streamcover"
	"streamcover/internal/client"
	"streamcover/internal/server"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// startServer launches a server on loopback ports and tears it down with
// the test.
func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	s := server.New(cfg)
	if err := s.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

// plantedStream generates a deterministic shuffled workload.
func plantedStream(seed int64) (edges []streamcover.Edge, m, n, k int) {
	rng := rand.New(rand.NewSource(seed))
	in := workload.PlantedCover(6000, 600, 15, 0.8, 5, rng)
	raw := stream.Linearize(in.System, stream.Shuffled, rng).Edges()
	edges = make([]streamcover.Edge, len(raw))
	for i, e := range raw {
		edges[i] = streamcover.Edge(e)
	}
	return edges, in.System.M(), in.System.N, in.K
}

// reference runs the same-seed in-process estimator over the whole stream.
func reference(t *testing.T, edges []streamcover.Edge, m, n, k int, alpha float64, seed int64) streamcover.Result {
	t.Helper()
	est, err := streamcover.NewEstimator(m, n, k, alpha, streamcover.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := est.ProcessAll(edges); err != nil {
		t.Fatal(err)
	}
	return est.Result()
}

func TestEndToEndMatchesInProcess(t *testing.T) {
	const (
		alpha = 4.0
		seed  = int64(7)
	)
	s := startServer(t, server.Config{Workers: 4, QueueDepth: 8})
	edges, m, n, k := plantedStream(1)
	want := reference(t, edges, m, n, k, alpha, seed)

	c, err := client.Dial(s.TCPAddr().String(), client.WithBatchSize(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create("e2e", m, n, k, alpha, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Send(edges); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Query()
	if err != nil {
		t.Fatal(err)
	}
	if got.Edges != len(edges) {
		t.Errorf("server saw %d edges, want %d", got.Edges, len(edges))
	}
	if got.Coverage != want.Coverage || got.Feasible != want.Feasible {
		t.Errorf("server estimate (%v,%v) != in-process (%v,%v)",
			got.Coverage, got.Feasible, want.Coverage, want.Feasible)
	}
	if fmt.Sprint(got.SetIDs) != fmt.Sprint(want.SetIDs) {
		t.Errorf("server sets %v != in-process %v", got.SetIDs, want.SetIDs)
	}
}

// TestConcurrentClientsBitIdentical is the -race regression for the
// sharded ingest path: N goroutines, each with its own connection, feed
// disjoint shards of one stream into one session. The queried result must
// be bit-identical to a single same-seed in-process estimator over the
// concatenated stream (the merge semantics of internal/core/merge.go make
// the sharding transparent).
func TestConcurrentClientsBitIdentical(t *testing.T) {
	const (
		alpha   = 4.0
		seed    = int64(5)
		clients = 8
	)
	s := startServer(t, server.Config{Workers: 4, QueueDepth: 4})
	edges, m, n, k := plantedStream(2)
	want := reference(t, edges, m, n, k, alpha, seed)

	setup, err := client.Dial(s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	if _, err := setup.Create("shared", m, n, k, alpha, seed); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := client.Dial(s.TCPAddr().String(),
				client.WithBatchSize(256), client.WithMaxPending(4))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			sess, err := c.Create("shared", m, n, k, alpha, seed)
			if err != nil {
				errs <- err
				return
			}
			var shard []streamcover.Edge
			for i := ci; i < len(edges); i += clients {
				shard = append(shard, edges[i])
			}
			if err := sess.Send(shard); err != nil {
				errs <- err
				return
			}
			errs <- sess.Flush()
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	got, err := setup.Session("shared").Query()
	if err != nil {
		t.Fatal(err)
	}
	if got.Edges != len(edges) {
		t.Fatalf("server saw %d edges, want %d", got.Edges, len(edges))
	}
	if got.Coverage != want.Coverage || got.Feasible != want.Feasible {
		t.Errorf("sharded estimate (%v,%v) != in-process (%v,%v)",
			got.Coverage, got.Feasible, want.Coverage, want.Feasible)
	}
	if fmt.Sprint(got.SetIDs) != fmt.Sprint(want.SetIDs) {
		t.Errorf("sharded sets %v != in-process %v", got.SetIDs, want.SetIDs)
	}
}

// TestQueryDuringIngest exercises the snapshot path: queries interleave
// with ingest and must return monotonically growing edge counts without
// stalling either side.
func TestQueryDuringIngest(t *testing.T) {
	s := startServer(t, server.Config{Workers: 2, QueueDepth: 2})
	edges, m, n, k := plantedStream(3)

	c, err := client.Dial(s.TCPAddr().String(), client.WithBatchSize(512))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create("live", m, n, k, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := client.Dial(s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		prev := 0
		for i := 0; i < 20; i++ {
			res, err := q.Session("live").Query()
			if err != nil {
				t.Errorf("live query: %v", err)
				return
			}
			if res.Edges < prev {
				t.Errorf("edge count went backwards: %d -> %d", prev, res.Edges)
				return
			}
			prev = res.Edges
		}
	}()
	if err := sess.Send(edges); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	<-done
	res, err := sess.Query()
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != len(edges) {
		t.Errorf("final edge count %d, want %d", res.Edges, len(edges))
	}
}

func TestSessionLifecycleAndErrors(t *testing.T) {
	s := startServer(t, server.Config{Workers: 2})
	c, err := client.Dial(s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Ingest/query against a missing session fail.
	if _, err := c.Session("ghost").Query(); err == nil {
		t.Error("query of missing session succeeded")
	}

	sess, err := c.Create("a", 100, 1000, 5, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Idempotent re-create with identical params is fine…
	if _, err := c.Create("a", 100, 1000, 5, 4, 1); err != nil {
		t.Errorf("idempotent create failed: %v", err)
	}
	// …but differing params are rejected.
	if _, err := c.Create("a", 100, 1000, 5, 8, 1); err == nil {
		t.Error("conflicting create succeeded")
	}
	// Client-side validation rejects out-of-range edges.
	if err := sess.Send([]streamcover.Edge{{Set: 100, Elem: 0}}); err == nil {
		t.Error("out-of-range set accepted")
	}
	if err := sess.Send([]streamcover.Edge{{Set: 0, Elem: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := sess.CloseSession(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Session("a").Query(); err == nil {
		t.Error("query of closed session succeeded")
	}
	// Closing twice errors (already gone).
	if err := c.Session("a").CloseSession(); err == nil {
		t.Error("double close succeeded")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := startServer(t, server.Config{Workers: 2})
	edges, m, n, k := plantedStream(4)
	c, err := client.Dial(s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create("web", m, n, k, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Send(edges); err != nil {
		t.Fatal(err)
	}
	tcpRes, err := sess.Query()
	if err != nil {
		t.Fatal(err)
	}

	base := "http://" + s.HTTPAddr().String()
	getJSON := func(path string, v any) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}

	var q struct {
		Coverage float64  `json:"coverage"`
		Feasible bool     `json:"feasible"`
		SetIDs   []uint32 `json:"set_ids"`
		Edges    int      `json:"edges"`
	}
	getJSON("/query?session=web", &q)
	if q.Coverage != tcpRes.Coverage || q.Feasible != tcpRes.Feasible || q.Edges != len(edges) {
		t.Errorf("HTTP query %+v != TCP query %+v", q, tcpRes)
	}

	var sessions []struct {
		Name  string `json:"name"`
		M     int    `json:"m"`
		Edges int64  `json:"edges"`
	}
	getJSON("/sessions", &sessions)
	if len(sessions) != 1 || sessions[0].Name != "web" || sessions[0].M != m ||
		sessions[0].Edges != int64(len(edges)) {
		t.Errorf("sessions listing %+v", sessions)
	}

	var metrics struct {
		Counters    map[string]int64 `json:"counters"`
		QueueDepths map[string][]int `json:"queue_depths"`
	}
	getJSON("/metrics", &metrics)
	if metrics.Counters["edges_ingested"] != int64(len(edges)) {
		t.Errorf("metrics edges_ingested = %d, want %d",
			metrics.Counters["edges_ingested"], len(edges))
	}
	if metrics.Counters["queries"] < 2 { // one TCP, one HTTP
		t.Errorf("metrics queries = %d, want >= 2", metrics.Counters["queries"])
	}
	if _, ok := metrics.QueueDepths["web"]; !ok {
		t.Error("metrics missing queue depths for session web")
	}

	resp, err := http.Get(base + "/query?session=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing session: %s", resp.Status)
	}
}

func TestGracefulShutdown(t *testing.T) {
	s := server.New(server.Config{Workers: 2})
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	edges, m, n, k := plantedStream(5)
	c, err := client.Dial(s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create("bye", m, n, k, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Send(edges[:1000]); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
	if _, err := client.Dial(s.TCPAddr().String()); err == nil {
		// Accept loop is gone; a dial may connect (backlog) but the next
		// round trip must fail.
		c2, _ := client.Dial(s.TCPAddr().String())
		if c2 != nil {
			if _, err := c2.Create("x", 10, 10, 2, 2, 1); err == nil {
				t.Error("create succeeded after shutdown")
			}
			c2.Close()
		}
	}
}
