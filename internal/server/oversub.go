package server

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// ErrOverloaded marks transient capacity rejections from the
// oversubscription layer: a rehydration backlog (too many evicted sessions
// woke at once) or a failed rehydration attempt. Like ErrDegraded it maps
// to the typed retry response, so clients park the batch and resend
// instead of treating the session as dead.
var ErrOverloaded = errors.New("server overloaded")

// overseer is the session-memory governor (enabled by Config.MemBudget).
// It tracks the summed resident footprint of hydrated sessions — each
// charged its real serialized size, measured at its last checkpoint — and
// when the total exceeds the budget it evicts the coldest sessions down to
// their canonical checkpoints: checkpoint, stop the workers, free the
// estimators, park the WAL. The next operation on an evicted session
// rehydrates it through the crash-recovery path (snapshot restore + WAL
// tail replay), which makes rehydration bit-identical by construction. A
// bounded admission gate keeps a stampede of simultaneous rehydrations
// from blowing the budget the evictions just reclaimed: excess wakers get
// ErrOverloaded and retry.
type overseer struct {
	srv    *Server
	budget int64         // resident-bytes ceiling across all hydrated sessions
	quota  int64         // per-session resident ceiling (0: none)
	admit  chan struct{} // rehydration tokens (capacity = RehydrateConcurrency)

	// residentBytes is the hydrated total, maintained by
	// session.setResidentBytes from checkpoint encodes and evictions.
	residentBytes atomic.Int64

	metrics *Metrics
}

func newOverseer(srv *Server) *overseer {
	o := &overseer{
		srv:     srv,
		budget:  srv.cfg.MemBudget,
		quota:   srv.cfg.SessionQuota,
		admit:   make(chan struct{}, srv.cfg.RehydrateConcurrency),
		metrics: &srv.metrics,
	}
	for i := 0; i < cap(o.admit); i++ {
		o.admit <- struct{}{}
	}
	return o
}

// rehydrate brings an evicted session back to hydrated: decode the
// checkpoint into fresh worker estimators, replay the parked WAL's tail
// (empty unless a crash interleaved), restore the dedup horizons, restart
// the workers. Runs under the residency write lock, so every operation
// parked in beginResident resumes against the fully rebuilt worker set.
//
// Admission is non-blocking: with all tokens taken the caller gets a
// typed transient rejection rather than a queue of goroutines each
// holding decoded estimator state. A failure mid-rehydration leaves the
// session evicted (its checkpoint is untouched and remains the canonical
// state) and is likewise answered as transient — the next attempt retries
// from the same checkpoint.
func (o *overseer) rehydrate(s *session) error {
	select {
	case <-o.admit:
	default:
		o.metrics.RehydrateRejects.Add(1)
		return fmt.Errorf("server: %w: session %q rehydration backlog, retry", ErrOverloaded, s.name)
	}
	defer func() { o.admit <- struct{}{} }()

	s.resMu.Lock()
	if !s.evicted {
		s.resMu.Unlock()
		return nil // lost the race to another waker; it did the work
	}
	start := time.Now()
	d := s.dur
	st, ok, err := loadCheckpoint(d.fs, d.dir)
	if err == nil && !ok {
		err = errors.New("checkpoint missing")
	}
	if err != nil {
		s.resMu.Unlock()
		return fmt.Errorf("server: %w: session %q rehydration: %v", ErrOverloaded, s.name, err)
	}
	ests, err := estimatorsFromCheckpoint(st, o.srv.cfg)
	if err == nil {
		err = replayTail(d.wal, &st, ests, o.metrics)
	}
	if err != nil {
		for _, est := range ests {
			est.Close()
		}
		s.resMu.Unlock()
		return fmt.Errorf("server: %w: session %q rehydration: %v", ErrOverloaded, s.name, err)
	}
	s.dmu.Lock()
	s.dedup = make(map[uint64]dedupEntry, len(st.dedup))
	for src, seq := range st.dedup {
		s.dedup[src] = dedupEntry{seq: seq}
	}
	s.dmu.Unlock()
	var total int64
	for _, est := range ests {
		total += int64(est.Edges())
	}
	s.edges.Store(total)
	s.startWorkers(ests)
	s.evicted = false
	var encoded int64
	for _, p := range st.parts {
		encoded += int64(len(p))
	}
	s.setResidentBytes(encoded)
	s.rehydrations.Add(1)
	s.lastAccess.Store(time.Now().UnixNano())
	s.resMu.Unlock()

	nanos := time.Since(start).Nanoseconds()
	o.metrics.RehydrationsTotal.Add(1)
	o.metrics.RehydrationNanos.Add(nanos)
	o.metrics.RehydrateHist.Observe(nanos)
	// The wake may have pushed the hydrated total over budget; evict the
	// coldest sessions (not this one — its access clock was just touched).
	o.maybeEvict()
	return nil
}

// evict parks one session at its canonical checkpoint, reporting whether
// it did. The checkpoint (taken under the residency write lock, so no
// operation is in flight) captures estimators + dedup horizons and
// truncates the WAL behind itself; then the workers stop, the estimators
// free, and the WAL parks — same Log object, file handle closed, replay
// still possible. Sessions that are closed, degraded (recovery owns
// them), replication roles (followers mirror a leader's stream; fenced
// leaders are mid-failover), or have pinned WAL readers (an attached
// shipper is tailing) are skipped.
func (o *overseer) evict(s *session) bool {
	if s.dur == nil || s.follower.Load() || s.fenced.Load() {
		return false
	}
	if s.dur.wal.Pins() > 0 {
		return false
	}
	s.fmu.Lock()
	degraded := s.degradedErr != nil
	s.fmu.Unlock()
	if degraded {
		return false
	}
	s.resMu.Lock()
	defer s.resMu.Unlock()
	if s.evicted {
		return false
	}
	// An operation is on its way to pinning this session — possibly in
	// the unlocked instant right after it rehydrated it. Evicting now
	// would only force an immediate re-rehydration (livelock under a
	// tight budget); the session is by definition hot, so pass it over.
	if s.wakers.Load() > 0 {
		return false
	}
	// checkpointLocked begins an op, so a closed session bounces here.
	if err := s.checkpointLocked(o.metrics); err != nil {
		return false
	}
	s.stopWorkers()
	s.dur.wal.Close()
	s.evicted = true
	s.setResidentBytes(0)
	o.metrics.EvictionsTotal.Add(1)
	return true
}

// maybeEvict evicts coldest-first until the hydrated total fits the
// budget. Skipped or pinned sessions are passed over; if nothing evictable
// remains the total stays over budget (the budget bounds evictable state,
// not the irreducible working set). The hottest session is never evicted:
// an operation that just rehydrated it is about to run, and a budget
// smaller than one session would otherwise evict it right back — an
// evict/rehydrate spin in which no operation ever completes.
func (o *overseer) maybeEvict() {
	if o.residentBytes.Load() <= o.budget {
		return
	}
	sessions := o.srv.listSessions()
	if len(sessions) < 2 {
		return
	}
	sort.Slice(sessions, func(i, j int) bool {
		return sessions[i].lastAccess.Load() < sessions[j].lastAccess.Load()
	})
	for _, s := range sessions[:len(sessions)-1] {
		if o.residentBytes.Load() <= o.budget {
			return
		}
		o.evict(s)
	}
}

// checkQuota rejects an ingest when the session's resident footprint
// exceeds its per-session ceiling. Permanent (not a retry): the session
// must shrink or be re-created; retrying the same batch cannot succeed.
func (o *overseer) checkQuota(s *session) error {
	if o == nil || o.quota <= 0 {
		return nil
	}
	if rb := s.residentBytes.Load(); rb > o.quota {
		o.metrics.QuotaRejects.Add(1)
		return fmt.Errorf("server: session %q resident size %d exceeds per-session quota %d", s.name, rb, o.quota)
	}
	return nil
}
