// Package server implements kcoverd: a sharded network ingest daemon for
// the streaming Max k-Cover estimator. Clients open named sessions, push
// framed MKC1 batches of (set, element) edges over TCP, and query a live
// coverage estimate at any time; an HTTP sidecar exposes queries, session
// listings and metrics to humans and scrapers.
//
// Concurrency model: each session shards edges by hash across a fixed set
// of worker goroutines, each owning a same-seed streamcover.Estimator
// behind a bounded queue (backpressure). Queries snapshot the workers via
// Estimator.Clone and merge the clones off the ingest path, so a slow
// merge never stalls arriving edges. Connections are handled serially
// (read frame → handle → respond), which gives clients strictly ordered
// responses to pipeline against.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"streamcover/internal/wire"
)

// Config sizes a Server. Zero values pick sane defaults.
type Config struct {
	// Workers is the number of shard workers (and estimator replicas)
	// per session. Default: GOMAXPROCS.
	Workers int
	// QueueDepth is each worker's batch-queue capacity; full queues block
	// ingest dispatch (backpressure). Default: 64.
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	return c
}

// Server is a kcoverd instance.
type Server struct {
	cfg     Config
	metrics Metrics

	mu       sync.Mutex
	sessions map[string]*session
	closed   bool
	tcpLn    net.Listener
	httpSrv  *http.Server
	httpLn   net.Listener
	conns    map[net.Conn]struct{}

	connWG   sync.WaitGroup
	acceptWG sync.WaitGroup
}

// New builds a server; call Start (or ServeTCP with your own listener)
// to begin accepting.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		sessions: make(map[string]*session),
		conns:    make(map[net.Conn]struct{}),
	}
	s.metrics.start = time.Now()
	return s
}

// Metrics exposes the live counters (read with atomic loads).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Start listens on tcpAddr for the ingest protocol and, when httpAddr is
// non-empty, on httpAddr for the HTTP endpoint, then serves both in
// background goroutines until Shutdown.
func (s *Server) Start(tcpAddr, httpAddr string) error {
	ln, err := net.Listen("tcp", tcpAddr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.tcpLn = ln
	s.mu.Unlock()
	s.acceptWG.Add(1)
	go func() {
		defer s.acceptWG.Done()
		s.serveTCP(ln)
	}()
	if httpAddr != "" {
		hln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			ln.Close()
			return err
		}
		srv := &http.Server{Handler: s.httpHandler()}
		s.mu.Lock()
		s.httpSrv, s.httpLn = srv, hln
		s.mu.Unlock()
		s.acceptWG.Add(1)
		go func() {
			defer s.acceptWG.Done()
			srv.Serve(hln)
		}()
	}
	return nil
}

// TCPAddr returns the ingest listener's address (useful with ":0").
func (s *Server) TCPAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tcpLn == nil {
		return nil
	}
	return s.tcpLn.Addr()
}

// HTTPAddr returns the HTTP listener's address, or nil when disabled.
func (s *Server) HTTPAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

func (s *Server) serveTCP(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed (Shutdown) or fatal
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.metrics.Conns.Add(1)
		s.metrics.ConnsTotal.Add(1)
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				s.metrics.Conns.Add(-1)
				conn.Close()
			}()
			s.handleConn(conn)
		}()
	}
}

// handleConn runs the serial frame loop for one connection.
func (s *Server) handleConn(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	scratch := make([]byte, 1<<16)
	respond := func(typ byte, payload []byte) bool {
		if typ == wire.TErr {
			s.metrics.Errors.Add(1)
		}
		if err := wire.WriteFrame(bw, typ, payload); err != nil {
			return false
		}
		// Flush only when no further request is already buffered: acks
		// for a pipelined burst coalesce into one write.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return false
			}
		}
		return true
	}
	for {
		typ, payload, err := wire.ReadFrame(br, scratch)
		if err != nil {
			return // EOF, peer reset, or garbage — drop the connection
		}
		s.metrics.Frames.Add(1)
		switch typ {
		case wire.TCreate:
			c, err := wire.DecodeCreate(payload)
			if err == nil {
				err = s.createSession(c)
			}
			if !s.ack(respond, err) {
				return
			}
		case wire.TIngest:
			err := s.handleIngest(payload)
			if !s.ack(respond, err) {
				return
			}
		case wire.TQuery:
			name, err := wire.DecodeRef(payload)
			var res wire.Result
			if err == nil {
				res, err = s.querySession(name)
			}
			if err != nil {
				if !respond(wire.TErr, []byte(err.Error())) {
					return
				}
			} else if !respond(wire.TResult, res.Encode()) {
				return
			}
		case wire.TPing:
			if !respond(wire.TOK, nil) {
				return
			}
		case wire.TClose:
			name, err := wire.DecodeRef(payload)
			if err == nil {
				err = s.closeSession(name)
			}
			if !s.ack(respond, err) {
				return
			}
		default:
			if !respond(wire.TErr, []byte(fmt.Sprintf("server: unknown frame type 0x%02x", typ))) {
				return
			}
		}
	}
}

func (s *Server) ack(respond func(byte, []byte) bool, err error) bool {
	if err != nil {
		return respond(wire.TErr, []byte(err.Error()))
	}
	return respond(wire.TOK, nil)
}

// createSession makes a session, idempotently: re-creating with identical
// parameters succeeds (so several generators can race to set up the same
// session), differing parameters are an error.
func (s *Server) createSession(c wire.Create) error {
	if c.Name == "" {
		return errors.New("server: empty session name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("server: shutting down")
	}
	if old, ok := s.sessions[c.Name]; ok {
		if old.m == c.M && old.n == c.N && old.k == c.K && old.alpha == c.Alpha && old.seed == c.Seed {
			return nil
		}
		return fmt.Errorf("server: session %q exists with different parameters", c.Name)
	}
	sess, err := newSession(c.Name, c.M, c.N, c.K, c.Alpha, c.Seed, s.cfg.Workers, s.cfg.QueueDepth, &s.metrics)
	if err != nil {
		return err
	}
	s.sessions[c.Name] = sess
	return nil
}

func (s *Server) session(name string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[name]
	if !ok {
		return nil, fmt.Errorf("server: no session %q", name)
	}
	return sess, nil
}

func (s *Server) handleIngest(payload []byte) error {
	name, edges, m, n, err := wire.DecodeIngest(payload)
	if err != nil {
		return err
	}
	sess, err := s.session(name)
	if err != nil {
		return err
	}
	if m != sess.m || n != sess.n {
		return fmt.Errorf("server: batch dims (%d,%d) != session %q dims (%d,%d)",
			m, n, name, sess.m, sess.n)
	}
	if err := sess.ingest(edges); err != nil {
		return err
	}
	s.metrics.EdgesIngested.Add(int64(len(edges)))
	s.metrics.Batches.Add(1)
	return nil
}

func (s *Server) querySession(name string) (wire.Result, error) {
	sess, err := s.session(name)
	if err != nil {
		return wire.Result{}, err
	}
	s.metrics.Queries.Add(1)
	return sess.query(&s.metrics)
}

func (s *Server) closeSession(name string) error {
	s.mu.Lock()
	sess, ok := s.sessions[name]
	delete(s.sessions, name)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: no session %q", name)
	}
	sess.close()
	return nil
}

// Shutdown stops the server gracefully: listeners close first, sessions
// drain (workers consume everything already queued), then remaining
// connections are closed. The context bounds the wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	tcpLn, httpSrv := s.tcpLn, s.httpSrv
	sessions := make([]*session, 0, len(s.sessions))
	for name, sess := range s.sessions {
		sessions = append(sessions, sess)
		delete(s.sessions, name)
	}
	s.mu.Unlock()

	if tcpLn != nil {
		tcpLn.Close()
	}
	if httpSrv != nil {
		httpSrv.Shutdown(ctx)
	}
	for _, sess := range sessions {
		sess.close()
	}

	// Connections idle-wait on reads; close them so handlers exit, then
	// wait (bounded by ctx) for everything to unwind.
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		s.acceptWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
