// Package server implements kcoverd: a sharded network ingest daemon for
// the streaming Max k-Cover estimator. Clients open named sessions, push
// framed MKC1 batches of (set, element) edges over TCP, and query a live
// coverage estimate at any time; an HTTP sidecar exposes queries, session
// listings and metrics to humans and scrapers.
//
// Concurrency model: each session shards edges by hash across a fixed set
// of worker goroutines, each owning a same-seed streamcover.Estimator
// behind a bounded queue (backpressure). Queries snapshot the workers via
// Estimator.Clone and merge the clones off the ingest path, so a slow
// merge never stalls arriving edges. Responses on a connection are
// strictly ordered (clients pipeline against that), but applying an
// ingest — the WAL group-commit fsync overlapped with the worker
// dispatch — runs on a per-connection apply goroutine while the handler
// reads and decodes the next pipelined frame, so a burst's decode cost
// hides behind the previous batch's fsync. Both wire batch layouts (row
// MKC1 and columnar MKC2) decode straight into column arenas; edges never
// materialize as row structs on the server.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"streamcover"
	"streamcover/internal/fault"
	"streamcover/internal/replica"
	"streamcover/internal/stream"
	"streamcover/internal/wire"
)

// Config sizes a Server. Zero values pick sane defaults.
type Config struct {
	// Workers is the number of shard workers (and estimator replicas)
	// per session. Default: GOMAXPROCS.
	Workers int
	// QueueDepth is each worker's batch-queue capacity; full queues block
	// ingest dispatch (backpressure). Default: 64.
	QueueDepth int
	// EngineWorkers is the per-estimator batch-engine worker count: how
	// many goroutines each shard worker's estimator fans its oracle units
	// across (streamcover.WithParallelism). Default: 1. The shard workers
	// already provide cross-core parallelism, so in-estimator fan-out
	// only pays when cores outnumber busy shard workers — few sessions on
	// a large machine; raise it (and usually lower Workers) for that shape.
	EngineWorkers int
	// DataDir enables durability: each session keeps a checkpoint
	// snapshot plus a WAL of acknowledged batches under this directory,
	// and Start recovers every session found there before accepting
	// connections. Empty: in-memory only.
	DataDir string
	// CheckpointEvery is the background checkpoint cadence. Default 30s;
	// negative disables the ticker (checkpoints still happen on shutdown
	// and via the /checkpoint HTTP endpoint).
	CheckpointEvery time.Duration
	// WALSegmentBytes caps one WAL segment file (default 64 MiB).
	WALSegmentBytes int64
	// WALNoSync skips the fsync before each ingest ack. Acknowledged
	// batches may be lost in a crash; for tests and bulk loads.
	WALNoSync bool
	// ReadTimeout bounds the wait for the next frame on an idle
	// connection; when it fires the connection is reaped (a half-open or
	// hung peer can no longer park a handler in a read forever). Default
	// 5m; negative disables.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response write. Default 1m; negative
	// disables.
	WriteTimeout time.Duration
	// RetryMin/RetryMax bound the exponential backoff of a degraded
	// session's durability-recovery loop. Defaults 50ms / 5s.
	RetryMin time.Duration
	RetryMax time.Duration
	// FS is the filesystem the durability path (WAL + checkpoints) writes
	// through. Default the real filesystem; tests inject faults by
	// passing a *fault.Injector.
	FS fault.FS

	// MemBudget, when positive, enables session oversubscription: the
	// summed serialized size of hydrated sessions is kept at or under this
	// many bytes by evicting the least-recently-used sessions down to
	// their checkpoints; the next operation rehydrates them transparently.
	// Requires a DataDir (eviction parks state on disk). 0: every session
	// stays hydrated.
	MemBudget int64
	// SessionQuota, when positive, caps one session's serialized size (as
	// of its last checkpoint): ingest into a session over quota is
	// rejected permanently until it shrinks. 0: no per-session cap.
	SessionQuota int64
	// RehydrateConcurrency bounds simultaneous rehydrations; excess wakers
	// get a typed transient rejection (retry) instead of stacking decoded
	// estimator state on top of the budget. Default 2.
	RehydrateConcurrency int

	// arena is the shared interner-table pool co-resident sessions draw
	// their batch-scratch tables from; built by withDefaults.
	arena *streamcover.InternArena

	// Cluster mode (see cluster.go), enabled when Peers is non-empty.
	// NodeID is this node's identity — its peer-facing TCP address, as the
	// other nodes should dial it — and must appear in Peers, the full
	// member list every node and client builds the placement ring from.
	// Cluster mode requires a DataDir: replication is WAL shipping.
	NodeID string
	Peers  []string
	// Replicas is the placement width: each session lives on this many
	// nodes (leader + followers). Default: min(3, len(Peers)).
	Replicas int
	// RepHeartbeat is the shipper's heartbeat cadence while a follower is
	// caught up; follower staleness has this resolution. Default 250ms.
	RepHeartbeat time.Duration
	// RepReadTimeout bounds the gap between leader frames on a follower's
	// replication stream — the leader-death detector. Default 2s.
	RepReadTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = 1
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 30 * time.Second
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 5 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = time.Minute
	}
	if c.RetryMin <= 0 {
		c.RetryMin = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 5 * time.Second
	}
	if c.FS == nil {
		c.FS = fault.OS()
	}
	if c.RehydrateConcurrency <= 0 {
		c.RehydrateConcurrency = 2
	}
	if c.arena == nil {
		c.arena = streamcover.NewInternArena(0)
	}
	if len(c.Peers) > 0 {
		if c.Replicas <= 0 {
			if c.Replicas = 3; len(c.Peers) < 3 {
				c.Replicas = len(c.Peers)
			}
		}
		if c.RepHeartbeat <= 0 {
			c.RepHeartbeat = 250 * time.Millisecond
		}
		if c.RepReadTimeout <= 0 {
			c.RepReadTimeout = 2 * time.Second
		}
	}
	return c
}

// Server is a kcoverd instance.
type Server struct {
	cfg     Config
	metrics Metrics
	ring    *replica.Ring // nil outside cluster mode; set once in Start
	ovs     *overseer     // nil without a memory budget (see oversub.go)

	mu        sync.Mutex
	sessions  map[string]*session
	creating  map[string]chan struct{} // names being built outside mu
	leaders   map[string]string        // failover overrides: session → leader node ID
	promoting map[string]bool          // sessions mid-promotion (lookups answer transient)
	closed    bool
	tcpLn     net.Listener
	httpSrv   *http.Server
	httpLn    net.Listener
	conns     map[net.Conn]struct{}

	connWG   sync.WaitGroup
	acceptWG sync.WaitGroup

	ckptStop chan struct{}
	ckptWG   sync.WaitGroup
}

// New builds a server; call Start (or ServeTCP with your own listener)
// to begin accepting.
func New(cfg Config) *Server {
	s := &Server{
		cfg:       cfg.withDefaults(),
		sessions:  make(map[string]*session),
		creating:  make(map[string]chan struct{}),
		leaders:   make(map[string]string),
		promoting: make(map[string]bool),
		conns:     make(map[net.Conn]struct{}),
	}
	s.metrics.start = time.Now()
	if s.cfg.MemBudget > 0 && s.cfg.DataDir != "" {
		s.ovs = newOverseer(s)
	}
	return s
}

// listSessions snapshots the live session set (for the overseer's LRU
// scan and the HTTP listings).
func (s *Server) listSessions() []*session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	return sessions
}

// Metrics exposes the live counters (read with atomic loads).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Start listens on tcpAddr for the ingest protocol and, when httpAddr is
// non-empty, on httpAddr for the HTTP endpoint, then serves both in
// background goroutines until Shutdown.
func (s *Server) Start(tcpAddr, httpAddr string) error {
	if len(s.cfg.Peers) > 0 {
		if s.cfg.DataDir == "" {
			return errors.New("server: cluster mode requires a data dir (replication ships the WAL)")
		}
		if s.cfg.NodeID == "" {
			return errors.New("server: cluster mode requires a node id")
		}
		ring, err := replica.NewRing(s.cfg.Peers, 0)
		if err != nil {
			return err
		}
		member := false
		for _, p := range ring.Members() {
			if p == s.cfg.NodeID {
				member = true
				break
			}
		}
		if !member {
			return fmt.Errorf("server: node id %q is not in the peer list", s.cfg.NodeID)
		}
		s.ring = ring
	}
	if err := s.recover(); err != nil {
		return err
	}
	// Recovered sessions this node does not lead resume as followers:
	// finish any interrupted bootstrap re-base, then reattach the stream
	// at the mirror's watermark.
	if s.clustered() {
		s.mu.Lock()
		recovered := make([]*session, 0, len(s.sessions))
		for _, sess := range s.sessions {
			recovered = append(recovered, sess)
		}
		s.mu.Unlock()
		for _, sess := range recovered {
			if lead := s.leaderOf(sess.name); lead != s.cfg.NodeID {
				if err := s.repairFollowerWAL(sess); err != nil {
					return err
				}
				s.attachFollower(sess, lead)
			}
		}
	}
	ln, err := net.Listen("tcp", tcpAddr)
	if err != nil {
		return err
	}
	if s.cfg.DataDir != "" && s.cfg.CheckpointEvery > 0 {
		s.ckptStop = make(chan struct{})
		s.ckptWG.Add(1)
		go func() {
			defer s.ckptWG.Done()
			t := time.NewTicker(s.cfg.CheckpointEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.CheckpointAll()
				case <-s.ckptStop:
					return
				}
			}
		}()
	}
	s.mu.Lock()
	s.tcpLn = ln
	s.mu.Unlock()
	s.acceptWG.Add(1)
	go func() {
		defer s.acceptWG.Done()
		s.serveTCP(ln)
	}()
	if httpAddr != "" {
		hln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			ln.Close()
			return err
		}
		srv := &http.Server{Handler: s.httpHandler()}
		s.mu.Lock()
		s.httpSrv, s.httpLn = srv, hln
		s.mu.Unlock()
		s.acceptWG.Add(1)
		go func() {
			defer s.acceptWG.Done()
			srv.Serve(hln)
		}()
	}
	return nil
}

// TCPAddr returns the ingest listener's address (useful with ":0").
func (s *Server) TCPAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tcpLn == nil {
		return nil
	}
	return s.tcpLn.Addr()
}

// HTTPAddr returns the HTTP listener's address, or nil when disabled.
func (s *Server) HTTPAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

func (s *Server) serveTCP(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed (Shutdown) or fatal
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.metrics.Conns.Add(1)
		s.metrics.ConnsTotal.Add(1)
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				s.metrics.Conns.Add(-1)
				conn.Close()
			}()
			s.handleConn(conn)
		}()
	}
}

// handleConn runs the frame loop for one connection. Each frame read is
// bounded by ReadTimeout (a connected-but-silent peer is reaped rather
// than parking this goroutine forever) and each response write by
// WriteTimeout (a peer that stops draining cannot wedge the handler).
//
// Ingest frames are pipelined one deep: after an ingest is decoded and
// validated it is handed to the connection's apply goroutine (which runs
// the WAL fsync overlapped with the worker dispatch), and this goroutine
// immediately reads and decodes the next frame — but only while another
// frame is already buffered. A peer that waits for the ack before
// sending more gets the ack at once; a pipelining peer gets its next
// frame's socket read and decode for free under the previous batch's
// fsync. Responses stay strictly ordered because the in-flight ingest is
// always joined (and acked) before any later frame's response goes out —
// which also keeps at most one ingest applying per connection, so
// per-source sequencing behaves exactly as in the serial loop.
func (s *Server) handleConn(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	scratch := make([]byte, 1<<16) // grown in place by ReadFrameInto for larger batches
	respond := func(typ byte, payload []byte) bool {
		if typ == wire.TErr {
			s.metrics.Errors.Add(1)
		}
		if typ == wire.TErrRetry {
			s.metrics.BusyRejects.Add(1)
		}
		if s.cfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		if err := wire.WriteFrame(bw, typ, payload); err != nil {
			s.noteDeadline(err)
			return false
		}
		// Flush only when no further request is already buffered: acks
		// for a pipelined burst coalesce into one write.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				s.noteDeadline(err)
				return false
			}
		}
		return true
	}

	// The apply goroutine runs at most one ingest at a time; jobs and
	// results alternate strictly, so neither channel needs a buffer.
	jobs := make(chan ingestJob)
	applied := make(chan error)
	go func() {
		for j := range jobs {
			applied <- s.applyIngest(j)
		}
	}()
	inflight := false
	defer func() {
		if inflight {
			<-applied
		}
		close(jobs)
	}()
	// Two column arenas ping-pong between the decoder and the in-flight
	// job, so decoding frame k+1 never scribbles on the columns batch k is
	// still dispatching from.
	var arenas [2]stream.Columns
	cur := 0
	// join settles the in-flight ingest and acks it — in order, before
	// any later frame's response.
	join := func() bool {
		if !inflight {
			return true
		}
		inflight = false
		return s.ack(respond, <-applied)
	}

	for {
		if s.cfg.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		typ, payload, err := wire.ReadFrameInto(br, &scratch)
		if err != nil {
			// EOF, peer reset, deadline, or garbage — drop the connection.
			s.noteDeadline(err)
			return
		}
		s.metrics.Frames.Add(1)
		switch typ {
		case wire.TIngest, wire.TIngestSeq:
			// Decode (into the free arena) before joining: this is the
			// overlapped half. The WAL record is copied out of scratch
			// here too, so the next read may reuse it.
			job, jerr := s.prepareIngest(typ, payload, &arenas[cur])
			if !join() {
				return
			}
			if jerr != nil {
				if !s.ack(respond, jerr) {
					return
				}
				continue
			}
			jobs <- job
			inflight = true
			cur = 1 - cur
			if br.Buffered() == 0 {
				// Nothing pipelined behind this frame: the peer may well be
				// waiting on the ack, so settle now instead of parking in
				// the next read with the response hostage.
				if !join() {
					return
				}
			}
		case wire.TCreate:
			c, derr := wire.DecodeCreate(payload)
			if !join() {
				return
			}
			if derr == nil {
				derr = s.createSession(c)
			}
			if !s.ack(respond, derr) {
				return
			}
		case wire.TQuery:
			name, derr := wire.DecodeRef(payload)
			if !join() {
				return
			}
			var res wire.Result
			if derr == nil {
				res, derr = s.querySession(name)
			}
			if derr != nil {
				// A rehydration backlog (or a degraded session mid-recovery)
				// is transient: tell the client to retry rather than fail
				// the query.
				if errors.Is(derr, ErrDegraded) || errors.Is(derr, ErrOverloaded) {
					if !respond(wire.TErrRetry, []byte(derr.Error())) {
						return
					}
				} else if !respond(wire.TErr, []byte(derr.Error())) {
					return
				}
			} else if !respond(wire.TResult, res.Encode()) {
				return
			}
		case wire.TQueryStale:
			name, maxStale, derr := wire.DecodeQueryStale(payload)
			if !join() {
				return
			}
			var res wire.Result
			if derr == nil {
				res, derr = s.queryStaleSession(name, time.Duration(maxStale))
			}
			if derr != nil {
				if errors.Is(derr, ErrDegraded) || errors.Is(derr, ErrOverloaded) {
					if !respond(wire.TErrRetry, []byte(derr.Error())) {
						return
					}
				} else if !respond(wire.TErr, []byte(derr.Error())) {
					return
				}
			} else if !respond(wire.TResult, res.Encode()) {
				return
			}
		case wire.TRole:
			name, derr := wire.DecodeRef(payload)
			if !join() {
				return
			}
			var info wire.RoleInfo
			if derr == nil {
				info, derr = s.SessionRole(name)
			}
			if derr != nil {
				if !respond(wire.TErr, []byte(derr.Error())) {
					return
				}
			} else if !respond(wire.TRoleInfo, info.Encode()) {
				return
			}
		case wire.TRepSubscribe:
			if !join() {
				return
			}
			// The connection becomes a one-way replication stream; this
			// handler never reads another frame from it.
			s.serveShip(conn, bw, payload)
			return
		case wire.TPing:
			if !join() {
				return
			}
			if !respond(wire.TOK, nil) {
				return
			}
		case wire.TClose:
			name, derr := wire.DecodeRef(payload)
			if !join() {
				return
			}
			if derr == nil {
				derr = s.closeSession(name)
			}
			if !s.ack(respond, derr) {
				return
			}
		default:
			if !join() {
				return
			}
			if !respond(wire.TErr, []byte(fmt.Sprintf("server: unknown frame type 0x%02x", typ))) {
				return
			}
		}
	}
}

func (s *Server) ack(respond func(byte, []byte) bool, err error) bool {
	if err != nil {
		// Degraded / read-only / overloaded rejections are transient by
		// construction (a recovery loop or the rehydration gate is working
		// on the cause), so they go out as TErrRetry: the client keeps the
		// batch and retries.
		if errors.Is(err, ErrDegraded) || errors.Is(err, ErrReadOnly) || errors.Is(err, ErrOverloaded) {
			return respond(wire.TErrRetry, []byte(err.Error()))
		}
		var nl *notLeaderError
		if errors.As(err, &nl) {
			return respond(wire.TErrNotLeader, wire.EncodeNotLeader(nl.leader))
		}
		return respond(wire.TErr, []byte(err.Error()))
	}
	return respond(wire.TOK, nil)
}

// noteDeadline counts connections dropped by our own read/write
// deadlines, distinguishing a reaped hung peer from an ordinary EOF.
func (s *Server) noteDeadline(err error) {
	var nerr net.Error
	if errors.Is(err, os.ErrDeadlineExceeded) || (errors.As(err, &nerr) && nerr.Timeout()) {
		s.metrics.DeadlineReaps.Add(1)
	}
}

// createSession makes a session, idempotently: re-creating with identical
// parameters succeeds (so several generators can race to set up the same
// session), differing parameters are an error. The expensive part —
// estimator construction, the WAL open, and the initial checkpoint's
// fsyncs — runs outside s.mu behind a per-name guard, so session lookups
// (every ingest and query on other connections) never block on one
// creation's disk I/O; racing creators of the same name wait for the
// build and then re-check idempotently.
func (s *Server) createSession(c wire.Create) error {
	if c.Name == "" {
		return errors.New("server: empty session name")
	}
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return errors.New("server: shutting down")
		}
		if old, ok := s.sessions[c.Name]; ok {
			s.mu.Unlock()
			if old.m == c.M && old.n == c.N && old.k == c.K && old.alpha == c.Alpha && old.seed == c.Seed {
				return nil
			}
			return fmt.Errorf("server: session %q exists with different parameters", c.Name)
		}
		if pending, busy := s.creating[c.Name]; busy {
			s.mu.Unlock()
			<-pending
			continue
		}
		pending := make(chan struct{})
		s.creating[c.Name] = pending
		s.mu.Unlock()

		// In cluster mode a create lands on every placement node; the ones
		// that don't lead the session build it as a follower replica. The
		// role is set before the session is published, so no ingest can
		// slip in while the node still looks like a leader.
		followerOf := ""
		if s.clustered() {
			if lead := s.leaderOf(c.Name); lead != s.cfg.NodeID {
				followerOf = lead
			}
		}
		sess, err := s.buildSession(c)
		if err == nil && followerOf != "" {
			sess.follower.Store(true)
		}

		s.mu.Lock()
		delete(s.creating, c.Name)
		aborted := false
		if err == nil {
			if s.closed {
				err = errors.New("server: shutting down")
				aborted = true
			} else {
				s.sessions[c.Name] = sess
			}
		}
		s.mu.Unlock()
		close(pending)
		if aborted {
			sess.close()
			sess.dur.close()
		}
		if err == nil && followerOf != "" {
			s.attachFollower(sess, followerOf)
		}
		if err == nil && !aborted && s.ovs != nil {
			// The newcomer's footprint may push the fleet over budget.
			s.ovs.maybeEvict()
		}
		return err
	}
}

// buildSession constructs a session plus its durability state: the WAL
// and an initial params-only checkpoint, so a crash before the first
// cadence tick still recovers the session (and its WAL tail). Runs with
// no server locks held; the caller's per-name guard keeps it single.
func (s *Server) buildSession(c wire.Create) (*session, error) {
	sess, err := newSession(c.Name, c.M, c.N, c.K, c.Alpha, c.Seed, s.cfg.Workers, s.cfg.EngineWorkers, s.cfg.QueueDepth, &s.metrics, s.cfg.arena)
	if err != nil {
		return nil, err
	}
	sess.retryMin, sess.retryMax = s.cfg.RetryMin, s.cfg.RetryMax
	sess.ovs = s.ovs // before the first checkpoint, which charges the budget
	if s.cfg.DataDir != "" {
		dur, err := openDurability(s.cfg.DataDir, c.Name, s.cfg.WALSegmentBytes, s.cfg.WALNoSync, s.cfg.FS)
		if err != nil {
			sess.close()
			return nil, err
		}
		sess.dur = dur
		if err := sess.checkpoint(&s.metrics); err != nil {
			sess.close()
			dur.close()
			return nil, err
		}
	}
	return sess, nil
}

// recover rebuilds every session found under the data dir: snapshot
// restore plus WAL tail replay. Called by Start before listening, so a
// client reconnecting after a crash finds its sessions (and every batch
// the old process acknowledged) already in place.
func (s *Server) recover() error {
	if s.cfg.DataDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.DataDir, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(s.cfg.DataDir, e.Name())
		sess, err := recoverSession(dir, s.cfg, &s.metrics)
		if err != nil {
			return err
		}
		if sess == nil {
			// No checkpoint: a crash between directory creation and the
			// initial checkpoint. Nothing acknowledged lived here (every
			// session checkpoints before it is published), so the directory
			// is unreachable garbage — reclaim it rather than let dead WAL
			// segments accrete across restarts.
			if rmErr := os.RemoveAll(dir); rmErr == nil {
				s.metrics.OrphansSwept.Add(1)
			}
			continue
		}
		sess.ovs = s.ovs
		if s.ovs != nil {
			s.ovs.residentBytes.Add(sess.residentBytes.Load())
		}
		s.mu.Lock()
		s.sessions[sess.name] = sess
		s.mu.Unlock()
	}
	if s.ovs != nil {
		// A fleet larger than the budget must not come back fully hydrated.
		s.ovs.maybeEvict()
	}
	return nil
}

// CheckpointAll snapshots every live session, returning the first error.
// Also reachable over HTTP as /checkpoint. A failed checkpoint degrades
// its session: the snapshot write shares the disk with the WAL, and a
// disk that cannot take a checkpoint will soon fail appends too — better
// to stop acking now and let the recovery loop probe for the fault
// clearing.
func (s *Server) CheckpointAll() error {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	var first error
	for _, sess := range sessions {
		if err := sess.checkpoint(&s.metrics); err != nil {
			s.metrics.CheckpointFailures.Add(1)
			sess.degrade(err)
			if first == nil {
				first = err
			}
		}
	}
	if s.ovs != nil {
		// Checkpoints refresh every resident footprint (sessions grow
		// between cadence ticks); re-enforce the budget on the new totals.
		s.ovs.maybeEvict()
	}
	return first
}

func (s *Server) session(name string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// Dying (Abort/Shutdown tears the session map down before the
		// last connections unwind): a permanent "no session" here would
		// poison a client whose batch is about to be replayed against
		// our successor — something a real SIGKILL could never do, since
		// the process would be gone before it could answer. Reject as
		// transient instead; the client parks the batch and resends it
		// after reconnecting.
		return nil, fmt.Errorf("server: %w: shutting down", ErrDegraded)
	}
	if s.promoting[name] {
		// Mid-promotion the old follower session is torn down and its
		// replacement not yet registered; transient, like a dying server.
		return nil, fmt.Errorf("server: %w: session %q is being promoted", ErrDegraded, name)
	}
	sess, ok := s.sessions[name]
	if !ok {
		return nil, fmt.Errorf("server: no session %q", name)
	}
	return sess, nil
}

// readOnly reports the server-wide disk-full mode: while any session is
// degraded by ENOSPC, every ingest is rejected (more WAL writes would
// deepen the hole) and queries keep flowing.
func (s *Server) readOnly() error {
	if s.metrics.DiskFullSessions.Load() > 0 {
		return fmt.Errorf("server: %w: disk full, ingest rejected until space frees", ErrReadOnly)
	}
	return nil
}

// ingestJob is one decoded, validated ingest waiting to be applied — the
// unit of handleConn's decode/apply overlap. cols points at one of the
// connection's ping-ponging arenas; rec is the already-copied WAL record
// (nil without durability), so nothing in the job aliases the read
// scratch.
type ingestJob struct {
	sess     *session
	cols     *stream.Columns
	rec      []byte
	seq      bool
	source   uint64
	sequence uint64
}

// prepareIngest decodes one TIngest/TIngestSeq payload into cols — row
// and columnar wire layouts both land here, IDs validated against the
// session dims by the fused decoder — and builds the job applyIngest
// runs. This is the cheap, CPU-only half that overlaps the previous
// batch's fsync.
func (s *Server) prepareIngest(typ byte, payload []byte, cols *stream.Columns) (ingestJob, error) {
	if err := s.readOnly(); err != nil {
		return ingestJob{}, err
	}
	j := ingestJob{cols: cols}
	var name string
	var m, n int
	var err error
	if typ == wire.TIngestSeq {
		j.seq = true
		name, j.source, j.sequence, m, n, err = wire.DecodeIngestSeqInto(payload, cols)
	} else {
		name, m, n, err = wire.DecodeIngestInto(payload, cols)
	}
	if err != nil {
		return ingestJob{}, err
	}
	sess, err := s.session(name)
	if err != nil {
		return ingestJob{}, err
	}
	if m != sess.m || n != sess.n {
		return ingestJob{}, fmt.Errorf("server: batch dims (%d,%d) != session %q dims (%d,%d)",
			m, n, name, sess.m, sess.n)
	}
	if sess.follower.Load() || sess.fenced.Load() {
		// Followers take writes only from the replication stream — a
		// client write here would fork the replica from the leader's log.
		// A fenced leader rejects too: its log is frozen so a follower can
		// drain the tail and take over without losing an acked batch.
		return ingestJob{}, &notLeaderError{leader: s.leaderOf(name)}
	}
	if err := s.ovs.checkQuota(sess); err != nil {
		return ingestJob{}, err
	}
	j.sess = sess
	j.rec = walRecord(sess, typ, payload)
	return j, nil
}

// applyIngest runs one prepared ingest — the WAL append overlapped with
// the worker dispatch inside the session — and settles the server-wide
// counters. An ack on its nil return means "durably logged and applied
// (or, for sequenced batches, a recognized replay)".
func (s *Server) applyIngest(j ingestJob) error {
	if j.seq {
		applied, err := j.sess.ingestSeq(j.source, j.sequence, j.rec, j.cols.Sets, j.cols.Elems)
		if err != nil {
			return err
		}
		if !applied {
			s.metrics.DupBatches.Add(1)
			return nil
		}
	} else if err := j.sess.ingest(j.cols.Sets, j.cols.Elems, j.rec); err != nil {
		return err
	}
	s.metrics.EdgesIngested.Add(int64(j.cols.Len()))
	s.metrics.Batches.Add(1)
	return nil
}

// walRecord prefixes the wire payload with its frame type, forming the
// session's WAL record. Nil when the session keeps no WAL (payload
// aliases the connection's read scratch, so the copy is also what makes
// the record safe to hand to the log).
func walRecord(sess *session, typ byte, payload []byte) []byte {
	if sess.dur == nil {
		return nil
	}
	rec := make([]byte, 0, 1+len(payload))
	rec = append(rec, typ)
	return append(rec, payload...)
}

func (s *Server) querySession(name string) (wire.Result, error) {
	sess, err := s.session(name)
	if err != nil {
		return wire.Result{}, err
	}
	s.metrics.Queries.Add(1)
	return sess.query(&s.metrics)
}

func (s *Server) closeSession(name string) error {
	s.mu.Lock()
	sess, ok := s.sessions[name]
	delete(s.sessions, name)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: no session %q", name)
	}
	sess.close()
	sess.dur.destroy()
	return nil
}

// Shutdown stops the server gracefully: listeners close first, every
// session is checkpointed (so a restart recovers from the snapshot alone,
// without WAL replay), sessions drain (workers consume everything already
// queued), then remaining connections are closed. The context bounds the
// wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	tcpLn, httpSrv := s.tcpLn, s.httpSrv
	sessions := make([]*session, 0, len(s.sessions))
	for name, sess := range s.sessions {
		sessions = append(sessions, sess)
		delete(s.sessions, name)
	}
	s.mu.Unlock()

	if s.ckptStop != nil {
		close(s.ckptStop)
		s.ckptWG.Wait()
	}
	if tcpLn != nil {
		tcpLn.Close()
	}
	if httpSrv != nil {
		httpSrv.Shutdown(ctx)
	}
	for _, sess := range sessions {
		sess.checkpoint(&s.metrics) // best effort; WAL still has the tail
		sess.close()
		sess.dur.close()
	}

	// Connections idle-wait on reads; close them so handlers exit, then
	// wait (bounded by ctx) for everything to unwind.
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		s.acceptWG.Wait()
		close(done)
	}()
	// The final checkpoint above is not context-bounded (abandoning it
	// half-done buys nothing: the write is atomic and the WAL covers the
	// tail either way), so a large session can eat the whole budget.
	// Don't report failure for that alone — if the handlers have in fact
	// unwound, the shutdown succeeded.
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		select {
		case <-done:
			return nil
		case <-time.After(100 * time.Millisecond):
			return ctx.Err()
		}
	}
}

// Abort simulates a crash for durability tests: listeners and connections
// close immediately, with no checkpoint and no WAL truncation. Everything
// the server acknowledged must still be recoverable by a fresh Server
// starting on the same data dir. Sessions are then quiesced (in-flight
// ingests finish, workers drain, WAL handles close) so the dead process's
// goroutines cannot keep appending to a data dir a successor has already
// recovered from — the quiesce is bookkeeping the real SIGKILL would do
// by ceasing to exist.
func (s *Server) Abort() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	tcpLn, httpLn := s.tcpLn, s.httpLn
	conns := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		conns = append(conns, conn)
	}
	sessions := make([]*session, 0, len(s.sessions))
	for name, sess := range s.sessions {
		sessions = append(sessions, sess)
		delete(s.sessions, name)
	}
	s.mu.Unlock()
	if s.ckptStop != nil {
		close(s.ckptStop)
		s.ckptWG.Wait()
	}
	if tcpLn != nil {
		tcpLn.Close()
	}
	if httpLn != nil {
		httpLn.Close()
	}
	for _, conn := range conns {
		conn.Close()
	}
	s.connWG.Wait()
	for _, sess := range sessions {
		sess.close()
		sess.dur.close()
	}
}
