// Cluster mode. A server becomes a cluster node when Config.Peers names
// the member set: session leadership is placed on a consistent-hash ring
// over the peer IDs, leaders stream their sessions' WALs to subscribed
// followers (internal/replica), and followers mirror each record into
// their own log at the same position before applying it through the
// replay path. Because replay is bit-identical at a fixed worker count,
// a caught-up follower's estimators — and its on-disk checkpoint+WAL —
// are byte-for-byte the leader's, which is why Promote can reuse the
// crash-recovery path verbatim and why convergence is checkable by
// comparing SessionDigest across nodes.
//
// There is no consensus protocol. The control plane (scenario harness,
// HTTP endpoints, an operator) decides membership and failover; the
// data plane only guarantees that "caught up" means "byte-equal".
package server

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"time"

	"streamcover/internal/replica"
	"streamcover/internal/snapshot"
	"streamcover/internal/stream"
	"streamcover/internal/wal"
	"streamcover/internal/wire"
)

// notLeaderError rejects leader-only work sent to a follower; ack turns
// it into a TErrNotLeader frame naming the leader so the client can
// re-route without re-resolving placement out of band.
type notLeaderError struct{ leader string }

func (e *notLeaderError) Error() string {
	return fmt.Sprintf("server: not the leader for this session (leader %q)", e.leader)
}

// clustered reports whether this server runs as a cluster node.
func (s *Server) clustered() bool { return s.ring != nil }

// leaderOf names the session's leader node: a failover override when one
// was recorded, otherwise the ring placement.
func (s *Server) leaderOf(name string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaderOfLocked(name)
}

func (s *Server) leaderOfLocked(name string) string {
	if addr, ok := s.leaders[name]; ok {
		return addr
	}
	if s.ring == nil {
		return s.cfg.NodeID
	}
	return s.ring.Leader(name)
}

// shipSource adapts one leader session to the replica shipper.
type shipSource struct {
	sess    *session
	metrics *Metrics
}

func (src *shipSource) Log() *wal.Log { return src.sess.dur.wal }

// Snapshot forces a fresh checkpoint and returns its blob: the persisted
// checkpoint file is re-read and re-decoded so the reported WAL position
// is exactly the one inside the blob, with no race against a concurrent
// checkpoint advancing it.
func (src *shipSource) Snapshot() (uint64, []byte, error) {
	d := src.sess.dur
	if err := src.sess.checkpoint(src.metrics); err != nil {
		return 0, nil, err
	}
	payload, err := snapshot.ReadFileFS(d.fs, filepath.Join(d.dir, checkpointFile))
	if err != nil {
		return 0, nil, err
	}
	st, err := decodeCheckpoint(payload)
	if err != nil {
		return 0, nil, err
	}
	return st.walPos, payload, nil
}

// serveShip turns one accepted connection into a replication stream for
// the subscribed session. The connection is dedicated from here on: no
// more frames are read, and writes go through a per-write deadline so a
// stalled follower is reaped rather than parking the handler.
func (s *Server) serveShip(conn net.Conn, bw *bufio.Writer, payload []byte) {
	bw.Flush() // settle any response buffered before the subscribe
	w := bufio.NewWriterSize(&deadlineConn{Conn: conn, timeout: s.cfg.WriteTimeout}, 1<<16)
	fail := func(typ byte, msg []byte) {
		if typ == wire.TErr {
			s.metrics.Errors.Add(1)
		}
		wire.WriteFrame(w, typ, msg)
		w.Flush()
	}
	name, applied, err := wire.DecodeSubscribe(payload)
	if err != nil {
		fail(wire.TErr, []byte(err.Error()))
		return
	}
	sess, err := s.session(name)
	if err != nil {
		if errors.Is(err, ErrDegraded) {
			fail(wire.TErrRetry, []byte(err.Error()))
		} else {
			fail(wire.TErr, []byte(err.Error()))
		}
		return
	}
	if sess.follower.Load() {
		fail(wire.TErrNotLeader, wire.EncodeNotLeader(s.leaderOf(name)))
		return
	}
	if sess.dur == nil {
		fail(wire.TErr, []byte(fmt.Sprintf("server: session %q has no WAL to replicate", name)))
		return
	}
	conn.SetReadDeadline(time.Time{}) // one-way from here
	s.metrics.RepStreams.Add(1)
	defer s.metrics.RepStreams.Add(-1)
	replica.Ship(w, &shipSource{sess: sess, metrics: &s.metrics}, applied, nil, replica.ShipOptions{
		HeartbeatEvery: s.cfg.RepHeartbeat,
	})
}

// deadlineConn arms a write deadline before every Write, so the shipper's
// long-lived one-way stream cannot block forever on a dead peer.
type deadlineConn struct {
	net.Conn
	timeout time.Duration
}

func (c *deadlineConn) Write(p []byte) (int, error) {
	if c.timeout > 0 {
		c.Conn.SetWriteDeadline(time.Now().Add(c.timeout))
	}
	return c.Conn.Write(p)
}

// followerTarget adapts one follower session to the replica applier. All
// methods run on the applier's single goroutine, so the decode arena is
// owned, not shared.
type followerTarget struct {
	s    *Server
	sess *session
	cols stream.Columns
}

func (t *followerTarget) Applied() uint64 { return t.sess.dur.wal.LastPos() }

func (t *followerTarget) Bootstrap(walPos uint64, ckpt []byte) error {
	return t.sess.rebootstrap(t.s.cfg, walPos, ckpt, &t.s.metrics)
}

// Apply mirrors one leader WAL record: append it to the local log (it
// must land at the leader's position — the logs are byte-identical), then
// run it through the same dedup check and shard dispatch recovery replay
// uses. Unlike leader ingest, the append is not overlapped with the
// dispatch: the estimators must never get ahead of the mirror, or a
// follower crash could recover to a state its own log cannot reproduce.
func (t *followerTarget) Apply(pos uint64, rec []byte) error {
	sess := t.sess
	// Followers are never evicted (the overseer skips them), so this is
	// the hydrated fast path; beginResident keeps the invariant explicit
	// and the LRU clock honest.
	release, err := sess.beginResident()
	if err != nil {
		return err
	}
	defer release()
	d := sess.dur
	d.pmu.RLock()
	defer d.pmu.RUnlock()
	if err := sess.degraded(); err != nil {
		return err
	}
	source, seq, err := decodeWALRecord(rec, sess.name, sess.m, sess.n, &t.cols)
	if err != nil {
		return err
	}
	got, err := d.wal.Append(rec)
	if err != nil {
		if sess.metrics != nil {
			sess.metrics.WALAppendFailures.Add(1)
		}
		sess.degrade(err)
		return sess.degraded()
	}
	if got != pos {
		err := fmt.Errorf("server: replica %q mirror landed at %d, leader logged %d", sess.name, got, pos)
		sess.degrade(err)
		return err
	}
	skip := false
	if source != 0 {
		sess.dmu.Lock()
		if prev := sess.dedup[source]; seq <= prev.seq {
			skip = true // the leader logged and skipped this duplicate; mirror the skip
		} else {
			sess.dedup[source] = dedupEntry{seq: seq}
		}
		sess.dmu.Unlock()
	}
	if !skip {
		sess.dispatch(t.cols.Sets, t.cols.Elems)
		t.s.metrics.RepEdgesApplied.Add(int64(t.cols.Len()))
	}
	t.s.metrics.RepEntriesApplied.Add(1)
	return nil
}

// attachFollower marks sess a follower of leaderID and starts its
// replication stream.
func (s *Server) attachFollower(sess *session, leaderID string) {
	sess.follower.Store(true)
	a := replica.NewApplier(sess.name, leaderID, &followerTarget{s: s, sess: sess}, replica.ApplyOptions{
		ReadTimeout: s.cfg.RepReadTimeout,
	})
	sess.appMu.Lock()
	sess.applier = a
	sess.appMu.Unlock()
	a.Start()
}

// repairFollowerWAL fixes the one inconsistency an interrupted bootstrap
// can leave on disk: the leader checkpoint persisted but the log not yet
// re-based under it. Recovery then restored the checkpoint and replayed
// nothing (the stale records sit below its position), so the log just
// needs the re-base finished.
func (s *Server) repairFollowerWAL(sess *session) error {
	d := sess.dur
	if d == nil {
		return nil
	}
	if ckpt := d.ckptPos.Load(); d.wal.LastPos() < ckpt {
		if err := d.wal.ResetTo(ckpt + 1); err != nil {
			return fmt.Errorf("server: session %q: re-basing follower wal: %w", sess.name, err)
		}
	}
	return nil
}

// rebootstrap replaces the session's state with a leader checkpoint: stop
// and rebuild the worker estimators from its parts, adopt its dedup
// horizons, persist it, and re-base the mirror log at its WAL position.
// Runs on the applier goroutine; ckptMu excludes concurrent checkpoints
// and swapMu excludes query clone enqueues during the worker swap.
func (s *session) rebootstrap(cfg Config, walPos uint64, payload []byte, metrics *Metrics) error {
	st, err := decodeCheckpoint(payload)
	if err != nil {
		return err
	}
	if st.name != s.name || st.m != s.m || st.n != s.n || st.k != s.k || st.alpha != s.alpha || st.seed != s.seed {
		return fmt.Errorf("server: bootstrap checkpoint is for session %q (%d,%d,%d), want %q (%d,%d,%d)",
			st.name, st.m, st.n, st.k, s.name, s.m, s.n, s.k)
	}
	ests, err := estimatorsFromCheckpoint(st, cfg)
	if err != nil {
		return err
	}
	if err := s.begin(); err != nil {
		return err
	}
	defer s.ops.Done()
	d := s.dur
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	s.swapMu.Lock()
	defer s.swapMu.Unlock()

	// Drain and stop the old workers, release their estimators, start the
	// replacements. Clone requests already queued are still answered — a
	// worker consumes its whole queue before exiting.
	for _, ch := range s.workers {
		close(ch)
	}
	s.wg.Wait()
	for _, est := range s.ests {
		est.Close()
	}
	w := len(ests)
	s.ests = ests
	s.hdrPool = sync.Pool{New: func() any { h := make([]colShard, w); return &h }}
	s.workers = make([]chan workerMsg, w)
	s.recycle = make([]chan colShard, w)
	for i, est := range ests {
		ch := make(chan workerMsg, s.queueDepth)
		s.workers[i] = ch
		s.recycle[i] = make(chan colShard, s.queueDepth+1)
		s.wg.Add(1)
		go s.runWorker(est, ch, s.recycle[i])
	}
	s.dmu.Lock()
	s.dedup = make(map[uint64]dedupEntry, len(st.dedup))
	for src, seq := range st.dedup {
		s.dedup[src] = dedupEntry{seq: seq}
	}
	s.dmu.Unlock()
	var total int64
	for _, est := range ests {
		total += int64(est.Edges())
	}
	s.edges.Store(total)

	// Persist the checkpoint, then re-base the log under it. A crash
	// between the two leaves the checkpoint ahead of the log — recovery
	// restores the checkpoint, replays nothing (the stale records sit
	// below its position), and repairFollowerWAL finishes the re-base.
	if err := snapshot.WriteFileFS(d.fs, filepath.Join(d.dir, checkpointFile), payload); err != nil {
		s.degrade(err)
		return err
	}
	d.pmu.Lock()
	err = d.wal.ResetTo(walPos + 1)
	d.pmu.Unlock()
	if err != nil {
		s.degrade(err)
		return err
	}
	d.ckptPos.Store(walPos)
	d.lastCkptNanos.Store(time.Now().UnixNano())
	if metrics != nil {
		metrics.RepBootstraps.Add(1)
	}
	return nil
}

// Promote turns a follower session into the leader replica on this node.
// The mirror's checkpoint and WAL tail are byte-identical to the dead
// leader's, so promotion is literally the crash-recovery path: close the
// follower (stopping its replication stream), recover the session from
// its own data directory, and record the leadership override. Lookups
// during the window answer with the transient degraded error, so clients
// park and resend rather than failing.
func (s *Server) Promote(name string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: shutting down")
	}
	sess, ok := s.sessions[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("server: no session %q", name)
	}
	if !sess.follower.Load() {
		s.mu.Unlock()
		return nil // already the leader
	}
	if s.promoting[name] {
		s.mu.Unlock()
		return fmt.Errorf("server: session %q is already promoting", name)
	}
	s.promoting[name] = true
	s.mu.Unlock()

	sess.close() // stops the applier, drains workers
	dir := sess.dur.dir
	sess.dur.close()
	fresh, err := recoverSession(dir, s.cfg, &s.metrics)
	if err == nil && fresh == nil {
		err = fmt.Errorf("server: session %q has no checkpoint to promote from", name)
	}

	if err == nil {
		fresh.ovs = s.ovs
		if s.ovs != nil {
			s.ovs.residentBytes.Add(fresh.residentBytes.Load())
		}
	}
	s.mu.Lock()
	delete(s.promoting, name)
	if err == nil {
		s.sessions[name] = fresh
		s.leaders[name] = s.cfg.NodeID
		s.metrics.RepPromotions.Add(1)
	} else {
		delete(s.sessions, name) // wedged; a closed husk must not serve
	}
	s.mu.Unlock()
	return err
}

// Fence freezes a leader session's log ahead of an orderly failover: new
// ingest is rejected with the not-leader redirect (clients park the batch
// and re-resolve), while queries and the replication streams keep
// running, so followers drain the remaining tail from a head that can no
// longer move. Shipping is asynchronous — without the fence, a kill can
// strand the last few acked batches on the dead node's disk, and the
// promoted follower would never see them. Fencing a follower is a no-op;
// a fenced node is expected to be retired, not unfenced.
func (s *Server) Fence(name string) error {
	sess, err := s.session(name)
	if err != nil {
		return err
	}
	sess.fenced.Store(true)
	return nil
}

// SetSessionLeader records a failover override: name is now led by
// leaderID. On a follower the live replication stream is retargeted
// immediately.
func (s *Server) SetSessionLeader(name, leaderID string) {
	s.mu.Lock()
	s.leaders[name] = leaderID
	sess := s.sessions[name]
	s.mu.Unlock()
	if sess == nil || !sess.follower.Load() || leaderID == s.cfg.NodeID {
		return
	}
	if a := sess.getApplier(); a != nil {
		a.SetLeader(leaderID)
	}
}

// SessionRole reports this node's view of one session: its role, who it
// believes leads, its applied watermark, and (followers) its staleness.
func (s *Server) SessionRole(name string) (wire.RoleInfo, error) {
	sess, err := s.session(name)
	if err != nil {
		return wire.RoleInfo{}, err
	}
	info := wire.RoleInfo{Role: wire.RoleLeader, LeaderAddr: s.leaderOf(name)}
	if sess.follower.Load() {
		info.Role = wire.RoleFollower
		if a := sess.getApplier(); a != nil {
			info.LeaderAddr = a.Leader()
			info.Applied = a.Applied()
			info.StalenessNanos = int64(a.Staleness())
		}
	} else if d := sess.dur; d != nil {
		info.Applied = d.wal.LastPos()
		if sess.fenced.Load() {
			// A fenced leader no longer claims the role — probes must not
			// route writes back here — but its frozen durable head is still
			// what a draining follower has to reach before promotion.
			info.Role = wire.RoleFollower
		}
	}
	return info, nil
}

// queryStaleSession is the staleness-bounded read: leaders always
// qualify; a follower answers only while its watermark age is within the
// client's bound, else the transient retry error (the replica may catch
// up, or the client can fall back to the leader).
func (s *Server) queryStaleSession(name string, maxStale time.Duration) (wire.Result, error) {
	sess, err := s.session(name)
	if err != nil {
		return wire.Result{}, err
	}
	if sess.follower.Load() {
		a := sess.getApplier()
		if a == nil {
			return wire.Result{}, fmt.Errorf("server: %w: session %q has no replication stream", ErrDegraded, name)
		}
		if st := a.Staleness(); st > maxStale {
			s.metrics.StaleRejects.Add(1)
			return wire.Result{}, fmt.Errorf("server: %w: replica %v stale, bound %v",
				ErrDegraded, st.Round(time.Millisecond), maxStale)
		}
	}
	s.metrics.Queries.Add(1)
	return sess.query(&s.metrics)
}

// SessionDigest hashes the session's live state: SHA-256 over the
// per-worker estimator encodings in worker order. Replicas with the same
// worker count converge to the same digest exactly when their estimators
// are byte-identical — the replication invariant, made checkable in one
// comparison.
func (s *Server) SessionDigest(name string) (string, error) {
	sess, err := s.session(name)
	if err != nil {
		return "", err
	}
	return sess.digest()
}

func (s *session) digest() (string, error) {
	// beginResident: digesting an evicted session rehydrates it first
	// (clone requests need live workers).
	release, err := s.beginResident()
	if err != nil {
		return "", err
	}
	defer release()
	s.swapMu.RLock()
	replies := make([]chan cloneReply, len(s.workers))
	for i, ch := range s.workers {
		r := make(chan cloneReply, 1)
		replies[i] = r
		ch <- workerMsg{clone: r}
	}
	s.swapMu.RUnlock()
	h := sha256.New()
	for _, r := range replies {
		rep := <-r
		if rep.err != nil {
			return "", rep.err
		}
		blob, err := rep.est.Encode()
		if err != nil {
			return "", err
		}
		h.Write(blob)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
