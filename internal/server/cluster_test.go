package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"streamcover"
	"streamcover/internal/client"
	"streamcover/internal/fault"
	"streamcover/internal/wire"
)

const (
	cluM     = 64
	cluN     = 512
	cluK     = 4
	cluAlpha = 4.0
	cluSeed  = 9
	// All replicas (and the single-node reference) must share one worker
	// count: byte-identical replay is defined at a fixed shard fan-out.
	cluWorkers = 4
)

// reserveAddrs grabs n distinct loopback addresses. Cluster node IDs are
// peer-dialable addresses that must be known before the servers start, so
// the test reserves ports first and hands them back for the real listens.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

func startClusterNode(t *testing.T, nodeID string, peers []string) *Server {
	t.Helper()
	srv := New(Config{
		Workers:         cluWorkers,
		QueueDepth:      16,
		DataDir:         t.TempDir(),
		WALNoSync:       true,
		CheckpointEvery: -1,
		NodeID:          nodeID,
		Peers:           peers,
		RepHeartbeat:    25 * time.Millisecond,
		RepReadTimeout:  500 * time.Millisecond,
		RetryMin:        10 * time.Millisecond,
		RetryMax:        50 * time.Millisecond,
	})
	if err := srv.Start(nodeID, ""); err != nil {
		t.Fatalf("start cluster node %s: %v", nodeID, err)
	}
	t.Cleanup(func() { srv.Abort() })
	return srv
}

// clusterEdges generates a deterministic edge stream (splitmix64 walk).
func clusterEdges(seed uint64, count int) []streamcover.Edge {
	edges := make([]streamcover.Edge, count)
	x := seed
	for i := range edges {
		x += 0x9e3779b97f4a7c15
		z := x
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		edges[i] = streamcover.Edge{Set: uint32(z % cluM), Elem: uint32((z >> 32) % cluN)}
	}
	return edges
}

// clusterReference runs the same edges through a fault-free single-node
// in-memory server with the same worker count and returns its query
// result and state digest — the byte-level ground truth every replica
// must converge to.
func clusterReference(t *testing.T, name string, edges []streamcover.Edge) (client.Result, string) {
	t.Helper()
	srv := New(Config{Workers: cluWorkers, QueueDepth: 16})
	if err := srv.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Abort() })
	c, err := client.Dial(srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create(name, cluM, cluN, cluK, cluAlpha, cluSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Send(edges); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Query()
	if err != nil {
		t.Fatal(err)
	}
	digest, err := srv.SessionDigest(name)
	if err != nil {
		t.Fatal(err)
	}
	return res, digest
}

// waitClusterConverged waits until exactly one server leads the session
// and every follower's applied watermark equals the leader's WAL head,
// then returns the leader's index and head position.
func waitClusterConverged(t *testing.T, servers []*Server, name string, timeout time.Duration) (int, uint64) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var lastState string
	for time.Now().Before(deadline) {
		leaderIdx, head := -1, uint64(0)
		followers := make(map[int]uint64)
		ok := true
		for i, srv := range servers {
			ri, err := srv.SessionRole(name)
			if err != nil {
				ok = false
				lastState = fmt.Sprintf("node %d: %v", i, err)
				break
			}
			if ri.Role == wire.RoleLeader {
				if leaderIdx >= 0 {
					ok = false
					lastState = fmt.Sprintf("two leaders: %d and %d", leaderIdx, i)
					break
				}
				leaderIdx, head = i, ri.Applied
			} else {
				followers[i] = ri.Applied
			}
		}
		if ok && leaderIdx >= 0 && head > 0 {
			converged := true
			for i, applied := range followers {
				if applied != head {
					converged = false
					lastState = fmt.Sprintf("follower %d applied %d, leader head %d", i, applied, head)
				}
			}
			if converged {
				return leaderIdx, head
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("cluster never converged on %q: %s", name, lastState)
	return -1, 0
}

func requireClusterResult(t *testing.T, got, want client.Result, what string) {
	t.Helper()
	if got.Coverage != want.Coverage || got.Feasible != want.Feasible || got.Edges != want.Edges {
		t.Fatalf("%s: result (cov=%v feasible=%v edges=%d) != reference (cov=%v feasible=%v edges=%d)",
			what, got.Coverage, got.Feasible, got.Edges, want.Coverage, want.Feasible, want.Edges)
	}
	if len(got.SetIDs) != len(want.SetIDs) {
		t.Fatalf("%s: %d set IDs, reference has %d", what, len(got.SetIDs), len(want.SetIDs))
	}
	for i := range got.SetIDs {
		if got.SetIDs[i] != want.SetIDs[i] {
			t.Fatalf("%s: set IDs %v != reference %v", what, got.SetIDs, want.SetIDs)
		}
	}
}

// TestClusterThreeNodeConvergence is the replication smoke test: a
// three-node fleet ingests through the cluster client, every replica
// converges to the byte-exact state of a fault-free single-node run,
// followers answer staleness-bounded reads with the leader's numbers and
// reject both unbounded-staleness violations and direct writes.
func TestClusterThreeNodeConvergence(t *testing.T) {
	addrs := reserveAddrs(t, 3)
	servers := make([]*Server, 3)
	for i, addr := range addrs {
		servers[i] = startClusterNode(t, addr, addrs)
	}
	nodes := make([]client.ClusterNode, 3)
	for i, addr := range addrs {
		nodes[i] = client.ClusterNode{ID: addr, Addr: addr}
	}
	cl, err := client.DialCluster(nodes, 3, client.WithBatchSize(256), client.WithOpTimeout(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const name = "conv"
	cs, err := cl.Create(name, cluM, cluN, cluK, cluAlpha, cluSeed)
	if err != nil {
		t.Fatal(err)
	}
	edges := clusterEdges(101, 4096)
	if err := cs.Send(edges); err != nil {
		t.Fatal(err)
	}
	if err := cs.Flush(); err != nil {
		t.Fatal(err)
	}

	leaderIdx, head := waitClusterConverged(t, servers, name, 15*time.Second)
	if head == 0 {
		t.Fatal("leader WAL head is 0 after ingest")
	}

	// Byte-exact convergence: every replica's digest equals the fault-free
	// single-node reference.
	wantRes, wantDigest := clusterReference(t, name, edges)
	for i, srv := range servers {
		digest, err := srv.SessionDigest(name)
		if err != nil {
			t.Fatalf("node %d digest: %v", i, err)
		}
		if digest != wantDigest {
			t.Fatalf("node %d digest %s != reference %s", i, digest, wantDigest)
		}
	}

	// The leader's query and a follower's staleness-bounded read both
	// return the reference result.
	res, err := cs.Query()
	if err != nil {
		t.Fatal(err)
	}
	requireClusterResult(t, res, wantRes, "leader query")
	fres, err := cs.QueryStale(5 * time.Second)
	if err != nil {
		t.Fatalf("follower stale query: %v", err)
	}
	requireClusterResult(t, fres, wantRes, "follower stale query")

	// Direct follower access: a 1ns staleness bound is rejected as
	// transient (the watermark is only re-proven at heartbeat cadence),
	// and a write is redirected at the leader.
	followerIdx := (leaderIdx + 1) % 3
	fc, err := client.Dial(addrs[followerIdx], client.WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if _, err := fc.QueryStale(name, time.Nanosecond); !errors.Is(err, client.ErrServerBusy) {
		t.Fatalf("1ns-bound follower read: err = %v, want ErrServerBusy", err)
	}
	fsess, err := fc.Create(name, cluM, cluN, cluK, cluAlpha, cluSeed)
	if err != nil {
		t.Fatalf("idempotent create on follower: %v", err)
	}
	if err := fsess.Send(clusterEdges(7, 8)); err != nil {
		t.Fatalf("buffering on follower session: %v", err)
	}
	err = fsess.Flush()
	if !errors.Is(err, client.ErrNotLeader) {
		t.Fatalf("write to follower: err = %v, want ErrNotLeader", err)
	}
	if hint := fc.LeaderHint(); hint != addrs[leaderIdx] {
		t.Fatalf("follower redirect hint %q, want leader %q", hint, addrs[leaderIdx])
	}
}

// TestClusterFailoverExactlyOnce kills the leader with an unacked batch
// in flight — accepted, but parked before its WAL append, with the ack
// path already severed — promotes the most-caught-up follower, and
// requires the cluster client to re-route and resend so that the fleet
// ends byte-identical to a fault-free single-node run over every batch
// exactly once.
func TestClusterFailoverExactlyOnce(t *testing.T) {
	addrs := reserveAddrs(t, 3)
	servers := make([]*Server, 3)
	for i, addr := range addrs {
		servers[i] = startClusterNode(t, addr, addrs)
	}
	// Client traffic goes through per-node proxies so the leader's ack
	// path can be cut independently of the (direct) replication links.
	proxies := make([]*fault.Proxy, 3)
	nodes := make([]client.ClusterNode, 3)
	for i, addr := range addrs {
		p, err := fault.NewProxy(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		proxies[i] = p
		nodes[i] = client.ClusterNode{ID: addr, Addr: p.Addr()}
	}
	const batch = 128
	cl, err := client.DialCluster(nodes, 3,
		client.WithBatchSize(batch),
		// Short enough that the severed ack path is detected well inside
		// FailoverWait; long enough that creates and pings survive the
		// race detector's overhead.
		client.WithOpTimeout(time.Second),
		client.WithReconnect(2),
		client.WithBackoff(10*time.Millisecond, 40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.FailoverWait = 20 * time.Second

	const name = "failover"
	cs, err := cl.Create(name, cluM, cluN, cluK, cluAlpha, cluSeed)
	if err != nil {
		t.Fatal(err)
	}
	pre := clusterEdges(33, 10*batch)
	if err := cs.Send(pre); err != nil {
		t.Fatal(err)
	}
	if err := cs.Flush(); err != nil {
		t.Fatal(err)
	}
	leaderIdx, _ := waitClusterConverged(t, servers, name, 15*time.Second)
	if got := cs.Leader(); got != addrs[leaderIdx] {
		t.Fatalf("client routes to %q, servers say leader is %q", got, addrs[leaderIdx])
	}

	// Park the next sequenced batch on the leader after it is accepted
	// (dedup-claimed) but before its WAL append — in flight, unacked.
	parked := make(chan struct{})
	release := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(release)
		}
	}()
	var once sync.Once
	testHookAfterAccept = func(source, seq uint64) {
		once.Do(func() {
			close(parked)
			<-release
		})
	}
	defer func() { testHookAfterAccept = nil }()

	tail := clusterEdges(77, batch)
	flushDone := make(chan error, 1)
	go func() {
		if err := cs.Send(tail); err != nil {
			flushDone <- err
			return
		}
		flushDone <- cs.Flush()
	}()
	<-parked

	// Sever the ack path deterministically, then let the leader finish
	// applying and die. The ack can no longer reach the client, so the
	// batch stays parked in its resend buffer — whether the followers
	// received the entry before the crash is exactly the race the dedup
	// horizon must absorb.
	proxies[leaderIdx].Partition(true)
	proxies[leaderIdx].DropAll()
	released = true
	close(release)
	servers[leaderIdx].Abort()

	// Control plane: promote the most-caught-up survivor, retarget the
	// other.
	survivors := []int{}
	for i := range servers {
		if i != leaderIdx {
			survivors = append(survivors, i)
		}
	}
	promoteIdx := survivors[0]
	var best uint64
	for _, i := range survivors {
		if ri, err := servers[i].SessionRole(name); err == nil && ri.Applied > best {
			best, promoteIdx = ri.Applied, i
		}
	}
	if err := servers[promoteIdx].Promote(name); err != nil {
		t.Fatalf("promote node %d: %v", promoteIdx, err)
	}
	for _, i := range survivors {
		if i != promoteIdx {
			servers[i].SetSessionLeader(name, addrs[promoteIdx])
		}
	}

	select {
	case err := <-flushDone:
		if err != nil {
			t.Fatalf("flush across failover: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("flush never completed after promotion")
	}

	// The fleet must end byte-identical to a fault-free single-node run
	// over all eleven batches, each applied exactly once.
	all := append(append([]streamcover.Edge{}, pre...), tail...)
	wantRes, wantDigest := clusterReference(t, name, all)
	alive := []*Server{servers[survivors[0]], servers[survivors[1]]}
	waitClusterConverged(t, alive, name, 15*time.Second)
	for _, i := range survivors {
		digest, err := servers[i].SessionDigest(name)
		if err != nil {
			t.Fatalf("node %d digest: %v", i, err)
		}
		if digest != wantDigest {
			t.Fatalf("node %d digest %s != fault-free reference %s (exactly-once violated)", i, digest, wantDigest)
		}
	}
	res, err := cs.Query()
	if err != nil {
		t.Fatal(err)
	}
	requireClusterResult(t, res, wantRes, "post-failover query")
	if got := servers[promoteIdx].Metrics().RepPromotions.Load(); got != 1 {
		t.Fatalf("promotions on new leader = %d, want 1", got)
	}
	if got := cs.Leader(); got != addrs[promoteIdx] {
		t.Fatalf("client routes to %q after failover, want %q", got, addrs[promoteIdx])
	}
}

// TestClusterFenceDrainPromote exercises the orderly failover primitive:
// a fenced leader rejects new writes with the not-leader redirect while
// its replication streams keep shipping the frozen tail, a follower
// drains to the fenced head, and promoting it loses nothing — the final
// state is byte-equal to a fault-free single-node run.
func TestClusterFenceDrainPromote(t *testing.T) {
	addrs := reserveAddrs(t, 3)
	servers := make([]*Server, 3)
	for i, addr := range addrs {
		servers[i] = startClusterNode(t, addr, addrs)
	}
	nodes := make([]client.ClusterNode, 3)
	for i, addr := range addrs {
		nodes[i] = client.ClusterNode{ID: addr, Addr: addr}
	}
	cl, err := client.DialCluster(nodes, 3,
		client.WithBatchSize(256),
		client.WithOpTimeout(2*time.Second),
		client.WithBackoff(10*time.Millisecond, 40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.FailoverWait = 15 * time.Second

	const name = "fence"
	cs, err := cl.Create(name, cluM, cluN, cluK, cluAlpha, cluSeed)
	if err != nil {
		t.Fatal(err)
	}
	pre := clusterEdges(55, 4096)
	if err := cs.Send(pre); err != nil {
		t.Fatal(err)
	}
	if err := cs.Flush(); err != nil {
		t.Fatal(err)
	}
	leaderIdx, _ := waitClusterConverged(t, servers, name, 15*time.Second)

	if err := servers[leaderIdx].Fence(name); err != nil {
		t.Fatalf("fence: %v", err)
	}
	// The fenced leader stops claiming the role and rejects direct writes.
	ri, err := servers[leaderIdx].SessionRole(name)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Role == wire.RoleLeader {
		t.Fatal("fenced leader still reports RoleLeader")
	}
	head := ri.Applied
	if head == 0 {
		t.Fatal("fenced head is 0 after ingest")
	}
	dc, err := client.Dial(addrs[leaderIdx], client.WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	dsess, err := dc.Create(name, cluM, cluN, cluK, cluAlpha, cluSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := dsess.Send(clusterEdges(3, 8)); err != nil {
		t.Fatal(err)
	}
	if err := dsess.Flush(); !errors.Is(err, client.ErrNotLeader) {
		t.Fatalf("write to fenced leader: err = %v, want ErrNotLeader", err)
	}

	// Shipping continues against the frozen head: a follower drains to it.
	drained := -1
	deadline := time.Now().Add(10 * time.Second)
	for drained < 0 && time.Now().Before(deadline) {
		for i, srv := range servers {
			if i == leaderIdx {
				continue
			}
			if fi, err := srv.SessionRole(name); err == nil && fi.Applied >= head {
				drained = i
				break
			}
		}
		if drained < 0 {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if drained < 0 {
		t.Fatalf("no follower drained to the fenced head %d", head)
	}

	servers[leaderIdx].Abort()
	if err := servers[drained].Promote(name); err != nil {
		t.Fatalf("promote: %v", err)
	}
	for i, srv := range servers {
		if i != drained && i != leaderIdx {
			srv.SetSessionLeader(name, addrs[drained])
		}
	}

	// The cluster client re-routes; post-fence traffic lands on the new
	// leader and the final state matches the full fault-free reference.
	post := clusterEdges(66, 2048)
	if err := cs.Send(post); err != nil {
		t.Fatal(err)
	}
	if err := cs.Flush(); err != nil {
		t.Fatal(err)
	}
	wantRes, wantDigest := clusterReference(t, name, append(append([]streamcover.Edge{}, pre...), post...))
	res, err := cs.Query()
	if err != nil {
		t.Fatal(err)
	}
	requireClusterResult(t, res, wantRes, "post-promotion query")
	digest, err := servers[drained].SessionDigest(name)
	if err != nil {
		t.Fatal(err)
	}
	if digest != wantDigest {
		t.Fatalf("promoted leader digest %s != reference %s", digest, wantDigest)
	}
}
