package server

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"streamcover"
	"streamcover/internal/replica"
	"streamcover/internal/wire"
)

// A session is one named estimation run: a set of shard workers, each
// owning a same-seed streamcover.Estimator, fed disjoint edge shards by
// hash. Because equal-seed estimators merge into a summary of the union
// of their shards (internal/core/merge.go), a query merges per-worker
// clones and finalizes the merged copy — ingest never stops.
type session struct {
	name  string
	m, n  int
	k     int
	alpha float64
	seed  int64

	workers []chan workerMsg
	ests    []*streamcover.Estimator // one per worker; owned so close can release their engines
	recycle []chan colShard          // per-worker shard-buffer free lists (see dispatch)
	hist    shardSizeHist            // recent shard lengths, drives shard capacity reservation
	hdrPool sync.Pool                // *[]colShard dispatch headers
	wg      sync.WaitGroup           // worker goroutines
	metrics *Metrics                 // server-wide counters (batch latency); may be nil in tests

	dur *durability // nil without a data dir

	// Degraded state (see degrade.go). A WAL append or checkpoint failure
	// leaves a batch applied to the workers without being durable, so no
	// later ingest may be acknowledged — an ack promises the whole
	// acknowledged prefix survives a crash. Unlike a permanent poison, the
	// condition is repairable in place: the recovery loop resets the WAL
	// and re-checkpoints, then clears degradedErr.
	fmu         sync.Mutex
	degradedErr error // non-nil: ingest rejected, queries still served
	diskFull    bool  // degradation was ENOSPC (drives server read-only mode)
	recovering  bool  // a recoverLoop goroutine is live
	recStopped  bool  // close() ran; no new recovery loops may start
	recStop     chan struct{}
	recWG       sync.WaitGroup
	retryMin    time.Duration // first recovery backoff
	retryMax    time.Duration // backoff ceiling

	dmu   sync.Mutex
	dedup map[uint64]dedupEntry // client source → replay horizon

	// omu orders durable ingest: WAL position assignment and worker
	// dispatch are one atomic step (see logAndDispatch), so the log's
	// replay order — the only order replicas and crash recovery ever see —
	// is the order the leader's own estimators saw.
	omu sync.Mutex

	// Cluster role (see cluster.go). A session is born leader; on nodes
	// that do not lead it, the server marks it a follower and attaches an
	// applier pulling the leader's WAL. swapMu guards the worker/estimator
	// set against replacement: a bootstrap swaps it wholesale, so clone
	// enqueues (query, digest) hold the read side. queueDepth is kept so
	// the swap can rebuild the queues at the configured capacity.
	// fenced stops a leader from accepting new writes ahead of an orderly
	// failover: acks are durable the moment they are sent, but shipping is
	// asynchronous, so a promotion is lossless only if the leader first
	// stops acking and the chosen follower drains the remaining tail.
	follower   atomic.Bool
	fenced     atomic.Bool
	appMu      sync.Mutex
	applier    *replica.Applier
	swapMu     sync.RWMutex
	queueDepth int

	// Residency (oversubscription; see oversub.go). A session is born
	// hydrated; the overseer may evict it down to its canonical checkpoint
	// — workers stopped, estimators freed, WAL parked — and any later
	// operation rehydrates it. evicted is guarded by resMu: operations pin
	// residency with the read side for their whole duration, eviction and
	// rehydration take the write side, so workers can never disappear
	// under a dispatch. The zero value (hydrated, no overseer) keeps every
	// pre-oversubscription construction path valid.
	resMu         sync.RWMutex
	evicted       bool
	ovs           *overseer    // nil when the server runs without a budget
	residentBytes atomic.Int64 // last checkpoint's encoded size (0 while evicted)
	lastAccess    atomic.Int64 // unix nanos of the last op touch (LRU clock)
	rehydrations  atomic.Int64
	// wakers counts operations between arrival and their residency pin —
	// including the unlocked instant after a successful rehydration but
	// before the waker re-acquires the read side. Eviction refuses while
	// wakers > 0: without this, concurrent rehydrations of sibling
	// sessions under a tight budget can evict each other in that window
	// forever, a livelock in which no operation ever completes.
	wakers atomic.Int32

	mu     sync.Mutex
	closed bool
	ops    sync.WaitGroup // in-flight ingest/query dispatches

	edges   atomic.Int64
	batches atomic.Int64
	queries atomic.Int64
}

// colShard is one worker's share of a dispatched batch in column form —
// parallel set-ID and element-ID slices, the exact layout the estimator's
// ProcessColumns ingests with no per-edge conversion.
type colShard struct {
	sets, elems []uint32
}

// workerMsg is either a batch shard (clone == nil) or a snapshot
// request. A single channel per worker keeps the two ordered: a snapshot
// enqueued after a batch observes that batch.
type workerMsg struct {
	shard colShard
	clone chan<- cloneReply
}

type cloneReply struct {
	est *streamcover.Estimator
	err error
}

// dedupEntry is one client source's replay horizon. seq is the highest
// sequence accepted from the source; done, while non-nil, is closed once
// the ingest that accepted seq has settled — made the batch durable, or
// failed and poisoned the session (failErr). A duplicate may only be
// acknowledged against a settled entry — acking against a still-in-flight
// original would promise durability the WAL has not yet delivered, and a
// crash before the original's fsync would then lose an acknowledged batch.
type dedupEntry struct {
	seq  uint64
	done chan struct{}
}

// testHookAfterAccept, when non-nil, runs on the sequenced-ingest path
// after the dedup entry for (source, seq) is published and before the WAL
// append. Tests park an ingest here to model a batch stalled inside the
// group-commit fsync.
var testHookAfterAccept func(source, seq uint64)

func newSession(name string, m, n, k int, alpha float64, seed int64, workers, engineWorkers, queueDepth int, metrics *Metrics, arena *streamcover.InternArena) (*session, error) {
	ests := make([]*streamcover.Estimator, workers)
	for i := range ests {
		est, err := streamcover.NewEstimator(m, n, k, alpha,
			streamcover.WithSeed(seed), streamcover.WithParallelism(engineWorkers))
		if err != nil {
			return nil, err
		}
		est.SetInternArena(arena)
		ests[i] = est
	}
	return newSessionWith(name, m, n, k, alpha, seed, queueDepth, metrics, ests), nil
}

// newSessionWith builds a session around pre-made worker estimators —
// fresh ones for a new session, restored ones during crash recovery.
func newSessionWith(name string, m, n, k int, alpha float64, seed int64, queueDepth int, metrics *Metrics, ests []*streamcover.Estimator) *session {
	s := &session{
		name: name, m: m, n: n, k: k, alpha: alpha, seed: seed,
		metrics: metrics, dedup: make(map[uint64]dedupEntry), ests: ests,
		recStop: make(chan struct{}), retryMin: 50 * time.Millisecond, retryMax: 5 * time.Second,
		queueDepth: queueDepth,
	}
	w := len(ests)
	s.hdrPool.New = func() any { h := make([]colShard, w); return &h }
	s.startWorkers(ests)
	return s
}

// startWorkers builds the worker channel set around ests and starts one
// goroutine per estimator. Takes the swap lock: the worker set is the
// same one queries and queue-depth probes read under swapMu.RLock. The
// worker count must match the hdrPool's width (eviction and rehydration
// always rebuild at the configured count, so this holds).
func (s *session) startWorkers(ests []*streamcover.Estimator) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	s.ests = ests
	s.workers = make([]chan workerMsg, len(ests))
	s.recycle = make([]chan colShard, len(ests))
	for i, est := range ests {
		ch := make(chan workerMsg, s.queueDepth)
		s.workers[i] = ch
		s.recycle[i] = make(chan colShard, s.queueDepth+1)
		s.wg.Add(1)
		go s.runWorker(est, ch, s.recycle[i])
	}
}

// stopWorkers drains and stops the worker set: queues close, each worker
// exits after consuming what was already enqueued, and the estimators
// release their engines. Idempotent — close after evict (or vice versa)
// finds no workers and returns. Callers must exclude concurrent
// dispatches (close does it via ops.Wait; eviction via resMu).
func (s *session) stopWorkers() {
	s.swapMu.Lock()
	workers, ests := s.workers, s.ests
	s.workers, s.ests, s.recycle = nil, nil, nil
	s.swapMu.Unlock()
	for _, ch := range workers {
		close(ch)
	}
	s.wg.Wait()
	for _, est := range ests {
		est.Close()
	}
}

// scratchIdleAfter is how long a worker sits without traffic before it
// hands its batch scratch (interner tables) back to the shared arena. The
// delay keeps a single busy session from thrashing its scratch — release
// on every queue-empty observation would reallocate per batch — while an
// idle one among thousands still returns its working memory for the
// active sessions to reuse.
const scratchIdleAfter = 250 * time.Millisecond

func (s *session) runWorker(est *streamcover.Estimator, ch chan workerMsg, recycle chan colShard) {
	defer s.wg.Done()
	idle := time.NewTimer(scratchIdleAfter)
	defer idle.Stop()
	for {
		var msg workerMsg
		select {
		case m, ok := <-ch:
			// A closed channel still drains its buffered messages first, so
			// this keeps the drain-everything-then-exit contract.
			if !ok {
				return
			}
			msg = m
		case <-idle.C:
			est.ReleaseScratch()
			continue // timer not reset: release once, then block on ch
		}
		if !idle.Stop() {
			select {
			case <-idle.C:
			default:
			}
		}
		idle.Reset(scratchIdleAfter)
		if msg.clone != nil {
			c, err := est.Clone()
			msg.clone <- cloneReply{c, err}
			continue
		}
		start := time.Now()
		// IDs were validated against the session dims at decode time, so
		// the batched ingest cannot fail here. The shard columns feed the
		// estimator directly — the old path converted every shard into a
		// []streamcover.Edge first, a copy per edge the columnar layout
		// makes unnecessary.
		est.ProcessColumns(msg.shard.sets, msg.shard.elems)
		if s.metrics != nil {
			d := time.Since(start).Nanoseconds()
			s.metrics.BatchNanos.Add(d)
			s.metrics.LastBatchNanos.Store(d)
			s.metrics.BatchesProcessed.Add(1)
			s.metrics.IngestHist.Observe(d)
		}
		// Hand the buffers back once the estimator is done reading them.
		// (They cannot go back earlier as in the row days — ProcessColumns
		// reads the columns in place instead of converting them.)
		select {
		case recycle <- colShard{msg.shard.sets[:0], msg.shard.elems[:0]}:
		default:
		}
	}
}

// setResidentBytes records the session's resident footprint and keeps the
// overseer's global total in sync.
func (s *session) setResidentBytes(n int64) {
	old := s.residentBytes.Swap(n)
	if s.ovs != nil {
		s.ovs.residentBytes.Add(n - old)
	}
}

// residency reports the session's oversubscription state for /sessions
// and /metrics.
func (s *session) residency() (resident bool, bytes, lastAccess, rehydrations int64) {
	s.resMu.RLock()
	resident = !s.evicted
	s.resMu.RUnlock()
	return resident, s.residentBytes.Load(), s.lastAccess.Load(), s.rehydrations.Load()
}

// splitmix64 is the edge-shard hash: cheap, stateless, and well mixed so
// hot sets spread across workers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// begin registers an operation if the session is still open.
func (s *session) begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("server: session %q closed", s.name)
	}
	s.ops.Add(1)
	return nil
}

// logAndDispatch logs one batch and shards it to the workers, returning
// a channel that delivers the append's durability error. The WAL position
// assignment and the dispatch happen as one atomic step under omu:
// replicas (and crash recovery) replay the log in position order on a
// single goroutine, so the leader's own per-worker apply order must equal
// log order — otherwise two concurrent connections could interleave into
// the worker queues in one order and into the log in the other, and the
// leader's estimator bytes would diverge from every follower's. Only the
// group-commit fsync — the slow half — runs outside the lock, so it still
// overlaps the dispatch and later batches. The caller must receive from
// the channel before acknowledging (an ack still implies durability) and
// before releasing pmu (the checkpoint invariant requires no in-flight
// append under pmu.Lock).
func (s *session) logAndDispatch(d *durability, rec []byte, sets, elems []uint32) <-chan error {
	ch := make(chan error, 1)
	s.omu.Lock()
	if d.appendFn != nil {
		// Test seam: appendFn stands in for the whole append (write and
		// fsync both), so it keeps the fully-overlapped shape.
		go func() {
			_, err := d.appendFn(rec)
			ch <- err
		}()
		s.dispatch(sets, elems)
		s.omu.Unlock()
		return ch
	}
	_, wait, err := d.wal.AppendStart(rec)
	// Dispatch even when the write failed: the degrade path treats the
	// batch as applied-but-not-durable either way, and recovery's fresh
	// checkpoint re-anchors the log at the applied state.
	s.dispatch(sets, elems)
	s.omu.Unlock()
	if err != nil {
		ch <- err
		return ch
	}
	go func() { ch <- wait() }()
	return ch
}

// ingest logs and shards one validated unsequenced batch, overlapping the
// WAL fsync with the worker dispatch. sets/elems are the batch's columns
// (both wire encodings decode into this form); rec is the WAL record for
// the batch (type byte + wire payload), ignored when the session has no
// durability.
func (s *session) ingest(sets, elems []uint32, rec []byte) error {
	release, err := s.beginResident()
	if err != nil {
		return err
	}
	defer release()
	d := s.dur
	if d == nil {
		s.dispatch(sets, elems)
		return nil
	}
	d.pmu.RLock()
	defer d.pmu.RUnlock()
	if err := s.degraded(); err != nil {
		return err
	}
	appended := s.logAndDispatch(d, rec, sets, elems)
	if err := <-appended; err != nil {
		// The batch is applied but not durable; no future ack may claim
		// otherwise. Degrade (recovery will re-checkpoint the applied
		// state) and answer with the typed transient error so the client
		// parks the batch instead of treating the session as dead. The
		// ingest counters are bumped here because the handler, seeing an
		// error, will not: the edges are in the estimators.
		if s.metrics != nil {
			s.metrics.WALAppendFailures.Add(1)
			s.metrics.EdgesIngested.Add(int64(len(sets)))
			s.metrics.Batches.Add(1)
		}
		s.degrade(err)
		return s.degraded()
	}
	return nil
}

// ingestSeq is the exactly-once ingest path: drop the batch if this
// (source, seq) was already applied, otherwise log it durably and shard
// it. The ack the caller sends on a nil error therefore promises the
// batch survives a crash, and a client replaying unacknowledged batches
// after a reconnect cannot double-count. Returns whether the batch was
// applied (false: recognized duplicate, still acknowledged).
//
// Accepted batches are serialized per source: a second ingest for the
// same source — the next sequence, or a duplicate resent over a fresh
// connection while the original is still inside the group-commit fsync —
// waits until the previous one settles. A duplicate's ack therefore never
// outruns the durability of the batch it vouches for, which is exactly
// the reconnect-then-crash window the sequence numbers exist to cover.
//
// Like ingest, the WAL append and the worker dispatch run concurrently;
// the return (and so the ack) waits for both. On append failure the batch
// has already been applied, so instead of rolling back, the accepted
// horizon is KEPT (a resend of this seq must not be applied twice) and
// the session degrades — the resend is answered with the typed transient
// error rather than a false durability ack, and recovery's fresh
// checkpoint makes the applied batch durable before ingest resumes.
func (s *session) ingestSeq(source, seq uint64, rec []byte, sets, elems []uint32) (bool, error) {
	release, err := s.beginResident()
	if err != nil {
		return false, err
	}
	defer release()
	d := s.dur
	if d != nil {
		d.pmu.RLock()
		defer d.pmu.RUnlock()
	}
	for {
		if d != nil {
			// Checked inside the loop: a waiter parked on done must see the
			// failure the ingest it waited on just recorded (degrade() runs
			// before close(done)), not ack a duplicate of a batch that
			// never became durable.
			if err := s.degraded(); err != nil {
				return false, err
			}
		}
		s.dmu.Lock()
		prev := s.dedup[source]
		if prev.done != nil {
			// The ingest that accepted prev.seq is still logging; wait for
			// it to settle, then re-evaluate.
			done := prev.done
			s.dmu.Unlock()
			<-done
			continue
		}
		if seq <= prev.seq {
			s.dmu.Unlock()
			return false, nil
		}
		var done chan struct{}
		if d != nil {
			done = make(chan struct{})
		}
		s.dedup[source] = dedupEntry{seq: seq, done: done}
		s.dmu.Unlock()
		if hook := testHookAfterAccept; hook != nil {
			hook(source, seq)
		}
		if d == nil {
			s.dispatch(sets, elems)
			return true, nil
		}
		appended := s.logAndDispatch(d, rec, sets, elems)
		err := <-appended
		if err != nil {
			// Applied but not durable: count the ingest here (the handler
			// sees an error and will not) and degrade.
			if s.metrics != nil {
				s.metrics.WALAppendFailures.Add(1)
				s.metrics.EdgesIngested.Add(int64(len(sets)))
				s.metrics.Batches.Add(1)
			}
			s.degrade(err)
		}
		// Settle the entry at the accepted horizon either way — the batch
		// was applied. The entry is still ours (anyone else is parked on
		// done), so this cannot clobber a concurrent publish.
		s.dmu.Lock()
		s.dedup[source] = dedupEntry{seq: seq}
		s.dmu.Unlock()
		close(done)
		if err != nil {
			return false, s.degraded()
		}
		return true, nil
	}
}

// shardSizeHist is a histogram of recently observed shard lengths in
// power-of-two buckets. dispatch reserves the largest recently seen
// bucket's upper bound for fresh shard buffers: the old len(edges)/w+1
// reservation under-reserved for roughly half the shards every batch
// (hash sharding scatters around the mean), paying a grow-copy per
// overfull shard. Counts are halved periodically so the hint tracks the
// current batch-size regime instead of a historical spike. All methods
// are safe for concurrent dispatchers.
type shardSizeHist struct {
	buckets [21]atomic.Uint32 // bucket b counts shard lengths < 2^b
	n       atomic.Uint32
}

func (h *shardSizeHist) record(sz int) {
	b := bits.Len(uint(sz))
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b].Add(1)
	if h.n.Add(1)%256 == 0 {
		for i := range h.buckets {
			for {
				v := h.buckets[i].Load()
				if h.buckets[i].CompareAndSwap(v, v/2) {
					break
				}
			}
		}
	}
}

// hint returns the reservation covering the largest populated bucket
// (0 before any batch: dispatch then falls back to the mean).
func (h *shardSizeHist) hint() int {
	for b := len(h.buckets) - 1; b >= 0; b-- {
		if h.buckets[b].Load() > 0 {
			return 1 << b
		}
	}
	return 0
}

// dispatch shards one batch of columns across the workers. Sends block
// when a worker's queue is full — that backpressure propagates to the TCP
// reader, which stops acking, which stalls the client's pipeline.
//
// Per-batch allocations are pooled: the shard header comes from hdrPool,
// and each worker's shard columns are reclaimed from that worker's free
// list (runWorker returns them after processing), sized by the
// shard-length histogram when fresh ones are needed. The caller's columns
// are only read here — on return they may be reused for the next decode.
func (s *session) dispatch(sets, elems []uint32) {
	w := len(s.workers)
	hdr := s.hdrPool.Get().(*[]colShard)
	shards := *hdr
	per := s.hist.hint()
	if per == 0 {
		per = len(sets)/w + 1
	}
	for j, set := range sets {
		elem := elems[j]
		i := int(splitmix64(uint64(set)<<32|uint64(elem)) % uint64(w))
		if shards[i].sets == nil {
			select {
			case shards[i] = <-s.recycle[i]:
			default:
				shards[i] = colShard{make([]uint32, 0, per), make([]uint32, 0, per)}
			}
		}
		shards[i].sets = append(shards[i].sets, set)
		shards[i].elems = append(shards[i].elems, elem)
	}
	for i := range shards {
		if len(shards[i].sets) > 0 { // buffers are only claimed on a shard's first edge
			s.hist.record(len(shards[i].sets))
			s.workers[i] <- workerMsg{shard: shards[i]}
		}
		shards[i] = colShard{} // drop the references before pooling the header
	}
	s.hdrPool.Put(hdr)
	s.edges.Add(int64(len(sets)))
	s.batches.Add(1)
}

// query snapshots every worker (a clone request rides the same queue as
// batches, so everything acked before the query is included), then merges
// the clones and finalizes off the ingest path.
func (s *session) query(metrics *Metrics) (wire.Result, error) {
	release, err := s.beginResident()
	if err != nil {
		return wire.Result{}, err
	}
	defer release()
	s.queries.Add(1)
	// The read lock covers only the enqueue: once the clone requests are
	// queued they are answered even if a bootstrap swaps the workers out —
	// an exiting worker drains its whole queue first.
	s.swapMu.RLock()
	replies := make([]chan cloneReply, len(s.workers))
	for i, ch := range s.workers {
		r := make(chan cloneReply, 1)
		replies[i] = r
		ch <- workerMsg{clone: r}
	}
	s.swapMu.RUnlock()
	start := time.Now()
	var merged *streamcover.Estimator
	for _, r := range replies {
		rep := <-r
		if rep.err != nil {
			return wire.Result{}, rep.err
		}
		if merged == nil {
			merged = rep.est
		} else if err := merged.Merge(rep.est); err != nil {
			return wire.Result{}, err
		}
	}
	res := merged.Result()
	if metrics != nil {
		d := time.Since(start).Nanoseconds()
		metrics.MergeNanos.Add(d)
		metrics.LastMergeNanos.Store(d)
		metrics.QueryHist.Observe(d)
	}
	return wire.Result{
		Coverage:   res.Coverage,
		Feasible:   res.Feasible,
		SpaceWords: res.SpaceWords,
		Edges:      merged.Edges(),
		SetIDs:     res.SetIDs,
	}, nil
}

// close drains and stops the workers: new operations are rejected,
// in-flight dispatches finish, then the queues close, each worker exits
// after consuming what was already enqueued, and the estimators release
// their batch-engine helpers.
func (s *session) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// Stop the replication stream first (followers): its in-flight Apply
	// finishes (it began before closed was set), the next one fails begin,
	// and the applier's loop exits.
	s.stopApplier()
	s.ops.Wait()
	s.stopRecovery()
	// resMu serializes against a concurrent eviction or rehydration;
	// stopWorkers is idempotent, so closing an evicted session (workers
	// already gone, state safe in the checkpoint) is a no-op here.
	s.resMu.Lock()
	s.stopWorkers()
	s.resMu.Unlock()
	// A closed session no longer counts against the memory budget.
	s.setResidentBytes(0)
}

// beginResident registers an operation AND pins the session hydrated,
// rehydrating it first when it is parked at its checkpoint. The returned
// release func drops both; callers must invoke it exactly once. Pinning
// is the read side of resMu, so any number of operations share a
// hydrated session while an eviction (write side) waits them out.
func (s *session) beginResident() (func(), error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	s.wakers.Add(1)
	defer s.wakers.Add(-1)
	for {
		s.resMu.RLock()
		if !s.evicted {
			s.lastAccess.Store(time.Now().UnixNano())
			return func() { s.resMu.RUnlock(); s.ops.Done() }, nil
		}
		s.resMu.RUnlock()
		if s.ovs == nil {
			// Unreachable: only an overseer evicts. Fail loudly, not nil-deref.
			s.ops.Done()
			return nil, fmt.Errorf("server: session %q evicted with no overseer", s.name)
		}
		if err := s.ovs.rehydrate(s); err != nil {
			s.ops.Done()
			return nil, err
		}
	}
}

// queueDepths reports the live per-worker queue occupancy.
func (s *session) queueDepths() []int {
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	d := make([]int, len(s.workers))
	for i, ch := range s.workers {
		d[i] = len(ch)
	}
	return d
}

// getApplier returns the session's replication applier, nil on leaders.
func (s *session) getApplier() *replica.Applier {
	s.appMu.Lock()
	defer s.appMu.Unlock()
	return s.applier
}

// stopApplier detaches and stops the replication stream, if any.
func (s *session) stopApplier() {
	s.appMu.Lock()
	a := s.applier
	s.applier = nil
	s.appMu.Unlock()
	if a != nil {
		a.Stop()
	}
}
