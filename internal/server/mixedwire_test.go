package server_test

import (
	"bufio"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"streamcover"
	"streamcover/internal/server"
	"streamcover/internal/stream"
	"streamcover/internal/wire"
)

// rawConn is a frame-level client for tests that need to pick the wire
// encoding (row MKC1 vs columnar MKC2) per batch — the real client always
// chooses for itself.
type rawConn struct {
	conn    net.Conn
	br      *bufio.Reader
	scratch []byte
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawConn{conn: conn, br: bufio.NewReader(conn), scratch: make([]byte, 1<<12)}
}

// roundTrip writes one frame and reads the response frame.
func (r *rawConn) roundTrip(t *testing.T, typ byte, payload []byte) (byte, []byte) {
	t.Helper()
	if err := wire.WriteFrame(r.conn, typ, payload); err != nil {
		t.Fatal(err)
	}
	rtyp, rpayload, err := wire.ReadFrame(r.br, r.scratch)
	if err != nil {
		t.Fatal(err)
	}
	return rtyp, rpayload
}

// expectOK writes one frame and requires a TOK back.
func (r *rawConn) expectOK(t *testing.T, typ byte, payload []byte) {
	t.Helper()
	if rtyp, rpayload := r.roundTrip(t, typ, payload); rtyp != wire.TOK {
		t.Fatalf("frame 0x%02x answered 0x%02x: %s", typ, rtyp, rpayload)
	}
}

// encodeMixedBatch encodes batch i over one of the four ingest shapes —
// {row, columnar} × {plain, sequenced} — cycling so a session's WAL holds
// every combination interleaved.
func encodeMixedBatch(i int, name string, batch []streamcover.Edge, source, seq uint64) (byte, []byte) {
	rows := make([]stream.Edge, len(batch))
	sets := make([]uint32, len(batch))
	elems := make([]uint32, len(batch))
	for j, e := range batch {
		rows[j] = stream.Edge{Set: e.Set, Elem: e.Elem}
		sets[j], elems[j] = e.Set, e.Elem
	}
	switch i % 4 {
	case 0:
		return wire.TIngest, wire.EncodeIngest(nil, name, rows, durM, durN)
	case 1:
		return wire.TIngest, wire.EncodeIngestColumns(nil, name, sets, elems, durM, durN)
	case 2:
		return wire.TIngestSeq, wire.EncodeIngestSeq(nil, name, source, seq, rows, durM, durN)
	default:
		return wire.TIngestSeq, wire.EncodeIngestSeqColumns(nil, name, source, seq, sets, elems, durM, durN)
	}
}

// feedMixed streams edges to the session in fixed-size batches cycling
// through all four ingest shapes, acking each.
func feedMixed(t *testing.T, r *rawConn, name string, edges []streamcover.Edge, batchSize int, seq *uint64) {
	t.Helper()
	for i, off := 0, 0; off < len(edges); i, off = i+1, off+batchSize {
		end := off + batchSize
		if end > len(edges) {
			end = len(edges)
		}
		*seq++
		typ, payload := encodeMixedBatch(i, name, edges[off:end], 777, *seq)
		r.expectOK(t, typ, payload)
	}
}

func queryRaw(t *testing.T, r *rawConn, name string) wire.Result {
	t.Helper()
	typ, payload := r.roundTrip(t, wire.TQuery, wire.EncodeRef(name))
	if typ != wire.TResult {
		t.Fatalf("query answered 0x%02x: %s", typ, payload)
	}
	res, err := wire.DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func requireSameWireResult(t *testing.T, got, want wire.Result, what string) {
	t.Helper()
	if got.Edges != want.Edges {
		t.Fatalf("%s: %d edges, want %d", what, got.Edges, want.Edges)
	}
	if got.Coverage != want.Coverage || got.Feasible != want.Feasible {
		t.Fatalf("%s: (%v, %v), want bit-identical (%v, %v)", what, got.Coverage, got.Feasible, want.Coverage, want.Feasible)
	}
	if !reflect.DeepEqual(got.SetIDs, want.SetIDs) || got.SpaceWords != want.SpaceWords {
		t.Fatalf("%s: sets %v (%d words), want %v (%d words)",
			what, got.SetIDs, got.SpaceWords, want.SetIDs, want.SpaceWords)
	}
}

// mixedReference answers what an uninterrupted same-worker-count daemon
// holds after the stream — fed as plain row batches, since the claim
// under test is exactly that the mixed-encoding stream converges to it.
func mixedReference(t *testing.T, workers int, name string, edges []streamcover.Edge) wire.Result {
	t.Helper()
	s := startDurServer(t, server.Config{Workers: workers, QueueDepth: 8}, "127.0.0.1:0")
	t.Cleanup(s.Abort)
	r := dialRaw(t, s.TCPAddr().String())
	create := wire.Create{Name: name, M: durM, N: durN, K: durK, Alpha: durAlpha, Seed: durSeed}
	r.expectOK(t, wire.TCreate, create.Encode())
	rows := make([]stream.Edge, len(edges))
	for j, e := range edges {
		rows[j] = stream.Edge{Set: e.Set, Elem: e.Elem}
	}
	for off := 0; off < len(rows); off += 500 {
		end := off + 500
		if end > len(rows) {
			end = len(rows)
		}
		r.expectOK(t, wire.TIngest, wire.EncodeIngest(nil, name, rows[off:end], durM, durN))
	}
	return queryRaw(t, r, name)
}

// TestMixedWireWALRecovery is the mixed-encoding durability suite: one
// session ingests row and columnar batches interleaved (plain and
// sequenced), with WAL segments small enough that the mixed log rotates
// several times, a checkpoint lands mid-stream, and the daemon then dies
// with SIGKILL semantics. Recovery must replay the mixed tail — row and
// columnar records through the same fused decoder — to a state
// bit-identical to a crash-free daemon's.
func TestMixedWireWALRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{
		Workers: 3, QueueDepth: 8,
		DataDir: dir, CheckpointEvery: -1, WALNoSync: true,
		WALSegmentBytes: 4096, // ~1 batch per segment: the tail spans rotations
	}
	edges := durEdges(5, 12000)
	var seq uint64

	s1 := startDurServer(t, cfg, "127.0.0.1:0")
	r1 := dialRaw(t, s1.TCPAddr().String())
	create := wire.Create{Name: "mixed", M: durM, N: durN, K: durK, Alpha: durAlpha, Seed: durSeed}
	r1.expectOK(t, wire.TCreate, create.Encode())
	feedMixed(t, r1, "mixed", edges[:6000], 500, &seq)
	if err := s1.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	// These mixed batches live only in the WAL tail past the checkpoint.
	feedMixed(t, r1, "mixed", edges[6000:], 500, &seq)
	s1.Abort()

	s2 := startDurServer(t, cfg, "127.0.0.1:0")
	defer s2.Abort()
	if got := s2.Metrics().ReplayBatches.Load(); got != 12 {
		t.Fatalf("recovery replayed %d WAL batches, want the 12 mixed tail batches", got)
	}
	r2 := dialRaw(t, s2.TCPAddr().String())
	got := queryRaw(t, r2, "mixed")
	requireSameWireResult(t, got, mixedReference(t, cfg.Workers, "mixed-ref", edges), "recovered mixed-wire estimate")
}

// TestMixedWireTornTailRecovery tears the final record of a mixed log —
// a columnar sequenced batch, the shape a torn disk write would hit last
// — and requires recovery to come up cleanly on the intact prefix,
// bit-identical to a daemon that never saw the torn batch.
func TestMixedWireTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{
		Workers: 2, QueueDepth: 8,
		DataDir: dir, CheckpointEvery: -1, WALNoSync: true,
	}
	edges := durEdges(6, 8000)
	var seq uint64

	s1 := startDurServer(t, cfg, "127.0.0.1:0")
	r1 := dialRaw(t, s1.TCPAddr().String())
	create := wire.Create{Name: "torn", M: durM, N: durN, K: durK, Alpha: durAlpha, Seed: durSeed}
	r1.expectOK(t, wire.TCreate, create.Encode())
	feedMixed(t, r1, "torn", edges[:7500], 500, &seq)
	// Batch index 15 ≡ 3 (mod 4): the last record is columnar sequenced.
	seq++
	typ, payload := encodeMixedBatch(3, "torn", edges[7500:], 777, seq)
	r1.expectOK(t, typ, payload)
	s1.Abort()

	// Tear the tail: chop bytes off the end of the newest WAL segment, as
	// a crash mid-write would.
	seg := newestWALSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := startDurServer(t, cfg, "127.0.0.1:0")
	defer s2.Abort()
	r2 := dialRaw(t, s2.TCPAddr().String())
	got := queryRaw(t, r2, "torn")
	requireSameWireResult(t, got, mixedReference(t, cfg.Workers, "torn-ref", edges[:7500]), "post-torn-tail estimate")
}

// newestWALSegment returns the path of the highest-numbered WAL segment
// under the single session directory inside dataDir.
func newestWALSegment(t *testing.T, dataDir string) string {
	t.Helper()
	sessions, err := os.ReadDir(dataDir)
	if err != nil || len(sessions) != 1 {
		t.Fatalf("want one session dir under %s: %v %v", dataDir, sessions, err)
	}
	walDir := filepath.Join(dataDir, sessions[0].Name(), "wal")
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatalf("no WAL segments in %s", walDir)
	}
	sort.Strings(segs)
	return filepath.Join(walDir, segs[len(segs)-1])
}
