package server

import (
	"errors"
	"fmt"
	"time"

	"streamcover/internal/fault"
)

// ErrDegraded marks a session whose durability path is broken (a WAL
// append, fsync or checkpoint failed). The session keeps serving queries
// — its in-memory state is intact — but rejects ingest, because an ack
// would promise a durability it cannot currently deliver. A background
// loop retries recovery with exponential backoff; once the WAL is healthy
// again and a fresh checkpoint has captured the applied-but-not-durable
// batches, the session returns to normal with no restart.
var ErrDegraded = errors.New("session degraded")

// ErrReadOnly marks the server-wide disk-full mode: while any session is
// degraded because of ENOSPC, every ingest (on any session) is rejected
// with this typed error and queries keep being served. Writing more WAL
// on a full disk can only dig the hole deeper.
var ErrReadOnly = errors.New("server read-only")

// degrade records a durability failure and moves the session into the
// degraded state, starting the recovery loop if one is not already
// running. Idempotent for concurrent failures; only the first error is
// kept.
func (s *session) degrade(err error) {
	s.fmu.Lock()
	if s.degradedErr == nil && !s.recStopped {
		s.degradedErr = fmt.Errorf(
			"server: session %q: %w: ingest rejected while durability recovers: %w",
			s.name, ErrDegraded, err)
		if s.metrics != nil {
			s.metrics.DegradedSessions.Add(1)
			if fault.IsDiskFull(err) {
				s.diskFull = true
				s.metrics.DiskFullSessions.Add(1)
			}
		}
		if !s.recovering {
			s.recovering = true
			s.recWG.Add(1)
			go s.recoverLoop()
		}
	}
	s.fmu.Unlock()
}

// degraded reports the session's current degradation, nil when healthy.
func (s *session) degraded() error {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	return s.degradedErr
}

// health reports the session's health state for /healthz: "ok",
// "read-only" (degraded by a full disk) or "degraded", plus the causing
// error's message.
func (s *session) health() (status, detail string) {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	switch {
	case s.degradedErr == nil:
		return "ok", ""
	case s.diskFull:
		return "read-only", s.degradedErr.Error()
	default:
		return "degraded", s.degradedErr.Error()
	}
}

// recoverLoop retries tryRecover with exponential backoff until it
// succeeds or the session closes. One loop runs per degradation episode.
func (s *session) recoverLoop() {
	defer s.recWG.Done()
	backoff := s.retryMin
	for {
		select {
		case <-s.recStop:
			return
		case <-time.After(backoff):
		}
		if s.tryRecover() {
			return
		}
		backoff *= 2
		if backoff > s.retryMax {
			backoff = s.retryMax
		}
	}
}

// tryRecover attempts to bring a degraded session back: reset the WAL
// (clearing its sticky error and truncating any torn tail) under the
// checkpoint lock so no append races the rescan, then take a fresh
// checkpoint. The checkpoint is what restores the ack invariant — batches
// that were applied to the workers but never became durable are inside
// the snapshot, and the WAL tail the fault interrupted is truncated away
// beneath it. Only then is the degradation cleared.
func (s *session) tryRecover() bool {
	d := s.dur
	if d == nil {
		return true // nothing durable to repair
	}
	d.pmu.Lock()
	err := d.wal.Reset()
	d.pmu.Unlock()
	if err != nil {
		return false
	}
	if err := s.checkpoint(s.metrics); err != nil {
		return false
	}
	s.fmu.Lock()
	s.degradedErr = nil
	s.recovering = false
	if s.metrics != nil {
		s.metrics.DegradedSessions.Add(-1)
		if s.diskFull {
			s.metrics.DiskFullSessions.Add(-1)
		}
		s.metrics.DurabilityRecoveries.Add(1)
	}
	s.diskFull = false
	s.fmu.Unlock()
	return true
}

// stopRecovery halts the recovery loop (session close) and, if the
// session dies while still degraded, releases its claim on the
// server-wide gauges so a closed session cannot pin the server
// read-only. The recStopped flag, set under fmu before the join, keeps a
// late degrade (e.g. CheckpointAll erroring against a closing session)
// from starting a loop the join would miss or re-incrementing gauges
// after the cleanup.
func (s *session) stopRecovery() {
	s.fmu.Lock()
	s.recStopped = true
	s.fmu.Unlock()
	close(s.recStop)
	s.recWG.Wait()
	s.fmu.Lock()
	if s.degradedErr != nil && s.metrics != nil {
		s.metrics.DegradedSessions.Add(-1)
		if s.diskFull {
			s.metrics.DiskFullSessions.Add(-1)
		}
	}
	s.fmu.Unlock()
}
