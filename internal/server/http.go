package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"streamcover/internal/wire"
)

// sessionInfo is one row of the /sessions listing.
type sessionInfo struct {
	Name        string  `json:"name"`
	M           int     `json:"m"`
	N           int     `json:"n"`
	K           int     `json:"k"`
	Alpha       float64 `json:"alpha"`
	Seed        int64   `json:"seed"`
	Edges       int64   `json:"edges"`
	Batches     int64   `json:"batches"`
	Queries     int64   `json:"queries"`
	QueueDepths []int   `json:"queue_depths"`

	// Residency (oversubscription). Hydrated sessions have live workers;
	// evicted ones are parked at their checkpoints until the next op.
	Hydrated      bool    `json:"hydrated"`
	ResidentBytes int64   `json:"resident_bytes"`
	LastAccessAge float64 `json:"last_access_age_seconds,omitempty"`
	Rehydrations  int64   `json:"rehydrations"`
}

// queryResponse is the JSON shape of /query.
type queryResponse struct {
	Session    string   `json:"session"`
	Coverage   float64  `json:"coverage"`
	Feasible   bool     `json:"feasible"`
	SetIDs     []uint32 `json:"set_ids"`
	SpaceWords int      `json:"space_words"`
	Edges      int      `json:"edges"`
}

// httpHandler builds the live query/observability endpoint: /query runs
// the same snapshot-merge path as the TCP protocol, /sessions inventories
// the live sessions, /metrics dumps the counters, and /debug/pprof/*
// exposes the standard Go profiler so ingest hot paths can be profiled
// in production (mounted explicitly — the server uses its own mux, so
// net/http/pprof's DefaultServeMux registration would not be reachable).
func (s *Server) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("session")
		if name == "" {
			http.Error(w, "missing ?session=", http.StatusBadRequest)
			return
		}
		res, err := s.querySession(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, queryResponse{
			Session:    name,
			Coverage:   res.Coverage,
			Feasible:   res.Feasible,
			SetIDs:     res.SetIDs,
			SpaceWords: res.SpaceWords,
			Edges:      res.Edges,
		})
	})
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		infos := make([]sessionInfo, 0, len(s.sessions))
		for _, sess := range s.sessions {
			hydrated, bytes, last, rehyd := sess.residency()
			info := sessionInfo{
				Name:          sess.name,
				M:             sess.m,
				N:             sess.n,
				K:             sess.k,
				Alpha:         sess.alpha,
				Seed:          sess.seed,
				Edges:         sess.edges.Load(),
				Batches:       sess.batches.Load(),
				Queries:       sess.queries.Load(),
				QueueDepths:   sess.queueDepths(),
				Hydrated:      hydrated,
				ResidentBytes: bytes,
				Rehydrations:  rehyd,
			}
			if last > 0 {
				info.LastAccessAge = time.Since(time.Unix(0, last)).Seconds()
			}
			infos = append(infos, info)
		}
		s.mu.Unlock()
		sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
		writeJSON(w, infos)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		counters := s.metrics.snapshot()
		queues := map[string][]int{}
		durability := map[string]durabilityInfo{}
		var hydrated, evicted, residentBytes int64
		s.mu.Lock()
		for name, sess := range s.sessions {
			queues[name] = sess.queueDepths()
			if d := sess.dur; d != nil {
				ckptPos := d.ckptPos.Load()
				durability[name] = durabilityInfo{
					WALLastPos:    d.wal.LastPos(),
					CheckpointPos: ckptPos,
					WALDepth:      d.wal.Depth(ckptPos + 1),
					CheckpointAge: time.Since(time.Unix(0, d.lastCkptNanos.Load())).Seconds(),
				}
			}
			if h, bytes, _, _ := sess.residency(); h {
				hydrated++
				residentBytes += bytes
			} else {
				evicted++
			}
		}
		s.mu.Unlock()
		// Residency gauges are computed live from the session map rather
		// than counter-maintained across every close/evict path.
		counters["resident_sessions"] = hydrated
		counters["evicted_sessions"] = evicted
		counters["resident_bytes"] = residentBytes
		counters["mem_budget_bytes"] = s.cfg.MemBudget
		if st := s.cfg.arena.Stats(); st.Leases > 0 {
			counters["intern_arena_leases"] = int64(st.Leases)
			counters["intern_arena_hits"] = int64(st.Hits)
			counters["intern_arena_returns"] = int64(st.Returns)
			counters["intern_arena_retained"] = int64(st.Retained)
		}
		out := map[string]any{"counters": counters, "queue_depths": queues}
		if len(durability) > 0 {
			out["durability"] = durability
		}
		// Raw power-of-two latency buckets, for collectors that want to
		// merge or re-quantile across scrapes; the counters above already
		// carry the derived p50/p95/p99.
		hists := map[string]histInfo{}
		if up, ct := s.metrics.IngestHist.Buckets(); len(up) > 0 {
			hists["ingest_batch_nanos"] = histInfo{Uppers: up, Counts: ct}
		}
		if up, ct := s.metrics.QueryHist.Buckets(); len(up) > 0 {
			hists["query_merge_nanos"] = histInfo{Uppers: up, Counts: ct}
		}
		if up, ct := s.metrics.RehydrateHist.Buckets(); len(up) > 0 {
			hists["rehydration_nanos"] = histInfo{Uppers: up, Counts: ct}
		}
		if len(hists) > 0 {
			out["latency_buckets"] = hists
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		type sessionHealth struct {
			Status string `json:"status"`
			Error  string `json:"error,omitempty"`
		}
		sessions := map[string]sessionHealth{}
		s.mu.Lock()
		for name, sess := range s.sessions {
			st, detail := sess.health()
			sessions[name] = sessionHealth{Status: st, Error: detail}
		}
		s.mu.Unlock()
		// Server-wide status: read-only dominates (every ingest is being
		// rejected), then degraded (some session's durability is broken),
		// then ok. Non-ok answers 503 so load balancers and probes that
		// only look at the status code drain the instance.
		status := "ok"
		switch {
		case s.metrics.DiskFullSessions.Load() > 0:
			status = "read-only"
		case s.metrics.DegradedSessions.Load() > 0:
			status = "degraded"
		}
		if status != "ok" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{"status": status, "sessions": sessions})
			return
		}
		writeJSON(w, map[string]any{"status": status, "sessions": sessions})
	})
	mux.HandleFunc("/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if err := s.CheckpointAll(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]any{"checkpointed": true})
	})
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		info := clusterInfo{Node: s.cfg.NodeID, Sessions: map[string]clusterSessionInfo{}}
		if s.ring != nil {
			info.Peers = s.ring.Members()
		}
		s.mu.Lock()
		names := make([]string, 0, len(s.sessions))
		for name := range s.sessions {
			names = append(names, name)
		}
		s.mu.Unlock()
		for _, name := range names {
			ri, err := s.SessionRole(name)
			if err != nil {
				continue // closed or promoting between the listing and here
			}
			row := clusterSessionInfo{
				Role:    "leader",
				Leader:  ri.LeaderAddr,
				Applied: ri.Applied,
			}
			if ri.Role == wire.RoleFollower {
				row.Role = "follower"
				row.StalenessSeconds = time.Duration(ri.StalenessNanos).Seconds()
			}
			info.Sessions[name] = row
		}
		writeJSON(w, info)
	})
	mux.HandleFunc("/digest", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("session")
		if name == "" {
			http.Error(w, "missing ?session=", http.StatusBadRequest)
			return
		}
		digest, err := s.SessionDigest(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]string{"session": name, "digest": digest})
	})
	mux.HandleFunc("/fence", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		name := r.URL.Query().Get("session")
		if name == "" {
			http.Error(w, "missing ?session=", http.StatusBadRequest)
			return
		}
		if err := s.Fence(name); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, map[string]any{"session": name, "fenced": true})
	})
	mux.HandleFunc("/promote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		name := r.URL.Query().Get("session")
		if name == "" {
			http.Error(w, "missing ?session=", http.StatusBadRequest)
			return
		}
		if err := s.Promote(name); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, map[string]any{"session": name, "promoted": true, "leader": s.cfg.NodeID})
	})
	mux.HandleFunc("/leader", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		name, leader := r.URL.Query().Get("session"), r.URL.Query().Get("leader")
		if name == "" || leader == "" {
			http.Error(w, "missing ?session= or ?leader=", http.StatusBadRequest)
			return
		}
		s.SetSessionLeader(name, leader)
		writeJSON(w, map[string]any{"session": name, "leader": leader})
	})
	return mux
}

// clusterInfo is the /cluster payload: this node's identity and its view
// of every local session's role and replication progress.
type clusterInfo struct {
	Node     string                        `json:"node,omitempty"`
	Peers    []string                      `json:"peers,omitempty"`
	Sessions map[string]clusterSessionInfo `json:"sessions"`
}

type clusterSessionInfo struct {
	Role             string  `json:"role"`
	Leader           string  `json:"leader"`
	Applied          uint64  `json:"applied"`
	StalenessSeconds float64 `json:"staleness_seconds,omitempty"`
}

// histInfo is one latency histogram in the /metrics payload: parallel
// bucket-upper-bound and count slices, non-empty buckets only.
type histInfo struct {
	Uppers []int64 `json:"uppers"`
	Counts []int64 `json:"counts"`
}

// durabilityInfo is the per-session durability row in /metrics: how far
// the WAL has grown past the last checkpoint, and how stale that
// checkpoint is.
type durabilityInfo struct {
	WALLastPos    uint64  `json:"wal_last_pos"`
	CheckpointPos uint64  `json:"checkpoint_pos"`
	WALDepth      uint64  `json:"wal_depth"`
	CheckpointAge float64 `json:"checkpoint_age_seconds"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
