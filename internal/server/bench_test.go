package server_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"streamcover"
	"streamcover/internal/client"
	"streamcover/internal/server"
)

// BenchmarkServerIngest measures client→server edge throughput over
// localhost: the full path of batch encode, framed write, decode, shard
// and worker Process, with pipelined acks.
func BenchmarkServerIngest(b *testing.B) {
	const (
		m, n, k = 2000, 100000, 40
		alpha   = 8.0
	)
	s := server.New(server.Config{})
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	c, err := client.Dial(s.TCPAddr().String(), client.WithBatchSize(8192))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create("bench", m, n, k, alpha, 1)
	if err != nil {
		b.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	chunk := make([]streamcover.Edge, 1<<16)
	for i := range chunk {
		chunk[i] = streamcover.Edge{Set: uint32(rng.Intn(m)), Elem: uint32(rng.Intn(n))}
	}

	b.ReportAllocs()
	b.ResetTimer()
	sent := 0
	for sent < b.N {
		batch := chunk
		if rem := b.N - sent; rem < len(batch) {
			batch = batch[:rem]
		}
		if err := sess.Send(batch); err != nil {
			b.Fatal(err)
		}
		sent += len(batch)
	}
	if err := sess.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}
