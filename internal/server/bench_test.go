package server_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"streamcover"
	"streamcover/internal/client"
	"streamcover/internal/server"
)

// BenchmarkServerIngest measures client→server edge throughput over
// localhost: the full path of batch encode, framed write, decode, shard
// and worker Process, with pipelined acks. Sub-benchmarks cross the wire
// layout (columnar MKC2 default vs legacy row MKC1) with the daemon's
// worker count; on a single-CPU host the higher worker tiers measure
// dispatch overhead only, on multi-core they measure scaling. Headline
// numbers live in BENCH_hotpath.json; regenerate with
//
//	go test -run=NONE -bench=ServerIngest -benchtime=3x ./internal/server/
func BenchmarkServerIngest(b *testing.B) {
	wires := []struct {
		name string
		opts []client.Option
	}{
		{"columnar", nil},
		{"row", []client.Option{client.WithRowWire()}},
	}
	for _, w := range wires {
		b.Run("wire="+w.name, func(b *testing.B) {
			for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
				b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
					benchServerIngest(b, workers, w.opts)
				})
			}
		})
	}
}

func benchServerIngest(b *testing.B, workers int, opts []client.Option) {
	const (
		m, n, k = 2000, 100000, 40
		alpha   = 8.0
	)
	s := server.New(server.Config{Workers: workers})
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	c, err := client.Dial(s.TCPAddr().String(),
		append([]client.Option{client.WithBatchSize(8192)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create("bench", m, n, k, alpha, 1)
	if err != nil {
		b.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	chunk := make([]streamcover.Edge, 1<<16)
	for i := range chunk {
		chunk[i] = streamcover.Edge{Set: uint32(rng.Intn(m)), Elem: uint32(rng.Intn(n))}
	}

	b.ReportAllocs()
	b.ResetTimer()
	sent := 0
	for sent < b.N {
		batch := chunk
		if rem := b.N - sent; rem < len(batch) {
			batch = batch[:rem]
		}
		if err := sess.Send(batch); err != nil {
			b.Fatal(err)
		}
		sent += len(batch)
	}
	if err := sess.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}
