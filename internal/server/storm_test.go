package server_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"streamcover/internal/client"
	"streamcover/internal/fault"
	"streamcover/internal/server"
)

// TestCrashStormSoak is the randomized robustness soak: a seeded loop of
// injected durability faults (fsync errors, write errors, disk-budget
// exhaustion with torn writes) interleaved with SIGKILL-style crashes
// (Abort, no checkpoint, no drain) and restarts on the same address,
// while a single reconnecting client streams the whole edge set through
// the chaos. The invariants at the end are absolute:
//
//   - exactly-once ingest: the final edge count equals the input exactly
//     (zero acked-then-lost batches, zero duplicate applies), and
//   - bit-identical state: the final estimate matches a fault-free
//     reference run byte for byte (coverage, set IDs, space).
//
// The seed makes a failure reproducible: every fault window, crash point
// and chunk boundary derives from it.
func TestCrashStormSoak(t *testing.T) {
	const cycles = 24
	inj := fault.NewInjector(nil)
	cfg := server.Config{
		Workers: 2, QueueDepth: 8,
		DataDir: t.TempDir(), CheckpointEvery: -1,
		FS:       inj,
		RetryMin: 2 * time.Millisecond, RetryMax: 20 * time.Millisecond,
	}
	edges := durEdges(21, cycles*1000)
	rng := rand.New(rand.NewSource(21))

	s := startDurServer(t, cfg, "127.0.0.1:0")
	addr := s.TCPAddr().String()
	defer func() {
		inj.Clear()
		s.Abort()
	}()
	c := dialDur(t, addr,
		client.WithBatchSize(250), client.WithMaxPending(4),
		client.WithReconnect(200), client.WithBackoff(2*time.Millisecond, 20*time.Millisecond),
		client.WithOpTimeout(30*time.Second))
	sess := createDur(t, c, "storm")

	chunk := len(edges) / cycles
	crashes, faults := 0, 0
	var clearTimer *time.Timer
	defer func() {
		if clearTimer != nil {
			clearTimer.Stop()
		}
	}()
	for cycle := 0; cycle < cycles; cycle++ {
		if clearTimer != nil {
			clearTimer.Stop() // a stale timer must not shorten this cycle's window
		}
		armed := true
		switch rng.Intn(4) {
		case 0:
			inj.FailSyncs(1+rng.Intn(3), nil)
		case 1:
			inj.FailWrites(1+rng.Intn(2), nil)
		case 2:
			inj.SetDiskBudget(int64(64 + rng.Intn(2048)))
		case 3:
			// Clean cycle: chaos comes from the crash half below.
			armed = false
		}
		if armed {
			faults++
			// Bound the fault window on a timer, independent of how long
			// Send blocks: a disk that stays full forever would (rightly)
			// exhaust the client's retry budget — the storm models faults
			// that clear, like space being freed or an fsync blip passing.
			clearTimer = time.AfterFunc(time.Duration(5+rng.Intn(40))*time.Millisecond, inj.Clear)
		}
		if err := sess.Send(edges[cycle*chunk : (cycle+1)*chunk]); err != nil {
			t.Fatalf("cycle %d: send: %v (degraded=%d diskfull=%d busy=%d recov=%d)", cycle, err,
				s.Metrics().DegradedSessions.Load(), s.Metrics().DiskFullSessions.Load(),
				s.Metrics().BusyRejects.Load(), s.Metrics().DurabilityRecoveries.Load())
		}
		t.Logf("cycle %d: degraded=%d diskfull=%d busy=%d recov=%d walfail=%d ckptfail=%d", cycle,
			s.Metrics().DegradedSessions.Load(), s.Metrics().DiskFullSessions.Load(),
			s.Metrics().BusyRejects.Load(), s.Metrics().DurabilityRecoveries.Load(),
			s.Metrics().WALAppendFailures.Load(), s.Metrics().CheckpointFailures.Load())
		if rng.Intn(2) == 0 {
			// Close the fault window, then barrier: every batch sent so
			// far must be durably applied before the next cycle.
			inj.Clear()
			if err := sess.Flush(); err != nil {
				t.Fatalf("cycle %d: flush: %v", cycle, err)
			}
		} else {
			// SIGKILL-style crash with batches (and possibly a degraded
			// session) in flight; the client rides through the restart and
			// replays everything unacknowledged.
			inj.Clear()
			s.Abort()
			s = startDurServer(t, cfg, addr)
			crashes++
		}
	}
	if crashes < 5 || faults < 5 {
		t.Fatalf("storm too tame for this seed: %d crashes, %d fault windows", crashes, faults)
	}
	if err := sess.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}

	// Graceful shutdown, then one more recovery: the state that survives
	// the storm must be bit-identical to a run that never saw a fault.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	s = startDurServer(t, cfg, addr)
	got, err := dialDur(t, addr).Session("storm").Query()
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, referenceResult(t, cfg.Workers, edges), "post-storm estimate")
}
