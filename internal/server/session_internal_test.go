package server

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamcover"
	"streamcover/internal/stream"
)

func newTestDurSession(t *testing.T, name string) *session {
	t.Helper()
	dur, err := openDurability(t.TempDir(), name, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	ests := make([]*streamcover.Estimator, 2)
	for i := range ests {
		est, err := streamcover.NewEstimator(50, 500, 3, 4, streamcover.WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		ests[i] = est
	}
	sess := newSessionWith(name, 50, 500, 3, 4, 1, 8, nil, ests)
	sess.dur = dur
	t.Cleanup(func() {
		sess.close()
		dur.close()
	})
	return sess
}

// TestDuplicateAckWaitsForInFlightOriginal pins the no-acked-data-loss
// guarantee in the reconnect window: a duplicate (source, seq) arriving
// while the original batch is still inside the WAL append (group-commit
// fsync) must not be acknowledged until the original is durable. Acking
// early would let a crash before the original's fsync lose a batch the
// duplicate's ack vouched for.
func TestDuplicateAckWaitsForInFlightOriginal(t *testing.T) {
	sess := newTestDurSession(t, "seqdup")
	edges := []stream.Edge{{Set: 1, Elem: 2}, {Set: 3, Elem: 4}}
	rec := []byte{0x00, 0x01, 0x02}

	parked := make(chan struct{})
	release := make(chan struct{})
	released := false
	// On any failure path, unpark the original so the session cleanup's
	// ops.Wait doesn't hang the test binary.
	defer func() {
		if !released {
			close(release)
		}
	}()
	var once sync.Once
	testHookAfterAccept = func(source, seq uint64) {
		once.Do(func() {
			close(parked)
			<-release
		})
	}
	defer func() { testHookAfterAccept = nil }()

	origDone := make(chan error, 1)
	go func() {
		applied, err := sess.ingestSeq(7, 1, rec, edges)
		if err == nil && !applied {
			t.Error("original ingest reported duplicate")
		}
		origDone <- err
	}()
	<-parked

	dupDone := make(chan error, 1)
	var dupApplied atomic.Bool
	go func() {
		applied, err := sess.ingestSeq(7, 1, rec, edges)
		dupApplied.Store(applied)
		dupDone <- err
	}()

	select {
	case <-dupDone:
		t.Fatal("duplicate acknowledged while the original was still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	released = true
	close(release)
	if err := <-origDone; err != nil {
		t.Fatalf("original ingest: %v", err)
	}
	select {
	case err := <-dupDone:
		if err != nil {
			t.Fatalf("duplicate ingest: %v", err)
		}
		if dupApplied.Load() {
			t.Fatal("duplicate was applied, want recognized-and-dropped")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("duplicate never acknowledged after the original settled")
	}
	if got := sess.dur.wal.LastPos(); got != 1 {
		t.Fatalf("WAL holds %d records, want 1 (duplicate must not be logged)", got)
	}
}

// TestIngestSeqConcurrentSameSource drives many interleaved sequences and
// duplicates from one source through the sequenced path with a real
// fsyncing WAL. Every sequence must be applied at most once, the WAL must
// hold exactly the applied batches, and the surviving horizon must be the
// highest accepted sequence (run with -race to police the handshake).
func TestIngestSeqConcurrentSameSource(t *testing.T) {
	sess := newTestDurSession(t, "seqrace")
	edges := []stream.Edge{{Set: 9, Elem: 9}}
	rec := []byte{0x01}

	const goroutines, maxSeq = 8, 40
	var applied atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for seq := uint64(1); seq <= maxSeq; seq++ {
				ok, err := sess.ingestSeq(3, seq, rec, edges)
				if err != nil {
					t.Errorf("ingestSeq(%d): %v", seq, err)
					return
				}
				if ok {
					applied.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()

	sess.dmu.Lock()
	entry := sess.dedup[3]
	sess.dmu.Unlock()
	if entry.done != nil {
		t.Fatal("dedup entry left in-flight after all ingests returned")
	}
	if entry.seq != maxSeq {
		t.Fatalf("final horizon %d, want %d", entry.seq, maxSeq)
	}
	got := applied.Load()
	if got < 1 || got > maxSeq {
		t.Fatalf("%d batches applied, want between 1 and %d", got, maxSeq)
	}
	if walRecs := int64(sess.dur.wal.LastPos()); walRecs != got {
		t.Fatalf("WAL holds %d records but %d batches were applied", walRecs, got)
	}
}
