package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamcover"
)

func newTestDurSession(t *testing.T, name string) *session {
	t.Helper()
	dur, err := openDurability(t.TempDir(), name, 0, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	ests := make([]*streamcover.Estimator, 2)
	for i := range ests {
		est, err := streamcover.NewEstimator(50, 500, 3, 4, streamcover.WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		ests[i] = est
	}
	sess := newSessionWith(name, 50, 500, 3, 4, 1, 8, nil, ests)
	sess.dur = dur
	t.Cleanup(func() {
		sess.close()
		dur.close()
	})
	return sess
}

// TestDuplicateAckWaitsForInFlightOriginal pins the no-acked-data-loss
// guarantee in the reconnect window: a duplicate (source, seq) arriving
// while the original batch is still inside the WAL append (group-commit
// fsync) must not be acknowledged until the original is durable. Acking
// early would let a crash before the original's fsync lose a batch the
// duplicate's ack vouched for.
func TestDuplicateAckWaitsForInFlightOriginal(t *testing.T) {
	sess := newTestDurSession(t, "seqdup")
	sets, elems := []uint32{1, 3}, []uint32{2, 4}
	rec := []byte{0x00, 0x01, 0x02}

	parked := make(chan struct{})
	release := make(chan struct{})
	released := false
	// On any failure path, unpark the original so the session cleanup's
	// ops.Wait doesn't hang the test binary.
	defer func() {
		if !released {
			close(release)
		}
	}()
	var once sync.Once
	testHookAfterAccept = func(source, seq uint64) {
		once.Do(func() {
			close(parked)
			<-release
		})
	}
	defer func() { testHookAfterAccept = nil }()

	origDone := make(chan error, 1)
	go func() {
		applied, err := sess.ingestSeq(7, 1, rec, sets, elems)
		if err == nil && !applied {
			t.Error("original ingest reported duplicate")
		}
		origDone <- err
	}()
	<-parked

	dupDone := make(chan error, 1)
	var dupApplied atomic.Bool
	go func() {
		applied, err := sess.ingestSeq(7, 1, rec, sets, elems)
		dupApplied.Store(applied)
		dupDone <- err
	}()

	select {
	case <-dupDone:
		t.Fatal("duplicate acknowledged while the original was still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	released = true
	close(release)
	if err := <-origDone; err != nil {
		t.Fatalf("original ingest: %v", err)
	}
	select {
	case err := <-dupDone:
		if err != nil {
			t.Fatalf("duplicate ingest: %v", err)
		}
		if dupApplied.Load() {
			t.Fatal("duplicate was applied, want recognized-and-dropped")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("duplicate never acknowledged after the original settled")
	}
	if got := sess.dur.wal.LastPos(); got != 1 {
		t.Fatalf("WAL holds %d records, want 1 (duplicate must not be logged)", got)
	}
}

// TestOverlapAckAwaitsBatchDurability pins the fsync/apply-overlap
// contract: the WAL append and the worker dispatch run concurrently, but
// ingestSeq must not return (and so the server must not ack) until the
// append settles. The test parks the append via the injectable appendFn,
// observes that the batch has already been dispatched (the overlap is
// real), and verifies the call is still blocked until the append is
// released.
func TestOverlapAckAwaitsBatchDurability(t *testing.T) {
	sess := newTestDurSession(t, "overlap")
	sets, elems := []uint32{1, 3}, []uint32{2, 4}
	rec := []byte{0x00, 0x01}

	parked := make(chan struct{})
	release := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(release)
		}
	}()
	real := sess.dur.wal
	sess.dur.appendFn = func(rec []byte) (uint64, error) {
		close(parked)
		<-release
		return real.Append(rec)
	}

	done := make(chan error, 1)
	go func() {
		applied, err := sess.ingestSeq(11, 1, rec, sets, elems)
		if err == nil && !applied {
			t.Error("original ingest reported duplicate")
		}
		done <- err
	}()
	<-parked

	// The dispatch half of the overlap must complete while the append is
	// still parked.
	deadline := time.Now().Add(5 * time.Second)
	for sess.batches.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch never dispatched while the append was in flight")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("ingest returned before the WAL append settled: ack would not imply durability")
	case <-time.After(50 * time.Millisecond):
	}

	released = true
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if got := sess.dur.wal.LastPos(); got != 1 {
		t.Fatalf("WAL holds %d records, want 1", got)
	}
}

// TestAppendFailureDegradesBatchSession pins the overlap failure
// contract: when the WAL append fails, the batch has already been applied
// to the workers, so the session must (a) keep the advanced dedup horizon
// — a resend of the same seq must not be double-applied — and (b) reject
// every later ingest with the typed transient ErrDegraded rather than
// acking, because an ack would claim a durability the session cannot
// currently provide. Once the fault clears, one recovery pass brings the
// session back to healthy in place, with the applied-but-not-durable
// batch captured by the recovery checkpoint.
func TestAppendFailureDegradesBatchSession(t *testing.T) {
	sess := newTestDurSession(t, "degrade")
	// Pin the degraded window open: the background loop must not race the
	// assertions below, so recovery happens only when the test asks.
	sess.retryMin = time.Hour
	sess.retryMax = time.Hour
	sets, elems := []uint32{2}, []uint32{7}
	rec := []byte{0x02}
	wantErr := errors.New("write error")
	sess.dur.appendFn = func(rec []byte) (uint64, error) { return 0, wantErr }

	applied, err := sess.ingestSeq(5, 1, rec, sets, elems)
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("ingestSeq error = %v, want wrapped %v", err, wantErr)
	}
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("ingestSeq error = %v, want typed ErrDegraded", err)
	}
	if applied {
		t.Fatal("failed ingest reported applied=true (would be acked)")
	}
	if got := sess.batches.Load(); got != 1 {
		t.Fatalf("batch dispatch count %d, want 1 (the batch IS applied in memory)", got)
	}
	if st, _ := sess.health(); st != "degraded" {
		t.Fatalf("health = %q, want degraded", st)
	}

	// The horizon must be kept so the inevitable client resend is not
	// applied a second time — and the resend must get the typed transient
	// error, never a false durability ack.
	sess.dmu.Lock()
	entry := sess.dedup[5]
	sess.dmu.Unlock()
	if entry.seq != 1 || entry.done != nil {
		t.Fatalf("dedup entry = %+v, want settled at seq 1", entry)
	}
	if _, err := sess.ingestSeq(5, 1, rec, sets, elems); !errors.Is(err, ErrDegraded) {
		t.Fatalf("resend of the non-durable batch: err = %v, want ErrDegraded", err)
	}
	if sess.batches.Load() != 1 {
		t.Fatal("resend was applied a second time")
	}

	// Fresh sequences and unsequenced ingests are rejected too, with the
	// same typed error — but queries keep working on the in-memory state.
	if _, err := sess.ingestSeq(5, 2, rec, sets, elems); !errors.Is(err, ErrDegraded) {
		t.Fatalf("later sequence: err = %v, want ErrDegraded", err)
	}
	if err := sess.ingest(sets, elems, rec); !errors.Is(err, ErrDegraded) {
		t.Fatalf("unsequenced ingest: err = %v, want ErrDegraded", err)
	}
	if _, err := sess.query(nil); err != nil {
		t.Fatalf("query on a degraded session: %v", err)
	}

	// Clear the fault and recover in place: the session returns to
	// healthy, the next sequence is accepted, and nothing was lost or
	// double-applied.
	sess.dur.appendFn = nil
	if !sess.tryRecover() {
		t.Fatal("tryRecover failed after the fault cleared")
	}
	if err := sess.degraded(); err != nil {
		t.Fatalf("session still degraded after recovery: %v", err)
	}
	if st, _ := sess.health(); st != "ok" {
		t.Fatalf("health = %q after recovery, want ok", st)
	}
	applied, err = sess.ingestSeq(5, 2, rec, sets, elems)
	if err != nil || !applied {
		t.Fatalf("post-recovery ingest: applied=%v err=%v, want applied, nil", applied, err)
	}
	if got := sess.batches.Load(); got != 2 {
		t.Fatalf("batch dispatch count %d after recovery, want 2", got)
	}
}

// TestDispatchBatchAllocsSteadyState asserts the dispatch hot path stops
// allocating once warm: the shard header comes from a pool and shard
// buffers cycle through the per-worker free lists. The bound is loose
// (the workers' estimator processing is counted too, and free-list races
// can force an occasional fresh buffer) but far below the old cost of
// one header plus w shard buffers per batch, growing under-reserved
// shards besides.
func TestDispatchBatchAllocsSteadyState(t *testing.T) {
	ests := make([]*streamcover.Estimator, 2)
	for i := range ests {
		est, err := streamcover.NewEstimator(50, 500, 3, 4, streamcover.WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		ests[i] = est
	}
	sess := newSessionWith("allocs", 50, 500, 3, 4, 1, 8, nil, ests)
	defer sess.close()

	sets := make([]uint32, 512)
	elems := make([]uint32, 512)
	for i := range sets {
		sets[i], elems[i] = uint32(i%50), uint32(i%500)
	}
	run := func() {
		sess.dispatch(sets, elems)
		// Wait for both shard buffers to come back so the next dispatch
		// reclaims instead of allocating.
		deadline := time.Now().Add(5 * time.Second)
		for _, rc := range sess.recycle {
			for len(rc) == 0 {
				if time.Now().After(deadline) {
					t.Fatal("shard buffer never recycled")
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
	for i := 0; i < 32; i++ { // warm pools, histogram, estimator scratch
		run()
	}
	avg := testing.AllocsPerRun(64, run)
	if avg > 4 {
		t.Fatalf("dispatch allocates %.1f objects per batch once warm, want <= 4", avg)
	}
}

// TestIngestSeqConcurrentSameSource drives many interleaved sequences and
// duplicates from one source through the sequenced path with a real
// fsyncing WAL. Every sequence must be applied at most once, the WAL must
// hold exactly the applied batches, and the surviving horizon must be the
// highest accepted sequence (run with -race to police the handshake).
func TestIngestSeqConcurrentSameSource(t *testing.T) {
	sess := newTestDurSession(t, "seqrace")
	sets, elems := []uint32{9}, []uint32{9}
	rec := []byte{0x01}

	const goroutines, maxSeq = 8, 40
	var applied atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for seq := uint64(1); seq <= maxSeq; seq++ {
				ok, err := sess.ingestSeq(3, seq, rec, sets, elems)
				if err != nil {
					t.Errorf("ingestSeq(%d): %v", seq, err)
					return
				}
				if ok {
					applied.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()

	sess.dmu.Lock()
	entry := sess.dedup[3]
	sess.dmu.Unlock()
	if entry.done != nil {
		t.Fatal("dedup entry left in-flight after all ingests returned")
	}
	if entry.seq != maxSeq {
		t.Fatalf("final horizon %d, want %d", entry.seq, maxSeq)
	}
	got := applied.Load()
	if got < 1 || got > maxSeq {
		t.Fatalf("%d batches applied, want between 1 and %d", got, maxSeq)
	}
	if walRecs := int64(sess.dur.wal.LastPos()); walRecs != got {
		t.Fatalf("WAL holds %d records but %d batches were applied", walRecs, got)
	}
}
