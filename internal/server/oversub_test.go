package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"streamcover"
	"streamcover/internal/client"
	"streamcover/internal/fault"
	"streamcover/internal/server"
)

// Oversubscription tests use a deliberately small instance so one
// session's serialized checkpoint is a couple of MB and evict/rehydrate
// cycles take milliseconds, not seconds.
const (
	ovM     = 60
	ovN     = 500
	ovK     = 5
	ovAlpha = 4.0
	ovSeed  = int64(7)
)

func ovEdges(seed int64, count int) []streamcover.Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]streamcover.Edge, count)
	for i := range edges {
		set := uint32(rng.Intn(ovM))
		if rng.Intn(3) == 0 {
			set = uint32(rng.Intn(ovM / 10))
		}
		edges[i] = streamcover.Edge{Set: set, Elem: uint32(rng.Intn(ovN))}
	}
	return edges
}

func createOv(t *testing.T, c *client.Client, name string) *client.Session {
	t.Helper()
	sess, err := c.Create(name, ovM, ovN, ovK, ovAlpha, ovSeed)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func shutdownOv(t *testing.T, s *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// sessionResidency scrapes /sessions and returns name → resident.
func sessionResidency(t *testing.T, httpAddr string) map[string]bool {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []struct {
		Name     string `json:"name"`
		Hydrated bool   `json:"hydrated"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool, len(rows))
	for _, r := range rows {
		out[r.Name] = r.Hydrated
	}
	return out
}

// TestEvictRehydrateBitIdentical is the oversubscription correctness
// contract: a session that is evicted to its checkpoint and rehydrated
// several times mid-stream must end bit-identical — coverage estimate,
// winning set IDs, space accounting — to a session that stayed hydrated
// in memory the whole time. Rehydration reuses the crash-recovery path
// (checkpoint restore + WAL tail replay), so this is the same guarantee
// durability already proves, re-asserted across the eviction lifecycle.
func TestEvictRehydrateBitIdentical(t *testing.T) {
	edges := ovEdges(31, 4096)

	// Reference: no durability, no budget, same worker count.
	refSrv := startDurServer(t, server.Config{Workers: 2, QueueDepth: 8}, "127.0.0.1:0")
	defer shutdownOv(t, refSrv)
	refSess := createOv(t, dialDur(t, refSrv.TCPAddr().String(), client.WithBatchSize(512)), "ref")
	sendAll(t, refSess, edges)
	ref, err := refSess.Query()
	if err != nil {
		t.Fatal(err)
	}

	// Subject: a 1-byte budget, so every checkpoint sweep evicts all
	// evictable sessions except the hottest. "pad" is queried after each
	// chunk so it owns the hottest slot and "subj" is always the eviction
	// victim.
	cfg := server.Config{
		Workers: 2, QueueDepth: 8,
		DataDir: t.TempDir(), CheckpointEvery: -1, WALNoSync: true,
		MemBudget: 1,
	}
	s := server.New(cfg)
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer shutdownOv(t, s)
	c := dialDur(t, s.TCPAddr().String(), client.WithBatchSize(512))
	subj := createOv(t, c, "subj")
	pad := createOv(t, c, "pad")

	const chunks = 4
	per := len(edges) / chunks
	for i := 0; i < chunks; i++ {
		sendAll(t, subj, edges[i*per:(i+1)*per])
		if _, err := pad.Query(); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckpointAll(); err != nil {
			t.Fatal(err)
		}
	}

	got, err := subj.Query()
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, ref, "evicted+rehydrated session")
	if ev := s.Metrics().EvictionsTotal.Load(); ev < chunks-1 {
		t.Fatalf("only %d evictions; the subject was never parked", ev)
	}
	if rh := s.Metrics().RehydrationsTotal.Load(); rh < chunks-1 {
		t.Fatalf("only %d rehydrations; the subject never came back cold", rh)
	}
}

// TestOversubscriptionIngestEvictRace hammers the residency state machine
// from both sides at once: four tenants ingest concurrently while the
// checkpoint cadence keeps charging real sizes against a budget that
// holds only about one of them, so evictions and rehydrations interleave
// with in-flight batches continuously. Clients absorb the typed transient
// rejections (rehydration backlog) with retry. The whole run must be
// exactly-once per tenant. Run under -race this is the data-race proof
// for the eviction/rehydration/ingest interleaving.
func TestOversubscriptionIngestEvictRace(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent eviction soak")
	}
	cfg := server.Config{
		Workers: 1, QueueDepth: 4,
		DataDir: t.TempDir(), CheckpointEvery: 50 * time.Millisecond, WALNoSync: true,
		MemBudget: 3_000_000,
		RetryMin:  5 * time.Millisecond, RetryMax: 50 * time.Millisecond,
	}
	s := server.New(cfg)
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer shutdownOv(t, s)

	const (
		tenants = 4
		rounds  = 6
		batch   = 256
	)
	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			c, err := client.Dial(s.TCPAddr().String(),
				client.WithBatchSize(batch), client.WithMaxPending(4),
				client.WithReconnect(100),
				client.WithBackoff(2*time.Millisecond, 30*time.Millisecond))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			sess, err := c.Create(fmt.Sprintf("t%d", tn), ovM, ovN, ovK, ovAlpha, ovSeed)
			if err != nil {
				errs <- fmt.Errorf("tenant %d create: %w", tn, err)
				return
			}
			edges := ovEdges(int64(100+tn), rounds*batch)
			for r := 0; r < rounds; r++ {
				if err := sess.Send(edges[r*batch : (r+1)*batch]); err != nil {
					errs <- fmt.Errorf("tenant %d send: %w", tn, err)
					return
				}
				if err := sess.Flush(); err != nil {
					errs <- fmt.Errorf("tenant %d flush: %w", tn, err)
					return
				}
			}
			res, err := sess.Query()
			if err != nil {
				errs <- fmt.Errorf("tenant %d query: %w", tn, err)
				return
			}
			if res.Edges != rounds*batch {
				errs <- fmt.Errorf("tenant %d: %d edges applied, want exactly %d", tn, res.Edges, rounds*batch)
			}
		}(tn)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s.Metrics().EvictionsTotal.Load() == 0 || s.Metrics().RehydrationsTotal.Load() == 0 {
		t.Fatalf("budget never forced churn (evictions=%d rehydrations=%d); the race surface was not exercised",
			s.Metrics().EvictionsTotal.Load(), s.Metrics().RehydrationsTotal.Load())
	}
}

// TestQueryDuringRehydration fires concurrent queries across a fleet of
// mostly-evicted sessions: every cold query must transparently rehydrate
// (riding out the bounded admission gate via retry) and answer with the
// session's exact pre-eviction state, even while sibling queries force
// the budget to evict other sessions mid-flight (each rehydration's
// budget check runs concurrently with the others).
func TestQueryDuringRehydration(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent rehydration soak")
	}
	cfg := server.Config{
		Workers: 1, QueueDepth: 4,
		DataDir: t.TempDir(), CheckpointEvery: -1, WALNoSync: true,
		MemBudget: 1,
		RetryMin:  5 * time.Millisecond, RetryMax: 50 * time.Millisecond,
	}
	s := server.New(cfg)
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	defer shutdownOv(t, s)

	// Populate three tenants with distinct edge counts, then park them:
	// the 1-byte budget evicts everything but the hottest at the sweep.
	const tenants = 3
	seedCl := dialDur(t, s.TCPAddr().String(), client.WithBatchSize(512))
	want := make([]int, tenants)
	for tn := 0; tn < tenants; tn++ {
		sess := createOv(t, seedCl, fmt.Sprintf("q%d", tn))
		want[tn] = (tn + 1) * 512
		sendAll(t, sess, ovEdges(int64(200+tn), want[tn]))
	}
	if err := s.CheckpointAll(); err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		loops   = 5
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(s.TCPAddr().String(),
				client.WithReconnect(100),
				client.WithBackoff(2*time.Millisecond, 30*time.Millisecond))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < loops; i++ {
				tn := (w + i) % tenants
				res, err := c.Session(fmt.Sprintf("q%d", tn)).Query()
				if err != nil {
					errs <- fmt.Errorf("worker %d tenant %d: %w", w, tn, err)
					return
				}
				if res.Edges != want[tn] {
					errs <- fmt.Errorf("worker %d tenant %d: %d edges, want %d", w, tn, res.Edges, want[tn])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s.Metrics().RehydrationsTotal.Load() == 0 {
		t.Fatal("no query ever hit a cold session; the test exercised nothing")
	}
}

// TestEvictionSkipsDegraded: a degraded session is owned by the recovery
// loop — its in-memory state may be ahead of its checkpoint (parked
// batches, unflushed WAL), so evicting it would hand recovery a stale
// snapshot. The overseer must pass over degraded sessions and take its
// bytes from healthy ones, and the degraded session keeps serving
// queries from memory throughout.
func TestEvictionSkipsDegraded(t *testing.T) {
	inj := fault.NewInjector(nil)
	cfg := server.Config{
		Workers: 1, QueueDepth: 4,
		DataDir: t.TempDir(), CheckpointEvery: -1,
		FS:        inj,
		MemBudget: 1,
		// Slow recovery probes: the degraded window must comfortably
		// outlast the assertions below.
		RetryMin: 2 * time.Second, RetryMax: 4 * time.Second,
	}
	s := server.New(cfg)
	if err := s.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		inj.Clear()
		shutdownOv(t, s)
	})
	httpAddr := s.HTTPAddr().String()

	c := dialDur(t, s.TCPAddr().String(),
		client.WithBatchSize(256), client.WithMaxPending(4),
		client.WithReconnect(100),
		client.WithBackoff(2*time.Millisecond, 30*time.Millisecond))
	bystander := createOv(t, c, "bystander")
	hot := createOv(t, c, "hot")
	sendAll(t, bystander, ovEdges(41, 512))
	sendAll(t, hot, ovEdges(43, 512))

	// "deg" gets its own client so the degradation replay loop can be cut
	// off (by closing the client) once the session is degraded — otherwise
	// its retries would keep touching deg's LRU clock and the eviction
	// order below would be timing-dependent.
	degCl, err := client.Dial(s.TCPAddr().String(),
		client.WithBatchSize(256), client.WithMaxPending(4),
		client.WithReconnect(100),
		client.WithBackoff(2*time.Millisecond, 30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	deg, err := degCl.Create("deg", ovM, ovN, ovK, ovAlpha, ovSeed)
	if err != nil {
		t.Fatal(err)
	}
	degEdges := ovEdges(42, 768)
	sendAll(t, deg, degEdges[:512])

	// Degrade "deg": a sticky fsync fault fails its next WAL append. The
	// server parks the batch for recovery to land; closing the client just
	// stops the replay loop from touching deg's LRU clock.
	inj.FailSyncs(-1, nil)
	if err := deg.Send(degEdges[512:]); err != nil {
		t.Fatal(err)
	}
	flushDone := make(chan error, 1)
	go func() { flushDone <- deg.Flush() }()
	waitHealth(t, httpAddr, "degraded", http.StatusServiceUnavailable)
	inj.Clear() // fault over; recovery heals "deg" at the next probe (≥2s away)
	degCl.Close()
	<-flushDone
	// Close() returns before the server has drained the connection's last
	// replayed frame; that trailing rejection touches deg's LRU clock a
	// few ms later. Let it land before establishing the access order.
	time.Sleep(200 * time.Millisecond)

	// Charge real sizes and re-enforce the 1-byte budget: "hot" is
	// queried last so it owns the protected hottest slot, leaving
	// {bystander, deg} as eviction candidates — of which only the healthy
	// bystander may actually go. CheckpointAll's error (if any) is the
	// degraded session's; the healthy sessions are still swept.
	if _, err := hot.Query(); err != nil {
		t.Fatal(err)
	}
	_ = s.CheckpointAll()

	res := sessionResidency(t, httpAddr)
	if res["bystander"] {
		t.Fatalf("healthy bystander not evicted under pressure: %+v", res)
	}
	if !res["deg"] {
		t.Fatalf("degraded session was evicted out from under the recovery loop: %+v", res)
	}
	if !res["hot"] {
		t.Fatalf("hottest session was evicted: %+v", res)
	}

	// The degraded session still answers from memory.
	if _, err := dialDur(t, s.TCPAddr().String()).Session("deg").Query(); err != nil {
		t.Fatalf("query on protected degraded session: %v", err)
	}

	// After the recovery probe heals the session it serves normally and
	// the batch parked at degrade time has landed exactly once — skipping
	// the eviction is precisely what kept that parked state safe.
	waitHealth(t, httpAddr, "ok", http.StatusOK)
	final, err := dialDur(t, s.TCPAddr().String()).Session("deg").Query()
	if err != nil {
		t.Fatal(err)
	}
	if final.Edges != len(degEdges) {
		t.Fatalf("degraded session ended with %d edges, want exactly %d", final.Edges, len(degEdges))
	}
}

// TestOrphanSessionDirSwept: a crash between session-directory creation
// and the initial checkpoint leaves a directory with no checkpoint —
// nothing acknowledged ever lived there (sessions checkpoint before they
// are published), so startup recovery must reclaim it instead of letting
// dead WAL segments accrete across restarts. Healthy neighbours are
// untouched.
func TestOrphanSessionDirSwept(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{
		Workers: 1, QueueDepth: 4,
		DataDir: dir, CheckpointEvery: -1, WALNoSync: true,
	}
	s1 := startDurServer(t, cfg, "127.0.0.1:0")
	keeper := createOv(t, dialDur(t, s1.TCPAddr().String(), client.WithBatchSize(512)), "keeper")
	sendAll(t, keeper, ovEdges(51, 1024))
	if err := s1.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	shutdownOv(t, s1)

	// Fabricate the orphan: a session directory with WAL debris but no
	// checkpoint, exactly what a crash before the first checkpoint leaves.
	ghost := filepath.Join(dir, "ghost")
	if err := os.MkdirAll(filepath.Join(ghost, "wal"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ghost, "wal", "000001.seg"), []byte("dead segment"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := startDurServer(t, cfg, "127.0.0.1:0")
	defer shutdownOv(t, s2)
	if _, err := os.Stat(ghost); !os.IsNotExist(err) {
		t.Fatalf("orphan session dir survived startup recovery (stat err=%v)", err)
	}
	if got := s2.Metrics().OrphansSwept.Load(); got != 1 {
		t.Fatalf("orphans_swept = %d, want 1", got)
	}
	res, err := dialDur(t, s2.TCPAddr().String()).Session("keeper").Query()
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != 1024 {
		t.Fatalf("keeper recovered with %d edges, want 1024", res.Edges)
	}
}
