package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"streamcover/internal/client"
	"streamcover/internal/fault"
	"streamcover/internal/server"
)

// getHealth fetches /healthz and returns the HTTP status code and the
// decoded server-wide status string.
func getHealth(t *testing.T, httpAddr string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	return resp.StatusCode, body.Status
}

// waitHealth polls /healthz until the server-wide status matches.
func waitHealth(t *testing.T, httpAddr, want string, code int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		gotCode, gotStatus := getHealth(t, httpAddr)
		if gotStatus == want && gotCode == code {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz stuck at (%d, %q), want (%d, %q)", gotCode, gotStatus, code, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFsyncFaultDegradesThenRecovers is the headline degradation
// contract: an fsync-error window must move the session to degraded —
// ingest rejected with a typed transient error, queries still served,
// /healthz flipping to 503 — and once the fault clears, the session must
// return to healthy in place, with no restart and no lost or
// double-applied batch.
func TestFsyncFaultDegradesThenRecovers(t *testing.T) {
	inj := fault.NewInjector(nil)
	cfg := server.Config{
		Workers: 2, QueueDepth: 4,
		DataDir: t.TempDir(), CheckpointEvery: -1,
		FS:       inj,
		RetryMin: 5 * time.Millisecond, RetryMax: 50 * time.Millisecond,
	}
	s := server.New(cfg)
	if err := s.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		inj.Clear()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	httpAddr := s.HTTPAddr().String()

	c := dialDur(t, s.TCPAddr().String(),
		client.WithBatchSize(256), client.WithMaxPending(4),
		client.WithReconnect(100), client.WithBackoff(2*time.Millisecond, 20*time.Millisecond))
	sess := createDur(t, c, "degrade")
	edges := durEdges(11, 2048)
	sendAll(t, sess, edges[:1024])
	waitHealth(t, httpAddr, "ok", http.StatusOK)

	// Sticky fsync failure: the next sequenced batch degrades the session.
	// Flush runs concurrently — it pushes the batch to the wire and then
	// keeps replaying it with backoff until the server recovers, so it
	// only returns once the busy window has closed.
	inj.FailSyncs(-1, nil)
	if err := sess.Send(edges[1024:1280]); err != nil {
		t.Fatalf("send into the fault window: %v", err)
	}
	flushDone := make(chan error, 1)
	go func() { flushDone <- sess.Flush() }()
	waitHealth(t, httpAddr, "degraded", http.StatusServiceUnavailable)
	if got := s.Metrics().DegradedSessions.Load(); got != 1 {
		t.Fatalf("degraded-sessions gauge = %d, want 1", got)
	}

	// Queries keep working on the degraded session's in-memory state.
	c2 := dialDur(t, s.TCPAddr().String())
	if _, err := c2.Session("degrade").Query(); err != nil {
		t.Fatalf("query while degraded: %v", err)
	}

	// Clear the fault: the recovery loop brings the session back with no
	// restart, and the parked batches land exactly once.
	inj.Clear()
	waitHealth(t, httpAddr, "ok", http.StatusOK)
	if s.Metrics().DurabilityRecoveries.Load() == 0 {
		t.Fatal("no in-place recovery recorded")
	}
	select {
	case err := <-flushDone:
		if err != nil {
			t.Fatalf("flush across the busy window: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("flush never converged after recovery")
	}
	sendAll(t, sess, edges[1280:])
	res, err := sess.Query()
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != len(edges) {
		t.Fatalf("final state has %d edges, want exactly %d", res.Edges, len(edges))
	}
	if s.Metrics().WALAppendFailures.Load() == 0 {
		t.Fatal("the fault window never hit a WAL append; the test exercised nothing")
	}
}

// TestDiskFullPutsServerReadOnly: when one session degrades on ENOSPC,
// the whole server sheds ingest — a batch for a different, healthy
// session is busy-rejected too — while queries keep working; lifting the
// budget recovers the server without a restart.
func TestDiskFullPutsServerReadOnly(t *testing.T) {
	inj := fault.NewInjector(nil)
	cfg := server.Config{
		Workers: 2, QueueDepth: 4,
		DataDir: t.TempDir(), CheckpointEvery: -1,
		FS:       inj,
		RetryMin: 5 * time.Millisecond, RetryMax: 50 * time.Millisecond,
	}
	s := server.New(cfg)
	if err := s.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		inj.Clear()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	httpAddr := s.HTTPAddr().String()

	cA := dialDur(t, s.TCPAddr().String(), client.WithBatchSize(256))
	cB := dialDur(t, s.TCPAddr().String(), client.WithBatchSize(256))
	sessA := createDur(t, cA, "full-a")
	sessB := createDur(t, cB, "full-b")
	edges := durEdges(12, 1024)
	sendAll(t, sessA, edges[:256])
	sendAll(t, sessB, edges[256:512])

	// Exhaust the disk: session A's next append tears mid-record with
	// ENOSPC and the server goes read-only.
	inj.SetDiskBudget(8)
	err := sessA.Send(edges[512:768])
	if err == nil {
		err = sessA.Flush()
	}
	if err == nil || !errors.Is(err, client.ErrServerBusy) {
		t.Fatalf("ingest on the full disk: err = %v, want wrapped ErrServerBusy", err)
	}
	waitHealth(t, httpAddr, "read-only", http.StatusServiceUnavailable)
	if got := s.Metrics().DiskFullSessions.Load(); got != 1 {
		t.Fatalf("disk-full-sessions gauge = %d, want 1", got)
	}

	// The healthy session is rejected too — typed, transient, not applied.
	before := s.Metrics().EdgesIngested.Load()
	err = sessB.Send(edges[768:])
	if err == nil {
		err = sessB.Flush()
	}
	if err == nil || !errors.Is(err, client.ErrServerBusy) {
		t.Fatalf("ingest on a healthy session of a read-only server: err = %v, want wrapped ErrServerBusy", err)
	}
	if got := s.Metrics().EdgesIngested.Load(); got != before {
		t.Fatalf("read-only server applied %d edges", got-before)
	}
	// Queries are still served.
	if _, err := dialDur(t, s.TCPAddr().String()).Session("full-b").Query(); err != nil {
		t.Fatalf("query on a read-only server: %v", err)
	}

	// Free the disk: recovery clears the read-only mode and fresh ingest
	// (new client — the old ones hold poisoned connections) works again.
	inj.SetDiskBudget(-1)
	waitHealth(t, httpAddr, "ok", http.StatusOK)
	cC := dialDur(t, s.TCPAddr().String(), client.WithBatchSize(256))
	sessC := createDur(t, cC, "full-b")
	sendAll(t, sessC, edges[768:])
}

// TestSilentPeerReapedByReadDeadline: a client that connects and then
// says nothing must not park a connection handler forever. The read
// deadline reaps it: the server closes the socket and counts the reap.
func TestSilentPeerReapedByReadDeadline(t *testing.T) {
	s := startServer(t, server.Config{
		Workers: 1, QueueDepth: 2,
		ReadTimeout: 50 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing. The server must hang up on us, observable as EOF (or a
	// reset) on our read well before the test times out.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server sent data to a silent peer")
	} else if os.IsTimeout(err) {
		t.Fatal("server never reaped the silent connection")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().DeadlineReaps.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("deadline reap not counted")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestOrphanCheckpointTempsSwept: a crash can strand checkpoint.scsn.tmp*
// files (snapshot writes go through a temp file + rename). Startup
// recovery must sweep them so they cannot accumulate forever.
func TestOrphanCheckpointTempsSwept(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{
		Workers: 2, QueueDepth: 4,
		DataDir: dir, CheckpointEvery: -1, WALNoSync: true,
	}
	edges := durEdges(13, 4000)

	s1 := startDurServer(t, cfg, "127.0.0.1:0")
	c1 := dialDur(t, s1.TCPAddr().String(), client.WithBatchSize(512))
	sess1 := createDur(t, c1, "sweep")
	sendAll(t, sess1, edges)
	c1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Strand temp files the way an interrupted checkpoint would.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sessDir string
	for _, e := range entries {
		if e.IsDir() {
			sessDir = filepath.Join(dir, e.Name())
		}
	}
	if sessDir == "" {
		t.Fatal("no session directory found")
	}
	for i := 0; i < 3; i++ {
		orphan := filepath.Join(sessDir, fmt.Sprintf("checkpoint.scsn.tmp%d", 1000+i))
		if err := os.WriteFile(orphan, []byte("torn checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2 := startDurServer(t, cfg, "127.0.0.1:0")
	defer s2.Abort()
	left, err := os.ReadDir(sessDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range left {
		if strings.HasPrefix(e.Name(), "checkpoint.scsn.tmp") {
			t.Fatalf("orphan %s survived startup recovery", e.Name())
		}
	}
	// And the recovered session still answers correctly.
	res, err := dialDur(t, s2.TCPAddr().String()).Session("sweep").Query()
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != len(edges) {
		t.Fatalf("recovered session has %d edges, want %d", res.Edges, len(edges))
	}
}
