// Package snapshot frames serialized estimator state (and any other
// durable kcoverd artifact) in a versioned, checksummed envelope and
// writes it to disk atomically. The envelope is deliberately payload
// agnostic: the root facade's Estimator.Encode produces the payload, this
// package guarantees that whatever comes back out of Open/ReadFile is
// byte-identical to what went in or an error — torn writes, truncation
// and bit rot all fail the CRC before a decoder ever sees the bytes.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strings"

	"streamcover/internal/fault"
)

// Envelope layout: magic (4) | version (1) | payload CRC-32C (4, LE) |
// payload length (8, LE) | payload.
const (
	magic      = "SCSN"
	headerSize = 4 + 1 + 4 + 8

	// Version is the current envelope version. Decoders reject other
	// versions outright: payload formats are not self-describing, so a
	// version bump is the only safe evolution mechanism.
	Version = 1

	// MaxPayload bounds how large a payload ReadFile/Open will accept, so
	// a corrupt length field cannot trigger an absurd allocation. Sized
	// against real server checkpoints, which bundle one estimator blob per
	// shard worker: a single m=2000, n=20000, alpha=4 estimator encodes to
	// ~65 MiB, so a multi-worker checkpoint of a large session runs to a
	// few hundred MiB.
	MaxPayload = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Seal wraps a payload in the envelope.
func Seal(payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	copy(out, magic)
	out[4] = Version
	binary.LittleEndian.PutUint32(out[5:9], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint64(out[9:17], uint64(len(payload)))
	copy(out[headerSize:], payload)
	return out
}

// Open validates an envelope and returns the payload (aliasing data).
func Open(data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("snapshot: truncated envelope (%d bytes)", len(data))
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", data[:4])
	}
	if v := data[4]; v != Version {
		return nil, fmt.Errorf("snapshot: unsupported version %d (want %d)", v, Version)
	}
	wantCRC := binary.LittleEndian.Uint32(data[5:9])
	n := binary.LittleEndian.Uint64(data[9:17])
	if n > MaxPayload {
		return nil, fmt.Errorf("snapshot: implausible payload length %d", n)
	}
	if uint64(len(data)-headerSize) != n {
		return nil, fmt.Errorf("snapshot: payload is %d bytes, header says %d", len(data)-headerSize, n)
	}
	payload := data[headerSize:]
	if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("snapshot: payload CRC mismatch (got %08x, want %08x)", got, wantCRC)
	}
	return payload, nil
}

// WriteFile seals the payload and writes it to path atomically on the
// real filesystem. See WriteFileFS.
func WriteFile(path string, payload []byte) error {
	return WriteFileFS(fault.OS(), path, payload)
}

// WriteFileFS seals the payload and writes it to path atomically: the
// envelope goes to a temporary file in the same directory, is fsynced,
// renamed over path, and the directory is fsynced so the rename itself is
// durable. A crash at any point leaves either the old snapshot or the new
// one, never a torn file at path (it can leak the temporary file —
// SweepTemps collects those on the next startup).
func WriteFileFS(fsys fault.FS, path string, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer fsys.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(Seal(payload)); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return syncDir(fsys, dir)
}

// ReadFile reads path from the real filesystem and returns the validated
// payload.
func ReadFile(path string) ([]byte, error) {
	return ReadFileFS(fault.OS(), path)
}

// ReadFileFS reads path and returns the validated payload.
func ReadFileFS(fsys fault.FS, path string) ([]byte, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := Open(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return payload, nil
}

// SweepTemps removes temporary files that a crash between CreateTemp and
// Rename left behind in dir: anything matching <base>.tmp* for the given
// snapshot base name. Returns how many were removed. Meant for startup
// recovery, before any writer is active in dir.
func SweepTemps(fsys fault.FS, dir, base string) (int, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	removed := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, base+".tmp") {
			continue
		}
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
			return removed, fmt.Errorf("snapshot: %w", err)
		}
		removed++
	}
	return removed, nil
}

func syncDir(fsys fault.FS, dir string) error {
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("snapshot: fsync %s: %w", dir, err)
	}
	return nil
}
