package snapshot

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestSealOpenRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB, 0x00, 0x7F}, 4096)} {
		got, err := Open(Seal(payload))
		if err != nil {
			t.Fatalf("payload %d bytes: %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload %d bytes: round trip changed content", len(payload))
		}
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	sealed := Seal([]byte("the sketch state"))
	cases := map[string][]byte{
		"empty":          nil,
		"short":          sealed[:8],
		"bad magic":      append([]byte("XXXX"), sealed[4:]...),
		"bad version":    append(append([]byte{}, sealed[:4]...), append([]byte{99}, sealed[5:]...)...),
		"truncated body": sealed[:len(sealed)-3],
		"extended body":  append(append([]byte{}, sealed...), 0),
	}
	flipped := append([]byte{}, sealed...)
	flipped[len(flipped)-1] ^= 0x01
	cases["payload bit flip"] = flipped
	crcFlip := append([]byte{}, sealed...)
	crcFlip[6] ^= 0x01
	cases["crc bit flip"] = crcFlip
	for name, data := range cases {
		if _, err := Open(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "est.snap")
	payload := bytes.Repeat([]byte("snapshot"), 1000)
	if err := WriteFile(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("file round trip changed content")
	}
	// Overwrite must replace atomically and leave no temp files behind.
	if err := WriteFile(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, err = ReadFile(path); err != nil || string(got) != "v2" {
		t.Fatalf("overwrite: %q, %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("leftover files in snapshot dir: %v", entries)
	}
}

func TestReadFileRejectsTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "est.snap")
	if err := WriteFile(path, []byte("a complete snapshot payload")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("torn snapshot must fail validation")
	}
}

// FuzzOpen: arbitrary bytes must never panic, and anything Open accepts
// must be a faithful envelope (re-sealing the payload reproduces it).
func FuzzOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add(Seal(nil))
	f.Add(Seal([]byte("payload")))
	f.Add([]byte("SCSN garbage that is not an envelope"))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Open(data)
		if err != nil {
			return
		}
		if !bytes.Equal(Seal(payload), data) {
			t.Fatal("accepted envelope is not canonical")
		}
	})
}
