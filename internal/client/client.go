// Package client is the Go client for kcoverd (internal/server). It wraps
// dialing, session setup, batched edge ingest and queries behind a small
// API:
//
//	c, _ := client.Dial(addr)
//	sess, _ := c.Create("crawl", m, n, k, alpha, seed)
//	sess.Send(edges)   // buffers; flushes full batches automatically
//	res, _ := sess.Query()
//
// Ingest is pipelined: Send writes full batches without waiting for acks,
// a background reader matches the server's strictly ordered responses to
// outstanding requests, and the bounded in-flight window (WithMaxPending)
// plus the server's bounded worker queues give end-to-end backpressure.
// Batch errors surface on the next Send, Flush or Query.
//
// By default every batch is sequenced: the client stamps it with its
// random source identity and a per-session sequence number (TIngestSeq)
// and keeps it buffered until the server acknowledges it. With
// WithReconnect the client redials on connection loss with exponential
// backoff, re-creates its sessions (idempotent server-side) and resends
// the unacknowledged batches; the server deduplicates on (source, seq),
// so ingestion stays exactly-once even when the loss was a server crash
// and the ack — not the batch — is what went missing. WithFireAndForget
// reverts to unsequenced TIngest frames (at-most-once, lowest overhead).
//
// Batches go over the wire in the columnar MKC2 layout by default: Send
// lays edges straight into set-ID and element-ID columns, and the encoder
// memcpy-appends those columns into the frame — the server's fused
// decoder hands them to its estimators with no per-edge transform at
// either end. WithRowWire reverts to the legacy row MKC1 layout for
// daemons predating the columnar decoder; the server accepts both on one
// session interchangeably.
//
// Errors caused by the far end going away wrap ErrSessionClosed, so
// callers can tell "the server hung up" from application errors.
package client

import (
	"bufio"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"streamcover"
	"streamcover/internal/stream"
	"streamcover/internal/wire"
)

// ErrSessionClosed is wrapped into every error caused by the server going
// away mid-conversation — a shutdown, a crash, or a network drop — so
// callers can distinguish the far end hanging up from protocol or
// application errors with errors.Is, and decide to redial (or let
// WithReconnect do it for them).
var ErrSessionClosed = errors.New("client: connection closed by server")

// ErrServerBusy is wrapped into errors caused by the server's transient
// rejection (wire.TErrRetry): a degraded or read-only server refused the
// work without applying it. Sequenced batches hit by it stay parked in
// the resend buffer and are replayed after backoff, so ingest remains
// exactly-once across the busy window; Flush keeps retrying until the
// server recovers. Callers seeing it from a round-trip can simply retry.
var ErrServerBusy = errors.New("client: server busy (transient, retry)")

// ErrNotLeader is wrapped into errors caused by a wire.TErrNotLeader
// rejection: the node is a follower and will not take writes for the
// session. Sequenced batches hit by it stay parked in the resend buffer
// (the follower did not apply them), and the client fails fast instead of
// redialing the same node — re-routing is a placement decision, made by
// the Cluster wrapper (or the caller) rather than the connection loop.
var ErrNotLeader = errors.New("client: node is not the session leader")

// wrapLost tags a transport error as a lost-connection error exactly once.
func wrapLost(err error) error {
	if errors.Is(err, ErrSessionClosed) {
		return err
	}
	return fmt.Errorf("%w (%v)", ErrSessionClosed, err)
}

// Result is a queried coverage estimate, mirroring streamcover.Result
// plus the server-side edge count.
type Result struct {
	Coverage   float64
	Feasible   bool
	SetIDs     []uint32
	SpaceWords int
	Edges      int
}

// Option customizes a Client.
type Option func(*Client)

// WithBatchSize sets how many edges Send accumulates before writing one
// ingest frame (default 4096).
func WithBatchSize(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.batchSize = n
		}
	}
}

// WithMaxPending bounds the number of unacknowledged frames in flight
// (default 64). Smaller values tighten client memory and backpressure;
// larger values hide more network latency. It also bounds the resend
// buffer: a sequenced batch occupies a window slot until acked.
func WithMaxPending(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.maxPending = n
		}
	}
}

// WithFireAndForget reverts Send to unsequenced TIngest frames with no
// resend buffer: lowest overhead, at-most-once across connection loss.
func WithFireAndForget() Option {
	return func(c *Client) { c.fireForget = true }
}

// WithRowWire encodes batches in the legacy row (MKC1) wire layout
// instead of the columnar (MKC2) default. Servers accept both; this
// exists for talking to daemons that predate the columnar decoder, and
// for A/B-ing the two paths in benchmarks.
func WithRowWire() Option {
	return func(c *Client) { c.rowWire = true }
}

// WithReconnect makes the client redial with exponential backoff when the
// connection is lost, re-create its sessions and resend unacknowledged
// sequenced batches. maxAttempts bounds one reconnect episode (<= 0
// keeps the default of 6); when exhausted the client fails permanently.
func WithReconnect(maxAttempts int) Option {
	return func(c *Client) {
		c.reconnect = true
		if maxAttempts > 0 {
			c.attempts = maxAttempts
		}
	}
}

// WithBackoff overrides the reconnect backoff bounds (defaults 50ms, 2s).
// The first redial is immediate; later ones double from min up to max.
func WithBackoff(min, max time.Duration) Option {
	return func(c *Client) {
		if min > 0 {
			c.backoffMin = min
		}
		if max >= min && max > 0 {
			c.backoffMax = max
		}
	}
}

// WithAckObserver registers a callback invoked once per acknowledged
// sequenced batch with the batch's edge count and its client-observed
// latency: first write to server ack, including any busy-park, backoff,
// reconnect and resend in between — the latency an application actually
// experiences, which is what the kcoverload harness reports percentiles
// of. The callback runs on the connection's reader goroutine and must not
// call back into the client. Fire-and-forget batches are never observed.
func WithAckObserver(fn func(edges int, d time.Duration)) Option {
	return func(c *Client) { c.ackObs = fn }
}

// WithFlushInterval starts a background flusher that pushes any frames
// sitting in the write buffer to the wire every d. By default frames are
// buffered until the pipeline window fills or a round trip forces them
// out — right for bulk throughput, but a paced (open-loop) sender that
// trickles batches below the window size would otherwise park them in
// the buffer indefinitely, and with them the acks a latency measurement
// needs. A few milliseconds is a good d; flushing an empty buffer is a
// no-op, so the ticker costs nothing during bulk sends.
func WithFlushInterval(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.flushEvery = d
		}
	}
}

// WithDialTimeout bounds each TCP dial (default: no bound beyond the
// OS's). It applies to the initial Dial and to every reconnect attempt.
func WithDialTimeout(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.dialTimeout = d
		}
	}
}

// WithSource overrides the client's random source identity. The server
// deduplicates sequenced batches on (source, seq), so every client a
// Cluster routes one logical stream through must share a source — the
// new leader's replicated dedup state then recognizes a post-failover
// resend of a batch the old leader had already shipped.
func WithSource(v uint64) Option {
	return func(c *Client) {
		if v != 0 {
			c.source = v
		}
	}
}

// WithOpTimeout bounds each network operation against the server: writes
// get a write deadline, and round-trip requests (create, ping, query,
// close) fail if no response arrives within d. A timed-out operation
// marks the connection lost — the server may be wedged or the link dead —
// so under WithReconnect the client redials rather than hanging forever
// on a silent peer. Default: no timeout.
func WithOpTimeout(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.opTimeout = d
		}
	}
}

// Client is one connection to a kcoverd server (redialed transparently
// under WithReconnect). It is safe for concurrent use; each Session's
// buffer is owned by its caller.
type Client struct {
	addr        string
	batchSize   int
	maxPending  int
	fireForget  bool
	rowWire     bool // encode legacy row MKC1 batches instead of columnar MKC2
	reconnect   bool
	attempts    int
	backoffMin  time.Duration
	backoffMax  time.Duration
	dialTimeout time.Duration
	opTimeout   time.Duration
	flushEvery  time.Duration                    // 0: flush only on window-full/round-trip
	flushStop   chan struct{}                    // closes with the client, stopping the flusher
	ackObs      func(edges int, d time.Duration) // per-acked-batch latency callback
	source      uint64                           // random nonzero identity stamped on sequenced batches

	mu     sync.Mutex // serializes frame writes, connection state, reconnects
	cn     *netConn   // current connection epoch; failed epochs are replaced
	closed bool
	fatal  error // sticky: reconnect disabled or exhausted

	// payloadPool recycles sequenced-batch payload buffers: a payload
	// lives in the resend deque from encode until the server's ack, then
	// comes back here for the next encode instead of the garbage collector.
	payloadPool sync.Pool

	amu        sync.Mutex // leaf lock: session registry, seq counters, unacked deques
	states     map[string]*sessionState
	asyncErr   error  // first error the server reported for a pipelined batch
	leaderHint string // last redirect carried by a TErrNotLeader rejection
}

// sessionState is the client-side durable view of one named session: the
// create parameters (replayed on reconnect) and the sequenced batches the
// server has not yet acknowledged (resent on reconnect).
type sessionState struct {
	create  wire.Create
	nextSeq uint64
	unacked []seqBatch // in sequence order; acks pop the front
}

type seqBatch struct {
	seq     uint64
	payload []byte // complete TIngestSeq payload, kept until acked
	edges   int
	sentAt  time.Time // first write; resends keep the original stamp
}

// netConn is one connection epoch: socket, write buffer, and the queue
// pairing requests with the server's in-order responses.
type netConn struct {
	c          net.Conn
	bw         *bufio.Writer
	pending    chan waiter
	readerDone chan struct{}
	opTimeout  time.Duration

	errMu   sync.Mutex
	lostErr error
}

// armWriteDeadline applies the per-operation write deadline, if any,
// ahead of a frame write or buffer flush.
func (cn *netConn) armWriteDeadline() {
	if cn.opTimeout > 0 {
		cn.c.SetWriteDeadline(time.Now().Add(cn.opTimeout))
	}
}

func (cn *netConn) lost(err error) {
	cn.errMu.Lock()
	if cn.lostErr == nil {
		cn.lostErr = err
	}
	cn.errMu.Unlock()
}

func (cn *netConn) err() error {
	cn.errMu.Lock()
	defer cn.errMu.Unlock()
	return cn.lostErr
}

func (cn *netConn) failed() bool { return cn.err() != nil }

// waiter matches one outstanding request to its in-order response. ch is
// set for round-trip requests; ack for sequenced ingest (called with nil
// on TOK, the server's error on TErr). Both nil: fire-and-forget ingest,
// whose errors are recorded rather than delivered.
type waiter struct {
	ch  chan response
	ack func(error)
}

type response struct {
	typ     byte
	payload []byte
	err     error
}

// newSource draws the client's random nonzero identity. The (source, seq)
// pair is how the server recognizes a replayed batch.
func newSource() uint64 {
	var b [8]byte
	for i := 0; i < 4; i++ {
		if _, err := crand.Read(b[:]); err != nil {
			break
		}
		if v := binary.LittleEndian.Uint64(b[:]); v != 0 {
			return v
		}
	}
	return uint64(time.Now().UnixNano()) | 1
}

// Dial connects to a kcoverd ingest address.
func Dial(addr string, opts ...Option) (*Client, error) {
	c := &Client{
		addr:       addr,
		batchSize:  4096,
		maxPending: 64,
		attempts:   6,
		backoffMin: 50 * time.Millisecond,
		backoffMax: 2 * time.Second,
		source:     newSource(),
		states:     make(map[string]*sessionState),
	}
	for _, o := range opts {
		o(c)
	}
	cn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.cn = cn
	if c.flushEvery > 0 {
		c.flushStop = make(chan struct{})
		go c.flushLoop(c.flushStop)
	}
	return c, nil
}

// flushLoop is the WithFlushInterval ticker: push whatever the senders
// left in the current epoch's write buffer. A flush error is a lost
// connection, handled exactly like a failed write.
func (c *Client) flushLoop(stop <-chan struct{}) {
	t := time.NewTicker(c.flushEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-stop:
			return
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		if cn := c.cn; cn != nil && !cn.failed() && cn.bw.Buffered() > 0 {
			cn.armWriteDeadline()
			if err := cn.bw.Flush(); err != nil {
				cn.lost(wrapLost(err))
			}
		}
		c.mu.Unlock()
	}
}

func (c *Client) dial() (*netConn, error) {
	var conn net.Conn
	var err error
	if c.dialTimeout > 0 {
		conn, err = net.DialTimeout("tcp", c.addr, c.dialTimeout)
	} else {
		conn, err = net.Dial("tcp", c.addr)
	}
	if err != nil {
		return nil, err
	}
	cn := &netConn{
		c:          conn,
		bw:         bufio.NewWriterSize(conn, 1<<16),
		pending:    make(chan waiter, c.maxPending),
		readerDone: make(chan struct{}),
		opTimeout:  c.opTimeout,
	}
	go c.readLoop(cn)
	return cn, nil
}

// readLoop drains one epoch's responses, pairing each with the oldest
// waiter. On transport failure it fails the round-trip waiters but drops
// sequenced-ingest waiters silently: their batches stay in the unacked
// deques and are resent on the next epoch.
func (c *Client) readLoop(cn *netConn) {
	defer close(cn.readerDone)
	br := bufio.NewReaderSize(cn.c, 1<<16)
	scratch := make([]byte, 4096) // grown in place by ReadFrameInto for larger responses
	for {
		typ, payload, err := wire.ReadFrameInto(br, &scratch)
		if err != nil {
			cn.lost(wrapLost(err))
			for {
				select {
				case w := <-cn.pending:
					if w.ch != nil {
						w.ch <- response{err: cn.err()}
					}
				default:
					return
				}
			}
		}
		select {
		case w := <-cn.pending:
			switch {
			case w.ch != nil:
				// Responses alias scratch; copy for the waiter.
				w.ch <- response{typ: typ, payload: append([]byte(nil), payload...)}
			case w.ack != nil:
				switch typ {
				case wire.TErr:
					// The payload already carries the "server:" prefix.
					w.ack(fmt.Errorf("client: %s", payload))
				case wire.TErrRetry:
					// Transient rejection: the server did NOT apply the
					// batch. The ack leaves it parked in the resend deque,
					// and the epoch is retired — every pipelined batch
					// behind this one would be rejected too, so the cheapest
					// path back to exactly-once is a backoff-and-replay
					// through the normal reconnect machinery.
					busy := fmt.Errorf("client: %w: %s", ErrServerBusy, payload)
					w.ack(busy)
					cn.lost(fmt.Errorf("%w (%w)", ErrSessionClosed, busy))
					cn.c.Close()
				case wire.TErrNotLeader:
					// Placement rejection: the node is a follower and did
					// NOT apply the batch. Park it like a busy rejection,
					// record the redirect, and retire the epoch with a
					// non-retryable error — redialing the same follower
					// would only be rejected again, so connLocked fails
					// fast and the Cluster wrapper re-routes to the leader.
					nl := c.notLeaderErr(payload)
					w.ack(nl)
					cn.lost(fmt.Errorf("%w (%w)", ErrSessionClosed, nl))
					cn.c.Close()
				default:
					w.ack(nil)
				}
			case typ == wire.TErr:
				c.failAsync(fmt.Errorf("client: %s", payload))
			case typ == wire.TErrRetry:
				// Fire-and-forget has no resend buffer; a busy-rejected
				// batch is dropped (at-most-once), so surface it.
				c.failAsync(fmt.Errorf("client: %w: %s", ErrServerBusy, payload))
			case typ == wire.TErrNotLeader:
				// Fire-and-forget to a follower: dropped, surface it.
				c.failAsync(c.notLeaderErr(payload))
			}
		default:
			cn.lost(fmt.Errorf("client: unexpected frame 0x%02x with no request outstanding", typ))
			cn.c.Close()
			return
		}
	}
}

// notLeaderErr turns a TErrNotLeader payload into a typed error and
// records the redirect address it carries for LeaderHint.
func (c *Client) notLeaderErr(payload []byte) error {
	addr, err := wire.DecodeNotLeader(payload)
	if err != nil || addr == "" {
		return fmt.Errorf("client: %w: %s", ErrNotLeader, payload)
	}
	c.amu.Lock()
	c.leaderHint = addr
	c.amu.Unlock()
	return fmt.Errorf("client: %w (leader %s)", ErrNotLeader, addr)
}

// LeaderHint returns the redirect address carried by the most recent
// not-leader rejection, or "" if the node never redirected us.
func (c *Client) LeaderHint() string {
	c.amu.Lock()
	defer c.amu.Unlock()
	return c.leaderHint
}

func (c *Client) failAsync(err error) {
	c.amu.Lock()
	if c.asyncErr == nil {
		c.asyncErr = err
	}
	c.amu.Unlock()
}

func (c *Client) asyncError() error {
	c.amu.Lock()
	defer c.amu.Unlock()
	return c.asyncErr
}

// ackFunc builds the acknowledgement callback for one sequenced batch:
// pop it from the session's resend deque (acks arrive in sequence order)
// and record a server-side rejection as the sticky async error. A busy
// (transient) rejection pops nothing and poisons nothing: the batch was
// not applied and stays parked for the post-backoff replay.
func (c *Client) ackFunc(st *sessionState, seq uint64) func(error) {
	return func(serverErr error) {
		if errors.Is(serverErr, ErrServerBusy) || errors.Is(serverErr, ErrNotLeader) {
			return
		}
		var acked seqBatch
		popped := false
		c.amu.Lock()
		if len(st.unacked) > 0 && st.unacked[0].seq == seq {
			acked, popped = st.unacked[0], true
			st.unacked = st.unacked[1:]
		}
		if serverErr != nil && c.asyncErr == nil {
			c.asyncErr = serverErr
		}
		c.amu.Unlock()
		if !popped {
			return
		}
		if serverErr == nil && c.ackObs != nil && !acked.sentAt.IsZero() {
			c.ackObs(acked.edges, time.Since(acked.sentAt))
		}
		// The payload's last reader was the resend deque; recycle it.
		c.payloadPool.Put(&acked.payload)
	}
}

// payloadBuf returns a recycled sequenced-payload buffer (or nil — the
// encoders treat nil as an empty buffer and allocate).
func (c *Client) payloadBuf() []byte {
	if b, ok := c.payloadPool.Get().(*[]byte); ok {
		return (*b)[:0]
	}
	return nil
}

// connLocked returns a healthy connection, redialing (and replaying
// session state) when the current one was lost. Called with c.mu held;
// the reconnect backoff sleeps with the lock held, which is what stalls
// every other sender until the link is back.
func (c *Client) connLocked() (*netConn, error) {
	if c.closed {
		return nil, errors.New("client: closed")
	}
	if c.fatal != nil {
		return nil, c.fatal
	}
	if c.cn != nil && !c.cn.failed() {
		return c.cn, nil
	}
	var lostErr error
	if c.cn != nil {
		lostErr = c.cn.err()
		c.cn.c.Close()
		c.cn = nil
	}
	if lostErr == nil {
		lostErr = ErrSessionClosed
	}
	if !c.reconnect || errors.Is(lostErr, ErrNotLeader) {
		// A not-leader rejection is not repaired by redialing the same
		// address: fail fast even with reconnect on, and let the Cluster
		// wrapper (or the caller) re-route to the leader.
		c.fatal = lostErr
		return nil, c.fatal
	}
	backoff := c.backoffMin
	dialErr := lostErr
	// When the epoch died to a busy rejection the server is up but
	// shedding load; redialing instantly would just get the resends
	// rejected again, so start with one backoff sleep instead of an
	// immediate attempt.
	busy := errors.Is(lostErr, ErrServerBusy)
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 || busy {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > c.backoffMax {
				backoff = c.backoffMax
			}
		}
		cn, err := c.dial()
		if err != nil {
			dialErr = err
			continue
		}
		if err := c.reestablish(cn); err != nil {
			dialErr = err
			cn.c.Close()
			<-cn.readerDone
			continue
		}
		c.cn = cn
		return cn, nil
	}
	c.fatal = fmt.Errorf("client: reconnect to %s gave up after %d attempts (%w; last: %v)",
		c.addr, c.attempts, ErrSessionClosed, dialErr)
	return nil, c.fatal
}

// reestablish replays client state onto a fresh connection: every
// registered session is re-created (idempotent server-side), then its
// unacknowledged sequenced batches are resent verbatim. Batches the
// server had already applied before the old connection died are
// deduplicated there by (source, seq), so the replay cannot double-count.
// Called with c.mu held; cn is not yet published to other goroutines.
func (c *Client) reestablish(cn *netConn) error {
	type replay struct {
		st     *sessionState
		create []byte
		seqs   []uint64
		resend [][]byte
	}
	c.amu.Lock()
	all := make([]replay, 0, len(c.states))
	for _, st := range c.states {
		r := replay{st: st, create: st.create.Encode()}
		for _, b := range st.unacked {
			r.seqs = append(r.seqs, b.seq)
			r.resend = append(r.resend, b.payload)
		}
		all = append(all, r)
	}
	c.amu.Unlock()
	for _, r := range all {
		if err := c.roundTripOn(cn, wire.TCreate, r.create); err != nil {
			return err
		}
		for i, payload := range r.resend {
			w := waiter{ack: c.ackFunc(r.st, r.seqs[i])}
			if err := writeOn(cn, wire.TIngestSeq, payload, w); err != nil {
				return err
			}
		}
	}
	if err := cn.bw.Flush(); err != nil {
		err = wrapLost(err)
		cn.lost(err)
		return err
	}
	return nil
}

// writeOn registers the waiter and writes one frame on a specific epoch,
// blocking when maxPending frames are unacknowledged (backpressure). The
// caller holds c.mu.
func writeOn(cn *netConn, typ byte, payload []byte, w waiter) error {
	cn.armWriteDeadline()
	select {
	case cn.pending <- w:
	default:
		// The in-flight window is full. Flush buffered frames first so
		// the server can ack them — blocking with frames stuck in our
		// own write buffer would deadlock the pipeline.
		if err := cn.bw.Flush(); err != nil {
			err = wrapLost(err)
			cn.lost(err)
			return err
		}
		select {
		case cn.pending <- w:
		case <-cn.readerDone:
			return cn.err()
		}
	}
	if err := wire.WriteFrame(cn.bw, typ, payload); err != nil {
		err = wrapLost(err)
		cn.lost(err)
		return err
	}
	return nil
}

// send writes one fire-and-forget frame on the current epoch.
func (c *Client) send(typ byte, payload []byte, w waiter) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.asyncError(); err != nil {
		return err
	}
	cn, err := c.connLocked()
	if err != nil {
		return err
	}
	return writeOn(cn, typ, payload, w)
}

// sendSequenced stamps the batch with the next sequence number, parks
// its payload in the session's resend deque, and writes it as one
// TIngestSeq frame. The deque entry is released by the server's in-order
// ack, which also recycles the payload buffer. encode builds the payload
// into a (possibly recycled) buffer once the sequence number is known —
// the number must be drawn under amu, where the deque order and the
// session's sequence counter are one atomic step.
func (c *Client) sendSequenced(st *sessionState, edges int, encode func(buf []byte, seq uint64) []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.asyncError(); err != nil {
		return err
	}
	cn, err := c.connLocked()
	if err != nil {
		// No epoch could be raised, but the caller's batch buffer is about
		// to be discarded either way — park the batch so it is not lost
		// with the connection. Nothing replays it here (replay needs an
		// epoch), but a cluster failover adopts the deque wholesale, so
		// the chunk still reaches the promoted leader exactly once.
		c.amu.Lock()
		st.nextSeq++
		seq := st.nextSeq
		st.unacked = append(st.unacked, seqBatch{seq: seq, payload: encode(c.payloadBuf(), seq), edges: edges, sentAt: time.Now()})
		c.amu.Unlock()
		return err
	}
	c.amu.Lock()
	st.nextSeq++
	seq := st.nextSeq
	payload := encode(c.payloadBuf(), seq)
	st.unacked = append(st.unacked, seqBatch{seq: seq, payload: payload, edges: edges, sentAt: time.Now()})
	c.amu.Unlock()
	err = writeOn(cn, wire.TIngestSeq, payload, waiter{ack: c.ackFunc(st, seq)})
	if err != nil && c.reconnect && errors.Is(err, ErrSessionClosed) {
		// The batch is already parked in the resend deque, so a successful
		// reconnect replays it as part of reestablish; recovering the
		// connection is all that's left to do here.
		if _, err2 := c.connLocked(); err2 != nil {
			return err2
		}
		return nil
	}
	return err
}

func (c *Client) unackedLen(st *sessionState) int {
	c.amu.Lock()
	defer c.amu.Unlock()
	return len(st.unacked)
}

// roundTripOn sends one frame on a specific epoch and waits for its
// response, with the caller holding c.mu (reconnect path only).
func (c *Client) roundTripOn(cn *netConn, typ byte, payload []byte) error {
	ch := make(chan response, 1)
	if err := writeOn(cn, typ, payload, waiter{ch: ch}); err != nil {
		return err
	}
	if err := cn.bw.Flush(); err != nil {
		err = wrapLost(err)
		cn.lost(err)
		return err
	}
	resp, err := awaitResponse(cn, ch)
	if err != nil {
		return err
	}
	if resp.typ == wire.TErr {
		return fmt.Errorf("client: %s", resp.payload)
	}
	if resp.typ == wire.TErrRetry {
		return fmt.Errorf("client: %w: %s", ErrServerBusy, resp.payload)
	}
	if resp.typ == wire.TErrNotLeader {
		return c.notLeaderErr(resp.payload)
	}
	return nil
}

// awaitResponse waits for the reader to deliver, guarding against the
// epoch dying with the waiter still queued. With WithOpTimeout set, a
// response that never comes — a wedged server holding the socket open —
// fails the epoch instead of hanging the caller forever.
func awaitResponse(cn *netConn, ch chan response) (response, error) {
	var timeout <-chan time.Time
	if cn.opTimeout > 0 {
		t := time.NewTimer(cn.opTimeout)
		defer t.Stop()
		timeout = t.C
	}
	var resp response
	select {
	case resp = <-ch:
	case <-cn.readerDone:
		// The reader exited; it may have delivered just before.
		select {
		case resp = <-ch:
		default:
			return response{}, cn.err()
		}
	case <-timeout:
		cn.lost(fmt.Errorf("%w (no response within %v)", ErrSessionClosed, cn.opTimeout))
		cn.c.Close()
		return response{}, cn.err()
	}
	if resp.err != nil {
		return response{}, resp.err
	}
	return resp, nil
}

// roundTrip sends one frame and waits for its response, flushing first.
// Under WithReconnect a lost connection is retried on a fresh epoch (the
// redial replays session state first), since every round-trip request
// type — create, ping, query, close — is idempotent.
func (c *Client) roundTrip(typ byte, payload []byte) (response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := c.roundTripOnce(typ, payload)
		if err == nil {
			return resp, nil
		}
		if !c.reconnect || attempt >= 2 || !errors.Is(err, ErrSessionClosed) {
			return response{}, err
		}
	}
}

func (c *Client) roundTripOnce(typ byte, payload []byte) (response, error) {
	ch := make(chan response, 1)
	c.mu.Lock()
	cn, err := c.connLocked()
	if err == nil {
		err = writeOn(cn, typ, payload, waiter{ch: ch})
	}
	if err == nil {
		if err = cn.bw.Flush(); err != nil {
			err = wrapLost(err)
			cn.lost(err)
		}
	}
	c.mu.Unlock()
	if err != nil {
		return response{}, err
	}
	resp, err := awaitResponse(cn, ch)
	if err != nil {
		return response{}, err
	}
	if resp.typ == wire.TErr {
		return response{}, fmt.Errorf("client: %s", resp.payload)
	}
	if resp.typ == wire.TErrRetry {
		return response{}, fmt.Errorf("client: %w: %s", ErrServerBusy, resp.payload)
	}
	if resp.typ == wire.TErrNotLeader {
		return response{}, c.notLeaderErr(resp.payload)
	}
	return resp, nil
}

// Create opens (or idempotently re-opens) a named session on the server
// and returns a handle to it. Unless the client is in fire-and-forget
// mode, the session is registered for replay: a reconnect re-creates it
// before resending any of its batches.
func (c *Client) Create(name string, m, n, k int, alpha float64, seed int64) (*Session, error) {
	create := wire.Create{Name: name, M: m, N: n, K: k, Alpha: alpha, Seed: seed}
	if _, err := c.roundTrip(wire.TCreate, create.Encode()); err != nil {
		return nil, err
	}
	var st *sessionState
	if !c.fireForget {
		c.amu.Lock()
		st = c.states[name]
		if st == nil {
			st = &sessionState{create: create}
			c.states[name] = st
		}
		c.amu.Unlock()
	}
	return &Session{c: c, name: name, m: m, n: n, st: st}, nil
}

// Session attaches to an existing session for querying (dims unknown, so
// Send is not available until set via Create).
func (c *Client) Session(name string) *Session {
	return &Session{c: c, name: name, m: -1, n: -1}
}

// Role asks the server for the session's replication role: leader or
// follower, the leader's identity, and the follower's applied position
// and staleness.
func (c *Client) Role(name string) (wire.RoleInfo, error) {
	resp, err := c.roundTrip(wire.TRole, wire.EncodeRef(name))
	if err != nil {
		return wire.RoleInfo{}, err
	}
	if resp.typ != wire.TRoleInfo {
		return wire.RoleInfo{}, fmt.Errorf("client: unexpected response 0x%02x to role", resp.typ)
	}
	return wire.DecodeRoleInfo(resp.payload)
}

// QueryStale queries a session with an explicit staleness bound. On a
// leader it behaves like a plain query; on a follower it succeeds only if
// the replica has proven itself no further than maxStale behind its
// leader — otherwise the server answers with a transient rejection that
// surfaces as ErrServerBusy, and the caller can fall back to the leader.
func (c *Client) QueryStale(name string, maxStale time.Duration) (Result, error) {
	resp, err := c.roundTrip(wire.TQueryStale, wire.EncodeQueryStale(name, int64(maxStale)))
	if err != nil {
		return Result{}, err
	}
	if resp.typ != wire.TResult {
		return Result{}, fmt.Errorf("client: unexpected response 0x%02x to stale query", resp.typ)
	}
	wr, err := wire.DecodeResult(resp.payload)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Coverage:   wr.Coverage,
		Feasible:   wr.Feasible,
		SetIDs:     wr.SetIDs,
		SpaceWords: wr.SpaceWords,
		Edges:      wr.Edges,
	}, nil
}

// permanentlyFailed reports whether the client's connection is gone for
// good (reconnect disabled, exhausted, or retired by a not-leader
// rejection). A Cluster replaces such node clients with fresh dials.
func (c *Client) permanentlyFailed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fatal != nil
}

// Close flushes and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	if c.flushStop != nil {
		close(c.flushStop)
		c.flushStop = nil
	}
	cn := c.cn
	c.cn = nil
	if cn != nil {
		cn.bw.Flush()
	}
	c.mu.Unlock()
	if cn == nil {
		return nil
	}
	err := cn.c.Close()
	<-cn.readerDone
	return err
}

// Session is a handle to one named estimation run. A Session is not safe
// for concurrent use (its batch buffers are unguarded); open one Session
// per goroutine — they may all target the same server-side session name.
type Session struct {
	c           *Client
	name        string
	m, n        int
	sets, elems []uint32      // batch buffer, already in wire column order
	rowBuf      []stream.Edge // WithRowWire conversion scratch
	scratch     []byte        // fire-and-forget frame encode buffer
	st          *sessionState // nil: fire-and-forget or attached session
}

// Name returns the server-side session name.
func (s *Session) Name() string { return s.name }

// Send buffers edges for ingest, flushing a frame each time the batch
// size is reached. Errors from earlier batches surface here.
func (s *Session) Send(edges []streamcover.Edge) error {
	if s.m < 0 {
		return fmt.Errorf("client: session %q attached without dims; use Create", s.name)
	}
	for _, e := range edges {
		if int(e.Set) >= s.m {
			return fmt.Errorf("client: set id %d >= m=%d", e.Set, s.m)
		}
		if int(e.Elem) >= s.n {
			return fmt.Errorf("client: element id %d >= n=%d", e.Elem, s.n)
		}
		// Columns at buffer time: the encoder bulk-appends them with no
		// per-edge work left to do.
		s.sets = append(s.sets, e.Set)
		s.elems = append(s.elems, e.Elem)
		if len(s.sets) >= s.c.batchSize {
			if err := s.flushBatch(); err != nil {
				return err
			}
		}
	}
	return nil
}

// rows converts the column buffers into row edges for the legacy MKC1
// encoders (WithRowWire only).
func (s *Session) rows() []stream.Edge {
	s.rowBuf = s.rowBuf[:0]
	for i, set := range s.sets {
		s.rowBuf = append(s.rowBuf, stream.Edge{Set: set, Elem: s.elems[i]})
	}
	return s.rowBuf
}

// flushBatch writes the buffered edges as one pipelined ingest frame.
func (s *Session) flushBatch() error {
	if len(s.sets) == 0 {
		return nil
	}
	defer func() { s.sets, s.elems = s.sets[:0], s.elems[:0] }()
	if s.st == nil {
		if s.c.rowWire {
			s.scratch = wire.EncodeIngest(s.scratch, s.name, s.rows(), s.m, s.n)
		} else {
			s.scratch = wire.EncodeIngestColumns(s.scratch, s.name, s.sets, s.elems, s.m, s.n)
		}
		return s.c.send(wire.TIngest, s.scratch, waiter{})
	}
	return s.c.sendSequenced(s.st, len(s.sets), func(buf []byte, seq uint64) []byte {
		if s.c.rowWire {
			return wire.EncodeIngestSeq(buf, s.name, s.c.source, seq, s.rows(), s.m, s.n)
		}
		return wire.EncodeIngestSeqColumns(buf, s.name, s.c.source, seq, s.sets, s.elems, s.m, s.n)
	})
}

// Flush pushes any buffered edges to the wire and then waits until every
// outstanding batch has been acknowledged, returning the first error the
// server reported. A busy (transient) rejection is not a batch error:
// under WithReconnect, Flush keeps replaying the parked batches with
// backoff until the server recovers — it only fails when the connection
// is permanently gone or the server reports a real error.
func (s *Session) Flush() error {
	if err := s.flushBatch(); err != nil {
		return err
	}
	for {
		// A ping after the pipelined batches: its in-order ack proves all
		// earlier batch responses on this epoch arrived (and were
		// error-checked).
		if _, err := s.c.roundTrip(wire.TPing, nil); err != nil {
			if s.c.reconnect && errors.Is(err, ErrServerBusy) && errors.Is(err, ErrSessionClosed) {
				// Busy-retired epoch: the redial inside the next round
				// trip backs off and replays the parked batches.
				continue
			}
			return err
		}
		if err := s.c.asyncError(); err != nil {
			return err
		}
		if s.st == nil || s.c.unackedLen(s.st) == 0 {
			return nil
		}
		// The connection died between our batches and the ping; the
		// redial resent them on a fresh epoch, so barrier again.
	}
}

// queryBusyRetries bounds Query's in-call retries of transient busy
// answers (a degraded session mid-recovery, or a rehydration backlog on
// an oversubscribed server). Past the bound the typed ErrServerBusy
// surfaces and the caller owns the retry policy.
const queryBusyRetries = 8

// Query flushes buffered edges and returns the live coverage estimate
// over everything this and every other client has fed the session.
// Transient busy rejections — the server is rehydrating an evicted
// session or repairing a degraded one — are retried with backoff a
// bounded number of times before surfacing as ErrServerBusy.
func (s *Session) Query() (Result, error) {
	if err := s.flushBatch(); err != nil {
		return Result{}, err
	}
	backoff := s.c.backoffMin
	for attempt := 0; ; attempt++ {
		resp, err := s.c.roundTrip(wire.TQuery, wire.EncodeRef(s.name))
		if err != nil {
			// Busy without a dead connection: the session exists and will
			// answer shortly; retrying here spares every caller the loop.
			if errors.Is(err, ErrServerBusy) && !errors.Is(err, ErrSessionClosed) && attempt < queryBusyRetries {
				time.Sleep(backoff)
				if backoff *= 2; backoff > s.c.backoffMax {
					backoff = s.c.backoffMax
				}
				continue
			}
			return Result{}, err
		}
		if resp.typ != wire.TResult {
			return Result{}, fmt.Errorf("client: unexpected response 0x%02x to query", resp.typ)
		}
		wr, err := wire.DecodeResult(resp.payload)
		if err != nil {
			return Result{}, err
		}
		return Result{
			Coverage:   wr.Coverage,
			Feasible:   wr.Feasible,
			SetIDs:     wr.SetIDs,
			SpaceWords: wr.SpaceWords,
			Edges:      wr.Edges,
		}, nil
	}
}

// CloseSession flushes buffered edges and deletes the session server-side
// (and drops it from the client's replay registry).
func (s *Session) CloseSession() error {
	if err := s.flushBatch(); err != nil {
		return err
	}
	if _, err := s.c.roundTrip(wire.TClose, wire.EncodeRef(s.name)); err != nil {
		return err
	}
	if s.st != nil {
		s.c.amu.Lock()
		delete(s.c.states, s.name)
		s.c.amu.Unlock()
	}
	return nil
}
