// Package client is the Go client for kcoverd (internal/server). It wraps
// dialing, session setup, batched edge ingest and queries behind a small
// API:
//
//	c, _ := client.Dial(addr)
//	sess, _ := c.Create("crawl", m, n, k, alpha, seed)
//	sess.Send(edges)   // buffers; flushes full batches automatically
//	res, _ := sess.Query()
//
// Ingest is pipelined: Send writes full batches without waiting for acks,
// a background reader matches the server's strictly ordered responses to
// outstanding requests, and the bounded in-flight window (WithMaxPending)
// plus the server's bounded worker queues give end-to-end backpressure.
// Batch errors surface on the next Send, Flush or Query.
package client

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"streamcover"
	"streamcover/internal/stream"
	"streamcover/internal/wire"
)

// Result is a queried coverage estimate, mirroring streamcover.Result
// plus the server-side edge count.
type Result struct {
	Coverage   float64
	Feasible   bool
	SetIDs     []uint32
	SpaceWords int
	Edges      int
}

// Option customizes a Client.
type Option func(*Client)

// WithBatchSize sets how many edges Send accumulates before writing one
// ingest frame (default 4096).
func WithBatchSize(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.batchSize = n
		}
	}
}

// WithMaxPending bounds the number of unacknowledged frames in flight
// (default 64). Smaller values tighten client memory and backpressure;
// larger values hide more network latency.
func WithMaxPending(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.maxPending = n
		}
	}
}

// Client is one connection to a kcoverd server. It is safe for concurrent
// use; each Session's buffer is owned by its caller.
type Client struct {
	batchSize  int
	maxPending int

	conn net.Conn
	bw   *bufio.Writer

	mu      sync.Mutex // serializes frame writes and pending enqueues
	pending chan waiter

	readerDone chan struct{}

	errMu    sync.Mutex
	firstErr error // first async (ack) or transport error
}

// waiter matches one outstanding request to its in-order response. ch is
// nil for fire-and-forget frames (ingest): their errors are recorded
// rather than delivered.
type waiter struct {
	ch chan response
}

type response struct {
	typ     byte
	payload []byte
	err     error
}

// Dial connects to a kcoverd ingest address.
func Dial(addr string, opts ...Option) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		batchSize:  4096,
		maxPending: 64,
		conn:       conn,
		bw:         bufio.NewWriterSize(conn, 1<<16),
		readerDone: make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	c.pending = make(chan waiter, c.maxPending)
	go c.readLoop()
	return c, nil
}

// readLoop drains responses, pairing each with the oldest waiter.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReaderSize(c.conn, 1<<16)
	scratch := make([]byte, 4096)
	for {
		typ, payload, err := wire.ReadFrame(br, scratch)
		if err != nil {
			c.fail(fmt.Errorf("client: connection lost: %w", err))
			// Unblock everyone still waiting.
			for {
				select {
				case w := <-c.pending:
					if w.ch != nil {
						w.ch <- response{err: c.err()}
					}
				default:
					return
				}
			}
		}
		select {
		case w := <-c.pending:
			if w.ch != nil {
				// Responses alias scratch; copy for the waiter.
				w.ch <- response{typ: typ, payload: append([]byte(nil), payload...)}
			} else if typ == wire.TErr {
				// The payload already carries the "server:" prefix.
				c.fail(fmt.Errorf("client: %s", payload))
			}
		default:
			c.fail(fmt.Errorf("client: unexpected frame 0x%02x with no request outstanding", typ))
			return
		}
	}
}

func (c *Client) fail(err error) {
	c.errMu.Lock()
	if c.firstErr == nil {
		c.firstErr = err
	}
	c.errMu.Unlock()
}

func (c *Client) err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.firstErr
}

// send writes one frame, registering its waiter first so the reader can
// never see an unmatched response. Blocks when maxPending frames are
// unacknowledged (backpressure).
func (c *Client) send(typ byte, payload []byte, w waiter) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.err(); err != nil {
		return err
	}
	select {
	case c.pending <- w:
	default:
		// The in-flight window is full. Flush buffered frames first so
		// the server can ack them — blocking with frames stuck in our
		// own write buffer would deadlock the pipeline.
		if err := c.bw.Flush(); err != nil {
			c.fail(err)
			return err
		}
		select {
		case c.pending <- w:
		case <-c.readerDone:
			return c.err()
		}
	}
	if err := wire.WriteFrame(c.bw, typ, payload); err != nil {
		c.fail(err)
		return err
	}
	return nil
}

// roundTrip sends one frame and waits for its response, flushing first.
func (c *Client) roundTrip(typ byte, payload []byte) (response, error) {
	ch := make(chan response, 1)
	if err := c.send(typ, payload, waiter{ch: ch}); err != nil {
		return response{}, err
	}
	c.mu.Lock()
	err := c.bw.Flush()
	c.mu.Unlock()
	if err != nil {
		c.fail(err)
		return response{}, err
	}
	resp := <-ch
	if resp.err != nil {
		return response{}, resp.err
	}
	if resp.typ == wire.TErr {
		return response{}, fmt.Errorf("client: %s", resp.payload)
	}
	return resp, nil
}

// Create opens (or idempotently re-opens) a named session on the server
// and returns a handle to it.
func (c *Client) Create(name string, m, n, k int, alpha float64, seed int64) (*Session, error) {
	create := wire.Create{Name: name, M: m, N: n, K: k, Alpha: alpha, Seed: seed}
	if _, err := c.roundTrip(wire.TCreate, create.Encode()); err != nil {
		return nil, err
	}
	return &Session{c: c, name: name, m: m, n: n}, nil
}

// Session attaches to an existing session for querying (dims unknown, so
// Send is not available until set via Create).
func (c *Client) Session(name string) *Session {
	return &Session{c: c, name: name, m: -1, n: -1}
}

// Close flushes and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	c.bw.Flush()
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// Session is a handle to one named estimation run. A Session is not safe
// for concurrent use (its batch buffer is unguarded); open one Session
// per goroutine — they may all target the same server-side session name.
type Session struct {
	c       *Client
	name    string
	m, n    int
	buf     []stream.Edge
	scratch []byte
}

// Name returns the server-side session name.
func (s *Session) Name() string { return s.name }

// Send buffers edges for ingest, flushing a frame each time the batch
// size is reached. Errors from earlier batches surface here.
func (s *Session) Send(edges []streamcover.Edge) error {
	if s.m < 0 {
		return fmt.Errorf("client: session %q attached without dims; use Create", s.name)
	}
	for _, e := range edges {
		if int(e.Set) >= s.m {
			return fmt.Errorf("client: set id %d >= m=%d", e.Set, s.m)
		}
		if int(e.Elem) >= s.n {
			return fmt.Errorf("client: element id %d >= n=%d", e.Elem, s.n)
		}
		s.buf = append(s.buf, stream.Edge(e))
		if len(s.buf) >= s.c.batchSize {
			if err := s.flushBatch(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushBatch writes the buffered edges as one pipelined ingest frame.
func (s *Session) flushBatch() error {
	if len(s.buf) == 0 {
		return nil
	}
	s.scratch = wire.EncodeIngest(s.scratch, s.name, s.buf, s.m, s.n)
	s.buf = s.buf[:0]
	return s.c.send(wire.TIngest, s.scratch, waiter{})
}

// Flush pushes any buffered edges to the wire and then waits until every
// outstanding batch has been acknowledged, returning the first error the
// server reported.
func (s *Session) Flush() error {
	if err := s.flushBatch(); err != nil {
		return err
	}
	// A ping after the pipelined batches: its in-order ack proves all
	// earlier batch responses arrived (and were error-checked).
	if _, err := s.c.roundTrip(wire.TPing, nil); err != nil {
		return err
	}
	return s.c.err()
}

// Query flushes buffered edges and returns the live coverage estimate
// over everything this and every other client has fed the session.
func (s *Session) Query() (Result, error) {
	if err := s.flushBatch(); err != nil {
		return Result{}, err
	}
	resp, err := s.c.roundTrip(wire.TQuery, wire.EncodeRef(s.name))
	if err != nil {
		return Result{}, err
	}
	if resp.typ != wire.TResult {
		return Result{}, fmt.Errorf("client: unexpected response 0x%02x to query", resp.typ)
	}
	wr, err := wire.DecodeResult(resp.payload)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Coverage:   wr.Coverage,
		Feasible:   wr.Feasible,
		SetIDs:     wr.SetIDs,
		SpaceWords: wr.SpaceWords,
		Edges:      wr.Edges,
	}, nil
}

// CloseSession flushes buffered edges and deletes the session server-side.
func (s *Session) CloseSession() error {
	if err := s.flushBatch(); err != nil {
		return err
	}
	_, err := s.c.roundTrip(wire.TClose, wire.EncodeRef(s.name))
	return err
}
