// Cluster is the cluster-aware client for a kcoverd fleet. It routes by
// the same consistent-hash ring the servers use: a session's ingest goes
// to its placement leader, staleness-bounded queries fan out to its
// followers, and when the leader is lost (or a node answers "not leader")
// the client re-resolves placement, migrates the session's unacknowledged
// resend buffer to the new leader's connection, and replays it. Because
// every node client shares one source identity and the followers mirror
// the leader's dedup state, the post-failover replay is deduplicated on
// (source, seq) exactly like an ordinary reconnect resend — ingest stays
// exactly-once across a promotion.
package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"streamcover"
	"streamcover/internal/replica"
	"streamcover/internal/wire"
)

// ClusterNode is one fleet member: ID is the node's cluster identity (its
// peer-facing address, as configured in the server's NodeID/Peers — the
// ring hashes these, and not-leader redirects carry them), Addr is where
// this client dials the node's ingest listener. They differ when client
// traffic goes through a proxy.
type ClusterNode struct {
	ID   string
	Addr string
}

// Cluster routes sessions across a kcoverd fleet. Node clients are dialed
// lazily and replaced when they fail permanently; all of them share one
// source identity, managed by the Cluster (a WithSource option passed by
// the caller is overridden).
type Cluster struct {
	ring     *replica.Ring
	replicas int
	opts     []Option
	source   uint64

	// FailoverWait bounds how long one failover waits for some node to
	// take over as a session's leader before giving up. Promotion is a
	// control-plane action (scenario driver, operator, orchestrator), so
	// the client polls for its outcome.
	FailoverWait time.Duration

	mu      sync.Mutex
	nodes   map[string]string  // node ID -> dial address
	order   []string           // node IDs in the caller's order
	clients map[string]*Client // lazily dialed, replaced on permanent failure
	leaders map[string]string  // session -> leader node ID (failover overrides)
	closed  bool
}

// DialCluster builds a cluster client over the fleet. replicas is the
// placement width per session (<= 0: min(3, len(nodes)), matching the
// server default). Nodes are dialed lazily, so a down node does not fail
// DialCluster. The options are applied to every node client; reconnect is
// forced on (resend-buffer migration depends on it) and the source
// identity is shared across all node clients.
func DialCluster(nodes []ClusterNode, replicas int, opts ...Option) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, errors.New("client: cluster needs at least one node")
	}
	byID := make(map[string]string, len(nodes))
	ids := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n.ID == "" {
			return nil, errors.New("client: cluster node with empty ID")
		}
		if _, dup := byID[n.ID]; dup {
			return nil, fmt.Errorf("client: duplicate cluster node %q", n.ID)
		}
		addr := n.Addr
		if addr == "" {
			addr = n.ID
		}
		byID[n.ID] = addr
		ids = append(ids, n.ID)
	}
	if replicas <= 0 {
		replicas = len(nodes)
		if replicas > 3 {
			replicas = 3
		}
	}
	ring, err := replica.NewRing(ids, 0)
	if err != nil {
		return nil, err
	}
	return &Cluster{
		ring:         ring,
		replicas:     replicas,
		opts:         opts,
		source:       newSource(),
		FailoverWait: 15 * time.Second,
		nodes:        byID,
		order:        ids,
		clients:      make(map[string]*Client),
		leaders:      make(map[string]string),
	}, nil
}

// Source returns the shared source identity stamped on every sequenced
// batch the cluster sends, on whichever node client carries it.
func (cl *Cluster) Source() uint64 { return cl.source }

// Placement returns the session's placement node IDs, leader first, with
// any failover override applied.
func (cl *Cluster) Placement(name string) []string {
	ids := cl.ring.Place(name, cl.replicas)
	cl.mu.Lock()
	leader := cl.leaders[name]
	cl.mu.Unlock()
	if leader == "" {
		return ids
	}
	out := []string{leader}
	for _, id := range ids {
		if id != leader {
			out = append(out, id)
		}
	}
	return out
}

func (cl *Cluster) setLeader(name, id string) {
	cl.mu.Lock()
	cl.leaders[name] = id
	cl.mu.Unlock()
}

// nodeOpts are the options every node client is dialed with: the caller's
// options, then the cluster's non-negotiables — reconnect on (a caller
// WithReconnect still tunes the attempt budget) and the shared source.
func (cl *Cluster) nodeOpts() []Option {
	opts := make([]Option, 0, len(cl.opts)+2)
	opts = append(opts, WithReconnect(0))
	opts = append(opts, cl.opts...)
	opts = append(opts, WithSource(cl.source))
	return opts
}

// client returns a healthy client for the node, dialing lazily and
// replacing one that failed permanently (reconnect exhausted, or retired
// by a not-leader rejection — the node may well be reachable and useful
// again, e.g. as a follower to query).
func (cl *Cluster) client(id string) (*Client, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, errors.New("client: cluster closed")
	}
	addr, ok := cl.nodes[id]
	if !ok {
		cl.mu.Unlock()
		return nil, fmt.Errorf("client: unknown cluster node %q", id)
	}
	c := cl.clients[id]
	cl.mu.Unlock()
	if c != nil && !c.permanentlyFailed() {
		return c, nil
	}
	nc, err := Dial(addr, cl.nodeOpts()...)
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	if cur := cl.clients[id]; cur != nil && cur != c && !cur.permanentlyFailed() {
		// Lost a replacement race; use the winner.
		cl.mu.Unlock()
		nc.Close()
		return cur, nil
	}
	cl.clients[id] = nc
	cl.mu.Unlock()
	if c != nil {
		c.Close()
	}
	return nc, nil
}

// Close closes every node client.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	cl.closed = true
	clients := make([]*Client, 0, len(cl.clients))
	for _, c := range cl.clients {
		clients = append(clients, c)
	}
	cl.clients = make(map[string]*Client)
	cl.mu.Unlock()
	var first error
	for _, c := range clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Create opens the session on every node in its placement — the leader
// first (it owns ingest), then the followers (their servers attach
// replication appliers to the leader) — and returns a handle routed at
// the leader.
func (cl *Cluster) Create(name string, m, n, k int, alpha float64, seed int64) (*ClusterSession, error) {
	ids := cl.Placement(name)
	var sess *Session
	for i, id := range ids {
		c, err := cl.client(id)
		if err != nil {
			return nil, fmt.Errorf("client: cluster create %q on %s: %w", name, id, err)
		}
		s, err := c.Create(name, m, n, k, alpha, seed)
		if err != nil {
			return nil, fmt.Errorf("client: cluster create %q on %s: %w", name, id, err)
		}
		if i == 0 {
			sess = s
		}
	}
	return &ClusterSession{
		cl: cl, name: name, m: m, n: n, k: k, alpha: alpha, seed: seed,
		sess: sess, leaderID: ids[0],
	}, nil
}

// ClusterSession is a cluster-routed session handle. Like Session it is
// not safe for concurrent use; open one per goroutine.
type ClusterSession struct {
	cl       *Cluster
	name     string
	m, n, k  int
	alpha    float64
	seed     int64
	sess     *Session // bound to the current leader's client
	leaderID string
}

// Name returns the server-side session name.
func (s *ClusterSession) Name() string { return s.name }

// Leader returns the node ID the session's ingest is currently routed to.
func (s *ClusterSession) Leader() string { return s.leaderID }

// maxFailovers bounds how many leader changes one operation rides out
// before giving up (each one already waits up to FailoverWait).
const maxFailovers = 3

// failoverable reports whether the error means "re-route", not "the
// request is wrong": a not-leader rejection, or the leader's connection
// being gone for good.
func failoverable(err error) bool {
	return errors.Is(err, ErrNotLeader) || errors.Is(err, ErrSessionClosed)
}

// Send buffers edges for ingest on the session's leader, riding out
// leader changes. Edges are fed in chunks sized so a transport failure
// can only happen with the whole chunk already parked in the resend
// buffer — the failover migrates that buffer, so no edge is lost or sent
// twice.
func (s *ClusterSession) Send(edges []streamcover.Edge) error {
	failovers := 0
	for len(edges) > 0 {
		take := s.sess.c.batchSize - len(s.sess.sets)
		if take <= 0 || take > len(edges) {
			take = len(edges)
			if room := s.sess.c.batchSize; take > room {
				take = room
			}
		}
		err := s.sess.Send(edges[:take])
		if err == nil {
			edges = edges[take:]
			continue
		}
		if !failoverable(err) || failovers >= maxFailovers {
			return err
		}
		// The flush that failed fires only on the chunk's last edge, so
		// the whole chunk is parked in the resend deque and migrates.
		edges = edges[take:]
		failovers++
		if ferr := s.failover(err); ferr != nil {
			return ferr
		}
	}
	return nil
}

// Flush pushes buffered edges and waits for every outstanding batch to be
// acknowledged by the current leader, following a promotion if the leader
// changes mid-flush.
func (s *ClusterSession) Flush() error {
	failovers := 0
	for {
		err := s.sess.Flush()
		if err == nil {
			return nil
		}
		if !failoverable(err) || failovers >= maxFailovers {
			return err
		}
		failovers++
		if ferr := s.failover(err); ferr != nil {
			return ferr
		}
	}
}

// Query flushes and queries the session's leader, following a promotion
// if the leader changes underneath.
func (s *ClusterSession) Query() (Result, error) {
	failovers := 0
	for {
		res, err := s.sess.Query()
		if err == nil {
			return res, nil
		}
		if !failoverable(err) || failovers >= maxFailovers {
			return Result{}, err
		}
		failovers++
		if ferr := s.failover(err); ferr != nil {
			return Result{}, ferr
		}
	}
}

// QueryStale reads from one of the session's followers, accepting results
// at most maxStale behind the leader. Followers are tried in placement
// order; one that is too stale (or unreachable) is skipped, and the
// leader answers if no follower qualifies. Buffered edges are flushed
// first so the caller's own writes are at least leader-visible.
func (s *ClusterSession) QueryStale(maxStale time.Duration) (Result, error) {
	if err := s.Flush(); err != nil {
		return Result{}, err
	}
	var lastErr error
	for _, id := range s.cl.Placement(s.name) {
		if id == s.leaderID {
			continue
		}
		c, err := s.cl.client(id)
		if err != nil {
			lastErr = err
			continue
		}
		res, err := c.QueryStale(s.name, maxStale)
		if err == nil {
			return res, nil
		}
		lastErr = err
	}
	res, err := s.sess.c.QueryStale(s.name, maxStale)
	if err != nil && lastErr != nil {
		return Result{}, fmt.Errorf("%w (followers: %v)", err, lastErr)
	}
	return res, err
}

// Role returns the current leader's view of the session's role.
func (s *ClusterSession) Role() (wire.RoleInfo, error) {
	return s.sess.c.Role(s.name)
}

// CloseSession flushes, then deletes the session on every placement node.
func (s *ClusterSession) CloseSession() error {
	if err := s.Flush(); err != nil {
		return err
	}
	var first error
	for _, id := range s.cl.Placement(s.name) {
		c, err := s.cl.client(id)
		if err == nil {
			_, err = c.roundTrip(wire.TClose, wire.EncodeRef(s.name))
		}
		if err != nil && first == nil {
			first = err
		}
		if err == nil {
			c.amu.Lock()
			delete(c.states, s.name)
			c.amu.Unlock()
		}
	}
	return first
}

// failover re-resolves the session's leader and migrates the session to
// it: the old client's unacknowledged batches and sequence counter move
// to the new leader's client, and a forced reconnect there replays the
// create plus the whole resend deque in order through the standard
// reestablish path. prev is the error that triggered the failover, kept
// for the give-up message.
func (s *ClusterSession) failover(prev error) error {
	deadline := time.Now().Add(s.cl.FailoverWait)
	hint := s.sess.c.LeaderHint()
	for {
		id, err := s.cl.findLeader(s.name, s.leaderID, hint)
		if err == nil {
			if err = s.adopt(id); err == nil {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("client: no leader for session %q within %v (%v; trigger: %w)",
				s.name, s.cl.FailoverWait, err, prev)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// findLeader polls the fleet for a node that reports itself leader of the
// session: the redirect hint first, then placement order, then every
// other node, with the node we are failing away from tried last (it may
// have recovered). Followers' role answers name their leader, and those
// names join the candidate queue.
func (cl *Cluster) findLeader(name, avoid, hint string) (string, error) {
	queue := make([]string, 0, len(cl.order)+2)
	if hint != "" {
		queue = append(queue, hint)
	}
	queue = append(queue, cl.Placement(name)...)
	queue = append(queue, cl.order...)
	seen := map[string]bool{}
	var lastErr error
	probe := func(id string) (bool, []string) {
		c, err := cl.client(id)
		if err != nil {
			lastErr = err
			return false, nil
		}
		ri, err := c.Role(name)
		if err != nil {
			lastErr = err
			return false, nil
		}
		if ri.Role == wire.RoleLeader {
			return true, nil
		}
		if ri.LeaderAddr != "" {
			return false, []string{ri.LeaderAddr}
		}
		return false, nil
	}
	for i := 0; i < len(queue); i++ {
		id := queue[i]
		if seen[id] || id == avoid {
			continue
		}
		seen[id] = true
		ok, more := probe(id)
		if ok {
			return id, nil
		}
		queue = append(queue, more...)
	}
	if avoid != "" && !seen[avoid] {
		if ok, _ := probe(avoid); ok {
			return avoid, nil
		}
	}
	return "", fmt.Errorf("client: no node reports leadership of session %q (last: %v)", name, lastErr)
}

// adopt re-routes the session to node id: create the session there (a
// no-op if it exists), move the old client's parked batches and sequence
// counter over, then retire the new client's connection epoch so the
// reconnect machinery replays the create and the full resend deque in
// sequence order. The server deduplicates any batch the fleet had already
// applied, so the replay is exactly-once.
func (s *ClusterSession) adopt(id string) error {
	nc, err := s.cl.client(id)
	if err != nil {
		return err
	}
	old := s.sess.c
	if nc == old {
		// Same client object: nothing to migrate, its own reconnect
		// machinery already replays the deque.
		return nil
	}
	ns, err := nc.Create(s.name, s.m, s.n, s.k, s.alpha, s.seed)
	if err != nil {
		return err
	}
	var batches []seqBatch
	var nextSeq uint64
	old.amu.Lock()
	if ost := old.states[s.name]; ost != nil {
		batches, nextSeq = ost.unacked, ost.nextSeq
		ost.unacked = nil
		delete(old.states, s.name)
	}
	old.amu.Unlock()
	st := ns.st
	resend := false
	nc.amu.Lock()
	if nextSeq > st.nextSeq {
		st.nextSeq = nextSeq
	}
	if len(batches) > 0 {
		st.unacked = mergeBySeq(st.unacked, batches)
		resend = true
	}
	nc.amu.Unlock()
	if resend {
		// Retire the epoch: the redial inside connLocked replays the
		// session create and the merged deque in order, the one path in
		// the client that already resends exactly-once.
		nc.mu.Lock()
		if nc.cn != nil && !nc.cn.failed() {
			nc.cn.lost(fmt.Errorf("%w (cluster re-route)", ErrSessionClosed))
			nc.cn.c.Close()
		}
		_, cerr := nc.connLocked()
		nc.mu.Unlock()
		if cerr != nil {
			return cerr
		}
	}
	// Carry over edges buffered but not yet framed.
	ns.sets = append(ns.sets, s.sess.sets...)
	ns.elems = append(ns.elems, s.sess.elems...)
	s.sess.sets, s.sess.elems = nil, nil
	s.sess = ns
	s.leaderID = id
	s.cl.setLeader(s.name, id)
	return nil
}

// mergeBySeq merges two sequence-ordered deques into one.
func mergeBySeq(a, b []seqBatch) []seqBatch {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]seqBatch, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].seq <= b[j].seq {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
