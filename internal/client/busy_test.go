package client_test

import (
	"context"
	"testing"
	"time"

	"streamcover"
	"streamcover/internal/client"
	"streamcover/internal/fault"
	"streamcover/internal/server"
)

// TestBusyRejectionParksAndReplays drives the full transient-failure
// loop end to end: a sticky fsync fault degrades the server session, so
// pipelined batches come back as TErrRetry. The client must not treat
// that as a batch error — the batches stay parked, Flush keeps replaying
// them with backoff, and once the fault clears and the server recovers in
// place (no restart), every edge lands exactly once.
func TestBusyRejectionParksAndReplays(t *testing.T) {
	inj := fault.NewInjector(nil)
	s := server.New(server.Config{
		Workers: 2, QueueDepth: 4,
		DataDir:         t.TempDir(),
		CheckpointEvery: -1,
		FS:              inj,
		RetryMin:        5 * time.Millisecond,
		RetryMax:        50 * time.Millisecond,
	})
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		inj.Clear() // shutdown's final checkpoint must not hit the fault
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	c, err := client.Dial(s.TCPAddr().String(),
		client.WithBatchSize(64), client.WithMaxPending(4),
		client.WithReconnect(50), client.WithBackoff(2*time.Millisecond, 20*time.Millisecond),
		client.WithOpTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create("busy", 100, 1000, 5, 4, 1)
	if err != nil {
		t.Fatal(err)
	}

	edges := make([]streamcover.Edge, 640)
	for i := range edges {
		edges[i] = streamcover.Edge{Set: uint32(i % 100), Elem: uint32((i * 3) % 1000)}
	}

	// Healthy baseline.
	if err := sess.Send(edges[:320]); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}

	// Break fsync stickily and push the rest; the server degrades and
	// busy-rejects. Clear the fault on a timer while Flush is retrying.
	inj.FailSyncs(-1, nil)
	if err := sess.Send(edges[320:]); err != nil {
		t.Fatalf("send during the fault window: %v", err)
	}
	go func() {
		time.Sleep(100 * time.Millisecond)
		inj.Clear()
	}()
	if err := sess.Flush(); err != nil {
		t.Fatalf("flush across the busy window: %v", err)
	}

	res, err := sess.Query()
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != len(edges) {
		t.Fatalf("server state has %d edges, want exactly %d", res.Edges, len(edges))
	}
	if got := s.Metrics().EdgesIngested.Load(); got != int64(len(edges)) {
		t.Fatalf("server applied %d edges, want exactly %d", got, len(edges))
	}
	if s.Metrics().BusyRejects.Load() == 0 {
		t.Fatal("the fault window produced no busy rejections; the test exercised nothing")
	}
	if s.Metrics().DurabilityRecoveries.Load() == 0 {
		t.Fatal("session never recovered in place")
	}
	if got := s.Metrics().DegradedSessions.Load(); got != 0 {
		t.Fatalf("degraded-sessions gauge stuck at %d after recovery", got)
	}
}
