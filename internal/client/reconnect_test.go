package client_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"streamcover"
	"streamcover/internal/client"
	"streamcover/internal/fault"
	"streamcover/internal/server"
)

// newChaosProxy stands a fault.Proxy in front of a healthy upstream so
// tests can sever every live connection on demand, simulating a network
// blip without touching the server (whose in-memory session and dedup
// state must survive).
func newChaosProxy(t *testing.T, target string) *fault.Proxy {
	t.Helper()
	p, err := fault.NewProxy(target)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestSessionClosedTyped: without WithReconnect, a server going away
// mid-conversation must surface as the typed ErrSessionClosed, not a raw
// TCP error the caller has to string-match.
func TestSessionClosedTyped(t *testing.T) {
	s := server.New(server.Config{Workers: 2, QueueDepth: 2})
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(s.TCPAddr().String(), client.WithBatchSize(16))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create("typed", 100, 1000, 5, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Send(make([]streamcover.Edge, 16)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The first few calls race the client noticing the close; the typed
	// error must appear within a couple of attempts and then stick.
	var got error
	for i := 0; i < 20 && got == nil; i++ {
		if err := sess.Send(make([]streamcover.Edge, 16)); err != nil {
			got = err
			break
		}
		if err := sess.Flush(); err != nil {
			got = err
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got == nil {
		t.Fatal("no error after server shutdown")
	}
	if !errors.Is(got, client.ErrSessionClosed) {
		t.Fatalf("error %v is not typed as ErrSessionClosed", got)
	}
	// And it is sticky: the next operation reports the same condition.
	if err := sess.Flush(); !errors.Is(err, client.ErrSessionClosed) {
		t.Fatalf("subsequent error %v is not typed as ErrSessionClosed", err)
	}
}

// TestReconnectExactlyOnceThroughProxy severs the connection repeatedly
// mid-pipeline. The reconnecting client re-creates its session and
// resends unacknowledged batches; the server's (source, seq) dedup drops
// anything that was actually applied before the cut, so the final edge
// count is exact — no loss, no double-counting.
func TestReconnectExactlyOnceThroughProxy(t *testing.T) {
	s := startServer(t)
	p := newChaosProxy(t, s.TCPAddr().String())
	c, err := client.Dial(p.Addr(),
		client.WithBatchSize(128), client.WithMaxPending(4),
		client.WithReconnect(20), client.WithBackoff(2*time.Millisecond, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create("flaky", 100, 1000, 5, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]streamcover.Edge, 8000)
	for i := range edges {
		edges[i] = streamcover.Edge{Set: uint32(i % 100), Elem: uint32((i * 7) % 1000)}
	}
	const cuts = 4
	chunk := len(edges) / cuts
	for i := 0; i < cuts; i++ {
		if err := sess.Send(edges[i*chunk : (i+1)*chunk]); err != nil {
			t.Fatalf("send after %d cuts: %v", i, err)
		}
		p.DropAll() // mid-pipeline: some batches are likely in flight, unacked
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Query()
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != len(edges) {
		t.Fatalf("server state has %d edges, want exactly %d", res.Edges, len(edges))
	}
	if got := s.Metrics().EdgesIngested.Load(); got != int64(len(edges)) {
		t.Fatalf("server applied %d edges, want exactly %d", got, len(edges))
	}
}

// TestReconnectGivesUp: when every redial fails, the client reports the
// typed ErrSessionClosed after exhausting its attempt budget rather than
// retrying forever.
func TestReconnectGivesUp(t *testing.T) {
	s := server.New(server.Config{Workers: 1, QueueDepth: 2})
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(s.TCPAddr().String(),
		client.WithBatchSize(16),
		client.WithReconnect(2), client.WithBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create("doomed", 100, 1000, 5, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Abort() // port closed; every reconnect attempt must fail
	var got error
	deadline := time.Now().Add(10 * time.Second)
	for got == nil && time.Now().Before(deadline) {
		if err := sess.Send(make([]streamcover.Edge, 16)); err != nil {
			got = err
			break
		}
		got = sess.Flush()
	}
	if got == nil {
		t.Fatal("no error although the server is gone and reconnects are capped")
	}
	if !errors.Is(got, client.ErrSessionClosed) {
		t.Fatalf("error %v is not typed as ErrSessionClosed", got)
	}
}
