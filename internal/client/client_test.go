package client_test

import (
	"context"
	"testing"
	"time"

	"streamcover"
	"streamcover/internal/client"
	"streamcover/internal/server"
)

func startServer(t *testing.T) *server.Server {
	t.Helper()
	s := server.New(server.Config{Workers: 2, QueueDepth: 2})
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// TestBatchingWriter verifies Send coalesces edges into batch-sized
// frames: 10 batch-fulls of edges plus a remainder must reach the server
// as exactly 11 ingest frames.
func TestBatchingWriter(t *testing.T) {
	s := startServer(t)
	c, err := client.Dial(s.TCPAddr().String(),
		client.WithBatchSize(64), client.WithMaxPending(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create("b", 100, 1000, 5, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]streamcover.Edge, 64*10+7)
	for i := range edges {
		edges[i] = streamcover.Edge{Set: uint32(i % 100), Elem: uint32(i % 1000)}
	}
	// Feed in awkward chunk sizes; batching is by edge count, not call.
	for lo := 0; lo < len(edges); lo += 100 {
		hi := lo + 100
		if hi > len(edges) {
			hi = len(edges)
		}
		if err := sess.Send(edges[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().Batches.Load(); got != 11 {
		t.Errorf("server received %d batches, want 11", got)
	}
	if got := s.Metrics().EdgesIngested.Load(); got != int64(len(edges)) {
		t.Errorf("server received %d edges, want %d", got, len(edges))
	}
	// Flush with nothing buffered is a no-op barrier.
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().Batches.Load(); got != 11 {
		t.Errorf("empty flush sent a batch: %d", got)
	}
}

// TestAsyncErrorSurfaces checks that an error the server reports for a
// pipelined batch surfaces on a later call, not silently.
func TestAsyncErrorSurfaces(t *testing.T) {
	s := startServer(t)
	c, err := client.Dial(s.TCPAddr().String(), client.WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Create("x", 100, 1000, 5, 4, 1); err != nil {
		t.Fatal(err)
	}
	// An attached session bypasses client-side dim validation, so a bad
	// batch reaches the server… except Send without dims is refused.
	bad := c.Session("x")
	if err := bad.Send([]streamcover.Edge{{Set: 0, Elem: 0}}); err == nil {
		t.Error("Send on attached session without dims succeeded")
	}
	// Target a session that doesn't exist: the server rejects each batch;
	// the error must surface by Flush at the latest.
	ghost, err := c.Create("ghost-keeper", 100, 1000, 5, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ghost.CloseSession(); err != nil {
		t.Fatal(err)
	}
	err = ghost.Send(make([]streamcover.Edge, 40)) // 10 pipelined batches
	if err == nil {
		err = ghost.Flush()
	}
	if err == nil {
		t.Error("ingest into deleted session reported no error")
	}
}

func TestQueryViaAttachedSession(t *testing.T) {
	s := startServer(t)
	c, err := client.Dial(s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create("q", 100, 1000, 5, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]streamcover.Edge, 500)
	for i := range edges {
		edges[i] = streamcover.Edge{Set: uint32(i % 100), Elem: uint32(i % 1000)}
	}
	if err := sess.Send(edges); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	// A second client attaches by name and queries without knowing dims.
	c2, err := client.Dial(s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	res, err := c2.Session("q").Query()
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != len(edges) {
		t.Errorf("attached query saw %d edges, want %d", res.Edges, len(edges))
	}
}
