package client_test

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"streamcover"
	"streamcover/internal/client"
	"streamcover/internal/server"
)

func startServer(t *testing.T) *server.Server {
	t.Helper()
	s := server.New(server.Config{Workers: 2, QueueDepth: 2})
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// TestBatchingWriter verifies Send coalesces edges into batch-sized
// frames: 10 batch-fulls of edges plus a remainder must reach the server
// as exactly 11 ingest frames.
func TestBatchingWriter(t *testing.T) {
	s := startServer(t)
	c, err := client.Dial(s.TCPAddr().String(),
		client.WithBatchSize(64), client.WithMaxPending(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create("b", 100, 1000, 5, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]streamcover.Edge, 64*10+7)
	for i := range edges {
		edges[i] = streamcover.Edge{Set: uint32(i % 100), Elem: uint32(i % 1000)}
	}
	// Feed in awkward chunk sizes; batching is by edge count, not call.
	for lo := 0; lo < len(edges); lo += 100 {
		hi := lo + 100
		if hi > len(edges) {
			hi = len(edges)
		}
		if err := sess.Send(edges[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().Batches.Load(); got != 11 {
		t.Errorf("server received %d batches, want 11", got)
	}
	if got := s.Metrics().EdgesIngested.Load(); got != int64(len(edges)) {
		t.Errorf("server received %d edges, want %d", got, len(edges))
	}
	// Flush with nothing buffered is a no-op barrier.
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().Batches.Load(); got != 11 {
		t.Errorf("empty flush sent a batch: %d", got)
	}
}

// TestAsyncErrorSurfaces checks that an error the server reports for a
// pipelined batch surfaces on a later call, not silently.
func TestAsyncErrorSurfaces(t *testing.T) {
	s := startServer(t)
	c, err := client.Dial(s.TCPAddr().String(), client.WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Create("x", 100, 1000, 5, 4, 1); err != nil {
		t.Fatal(err)
	}
	// An attached session bypasses client-side dim validation, so a bad
	// batch reaches the server… except Send without dims is refused.
	bad := c.Session("x")
	if err := bad.Send([]streamcover.Edge{{Set: 0, Elem: 0}}); err == nil {
		t.Error("Send on attached session without dims succeeded")
	}
	// Target a session that doesn't exist: the server rejects each batch;
	// the error must surface by Flush at the latest.
	ghost, err := c.Create("ghost-keeper", 100, 1000, 5, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ghost.CloseSession(); err != nil {
		t.Fatal(err)
	}
	err = ghost.Send(make([]streamcover.Edge, 40)) // 10 pipelined batches
	if err == nil {
		err = ghost.Flush()
	}
	if err == nil {
		t.Error("ingest into deleted session reported no error")
	}
}

func TestQueryViaAttachedSession(t *testing.T) {
	s := startServer(t)
	c, err := client.Dial(s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create("q", 100, 1000, 5, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]streamcover.Edge, 500)
	for i := range edges {
		edges[i] = streamcover.Edge{Set: uint32(i % 100), Elem: uint32(i % 1000)}
	}
	if err := sess.Send(edges); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	// A second client attaches by name and queries without knowing dims.
	c2, err := client.Dial(s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	res, err := c2.Session("q").Query()
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != len(edges) {
		t.Errorf("attached query saw %d edges, want %d", res.Edges, len(edges))
	}
}

// TestAckObserver asserts every acknowledged sequenced batch reports its
// edge count and a positive client-observed latency, exactly once.
func TestAckObserver(t *testing.T) {
	s := startServer(t)
	var mu sync.Mutex
	var edges []int
	var lats []time.Duration
	c, err := client.Dial(s.TCPAddr().String(),
		client.WithBatchSize(100),
		client.WithAckObserver(func(n int, d time.Duration) {
			mu.Lock()
			edges = append(edges, n)
			lats = append(lats, d)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create("obs", 10, 100, 2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]streamcover.Edge, 250)
	for i := range in {
		in[i] = streamcover.Edge{Set: uint32(i % 10), Elem: uint32(i % 100)}
	}
	if err := sess.Send(in); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(edges) != 3 { // 100 + 100 + 50 (flush)
		t.Fatalf("observed %d acks (%v), want 3", len(edges), edges)
	}
	total := 0
	for i, n := range edges {
		total += n
		if lats[i] < 0 {
			t.Errorf("ack %d: negative latency %v", i, lats[i])
		}
	}
	if total != len(in) {
		t.Fatalf("observed %d edges, want %d", total, len(in))
	}
}

// TestFlushInterval asserts a batch smaller than the pipeline window is
// pushed to the wire (and acked) without any round trip forcing it out —
// the open-loop pacing case, where frames must not rot in the write
// buffer between paced sends.
func TestFlushInterval(t *testing.T) {
	s := startServer(t)
	acked := make(chan int, 16)
	c, err := client.Dial(s.TCPAddr().String(),
		client.WithBatchSize(100),
		client.WithFlushInterval(2*time.Millisecond),
		client.WithAckObserver(func(n int, d time.Duration) { acked <- n }))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Create("trickle", 10, 100, 2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]streamcover.Edge, 100) // exactly one wire batch
	for i := range in {
		in[i] = streamcover.Edge{Set: uint32(i % 10), Elem: uint32(i % 100)}
	}
	if err := sess.Send(in); err != nil {
		t.Fatal(err)
	}
	// No Flush, no further sends: only the background flusher can get
	// this batch onto the wire.
	select {
	case n := <-acked:
		if n != 100 {
			t.Fatalf("acked %d edges, want 100", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batch never acked: flush interval did not push it")
	}
}

// TestRowWireEquivalence feeds the same edge stream through the columnar
// default and a WithRowWire client — sequenced and fire-and-forget — and
// requires all four sessions to converge to bit-identical estimates: the
// wire layout must never leak into the estimator's state.
func TestRowWireEquivalence(t *testing.T) {
	s := startServer(t)
	edges := make([]streamcover.Edge, 3000)
	for i := range edges {
		edges[i] = streamcover.Edge{Set: uint32(i*2654435761) % 100, Elem: uint32(i*40503) % 1000}
	}
	variants := []struct {
		name string
		opts []client.Option
	}{
		{"col-seq", nil},
		{"row-seq", []client.Option{client.WithRowWire()}},
		{"col-ff", []client.Option{client.WithFireAndForget()}},
		{"row-ff", []client.Option{client.WithRowWire(), client.WithFireAndForget()}},
	}
	results := make([]client.Result, len(variants))
	for i, v := range variants {
		opts := append([]client.Option{client.WithBatchSize(128)}, v.opts...)
		c, err := client.Dial(s.TCPAddr().String(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := c.Create(v.name, 100, 1000, 5, 4, 99)
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Send(edges); err != nil {
			t.Fatal(err)
		}
		if err := sess.Flush(); err != nil {
			t.Fatal(err)
		}
		if results[i], err = sess.Query(); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	want := results[0]
	if want.Edges != len(edges) {
		t.Fatalf("columnar sequenced session saw %d edges, want %d", want.Edges, len(edges))
	}
	for i, got := range results[1:] {
		if got.Coverage != want.Coverage || got.Feasible != want.Feasible ||
			!reflect.DeepEqual(got.SetIDs, want.SetIDs) ||
			got.SpaceWords != want.SpaceWords || got.Edges != want.Edges {
			t.Errorf("%s diverged from col-seq: %+v vs %+v", variants[i+1].name, got, want)
		}
	}
}
