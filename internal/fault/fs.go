package fault

import (
	"io/fs"
	"os"
)

// File is the subset of *os.File the durability path needs. Injected
// implementations wrap a real file and interpose on Write and Sync.
type File interface {
	Name() string
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS abstracts every filesystem operation internal/wal and
// internal/snapshot perform, so faults can be injected at the exact
// syscall the real failure would hit. The zero tool is OS(); tests wrap it
// in an Injector.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, making renames and segment creations
	// within it durable.
	SyncDir(dir string) error
}

// osFS is the passthrough production filesystem.
type osFS struct{}

// OS returns the real filesystem. It is stateless; every call returns an
// equivalent value.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) RemoveAll(path string) error          { return os.RemoveAll(path) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }
func (osFS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
