package fault

import (
	"net"
	"sync"
	"time"
)

// Proxy is an in-process TCP chaos proxy: it forwards bytes between
// clients and a healthy upstream and, on demand, severs every live
// connection (network blip), truncates the stream mid-frame (torn frame),
// delays forwarding (congestion), or black-holes new connections
// (partition). The listener itself stays up through everything except
// Close, so a reconnecting client's redial always reaches the proxy — the
// faults decide what happens after.
type Proxy struct {
	ln     net.Listener
	target string

	mu       sync.Mutex
	conns    []net.Conn
	parked   []net.Conn // accepted while partitioned; never forwarded
	closed   bool
	delay    time.Duration
	truncate int64 // remaining forwardable bytes; <0 = unlimited
	partOn   bool
}

// NewProxy listens on a fresh loopback port and forwards every accepted
// connection to target.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, truncate: -1}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address clients should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

func (p *Proxy) acceptLoop() {
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			down.Close()
			return
		}
		if p.partOn {
			// Black hole: hold the connection open but never forward, the
			// shape of a partition where SYNs still complete upstream of
			// the break.
			p.parked = append(p.parked, down)
			p.mu.Unlock()
			continue
		}
		p.mu.Unlock()
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			down.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			down.Close()
			up.Close()
			return
		}
		p.conns = append(p.conns, down, up)
		p.mu.Unlock()
		go p.pipe(up, down)
		go p.pipe(down, up)
	}
}

// pipe forwards src→dst in chunks so delay and truncation apply at byte
// granularity; io.Copy would forward whole reads untouched.
func (p *Proxy) pipe(dst, src net.Conn) {
	defer dst.Close()
	defer src.Close()
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.mu.Lock()
			d := p.delay
			w := n
			if p.truncate >= 0 {
				if p.truncate >= int64(n) {
					p.truncate -= int64(n)
				} else {
					w = int(p.truncate)
					p.truncate = 0
				}
			}
			p.mu.Unlock()
			if d > 0 {
				time.Sleep(d)
			}
			if w > 0 {
				if _, werr := dst.Write(buf[:w]); werr != nil {
					return
				}
			}
			if w < n {
				// Budget exhausted mid-chunk: the peer saw a torn frame.
				// Sever so both sides notice.
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// DropAll severs every proxied connection; the listener stays up so
// redials succeed. Parked (partitioned) connections are dropped too.
func (p *Proxy) DropAll() {
	p.mu.Lock()
	conns := append(p.conns, p.parked...)
	p.conns, p.parked = nil, nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// SetDelay sleeps d before forwarding each chunk in either direction.
// Zero disables.
func (p *Proxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// TruncateAfter lets n more bytes through (summed over all connections
// and both directions), then severs whichever connection carries the
// byte that crosses the line — a deterministic torn frame. n < 0
// disables truncation.
func (p *Proxy) TruncateAfter(n int64) {
	p.mu.Lock()
	p.truncate = n
	p.mu.Unlock()
}

// Partition black-holes new connections while on: accepts complete but
// nothing is ever forwarded, so the peer hangs rather than erroring.
// Turning the partition off closes the parked connections, releasing
// their peers to redial. Existing forwarded connections are unaffected;
// combine with DropAll for a full partition.
func (p *Proxy) Partition(on bool) {
	p.mu.Lock()
	p.partOn = on
	var parked []net.Conn
	if !on {
		parked = p.parked
		p.parked = nil
	}
	p.mu.Unlock()
	for _, c := range parked {
		c.Close()
	}
}

// Close shuts the listener and severs everything.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.DropAll()
}
