package fault

import (
	"fmt"
	"io/fs"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Injector wraps an FS and fails operations on a scripted schedule. Each
// operation class (writes, file fsyncs, directory fsyncs, removes,
// renames) has an independent window: armed for the next n operations, or
// sticky until cleared. A byte budget models a filling disk: writes beyond
// it perform a realistic torn short write and return an error wrapping
// syscall.ENOSPC.
//
// The Injector draws no randomness — the same script against the same
// code produces the same failures — which is what lets a seeded soak test
// replay an interesting storm exactly. It is safe for concurrent use.
type Injector struct {
	inner FS

	mu       sync.Mutex
	writes   window
	syncs    window
	syncDirs window
	removes  window
	renames  window
	budget   int64 // remaining write bytes; <0 = unlimited
	latency  time.Duration

	// Counters (atomic): observed operations and injected failures.
	WriteOps     atomic.Int64
	SyncOps      atomic.Int64
	WriteFails   atomic.Int64
	SyncFails    atomic.Int64
	DiskFullHits atomic.Int64
}

// window is one operation class's failure schedule: fail the next n calls
// (n < 0: every call) with err.
type window struct {
	n   int
	err error
}

// take consumes one slot from the window; nil means the operation should
// succeed. Caller holds the injector's mutex.
func (w *window) take() error {
	if w.n == 0 {
		return nil
	}
	if w.n > 0 {
		w.n--
	}
	return w.err
}

func arm(w *window, n int, err error) {
	if err == nil {
		err = ErrInjected
	}
	w.n, w.err = n, err
}

// NewInjector wraps inner (typically OS()) with an initially transparent
// injector: no faults armed, unlimited budget.
func NewInjector(inner FS) *Injector {
	if inner == nil {
		inner = OS()
	}
	return &Injector{inner: inner, budget: -1}
}

// FailWrites arms the next n File.Write calls to fail with err (nil:
// ErrInjected). n < 0 makes the failure sticky until cleared; n == 0
// clears it.
func (i *Injector) FailWrites(n int, err error) {
	i.mu.Lock()
	arm(&i.writes, n, err)
	i.mu.Unlock()
}

// FailSyncs arms the next n File.Sync calls to fail (fsync errors — the
// classic way a WAL group commit dies).
func (i *Injector) FailSyncs(n int, err error) {
	i.mu.Lock()
	arm(&i.syncs, n, err)
	i.mu.Unlock()
}

// FailSyncDirs arms directory-fsync failures (segment creation, snapshot
// rename durability).
func (i *Injector) FailSyncDirs(n int, err error) {
	i.mu.Lock()
	arm(&i.syncDirs, n, err)
	i.mu.Unlock()
}

// FailRemoves arms Remove/RemoveAll failures (WAL truncation mid-removal).
func (i *Injector) FailRemoves(n int, err error) {
	i.mu.Lock()
	arm(&i.removes, n, err)
	i.mu.Unlock()
}

// FailRenames arms Rename failures (the atomic snapshot publish step).
func (i *Injector) FailRenames(n int, err error) {
	i.mu.Lock()
	arm(&i.renames, n, err)
	i.mu.Unlock()
}

// SetDiskBudget allows n more written bytes before writes start failing
// with ENOSPC; the write that crosses the boundary lands short (torn).
// n < 0 restores an unlimited disk.
func (i *Injector) SetDiskBudget(n int64) {
	i.mu.Lock()
	i.budget = n
	i.mu.Unlock()
}

// SetLatency makes every write and fsync sleep d first (slow-disk
// injection). Zero disables.
func (i *Injector) SetLatency(d time.Duration) {
	i.mu.Lock()
	i.latency = d
	i.mu.Unlock()
}

// Clear disarms every fault and restores an unlimited budget; counters
// are preserved.
func (i *Injector) Clear() {
	i.mu.Lock()
	i.writes, i.syncs, i.syncDirs, i.removes, i.renames = window{}, window{}, window{}, window{}, window{}
	i.budget = -1
	i.latency = 0
	i.mu.Unlock()
}

func (i *Injector) sleep() {
	i.mu.Lock()
	d := i.latency
	i.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

func (i *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := i.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{inner: f, inj: i}, nil
}

func (i *Injector) CreateTemp(dir, pattern string) (File, error) {
	f, err := i.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injectFile{inner: f, inj: i}, nil
}

func (i *Injector) Rename(oldpath, newpath string) error {
	i.mu.Lock()
	err := i.renames.take()
	i.mu.Unlock()
	if err != nil {
		return fmt.Errorf("fault: rename %s: %w", newpath, err)
	}
	return i.inner.Rename(oldpath, newpath)
}

func (i *Injector) Remove(name string) error {
	i.mu.Lock()
	err := i.removes.take()
	i.mu.Unlock()
	if err != nil {
		return fmt.Errorf("fault: remove %s: %w", name, err)
	}
	return i.inner.Remove(name)
}

func (i *Injector) RemoveAll(path string) error {
	i.mu.Lock()
	err := i.removes.take()
	i.mu.Unlock()
	if err != nil {
		return fmt.Errorf("fault: remove %s: %w", path, err)
	}
	return i.inner.RemoveAll(path)
}

func (i *Injector) MkdirAll(path string, perm os.FileMode) error {
	return i.inner.MkdirAll(path, perm)
}

func (i *Injector) ReadFile(name string) ([]byte, error)       { return i.inner.ReadFile(name) }
func (i *Injector) ReadDir(name string) ([]fs.DirEntry, error) { return i.inner.ReadDir(name) }
func (i *Injector) Stat(name string) (fs.FileInfo, error)      { return i.inner.Stat(name) }
func (i *Injector) Truncate(name string, size int64) error     { return i.inner.Truncate(name, size) }

func (i *Injector) SyncDir(dir string) error {
	i.sleep()
	i.mu.Lock()
	err := i.syncDirs.take()
	i.mu.Unlock()
	if err != nil {
		i.SyncFails.Add(1)
		return fmt.Errorf("fault: fsync dir %s: %w", dir, err)
	}
	return i.inner.SyncDir(dir)
}

// injectFile interposes the injector's write/sync schedule on one file.
type injectFile struct {
	inner File
	inj   *Injector
}

func (f *injectFile) Name() string { return f.inner.Name() }

func (f *injectFile) Write(p []byte) (int, error) {
	i := f.inj
	i.sleep()
	i.WriteOps.Add(1)
	i.mu.Lock()
	if err := i.writes.take(); err != nil {
		i.mu.Unlock()
		i.WriteFails.Add(1)
		return 0, fmt.Errorf("fault: write %s: %w", f.inner.Name(), err)
	}
	short := -1 // full write
	if i.budget >= 0 {
		if i.budget >= int64(len(p)) {
			i.budget -= int64(len(p))
		} else {
			short = int(i.budget) // torn: only the remaining budget lands
			i.budget = 0
		}
	}
	i.mu.Unlock()
	if short < 0 {
		return f.inner.Write(p)
	}
	i.DiskFullHits.Add(1)
	n := 0
	if short > 0 {
		n, _ = f.inner.Write(p[:short])
	}
	return n, fmt.Errorf("fault: write %s: disk full: %w", f.inner.Name(), syscall.ENOSPC)
}

func (f *injectFile) Sync() error {
	i := f.inj
	i.sleep()
	i.SyncOps.Add(1)
	i.mu.Lock()
	err := i.syncs.take()
	i.mu.Unlock()
	if err != nil {
		i.SyncFails.Add(1)
		return fmt.Errorf("fault: fsync %s: %w", f.inner.Name(), err)
	}
	return f.inner.Sync()
}

func (f *injectFile) Close() error { return f.inner.Close() }
