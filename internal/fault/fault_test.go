package fault

import (
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestInjectorCountedSyncFailures(t *testing.T) {
	inj := NewInjector(OS())
	f, err := inj.OpenFile(filepath.Join(t.TempDir(), "x"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	inj.FailSyncs(2, nil)
	for i := 0; i < 2; i++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync %d: err %v, want ErrInjected", i, err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after window: %v", err)
	}
	if got := inj.SyncFails.Load(); got != 2 {
		t.Fatalf("SyncFails = %d, want 2", got)
	}
	if got := inj.SyncOps.Load(); got != 3 {
		t.Fatalf("SyncOps = %d, want 3", got)
	}
}

func TestInjectorStickyWriteUntilClear(t *testing.T) {
	inj := NewInjector(nil) // nil inner defaults to OS()
	f, err := inj.CreateTemp(t.TempDir(), "sticky*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	boom := errors.New("boom")
	inj.FailWrites(-1, boom)
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("abc")); !errors.Is(err, boom) {
			t.Fatalf("write %d: err %v, want boom", i, err)
		}
	}
	inj.Clear()
	if n, err := f.Write([]byte("abc")); err != nil || n != 3 {
		t.Fatalf("write after Clear: n=%d err=%v", n, err)
	}
	if got := inj.WriteFails.Load(); got != 3 {
		t.Fatalf("WriteFails = %d, want 3", got)
	}
}

func TestInjectorDiskBudgetTornWrite(t *testing.T) {
	inj := NewInjector(OS())
	path := filepath.Join(t.TempDir(), "full")
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	inj.SetDiskBudget(5)
	n, err := f.Write([]byte("12345678"))
	if n != 5 {
		t.Fatalf("torn write landed %d bytes, want 5", n)
	}
	if !IsDiskFull(err) {
		t.Fatalf("err %v does not classify as disk-full", err)
	}
	// The torn prefix really is on disk — exactly the state a crashed
	// writer leaves behind.
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "12345" {
		t.Fatalf("on-disk bytes %q (err %v), want \"12345\"", got, rerr)
	}
	// Budget exhausted: nothing more lands.
	if n, err := f.Write([]byte("x")); n != 0 || !IsDiskFull(err) {
		t.Fatalf("post-exhaustion write: n=%d err=%v", n, err)
	}
	inj.SetDiskBudget(-1)
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write after budget lifted: %v", err)
	}
	if got := inj.DiskFullHits.Load(); got != 2 {
		t.Fatalf("DiskFullHits = %d, want 2", got)
	}
}

func TestInjectorRemoveAndRename(t *testing.T) {
	inj := NewInjector(OS())
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj.FailRemoves(1, nil)
	if err := inj.Remove(path); !errors.Is(err, ErrInjected) {
		t.Fatalf("remove: err %v, want ErrInjected", err)
	}
	inj.FailRenames(1, nil)
	if err := inj.Rename(path, path+".new"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename: err %v, want ErrInjected", err)
	}
	// Windows consumed: both now pass through.
	if err := inj.Rename(path, path+".new"); err != nil {
		t.Fatal(err)
	}
	if err := inj.Remove(path + ".new"); err != nil {
		t.Fatal(err)
	}
}

// startEcho runs a TCP echo server and returns its address.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestProxyForwardsAndDrops(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo through proxy: %q, %v", buf, err)
	}
	p.DropAll()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read succeeded after DropAll")
	}
	// The listener survived the drop: a fresh dial works end to end.
	c2 := dialProxy(t, p)
	if _, err := c2.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c2, buf); err != nil || string(buf) != "pong" {
		t.Fatalf("echo after redial: %q, %v", buf, err)
	}
}

func TestProxyTruncateTearsStream(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	p.TruncateAfter(3)
	if _, err := c.Write([]byte("12345678")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, _ := io.ReadAll(c) // reads until the proxy severs the conn
	if len(got) > 3 {
		t.Fatalf("got %d bytes through a 3-byte budget: %q", len(got), got)
	}
}

func TestProxyPartitionBlackHolesThenReleases(t *testing.T) {
	p, err := NewProxy(startEcho(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Partition(true)
	c := dialProxy(t, p) // accept completes, but nothing is forwarded
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 5)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read succeeded through a partition")
	} else if nerr, ok := err.(net.Error); !ok || !nerr.Timeout() {
		t.Fatalf("partitioned read: err %v, want timeout (hang, not reset)", err)
	}
	p.Partition(false) // parked conns closed: the peer is released to redial
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(buf); err == nil || errIsTimeout(err) {
		t.Fatalf("release: err %v, want prompt close", err)
	}
	c2 := dialProxy(t, p)
	if _, err := c2.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c2, buf[:4]); err != nil || string(buf[:4]) != "back" {
		t.Fatalf("echo after partition lifted: %q, %v", buf[:4], err)
	}
}

func errIsTimeout(err error) bool {
	nerr, ok := err.(net.Error)
	return ok && nerr.Timeout()
}
