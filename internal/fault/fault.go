// Package fault is kcoverd's deterministic fault-injection layer. It has
// two halves, one per I/O boundary the daemon crosses:
//
//   - A filesystem shim (FS / File) that internal/wal and internal/snapshot
//     write through. The passthrough OS() implementation is what production
//     runs; the Injector wraps any FS and fails operations on demand —
//     fsync errors, write errors, ENOSPC after a byte budget (with the
//     realistic torn short write), removal/rename failures and latency —
//     so the durability code's error paths can be exercised exactly,
//     repeatably, and without root or a real full disk.
//
//   - An in-process chaos Proxy for the TCP path: it forwards bytes to a
//     healthy upstream and, on demand, severs every live connection,
//     truncates streams mid-frame, delays forwarding, or partitions new
//     connections into a black hole — the network weather a reconnecting
//     client must ride through.
//
// Both halves are deterministic: nothing here draws randomness. A seeded
// test (see the crash-storm soak in internal/server) owns the schedule and
// scripts faults through explicit windows — counted failures, byte
// budgets, toggles — so every run with the same seed exercises the same
// interleavings.
package fault

import (
	"errors"
	"syscall"
)

// ErrInjected is the default error returned by injected failures; tests
// that don't care about the precise errno assert against it with
// errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// IsDiskFull reports whether err is (or wraps) ENOSPC — the signal that
// moves kcoverd into its server-wide read-only mode. The Injector's
// byte-budget failures wrap syscall.ENOSPC so injected and real disk-full
// conditions classify identically.
func IsDiskFull(err error) bool {
	return errors.Is(err, syscall.ENOSPC)
}
