// Package wal implements a segmented, CRC-checked write-ahead log for
// kcoverd's ingest path. Each session logs the batches it has accepted
// BEFORE acknowledging them; after a crash, replaying the log tail beyond
// the last snapshot through the normal batch path reconstructs the exact
// in-memory state (the batch path is bit-identical to per-edge
// processing, so batch boundaries are irrelevant).
//
// Layout: a log is a directory of segment files named
// wal-<firstPos:016x>.seg, where positions are 1-based and monotone
// across the whole log. Each segment is a sequence of records:
//
//	[4-byte LE payload length][4-byte LE CRC-32C of payload][payload]
//
// Records are opaque to the WAL (kcoverd stores framed batch payloads).
// Appends go to the newest segment until it exceeds the configured size,
// then a new segment starts. Sync uses leader-based group commit: all
// appends that arrived while the current fsync was in flight ride the
// next one, so sustained multi-client load pays ~one fsync per queue
// drain rather than one per batch.
//
// Recovery tolerates a torn tail: a truncated or corrupt record at the
// END of the LAST segment is discarded (the write never completed, so it
// was never acknowledged). Corruption anywhere else is an error — those
// records were acknowledged, so losing them must be loud.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"streamcover/internal/fault"
)

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	recHeader  = 8
	defaultSeg = 64 << 20

	// MaxRecord bounds a single record (16 MiB: comfortably above the wire
	// protocol's frame limit) so a corrupt length cannot cause an absurd
	// allocation during recovery.
	MaxRecord = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a log.
type Options struct {
	// SegmentBytes rotates to a new segment once the current one exceeds
	// this size (default 64 MiB).
	SegmentBytes int64
	// NoSync disables fsync on Append (for tests and benchmarks only;
	// rename-durability of TruncateBefore is unaffected).
	NoSync bool
	// FS is the filesystem the log writes through (default fault.OS()).
	// Tests inject faults by passing a *fault.Injector.
	FS fault.FS
}

// Log is an append-only record log. Append is safe for concurrent use;
// Replay and TruncateBefore must not race with Append (kcoverd replays
// before serving and truncates under its checkpoint lock).
type Log struct {
	dir  string
	opts Options
	fs   fault.FS

	mu      sync.Mutex // guards file, size, next and rotation
	file    fault.File
	size    int64 // bytes in the active segment
	segPos  uint64
	next    uint64 // position the next Append receives
	syncErr error  // sticky until Reset: a failed write or sync poisons the log

	// Group commit: appenders enqueue under mu, one leader fsyncs.
	syncMu     sync.Mutex // serializes fsyncs
	flushCond  *sync.Cond // signaled when synced advances
	synced     uint64     // highest position known durable
	appended   uint64     // highest position written to the OS
	syncActive bool

	// pins maps each open Reader to its cursor position; TruncateBefore
	// never deletes a segment holding records at or beyond the minimum.
	pins map[*Reader]uint64
}

// Open opens (or creates) the log in dir and prepares it for appending.
// It scans existing segments, truncates a torn tail in the last one, and
// positions the next append after the last intact record.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSeg
	}
	if opts.FS == nil {
		opts.FS = fault.OS()
	}
	fsys := opts.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, fs: fsys, next: 1, segPos: 1}
	l.flushCond = sync.NewCond(&l.mu)
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		count, intact, err := scanSegment(fsys, filepath.Join(dir, last.name), true, nil)
		if err != nil {
			return nil, err
		}
		if err := truncateFile(fsys, filepath.Join(dir, last.name), intact); err != nil {
			return nil, err
		}
		l.segPos = last.firstPos
		l.next = last.firstPos + uint64(count)
		l.size = intact
		f, err := fsys.OpenFile(filepath.Join(dir, last.name), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.file = f
	}
	l.synced = l.next - 1
	l.appended = l.next - 1
	return l, nil
}

type segment struct {
	name     string
	firstPos uint64
}

func listSegments(fsys fault.FS, dir string) ([]segment, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hexPos := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		pos, err := strconv.ParseUint(hexPos, 16, 64)
		if err != nil || pos == 0 {
			return nil, fmt.Errorf("wal: alien segment file %q", name)
		}
		segs = append(segs, segment{name: name, firstPos: pos})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstPos < segs[j].firstPos })
	for i := 1; i < len(segs); i++ {
		if segs[i].firstPos <= segs[i-1].firstPos {
			return nil, fmt.Errorf("wal: duplicate segment position %d", segs[i].firstPos)
		}
	}
	return segs, nil
}

// scanSegment walks a segment's records. With tolerateTail, a torn record
// at EOF stops the scan cleanly; otherwise it is an error. Returns the
// number of intact records and the byte offset after the last one. fn, if
// non-nil, receives each record's payload (valid only during the call).
func scanSegment(fsys fault.FS, path string, tolerateTail bool, fn func([]byte) error) (int, int64, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	var off int64
	count := 0
	for int64(len(data))-off >= recHeader {
		n := binary.LittleEndian.Uint32(data[off:])
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		if n > MaxRecord {
			if tolerateTail {
				break
			}
			return 0, 0, fmt.Errorf("wal: %s: implausible record length %d at offset %d", path, n, off)
		}
		if int64(len(data))-off-recHeader < int64(n) {
			if tolerateTail {
				break
			}
			return 0, 0, fmt.Errorf("wal: %s: truncated record at offset %d", path, off)
		}
		payload := data[off+recHeader : off+recHeader+int64(n)]
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			if tolerateTail {
				break
			}
			return 0, 0, fmt.Errorf("wal: %s: CRC mismatch at offset %d", path, off)
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return 0, 0, err
			}
		}
		off += recHeader + int64(n)
		count++
	}
	if !tolerateTail && off != int64(len(data)) {
		return 0, 0, fmt.Errorf("wal: %s: %d trailing bytes", path, int64(len(data))-off)
	}
	return count, off, nil
}

func truncateFile(fsys fault.FS, path string, size int64) error {
	info, err := fsys.Stat(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if info.Size() == size {
		return nil
	}
	if err := fsys.Truncate(path, size); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

func segName(firstPos uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstPos, segSuffix)
}

// Append writes one record and returns its position (1-based, monotone).
// When the log is in sync mode (the default), Append returns only after
// the record is durable — possibly having ridden another appender's
// fsync.
func (l *Log) Append(payload []byte) (uint64, error) {
	pos, wait, err := l.AppendStart(payload)
	if err != nil {
		return pos, err
	}
	return pos, wait()
}

// AppendStart writes one record and assigns its position, returning
// before durability: the wait function blocks until the record is durable
// (riding the group commit; immediate under NoSync). It exists for
// callers that must make the position assignment atomic with an external
// ordering commitment — e.g. a replicated session, whose replay order is
// log order, applying the record to its own state — while still
// overlapping the fsync with that work.
func (l *Log) AppendStart(payload []byte) (uint64, func() error, error) {
	if len(payload) > MaxRecord {
		return 0, nil, fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(payload), MaxRecord)
	}
	var hdr [recHeader]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))

	l.mu.Lock()
	if l.syncErr != nil {
		err := l.syncErr
		l.mu.Unlock()
		return 0, nil, err
	}
	if err := l.ensureSegmentLocked(); err != nil {
		l.mu.Unlock()
		return 0, nil, err
	}
	pos := l.next
	file := l.file
	if _, err := file.Write(hdr[:]); err != nil {
		l.syncErr = fmt.Errorf("wal: %w", err)
		l.mu.Unlock()
		return 0, nil, l.syncErr
	}
	if _, err := file.Write(payload); err != nil {
		l.syncErr = fmt.Errorf("wal: %w", err)
		l.mu.Unlock()
		return 0, nil, l.syncErr
	}
	l.next++
	l.size += recHeader + int64(len(payload))
	l.appended = pos
	l.mu.Unlock()

	if l.opts.NoSync {
		return pos, func() error { return nil }, nil
	}
	return pos, func() error { return l.waitDurable(pos) }, nil
}

// waitDurable blocks until pos is durable, electing this goroutine as the
// fsync leader when none is active (group commit). The leader captures the
// active file under mu while holding syncActive, and rotation/Close wait
// for syncActive to clear before closing any file, so the unlocked fsync
// can never race a Close of its file.
func (l *Log) waitDurable(pos uint64) error {
	l.mu.Lock()
	for {
		if l.syncErr != nil {
			err := l.syncErr
			l.mu.Unlock()
			return err
		}
		if l.synced >= pos {
			l.mu.Unlock()
			return nil
		}
		if l.file == nil {
			// Close ran; it fsyncs before closing, so nothing is left to
			// make durable.
			l.mu.Unlock()
			return nil
		}
		if !l.syncActive {
			break
		}
		l.flushCond.Wait()
	}
	l.syncActive = true
	target := l.appended // everything written so far rides this fsync
	// pos is in the active file: rotation fsyncs the old segment and
	// advances synced past its records before closing it, so synced < pos
	// places pos's record in l.file.
	file := l.file
	l.mu.Unlock()

	err := file.Sync()

	l.mu.Lock()
	l.syncActive = false
	if err != nil {
		l.syncErr = fmt.Errorf("wal: fsync: %w", err)
		err = l.syncErr
	} else if target > l.synced {
		l.synced = target
	}
	l.flushCond.Broadcast()
	l.mu.Unlock()
	return err
}

// ensureSegmentLocked opens the active segment, rotating first if full.
// Rotation waits out any in-flight group commit: the leader fsyncs its
// captured file outside mu, and closing that file underneath it would
// turn an already-durable flush into a spurious sticky sync error.
func (l *Log) ensureSegmentLocked() error {
	for l.file != nil {
		if l.size < l.opts.SegmentBytes {
			return nil
		}
		if l.syncActive {
			l.flushCond.Wait()
			if l.syncErr != nil {
				return l.syncErr
			}
			continue
		}
		// Rotation: the old segment must be fully durable before records
		// start landing in a new one, or recovery could see a gap.
		if !l.opts.NoSync {
			if err := l.file.Sync(); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			l.synced = l.next - 1
			l.flushCond.Broadcast() // appenders this sync just covered
		}
		if err := l.file.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.file = nil
	}
	path := filepath.Join(l.dir, segName(l.next))
	f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.fs, l.dir); err != nil {
		// Remove the just-created segment so a retry's O_EXCL create does
		// not trip over it; it holds no records yet.
		f.Close()
		l.fs.Remove(path)
		return err
	}
	l.file = f
	l.segPos = l.next
	l.size = 0
	return nil
}

// Replay streams every record with position >= from, in order, to fn.
// Positions below the first retained segment are expected to be gone
// (truncated after a checkpoint); a segment holding positions >= from
// that has vanished out from under the log is a loud error — those
// records were acknowledged, and replaying around the hole would silently
// drop them.
func (l *Log) Replay(from uint64, fn func(pos uint64, payload []byte) error) error {
	if from == 0 {
		from = 1
	}
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return err
	}
	l.mu.Lock()
	next := l.next
	l.mu.Unlock()
	if len(segs) == 0 {
		if next > from {
			return fmt.Errorf("wal: replay from %d: no segments on disk but records through %d exist", from, next-1)
		}
		return nil
	}
	if next > from && segs[0].firstPos > from {
		return fmt.Errorf("wal: replay from %d: first retained segment starts at %d (records missing)", from, segs[0].firstPos)
	}
	for i, seg := range segs {
		segEnd := next // exclusive
		if i+1 < len(segs) {
			segEnd = segs[i+1].firstPos
		}
		if segEnd <= from {
			continue
		}
		pos := seg.firstPos
		last := i == len(segs)-1
		count, _, err := scanSegment(l.fs, filepath.Join(l.dir, seg.name), last, func(payload []byte) error {
			defer func() { pos++ }()
			if pos < from {
				return nil
			}
			return fn(pos, payload)
		})
		if err != nil {
			return err
		}
		if !last && segs[i+1].firstPos != seg.firstPos+uint64(count) {
			return fmt.Errorf("wal: gap after %s: next segment starts at %d, want %d",
				seg.name, segs[i+1].firstPos, seg.firstPos+uint64(count))
		}
	}
	return nil
}

// TruncateBefore deletes whole segments every record of which has
// position < pos. Records at or above pos are always retained; some
// records below pos usually survive in the segment that straddles the
// boundary. Segments still needed by an open Reader (a shipping
// replication stream, say) are also retained: the effective truncation
// point is clamped to the lowest reader cursor, so a checkpoint racing a
// lagging shipper never deletes records the shipper has yet to deliver.
func (l *Log) TruncateBefore(pos uint64) error {
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return err
	}
	l.mu.Lock()
	activePos, next, hasFile := l.segPos, l.next, l.file != nil
	for _, cursor := range l.pins {
		if cursor < pos {
			pos = cursor
		}
	}
	l.mu.Unlock()
	for i, seg := range segs {
		if hasFile && seg.firstPos >= activePos {
			break // never delete the active segment
		}
		segEnd := next
		if i+1 < len(segs) {
			segEnd = segs[i+1].firstPos
		}
		if segEnd > pos {
			break
		}
		if err := l.fs.Remove(filepath.Join(l.dir, seg.name)); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	return syncDir(l.fs, l.dir)
}

// Pins reports the number of open Readers currently pinning segments (a
// shipping replication stream holds one for its whole life). Callers that
// want to take a log fully cold — session eviction, say — check Pins()==0
// first; TruncateBefore already clamps to pinned cursors, so this is a
// policy signal, not a safety requirement.
func (l *Log) Pins() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pins)
}

// InitPos places an empty log's position space so that the next Append
// receives position next. A follower bootstrapping from a leader
// checkpoint at WAL position p calls InitPos(p+1) so that mirrored
// appends land at the same positions as the leader's originals — the two
// logs then stay byte-identical segment for segment. It is an error on a
// log that already holds records.
func (l *Log) InitPos(next uint64) error {
	if next == 0 {
		return fmt.Errorf("wal: InitPos(0): positions are 1-based")
	}
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(segs) > 0 || l.next != 1 || l.file != nil {
		return fmt.Errorf("wal: InitPos on non-empty log (next=%d)", l.next)
	}
	l.next = next
	l.segPos = next
	l.synced = next - 1
	l.appended = next - 1
	return nil
}

// ResetTo discards every record and re-bases the position space so the
// next Append lands at next — a follower being re-bootstrapped from a
// leader checkpoint covering position next-1 calls this to make its
// mirror consistent again. It refuses while readers are open (their
// cursors would dangle) and must not race Append; the caller holds the
// session frozen.
func (l *Log) ResetTo(next uint64) error {
	if next == 0 {
		return fmt.Errorf("wal: ResetTo(0): positions are 1-based")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.pins) > 0 {
		return fmt.Errorf("wal: ResetTo with %d open readers", len(l.pins))
	}
	for l.syncActive {
		l.flushCond.Wait()
	}
	if l.file != nil {
		l.file.Close()
		l.file = nil
	}
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if err := l.fs.Remove(filepath.Join(l.dir, seg.name)); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	if err := syncDir(l.fs, l.dir); err != nil {
		return err
	}
	l.next = next
	l.segPos = next
	l.size = 0
	l.syncErr = nil
	l.synced = next - 1
	l.appended = next - 1
	l.flushCond.Broadcast()
	return nil
}

// LastPos reports the position of the most recent append (0 when empty).
func (l *Log) LastPos() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// DurablePos reports the highest position a Reader can currently deliver
// (the durability watermark: synced in sync mode, appended with NoSync).
func (l *Log) DurablePos() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.NoSync {
		return l.appended
	}
	return l.synced
}

// Depth reports how many records the retained segments hold at or above
// from — the replay backlog a recovery starting at from would process.
func (l *Log) Depth(from uint64) uint64 {
	l.mu.Lock()
	next := l.next
	l.mu.Unlock()
	if from == 0 {
		from = 1
	}
	if next <= from {
		return 0
	}
	return next - from
}

// Sync forces durability of everything appended so far (used by NoSync
// callers at known barriers, and by checkpoints). It rides the group
// commit like any appender, so it cannot race a rotation's or Close's
// Close of the file it is flushing.
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.appended
	l.mu.Unlock()
	if target == 0 {
		return nil
	}
	return l.waitDurable(target)
}

// Close syncs and closes the active segment, waiting out any in-flight
// group commit first.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncActive {
		l.flushCond.Wait()
	}
	if l.file == nil {
		return nil
	}
	var err error
	if !l.opts.NoSync {
		err = l.file.Sync()
	}
	if cerr := l.file.Close(); err == nil {
		err = cerr
	}
	l.file = nil
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Reset clears a sticky write/sync error and re-opens the log for
// appending. It rescans the last segment on disk, truncates any torn tail
// (a record whose write or fsync failed was never acknowledged, so
// discarding it is safe), and resumes appending after the last intact
// record. When every segment is gone it keeps the old position space, so
// positions acknowledged before the fault are never reissued.
//
// Reset must not race Append; kcoverd calls it under the same checkpoint
// lock that freezes the ingest path.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncActive {
		l.flushCond.Wait()
	}
	if l.file != nil {
		l.file.Close() // best effort: the handle may be the faulted one
		l.file = nil
	}
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return err
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		path := filepath.Join(l.dir, last.name)
		count, intact, err := scanSegment(l.fs, path, true, nil)
		if err != nil {
			return err
		}
		if err := truncateFile(l.fs, path, intact); err != nil {
			return err
		}
		f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.file = f
		l.segPos = last.firstPos
		l.next = last.firstPos + uint64(count)
		l.size = intact
	} else {
		// No segments survived: the next append creates a fresh segment at
		// the preserved position.
		l.segPos = l.next
		l.size = 0
	}
	l.syncErr = nil
	l.synced = l.next - 1
	l.appended = l.next - 1
	l.flushCond.Broadcast()
	return nil
}

func syncDir(fsys fault.FS, dir string) error {
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", dir, err)
	}
	return nil
}
