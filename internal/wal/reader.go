package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
)

// ErrCaughtUp is returned by Reader.Next when every durable record has
// been delivered; the caller should wait for new appends and retry.
var ErrCaughtUp = errors.New("wal: reader caught up")

// ErrTruncated is returned by OpenReader when the requested position has
// already been truncated away; the caller must bootstrap from a
// checkpoint instead of the log.
var ErrTruncated = errors.New("wal: position truncated")

// refillBudget bounds the bytes of record payloads one refill buffers, so
// a reader far behind a large log does not materialize the whole backlog.
const refillBudget = 1 << 20

// Reader streams records in position order, starting at a fixed position
// and tailing new appends. While open it pins its cursor position:
// TruncateBefore never deletes a segment holding records at or beyond the
// lowest open reader cursor, so a shipping reader can lag a checkpoint
// without the ground vanishing underneath it. Close the reader to unpin.
//
// A Reader delivers only durable records (synced in sync mode, written in
// NoSync mode): a record that could still be discarded as a torn tail
// must never reach a follower.
//
// A Reader is not safe for concurrent use by multiple goroutines.
type Reader struct {
	l      *Log
	next   uint64 // next position to deliver; mirrored into l.pins under l.mu
	queue  [][]byte
	qpos   []uint64
	closed bool
}

// OpenReader opens a reader positioned at from (0 and 1 both mean the
// start). It fails with ErrTruncated when records at or after from
// existed but the segments holding them are gone.
func (l *Log) OpenReader(from uint64) (*Reader, error) {
	if from == 0 {
		from = 1
	}
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	next := l.next
	if next > from {
		if len(segs) == 0 || segs[0].firstPos > from {
			return nil, fmt.Errorf("%w: reader from %d, first retained segment at %d",
				ErrTruncated, from, func() uint64 {
					if len(segs) == 0 {
						return next
					}
					return segs[0].firstPos
				}())
		}
	}
	r := &Reader{l: l, next: from}
	if l.pins == nil {
		l.pins = make(map[*Reader]uint64)
	}
	l.pins[r] = from
	return r, nil
}

// Next returns the next record's position and payload. The payload is
// owned by the caller. It returns ErrCaughtUp when no further durable
// record exists yet.
func (r *Reader) Next() (uint64, []byte, error) {
	if r.closed {
		return 0, nil, errors.New("wal: reader closed")
	}
	if len(r.queue) == 0 {
		if err := r.refill(); err != nil {
			return 0, nil, err
		}
	}
	pos, payload := r.qpos[0], r.queue[0]
	r.queue[0] = nil
	r.queue = r.queue[1:]
	r.qpos = r.qpos[1:]
	return pos, payload, nil
}

// refill scans forward from the cursor, copying durable records into the
// queue up to the refill budget, then advances the pin to the cursor.
func (r *Reader) refill() error {
	l := r.l
	l.mu.Lock()
	if l.syncErr != nil {
		err := l.syncErr
		l.mu.Unlock()
		return err
	}
	limit := l.synced
	if l.opts.NoSync {
		limit = l.appended
	}
	l.mu.Unlock()
	if r.next > limit {
		return ErrCaughtUp
	}
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 || segs[0].firstPos > r.next {
		// The cursor's segment was truncated despite the pin — only
		// possible if the log was Reset out from under us.
		return fmt.Errorf("%w: reader at %d", ErrTruncated, r.next)
	}
	budget := refillBudget
	for i, seg := range segs {
		segEnd := limit + 1 // exclusive upper bound on positions we read
		if i+1 < len(segs) && segs[i+1].firstPos < segEnd {
			segEnd = segs[i+1].firstPos
		}
		if segEnd <= r.next {
			continue
		}
		if seg.firstPos > limit || budget <= 0 {
			break
		}
		if err := r.scanFrom(seg, limit, &budget); err != nil {
			return err
		}
	}
	if len(r.queue) == 0 {
		return ErrCaughtUp
	}
	l.mu.Lock()
	l.pins[r] = r.next
	l.mu.Unlock()
	return nil
}

// scanFrom walks one segment, appending records with position in
// [r.next, limit] to the queue. Appends race this read, but a record at
// or below limit is fully written before the durability watermark moves
// (both happen under l.mu), so inside the scanned range a torn record or
// CRC mismatch is genuine corruption, not an in-flight write.
func (r *Reader) scanFrom(seg segment, limit uint64, budget *int) error {
	data, err := r.l.fs.ReadFile(filepath.Join(r.l.dir, seg.name))
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	pos := seg.firstPos
	var off int64
	for int64(len(data))-off >= recHeader && pos <= limit && *budget > 0 {
		n := binary.LittleEndian.Uint32(data[off:])
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		if n > MaxRecord || int64(len(data))-off-recHeader < int64(n) {
			return fmt.Errorf("wal: %s: truncated durable record at position %d", seg.name, pos)
		}
		payload := data[off+recHeader : off+recHeader+int64(n)]
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			return fmt.Errorf("wal: %s: CRC mismatch at position %d", seg.name, pos)
		}
		if pos >= r.next {
			cp := make([]byte, len(payload))
			copy(cp, payload)
			r.queue = append(r.queue, cp)
			r.qpos = append(r.qpos, pos)
			r.next = pos + 1
			*budget -= recHeader + len(payload)
		}
		off += recHeader + int64(n)
		pos++
	}
	return nil
}

// Pos reports the position of the next record the reader will deliver.
func (r *Reader) Pos() uint64 { return r.next }

// Close unpins the reader's segments. Idempotent.
func (r *Reader) Close() {
	if r.closed {
		return
	}
	r.closed = true
	r.l.mu.Lock()
	delete(r.l.pins, r)
	r.l.mu.Unlock()
	r.queue, r.qpos = nil, nil
}
