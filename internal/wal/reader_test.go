package wal

import (
	"bytes"
	"errors"
	"testing"
)

// drainReader pulls records until ErrCaughtUp, returning them by position.
func drainReader(t *testing.T, r *Reader) map[uint64][]byte {
	t.Helper()
	out := map[uint64][]byte{}
	for {
		pos, payload, err := r.Next()
		if errors.Is(err, ErrCaughtUp) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out[pos] = payload
	}
}

func TestReaderTailsAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	r, err := l.OpenReader(1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.Next(); !errors.Is(err, ErrCaughtUp) {
		t.Fatalf("Next on empty log: %v, want ErrCaughtUp", err)
	}
	want := map[uint64][]byte{}
	for i := 1; i <= 40; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 1+i%13)
		pos, err := l.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
		want[pos] = payload
		// Interleave tailing with appends: every few records, drain.
		if i%7 == 0 {
			for pos2, p := range drainReader(t, r) {
				if !bytes.Equal(p, want[pos2]) {
					t.Fatalf("record %d corrupted", pos2)
				}
				delete(want, pos2)
			}
		}
	}
	for pos2, p := range drainReader(t, r) {
		if !bytes.Equal(p, want[pos2]) {
			t.Fatalf("record %d corrupted", pos2)
		}
		delete(want, pos2)
	}
	if len(want) != 0 {
		t.Fatalf("%d records never delivered", len(want))
	}
	if r.Pos() != 41 {
		t.Fatalf("reader cursor %d, want 41", r.Pos())
	}
}

func TestReaderDeliversOnlyDurable(t *testing.T) {
	dir := t.TempDir()
	// Sync mode: records become visible to the reader only once fsynced.
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := l.OpenReader(1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := drainReader(t, r); len(got) != 5 {
		t.Fatalf("delivered %d records, want 5", len(got))
	}
}

// TestTruncateDuringShip is the regression for the truncate-vs-shipper
// race: a checkpoint must not delete segments an open reader has yet to
// deliver. Before segment pinning, TruncateBefore(pos) deleted every
// fully-checkpointed segment even while a reader's cursor was still
// inside one, and the next refill failed with ErrTruncated.
func TestTruncateDuringShip(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so the log rotates often: 40 records spread over
	// many segments.
	l, err := Open(dir, Options{NoSync: true, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 40; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 24)); err != nil {
			t.Fatal(err)
		}
	}
	r, err := l.OpenReader(1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Deliver a handful, leaving the cursor mid-log.
	for i := 0; i < 5; i++ {
		if _, _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	// A checkpoint at the head truncates everything it can... which must
	// exclude segments at or beyond the reader cursor.
	if err := l.TruncateBefore(41); err != nil {
		t.Fatal(err)
	}
	got := drainReader(t, r)
	if len(got) != 35 {
		t.Fatalf("delivered %d records after truncate, want 35", len(got))
	}
	// Once the reader closes, the same truncation reclaims the segments.
	r.Close()
	if err := l.TruncateBefore(41); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(l.fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 1 {
		t.Fatalf("%d segments retained after unpinned truncate, want <=1", len(segs))
	}
}

func TestReaderRefillBudgetPreservesOrder(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Payloads large enough that the backlog exceeds one refill budget.
	big := bytes.Repeat([]byte{0xAB}, 200<<10)
	for i := 1; i <= 12; i++ {
		big[0] = byte(i)
		if _, err := l.Append(big); err != nil {
			t.Fatal(err)
		}
	}
	r, err := l.OpenReader(1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	next := uint64(1)
	for {
		pos, payload, err := r.Next()
		if errors.Is(err, ErrCaughtUp) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if pos != next {
			t.Fatalf("position %d out of order, want %d", pos, next)
		}
		if payload[0] != byte(pos) {
			t.Fatalf("record %d has wrong payload", pos)
		}
		next++
	}
	if next != 13 {
		t.Fatalf("delivered through %d, want 12", next-1)
	}
}

func TestOpenReaderTruncatedPosition(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 20; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 24)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateBefore(15); err != nil {
		t.Fatal(err)
	}
	if _, err := l.OpenReader(1); !errors.Is(err, ErrTruncated) {
		t.Fatalf("OpenReader(1) after truncate: %v, want ErrTruncated", err)
	}
	r, err := l.OpenReader(15)
	if err != nil {
		t.Fatalf("OpenReader(15): %v", err)
	}
	defer r.Close()
	if got := drainReader(t, r); len(got) != 6 {
		t.Fatalf("delivered %d records, want 6", len(got))
	}
}

func TestInitPos(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.InitPos(101); err != nil {
		t.Fatal(err)
	}
	pos, err := l.Append([]byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if pos != 101 {
		t.Fatalf("first append at %d, want 101", pos)
	}
	if err := l.InitPos(7); err == nil {
		t.Fatal("InitPos on non-empty log succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The position space survives reopen via the segment name.
	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastPos() != 101 {
		t.Fatalf("LastPos after reopen %d, want 101", l2.LastPos())
	}
	segs, err := listSegments(l2.fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].name != segName(101) {
		t.Fatalf("segments %v, want single %s", segs, segName(101))
	}
}
